// Hardware co-design demo: drive the bit-exact VMAC cell against the
// statistical error model, then exercise the three Sec. 4 hardware
// improvements on one dot product workload.
//
//   ./examples/hw_codesign [enob] [nmult] [dot_length]
//
// A circuit designer uses this to sanity-check that an AMS VMAC built
// from (ENOB, Nmult) really injects the error the network-level model
// assumed — and to see what partitioning, error recycling, and reference
// scaling would buy before committing silicon.
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "ams/delta_sigma.hpp"
#include "ams/error_model.hpp"
#include "ams/partitioned.hpp"
#include "ams/reference_scaling.hpp"
#include "ams/vmac_cell.hpp"
#include "core/report.hpp"

using namespace ams;

int main(int argc, char** argv) {
    const double enob = argc > 1 ? std::stod(argv[1]) : 8.0;
    const std::size_t nmult = argc > 2 ? std::stoul(argv[2]) : 8;
    const std::size_t length = argc > 3 ? std::stoul(argv[3]) : 288;  // a 3x3x32 conv tap

    vmac::VmacConfig cfg;
    cfg.enob = enob;
    cfg.nmult = nmult;
    cfg.bits_w = 9;
    cfg.bits_x = 9;

    std::cout << "Bit-exact AMS VMAC vs statistical model\n"
              << "  " << cfg.str() << ", dot length (N_tot) " << length << "\n\n";

    // Workload: random DoReFa-style operands.
    Rng rng(1234);
    const int trials = 5000;
    vmac::VmacCell cell(cfg);
    vmac::VmacCell exact([&cfg] {
        vmac::VmacConfig e = cfg;
        e.enob = 24.0;
        return e;
    }());

    double sq = 0.0;
    std::vector<double> partial_sums;
    partial_sums.reserve(trials * (length / nmult));
    for (int t = 0; t < trials; ++t) {
        std::vector<double> w(length), x(length);
        for (double& v : w) v = rng.uniform(-1.0, 1.0);
        for (double& v : x) v = rng.uniform(0.0, 1.0);
        double ideal = 0.0;
        for (std::size_t s = 0; s < length; s += nmult) {
            const auto ws = std::span(w).subspan(s, std::min(nmult, length - s));
            const auto xs = std::span(x).subspan(s, std::min(nmult, length - s));
            ideal += exact.dot_ideal(ws, xs);
            partial_sums.push_back(exact.dot_ideal(ws, xs));
        }
        const double err = cell.dot_tiled(w, x, rng) - ideal;
        sq += err * err;
    }
    const double measured_sigma = std::sqrt(sq / trials);
    const double model_sigma = vmac::total_error_stddev(cfg, length);
    std::cout << "Total output error sigma: bit-exact " << core::fmt_fixed(measured_sigma, 5)
              << " vs Eq. 2 model " << core::fmt_fixed(model_sigma, 5) << " (ratio "
              << core::fmt_fixed(measured_sigma / model_sigma, 2)
              << ") — the lumped model holds.\n\n";

    // Sec. 4 improvements on the same workload.
    std::cout << "Hardware improvement options (Sec. 4):\n";

    // 1. Partitioning: 2x2 at 2 bits lower resolution.
    vmac::PartitionOptions popt;
    popt.nw = 2;
    popt.nx = 2;
    popt.enob_partial = enob;
    vmac::PartitionedVmac pv(cfg, popt);
    double psq = 0.0;
    for (int t = 0; t < 2000; ++t) {
        std::vector<double> w(nmult), x(nmult);
        for (double& v : w) v = rng.uniform(-1.0, 1.0);
        for (double& v : x) v = rng.uniform(0.0, 1.0);
        const double err = pv.dot(w, x, rng) - pv.dot_ideal(w, x);
        psq += err * err;
    }
    double msq = 0.0;
    for (int t = 0; t < 2000; ++t) {
        std::vector<double> w(nmult), x(nmult);
        for (double& v : w) v = rng.uniform(-1.0, 1.0);
        for (double& v : x) v = rng.uniform(0.0, 1.0);
        const double err = cell.dot(w, x, rng) - cell.dot_ideal(w, x);
        msq += err * err;
    }
    std::cout << "  1. 2x2 partitioning at the same per-conversion ENOB: per-VMAC error "
              << core::fmt_fixed(std::sqrt(psq / 2000), 5) << " vs monolithic "
              << core::fmt_fixed(std::sqrt(msq / 2000), 5) << " (4x conversions)\n";

    // 2. Error recycling over the full dot product.
    double dsq = 0.0;
    for (int t = 0; t < 1000; ++t) {
        std::vector<double> w(length), x(length);
        for (double& v : w) v = rng.uniform(-1.0, 1.0);
        for (double& v : x) v = rng.uniform(0.0, 1.0);
        double ideal = 0.0;
        for (std::size_t s = 0; s < length; s += nmult) {
            ideal += exact.dot_ideal(std::span(w).subspan(s, nmult),
                                     std::span(x).subspan(s, nmult));
        }
        vmac::DeltaSigmaVmac ds(cfg, enob + 4.0);
        const double err = ds.dot(w, x, rng) - ideal;
        dsq += err * err;
    }
    std::cout << "  2. delta-sigma error recycling (final conversion at "
              << core::fmt_fixed(enob + 4.0, 1) << "b): total error sigma "
              << core::fmt_fixed(std::sqrt(dsq / 1000), 5) << " vs "
              << core::fmt_fixed(measured_sigma, 5) << " plain\n";

    // 3. Reference scaling tuned to the partial-sum distribution.
    const std::vector<double> scales{1.0, 0.5, 0.25, 0.125, 0.0625};
    const auto sweep = vmac::sweep_reference_scales(cfg, partial_sums, scales);
    std::cout << "  3. reference scaling on this workload: best scale "
              << core::fmt_fixed(sweep.front().reference_scale, 4) << " gives effective ENOB "
              << core::fmt_fixed(sweep.front().effective_enob, 2) << " (vs nominal "
              << core::fmt_fixed(enob, 1) << ", clip fraction "
              << core::fmt_pct(sweep.front().clip_fraction) << ")\n";
    return 0;
}
