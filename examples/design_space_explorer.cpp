// Design-space explorer: the "lookup table for circuit designers" of
// Fig. 8 as a command-line tool.
//
//   ./examples/design_space_explorer --max-loss 0.01
//   ./examples/design_space_explorer --max-emac-fj 50
//   ./examples/design_space_explorer --backend delta_sigma
//
// --backend evaluates one hardware datapath (bit_exact, per_vmac_noise,
// partitioned, delta_sigma, reference_scaled) over the same grid, with
// accuracy from its equivalent monolithic ENOB and energy from its
// reported conversion profile.
//
// Builds the accuracy curve from the cached AMS retraining sweep, maps it
// over the full (ENOB, Nmult) grid via the Eq. 2 equivalence, and answers
// the two questions a system designer asks: "what is the cheapest
// hardware meeting my accuracy spec?" and "what is the most accurate
// hardware within my energy budget?".
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "energy/energy_accuracy.hpp"

using namespace ams;

namespace {

energy::AccuracyCurve measure_curve(core::ExperimentEnv& env) {
    const TensorMap q88 = env.quantized_state(8, 8);
    const train::EvalResult base = env.evaluate_state(q88, env.quant_common(8, 8));
    std::vector<energy::AccuracyCurve::Point> points;
    for (double enob : {4.5, 5.0, 5.5, 6.0, 6.5, 7.0, 8.0}) {
        vmac::VmacConfig v;
        v.enob = enob;
        v.nmult = 8;
        const TensorMap state = env.ams_retrained_state(8, 8, v);
        const train::EvalResult r = env.evaluate_state(state, env.ams_common(8, 8, v));
        points.push_back({enob, std::max(0.0, base.mean - r.mean)});
        std::cout << "  measured: ENOB " << enob << " -> loss "
                  << core::fmt_pct(std::max(0.0, base.mean - r.mean)) << "\n";
    }
    return energy::AccuracyCurve(points, 8);
}

void describe(const char* question, const energy::DesignPoint* p) {
    std::cout << question;
    if (p == nullptr) {
        std::cout << "  -> no design on the grid qualifies\n";
        return;
    }
    std::cout << "  -> ENOB " << core::fmt_fixed(p->enob, 1) << ", Nmult " << p->nmult
              << ": loss " << core::fmt_pct(p->accuracy_loss) << ", E_MAC "
              << core::fmt_energy_fj(p->emac_fj) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
    double max_loss = 0.01;
    double max_emac_fj = 100.0;
    std::string backend_name;
    for (int i = 1; i + 1 < argc; i += 2) {
        const std::string flag = argv[i];
        if (flag == "--max-loss") max_loss = std::stod(argv[i + 1]);
        if (flag == "--max-emac-fj") max_emac_fj = std::stod(argv[i + 1]);
        if (flag == "--backend") backend_name = argv[i + 1];
    }

    std::cout << "Measuring the accuracy-vs-ENOB curve at Nmult=8 (cached after first run):\n";
    core::ExperimentEnv env(core::ExperimentOptions::standard());
    const energy::AccuracyCurve curve = measure_curve(env);

    std::vector<double> enobs;
    for (double e = 4.0; e <= 14.0; e += 0.5) enobs.push_back(e);
    const energy::EnergyAccuracyMap map(
        curve, enobs, {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});

    std::cout << "\nDesign-space queries over a " << enobs.size() << " x 11 grid:\n";
    describe(("cheapest design with loss < " + core::fmt_pct(max_loss)).c_str(),
             map.cheapest_for_loss(max_loss));
    describe(("most accurate design within " + core::fmt_energy_fj(max_emac_fj) + "/MAC")
                 .c_str(),
             map.best_accuracy_for_energy(max_emac_fj));

    // A designer's sensitivity sweep: cheapest energy vs accuracy target.
    std::cout << "\nEnergy floor as a function of the accuracy spec:\n";
    core::Table table({"max loss", "E_MAC,min", "at (ENOB, Nmult)"});
    for (double spec : {0.002, 0.005, 0.01, 0.02, 0.05, 0.10}) {
        const auto* p = map.cheapest_for_loss(spec);
        if (p == nullptr) {
            table.add_row({core::fmt_pct(spec, 1), "unachievable", "-"});
        } else {
            table.add_row({core::fmt_pct(spec, 1), core::fmt_energy_fj(p->emac_fj),
                           "(" + core::fmt_fixed(p->enob, 1) + ", " +
                               std::to_string(p->nmult) + ")"});
        }
    }
    table.print(std::cout);

    // Backend-specific view: the same designer queries, answered for one
    // concrete hardware datapath instead of the Eq. 3-4 lower bound.
    if (!backend_name.empty()) {
        vmac::BackendOptions bopts;
        bopts.kind = vmac::parse_backend_kind(backend_name);
        vmac::VmacConfig proto;
        proto.bits_w = 9;  // 8 magnitude bits chunk evenly for partitioning
        proto.bits_x = 9;
        const auto series = energy::backend_design_series(
            curve, proto, {}, bopts, enobs, {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024},
            /*chunks_per_output=*/8);

        const energy::BackendDesignPoint* cheapest = nullptr;
        const energy::BackendDesignPoint* most_accurate = nullptr;
        for (const auto& p : series) {
            if (p.accuracy_loss < max_loss &&
                (cheapest == nullptr || p.emac_fj < cheapest->emac_fj)) {
                cheapest = &p;
            }
            if (p.emac_fj <= max_emac_fj &&
                (most_accurate == nullptr ||
                 p.accuracy_loss < most_accurate->accuracy_loss)) {
                most_accurate = &p;
            }
        }
        std::cout << "\nBackend '" << bopts.str()
                  << "' (conversion-profile pricing, effective-ENOB accuracy):\n";
        core::Table bt({"query", "grid ENOB", "Nmult", "eff ENOB", "loss", "E_MAC"});
        for (const auto& [label, p] :
             {std::pair{"cheapest for loss spec", cheapest},
              std::pair{"most accurate in budget", most_accurate}}) {
            if (p == nullptr) {
                bt.add_row({label, "-", "-", "-", "unachievable", "-"});
            } else {
                bt.add_row({label, core::fmt_fixed(p->enob, 1), std::to_string(p->nmult),
                            core::fmt_fixed(p->effective_enob, 2),
                            core::fmt_pct(p->accuracy_loss), core::fmt_energy_fj(p->emac_fj)});
            }
        }
        bt.print(std::cout);
    }

    std::cout << "\nThe monotone, one-to-one loss <-> E_MAC,min relationship is the paper's\n"
                 "central design-space conclusion (Sec. 4).\n";
    return 0;
}
