// Serving demo: stand up the in-process inference server on a quantized
// mini-ResNet, submit a burst of single-image requests from several
// client threads, and show what dynamic batching did with them.
//
//   ./examples/serve_demo [instances] [max_batch] [requests]
//
// This is the 60-second tour of amsnet::serve (DESIGN.md §12): submit()
// returns a future per image; a pool of weight-sharing model replicas
// coalesces requests into batches under a latency budget; shutdown()
// drains everything in flight.
#include <iostream>
#include <string>

#include "core/report.hpp"
#include "data/synthetic_imagenet.hpp"
#include "models/resnet.hpp"
#include "serve/load_gen.hpp"
#include "serve/server.hpp"

using namespace ams;

int main(int argc, char** argv) {
    serve::ServerOptions options;
    options.instances = argc > 1 ? std::stoul(argv[1]) : 2;
    options.max_batch = argc > 2 ? std::stoul(argv[2]) : 8;
    options.max_delay_us = 2000;
    const std::size_t requests = argc > 3 ? std::stoul(argv[3]) : 128;

    std::cout << "amsnet serve demo: " << options.instances << " instance(s), max_batch "
              << options.max_batch << ", latency budget " << options.max_delay_us << " us\n\n";

    // 1. A quantized (8b) mini-ResNet and a synthetic validation set.
    models::LayerCommon common;
    common.bits_w = 8;
    common.bits_x = 8;
    models::ResNet primary(models::mini_resnet_config(common));
    primary.set_training(false);

    data::DatasetOptions data_options;
    data_options.classes = 10;
    data_options.train_per_class = 1;
    data_options.val_per_class = 8;
    data_options.image_size = 16;
    data::SyntheticImageNet dataset(data_options);
    const Tensor& images = dataset.val_images();
    const Shape image_shape{images.dim(1), images.dim(2), images.dim(3)};

    // 2. The server: each instance is an eval replica sharing the primary's
    //    weights (models::make_eval_replica), with its own planned arena.
    serve::InferenceServer server(primary, image_shape, options);

    // 3. One single-image request, end to end.
    serve::InferenceResult one = server.submit(images.data()).get();
    std::cout << "single request: predicted class " << one.predicted << " in "
              << core::fmt_fixed(static_cast<double>(one.timing.latency_ns()) * 1e-3, 0)
              << " us (batch of " << one.timing.batch_size << " on instance "
              << one.timing.instance << ")\n";

    // 4. A closed-loop burst from several client threads.
    serve::LoadGenOptions load;
    load.clients = 2 * options.instances;
    load.requests = requests;
    const serve::LoadReport report = run_load(server, images, load);
    server.shutdown();

    std::cout << "\nburst of " << report.issued << " requests from " << load.clients
              << " clients:\n";
    std::cout << "  completed      " << report.completed << " ("
              << core::fmt_fixed(report.achieved_qps, 0) << " images/s)\n";
    std::cout << "  latency        p50 " << core::fmt_fixed(report.latency.p50_us, 0)
              << " us, p99 " << core::fmt_fixed(report.latency.p99_us, 0) << " us\n";
    std::cout << "  queue wait     p50 " << core::fmt_fixed(report.queue_wait.p50_us, 0)
              << " us\n";
    std::cout << "  mean batch     " << core::fmt_fixed(report.server.mean_batch(), 2)
              << " of " << options.max_batch << " (fill "
              << core::fmt_fixed(report.server.batch_fill_ratio(options.max_batch) * 100.0, 0)
              << "%)\n";
    std::cout << "  batches        " << report.server.batches << ", max queue depth "
              << report.server.max_queue_depth << "\n";

    // 5. How much does an extra instance cost? Only buffers and arenas —
    //    replica weights are borrowed views over the primary's storage.
    auto replica = models::make_eval_replica(primary, 0);
    std::cout << "\nreplica owned parameter floats: " << nn::owned_parameter_floats(*replica)
              << " (weights shared with the primary: "
              << nn::owned_parameter_floats(primary) << " floats held once)\n";
    return report.completed == report.issued ? 0 : 1;
}
