// amsnet_sweep: sharded, resumable design-space sweep campaigns.
//
//   # quick Fig. 8-style grid on 4 worker processes
//   ./examples/amsnet_sweep --quick --workers 4 --run-dir /tmp/sweep
//
//   # same campaign, resumed after a crash (completed points replay)
//   ./examples/amsnet_sweep --quick --workers 4 --run-dir /tmp/sweep
//
//   # manual sharding across machines sharing a filesystem:
//   ./examples/amsnet_sweep --quick --shard 0/2 --run-dir /nfs/sweep
//   ./examples/amsnet_sweep --quick --shard 1/2 --run-dir /nfs/sweep
//   ./examples/amsnet_sweep --quick --merge-only --run-dir /nfs/sweep
//
// The run directory holds the campaign manifest, one JSONL journal per
// shard, per-shard metrics ledgers, and (once every point is journaled)
// the merged amsnet-bench-v1 report — byte-identical regardless of
// worker count or resume history. See DESIGN.md §15.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "sweep/coordinator.hpp"
#include "sweep/worker.hpp"

using namespace ams;

namespace {

std::vector<std::string> split_csv(const std::string& text) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::string item = text.substr(
            start, comma == std::string::npos ? std::string::npos : comma - start);
        if (!item.empty()) out.push_back(item);
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    return out;
}

sweep::SweepGrid quick_grid() {
    sweep::SweepGrid grid;
    grid.backends = {vmac::BackendKind::kBitExact, vmac::BackendKind::kPerVmacNoise};
    grid.enobs = {4.5, 5.5, 6.5, 7.5};
    grid.seeds = {11, 23};
    grid.base.dataset.classes = 6;
    grid.base.dataset.train_per_class = 32;
    grid.base.dataset.val_per_class = 12;
    grid.base.dataset.image_size = 12;
    grid.base.eval_passes = 3;
    grid.base.batch_size = 32;
    grid.base.fp32_train.epochs = 3;
    grid.base.fp32_train.batch_size = 32;
    grid.base.retrain.epochs = 2;
    grid.base.retrain.batch_size = 32;
    return grid;
}

sweep::SweepGrid standard_grid() {
    sweep::SweepGrid grid;
    grid.base = core::ExperimentOptions::standard();
    grid.backends = {vmac::BackendKind::kBitExact, vmac::BackendKind::kPerVmacNoise,
                     vmac::BackendKind::kPartitioned, vmac::BackendKind::kDeltaSigma};
    grid.enobs = {4.5, 5.0, 5.5, 6.0, 6.5, 7.0, 8.0};
    grid.seeds = {grid.base.dataset.seed};
    return grid;
}

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--quick] [--run-dir DIR] [--workers N | --shard I/N]\n"
                 "          [--merge-only] [--threads-per-worker N] [--cache-dir DIR]\n"
                 "          [--enobs a,b,...] [--seeds a,b,...] [--backends a,b,...]\n"
                 "          [--nmults a,b,...] [--eval-only-off] [--retrain-off] [-v]\n"
                 "          [--chips a,b,...] [--drift-times a,b,...] [--chip N]\n"
                 "          [--offset-sigma X] [--drift-nu X] [--drift-t0 X]\n"
                 "          [--drift-nu-sigma X] [--ir-alpha X]\n"
                 "Variability defaults come from AMSNET_CHIP / AMSNET_OFFSET_SIGMA /\n"
                 "AMSNET_DRIFT_NU / AMSNET_DRIFT_T / AMSNET_DRIFT_T0 /\n"
                 "AMSNET_DRIFT_NU_SIGMA / AMSNET_IR_ALPHA; flags override.\n",
                 argv0);
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    // Worker re-invocations dispatch before any CLI parsing.
    if (const int rc = sweep::maybe_worker_main(argc, argv); rc >= 0) return rc;

    bool quick = false;
    bool merge_only = false;
    bool verbose = false;
    long shard_index = -1;
    std::size_t shard_count = 0;
    sweep::CoordinatorOptions options;
    options.run_dir = "sweep-run";
    std::string enobs_arg, seeds_arg, backends_arg, nmults_arg, cache_dir;
    std::string chips_arg, drift_times_arg;
    bool eval_only = true;
    bool retrain = true;
    // Chip-population (Monte-Carlo fleet) template: environment first,
    // CLI flags override field by field.
    vmac::DeviceProfile variation = vmac::device_profile_from_env();

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--run-dir") {
            options.run_dir = next();
        } else if (arg == "--workers") {
            options.workers = std::stoul(next());
        } else if (arg == "--shard") {
            const std::string spec = next();
            const std::size_t slash = spec.find('/');
            if (slash == std::string::npos) return usage(argv[0]);
            shard_index = std::stol(spec.substr(0, slash));
            shard_count = std::stoul(spec.substr(slash + 1));
            if (shard_count == 0 || shard_index < 0 ||
                static_cast<std::size_t>(shard_index) >= shard_count) {
                return usage(argv[0]);
            }
        } else if (arg == "--merge-only") {
            merge_only = true;
        } else if (arg == "--threads-per-worker") {
            options.threads_per_worker = std::stoul(next());
        } else if (arg == "--cache-dir") {
            cache_dir = next();
        } else if (arg == "--enobs") {
            enobs_arg = next();
        } else if (arg == "--seeds") {
            seeds_arg = next();
        } else if (arg == "--backends") {
            backends_arg = next();
        } else if (arg == "--nmults") {
            nmults_arg = next();
        } else if (arg == "--eval-only-off") {
            eval_only = false;
        } else if (arg == "--retrain-off") {
            retrain = false;
        } else if (arg == "--chips") {
            chips_arg = next();
        } else if (arg == "--drift-times") {
            drift_times_arg = next();
        } else if (arg == "--chip") {
            variation.chip_seed = std::stoull(next());
        } else if (arg == "--offset-sigma") {
            variation.cell_offset_sigma = std::stod(next());
        } else if (arg == "--drift-nu") {
            variation.drift_nu = std::stod(next());
        } else if (arg == "--drift-t0") {
            variation.drift_t0 = std::stod(next());
        } else if (arg == "--drift-nu-sigma") {
            variation.drift_nu_sigma = std::stod(next());
        } else if (arg == "--ir-alpha") {
            variation.ir_drop_alpha = std::stod(next());
        } else if (arg == "--kill-worker") {
            // Fault-injection hook for the resume-smoke CI job: I:N kills
            // worker I after it journals N points.
            const std::string spec = next();
            const std::size_t colon = spec.find(':');
            if (colon == std::string::npos) return usage(argv[0]);
            options.kill_shard = std::stoi(spec.substr(0, colon));
            options.kill_after_points = std::stoul(spec.substr(colon + 1));
        } else if (arg == "-v" || arg == "--verbose") {
            verbose = true;
        } else {
            return usage(argv[0]);
        }
    }
    options.verbose = verbose;

    try {
        sweep::SweepGrid grid = quick ? quick_grid() : standard_grid();
        if (!enobs_arg.empty()) {
            grid.enobs.clear();
            for (const std::string& t : split_csv(enobs_arg)) grid.enobs.push_back(std::stod(t));
        }
        if (!seeds_arg.empty()) {
            grid.seeds.clear();
            for (const std::string& t : split_csv(seeds_arg)) grid.seeds.push_back(std::stoull(t));
        }
        if (!backends_arg.empty()) {
            grid.backends.clear();
            for (const std::string& t : split_csv(backends_arg)) {
                grid.backends.push_back(vmac::parse_backend_kind(t));
            }
        }
        if (!nmults_arg.empty()) {
            grid.nmults.clear();
            for (const std::string& t : split_csv(nmults_arg)) grid.nmults.push_back(std::stoull(t));
        }
        grid.eval_only = eval_only;
        grid.retrain = retrain;
        grid.variation = variation;
        if (!chips_arg.empty()) {
            for (const std::string& t : split_csv(chips_arg)) grid.chips.push_back(std::stoull(t));
        }
        if (!drift_times_arg.empty()) {
            for (const std::string& t : split_csv(drift_times_arg)) {
                grid.drift_times.push_back(std::stod(t));
            }
        }
        if (!cache_dir.empty()) {
            grid.base.cache_dir = cache_dir;
        } else if (grid.base.cache_dir.empty()) {
            grid.base.cache_dir = options.run_dir + "/cache";
        }

        if (merge_only) {
            const sweep::Manifest manifest =
                sweep::read_manifest(sweep::manifest_path(options.run_dir));
            const std::string report =
                sweep::merged_report_json(manifest.grid, sweep::replay_run_dir(options.run_dir));
            std::cout << report;
            return 0;
        }

        if (shard_count > 0) {
            // Manual sharding: compute index % N == I of the grid
            // in-process; another invocation (or --merge-only) merges.
            std::filesystem::create_directories(options.run_dir);
            const std::string mpath = sweep::manifest_path(options.run_dir);
            if (!std::filesystem::exists(mpath)) {
                sweep::write_manifest(mpath, grid, shard_count);
            } else if (sweep::read_manifest(mpath).grid.content_hash() != grid.content_hash()) {
                std::fprintf(stderr, "run dir holds a different campaign\n");
                return 1;
            }
            const std::vector<sweep::WorkItem> items = sweep::enumerate_grid(grid);
            std::vector<bool> done(items.size(), false);
            for (const sweep::PointRecord& r : sweep::replay_run_dir(options.run_dir)) {
                if (r.index < items.size()) done[r.index] = true;
            }
            std::vector<sweep::WorkItem> mine;
            for (const sweep::WorkItem& item : items) {
                if (item.index % shard_count == static_cast<std::size_t>(shard_index) &&
                    !done[item.index]) {
                    mine.push_back(item);
                }
            }
            sweep::JournalWriter journal(sweep::journal_path(
                options.run_dir, static_cast<std::size_t>(shard_index)));
            sweep::run_items(grid, mine, static_cast<std::size_t>(shard_index), journal);
            std::cout << "shard " << shard_index << "/" << shard_count << ": computed "
                      << mine.size() << " point(s) into " << journal.path() << "\n";
            return 0;
        }

        const sweep::SweepOutcome outcome = sweep::run_sweep(grid, options);
        std::cout << "sweep: " << outcome.total << " points — " << outcome.replayed
                  << " replayed, " << outcome.computed << " computed, " << outcome.stolen
                  << " stolen";
        if (outcome.workers_failed > 0) {
            std::cout << ", " << outcome.workers_failed << " worker(s) failed";
        }
        std::cout << "\n";
        if (outcome.complete) {
            std::cout << "merged report: " << outcome.report_path << "\n";
            return 0;
        }
        std::cout << "incomplete — re-run the same command to resume\n";
        return 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "amsnet_sweep: %s\n", e.what());
        return 1;
    }
}
