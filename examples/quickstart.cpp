// Quickstart: build a quantized ResNet, inject AMS error at a chosen
// ENOB, evaluate it, and ask the energy model what the hardware would
// cost per MAC.
//
//   ./examples/quickstart [enob] [nmult]
//
// This is the 60-second tour of the library's core loop: dataset ->
// model -> (train) -> AMS error -> accuracy + energy.
#include <iostream>
#include <string>

#include "ams/device_profile.hpp"
#include "ams/vmac_backend.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "energy/adc_energy.hpp"

using namespace ams;

int main(int argc, char** argv) {
    const double enob = argc > 1 ? std::stod(argv[1]) : 6.0;
    const std::size_t nmult = argc > 2 ? std::stoul(argv[2]) : 8;

    std::cout << "amsnet quickstart: AMS VMAC with ENOB " << enob << ", Nmult " << nmult
              << "\n\n";

    // 1. Dataset + experiment environment (REPRO_FAST=1 shrinks it).
    core::ExperimentEnv env(core::ExperimentOptions::standard());
    std::cout << "Synthetic dataset: " << env.dataset().train_images().dim(0)
              << " train / " << env.dataset().val_images().dim(0) << " val images, "
              << env.options().dataset.classes << " classes\n";

    // 2. The 8b DoReFa-quantized network (trains on first run, cached after).
    const TensorMap quantized = env.quantized_state(8, 8);
    const train::EvalResult base = env.evaluate_state(quantized, env.quant_common(8, 8));
    std::cout << "8b quantized top-1 (no AMS error): "
              << core::fmt_mean_std(base.mean, base.stddev) << "\n";

    // 3. Same weights on AMS hardware: additive error per Eq. 2 at every
    //    conv and FC output. AMSNET_CHIP / AMSNET_OFFSET_SIGMA /
    //    AMSNET_DRIFT_* / AMSNET_IR_ALPHA pin a fabricated chip instance
    //    (DESIGN.md §16); unset they leave the historical pure-Gaussian
    //    model (and its cache keys) untouched.
    vmac::VmacConfig vmac_cfg;
    vmac_cfg.enob = enob;
    vmac_cfg.nmult = nmult;
    const vmac::DeviceProfile chip = vmac::device_profile_from_env();
    std::string chip_tag;
    if (chip.active()) {
        vmac::BackendOptions tagged;
        tagged.variation = chip;
        chip_tag = tagged.str();
        std::cout << "Device profile: " << chip.str() << "\n";
    }
    const train::EvalResult ams = env.evaluate_state(
        quantized, env.ams_common(8, 8, vmac_cfg, vmac::InjectionMode::kLumpedGaussian, chip));
    std::cout << "Top-1 on AMS hardware (eval-only injection): "
              << core::fmt_mean_std(ams.mean, ams.stddev) << "  (loss "
              << core::fmt_pct(base.mean - ams.mean) << ")\n";

    // 4. Retrain with the error in the loop: batch norm recovers accuracy.
    const TensorMap retrained = env.ams_retrained_state(8, 8, vmac_cfg, {}, chip_tag, chip);
    const train::EvalResult rec = env.evaluate_state(
        retrained, env.ams_common(8, 8, vmac_cfg, vmac::InjectionMode::kLumpedGaussian, chip));
    std::cout << "Top-1 after retraining with AMS error:    "
              << core::fmt_mean_std(rec.mean, rec.stddev) << "  (recovered "
              << core::fmt_pct(rec.mean - ams.mean) << ")\n";

    // 5. What would this hardware cost? (Eqs. 3-4 lower bound.)
    std::cout << "\nEnergy model: E_ADC >= "
              << core::fmt_fixed(energy::adc_energy_lower_bound_pj(enob), 3)
              << " pJ/conversion  ->  E_MAC >= "
              << core::fmt_energy_fj(energy::emac_lower_bound_fj(enob, nmult)) << "/MAC\n";
    return 0;
}
