// Retraining-recovery demo: watch batch normalization learn to fight AMS
// noise, epoch by epoch.
//
//   ./examples/retrain_recovery [enob]
//
// Loads the 8b quantized network, turns on AMS error injection at a lossy
// ENOB, and retrains while printing per-epoch validation accuracy and the
// BN-driven shift of activation means away from zero (the paper's Fig. 6
// mechanism, live).
#include <cmath>
#include <iostream>
#include <string>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "train/evaluate.hpp"

using namespace ams;

namespace {

double mean_abs_activation_mean(models::ResNet& model, const Tensor& images,
                                std::size_t batch) {
    const auto means = train::record_activation_means(model, images, batch);
    double acc = 0.0;
    for (double m : means) acc += std::fabs(m);
    return acc / static_cast<double>(means.size());
}

}  // namespace

int main(int argc, char** argv) {
    const double enob = argc > 1 ? std::stod(argv[1]) : 5.0;
    std::cout << "Retraining with AMS error in the loop at ENOB " << enob << ", Nmult 8\n\n";

    core::ExperimentEnv env(core::ExperimentOptions::standard());
    const TensorMap q88 = env.quantized_state(8, 8);
    const train::EvalResult base = env.evaluate_state(q88, env.quant_common(8, 8));

    vmac::VmacConfig v;
    v.enob = enob;
    v.nmult = 8;
    auto model = env.make_model(env.ams_common(8, 8, v));
    model->load_state("", q88);

    const train::EvalResult before = train::evaluate_top1(
        *model, env.dataset().val_images(), env.dataset().val_labels(),
        env.options().batch_size, env.options().eval_passes);
    const double shift_before = mean_abs_activation_mean(
        *model, env.dataset().val_images(), env.options().batch_size);

    std::cout << "8b quantized baseline (no AMS):     "
              << core::fmt_mean_std(base.mean, base.stddev) << "\n"
              << "with AMS error, before retraining:  "
              << core::fmt_mean_std(before.mean, before.stddev) << "\n"
              << "mean |activation mean| across conv layers: "
              << core::fmt_fixed(shift_before, 4) << "\n\n";

    train::TrainOptions opts = env.options().retrain;
    opts.on_epoch = [](std::size_t epoch, double loss, double acc) {
        std::cout << "  epoch " << epoch << ": train loss " << core::fmt_fixed(loss, 4)
                  << ", val top-1 " << core::fmt_fixed(acc, 3) << "\n";
    };
    const train::TrainResult result =
        fit(*model, env.dataset().train_images(), env.dataset().train_labels(),
            env.dataset().val_images(), env.dataset().val_labels(), opts);

    const train::EvalResult after = train::evaluate_top1(
        *model, env.dataset().val_images(), env.dataset().val_labels(),
        env.options().batch_size, env.options().eval_passes);
    const double shift_after = mean_abs_activation_mean(
        *model, env.dataset().val_images(), env.options().batch_size);

    std::cout << "\nafter retraining (best epoch " << result.best_epoch << "):          "
              << core::fmt_mean_std(after.mean, after.stddev) << "\n"
              << "mean |activation mean| across conv layers: "
              << core::fmt_fixed(shift_after, 4) << "\n\n"
              << "Recovered " << core::fmt_pct(after.mean - before.mean) << " of the "
              << core::fmt_pct(base.mean - before.mean) << " lost to AMS error.\n"
              << "Activation means moved "
              << (shift_after > shift_before ? "AWAY from" : "toward") << " zero ("
              << core::fmt_fixed(shift_before, 4) << " -> " << core::fmt_fixed(shift_after, 4)
              << ") — the paper's batch-norm mechanism (Sec. 3, Fig. 6).\n";
    return 0;
}
