#include "energy/vmac_energy.hpp"

#include <gtest/gtest.h>

#include "core/network_energy.hpp"

namespace ams::energy {
namespace {

TEST(VmacEnergyModelTest, AdcOnlyDefaultsMatchEquationFour) {
    VmacEnergyModel model;  // defaults: ADC only
    EXPECT_NEAR(model.emac_fj(8.0, 8), emac_lower_bound_fj(8.0, 8), 1e-9);
    EXPECT_NEAR(model.emac_fj(12.0, 16), emac_lower_bound_fj(12.0, 16), 1e-9);
}

TEST(VmacEnergyModelTest, ComponentsAddUp) {
    VmacEnergyModel model;
    model.mult_fj_per_op = 3.0;
    model.digital_fj_per_add = 1.0;
    model.adc_margin = 2.0;
    const VmacEnergyBreakdown b = model.vmac_energy(8.0, 8);
    EXPECT_NEAR(b.adc_fj, 2.0 * 300.0, 1e-9);  // 2x the 0.3 pJ floor
    EXPECT_NEAR(b.mult_fj, 24.0, 1e-9);
    EXPECT_NEAR(b.digital_fj, 1.0, 1e-9);
    EXPECT_NEAR(b.total_fj(), 625.0, 1e-9);
    EXPECT_NEAR(model.emac_fj(8.0, 8), 625.0 / 8.0, 1e-9);
}

TEST(VmacEnergyModelTest, MultiplierEnergyDoesNotAmortize) {
    // ADC energy amortizes over Nmult; multiplier energy does not.
    VmacEnergyModel model;
    model.mult_fj_per_op = 5.0;
    const double e8 = model.emac_fj(8.0, 8);
    const double e64 = model.emac_fj(8.0, 64);
    // Both contain the 5 fJ multiply; only the ADC share shrinks.
    EXPECT_GT(e8, e64);
    EXPECT_GT(e64, 5.0);
}

TEST(VmacEnergyModelTest, Validation) {
    VmacEnergyModel model;
    EXPECT_THROW((void)model.vmac_energy(8.0, 0), std::invalid_argument);
    EXPECT_THROW((void)model.vmac_energy(0.0, 8), std::invalid_argument);
}

TEST(AccountNetworkTest, TotalsAreLayerSums) {
    std::vector<LayerEnergy> shapes(2);
    shapes[0].name = "a";
    shapes[0].n_tot = 72;
    shapes[0].outputs = 100;
    shapes[1].name = "b";
    shapes[1].n_tot = 64;
    shapes[1].outputs = 10;

    VmacEnergyModel model;
    const auto report = account_network(shapes, model, 8.0, 8);
    ASSERT_EQ(report.layers.size(), 2u);
    EXPECT_EQ(report.layers[0].macs, 7200u);
    EXPECT_EQ(report.layers[0].vmacs, 900u);  // ceil(72/8) * 100
    EXPECT_EQ(report.layers[1].macs, 640u);
    EXPECT_EQ(report.total_macs, 7840u);
    EXPECT_NEAR(report.total_nj,
                report.layers[0].energy_nj + report.layers[1].energy_nj, 1e-12);
    EXPECT_NEAR(report.mean_emac_fj(), emac_lower_bound_fj(8.0, 8), 1e-9);
}

TEST(AccountNetworkTest, CeilingOnVmacCount) {
    std::vector<LayerEnergy> shapes(1);
    shapes[0].name = "odd";
    shapes[0].n_tot = 9;  // needs 2 VMACs of 8
    shapes[0].outputs = 1;
    const auto report = account_network(shapes, VmacEnergyModel{}, 8.0, 8);
    EXPECT_EQ(report.layers[0].vmacs, 2u);
}

TEST(AccountNetworkTest, RejectsDegenerateLayer) {
    std::vector<LayerEnergy> shapes(1);
    shapes[0].name = "zero";
    EXPECT_THROW((void)account_network(shapes, VmacEnergyModel{}, 8.0, 8),
                 std::invalid_argument);
}

TEST(BackendPricingTest, BitExactProfileMatchesScalarModel) {
    // The default backend performs one conversion per chunk at the nominal
    // ENOB, so profile pricing must collapse to the Eq. 3-4 scalar path.
    vmac::VmacConfig cfg;
    cfg.enob = 8.0;
    cfg.nmult = 8;
    const auto backend = vmac::make_backend(cfg, {});
    VmacEnergyModel model;
    model.mult_fj_per_op = 3.0;
    model.digital_fj_per_add = 1.0;
    EXPECT_NEAR(model.backend_emac_fj(*backend, 9), model.emac_fj(8.0, 8), 1e-9);
    EXPECT_NEAR(profile_conversion_fj(backend->conversion_profile(), 9),
                9.0 * adc_energy_lower_bound_pj(8.0) * 1e3, 1e-9);
}

TEST(BackendPricingTest, PartitionedPaysPerPartialConversion) {
    vmac::VmacConfig cfg;
    cfg.enob = 8.0;
    cfg.nmult = 8;
    cfg.bits_w = 9;
    cfg.bits_x = 9;
    vmac::BackendOptions opts;
    opts.kind = vmac::BackendKind::kPartitioned;  // 2x2 at ENOB 8 partials
    const auto backend = vmac::make_backend(cfg, {}, opts);
    // Four partial conversions per chunk, each at the partial resolution.
    EXPECT_NEAR(profile_conversion_fj(backend->conversion_profile(), 1),
                4.0 * adc_energy_lower_bound_pj(8.0) * 1e3, 1e-9);
}

TEST(BackendPricingTest, DeltaSigmaAmortizesFinalConversion) {
    vmac::VmacConfig cfg;
    cfg.enob = 6.0;
    cfg.nmult = 8;
    vmac::BackendOptions opts;
    opts.kind = vmac::BackendKind::kDeltaSigma;
    opts.delta_sigma_final_enob = 12.0;
    const auto backend = vmac::make_backend(cfg, {}, opts);
    VmacEnergyModel model;
    // Per-chunk cost shrinks with output stationarity: the expensive final
    // conversion spreads over more cheap per-cycle conversions.
    const double short_stream = model.backend_emac_fj(*backend, 2);
    const double long_stream = model.backend_emac_fj(*backend, 64);
    EXPECT_GT(short_stream, long_stream);
    // Exact decomposition at 4 chunks: 4 cycles at 6b + one final at 12b.
    const double total4 = profile_conversion_fj(backend->conversion_profile(), 4);
    EXPECT_NEAR(total4,
                4.0 * adc_energy_lower_bound_pj(6.0) * 1e3 +
                    adc_energy_lower_bound_pj(12.0) * 1e3,
                1e-9);
}

TEST(BackendPricingTest, AccountNetworkBackendOverloadMatchesScalarForBitExact) {
    std::vector<LayerEnergy> shapes(1);
    shapes[0].name = "a";
    shapes[0].n_tot = 72;  // divisible by nmult: no partial-chunk rounding
    shapes[0].outputs = 100;
    vmac::VmacConfig cfg;
    cfg.enob = 8.0;
    cfg.nmult = 8;
    const auto backend = vmac::make_backend(cfg, {});
    const auto scalar = account_network(shapes, VmacEnergyModel{}, 8.0, 8);
    const auto priced = account_network(shapes, VmacEnergyModel{}, *backend);
    EXPECT_EQ(priced.layers[0].vmacs, scalar.layers[0].vmacs);
    EXPECT_NEAR(priced.total_nj, scalar.total_nj, 1e-9);
}

TEST(BackendPricingTest, Validation) {
    vmac::VmacConfig cfg;
    const auto backend = vmac::make_backend(cfg, {});
    VmacEnergyModel model;
    EXPECT_THROW((void)model.backend_vmac_energy(*backend, 0), std::invalid_argument);
    EXPECT_THROW((void)profile_conversion_fj(backend->conversion_profile(), 0),
                 std::invalid_argument);
}

TEST(ExtractLayerShapesTest, CountsMatchModelGeometry) {
    models::LayerCommon common;
    common.bits_w = quant::kFloatBits;
    common.bits_x = quant::kFloatBits;
    models::ResNet model(models::tiny_resnet_config(common));
    Tensor probe(Shape{1, 3, 8, 8});
    const auto shapes = core::extract_layer_shapes(model, probe);
    // conv layers + fc
    ASSERT_EQ(shapes.size(), model.num_conv_layers() + 1);
    // Stem: 3x3 over 3 channels on an 8x8 input with 4 output channels.
    EXPECT_EQ(shapes[0].n_tot, 27u);
    EXPECT_EQ(shapes[0].outputs, 4u * 8u * 8u);
    // FC: in_features = last stage channels, outputs = classes.
    EXPECT_EQ(shapes.back().name, "fc");
    EXPECT_EQ(shapes.back().n_tot, 16u);
    EXPECT_EQ(shapes.back().outputs, 4u);
    // Recording must be off again.
    model.set_training(false);
    (void)model.forward(probe);
    for (double m : model.activation_means()) EXPECT_EQ(m, 0.0);
}

TEST(ExtractLayerShapesTest, RequiresBatchOfOne) {
    models::LayerCommon common;
    common.bits_w = quant::kFloatBits;
    common.bits_x = quant::kFloatBits;
    models::ResNet model(models::tiny_resnet_config(common));
    Tensor probe(Shape{2, 3, 8, 8});
    EXPECT_THROW((void)core::extract_layer_shapes(model, probe), std::invalid_argument);
}

}  // namespace
}  // namespace ams::energy
