// Sweep orchestration (src/sweep): grid enumeration and manifest
// round-trips, journal parse tolerance, and the headline merge
// determinism guarantees — a 1-process campaign, a multi-worker
// campaign, and a kill-one-worker-then-resume campaign must all produce
// byte-identical merged reports.
//
// This binary is itself the worker executable the coordinator re-execs
// (the custom main dispatches --amsnet-sweep-worker before gtest), which
// is exactly how amsnet_sweep and bench_sweep_shard host their workers.
#include "sweep/coordinator.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "sweep/grid.hpp"
#include "sweep/journal.hpp"
#include "sweep/worker.hpp"
#include "train/cache_key.hpp"

namespace ams::sweep {
namespace {

namespace fs = std::filesystem;

SweepGrid tiny_grid(const std::string& cache_dir) {
    SweepGrid grid;
    grid.backends = {vmac::BackendKind::kBitExact};
    grid.enobs = {4.5, 5.5, 6.5, 7.5};
    grid.seeds = {3};
    grid.base.dataset.classes = 4;
    grid.base.dataset.train_per_class = 16;
    grid.base.dataset.val_per_class = 8;
    grid.base.dataset.image_size = 8;
    grid.base.eval_passes = 2;
    grid.base.batch_size = 16;
    grid.base.fp32_train.epochs = 1;
    grid.base.fp32_train.batch_size = 16;
    grid.base.fp32_train.patience = 0;
    grid.base.retrain.epochs = 1;
    grid.base.retrain.batch_size = 16;
    grid.base.retrain.patience = 0;
    grid.base.cache_dir = cache_dir;
    return grid;
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/// ctest runs test binaries concurrently (-j): every test gets a
/// pid-scoped scratch root so parallel runs never share directories.
class SweepTest : public ::testing::Test {
protected:
    void SetUp() override {
        root_ = (fs::temp_directory_path() / ("amsnet_sweep_test_" + std::to_string(getpid())))
                    .string();
        fs::remove_all(root_);
        fs::create_directories(root_);
    }
    void TearDown() override { fs::remove_all(root_); }
    std::string root_;
};

TEST_F(SweepTest, EnumerationIsDeterministicAndSeedOutermost) {
    SweepGrid grid = tiny_grid(root_ + "/cache");
    grid.seeds = {3, 9};
    grid.enobs = {4.5, 6.5};
    const std::vector<WorkItem> a = enumerate_grid(grid);
    const std::vector<WorkItem> b = enumerate_grid(grid);
    ASSERT_EQ(a.size(), 4u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].index, i);
        EXPECT_EQ(a[i].point_id, b[i].point_id);
    }
    // seeds outermost: first both enobs of seed 3, then seed 9.
    EXPECT_EQ(a[0].point_id, "bit_exact:e4.5:s3:n8");
    EXPECT_EQ(a[1].point_id, "bit_exact:e6.5:s3:n8");
    EXPECT_EQ(a[2].point_id, "bit_exact:e4.5:s9:n8");
    EXPECT_EQ(a[3].point_id, "bit_exact:e6.5:s9:n8");
}

TEST_F(SweepTest, ContentHashIgnoresRunLocalKnobsOnly) {
    SweepGrid a = tiny_grid(root_ + "/cache-a");
    SweepGrid b = tiny_grid(root_ + "/cache-b");
    b.base.verbose = true;
    EXPECT_EQ(a.content_hash(), b.content_hash());  // run-local knobs excluded

    SweepGrid c = tiny_grid(root_ + "/cache-a");
    c.base.retrain.epochs = 2;
    EXPECT_NE(a.content_hash(), c.content_hash());  // schedule is scientific content
    SweepGrid d = tiny_grid(root_ + "/cache-a");
    d.enobs.push_back(8.0);
    EXPECT_NE(a.content_hash(), d.content_hash());
}

TEST_F(SweepTest, ManifestRoundTripsExactly) {
    SweepGrid grid = tiny_grid(root_ + "/cache");
    grid.enobs = {4.5, 1.0 / 3.0, 6.25};  // includes a non-terminating decimal
    grid.base.retrain.sgd.lr = 0.0037f;
    const std::string path = root_ + "/manifest.txt";
    write_manifest(path, grid, 3);
    const Manifest m = read_manifest(path);
    EXPECT_EQ(m.workers, 3u);
    EXPECT_EQ(m.grid.content_hash(), grid.content_hash());
    ASSERT_EQ(m.grid.enobs.size(), 3u);
    EXPECT_EQ(m.grid.enobs[1], 1.0 / 3.0);  // exact, not approximate
    EXPECT_EQ(m.grid.base.retrain.sgd.lr, 0.0037f);
}

TEST_F(SweepTest, ManifestRejectsGarbage) {
    const std::string path = root_ + "/manifest.txt";
    std::ofstream(path) << "not a manifest\n";
    EXPECT_THROW((void)read_manifest(path), std::runtime_error);
    EXPECT_THROW((void)read_manifest(root_ + "/nonexistent.txt"), std::runtime_error);
}

TEST_F(SweepTest, JournalLineRoundTripsExactDoubles) {
    PointRecord record;
    record.index = 7;
    record.shard = 2;
    record.point_id = "bit_exact:e4.5:s3:n8";
    record.point.enob = 4.5;
    record.point.effective_enob = 1.0 / 3.0;
    record.point.eval_only = {0.1234567890123456789, 0.01, {0.1, 0.2}};
    record.point.retrained = {2.0 / 3.0, 0.0, {2.0 / 3.0}};
    PointRecord parsed;
    ASSERT_TRUE(parse_journal_line(journal_line(record), parsed));
    EXPECT_EQ(parsed.index, record.index);
    EXPECT_EQ(parsed.shard, record.shard);
    EXPECT_EQ(parsed.point_id, record.point_id);
    EXPECT_EQ(parsed.point.effective_enob, record.point.effective_enob);
    EXPECT_EQ(parsed.point.eval_only.mean, record.point.eval_only.mean);
    EXPECT_EQ(parsed.point.eval_only.passes, record.point.eval_only.passes);
    EXPECT_EQ(parsed.point.retrained.mean, record.point.retrained.mean);
    // Re-rendering the parsed record reproduces the line byte-for-byte.
    EXPECT_EQ(journal_line(parsed), journal_line(record));
}

TEST_F(SweepTest, ReplayDropsTruncatedTrailingLine) {
    PointRecord record;
    record.point_id = "p";
    record.point.eval_only.passes = {0.5};
    const std::string good = journal_line(record);
    const std::string path = root_ + "/shard-0.jsonl";
    {
        std::ofstream out(path, std::ios::binary);
        out << good << "\n" << good << "\n"
            << good.substr(0, good.size() / 2);  // killed mid-write
    }
    std::size_t dropped = 0;
    const std::vector<PointRecord> records = replay_journal(path, &dropped);
    EXPECT_EQ(records.size(), 2u);
    EXPECT_EQ(dropped, 1u);
    EXPECT_TRUE(replay_journal(root_ + "/missing.jsonl", &dropped).empty());
    EXPECT_EQ(dropped, 0u);
}

TEST_F(SweepTest, MergedReportRequiresEveryPoint) {
    SweepGrid grid = tiny_grid(root_ + "/cache");
    const std::vector<WorkItem> items = enumerate_grid(grid);
    std::vector<PointRecord> records;
    for (const WorkItem& item : items) {
        PointRecord r;
        r.index = item.index;
        r.point_id = item.point_id;
        r.point.enob = item.enob;
        records.push_back(r);
    }
    EXPECT_FALSE(merged_report_json(grid, records).empty());
    records.pop_back();
    EXPECT_THROW((void)merged_report_json(grid, records), std::runtime_error);
    records.push_back(records.front());
    records.back().index = items.size() - 1;  // right slot, wrong point id
    EXPECT_THROW((void)merged_report_json(grid, records), std::runtime_error);
}

// The headline guarantee (ISSUE acceptance): a 4-enob campaign computed
// (a) in-process, (b) by 2 worker processes, and (c) by 2 workers with
// one SIGKILLed mid-grid then resumed, merges to byte-identical reports.
TEST_F(SweepTest, MergeIsByteIdenticalAcrossWorkersAndKillResume) {
    const auto campaign = [&](const std::string& name, std::size_t workers, int kill_shard) {
        SweepGrid grid = tiny_grid(root_ + "/" + name + "-cache");
        CoordinatorOptions options;
        options.run_dir = root_ + "/" + name;
        options.workers = workers;
        options.threads_per_worker = 1;
        options.kill_shard = kill_shard;
        options.kill_after_points = 1;
        SweepOutcome outcome = run_sweep(grid, options);
        if (!outcome.complete) {
            options.kill_shard = -1;
            const SweepOutcome resumed = run_sweep(grid, options);
            EXPECT_GT(resumed.replayed, 0u);
            outcome = resumed;
        }
        EXPECT_TRUE(outcome.complete);
        return read_file(outcome.report_path);
    };

    const std::string in_process = campaign("p0", 0, -1);
    ASSERT_FALSE(in_process.empty());
    EXPECT_EQ(campaign("p2", 2, -1), in_process);
    EXPECT_EQ(campaign("pkill", 2, 1), in_process);
}

TEST_F(SweepTest, ResumeRefusesDifferentCampaign) {
    SweepGrid grid = tiny_grid(root_ + "/cache");
    write_manifest(manifest_path(root_), grid, 1);
    SweepGrid other = grid;
    other.enobs.push_back(8.0);
    CoordinatorOptions options;
    options.run_dir = root_;
    EXPECT_THROW((void)run_sweep(other, options), std::runtime_error);
}

// ----- PR 10: device-variability (chips / drift) axes -----------------

SweepGrid chip_fleet_grid(const std::string& cache_dir) {
    SweepGrid grid = tiny_grid(cache_dir);
    grid.enobs = {4.5};
    grid.chips = {1, 2};
    grid.drift_times = {0.0, 32.0};
    grid.variation.cell_offset_sigma = 0.02;
    grid.variation.drift_nu = 0.1;
    return grid;
}

TEST_F(SweepTest, ChipAxesExtendPointIdsWithoutTouchingLegacyIds) {
    // Legacy grids enumerate exactly as before PR 10: no chip/time
    // suffix, no field creep in the content hash.
    SweepGrid legacy = tiny_grid(root_ + "/cache");
    const std::string legacy_hash = legacy.content_hash();
    EXPECT_EQ(enumerate_grid(legacy)[0].point_id, "bit_exact:e4.5:s3:n8");
    legacy.variation.chip_seed = 5;  // template id alone is inactive
    EXPECT_EQ(legacy.content_hash(), legacy_hash);

    SweepGrid fleet = chip_fleet_grid(root_ + "/cache");
    EXPECT_NE(fleet.content_hash(), legacy_hash);
    const std::vector<WorkItem> items = enumerate_grid(fleet);
    // seeds > chips > backends > nmults > enobs > drift_times.
    ASSERT_EQ(items.size(), 4u);
    EXPECT_EQ(items[0].point_id, "bit_exact:e4.5:s3:n8:c1:t0");
    EXPECT_EQ(items[1].point_id, "bit_exact:e4.5:s3:n8:c1:t32");
    EXPECT_EQ(items[2].point_id, "bit_exact:e4.5:s3:n8:c2:t0");
    EXPECT_EQ(items[3].point_id, "bit_exact:e4.5:s3:n8:c2:t32");
    EXPECT_EQ(items[3].chip, 2u);
    EXPECT_EQ(items[3].drift_time, 32.0);
    // The worker-facing options carry the item's chip coordinates.
    const auto opts = fleet.sweep_options(items[3]);
    EXPECT_EQ(opts.backend.variation.chip_seed, 2u);
    EXPECT_EQ(opts.backend.variation.drift_time, 32.0);
    EXPECT_EQ(opts.backend.variation.cell_offset_sigma, 0.02);
}

TEST_F(SweepTest, VariationManifestRoundTripsExactly) {
    SweepGrid grid = chip_fleet_grid(root_ + "/cache");
    grid.drift_times = {0.0, 1.0 / 3.0};  // non-terminating decimal
    grid.variation.drift_nu_sigma = 0.0125;
    grid.variation.ir_drop_alpha = 0.05;
    const std::string path = root_ + "/manifest.txt";
    write_manifest(path, grid, 2);
    const Manifest m = read_manifest(path);
    EXPECT_EQ(m.grid.content_hash(), grid.content_hash());
    ASSERT_EQ(m.grid.chips.size(), 2u);
    EXPECT_EQ(m.grid.drift_times[1], 1.0 / 3.0);  // exact, not approximate
    EXPECT_EQ(m.grid.variation.cell_offset_sigma, 0.02);
    EXPECT_EQ(m.grid.variation.drift_nu_sigma, 0.0125);
    EXPECT_EQ(m.grid.variation.ir_drop_alpha, 0.05);

    // Legacy manifests stay byte-free of variation fields.
    write_manifest(path, tiny_grid(root_ + "/cache"), 2);
    EXPECT_EQ(read_file(path).find("variation."), std::string::npos);
}

TEST_F(SweepTest, ResumeRefusesDifferentChipFleet) {
    SweepGrid grid = chip_fleet_grid(root_ + "/cache");
    write_manifest(manifest_path(root_), grid, 1);
    SweepGrid other = grid;
    other.chips = {1, 3};  // same shape, different fabricated population
    CoordinatorOptions options;
    options.run_dir = root_;
    EXPECT_THROW((void)run_sweep(other, options), std::runtime_error);
}

TEST_F(SweepTest, ChipFleetMergeIsByteIdenticalAcrossWorkersAndKillResume) {
    const auto campaign = [&](const std::string& name, std::size_t workers, int kill_shard) {
        SweepGrid grid = chip_fleet_grid(root_ + "/" + name + "-cache");
        CoordinatorOptions options;
        options.run_dir = root_ + "/" + name;
        options.workers = workers;
        options.threads_per_worker = 1;
        options.kill_shard = kill_shard;
        options.kill_after_points = 1;
        SweepOutcome outcome = run_sweep(grid, options);
        if (!outcome.complete) {
            options.kill_shard = -1;
            const SweepOutcome resumed = run_sweep(grid, options);
            EXPECT_GT(resumed.replayed, 0u);
            outcome = resumed;
        }
        EXPECT_TRUE(outcome.complete);
        return read_file(outcome.report_path);
    };

    const std::string in_process = campaign("c0", 0, -1);
    ASSERT_FALSE(in_process.empty());
    // Chip rows present, with their coordinates.
    EXPECT_NE(in_process.find("\"chip\":"), std::string::npos);
    EXPECT_NE(in_process.find("\"drift_time\":"), std::string::npos);
    EXPECT_NE(in_process.find(":c2:t32"), std::string::npos);
    EXPECT_EQ(campaign("c2", 2, -1), in_process);
    EXPECT_EQ(campaign("ckill", 2, 1), in_process);
}

}  // namespace
}  // namespace ams::sweep

// Worker re-invocations (the coordinator exec's this binary with
// --amsnet-sweep-worker) must dispatch before gtest sees argv. Defining
// main here wins over gtest_main's (only linked when main is unresolved).
int main(int argc, char** argv) {
    if (const int rc = ams::sweep::maybe_worker_main(argc, argv); rc >= 0) return rc;
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
