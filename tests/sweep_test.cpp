// Sweep orchestration (src/sweep): grid enumeration and manifest
// round-trips, journal parse tolerance, and the headline merge
// determinism guarantees — a 1-process campaign, a multi-worker
// campaign, and a kill-one-worker-then-resume campaign must all produce
// byte-identical merged reports.
//
// This binary is itself the worker executable the coordinator re-execs
// (the custom main dispatches --amsnet-sweep-worker before gtest), which
// is exactly how amsnet_sweep and bench_sweep_shard host their workers.
#include "sweep/coordinator.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "sweep/grid.hpp"
#include "sweep/journal.hpp"
#include "sweep/worker.hpp"
#include "train/cache_key.hpp"

namespace ams::sweep {
namespace {

namespace fs = std::filesystem;

SweepGrid tiny_grid(const std::string& cache_dir) {
    SweepGrid grid;
    grid.backends = {vmac::BackendKind::kBitExact};
    grid.enobs = {4.5, 5.5, 6.5, 7.5};
    grid.seeds = {3};
    grid.base.dataset.classes = 4;
    grid.base.dataset.train_per_class = 16;
    grid.base.dataset.val_per_class = 8;
    grid.base.dataset.image_size = 8;
    grid.base.eval_passes = 2;
    grid.base.batch_size = 16;
    grid.base.fp32_train.epochs = 1;
    grid.base.fp32_train.batch_size = 16;
    grid.base.fp32_train.patience = 0;
    grid.base.retrain.epochs = 1;
    grid.base.retrain.batch_size = 16;
    grid.base.retrain.patience = 0;
    grid.base.cache_dir = cache_dir;
    return grid;
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/// ctest runs test binaries concurrently (-j): every test gets a
/// pid-scoped scratch root so parallel runs never share directories.
class SweepTest : public ::testing::Test {
protected:
    void SetUp() override {
        root_ = (fs::temp_directory_path() / ("amsnet_sweep_test_" + std::to_string(getpid())))
                    .string();
        fs::remove_all(root_);
        fs::create_directories(root_);
    }
    void TearDown() override { fs::remove_all(root_); }
    std::string root_;
};

TEST_F(SweepTest, EnumerationIsDeterministicAndSeedOutermost) {
    SweepGrid grid = tiny_grid(root_ + "/cache");
    grid.seeds = {3, 9};
    grid.enobs = {4.5, 6.5};
    const std::vector<WorkItem> a = enumerate_grid(grid);
    const std::vector<WorkItem> b = enumerate_grid(grid);
    ASSERT_EQ(a.size(), 4u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].index, i);
        EXPECT_EQ(a[i].point_id, b[i].point_id);
    }
    // seeds outermost: first both enobs of seed 3, then seed 9.
    EXPECT_EQ(a[0].point_id, "bit_exact:e4.5:s3:n8");
    EXPECT_EQ(a[1].point_id, "bit_exact:e6.5:s3:n8");
    EXPECT_EQ(a[2].point_id, "bit_exact:e4.5:s9:n8");
    EXPECT_EQ(a[3].point_id, "bit_exact:e6.5:s9:n8");
}

TEST_F(SweepTest, ContentHashIgnoresRunLocalKnobsOnly) {
    SweepGrid a = tiny_grid(root_ + "/cache-a");
    SweepGrid b = tiny_grid(root_ + "/cache-b");
    b.base.verbose = true;
    EXPECT_EQ(a.content_hash(), b.content_hash());  // run-local knobs excluded

    SweepGrid c = tiny_grid(root_ + "/cache-a");
    c.base.retrain.epochs = 2;
    EXPECT_NE(a.content_hash(), c.content_hash());  // schedule is scientific content
    SweepGrid d = tiny_grid(root_ + "/cache-a");
    d.enobs.push_back(8.0);
    EXPECT_NE(a.content_hash(), d.content_hash());
}

TEST_F(SweepTest, ManifestRoundTripsExactly) {
    SweepGrid grid = tiny_grid(root_ + "/cache");
    grid.enobs = {4.5, 1.0 / 3.0, 6.25};  // includes a non-terminating decimal
    grid.base.retrain.sgd.lr = 0.0037f;
    const std::string path = root_ + "/manifest.txt";
    write_manifest(path, grid, 3);
    const Manifest m = read_manifest(path);
    EXPECT_EQ(m.workers, 3u);
    EXPECT_EQ(m.grid.content_hash(), grid.content_hash());
    ASSERT_EQ(m.grid.enobs.size(), 3u);
    EXPECT_EQ(m.grid.enobs[1], 1.0 / 3.0);  // exact, not approximate
    EXPECT_EQ(m.grid.base.retrain.sgd.lr, 0.0037f);
}

TEST_F(SweepTest, ManifestRejectsGarbage) {
    const std::string path = root_ + "/manifest.txt";
    std::ofstream(path) << "not a manifest\n";
    EXPECT_THROW((void)read_manifest(path), std::runtime_error);
    EXPECT_THROW((void)read_manifest(root_ + "/nonexistent.txt"), std::runtime_error);
}

TEST_F(SweepTest, JournalLineRoundTripsExactDoubles) {
    PointRecord record;
    record.index = 7;
    record.shard = 2;
    record.point_id = "bit_exact:e4.5:s3:n8";
    record.point.enob = 4.5;
    record.point.effective_enob = 1.0 / 3.0;
    record.point.eval_only = {0.1234567890123456789, 0.01, {0.1, 0.2}};
    record.point.retrained = {2.0 / 3.0, 0.0, {2.0 / 3.0}};
    PointRecord parsed;
    ASSERT_TRUE(parse_journal_line(journal_line(record), parsed));
    EXPECT_EQ(parsed.index, record.index);
    EXPECT_EQ(parsed.shard, record.shard);
    EXPECT_EQ(parsed.point_id, record.point_id);
    EXPECT_EQ(parsed.point.effective_enob, record.point.effective_enob);
    EXPECT_EQ(parsed.point.eval_only.mean, record.point.eval_only.mean);
    EXPECT_EQ(parsed.point.eval_only.passes, record.point.eval_only.passes);
    EXPECT_EQ(parsed.point.retrained.mean, record.point.retrained.mean);
    // Re-rendering the parsed record reproduces the line byte-for-byte.
    EXPECT_EQ(journal_line(parsed), journal_line(record));
}

TEST_F(SweepTest, ReplayDropsTruncatedTrailingLine) {
    PointRecord record;
    record.point_id = "p";
    record.point.eval_only.passes = {0.5};
    const std::string good = journal_line(record);
    const std::string path = root_ + "/shard-0.jsonl";
    {
        std::ofstream out(path, std::ios::binary);
        out << good << "\n" << good << "\n"
            << good.substr(0, good.size() / 2);  // killed mid-write
    }
    std::size_t dropped = 0;
    const std::vector<PointRecord> records = replay_journal(path, &dropped);
    EXPECT_EQ(records.size(), 2u);
    EXPECT_EQ(dropped, 1u);
    EXPECT_TRUE(replay_journal(root_ + "/missing.jsonl", &dropped).empty());
    EXPECT_EQ(dropped, 0u);
}

TEST_F(SweepTest, MergedReportRequiresEveryPoint) {
    SweepGrid grid = tiny_grid(root_ + "/cache");
    const std::vector<WorkItem> items = enumerate_grid(grid);
    std::vector<PointRecord> records;
    for (const WorkItem& item : items) {
        PointRecord r;
        r.index = item.index;
        r.point_id = item.point_id;
        r.point.enob = item.enob;
        records.push_back(r);
    }
    EXPECT_FALSE(merged_report_json(grid, records).empty());
    records.pop_back();
    EXPECT_THROW((void)merged_report_json(grid, records), std::runtime_error);
    records.push_back(records.front());
    records.back().index = items.size() - 1;  // right slot, wrong point id
    EXPECT_THROW((void)merged_report_json(grid, records), std::runtime_error);
}

// The headline guarantee (ISSUE acceptance): a 4-enob campaign computed
// (a) in-process, (b) by 2 worker processes, and (c) by 2 workers with
// one SIGKILLed mid-grid then resumed, merges to byte-identical reports.
TEST_F(SweepTest, MergeIsByteIdenticalAcrossWorkersAndKillResume) {
    const auto campaign = [&](const std::string& name, std::size_t workers, int kill_shard) {
        SweepGrid grid = tiny_grid(root_ + "/" + name + "-cache");
        CoordinatorOptions options;
        options.run_dir = root_ + "/" + name;
        options.workers = workers;
        options.threads_per_worker = 1;
        options.kill_shard = kill_shard;
        options.kill_after_points = 1;
        SweepOutcome outcome = run_sweep(grid, options);
        if (!outcome.complete) {
            options.kill_shard = -1;
            const SweepOutcome resumed = run_sweep(grid, options);
            EXPECT_GT(resumed.replayed, 0u);
            outcome = resumed;
        }
        EXPECT_TRUE(outcome.complete);
        return read_file(outcome.report_path);
    };

    const std::string in_process = campaign("p0", 0, -1);
    ASSERT_FALSE(in_process.empty());
    EXPECT_EQ(campaign("p2", 2, -1), in_process);
    EXPECT_EQ(campaign("pkill", 2, 1), in_process);
}

TEST_F(SweepTest, ResumeRefusesDifferentCampaign) {
    SweepGrid grid = tiny_grid(root_ + "/cache");
    write_manifest(manifest_path(root_), grid, 1);
    SweepGrid other = grid;
    other.enobs.push_back(8.0);
    CoordinatorOptions options;
    options.run_dir = root_;
    EXPECT_THROW((void)run_sweep(other, options), std::runtime_error);
}

}  // namespace
}  // namespace ams::sweep

// Worker re-invocations (the coordinator exec's this binary with
// --amsnet-sweep-worker) must dispatch before gtest sees argv. Defining
// main here wins over gtest_main's (only linked when main is unresolved).
int main(int argc, char** argv) {
    if (const int rc = ams::sweep::maybe_worker_main(argc, argv); rc >= 0) return rc;
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
