// The plan-IR dump and compile-time observability: a golden textual dump
// for a fixed single-unit graph (the format is part of the debugging
// surface — changes must be deliberate), the AMSNET_PLAN_DUMP file
// export, and the plan_* metrics counters.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "compile/plan.hpp"
#include "models/conv_unit.hpp"
#include "models/resnet.hpp"
#include "runtime/eval_context.hpp"
#include "runtime/metrics.hpp"
#include "train/evaluate.hpp"

namespace ams {
namespace {

/// The fixed graph every dump test compiles: one quantized ConvUnit
/// (conv -> inject -> bn) on a 2x3x8x8 input.
std::unique_ptr<models::ConvUnit> make_unit() {
    Rng rng(5);
    nn::Conv2dOptions opts{3, 4, 3, 1, 1, false};
    vmac::VmacConfig vcfg;
    vcfg.enob = 6.0;
    vcfg.nmult = 8;
    auto unit = std::make_unique<models::ConvUnit>(opts, 8, vcfg, /*ams_enabled=*/true, rng,
                                                   vmac::InjectionMode::kLumpedGaussian,
                                                   /*noise_stream=*/0);
    unit->set_training(false);
    return unit;
}

constexpr const char* kGoldenDump =
    "plan \"ConvUnit\" input=[2, 3, 8, 8] options{fuse=on fold_bn=off gemm_int=off}\n"
    "values (2, arena 512 floats):\n"
    "  v0: [2, 3, 8, 8] external \"input\"\n"
    "  v1: [2, 4, 8, 8] @0 \"conv_unit\" (output)\n"
    "steps (1):\n"
    "  s0: conv v0 -> v1  cout=4 k=3x3 s=1 p=1 numeric=fp32 tail=[inject record bn]\n"
    "stats: steps=1 layers_fused=2 intermediates_eliminated=2 module_walk_floats=1536 "
    "plan_floats=512\n";

TEST(PlanDumpTest, GoldenDumpForSingleConvUnit) {
    auto unit = make_unit();
    compile::ExecutionPlan plan = compile::compile(*unit, Shape{2, 3, 8, 8});
    EXPECT_EQ(plan.dump_string(), kGoldenDump);

    std::ostringstream os;
    plan.dump(os);
    EXPECT_EQ(os.str(), plan.dump_string());
}

TEST(PlanDumpTest, PlanDumpEnvExportsFile) {
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "amsnet_plan_dump_test";
    const std::filesystem::path path = dir / "nested" / "plan.txt";
    std::filesystem::remove_all(dir);
    ::setenv("AMSNET_PLAN_DUMP", path.c_str(), 1);
    auto unit = make_unit();
    compile::ExecutionPlan plan = compile::compile(*unit, Shape{2, 3, 8, 8});
    ::unsetenv("AMSNET_PLAN_DUMP");

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "dump file not written: " << path;
    std::ostringstream content;
    content << in.rdbuf();
    EXPECT_EQ(content.str(), plan.dump_string());
    std::filesystem::remove_all(dir);
}

TEST(PlanDumpTest, CompileAndRunUpdatePlanCounters) {
    namespace metrics = runtime::metrics;
    metrics::set_level(metrics::Level::kCounters);
    metrics::reset();

    auto unit = make_unit();
    runtime::EvalContext ctx;
    (void)unit->plan(Shape{2, 3, 8, 8}, ctx);
    compile::ExecutionPlan plan = compile::compile(*unit, Shape{2, 3, 8, 8});
    EXPECT_EQ(metrics::value(metrics::Counter::kPlanCompiles), 1u);
    EXPECT_EQ(metrics::value(metrics::Counter::kPlanLayersFused), plan.stats().layers_fused);
    EXPECT_EQ(metrics::value(metrics::Counter::kPlanIntermediatesEliminated),
              plan.stats().intermediates_eliminated);
    ASSERT_GT(plan.stats().module_walk_floats, plan.stats().plan_floats);
    EXPECT_EQ(metrics::value(metrics::Counter::kPlanArenaBytesSaved),
              4u * (plan.stats().module_walk_floats - plan.stats().plan_floats));

    Rng rng(9);
    Tensor x(Shape{2, 3, 8, 8});
    x.fill_uniform(rng, -1.0f, 1.0f);
    EXPECT_EQ(metrics::value(metrics::Counter::kPlanRuns), 0u);
    (void)plan.run(x, ctx);
    (void)plan.run(x, ctx);
    EXPECT_EQ(metrics::value(metrics::Counter::kPlanRuns), 2u);

    metrics::reset();
    metrics::set_level(metrics::Level::kOff);
}

TEST(PlanDumpTest, EvaluatePathHonorsPlanDumpEnv) {
    // The end-to-end wiring: AMSNET_COMPILE=on + AMSNET_PLAN_DUMP during
    // evaluate_top1 leaves the tiny-ResNet plan IR on disk.
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "amsnet_plan_dump_eval";
    const std::filesystem::path path = dir / "resnet_plan.txt";
    std::filesystem::remove_all(dir);
    ::setenv("AMSNET_COMPILE", "on", 1);
    ::setenv("AMSNET_PLAN_DUMP", path.c_str(), 1);

    models::LayerCommon common;
    common.bits_w = 8;
    common.bits_x = 8;
    models::ResNet model(models::tiny_resnet_config(common));
    Rng rng(3);
    Tensor images(Shape{6, 3, 8, 8});
    images.fill_uniform(rng, -1.0f, 1.0f);
    const std::vector<std::size_t> labels{0, 1, 2, 3, 0, 1};
    (void)train::evaluate_top1(model, images, labels, 4, 1);

    ::unsetenv("AMSNET_PLAN_DUMP");
    ::unsetenv("AMSNET_COMPILE");
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "dump file not written: " << path;
    std::ostringstream content;
    content << in.rdbuf();
    EXPECT_NE(content.str().find("plan \"ResNet\""), std::string::npos);
    EXPECT_NE(content.str().find("stats: steps="), std::string::npos);
    std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ams
