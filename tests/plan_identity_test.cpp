// The graph compiler's acceptance criterion (DESIGN.md §13): a compiled
// ExecutionPlan produces logits *bit-identical* to the module walk for
// every backend, at any thread count, on both SIMD arms. These tests pin
// that contract across the model variants the paper studies (quant+AMS,
// FP32, bottleneck, stem-maxpool), all five VMAC datapaths, partial
// batches, recording mode, post-compile injector toggles, the
// AMSNET_COMPILE evaluate path, and serve's compiled replicas. The BN
// fold pass (a deployment-semantics change, opt-in) is checked against
// the reference fold (models::fold_conv_bn + apply_folded) instead.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "ams/vmac_backend.hpp"
#include "ams/vmac_conv.hpp"
#include "compile/plan.hpp"
#include "data/synthetic_imagenet.hpp"
#include "models/fold.hpp"
#include "models/resnet.hpp"
#include "nn/activations.hpp"
#include "nn/sequential.hpp"
#include "runtime/eval_context.hpp"
#include "runtime/simd.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/server.hpp"
#include "train/evaluate.hpp"

namespace ams {
namespace {

/// Runs `make_output()` under a global pool of `threads` executors and
/// returns the raw floats, restoring the env-default pool afterwards.
template <typename Fn>
std::vector<float> with_threads(std::size_t threads, Fn&& make_output) {
    runtime::ThreadPool::set_global_threads(threads);
    Tensor out = make_output();
    std::vector<float> bits(out.data(), out.data() + out.size());
    runtime::ThreadPool::set_global_threads(runtime::ThreadPool::threads_from_env());
    return bits;
}

void expect_bit_identical(const std::vector<float>& a, const std::vector<float>& b) {
    ASSERT_EQ(a.size(), b.size());
    ASSERT_FALSE(a.empty());
    // memcmp, not float ==: bit-identical is the contract.
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

/// The core harness: fresh model per run (injector noise epochs advance
/// per forward, so models are never reused across runs), module walk as
/// reference, compiled plan as candidate, over {1, 4} threads and both
/// SIMD arms.
template <typename MakeModel>
void expect_plan_matches_module(MakeModel&& make_model, const Tensor& x,
                                const compile::CompileOptions& copts = {}) {
    auto module_walk = [&] {
        auto model = make_model();
        model->set_training(false);
        runtime::EvalContext ctx;
        (void)model->plan(x.shape(), ctx);
        const Tensor out = model->forward(x, ctx);
        return Tensor(out);  // deep copy out of the arena before ctx dies
    };
    auto planned = [&] {
        auto model = make_model();
        model->set_training(false);
        runtime::EvalContext ctx;
        (void)model->plan(x.shape(), ctx);
        compile::ExecutionPlan plan = compile::compile(*model, x.shape(), copts);
        const Tensor out = plan.run(x, ctx);
        return Tensor(out);
    };
    const simd::Level saved = simd::active_level();
    for (simd::Level level : {simd::Level::kScalar, simd::Level::kAvx2}) {
        if (level == simd::Level::kAvx2 && !simd::cpu_supports_avx2_fma()) continue;
        simd::set_level(level);
        const std::vector<float> reference = with_threads(1, module_walk);
        expect_bit_identical(reference, with_threads(1, planned));
        expect_bit_identical(reference, with_threads(4, planned));
        expect_bit_identical(reference, with_threads(4, module_walk));
    }
    simd::set_level(saved);
}

models::LayerCommon quant_ams_common() {
    models::LayerCommon common;
    common.bits_w = 8;
    common.bits_x = 8;
    common.ams_enabled = true;  // stochastic injection: the hard case
    common.vmac.enob = 4.0;
    common.vmac.nmult = 8;
    return common;
}

Tensor tiny_input(std::uint64_t seed = 31) {
    Rng rng(seed);
    Tensor x(Shape{5, 3, 8, 8});  // batch 5: uneven chunks at 4 threads
    x.fill_uniform(rng, -1.0f, 1.0f);
    return x;
}

TEST(PlanIdentityTest, TinyResNetQuantAmsBitIdentical) {
    const models::ResNetConfig cfg = models::tiny_resnet_config(quant_ams_common());
    expect_plan_matches_module([&] { return std::make_unique<models::ResNet>(cfg); },
                               tiny_input());
}

TEST(PlanIdentityTest, TinyResNetUnfusedPlanBitIdentical) {
    // fuse=off lowers every elementwise layer as a standalone step with
    // its own buffer — a different plan, the same bits.
    const models::ResNetConfig cfg = models::tiny_resnet_config(quant_ams_common());
    compile::CompileOptions copts;
    copts.fuse = false;
    expect_plan_matches_module([&] { return std::make_unique<models::ResNet>(cfg); },
                               tiny_input(), copts);
}

TEST(PlanIdentityTest, MiniResNetBottleneckBitIdentical) {
    // Bottleneck blocks bring identity shortcuts (the pinning path) and
    // stem stride-2 stages into the lowering.
    const models::ResNetConfig cfg = models::mini_resnet_config(quant_ams_common());
    Rng rng(17);
    Tensor x(Shape{3, 3, 16, 16});
    x.fill_uniform(rng, -1.0f, 1.0f);
    expect_plan_matches_module([&] { return std::make_unique<models::ResNet>(cfg); }, x);
}

TEST(PlanIdentityTest, Fp32BaselineBitIdentical) {
    // FP32 build: no quant_input, plain ReLU activations, latent weights
    // aliased directly (no compile-time re-quantization).
    models::LayerCommon common;  // bits 32/32, ams off
    const models::ResNetConfig cfg = models::tiny_resnet_config(common);
    expect_plan_matches_module([&] { return std::make_unique<models::ResNet>(cfg); },
                               tiny_input(5));
}

TEST(PlanIdentityTest, StemMaxpoolBitIdentical) {
    models::ResNetConfig cfg = models::tiny_resnet_config(quant_ams_common());
    cfg.stem_maxpool = true;  // exercises the kMaxPool lowering
    expect_plan_matches_module([&] { return std::make_unique<models::ResNet>(cfg); },
                               tiny_input(11));
}

TEST(PlanIdentityTest, PartialBatchBitIdentical) {
    // A plan compiled at batch 5 must serve any batch <= 5 with the same
    // bits as the module walk, including the epoch bookkeeping across a
    // full-then-partial sequence (the evaluate tail-batch pattern).
    const models::ResNetConfig cfg = models::tiny_resnet_config(quant_ams_common());
    const Tensor x5 = tiny_input();
    const Tensor x3 = Tensor::borrowed(Shape{3, 3, 8, 8}, const_cast<float*>(x5.data()));

    auto module_walk = [&] {
        models::ResNet model(cfg);
        model.set_training(false);
        runtime::EvalContext ctx;
        (void)model.plan(x5.shape(), ctx);
        Tensor both(Shape{x5.dim(0) + x3.dim(0), cfg.num_classes});
        const Tensor full = model.forward(x5, ctx);
        std::memcpy(both.data(), full.data(), full.size() * sizeof(float));
        const Tensor tail = model.forward(x3, ctx);
        std::memcpy(both.data() + full.size(), tail.data(), tail.size() * sizeof(float));
        return both;
    };
    auto planned = [&] {
        models::ResNet model(cfg);
        model.set_training(false);
        runtime::EvalContext ctx;
        (void)model.plan(x5.shape(), ctx);
        compile::ExecutionPlan plan = compile::compile(model, x5.shape());
        Tensor both(Shape{x5.dim(0) + x3.dim(0), cfg.num_classes});
        const Tensor full = plan.run(x5, ctx);
        std::memcpy(both.data(), full.data(), full.size() * sizeof(float));
        const Tensor tail = plan.run(x3, ctx);
        std::memcpy(both.data() + full.size(), tail.data(), tail.size() * sizeof(float));
        return both;
    };
    expect_bit_identical(with_threads(1, module_walk), with_threads(1, planned));
    expect_bit_identical(with_threads(4, module_walk), with_threads(4, planned));
}

TEST(PlanIdentityTest, AllBackendsBitIdentical) {
    // Every hardware datapath through the kVmacConv lowering, wrapped in
    // a Sequential with a fusible ReLU tail. bits 9/9 so the partitioned
    // backend's sign-magnitude chunking (bits-1 divisible by nw/nx) holds.
    vmac::VmacConfig cfg;
    cfg.enob = 8.0;
    cfg.nmult = 8;
    cfg.bits_w = 9;
    cfg.bits_x = 9;
    Rng wrng(11);
    Tensor w(Shape{4, 3, 3, 3});
    w.fill_uniform(wrng, -1.0f, 1.0f);
    Rng xrng(13);
    Tensor x(Shape{3, 3, 6, 6});
    x.fill_uniform(xrng, 0.0f, 1.0f);

    for (vmac::BackendKind kind : vmac::all_backend_kinds()) {
        vmac::BackendOptions bopts;
        bopts.kind = kind;
        auto make_model = [&] {
            auto seq = std::make_unique<nn::Sequential>();
            seq->emplace<vmac::VmacConv2d>(Tensor(w), 1, 1, cfg, vmac::AnalogOptions{}, bopts,
                                           Rng(12));
            seq->emplace<nn::ReLU>();
            return seq;
        };
        SCOPED_TRACE(vmac::backend_kind_name(kind));
        expect_plan_matches_module(make_model, x);
    }
}

TEST(PlanIdentityTest, InjectorToggleAfterCompileBitIdentical) {
    // The fused tail's inject slot is resolved at *run* time, so flipping
    // the master AMS switch after compiling must track the module walk.
    const models::ResNetConfig cfg = models::tiny_resnet_config(quant_ams_common());
    const Tensor x = tiny_input();
    auto module_walk = [&] {
        models::ResNet model(cfg);
        model.set_training(false);
        model.set_ams_enabled(false);
        runtime::EvalContext ctx;
        (void)model.plan(x.shape(), ctx);
        const Tensor quiet = model.forward(x, ctx);
        Tensor both(Shape{2 * quiet.dim(0), quiet.dim(1)});
        std::memcpy(both.data(), quiet.data(), quiet.size() * sizeof(float));
        model.set_ams_enabled(true);
        const Tensor noisy = model.forward(x, ctx);
        std::memcpy(both.data() + quiet.size(), noisy.data(), noisy.size() * sizeof(float));
        return both;
    };
    auto planned = [&] {
        models::ResNet model(cfg);
        model.set_training(false);
        runtime::EvalContext ctx;
        (void)model.plan(x.shape(), ctx);
        compile::ExecutionPlan plan = compile::compile(model, x.shape());
        model.set_ams_enabled(false);
        const Tensor quiet = plan.run(x, ctx);
        Tensor both(Shape{2 * quiet.dim(0), quiet.dim(1)});
        std::memcpy(both.data(), quiet.data(), quiet.size() * sizeof(float));
        model.set_ams_enabled(true);
        const Tensor noisy = plan.run(x, ctx);
        std::memcpy(both.data() + quiet.size(), noisy.data(), noisy.size() * sizeof(float));
        return both;
    };
    expect_bit_identical(with_threads(1, module_walk), with_threads(1, planned));
    expect_bit_identical(with_threads(4, module_walk), with_threads(4, planned));
}

TEST(PlanIdentityTest, RecordingModeMatchesModuleWalk) {
    // Fig. 6 instrumentation through the compiled path: logits stay
    // bit-identical and the accumulated per-layer activation means agree
    // exactly (same serial double summation over the same values).
    const models::ResNetConfig cfg = models::tiny_resnet_config(quant_ams_common());
    const Tensor x = tiny_input();
    std::vector<double> walk_means;
    std::vector<double> plan_means;
    auto module_walk = [&] {
        models::ResNet model(cfg);
        model.set_training(false);
        model.set_recording(true);
        runtime::EvalContext ctx;
        (void)model.plan(x.shape(), ctx);
        const Tensor out = model.forward(x, ctx);
        walk_means = model.activation_means();
        return Tensor(out);
    };
    auto planned = [&] {
        models::ResNet model(cfg);
        model.set_training(false);
        runtime::EvalContext ctx;
        (void)model.plan(x.shape(), ctx);
        compile::ExecutionPlan plan = compile::compile(model, x.shape());
        model.set_recording(true);  // after compile: resolved at run time
        const Tensor out = plan.run(x, ctx);
        plan_means = model.activation_means();
        return Tensor(out);
    };
    expect_bit_identical(with_threads(1, module_walk), with_threads(1, planned));
    ASSERT_EQ(walk_means.size(), plan_means.size());
    ASSERT_FALSE(walk_means.empty());
    for (std::size_t i = 0; i < walk_means.size(); ++i) {
        EXPECT_DOUBLE_EQ(walk_means[i], plan_means[i]) << "conv layer " << i;
    }
}

TEST(PlanIdentityTest, FoldedPlanMatchesReferenceFold) {
    // CompileOptions::fold_bn on a single FP32 ConvUnit must equal the
    // reference deployment fold (fold_conv_bn + apply_folded) bit for bit
    // — both sides call models::fold_bn_into_conv and the shared
    // conv_eval_run executor with a per-channel digital bias epilogue.
    Rng rng(23);
    nn::Conv2dOptions opts{3, 8, 3, 1, 1, false};
    vmac::VmacConfig vcfg;
    vcfg.enob = 6.0;
    vcfg.nmult = 8;
    models::ConvUnit unit(opts, quant::kFloatBits, vcfg, /*ams_enabled=*/false, rng,
                          vmac::InjectionMode::kLumpedGaussian, /*noise_stream=*/0);

    // Drive the BN running statistics off their init so the fold is
    // non-trivial.
    Tensor warm(Shape{4, 3, 8, 8});
    warm.fill_uniform(rng, -1.0f, 1.0f);
    unit.set_training(true);
    (void)unit.forward(warm);
    warm.fill_uniform(rng, -1.0f, 1.0f);
    (void)unit.forward(warm);
    unit.set_training(false);

    Tensor x(Shape{5, 3, 8, 8});
    x.fill_uniform(rng, -1.0f, 1.0f);
    const models::FoldedConv folded = models::fold_conv_bn(unit, unit.bn().eps());
    const Tensor reference = models::apply_folded(folded, x, opts.stride, opts.padding);

    compile::CompileOptions copts;
    copts.fold_bn = true;
    runtime::EvalContext ctx;
    (void)unit.plan(x.shape(), ctx);
    compile::ExecutionPlan plan = compile::compile(unit, x.shape(), copts);
    const Tensor out = plan.run(x, ctx);

    ASSERT_EQ(out.size(), reference.size());
    EXPECT_EQ(std::memcmp(out.data(), reference.data(), out.size() * sizeof(float)), 0);
    // The BN layer vanished from the plan entirely.
    EXPECT_GE(plan.stats().layers_fused, 1u);
    for (const compile::Step& step : plan.program().steps) {
        EXPECT_NE(step.kind, compile::StepKind::kElementwise);
        for (const compile::EwOp& op : step.tail) {
            EXPECT_NE(op.kind, compile::EwOp::Kind::kBatchNorm);
        }
    }
}

TEST(PlanIdentityTest, FoldedResNetRunsAndDropsBatchNorm) {
    // Network-level fold smoke test (quantized weights are re-quantized on
    // the folded grid, so logits legitimately differ from the module
    // walk): the plan compiles, runs, and contains no BN work.
    models::LayerCommon common = quant_ams_common();
    common.ams_enabled = false;  // folding is a deployment (noise-free) step
    const models::ResNetConfig cfg = models::tiny_resnet_config(common);
    models::ResNet model(cfg);
    model.set_training(false);
    const Tensor x = tiny_input();
    compile::CompileOptions copts;
    copts.fold_bn = true;
    runtime::EvalContext ctx;
    (void)model.plan(x.shape(), ctx);
    compile::ExecutionPlan plan = compile::compile(model, x.shape(), copts);
    const Tensor out = plan.run(x, ctx);
    ASSERT_EQ(out.rank(), 2u);
    EXPECT_EQ(out.dim(0), 5u);
    EXPECT_EQ(out.dim(1), cfg.num_classes);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_TRUE(std::isfinite(out[i])) << "logit " << i;
    }
    for (const compile::Step& step : plan.program().steps) {
        for (const compile::EwOp& op : step.tail) {
            EXPECT_NE(op.kind, compile::EwOp::Kind::kBatchNorm);
        }
    }
}

TEST(PlanIdentityTest, PlanArenaSmallerThanModuleWalk) {
    for (const models::ResNetConfig& cfg :
         {models::tiny_resnet_config(quant_ams_common()),
          models::mini_resnet_config(quant_ams_common())}) {
        models::ResNet model(cfg);
        model.set_training(false);
        const Shape in{4, 3, 16, 16};
        compile::ExecutionPlan fused = compile::compile(model, in);
        EXPECT_GT(fused.stats().layers_fused, 0u);
        EXPECT_GT(fused.stats().intermediates_eliminated, 0u);
        EXPECT_LT(fused.stats().plan_floats, fused.stats().module_walk_floats)
            << cfg.stages.size() << "-stage config";

        compile::CompileOptions unfused;
        unfused.fuse = false;
        compile::ExecutionPlan baseline = compile::compile(model, in, unfused);
        EXPECT_LE(fused.arena_floats(), baseline.arena_floats());
    }
}

TEST(PlanIdentityTest, EvaluateWithCompileEnvMatchesModuleWalk) {
    data::DatasetOptions dopts;
    dopts.classes = 4;
    dopts.train_per_class = 4;
    dopts.val_per_class = 6;
    dopts.image_size = 8;
    dopts.seed = 15;
    data::SyntheticImageNet ds(dopts);
    const models::ResNetConfig cfg = models::tiny_resnet_config(quant_ams_common());

    auto passes = [&] {
        models::ResNet model(cfg);
        return train::evaluate_top1(model, ds.val_images(), ds.val_labels(), 16, 3).passes;
    };
    // The integer GEMM path is a toleranced realization, not part of the
    // bit-identity contract — pin it off for this comparison (the CI int8
    // shard exports AMSNET_GEMM_INT=int8 globally).
    const char* saved_gemm_int = ::getenv("AMSNET_GEMM_INT");
    const std::string saved_gemm_int_value = saved_gemm_int ? saved_gemm_int : "";
    ::setenv("AMSNET_GEMM_INT", "off", 1);
    ::unsetenv("AMSNET_COMPILE");
    const std::vector<double> walked = passes();
    ::setenv("AMSNET_COMPILE", "on", 1);
    const std::vector<double> compiled = passes();
    ::unsetenv("AMSNET_COMPILE");
    if (saved_gemm_int) {
        ::setenv("AMSNET_GEMM_INT", saved_gemm_int_value.c_str(), 1);
    } else {
        ::unsetenv("AMSNET_GEMM_INT");
    }
    ASSERT_EQ(walked.size(), compiled.size());
    for (std::size_t i = 0; i < walked.size(); ++i) {
        EXPECT_DOUBLE_EQ(walked[i], compiled[i]) << "pass " << i;
    }
}

TEST(PlanIdentityTest, CompileRejectsTrainingModeAndBadBatch) {
    const models::ResNetConfig cfg = models::tiny_resnet_config(quant_ams_common());
    models::ResNet model(cfg);
    model.set_training(true);
    EXPECT_THROW((void)compile::compile(model, Shape{5, 3, 8, 8}), compile::CompileError);
    model.set_training(false);
    EXPECT_THROW((void)compile::compile(model, Shape{0, 3, 8, 8}), compile::CompileError);

    compile::ExecutionPlan plan = compile::compile(model, Shape{5, 3, 8, 8});
    runtime::EvalContext ctx;
    Tensor oversize(Shape{6, 3, 8, 8});
    EXPECT_THROW((void)plan.run(oversize, ctx), std::invalid_argument);
    Tensor wrong_chw(Shape{5, 3, 9, 9});
    EXPECT_THROW((void)plan.run(wrong_chw, ctx), std::invalid_argument);
}

// ----- serve-level compiled replicas -----

std::vector<std::vector<float>> serve_logits(models::ResNet& primary, const Tensor& images,
                                             serve::CompileMode mode) {
    serve::ServerOptions sopts;
    sopts.instances = 1;
    sopts.max_batch = 4;
    sopts.max_delay_us = 0;
    sopts.compile_mode = mode;
    serve::InferenceServer server(
        primary, Shape{images.dim(1), images.dim(2), images.dim(3)}, sopts);
    const std::size_t image = images.dim(1) * images.dim(2) * images.dim(3);
    std::vector<std::future<serve::InferenceResult>> futures;
    futures.reserve(images.dim(0));
    for (std::size_t i = 0; i < images.dim(0); ++i) {
        futures.push_back(server.submit(images.data() + i * image));
    }
    std::vector<std::vector<float>> logits;
    logits.reserve(futures.size());
    for (auto& f : futures) logits.push_back(f.get().logits);
    return logits;
}

TEST(PlanIdentityTest, ServeCompiledReplicaBitIdentical) {
    // Deterministic configuration (no AMS noise): CompileMode::kOn and
    // kOff replicas must serve bit-identical logits per image.
    models::LayerCommon common;
    common.bits_w = 8;
    common.bits_x = 8;  // quantized but noise-free => schedule-invariant
    const models::ResNetConfig cfg = models::tiny_resnet_config(common);
    models::ResNet primary(cfg);
    primary.set_training(false);
    Rng rng(41);
    Tensor images(Shape{8, 3, 8, 8});
    images.fill_uniform(rng, -1.0f, 1.0f);

    // Serve's compile path reads AMSNET_GEMM_INT; the integer realization
    // is toleranced, so pin it off for this bit-identity check.
    const char* saved_gemm_int = ::getenv("AMSNET_GEMM_INT");
    const std::string saved_gemm_int_value = saved_gemm_int ? saved_gemm_int : "";
    ::setenv("AMSNET_GEMM_INT", "off", 1);
    const auto walked = serve_logits(primary, images, serve::CompileMode::kOff);
    const auto compiled = serve_logits(primary, images, serve::CompileMode::kOn);
    if (saved_gemm_int) {
        ::setenv("AMSNET_GEMM_INT", saved_gemm_int_value.c_str(), 1);
    } else {
        ::unsetenv("AMSNET_GEMM_INT");
    }
    ASSERT_EQ(walked.size(), compiled.size());
    for (std::size_t i = 0; i < walked.size(); ++i) {
        ASSERT_EQ(walked[i].size(), compiled[i].size());
        EXPECT_EQ(std::memcmp(walked[i].data(), compiled[i].data(),
                              walked[i].size() * sizeof(float)),
                  0)
            << "image " << i;
    }
}

/// A module the compiler cannot lower: deterministic per-image row sums
/// as two logits. kOn must refuse it at construction; kAuto must serve
/// it through the module walk.
class OpaqueModule : public nn::Module {
public:
    Tensor forward(const Tensor& input) override {
        const std::size_t n = input.dim(0);
        const std::size_t per_image = input.size() / n;
        Tensor out(Shape{n, 2});
        for (std::size_t i = 0; i < n; ++i) {
            float sum = 0.0f;
            const float* row = input.data() + i * per_image;
            for (std::size_t j = 0; j < per_image; ++j) sum += row[j];
            out[i * 2] = sum;
            out[i * 2 + 1] = -sum;
        }
        return out;
    }
    Shape plan(const Shape& in, runtime::EvalContext&) override { return Shape{in.dim(0), 2}; }
    Tensor backward(const Tensor&) override { throw std::logic_error("eval only"); }
    [[nodiscard]] std::string name() const override { return "OpaqueModule"; }
};

TEST(PlanIdentityTest, ServeCompileOnRejectsUnsupportedGraph) {
    serve::ServerOptions sopts;
    sopts.instances = 1;
    sopts.compile_mode = serve::CompileMode::kOn;
    auto factory = [](std::size_t) -> std::unique_ptr<nn::Module> {
        return std::make_unique<OpaqueModule>();
    };
    EXPECT_THROW(serve::InferenceServer(factory, Shape{3, 4, 4}, sopts),
                 compile::CompileError);

    // kAuto degrades gracefully: same graph, module-walk service.
    sopts.compile_mode = serve::CompileMode::kAuto;
    serve::InferenceServer server(factory, Shape{3, 4, 4}, sopts);
    std::vector<float> image(3 * 4 * 4, 0.25f);
    auto result = server.submit(image.data()).get();
    ASSERT_EQ(result.logits.size(), 2u);
    EXPECT_FLOAT_EQ(result.logits[0], 0.25f * 48.0f);
    EXPECT_FLOAT_EQ(result.logits[1], -0.25f * 48.0f);
}

}  // namespace
}  // namespace ams
