// The integer carrier for the DoReFa grids: bit-exact code round-trips,
// narrow/wide storage selection (and force_wide for the int16 GEMM
// path), the encode helpers the compiler and executor share, and the
// straight-to-codes weight transform against the float DoReFa path.
#include "quant/quantized_view.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "quant/dorefa.hpp"
#include "tensor/rng.hpp"

namespace ams::quant {
namespace {

std::vector<float> grid_values(const QuantGrid& grid) {
    std::vector<float> v;
    const float levels = static_cast<float>(grid.levels);
    const long lo = grid.is_signed ? -static_cast<long>(grid.levels) : 0;
    for (long k = lo; k <= static_cast<long>(grid.levels); ++k) {
        v.push_back(static_cast<float>(k) / levels);
    }
    return v;
}

TEST(QuantizedViewTest, GridScaleAndStorageSelection) {
    EXPECT_FLOAT_EQ((QuantGrid{127, true}.scale()), 1.0f / 127.0f);
    EXPECT_FLOAT_EQ((QuantGrid{255, false}.scale()), 1.0f / 255.0f);

    EXPECT_TRUE(grid_fits_8bit(QuantGrid{127, true}));
    EXPECT_FALSE(grid_fits_8bit(QuantGrid{128, true}));  // i8 magnitude cap
    EXPECT_TRUE(grid_fits_8bit(QuantGrid{255, false}));
    EXPECT_FALSE(grid_fits_8bit(QuantGrid{256, false}));
}

TEST(QuantizedViewTest, OnGridRoundTripIsBitExact) {
    for (const QuantGrid grid : {QuantGrid{127, true}, QuantGrid{255, false},
                                 QuantGrid{1023, true}, QuantGrid{32767, false}}) {
        const std::vector<float> values = grid_values(grid);
        QuantizedTensor q(values.data(), values.size(), grid);
        ASSERT_EQ(q.size(), values.size());
        EXPECT_EQ(q.grid(), grid);

        std::vector<float> back(values.size());
        q.dequantize_into(back.data());
        // memcmp: decode(encode(x)) == x is a bit-level contract.
        EXPECT_EQ(std::memcmp(back.data(), values.data(), values.size() * sizeof(float)), 0)
            << "levels=" << grid.levels << " signed=" << grid.is_signed;
    }
}

TEST(QuantizedViewTest, ViewExposesExactlyOneCodePointer) {
    const std::vector<float> unit{0.0f, 1.0f / 127.0f, 1.0f};
    {
        QuantizedTensor q(unit.data(), unit.size(), QuantGrid{127, false});
        const QuantizedView v = q.view();
        ASSERT_NE(v.u8, nullptr);
        EXPECT_EQ(v.i8, nullptr);
        EXPECT_EQ(v.i16, nullptr);
        EXPECT_FALSE(v.wide());
        EXPECT_EQ(v.u8[0], 0);
        EXPECT_EQ(v.u8[1], 1);
        EXPECT_EQ(v.u8[2], 127);
    }
    {
        const std::vector<float> signed_vals{-1.0f, 0.0f, 1.0f};
        QuantizedTensor q(signed_vals.data(), signed_vals.size(), QuantGrid{127, true});
        const QuantizedView v = q.view();
        ASSERT_NE(v.i8, nullptr);
        EXPECT_EQ(v.u8, nullptr);
        EXPECT_EQ(v.i8[0], -127);
        EXPECT_EQ(v.i8[2], 127);
    }
    {
        QuantizedTensor q(unit.data(), unit.size(), QuantGrid{1023, false});
        EXPECT_TRUE(q.view().wide());
    }
}

TEST(QuantizedViewTest, ForceWideKeepsI16ForNarrowGrids) {
    const std::vector<float> values{-1.0f, -64.0f / 127.0f, 0.0f, 1.0f};
    const QuantGrid grid{127, true};
    QuantizedTensor q(values.data(), values.size(), grid, /*force_wide=*/true);
    const QuantizedView v = q.view();
    ASSERT_TRUE(v.wide());
    EXPECT_EQ(v.i8, nullptr);
    EXPECT_EQ(v.i16[0], -127);
    EXPECT_EQ(v.i16[1], -64);
    EXPECT_EQ(v.i16[3], 127);

    // Same decode either way.
    std::vector<float> back(values.size());
    q.dequantize_into(back.data());
    EXPECT_EQ(std::memcmp(back.data(), values.data(), values.size() * sizeof(float)), 0);
}

TEST(QuantizedViewTest, OffGridInputsClampAndRoundToNearestCode) {
    const std::vector<float> values{-2.0f, 2.0f, 0.5f};
    QuantizedTensor q(values.data(), values.size(), QuantGrid{127, true});
    const QuantizedView v = q.view();
    EXPECT_EQ(v.i8[0], -127);  // clamped
    EXPECT_EQ(v.i8[1], 127);
    EXPECT_EQ(v.i8[2], 64);  // lround(0.5 * 127) = 64
}

TEST(QuantizedViewTest, EncodeHelpersMatchLround) {
    Rng rng(7);
    std::vector<float> unit(257);
    for (float& x : unit) x = static_cast<float>(rng.uniform(0.0, 1.0));
    std::vector<float> signed_vals(257);
    for (float& x : signed_vals) x = static_cast<float>(rng.uniform(-1.0, 1.0));

    std::vector<std::uint8_t> u8(unit.size());
    encode_unit_u8(unit.data(), unit.size(), 127, u8.data());
    std::vector<std::int16_t> u16(unit.size());
    encode_unit_u16(unit.data(), unit.size(), 1023, u16.data());
    std::vector<std::int16_t> i16(signed_vals.size());
    encode_signed_i16(signed_vals.data(), signed_vals.size(), 32767, i16.data());

    for (std::size_t i = 0; i < unit.size(); ++i) {
        EXPECT_EQ(u8[i], std::lround(unit[i] * 127.0f));
        EXPECT_EQ(u16[i], std::lround(unit[i] * 1023.0f));
        EXPECT_EQ(i16[i], std::lround(signed_vals[i] * 32767.0f));
    }
}

TEST(QuantizedViewTest, DorefaWeightsQMatchesFloatPath) {
    Rng rng(11);
    Tensor w(Shape{4, 3, 3, 3});
    w.fill_uniform(rng, -1.5f, 1.5f);

    for (const std::size_t bits : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
        const QuantizedTensor q = dorefa_quantize_weights_q(w, bits);
        EXPECT_EQ(q.grid().levels, magnitude_levels(bits));
        EXPECT_TRUE(q.grid().is_signed);
        ASSERT_EQ(q.size(), w.size());

        std::vector<float> reference(w.size());
        dorefa_quantize_weights_into(w, bits, reference.data());
        std::vector<float> decoded(w.size());
        q.dequantize_into(decoded.data());
        // Exact float equality, not memcmp: integer code 0 has no sign,
        // so the float path's -0.0 (negative weight rounding to zero)
        // decodes as +0.0. Every other grid point must match bit-level.
        for (std::size_t i = 0; i < w.size(); ++i) {
            EXPECT_EQ(decoded[i], reference[i]) << "bits=" << bits << " i=" << i;
        }
    }
}

}  // namespace
}  // namespace ams::quant
