// The integer numeric domain end to end: compiled plans running int8 /
// int16 convolutions must reproduce, bit for bit, a hand-built
// reference that encodes the same codes, runs the same integer GEMM,
// and requantizes as a separate whole-tensor pass — i.e. the *fused*
// requant epilogue is semantically invisible. Checked across remainder-
// tail conv geometries, both SIMD arms, and 1/4 threads (the integer
// kernels are exact, so this is an equality contract, not a tolerance).
// Also pins numeric-mode resolution in the dump IR, the toleranced
// int-vs-fp32 distance, the gemm_int_calls / requant_ops counters, and
// the AMSNET_GEMM_INT env plumbing through the evaluate path.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "compile/plan.hpp"
#include "data/synthetic_imagenet.hpp"
#include "models/resnet.hpp"
#include "nn/activations.hpp"
#include "nn/sequential.hpp"
#include "quant/dorefa.hpp"
#include "quant/quant_modules.hpp"
#include "quant/quantized_view.hpp"
#include "runtime/eval_context.hpp"
#include "runtime/metrics.hpp"
#include "runtime/simd.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/gemm_int.hpp"
#include "tensor/im2col.hpp"
#include "train/evaluate.hpp"

namespace ams {
namespace {

namespace metrics = runtime::metrics;

constexpr std::size_t kBits = 8;
constexpr std::size_t kLevels = 127;  // magnitude_levels(8)

class LevelGuard {
public:
    LevelGuard() : saved_(simd::active_level()) {}
    ~LevelGuard() { simd::set_level(saved_); }

private:
    simd::Level saved_;
};

struct ConvCase {
    nn::Conv2dOptions opts;
    std::size_t in_h, in_w;
};

// Geometries chosen so cout % 4, out_spatial % 8, and patch % 4 all hit
// nonzero remainders somewhere (partial A tiles, masked B column
// groups, padded k-blocks).
const ConvCase kConvCases[] = {
    {{3, 5, 3, 1, 1, false}, 7, 7},   // M=5, K=27, N=49
    {{2, 4, 1, 1, 0, false}, 6, 5},   // 1x1 kernel: K=2, N=30
    {{4, 9, 3, 2, 1, false}, 9, 9},   // stride 2: M=9, K=36, N=25
    {{3, 8, 5, 1, 2, false}, 8, 8},   // K=75, N=64
};

/// Input whose values sit exactly on the unsigned activation grid
/// k / 127, so QuantAct is a bit-level identity and the executor's
/// re-encode recovers exactly these codes.
Tensor on_grid_input(const ConvCase& c, std::size_t batch, std::uint64_t seed,
                     std::vector<std::uint8_t>& codes) {
    Rng rng(seed);
    Tensor x(Shape{batch, c.opts.in_channels, c.in_h, c.in_w});
    codes.resize(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        codes[i] = static_cast<std::uint8_t>(rng.uniform(0.0, 127.0));
        x[i] = static_cast<float>(codes[i]) / static_cast<float>(kLevels);
    }
    return x;
}

enum class Tail { kNone, kRelu, kQuantAct };

std::unique_ptr<nn::Sequential> make_model(const ConvCase& c, Tail tail, std::uint64_t seed) {
    Rng rng(seed);
    auto seq = std::make_unique<nn::Sequential>();
    seq->emplace<quant::QuantAct>(kBits);
    seq->emplace<quant::QuantConv2d>(c.opts, kBits, rng);
    if (tail == Tail::kRelu) seq->emplace<nn::ReLU>();
    if (tail == Tail::kQuantAct) seq->emplace<quant::QuantAct>(kBits);
    seq->set_training(false);
    return seq;
}

ConvGeometry geometry_of(const ConvCase& c) {
    ConvGeometry g;
    g.in_channels = c.opts.in_channels;
    g.in_h = c.in_h;
    g.in_w = c.in_w;
    g.kernel_h = g.kernel_w = c.opts.kernel;
    g.stride_h = g.stride_w = c.opts.stride;
    g.pad_h = g.pad_w = c.opts.padding;
    return g;
}

/// The unfused reference: same activation codes, same weight codes,
/// same integer GEMM — but requantization and the tail run as separate
/// whole-tensor passes over a plain buffer.
std::vector<float> int8_reference(const ConvCase& c, const nn::Sequential& model,
                                  const std::vector<std::uint8_t>& codes, std::size_t batch,
                                  Tail tail) {
    const auto& qc = dynamic_cast<const quant::QuantConv2d&>(model.child(1));
    const quant::QuantizedTensor wq =
        quant::dorefa_quantize_weights_q(qc.conv().weight().value, kBits);
    const std::int8_t* wi8 = wq.view().i8;

    const ConvGeometry g = geometry_of(c);
    const std::size_t image = g.in_channels * g.in_h * g.in_w;
    const std::size_t out_spatial = g.out_h() * g.out_w();
    const std::size_t out_image = c.opts.out_channels * out_spatial;
    const float dequant =
        1.0f / (static_cast<float>(kLevels) * static_cast<float>(kLevels));

    std::vector<float> out(batch * out_image);
    std::vector<std::uint8_t> cols(g.patch_size() * out_spatial);
    std::vector<std::int32_t> acc(out_image);
    for (std::size_t b = 0; b < batch; ++b) {
        im2col_u8(codes.data() + b * image, g, cols.data());
        gemm_s8u8(wi8, cols.data(), acc.data(), c.opts.out_channels, g.patch_size(),
                  out_spatial);
        float* dst = out.data() + b * out_image;
        for (std::size_t i = 0; i < out_image; ++i) {
            dst[i] = static_cast<float>(acc[i]) * dequant;
        }
    }
    if (tail == Tail::kRelu) simd::relu(out.data(), out.data(), out.size());
    if (tail == Tail::kQuantAct) {
        simd::quantize_unit(out.data(), out.data(), out.size(),
                            static_cast<float>(kLevels));
    }
    return out;
}

std::vector<float> run_plan(nn::Sequential& model, const Tensor& x, GemmIntMode mode) {
    compile::CompileOptions copts;
    copts.gemm_int = mode;
    runtime::EvalContext ctx;
    (void)model.plan(x.shape(), ctx);
    compile::ExecutionPlan plan = compile::compile(model, x.shape(), copts);
    const Tensor out = plan.run(x, ctx);
    return std::vector<float>(out.data(), out.data() + out.size());
}

TEST(RequantPlanTest, FusedInt8EpilogueBitEqualsUnfusedReference) {
    LevelGuard guard;
    const std::size_t batch = 3;  // uneven chunks at 4 threads
    for (const ConvCase& c : kConvCases) {
        for (const Tail tail : {Tail::kNone, Tail::kRelu, Tail::kQuantAct}) {
            std::vector<std::uint8_t> codes;
            const Tensor x = on_grid_input(c, batch, 17 + c.opts.out_channels, codes);
            for (const simd::Level level : {simd::Level::kScalar, simd::Level::kAvx2}) {
                if (level == simd::Level::kAvx2 && !simd::cpu_supports_avx2_fma()) continue;
                simd::set_level(level);
                // The reference GEMM runs under the same arm; arms are
                // bit-identical anyway (integer math), so the choice
                // only exercises dispatch.
                auto model = make_model(c, tail, 29);
                const std::vector<float> expected =
                    int8_reference(c, *model, codes, batch, tail);
                for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
                    runtime::ThreadPool::set_global_threads(threads);
                    auto fresh = make_model(c, tail, 29);
                    const std::vector<float> got = run_plan(*fresh, x, GemmIntMode::kInt8);
                    ASSERT_EQ(got.size(), expected.size());
                    EXPECT_EQ(std::memcmp(got.data(), expected.data(),
                                          got.size() * sizeof(float)),
                              0)
                        << "cout=" << c.opts.out_channels << " k=" << c.opts.kernel
                        << " tail=" << static_cast<int>(tail)
                        << " level=" << simd::level_name(level) << " threads=" << threads;
                }
            }
        }
    }
    runtime::ThreadPool::set_global_threads(runtime::ThreadPool::threads_from_env());
}

TEST(RequantPlanTest, Int16PlanBitEqualsUnfusedReference) {
    // Signed QuantInput grid forces the int16 lane (int8 requires
    // unsigned activation codes).
    LevelGuard guard;
    const ConvCase c{{3, 5, 3, 1, 1, false}, 7, 7};
    const std::size_t batch = 3;
    Rng rng(43);
    const ConvGeometry g = geometry_of(c);
    const std::size_t image = g.in_channels * g.in_h * g.in_w;

    Tensor x(Shape{batch, c.opts.in_channels, c.in_h, c.in_w});
    std::vector<std::int16_t> codes(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        codes[i] = static_cast<std::int16_t>(rng.uniform(-127.0, 127.0));
        x[i] = static_cast<float>(codes[i]) / static_cast<float>(kLevels);
    }

    auto make_signed_model = [&] {
        Rng wrng(31);
        auto seq = std::make_unique<nn::Sequential>();
        seq->emplace<quant::QuantInput>(1.0f, kBits);
        seq->emplace<quant::QuantConv2d>(c.opts, kBits, wrng);
        seq->set_training(false);
        return seq;
    };

    // Reference with force-wide weight codes (the int16 GEMM consumes
    // i16 operands even though the 8-bit grid fits i8).
    auto model = make_signed_model();
    const auto& qc = dynamic_cast<const quant::QuantConv2d&>(model->child(1));
    std::vector<float> wq_floats(qc.conv().weight().value.size());
    quant::dorefa_quantize_weights_into(qc.conv().weight().value, kBits, wq_floats.data());
    const quant::QuantizedTensor wq(wq_floats.data(), wq_floats.size(),
                                    quant::QuantGrid{kLevels, /*is_signed=*/true},
                                    /*force_wide=*/true);
    const std::int16_t* wi16 = wq.view().i16;

    const std::size_t out_spatial = g.out_h() * g.out_w();
    const std::size_t out_image = c.opts.out_channels * out_spatial;
    const float dequant =
        1.0f / (static_cast<float>(kLevels) * static_cast<float>(kLevels));
    std::vector<float> expected(batch * out_image);
    std::vector<std::int16_t> cols(g.patch_size() * out_spatial);
    std::vector<std::int32_t> acc(out_image);
    for (std::size_t b = 0; b < batch; ++b) {
        im2col_i16(codes.data() + b * image, g, cols.data());
        gemm_s16(wi16, cols.data(), acc.data(), c.opts.out_channels, g.patch_size(),
                 out_spatial);
        for (std::size_t i = 0; i < out_image; ++i) {
            expected[b * out_image + i] = static_cast<float>(acc[i]) * dequant;
        }
    }

    for (const GemmIntMode mode : {GemmIntMode::kInt16, GemmIntMode::kAuto}) {
        auto fresh = make_signed_model();
        const std::vector<float> got = run_plan(*fresh, x, mode);
        ASSERT_EQ(got.size(), expected.size());
        EXPECT_EQ(std::memcmp(got.data(), expected.data(), got.size() * sizeof(float)), 0)
            << "mode=" << gemm_int_mode_name(mode);
    }
}

TEST(RequantPlanTest, Int8WithinToleranceOfFp32Plan) {
    // The toleranced contract: same grids, different accumulation
    // domain. Differences are pure fp32 rounding in the float GEMM.
    const ConvCase c{{3, 8, 3, 1, 1, false}, 8, 8};
    std::vector<std::uint8_t> codes;
    const Tensor x = on_grid_input(c, 2, 71, codes);
    auto m1 = make_model(c, Tail::kNone, 53);
    const std::vector<float> fp32 = run_plan(*m1, x, GemmIntMode::kOff);
    auto m2 = make_model(c, Tail::kNone, 53);
    const std::vector<float> int8 = run_plan(*m2, x, GemmIntMode::kInt8);
    ASSERT_EQ(fp32.size(), int8.size());
    for (std::size_t i = 0; i < fp32.size(); ++i) {
        EXPECT_NEAR(fp32[i], int8[i], 1e-4f) << "i=" << i;
    }
}

TEST(RequantPlanTest, DumpShowsResolvedNumericModes) {
    const ConvCase c = kConvCases[0];
    std::vector<std::uint8_t> codes;
    const Tensor x = on_grid_input(c, 2, 5, codes);
    {
        auto model = make_model(c, Tail::kNone, 3);
        compile::CompileOptions copts;
        copts.gemm_int = GemmIntMode::kInt8;
        const compile::ExecutionPlan plan = compile::compile(*model, x.shape(), copts);
        const std::string dump = plan.dump_string();
        EXPECT_NE(dump.find("gemm_int=int8"), std::string::npos) << dump;
        EXPECT_NE(dump.find(" numeric=int8"), std::string::npos) << dump;
    }
    {
        auto model = make_model(c, Tail::kNone, 3);
        const compile::ExecutionPlan plan = compile::compile(*model, x.shape());
        const std::string dump = plan.dump_string();
        EXPECT_NE(dump.find("gemm_int=off"), std::string::npos) << dump;
        EXPECT_NE(dump.find(" numeric=fp32"), std::string::npos) << dump;
        EXPECT_EQ(dump.find("numeric=int8"), std::string::npos) << dump;
    }
}

TEST(RequantPlanTest, IntPathCountsGemmIntCallsAndRequantOps) {
    const ConvCase c = kConvCases[0];
    const std::size_t batch = 3;
    std::vector<std::uint8_t> codes;
    const Tensor x = on_grid_input(c, batch, 13, codes);
    const ConvGeometry g = geometry_of(c);
    const std::size_t out_image = c.opts.out_channels * g.out_h() * g.out_w();

    metrics::set_level(metrics::Level::kCounters);
    metrics::reset();
    auto model = make_model(c, Tail::kNone, 19);
    (void)run_plan(*model, x, GemmIntMode::kInt8);
    EXPECT_EQ(metrics::value(metrics::Counter::kGemmIntCalls), batch);  // one per image
    EXPECT_EQ(metrics::value(metrics::Counter::kRequantOps), batch * out_image);
    EXPECT_EQ(metrics::value(metrics::Counter::kGemmCalls), 0u);  // no fp32 GEMM ran

    metrics::reset();
    auto fp32_model = make_model(c, Tail::kNone, 19);
    (void)run_plan(*fp32_model, x, GemmIntMode::kOff);
    EXPECT_EQ(metrics::value(metrics::Counter::kGemmIntCalls), 0u);
    EXPECT_EQ(metrics::value(metrics::Counter::kRequantOps), 0u);
    EXPECT_GT(metrics::value(metrics::Counter::kGemmCalls), 0u);

    metrics::reset();
    metrics::set_level(metrics::Level::kOff);
}

TEST(RequantPlanTest, EvaluatePathHonorsGemmIntEnv) {
    // AMSNET_COMPILE=on + AMSNET_GEMM_INT=int8 must route the quantized
    // ResNet's eligible convs through the integer path.
    data::DatasetOptions dopts;
    dopts.classes = 4;
    dopts.train_per_class = 2;
    dopts.val_per_class = 4;
    dopts.image_size = 8;
    dopts.seed = 21;
    data::SyntheticImageNet ds(dopts);
    models::LayerCommon common;
    common.bits_w = 8;
    common.bits_x = 8;
    models::ResNet model(models::tiny_resnet_config(common));

    const char* saved = ::getenv("AMSNET_GEMM_INT");
    const std::string saved_value = saved ? saved : "";
    ::setenv("AMSNET_COMPILE", "on", 1);
    ::setenv("AMSNET_GEMM_INT", "int8", 1);
    metrics::set_level(metrics::Level::kCounters);
    metrics::reset();
    (void)train::evaluate_top1(model, ds.val_images(), ds.val_labels(), 8, 1);
    EXPECT_GT(metrics::value(metrics::Counter::kGemmIntCalls), 0u);
    EXPECT_GT(metrics::value(metrics::Counter::kRequantOps), 0u);
    metrics::reset();
    metrics::set_level(metrics::Level::kOff);
    ::unsetenv("AMSNET_COMPILE");
    if (saved) {
        ::setenv("AMSNET_GEMM_INT", saved_value.c_str(), 1);
    } else {
        ::unsetenv("AMSNET_GEMM_INT");
    }
}

}  // namespace
}  // namespace ams
