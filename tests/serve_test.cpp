// amsnet::serve correctness: bit-identity with the offline evaluate path
// at several instance counts, batching invariance, the generic factory
// form serving a bit_exact VMAC backend datapath, graceful shutdown, and
// the server's counter accounting.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "ams/vmac_conv.hpp"
#include "data/synthetic_imagenet.hpp"
#include "models/resnet.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "runtime/metrics.hpp"
#include "train/evaluate.hpp"

namespace ams::serve {
namespace {

// Serve's replica compiles read AMSNET_GEMM_INT, and every test here
// checks bit-identity against the fp32 module walk — pin the toleranced
// integer realization off for the whole binary (the CI int8 shard
// exports AMSNET_GEMM_INT=int8 globally).
const bool kPinGemmIntOff = [] {
    ::setenv("AMSNET_GEMM_INT", "off", 1);
    return true;
}();

data::DatasetOptions tiny_data() {
    data::DatasetOptions o;
    o.classes = 4;
    o.train_per_class = 2;
    o.val_per_class = 6;
    o.image_size = 8;
    o.seed = 23;
    return o;
}

models::LayerCommon quant_common() {
    models::LayerCommon c;
    c.bits_w = 8;
    c.bits_x = 8;
    return c;
}

Shape chw_of(const Tensor& images) {
    return Shape{images.dim(1), images.dim(2), images.dim(3)};
}

/// The offline reference: the same batch -> logits path train::evaluate
/// uses, one whole-set batch on the primary.
Tensor evaluate_logits(nn::Module& model, const Tensor& images) {
    model.set_training(false);
    runtime::EvalContext ctx;
    (void)model.plan(images.shape(), ctx);
    const Tensor batch = train::slice_batch(images, 0, images.dim(0), ctx);
    Tensor logits = train::forward_batch(model, batch, ctx);
    Tensor owned(logits.shape());
    std::memcpy(owned.data(), logits.data(), logits.size() * sizeof(float));
    return owned;
}

/// Submits every image and checks each result row against `expected`
/// bit-for-bit.
void expect_served_rows_match(InferenceServer& server, const Tensor& images,
                              const Tensor& expected) {
    const std::size_t n = images.dim(0);
    const std::size_t image_floats = chw_of(images).numel();
    const std::size_t classes = expected.dim(1);
    std::vector<std::future<InferenceResult>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        futures.push_back(server.submit(images.data() + i * image_floats));
    }
    for (std::size_t i = 0; i < n; ++i) {
        const InferenceResult result = futures[i].get();
        ASSERT_EQ(result.logits.size(), classes);
        const float* row = expected.data() + i * classes;
        EXPECT_EQ(std::memcmp(result.logits.data(), row, classes * sizeof(float)), 0)
            << "image " << i;
        EXPECT_LT(result.predicted, classes);
        EXPECT_LE(result.timing.enqueue_ns, result.timing.dequeue_ns);
        EXPECT_LE(result.timing.dequeue_ns, result.timing.complete_ns);
        EXPECT_GE(result.timing.batch_size, 1u);
        EXPECT_LT(result.timing.instance, server.options().instances);
    }
}

TEST(ServeTest, BitIdenticalToEvaluateAtOneAndFourInstances) {
    data::SyntheticImageNet ds(tiny_data());
    models::ResNet primary(models::tiny_resnet_config(quant_common()));
    const Tensor expected = evaluate_logits(primary, ds.val_images());

    for (std::size_t instances : {std::size_t{1}, std::size_t{4}}) {
        ServerOptions options;
        options.instances = instances;
        options.max_batch = 4;
        options.max_delay_us = 500;
        InferenceServer server(primary, chw_of(ds.val_images()), options);
        expect_served_rows_match(server, ds.val_images(), expected);
        server.shutdown();
    }
}

TEST(ServeTest, BatchingInvarianceMaxBatchOneVsEight) {
    data::SyntheticImageNet ds(tiny_data());
    models::ResNet primary(models::tiny_resnet_config(quant_common()));
    const Tensor expected = evaluate_logits(primary, ds.val_images());

    for (std::size_t max_batch : {std::size_t{1}, std::size_t{8}}) {
        ServerOptions options;
        options.instances = 2;
        options.max_batch = max_batch;
        options.max_delay_us = max_batch == 1 ? 0 : 2000;
        InferenceServer server(primary, chw_of(ds.val_images()), options);
        expect_served_rows_match(server, ds.val_images(), expected);
        server.shutdown();
    }
}

TEST(ServeTest, ServesBitExactVmacBackendThroughFactory) {
    // A real VMAC datapath (bit_exact backend: operand codecs + ADC per
    // chunk, no noise) behind the generic factory constructor. Its
    // "logits" are the conv output pooled to {N, C}.
    const Shape image_shape{3, 8, 8};
    Rng rng(11);
    Tensor weight(Shape{4, 3, 3, 3});
    weight.fill_uniform(rng, -1.0f, 1.0f);
    Tensor images(Shape{6, 3, 8, 8});
    images.fill_uniform(rng, -1.0f, 1.0f);

    vmac::VmacConfig config;
    config.nmult = 8;
    const vmac::AnalogOptions analog;
    vmac::BackendOptions backend;
    backend.kind = vmac::BackendKind::kBitExact;
    auto build = [&](std::size_t /*instance*/) {
        auto seq = std::make_unique<nn::Sequential>();
        Tensor w(weight.shape());
        std::memcpy(w.data(), weight.data(), weight.size() * sizeof(float));
        seq->emplace<vmac::VmacConv2d>(std::move(w), 1, 1, config, analog, backend, Rng(5));
        seq->emplace<nn::GlobalAvgPool>();
        return seq;
    };

    auto reference = build(0);
    const Tensor expected = evaluate_logits(*reference, images);

    ServerOptions options;
    options.instances = 2;
    options.max_batch = 3;
    options.max_delay_us = 500;
    InferenceServer server(InstanceFactory(build), image_shape, options);
    expect_served_rows_match(server, images, expected);
}

TEST(ServeTest, ShutdownDrainsEveryQueuedRequest) {
    data::SyntheticImageNet ds(tiny_data());
    models::ResNet primary(models::tiny_resnet_config(quant_common()));

    ServerOptions options;
    options.instances = 1;
    options.max_batch = 4;
    options.max_delay_us = 500000;  // a long budget the drain must waive
    InferenceServer server(primary, chw_of(ds.val_images()), options);

    const std::size_t n = ds.val_images().dim(0);
    const std::size_t image_floats = chw_of(ds.val_images()).numel();
    std::vector<std::future<InferenceResult>> futures;
    for (std::size_t i = 0; i < n; ++i) {
        futures.push_back(server.submit(ds.val_images().data() + i * image_floats));
    }
    server.shutdown();

    for (auto& f : futures) EXPECT_NO_THROW((void)f.get());
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.submitted, n);
    EXPECT_EQ(stats.completed, n);
    EXPECT_EQ(server.queue_depth(), 0u);
}

TEST(ServeTest, SubmitAfterShutdownThrows) {
    data::SyntheticImageNet ds(tiny_data());
    models::ResNet primary(models::tiny_resnet_config(quant_common()));
    InferenceServer server(primary, chw_of(ds.val_images()), {});
    server.shutdown();
    EXPECT_THROW((void)server.submit(ds.val_images().data()), std::runtime_error);
}

TEST(ServeTest, ValidatesOptionsAndShapes) {
    data::SyntheticImageNet ds(tiny_data());
    models::ResNet primary(models::tiny_resnet_config(quant_common()));
    const Shape chw = chw_of(ds.val_images());

    ServerOptions zero_instances;
    zero_instances.instances = 0;
    EXPECT_THROW(InferenceServer(primary, chw, zero_instances), std::invalid_argument);
    ServerOptions zero_batch;
    zero_batch.max_batch = 0;
    EXPECT_THROW(InferenceServer(primary, chw, zero_batch), std::invalid_argument);
    EXPECT_THROW(InferenceServer(primary, Shape{8, 8}, {}), std::invalid_argument);

    InferenceServer server(primary, chw, {});
    Tensor wrong(Shape{1, 2, 2});
    EXPECT_THROW((void)server.submit(wrong), std::invalid_argument);
    EXPECT_THROW((void)server.submit(static_cast<const float*>(nullptr)),
                 std::invalid_argument);
    // Rank-3 CHW and rank-4 [1,C,H,W] both work.
    Tensor one(Shape{chw.dim(0), chw.dim(1), chw.dim(2)});
    EXPECT_NO_THROW((void)server.submit(one).get());
    Tensor one4(Shape{1, chw.dim(0), chw.dim(1), chw.dim(2)});
    EXPECT_NO_THROW((void)server.submit(one4).get());
}

TEST(ServeTest, StatsAndMetricsAccountForEveryRequest) {
    namespace metrics = runtime::metrics;
    data::SyntheticImageNet ds(tiny_data());
    models::ResNet primary(models::tiny_resnet_config(quant_common()));

    metrics::set_level(metrics::Level::kCounters);
    const std::uint64_t requests_before = metrics::value(metrics::Counter::kServeRequests);
    const std::uint64_t images_before = metrics::value(metrics::Counter::kServeBatchImages);

    ServerOptions options;
    options.instances = 2;
    options.max_batch = 4;
    options.max_delay_us = 200;
    const std::size_t n = ds.val_images().dim(0);
    {
        InferenceServer server(primary, chw_of(ds.val_images()), options);
        const std::size_t image_floats = chw_of(ds.val_images()).numel();
        std::vector<std::future<InferenceResult>> futures;
        for (std::size_t i = 0; i < n; ++i) {
            futures.push_back(server.submit(ds.val_images().data() + i * image_floats));
        }
        for (auto& f : futures) (void)f.get();
        server.shutdown();

        const ServerStats stats = server.stats();
        EXPECT_EQ(stats.submitted, n);
        EXPECT_EQ(stats.completed, n);
        EXPECT_EQ(stats.batched_images, n);
        EXPECT_GE(stats.batches, (n + options.max_batch - 1) / options.max_batch);
        EXPECT_LE(stats.batches, n);
        EXPECT_GE(stats.max_queue_depth, 1u);
        std::uint64_t histogram_batches = 0;
        std::uint64_t histogram_images = 0;
        ASSERT_EQ(stats.batch_size_histogram.size(), options.max_batch + 1);
        for (std::size_t b = 1; b <= options.max_batch; ++b) {
            histogram_batches += stats.batch_size_histogram[b];
            histogram_images += b * stats.batch_size_histogram[b];
        }
        EXPECT_EQ(histogram_batches, stats.batches);
        EXPECT_EQ(histogram_images, stats.batched_images);
        EXPECT_GE(stats.mean_batch(), 1.0);
        EXPECT_LE(stats.mean_batch(), static_cast<double>(options.max_batch));
    }
    EXPECT_EQ(metrics::value(metrics::Counter::kServeRequests) - requests_before, n);
    EXPECT_EQ(metrics::value(metrics::Counter::kServeBatchImages) - images_before, n);
    metrics::set_level(metrics::Level::kOff);
}

TEST(ServeTest, ShutdownExportsMetricsDumpWhenConfigured) {
    namespace metrics = runtime::metrics;
    data::SyntheticImageNet ds(tiny_data());
    models::ResNet primary(models::tiny_resnet_config(quant_common()));

    const std::string path = ::testing::TempDir() + "serve_metrics_dump.json";
    std::remove(path.c_str());
    ASSERT_EQ(setenv("AMSNET_METRICS_DUMP", path.c_str(), 1), 0);
    metrics::set_level(metrics::Level::kCounters);
    {
        InferenceServer server(primary, chw_of(ds.val_images()), {});
        (void)server.submit(ds.val_images().data()).get();
        server.shutdown();  // exports the snapshot
    }
    metrics::set_level(metrics::Level::kOff);
    ASSERT_EQ(unsetenv("AMSNET_METRICS_DUMP"), 0);

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::stringstream contents;
    contents << in.rdbuf();
    EXPECT_NE(contents.str().find("\"serve_requests\""), std::string::npos);
    EXPECT_NE(contents.str().find("\"serve_batches\""), std::string::npos);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace ams::serve
