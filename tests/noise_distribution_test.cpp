// Statistical acceptance tests for the Eq. 1-2 error model: the noise
// the library actually injects is held against the distributions the
// paper derives. Chi-square goodness-of-fit against N(0, sigma_tot),
// sample-variance confidence intervals against Eq. 2, and a KS-style
// uniformity/independence check on the RngStream splitting scheme the
// parallel runtime keys its noise on. All seeds are fixed, so every
// threshold is deterministic — these are regression tests, not flaky
// Monte-Carlo experiments.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "ams/error_injector.hpp"
#include "ams/error_model.hpp"
#include "runtime/rng_stream.hpp"
#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "stat_test_utils.hpp"
#include "tensor/tensor.hpp"

namespace ams {
namespace {

using stattest::chi_square_vs_normal;
using stattest::sample_mean;
using stattest::sample_variance;

constexpr std::size_t kSamples = 20000;

vmac::VmacConfig test_config() {
    vmac::VmacConfig cfg;
    cfg.enob = 6.0;
    cfg.nmult = 8;
    return cfg;
}

/// One forward pass of injected noise on a zero input: the output IS the
/// additive error sample vector.
std::vector<double> draw_noise(vmac::InjectionMode mode, std::size_t n_tot,
                               std::uint64_t seed, std::size_t n = kSamples) {
    vmac::ErrorInjector injector(test_config(), n_tot, Rng(seed), mode);
    Tensor zeros(Shape{n});
    Tensor out = injector.forward(zeros);
    std::vector<double> samples(n);
    for (std::size_t i = 0; i < n; ++i) samples[i] = static_cast<double>(out.data()[i]);
    return samples;
}

TEST(NoiseDistributionTest, LumpedGaussianPassesChiSquareGof) {
    const std::size_t n_tot = 512;
    const double sigma = vmac::total_error_stddev(test_config(), n_tot);
    const auto xs = draw_noise(vmac::InjectionMode::kLumpedGaussian, n_tot, /*seed=*/101);
    const double chi2 = chi_square_vs_normal(xs, sigma);
    // 99.9th percentile of chi2 with 17 dof is 40.8; the fixed seed makes
    // this deterministic, the percentile just documents the margin.
    EXPECT_LT(chi2, 40.8) << "lumped injection does not look N(0, sigma_tot)";
}

TEST(NoiseDistributionTest, GofTestHasPowerAgainstNonGaussianNoise) {
    // Negative control: with Ntot = Nmult the per-VMAC mode sums exactly
    // one uniform, which is flatly non-Gaussian (no tails beyond
    // +-sqrt(3) sigma). The same GOF statistic must reject it loudly —
    // otherwise the passing test above proves nothing.
    const std::size_t n_tot = test_config().nmult;
    const double sigma = vmac::total_error_stddev(test_config(), n_tot);
    const auto xs = draw_noise(vmac::InjectionMode::kPerVmacUniform, n_tot, /*seed=*/101);
    EXPECT_GT(chi_square_vs_normal(xs, sigma), 500.0);
}

TEST(NoiseDistributionTest, LumpedVarianceMatchesEq2) {
    const std::size_t n_tot = 512;
    const double var = vmac::total_error_variance(test_config(), n_tot);
    const auto xs = draw_noise(vmac::InjectionMode::kLumpedGaussian, n_tot, /*seed=*/202);
    // s^2 / sigma^2 concentrates around 1 with std-dev sqrt(2/(n-1)) for
    // Gaussian samples; 4 of those is a ~1e-4 two-sided bound.
    const double rel_tol = 4.0 * std::sqrt(2.0 / static_cast<double>(kSamples - 1));
    EXPECT_NEAR(sample_variance(xs) / var, 1.0, rel_tol);
    // Mean is zero within 4 standard errors.
    EXPECT_NEAR(sample_mean(xs), 0.0, 4.0 * std::sqrt(var / static_cast<double>(kSamples)));
}

TEST(NoiseDistributionTest, PerVmacUniformSumMatchesEq2AndNormalizes) {
    // Section 4's refinement: ceil(Ntot/Nmult) = 64 independent uniforms
    // per output. Their sum must land on the same Eq. 2 variance (the
    // equality the lumped model is built on), and with 64 terms the CLT
    // has already made it pass the Gaussian GOF — the normality
    // assumption the paper makes is *measured* here, not assumed.
    const std::size_t n_tot = 512;
    ASSERT_EQ(vmac::vmacs_per_output(test_config(), n_tot), 64u);
    const double var = vmac::total_error_variance(test_config(), n_tot);
    const auto xs = draw_noise(vmac::InjectionMode::kPerVmacUniform, n_tot, /*seed=*/303);
    // Same CI as above; the sum-of-uniforms excess kurtosis (-1.2/64)
    // shifts Var(s^2) by under 1%, far inside the factor-4 margin.
    const double rel_tol = 4.0 * std::sqrt(2.0 / static_cast<double>(kSamples - 1));
    EXPECT_NEAR(sample_variance(xs) / var, 1.0, rel_tol);
    EXPECT_LT(chi_square_vs_normal(xs, std::sqrt(var)), 40.8);
}

TEST(NoiseDistributionTest, RngStreamSplitsAreUniform) {
    // KS-style uniformity on the stream-derived generators the injector
    // tiles its noise with. D * sqrt(n) < 1.95 is the alpha = 0.001
    // acceptance band.
    const runtime::RngStream streams = runtime::RngStream::from(Rng(7));
    const std::size_t n = 2000;
    for (std::uint64_t id : {0ull, 1ull, 1000ull, (1ull << 40)}) {
        Rng rng = streams.stream(id);
        std::vector<double> us(n);
        for (double& u : us) u = rng.uniform();
        const double d = stattest::ks_statistic_uniform(std::move(us));
        EXPECT_LT(d * std::sqrt(static_cast<double>(n)), 1.95) << "stream " << id;
    }
}

TEST(NoiseDistributionTest, AdjacentRngStreamsAreUncorrelated) {
    const runtime::RngStream streams = runtime::RngStream::from(Rng(7));
    const std::size_t n = 2000;
    for (std::uint64_t id : {0ull, 1ull, 2ull}) {
        Rng a = streams.stream(id);
        Rng b = streams.stream(id + 1);
        std::vector<double> xs(n), ys(n);
        for (std::size_t i = 0; i < n; ++i) {
            xs[i] = a.uniform();
            ys[i] = b.uniform();
        }
        const double r = stattest::pearson_correlation(xs, ys);
        // 4 / sqrt(n) ~ 0.09: a four-sigma band around zero correlation.
        EXPECT_LT(std::fabs(r), 4.0 / std::sqrt(static_cast<double>(n)))
            << "streams " << id << "," << id + 1;
    }
}

TEST(NoiseDistributionTest, InjectionIsThreadCountInvariant) {
    // The determinism contract: noise streams are keyed by data position,
    // not by scheduling, so 1-thread and 4-thread injection are
    // bit-identical sample for sample.
    const std::size_t n_tot = 512;
    for (vmac::InjectionMode mode :
         {vmac::InjectionMode::kLumpedGaussian, vmac::InjectionMode::kPerVmacUniform}) {
        runtime::ThreadPool::set_global_threads(1);
        const auto serial = draw_noise(mode, n_tot, /*seed=*/404);
        runtime::ThreadPool::set_global_threads(4);
        const auto parallel = draw_noise(mode, n_tot, /*seed=*/404);
        runtime::ThreadPool::set_global_threads(runtime::ThreadPool::threads_from_env());
        ASSERT_EQ(serial.size(), parallel.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            ASSERT_EQ(serial[i], parallel[i]) << "mode diverges at sample " << i;
        }
    }
}

TEST(NoiseDistributionTest, TracingDoesNotPerturbNoise) {
    // EXPERIMENTS.md's observability contract: instrumentation observes
    // and never participates, so the realized noise is bit-identical
    // whether tracing is off or fully on.
    const std::size_t n_tot = 512;
    runtime::metrics::set_level(runtime::metrics::Level::kOff);
    const auto off = draw_noise(vmac::InjectionMode::kLumpedGaussian, n_tot, /*seed=*/505);
    runtime::metrics::set_level(runtime::metrics::Level::kFull);
    const auto full = draw_noise(vmac::InjectionMode::kLumpedGaussian, n_tot, /*seed=*/505);
    runtime::metrics::set_level(runtime::metrics::Level::kOff);
    runtime::metrics::reset();
    ASSERT_EQ(off.size(), full.size());
    for (std::size_t i = 0; i < off.size(); ++i) {
        ASSERT_EQ(off[i], full[i]) << "tracing perturbed sample " << i;
    }
}

}  // namespace
}  // namespace ams
