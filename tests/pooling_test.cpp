#include "nn/pooling.hpp"

#include <gtest/gtest.h>

#include "nn/gradcheck.hpp"

namespace ams::nn {
namespace {

TEST(MaxPoolTest, ForwardPicksWindowMax) {
    MaxPool2d pool(2);
    Tensor x = Tensor::from_data(Shape{1, 1, 4, 4},
                                 {1, 2, 3, 4,
                                  5, 6, 7, 8,
                                  9, 10, 11, 12,
                                  13, 14, 15, 16});
    Tensor y = pool.forward(x);
    ASSERT_EQ(y.shape(), Shape({1, 1, 2, 2}));
    EXPECT_FLOAT_EQ(y.at({0, 0, 0, 0}), 6.0f);
    EXPECT_FLOAT_EQ(y.at({0, 0, 0, 1}), 8.0f);
    EXPECT_FLOAT_EQ(y.at({0, 0, 1, 0}), 14.0f);
    EXPECT_FLOAT_EQ(y.at({0, 0, 1, 1}), 16.0f);
}

TEST(MaxPoolTest, BackwardRoutesToArgmax) {
    MaxPool2d pool(2);
    Tensor x = Tensor::from_data(Shape{1, 1, 2, 2}, {1, 9, 3, 4});
    (void)pool.forward(x);
    Tensor g(Shape{1, 1, 1, 1}, 5.0f);
    Tensor gx = pool.backward(g);
    EXPECT_FLOAT_EQ(gx[0], 0.0f);
    EXPECT_FLOAT_EQ(gx[1], 5.0f);  // argmax position
    EXPECT_FLOAT_EQ(gx[2], 0.0f);
    EXPECT_FLOAT_EQ(gx[3], 0.0f);
}

TEST(MaxPoolTest, StrideAndPadding) {
    MaxPool2d pool(3, 2, 1);
    Tensor x(Shape{1, 1, 4, 4}, 1.0f);
    Tensor y = pool.forward(x);
    EXPECT_EQ(y.shape(), Shape({1, 1, 2, 2}));
    for (std::size_t i = 0; i < y.size(); ++i) EXPECT_FLOAT_EQ(y[i], 1.0f);
}

TEST(MaxPoolTest, RejectsDegenerateWindow) {
    EXPECT_THROW(MaxPool2d(0), std::invalid_argument);
    MaxPool2d pool(5);
    Tensor small(Shape{1, 1, 2, 2});
    EXPECT_THROW((void)pool.forward(small), std::invalid_argument);
}

TEST(GlobalAvgPoolTest, AveragesSpatialDims) {
    GlobalAvgPool gap;
    Tensor x = Tensor::from_data(Shape{1, 2, 2, 2}, {1, 2, 3, 4, 10, 10, 10, 10});
    Tensor y = gap.forward(x);
    ASSERT_EQ(y.shape(), Shape({1, 2}));
    EXPECT_FLOAT_EQ(y[0], 2.5f);
    EXPECT_FLOAT_EQ(y[1], 10.0f);
}

TEST(GlobalAvgPoolTest, BackwardSpreadsUniformly) {
    GlobalAvgPool gap;
    Tensor x(Shape{1, 1, 2, 2}, 1.0f);
    (void)gap.forward(x);
    Tensor g(Shape{1, 1}, 8.0f);
    Tensor gx = gap.backward(g);
    for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(gx[i], 2.0f);
}

TEST(GlobalAvgPoolTest, Gradcheck) {
    GlobalAvgPool gap;
    Rng rng(21);
    Tensor x(Shape{2, 3, 4, 4});
    x.fill_uniform(rng, -1.0f, 1.0f);
    const auto r = check_input_gradient(gap, x, rng, 1e-3);
    EXPECT_LT(r.max_rel_error, 1e-2);
}

TEST(MaxPoolTest, GradcheckAwayFromTies) {
    MaxPool2d pool(2);
    Rng rng(22);
    Tensor x(Shape{1, 2, 4, 4});
    // Distinct values avoid argmax ties that break finite differences.
    for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = static_cast<float>(i) * 0.1f + static_cast<float>(rng.uniform(0.0, 0.01));
    }
    const auto r = check_input_gradient(pool, x, rng, 1e-3);
    EXPECT_LT(r.max_rel_error, 1e-2);
}

}  // namespace
}  // namespace ams::nn
