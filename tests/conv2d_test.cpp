#include "nn/conv2d.hpp"

#include <gtest/gtest.h>

#include "nn/gradcheck.hpp"

namespace ams::nn {
namespace {

// Direct (non-GEMM) reference convolution for one batch item.
Tensor naive_conv(const Tensor& input, const Tensor& weight, std::size_t stride,
                  std::size_t pad) {
    const std::size_t batch = input.dim(0), cin = input.dim(1);
    const std::size_t h = input.dim(2), w = input.dim(3);
    const std::size_t cout = weight.dim(0), k = weight.dim(2);
    const std::size_t oh = (h + 2 * pad - k) / stride + 1;
    const std::size_t ow = (w + 2 * pad - k) / stride + 1;
    Tensor out(Shape{batch, cout, oh, ow});
    for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t oc = 0; oc < cout; ++oc) {
            for (std::size_t oy = 0; oy < oh; ++oy) {
                for (std::size_t ox = 0; ox < ow; ++ox) {
                    double acc = 0.0;
                    for (std::size_t ic = 0; ic < cin; ++ic) {
                        for (std::size_t ky = 0; ky < k; ++ky) {
                            for (std::size_t kx = 0; kx < k; ++kx) {
                                const long long iy =
                                    static_cast<long long>(oy * stride + ky) -
                                    static_cast<long long>(pad);
                                const long long ix =
                                    static_cast<long long>(ox * stride + kx) -
                                    static_cast<long long>(pad);
                                if (iy < 0 || iy >= static_cast<long long>(h) || ix < 0 ||
                                    ix >= static_cast<long long>(w)) {
                                    continue;
                                }
                                acc += static_cast<double>(
                                           input.at({b, ic, static_cast<std::size_t>(iy),
                                                     static_cast<std::size_t>(ix)})) *
                                       weight.at({oc, ic, ky, kx});
                            }
                        }
                    }
                    out.at({b, oc, oy, ox}) = static_cast<float>(acc);
                }
            }
        }
    }
    return out;
}

struct ConvCase {
    std::size_t cin, cout, k, stride, pad, h, w;
};

class Conv2dVsNaive : public ::testing::TestWithParam<ConvCase> {};

TEST_P(Conv2dVsNaive, ForwardMatchesReference) {
    const auto p = GetParam();
    Rng rng(31);
    Conv2dOptions opts{p.cin, p.cout, p.k, p.stride, p.pad, false};
    Conv2d conv(opts, rng);
    Tensor x(Shape{2, p.cin, p.h, p.w});
    x.fill_uniform(rng, -1.0f, 1.0f);
    Tensor got = conv.forward(x);
    Tensor expected = naive_conv(x, conv.weight().value, p.stride, p.pad);
    ASSERT_EQ(got.shape(), expected.shape());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i], expected[i], 1e-4f) << "at " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Geometries, Conv2dVsNaive,
                         ::testing::Values(ConvCase{1, 1, 3, 1, 1, 5, 5},
                                           ConvCase{3, 4, 3, 1, 1, 6, 6},
                                           ConvCase{2, 5, 1, 1, 0, 4, 7},
                                           ConvCase{4, 2, 3, 2, 1, 8, 8},
                                           ConvCase{3, 3, 5, 1, 2, 7, 7},
                                           ConvCase{2, 6, 1, 2, 0, 6, 6}));

TEST(Conv2dTest, BiasIsAddedPerChannel) {
    Rng rng(32);
    Conv2dOptions opts{1, 2, 1, 1, 0, true};
    Conv2d conv(opts, rng);
    conv.weight().value.zero();
    conv.bias()->value[0] = 1.5f;
    conv.bias()->value[1] = -2.0f;
    Tensor x(Shape{1, 1, 2, 2}, 3.0f);
    Tensor y = conv.forward(x);
    EXPECT_FLOAT_EQ(y.at({0, 0, 0, 0}), 1.5f);
    EXPECT_FLOAT_EQ(y.at({0, 1, 1, 1}), -2.0f);
}

TEST(Conv2dTest, GradcheckInputAndParams) {
    Rng rng(33);
    Conv2dOptions opts{2, 3, 3, 1, 1, true};
    Conv2d conv(opts, rng);
    Tensor x(Shape{2, 2, 5, 5});
    x.fill_uniform(rng, -1.0f, 1.0f);
    const auto gi = check_input_gradient(conv, x, rng, 1e-2);
    EXPECT_LT(gi.max_rel_error, 2e-2) << "input grad";
    const auto gp = check_parameter_gradients(conv, x, rng, 1e-2);
    EXPECT_LT(gp.max_rel_error, 2e-2) << "param grad";
}

TEST(Conv2dTest, GradcheckStridedConv) {
    Rng rng(34);
    Conv2dOptions opts{2, 2, 3, 2, 1, false};
    Conv2d conv(opts, rng);
    Tensor x(Shape{1, 2, 6, 6});
    x.fill_uniform(rng, -1.0f, 1.0f);
    const auto gi = check_input_gradient(conv, x, rng, 1e-2);
    EXPECT_LT(gi.max_rel_error, 2e-2);
}

TEST(Conv2dTest, EffectiveWeightSubstitutesForward) {
    Rng rng(35);
    Conv2dOptions opts{1, 1, 1, 1, 0, false};
    Conv2d conv(opts, rng);
    conv.weight().value[0] = 2.0f;
    Tensor x(Shape{1, 1, 2, 2}, 1.0f);
    Tensor sub(Shape{1, 1, 1, 1});
    sub[0] = 10.0f;
    conv.set_effective_weight(sub);
    Tensor y = conv.forward(x);
    EXPECT_FLOAT_EQ(y[0], 10.0f);  // uses substituted weight
    conv.clear_effective_weight();
    Tensor y2 = conv.forward(x);
    EXPECT_FLOAT_EQ(y2[0], 2.0f);  // back to latent weight
}

TEST(Conv2dTest, GradAccumulatesAcrossBackwardCalls) {
    Rng rng(36);
    Conv2dOptions opts{1, 1, 1, 1, 0, false};
    Conv2d conv(opts, rng);
    Tensor x(Shape{1, 1, 2, 2}, 1.0f);
    Tensor g(Shape{1, 1, 2, 2}, 1.0f);
    conv.forward(x);
    conv.backward(g);
    const float first = conv.weight().grad[0];
    conv.forward(x);
    conv.backward(g);
    EXPECT_FLOAT_EQ(conv.weight().grad[0], 2.0f * first);
}

TEST(Conv2dTest, InvalidConfigsRejected) {
    Rng rng(37);
    EXPECT_THROW(Conv2d(Conv2dOptions{0, 1, 3, 1, 1, false}, rng), std::invalid_argument);
    EXPECT_THROW(Conv2d(Conv2dOptions{1, 1, 0, 1, 1, false}, rng), std::invalid_argument);
    EXPECT_THROW(Conv2d(Conv2dOptions{1, 1, 3, 0, 1, false}, rng), std::invalid_argument);
}

TEST(Conv2dTest, WrongInputChannelsRejected) {
    Rng rng(38);
    Conv2d conv(Conv2dOptions{3, 2, 3, 1, 1, false}, rng);
    Tensor x(Shape{1, 2, 5, 5});
    EXPECT_THROW((void)conv.forward(x), std::invalid_argument);
    Tensor rank3(Shape{2, 5, 5});
    EXPECT_THROW((void)conv.forward(rank3), std::invalid_argument);
}

TEST(Conv2dTest, NTotIsPatchSize) {
    Rng rng(39);
    Conv2d conv(Conv2dOptions{8, 4, 3, 1, 1, false}, rng);
    EXPECT_EQ(conv.n_tot(), 72u);
}

}  // namespace
}  // namespace ams::nn
