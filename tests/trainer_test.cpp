#include "train/trainer.hpp"

#include <gtest/gtest.h>

#include "data/synthetic_imagenet.hpp"

namespace ams::train {
namespace {

data::DatasetOptions tiny_data() {
    data::DatasetOptions o;
    o.classes = 4;
    o.train_per_class = 24;
    o.val_per_class = 8;
    o.image_size = 8;
    o.noise_sigma = 0.1f;
    o.seed = 5;
    return o;
}

models::LayerCommon fp32_common() {
    models::LayerCommon c;
    c.bits_w = quant::kFloatBits;
    c.bits_x = quant::kFloatBits;
    return c;
}

TEST(TrainerTest, LossDecreasesOverEpochs) {
    data::SyntheticImageNet ds(tiny_data());
    models::ResNet model(models::tiny_resnet_config(fp32_common()));
    TrainOptions opts;
    opts.epochs = 4;
    opts.batch_size = 16;
    opts.patience = 0;
    opts.sgd = {0.05f, 0.9f, 0.0f};
    const TrainResult r = fit(model, ds.train_images(), ds.train_labels(), ds.val_images(),
                              ds.val_labels(), opts);
    ASSERT_EQ(r.history.size(), 4u);
    EXPECT_LT(r.history.back().train_loss, r.history.front().train_loss);
    EXPECT_GT(r.best_val_top1, 1.0 / 4.0);  // above chance
}

TEST(TrainerTest, BestStateIsSnapshotted) {
    data::SyntheticImageNet ds(tiny_data());
    models::ResNet model(models::tiny_resnet_config(fp32_common()));
    TrainOptions opts;
    opts.epochs = 3;
    opts.batch_size = 16;
    opts.patience = 0;
    const TrainResult r = fit(model, ds.train_images(), ds.train_labels(), ds.val_images(),
                              ds.val_labels(), opts);
    EXPECT_FALSE(r.best_state.empty());
    // The model is left loaded with the best state: evaluating it again
    // must reproduce best_val_top1 (the model is deterministic).
    const EvalResult ev =
        evaluate_top1(model, ds.val_images(), ds.val_labels(), 16, 1);
    EXPECT_NEAR(ev.mean, r.best_val_top1, 1e-12);
}

TEST(TrainerTest, EpochCallbackFires) {
    data::SyntheticImageNet ds(tiny_data());
    models::ResNet model(models::tiny_resnet_config(fp32_common()));
    TrainOptions opts;
    opts.epochs = 2;
    opts.batch_size = 16;
    opts.patience = 0;
    std::size_t calls = 0;
    opts.on_epoch = [&calls](std::size_t, double, double) { ++calls; };
    (void)fit(model, ds.train_images(), ds.train_labels(), ds.val_images(), ds.val_labels(),
              opts);
    EXPECT_EQ(calls, 2u);
}

TEST(TrainerTest, EarlyStoppingBoundsEpochs) {
    data::SyntheticImageNet ds(tiny_data());
    models::ResNet model(models::tiny_resnet_config(fp32_common()));
    TrainOptions opts;
    opts.epochs = 50;
    opts.batch_size = 16;
    opts.patience = 1;
    // An absurd learning rate destroys progress, so validation accuracy
    // cannot keep improving and patience must kick in early.
    opts.sgd = {10.0f, 0.0f, 0.0f};
    const TrainResult r = fit(model, ds.train_images(), ds.train_labels(), ds.val_images(),
                              ds.val_labels(), opts);
    EXPECT_LT(r.history.size(), 50u);
}

TEST(TrainerTest, FrozenGroupsDoNotMove) {
    data::SyntheticImageNet ds(tiny_data());
    models::ResNet model(models::tiny_resnet_config(fp32_common()));
    model.set_group_frozen(models::LayerGroup::kConv, true);
    TensorMap before;
    model.collect_state("", before);

    TrainOptions opts;
    opts.epochs = 1;
    opts.batch_size = 16;
    opts.patience = 0;
    (void)fit(model, ds.train_images(), ds.train_labels(), ds.val_images(), ds.val_labels(),
              opts);
    // Compare a conv weight: must be bit-identical. (The trainer reloads
    // the best state, but that state was trained with frozen convs.)
    TensorMap after;
    model.collect_state("", after);
    const Tensor& w_before = before.at("stem.conv.weight");
    const Tensor& w_after = after.at("stem.conv.weight");
    for (std::size_t i = 0; i < w_before.size(); ++i) {
        EXPECT_FLOAT_EQ(w_before[i], w_after[i]);
    }
    // BN params did move.
    const Tensor& g_before = before.at("stem.bn.gamma");
    const Tensor& g_after = after.at("stem.bn.gamma");
    bool moved = false;
    for (std::size_t i = 0; i < g_before.size(); ++i) {
        if (g_before[i] != g_after[i]) moved = true;
    }
    EXPECT_TRUE(moved);
}

TEST(TrainerTest, ValidatesArguments) {
    data::SyntheticImageNet ds(tiny_data());
    models::ResNet model(models::tiny_resnet_config(fp32_common()));
    TrainOptions opts;
    opts.epochs = 0;
    EXPECT_THROW((void)fit(model, ds.train_images(), ds.train_labels(), ds.val_images(),
                           ds.val_labels(), opts),
                 std::invalid_argument);
}


TEST(TrainerTest, GradientQuantizationStillLearns) {
    // Original-DoReFa-style gradient quantization (paper Sec. 2 notes
    // Distiller omits it); 8-bit gradients must not break training.
    data::SyntheticImageNet ds(tiny_data());
    models::ResNet model(models::tiny_resnet_config(fp32_common()));
    TrainOptions opts;
    opts.epochs = 4;
    opts.batch_size = 16;
    opts.patience = 0;
    opts.grad_bits = 8;
    opts.sgd = {0.05f, 0.9f, 0.0f};
    const TrainResult r = fit(model, ds.train_images(), ds.train_labels(), ds.val_images(),
                              ds.val_labels(), opts);
    EXPECT_LT(r.history.back().train_loss, r.history.front().train_loss);
    EXPECT_GT(r.best_val_top1, 1.0 / 4.0);
}

}  // namespace
}  // namespace ams::train
