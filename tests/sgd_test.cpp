#include "nn/sgd.hpp"

#include <gtest/gtest.h>

namespace ams::nn {
namespace {

Parameter make_param(float value, float grad) {
    Parameter p("w", Tensor(Shape{1}, value));
    p.grad[0] = grad;
    return p;
}

TEST(SgdTest, PlainStepDescendsGradient) {
    Parameter p = make_param(1.0f, 0.5f);
    Sgd opt({&p}, SgdOptions{0.1f, 0.0f, 0.0f});
    opt.step();
    EXPECT_FLOAT_EQ(p.value[0], 1.0f - 0.1f * 0.5f);
}

TEST(SgdTest, MomentumAccumulatesVelocity) {
    Parameter p = make_param(0.0f, 1.0f);
    Sgd opt({&p}, SgdOptions{1.0f, 0.5f, 0.0f});
    opt.step();  // v = 1, w = -1
    EXPECT_FLOAT_EQ(p.value[0], -1.0f);
    p.grad[0] = 1.0f;
    opt.step();  // v = 0.5*1 + 1 = 1.5, w = -2.5
    EXPECT_FLOAT_EQ(p.value[0], -2.5f);
}

TEST(SgdTest, WeightDecayPullsTowardZero) {
    Parameter p = make_param(2.0f, 0.0f);
    Sgd opt({&p}, SgdOptions{0.1f, 0.0f, 0.5f});
    opt.step();  // effective grad = 0 + 0.5*2 = 1
    EXPECT_FLOAT_EQ(p.value[0], 2.0f - 0.1f * 1.0f);
}

TEST(SgdTest, FrozenParameterIsSkipped) {
    Parameter p = make_param(1.0f, 10.0f);
    p.frozen = true;
    Sgd opt({&p}, SgdOptions{0.1f, 0.9f, 0.0f});
    opt.step();
    EXPECT_FLOAT_EQ(p.value[0], 1.0f);
    // Unfreezing resumes updates.
    p.frozen = false;
    opt.step();
    EXPECT_LT(p.value[0], 1.0f);
}

TEST(SgdTest, ZeroGradClearsAllGrads) {
    Parameter a = make_param(0.0f, 3.0f);
    Parameter b = make_param(0.0f, -2.0f);
    Sgd opt({&a, &b}, SgdOptions{0.1f, 0.0f, 0.0f});
    opt.zero_grad();
    EXPECT_FLOAT_EQ(a.grad[0], 0.0f);
    EXPECT_FLOAT_EQ(b.grad[0], 0.0f);
}

TEST(SgdTest, ValidatesOptionsAndParams) {
    Parameter p = make_param(0.0f, 0.0f);
    EXPECT_THROW(Sgd({&p}, SgdOptions{0.0f, 0.9f, 0.0f}), std::invalid_argument);
    EXPECT_THROW(Sgd({&p}, SgdOptions{0.1f, -0.1f, 0.0f}), std::invalid_argument);
    EXPECT_THROW(Sgd({nullptr}, SgdOptions{0.1f, 0.0f, 0.0f}), std::invalid_argument);
    Sgd opt({&p}, SgdOptions{0.1f, 0.0f, 0.0f});
    EXPECT_THROW(opt.set_lr(-1.0f), std::invalid_argument);
}

}  // namespace
}  // namespace ams::nn
