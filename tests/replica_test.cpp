// Eval-replica construction (models::make_eval_replica) for serving
// instance pools: weight sharing, gradient release, buffer deep copies,
// deterministic bit-identity and per-instance noise independence.
#include "models/resnet.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "data/synthetic_imagenet.hpp"
#include "nn/module.hpp"

namespace ams::models {
namespace {

data::DatasetOptions tiny_data() {
    data::DatasetOptions o;
    o.classes = 4;
    o.train_per_class = 2;
    o.val_per_class = 4;
    o.image_size = 8;
    o.seed = 31;
    return o;
}

LayerCommon fp32_common() {
    LayerCommon c;
    c.bits_w = quant::kFloatBits;
    c.bits_x = quant::kFloatBits;
    return c;
}

LayerCommon quant_common() {
    LayerCommon c;
    c.bits_w = 8;
    c.bits_x = 8;
    return c;
}

LayerCommon ams_common(double enob) {
    LayerCommon c;
    c.bits_w = 8;
    c.bits_x = 8;
    c.ams_enabled = true;
    c.vmac.enob = enob;
    c.vmac.nmult = 8;
    return c;
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
    return a.shape() == b.shape() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

TEST(ReplicaTest, SharesWeightStorageWithPrimary) {
    ResNet primary(tiny_resnet_config(fp32_common()));
    auto replica = make_eval_replica(primary, 0);

    auto primary_params = primary.parameters();
    auto replica_params = replica->parameters();
    ASSERT_EQ(replica_params.size(), primary_params.size());
    for (std::size_t i = 0; i < primary_params.size(); ++i) {
        EXPECT_EQ(replica_params[i]->name, primary_params[i]->name);
        // Same storage, not a copy — and the replica does not own it.
        EXPECT_EQ(replica_params[i]->value.data(), primary_params[i]->value.data());
        EXPECT_FALSE(replica_params[i]->value.owns_storage());
        // Gradient accumulators are released: the replica never trains.
        EXPECT_EQ(replica_params[i]->grad.size(), 0u);
    }
    // The whole per-instance weight cost: zero owned floats.
    EXPECT_EQ(nn::owned_parameter_floats(*replica), 0u);
    EXPECT_EQ(nn::owned_parameter_floats(primary),
              nn::parameter_count(primary_params));
    EXPECT_FALSE(replica->training());
}

TEST(ReplicaTest, StateMatchesPrimaryAfterConstruction) {
    ResNet primary(tiny_resnet_config(quant_common()));
    auto replica = make_eval_replica(primary, 3);

    TensorMap primary_state;
    TensorMap replica_state;
    primary.collect_state("", primary_state);
    replica->collect_state("", replica_state);
    ASSERT_EQ(replica_state.size(), primary_state.size());
    for (const auto& [key, tensor] : primary_state) {
        const auto it = replica_state.find(key);
        ASSERT_NE(it, replica_state.end()) << key;
        EXPECT_TRUE(bitwise_equal(it->second, tensor)) << key;
    }
}

TEST(ReplicaTest, DeterministicReplicaIsBitIdenticalToPrimary) {
    data::SyntheticImageNet ds(tiny_data());
    ResNet primary(tiny_resnet_config(quant_common()));
    primary.set_training(false);
    auto replica = make_eval_replica(primary, 5);

    const Tensor expected = primary.forward(ds.val_images());
    const Tensor actual = replica->forward(ds.val_images());
    EXPECT_TRUE(bitwise_equal(actual, expected));
}

TEST(ReplicaTest, NoisyReplicasAreIndependentButReproducible) {
    data::SyntheticImageNet ds(tiny_data());
    ResNet primary(tiny_resnet_config(ams_common(4.0)));
    primary.set_training(false);

    auto first = make_eval_replica(primary, 0);
    auto first_again = make_eval_replica(primary, 0);
    auto second = make_eval_replica(primary, 1);

    const Tensor y0 = first->forward(ds.val_images());
    const Tensor y0_again = first_again->forward(ds.val_images());
    const Tensor y1 = second->forward(ds.val_images());

    // Same instance id => same noise realization (reproducible).
    EXPECT_TRUE(bitwise_equal(y0, y0_again));
    // Different instance id => an independent realization.
    EXPECT_FALSE(bitwise_equal(y0, y1));
}

TEST(ReplicaTest, ReplicaForwardDoesNotPerturbPrimaryNoiseStreams) {
    data::SyntheticImageNet ds(tiny_data());
    ResNet primary(tiny_resnet_config(ams_common(4.0)));
    primary.set_training(false);

    // Reference: the primary's own first forward, on a fresh twin.
    ResNet twin(tiny_resnet_config(ams_common(4.0)));
    twin.set_training(false);
    const Tensor expected = twin.forward(ds.val_images());

    // Running a replica must not advance the primary's own epochs.
    auto replica = make_eval_replica(primary, 2);
    (void)replica->forward(ds.val_images());
    const Tensor actual = primary.forward(ds.val_images());
    EXPECT_TRUE(bitwise_equal(actual, expected));
}

}  // namespace
}  // namespace ams::models
