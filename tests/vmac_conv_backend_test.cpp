// Backend-generic VmacConv2d engine: the refactor's no-numerics-change
// guarantee (bit-exact backend reproduces the pre-refactor engine
// bit-for-bit at any thread count) plus conv-level behaviour of the
// Section-4 extension backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "ams/vmac_conv.hpp"
#include "runtime/eval_context.hpp"
#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/im2col.hpp"

namespace ams::vmac {
namespace {

VmacConfig cfg(double enob, std::size_t nmult = 8, std::size_t bits = 16) {
    VmacConfig c;
    c.enob = enob;
    c.nmult = nmult;
    c.bits_w = bits;
    c.bits_x = bits;
    return c;
}

template <typename Fn>
std::vector<float> with_threads(std::size_t threads, Fn&& make_output) {
    runtime::ThreadPool::set_global_threads(threads);
    Tensor out = make_output();
    std::vector<float> bits(out.data(), out.data() + out.size());
    runtime::ThreadPool::set_global_threads(runtime::ThreadPool::threads_from_env());
    return bits;
}

void expect_bit_identical(const std::vector<float>& a, const std::vector<float>& b) {
    ASSERT_EQ(a.size(), b.size());
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

/// Serial replica of the pre-refactor VmacConv2d engine (the exact loop
/// the backend seam replaced): im2col lowering, per-tile RngStream, and
/// either the bit-exact VmacCell or the per-VMAC uniform-noise model.
Tensor pre_refactor_reference(const Tensor& weight, std::size_t stride, std::size_t padding,
                              const VmacConfig& config, const AnalogOptions& analog,
                              bool bit_exact, std::uint64_t seed, const Tensor& input) {
    VmacCell cell(config, analog);
    runtime::RngStream streams = runtime::RngStream::from(Rng(seed));
    const std::size_t kernel = weight.dim(2);
    const ConvLowering low(ConvGeometry{weight.dim(1), input.dim(2), input.dim(3), kernel,
                                        kernel, stride, stride, padding, padding});
    const std::size_t batch = input.dim(0);
    const std::size_t cout = weight.dim(0);
    const std::size_t nmult = config.nmult;
    const std::size_t out_spatial = low.out_spatial();
    const std::size_t patch = low.patch_size();
    const double lsb = cell.adc_lsb();

    Tensor output(Shape{batch, cout, low.out_h(), low.out_w()});
    std::vector<float> columns(batch * low.columns_floats());
    low.lower_batch(input.data(), batch, columns.data());
    const runtime::RngStream pass_streams = streams.substream(0);
    std::vector<double> w_chunk(nmult), x_chunk(nmult);
    for (std::size_t t = 0; t < batch * cout; ++t) {
        const std::size_t b = t / cout;
        const std::size_t oc = t % cout;
        Rng tile_rng = pass_streams.stream(t);
        const float* cols = columns.data() + b * patch * out_spatial;
        const float* wrow = weight.data() + oc * patch;
        for (std::size_t pix = 0; pix < out_spatial; ++pix) {
            double acc = 0.0;
            for (std::size_t start = 0; start < patch; start += nmult) {
                const std::size_t len = std::min(nmult, patch - start);
                if (bit_exact) {
                    for (std::size_t i = 0; i < len; ++i) {
                        w_chunk[i] = wrow[start + i];
                        x_chunk[i] = cols[(start + i) * out_spatial + pix];
                    }
                    acc += cell.dot(std::span(w_chunk.data(), len),
                                    std::span(x_chunk.data(), len), tile_rng);
                } else {
                    double partial = 0.0;
                    for (std::size_t i = 0; i < len; ++i) {
                        partial += static_cast<double>(wrow[start + i]) *
                                   cols[(start + i) * out_spatial + pix];
                    }
                    acc += partial + tile_rng.uniform(-0.5 * lsb, 0.5 * lsb);
                }
            }
            output.data()[(b * cout + oc) * out_spatial + pix] = static_cast<float>(acc);
        }
    }
    return output;
}

TEST(VmacConvBackendTest, BitExactBackendReproducesPreRefactorEngine) {
    Rng rng(11);
    Tensor w(Shape{4, 3, 3, 3});
    w.fill_uniform(rng, -1.0f, 1.0f);
    const VmacConfig c = cfg(8.0);
    Tensor x(Shape{3, 3, 6, 6});
    x.fill_uniform(rng, 0.0f, 1.0f);

    const Tensor reference =
        pre_refactor_reference(w, 1, 1, c, {}, /*bit_exact=*/true, /*seed=*/12, x);
    const std::vector<float> ref_bits(reference.data(), reference.data() + reference.size());

    auto run = [&] {
        VmacConv2d vconv(w, 1, 1, c, {}, VmacConvMode::kBitExact, Rng(12));
        return vconv.forward(x);
    };
    expect_bit_identical(ref_bits, with_threads(1, run));
    expect_bit_identical(ref_bits, with_threads(4, run));
}

TEST(VmacConvBackendTest, PerVmacNoiseBackendReproducesPreRefactorEngine) {
    Rng rng(13);
    Tensor w(Shape{3, 4, 3, 3});
    w.fill_uniform(rng, -1.0f, 1.0f);
    const VmacConfig c = cfg(6.0);
    Tensor x(Shape{2, 4, 7, 7});
    x.fill_uniform(rng, 0.0f, 1.0f);

    const Tensor reference =
        pre_refactor_reference(w, 1, 1, c, {}, /*bit_exact=*/false, /*seed=*/14, x);
    const std::vector<float> ref_bits(reference.data(), reference.data() + reference.size());

    auto run = [&] {
        VmacConv2d vconv(w, 1, 1, c, {}, VmacConvMode::kPerVmacNoise, Rng(14));
        return vconv.forward(x);
    };
    expect_bit_identical(ref_bits, with_threads(1, run));
    expect_bit_identical(ref_bits, with_threads(4, run));
}

TEST(VmacConvBackendTest, DeltaSigmaConvErrorTelescopesToFinalConversion) {
    // n_tot = 8 * 3 * 3 = 72 -> 9 chunks per output at Nmult = 8. A plain
    // ENOB-5 datapath accumulates 9 conversions' errors; the delta-sigma
    // backend leaves only the final (ENOB-14) conversion's error.
    Rng rng(17);
    Tensor w(Shape{2, 8, 3, 3});
    w.fill_uniform(rng, -1.0f, 1.0f);
    Tensor x(Shape{2, 8, 6, 6});
    x.fill_uniform(rng, 0.0f, 1.0f);
    const VmacConfig coarse = cfg(5.0);

    // Operand-quantized exact reference: same codecs, ENOB high enough
    // that conversion error is negligible at this scale.
    VmacConv2d exact_conv(w, 1, 1, cfg(26.0), {}, VmacConvMode::kBitExact, Rng(18));
    const Tensor exact = exact_conv.forward(x);

    BackendOptions ds;
    ds.kind = BackendKind::kDeltaSigma;
    ds.delta_sigma_final_enob = 14.0;
    VmacConv2d ds_conv(w, 1, 1, coarse, {}, ds, Rng(19));
    const Tensor ds_out = ds_conv.forward(x);

    VmacConv2d plain_conv(w, 1, 1, coarse, {}, VmacConvMode::kBitExact, Rng(19));
    const Tensor plain_out = plain_conv.forward(x);

    const double final_lsb = 2.0 * 8.0 * std::exp2(-14.0);
    double ds_max = 0.0, plain_max = 0.0;
    for (std::size_t i = 0; i < exact.size(); ++i) {
        ds_max = std::max(ds_max, std::abs(static_cast<double>(ds_out[i]) - exact[i]));
        plain_max = std::max(plain_max, std::abs(static_cast<double>(plain_out[i]) - exact[i]));
    }
    // Final conversion bound plus fp32 rounding of outputs up to ~8.
    EXPECT_LE(ds_max, 0.5 * final_lsb + 1e-5);
    // The plain coarse datapath is at least an order of magnitude worse.
    EXPECT_GT(plain_max, 10.0 * ds_max);
}

TEST(VmacConvBackendTest, AllBackendsRunThroughTheSameEngine) {
    Rng rng(23);
    Tensor w(Shape{3, 2, 3, 3});
    w.fill_uniform(rng, -1.0f, 1.0f);
    Tensor x(Shape{2, 2, 6, 6});
    x.fill_uniform(rng, 0.0f, 1.0f);
    // 9-bit operands: 8 magnitude bits chunk evenly for partitioning.
    const VmacConfig c = cfg(10.0, 8, 9);

    for (BackendKind kind : all_backend_kinds()) {
        BackendOptions opts;
        opts.kind = kind;
        VmacConv2d legacy_path(w, 1, 1, c, {}, opts, Rng(24));
        const Tensor out = legacy_path.forward(x);
        ASSERT_EQ(out.shape(), (Shape{2, 3, 6, 6})) << backend_kind_name(kind);
        for (std::size_t i = 0; i < out.size(); ++i) {
            ASSERT_TRUE(std::isfinite(out[i])) << backend_kind_name(kind);
        }

        // The planned arena path must match the allocating path for every
        // backend (same streams, same staging arithmetic).
        VmacConv2d arena_path(w, 1, 1, c, {}, opts, Rng(24));
        runtime::EvalContext ctx;
        (void)arena_path.plan(x.shape(), ctx);
        const Tensor arena_out = arena_path.forward(x, ctx);
        ASSERT_EQ(arena_out.size(), out.size());
        EXPECT_EQ(std::memcmp(arena_out.data(), out.data(), out.size() * sizeof(float)), 0)
            << backend_kind_name(kind);
    }
}

TEST(VmacConvBackendTest, BackwardNamesModuleAndBackend) {
    Rng rng(29);
    Tensor w(Shape{1, 1, 1, 1});
    w.fill_uniform(rng, -1.0f, 1.0f);
    BackendOptions opts;
    opts.kind = BackendKind::kDeltaSigma;
    VmacConv2d vconv(w, 1, 0, cfg(8.0), {}, opts, Rng(30));
    Tensor g(Shape{1, 1, 2, 2});

    // Backward must throw *before* touching the datapath: with counters
    // on, no conversion ledger entry may be reachable from the failed
    // call (a conversion recorded here would corrupt energy cross-checks).
    namespace metrics = runtime::metrics;
    metrics::reset();
    metrics::set_level(metrics::Level::kCounters);
    try {
        (void)vconv.backward(g);
        metrics::set_level(metrics::Level::kOff);
        FAIL() << "expected std::logic_error";
    } catch (const std::logic_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("VmacConv2d"), std::string::npos);
        EXPECT_NE(what.find("delta_sigma"), std::string::npos);
        EXPECT_NE(what.find("evaluation-only"), std::string::npos);
    }
    metrics::set_level(metrics::Level::kOff);
    for (metrics::Counter c :
         {metrics::Counter::kAdcConversionsBitExact, metrics::Counter::kAdcConversionsPerVmacNoise,
          metrics::Counter::kAdcConversionsPartitioned, metrics::Counter::kAdcConversionsDeltaSigma,
          metrics::Counter::kAdcConversionsReferenceScaled, metrics::Counter::kVmacChunks,
          metrics::Counter::kVmacOutputs}) {
        EXPECT_EQ(metrics::value(c), 0u) << "backward reached the conversion ledger";
    }
    metrics::reset();
}

TEST(VmacConvBackendTest, BackendAccessorExposesSelectedDatapath) {
    Rng rng(31);
    Tensor w(Shape{1, 1, 3, 3});
    w.fill_uniform(rng, -1.0f, 1.0f);
    BackendOptions opts;
    opts.kind = BackendKind::kPartitioned;
    VmacConv2d vconv(w, 1, 1, cfg(8.0, 8, 9), {}, opts, Rng(32));
    EXPECT_EQ(vconv.backend().kind(), BackendKind::kPartitioned);
    EXPECT_EQ(vconv.backend().conversions_per_vmac(), 4u);
    EXPECT_EQ(vconv.config().nmult, 8u);
}

}  // namespace
}  // namespace ams::vmac
