// ConvLowering geometry edge cases, checked identically across every
// consumer of the shared lowering: Conv2d (legacy + arena paths), the
// quantized wrapper, and VmacConv2d. Also the satellite regression for
// Conv2d::backward's cached-columns reuse.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <vector>

#include "ams/vmac_conv.hpp"
#include "nn/conv2d.hpp"
#include "nn/gradcheck.hpp"
#include "quant/quant_modules.hpp"
#include "runtime/eval_context.hpp"
#include "tensor/im2col.hpp"

namespace ams {
namespace {

struct Geometry {
    const char* label;
    std::size_t in_ch, out_ch, kernel, stride, padding, in_h, in_w;
};

// The edge cases the shared lowering must get right:
//   * stride > 1 where the padded extent does not divide evenly,
//   * padding >= kernel (pure-padding patches at the borders),
//   * 1x1 kernels (degenerate patch, stride-only addressing).
const Geometry kEdgeGeometries[] = {
    {"stride2_nondivisible", 2, 3, 3, 2, 1, 8, 7},
    {"padding_ge_kernel", 2, 3, 3, 1, 3, 5, 5},
    {"one_by_one_strided", 3, 4, 1, 2, 0, 5, 7},
};

ConvGeometry to_conv_geometry(const Geometry& g) {
    return ConvGeometry{g.in_ch,   g.in_h,   g.in_w,    g.kernel, g.kernel,
                        g.stride, g.stride, g.padding, g.padding};
}

/// Direct patch-walk reference convolution (no bias).
Tensor naive_conv(const Tensor& x, const Tensor& w, std::size_t stride, std::size_t pad) {
    const std::size_t batch = x.dim(0), cin = x.dim(1), h = x.dim(2), wd = x.dim(3);
    const std::size_t cout = w.dim(0), k = w.dim(2);
    const std::size_t oh = (h + 2 * pad - k) / stride + 1;
    const std::size_t ow = (wd + 2 * pad - k) / stride + 1;
    Tensor out(Shape{batch, cout, oh, ow});
    for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t oc = 0; oc < cout; ++oc) {
            for (std::size_t oy = 0; oy < oh; ++oy) {
                for (std::size_t ox = 0; ox < ow; ++ox) {
                    double acc = 0.0;
                    for (std::size_t ic = 0; ic < cin; ++ic) {
                        for (std::size_t ky = 0; ky < k; ++ky) {
                            for (std::size_t kx = 0; kx < k; ++kx) {
                                const std::ptrdiff_t iy =
                                    static_cast<std::ptrdiff_t>(oy * stride + ky) -
                                    static_cast<std::ptrdiff_t>(pad);
                                const std::ptrdiff_t ix =
                                    static_cast<std::ptrdiff_t>(ox * stride + kx) -
                                    static_cast<std::ptrdiff_t>(pad);
                                if (iy < 0 || ix < 0 ||
                                    iy >= static_cast<std::ptrdiff_t>(h) ||
                                    ix >= static_cast<std::ptrdiff_t>(wd)) {
                                    continue;
                                }
                                acc += static_cast<double>(
                                           w[((oc * cin + ic) * k + ky) * k + kx]) *
                                       x[((b * cin + ic) * h + iy) * wd + ix];
                            }
                        }
                    }
                    out[((b * cout + oc) * oh + oy) * ow + ox] = static_cast<float>(acc);
                }
            }
        }
    }
    return out;
}

void expect_same_bits(const Tensor& a, const Tensor& b, const char* label) {
    ASSERT_EQ(a.shape(), b.shape()) << label;
    ASSERT_FALSE(a.empty()) << label;
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0) << label;
}

TEST(ConvLoweringTest, LowerImageMatchesFreeIm2colOnEdgeGeometries) {
    Rng rng(1);
    for (const Geometry& g : kEdgeGeometries) {
        const ConvLowering low(to_conv_geometry(g));
        Tensor x(Shape{2, g.in_ch, g.in_h, g.in_w});
        x.fill_uniform(rng, -1.0f, 1.0f);

        std::vector<float> via_class(low.columns_floats());
        std::vector<float> via_free(low.columns_floats());
        for (std::size_t b = 0; b < 2; ++b) {
            low.lower_image(x.data(), b, via_class.data());
            im2col(x.data() + b * low.image_floats(), low.geometry(), via_free.data());
            EXPECT_EQ(std::memcmp(via_class.data(), via_free.data(),
                                  via_class.size() * sizeof(float)),
                      0)
                << g.label << " image " << b;
        }

        std::vector<float> batch_cols(2 * low.columns_floats());
        low.lower_batch(x.data(), 2, batch_cols.data());
        low.lower_image(x.data(), 1, via_class.data());
        EXPECT_EQ(std::memcmp(batch_cols.data() + low.columns_floats(), via_class.data(),
                              via_class.size() * sizeof(float)),
                  0)
            << g.label << " batch lowering";
    }
}

TEST(ConvLoweringTest, Conv2dMatchesNaiveReferenceOnEdgeGeometries) {
    for (const Geometry& g : kEdgeGeometries) {
        Rng rng(11);
        nn::Conv2dOptions opts{g.in_ch, g.out_ch, g.kernel, g.stride, g.padding, false};
        nn::Conv2d conv(opts, rng);
        conv.set_training(false);
        Tensor x(Shape{3, g.in_ch, g.in_h, g.in_w});
        x.fill_uniform(rng, -1.0f, 1.0f);

        const Tensor legacy = conv.forward(x);
        const Tensor reference = naive_conv(x, conv.weight().value, g.stride, g.padding);
        ASSERT_EQ(legacy.shape(), reference.shape()) << g.label;
        for (std::size_t i = 0; i < legacy.size(); ++i) {
            EXPECT_NEAR(legacy[i], reference[i], 1e-4f) << g.label << " @" << i;
        }

        // The arena path must agree bit-for-bit with the legacy path.
        runtime::EvalContext ctx;
        const Shape planned = conv.plan(x.shape(), ctx);
        EXPECT_EQ(planned, legacy.shape()) << g.label;
        const Tensor arena = conv.forward(x, ctx);
        expect_same_bits(legacy, arena, g.label);
    }
}

TEST(ConvLoweringTest, QuantConvFloatBitsMatchesPlainConvOnEdgeGeometries) {
    for (const Geometry& g : kEdgeGeometries) {
        nn::Conv2dOptions opts{g.in_ch, g.out_ch, g.kernel, g.stride, g.padding, false};
        Rng rng_a(5);
        nn::Conv2d plain(opts, rng_a);
        Rng rng_b(5);  // same seed: identical weights
        quant::QuantConv2d qconv(opts, quant::kFloatBits, rng_b);
        plain.set_training(false);
        qconv.set_training(false);

        Rng rng_x(6);
        Tensor x(Shape{2, g.in_ch, g.in_h, g.in_w});
        x.fill_uniform(rng_x, -1.0f, 1.0f);

        runtime::EvalContext ctx_a, ctx_b;
        (void)plain.plan(x.shape(), ctx_a);
        (void)qconv.plan(x.shape(), ctx_b);
        expect_same_bits(plain.forward(x, ctx_a), qconv.forward(x, ctx_b), g.label);
        // And the quantizing wrapper agrees with its own legacy path.
        expect_same_bits(qconv.forward(x), qconv.forward(x, ctx_b), g.label);
    }
}

TEST(ConvLoweringTest, VmacConvArenaMatchesLegacyOnEdgeGeometries) {
    for (const Geometry& g : kEdgeGeometries) {
        Rng rng(21);
        Tensor w(Shape{g.out_ch, g.in_ch, g.kernel, g.kernel});
        w.fill_uniform(rng, -1.0f, 1.0f);
        vmac::VmacConfig cfg;
        cfg.enob = 8.0;
        cfg.nmult = 8;
        cfg.bits_w = 16;
        cfg.bits_x = 16;
        Tensor x(Shape{2, g.in_ch, g.in_h, g.in_w});
        x.fill_uniform(rng, 0.0f, 1.0f);

        // Two identically seeded instances: both consume noise epoch 0,
        // so any output difference can only come from the lowering/buffer
        // plumbing, which is exactly what this test pins down.
        vmac::VmacConv2d legacy(w, g.stride, g.padding, cfg, {},
                                vmac::VmacConvMode::kBitExact, Rng(22));
        vmac::VmacConv2d planned(w, g.stride, g.padding, cfg, {},
                                 vmac::VmacConvMode::kBitExact, Rng(22));
        runtime::EvalContext ctx;
        const Shape out_shape = planned.plan(x.shape(), ctx);
        const Tensor a = legacy.forward(x);
        const Tensor b = planned.forward(x, ctx);
        EXPECT_EQ(out_shape, a.shape()) << g.label;
        expect_same_bits(a, b, g.label);
    }
}

// Satellite regression: backward must produce the same gradients whether
// it reuses the columns cached by a training-mode forward or re-lowers
// once after an eval-mode forward — and those gradients must match the
// numeric gradcheck.
TEST(ConvLoweringTest, BackwardMatchesAcrossCachedAndReloweredColumns) {
    Rng rng(9);
    nn::Conv2dOptions opts{2, 3, 3, 2, 1, true};
    nn::Conv2d conv(opts, rng);
    Tensor x(Shape{2, 2, 8, 8});
    x.fill_uniform(rng, -1.0f, 1.0f);

    // Eval-mode forward: the per-chunk scratch path, which leaves no
    // cached columns; backward re-lowers once into the member cache.
    conv.set_training(false);
    const Tensor y_eval = conv.forward(x);
    Tensor gout(y_eval.shape());
    gout.fill_uniform(rng, -1.0f, 1.0f);
    const Tensor gin_relowered = conv.backward(gout);
    const Tensor wgrad_relowered = conv.weight().grad;
    const Tensor bgrad_relowered = conv.bias()->grad;

    nn::zero_grads(conv.parameters());

    // Training-mode forward: columns are cached by forward itself and
    // backward reuses them without touching im2col.
    conv.set_training(true);
    const Tensor y_train = conv.forward(x);
    expect_same_bits(y_eval, y_train, "forward");
    const Tensor gin_cached = conv.backward(gout);
    expect_same_bits(gin_relowered, gin_cached, "grad_input");
    expect_same_bits(wgrad_relowered, conv.weight().grad, "grad_weight");
    expect_same_bits(bgrad_relowered, conv.bias()->grad, "grad_bias");
}

TEST(ConvLoweringTest, BackwardStillMatchesGradcheck) {
    Rng rng(10);
    nn::Conv2dOptions opts{2, 3, 3, 2, 1, true};
    nn::Conv2d conv(opts, rng);
    Tensor x(Shape{2, 2, 6, 6});
    x.fill_uniform(rng, -1.0f, 1.0f);
    // 2e-2 rather than 1e-2: the finite-difference baseline is computed
    // through whichever GEMM arm is active, and the AVX2/FMA arm's fused
    // rounding shifts the FD noise floor just past 1e-2 on this shape.
    EXPECT_LT(nn::check_input_gradient(conv, x, rng).max_rel_error, 2e-2);
    EXPECT_LT(nn::check_parameter_gradients(conv, x, rng).max_rel_error, 2e-2);
}

}  // namespace
}  // namespace ams
