// Statistical and determinism acceptance for the device-variability
// layer (DESIGN.md §16): per-chip static offsets must realize the
// distribution the profile specifies (chi-square GOF with a powered
// negative control), drift must follow its power law deterministically,
// different chips must be statistically independent, and the whole
// composition must be bit-identical across thread counts, clones, and
// (at zero amplitude) to the bare datapath. All seeds are fixed — these
// are regression tests, not flaky Monte-Carlo experiments.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "ams/device_variation.hpp"
#include "ams/error_injector.hpp"
#include "ams/error_model.hpp"
#include "ams/vmac_backend.hpp"
#include "ams/vmac_conv.hpp"
#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "stat_test_utils.hpp"
#include "tensor/tensor.hpp"

namespace ams::vmac {
namespace {

constexpr std::size_t kCells = 20000;

VmacConfig cfg(double enob, std::size_t nmult = 8, std::size_t bits = 16) {
    VmacConfig c;
    c.enob = enob;
    c.nmult = nmult;
    c.bits_w = bits;
    c.bits_x = bits;
    return c;
}

DeviceVariation decorated(const DeviceProfile& profile, double enob = 6.0,
                          BackendKind kind = BackendKind::kBitExact) {
    BackendOptions opts;
    opts.kind = kind;
    return DeviceVariation(make_backend(cfg(enob), {}, opts), profile);
}

/// The frozen offset realization of one chip, in offset units.
std::vector<double> chip_offsets(std::uint64_t chip, double sigma, std::size_t n = kCells) {
    DeviceProfile profile;
    profile.chip_seed = chip;
    profile.cell_offset_sigma = sigma;
    const DeviceVariation dv = decorated(profile);
    std::vector<double> offsets(n);
    for (std::size_t c = 0; c < n; ++c) offsets[c] = dv.cell_offset(c);
    return offsets;
}

// ----- distribution of the frozen realization ------------------------

TEST(DeviceVariationTest, OffsetRealizationMatchesSpecifiedDistribution) {
    const double sigma = 0.02;
    const auto offsets = chip_offsets(/*chip=*/7, sigma);
    // 99.9th percentile of chi2 with 17 dof is 40.8; fixed chip seed
    // makes the statistic deterministic, the percentile documents margin.
    EXPECT_LT(stattest::chi_square_vs_normal(offsets, sigma), 40.8);
    EXPECT_LT(stattest::ks_statistic_normal(offsets, sigma) *
                  std::sqrt(static_cast<double>(offsets.size())),
              1.95);
    const double rel_tol = 4.0 * std::sqrt(2.0 / static_cast<double>(kCells - 1));
    EXPECT_NEAR(stattest::sample_variance(offsets) / (sigma * sigma), 1.0, rel_tol);
    EXPECT_NEAR(stattest::sample_mean(offsets), 0.0,
                4.0 * sigma / std::sqrt(static_cast<double>(kCells)));
}

TEST(DeviceVariationTest, GofRejectsMisSpecifiedOffsetVariance) {
    // Powered negative control: the same GOF statistic must loudly
    // reject a 15% mis-specified sigma — otherwise the passing test
    // above proves nothing about the realized distribution.
    const double sigma = 0.02;
    const auto offsets = chip_offsets(/*chip=*/7, sigma);
    EXPECT_GT(stattest::chi_square_vs_normal(offsets, sigma * 1.15), 100.0);
    EXPECT_GT(stattest::chi_square_vs_normal(offsets, sigma * 0.85), 100.0);
}

TEST(DeviceVariationTest, DistinctChipsAreStatisticallyIndependent) {
    const double sigma = 1.0;
    const auto a = chip_offsets(/*chip=*/1, sigma, 2000);
    const auto b = chip_offsets(/*chip=*/2, sigma, 2000);
    ASSERT_NE(a, b);
    // Both chips realize the same marginal...
    EXPECT_LT(stattest::ks_statistic_normal(a, sigma) * std::sqrt(2000.0), 1.95);
    EXPECT_LT(stattest::ks_statistic_normal(b, sigma) * std::sqrt(2000.0), 1.95);
    // ...but their realizations are uncorrelated (4-sigma band).
    EXPECT_LT(std::fabs(stattest::pearson_correlation(a, b)), 4.0 / std::sqrt(2000.0));
}

TEST(DeviceVariationTest, CellNormalIsAPureFunctionOfCoordinates) {
    DeviceProfile p;
    p.chip_seed = 42;
    // Same coordinates, any call order: identical deviates.
    const double first = p.cell_normal(kFamilyCellOffset, 3, 1234);
    (void)p.cell_normal(kFamilyDriftNu, 9, 5678);
    EXPECT_EQ(p.cell_normal(kFamilyCellOffset, 3, 1234), first);
    // Distinct family / stream / cell coordinates: distinct deviates.
    EXPECT_NE(p.cell_normal(kFamilyDriftNu, 3, 1234), first);
    EXPECT_NE(p.cell_normal(kFamilyCellOffset, 4, 1234), first);
    EXPECT_NE(p.cell_normal(kFamilyCellOffset, 3, 1235), first);
}

// ----- drift and IR-drop gain families -------------------------------

TEST(DeviceVariationTest, DriftGainFollowsPowerLawDeterministically) {
    DeviceProfile p;
    p.drift_nu = 0.1;
    p.drift_t0 = 2.0;
    p.drift_time = 0.0;
    EXPECT_EQ(p.drift_gain(), 1.0);  // not yet drifting
    double prev = 2.0;
    for (double t : {2.0, 8.0, 64.0, 512.0}) {
        p.drift_time = t;
        EXPECT_DOUBLE_EQ(p.drift_gain(), std::pow(t / p.drift_t0, -p.drift_nu)) << "t=" << t;
        EXPECT_LT(p.drift_gain(), prev) << "gain must decay monotonically, t=" << t;
        prev = p.drift_gain();
    }
    p.drift_time = p.drift_t0;
    EXPECT_DOUBLE_EQ(p.drift_gain(), 1.0);  // normalized at t = t0
}

TEST(DeviceVariationTest, PerCellDriftSpreadIsFrozenPerChip) {
    DeviceProfile p;
    p.chip_seed = 5;
    p.drift_nu = 0.2;
    p.drift_nu_sigma = 0.05;
    p.drift_time = 16.0;
    const DeviceVariation a = decorated(p);
    const DeviceVariation b = decorated(p);
    // Same chip: identical frozen gains on independently built backends.
    for (std::size_t c = 0; c < 64; ++c) {
        ASSERT_EQ(a.cell_gain(c), b.cell_gain(c)) << "cell " << c;
    }
    // The spread actually spreads: not all cells share one gain.
    EXPECT_NE(a.cell_gain(0), a.cell_gain(1));
    DeviceProfile other = p;
    other.chip_seed = 6;
    EXPECT_NE(decorated(other).cell_gain(0), a.cell_gain(0));
}

TEST(DeviceVariationTest, IrDropGainMonotoneUntilReferenceDepth) {
    DeviceProfile p;
    p.ir_drop_alpha = 0.1;
    p.ir_drop_ref_cells = 16;
    const DeviceVariation dv = decorated(p);
    EXPECT_DOUBLE_EQ(dv.cell_gain(0), 1.0);  // at the driver: no sag
    for (std::size_t c = 1; c <= 16; ++c) {
        EXPECT_LT(dv.cell_gain(c), dv.cell_gain(c - 1)) << "cell " << c;
    }
    // Beyond the reference depth the sag saturates at 1 - alpha.
    EXPECT_DOUBLE_EQ(dv.cell_gain(16), 1.0 - p.ir_drop_alpha);
    EXPECT_DOUBLE_EQ(dv.cell_gain(64), 1.0 - p.ir_drop_alpha);
}

// ----- composition determinism ---------------------------------------

/// Drives `chunks` fixed chunks through `backend` with a fresh
/// fixed-seed Rng and returns every digital term (finish_output last).
std::vector<double> drive_chunks(VmacBackend& backend, std::size_t chunks,
                                 std::uint64_t seed = 0xD15EA5Eull) {
    const std::size_t n = backend.config().nmult;
    Rng op_rng(99);
    Rng rng(seed);
    std::vector<double> terms;
    for (std::size_t k = 0; k < chunks; ++k) {
        std::vector<double> w(n), x(n);
        for (double& v : w) v = op_rng.uniform(-1.0, 1.0);
        for (double& v : x) v = op_rng.uniform(0.0, 1.0);
        terms.push_back(backend.accumulate(w, x, rng));
        if ((k + 1) % 4 == 0) terms.push_back(backend.finish_output(rng));
    }
    terms.push_back(backend.finish_output(rng));
    return terms;
}

TEST(DeviceVariationTest, SameChipIsBitIdenticalAcrossClones) {
    DeviceProfile p;
    p.chip_seed = 7;
    p.cell_offset_sigma = 0.02;
    p.drift_nu = 0.1;
    p.drift_time = 8.0;
    for (BackendKind kind : all_backend_kinds()) {
        BackendOptions opts;
        opts.kind = kind;
        opts.variation = p;
        // 8 magnitude bits so the partitioned datapath's default 2x2
        // chunking divides evenly.
        const auto original = make_backend(cfg(6.0, 8, 9), {}, opts);
        const auto clone = original->clone();
        EXPECT_EQ(drive_chunks(*original, 12), drive_chunks(*clone, 12))
            << backend_kind_name(kind);
        EXPECT_TRUE(verify_clone_isolation(*original)) << backend_kind_name(kind);
    }
}

TEST(DeviceVariationTest, ZeroAmplitudeCompositionPreservesBitExactPath) {
    // Structural pass-through: an inactive profile never wraps at all.
    for (BackendKind kind : {BackendKind::kPerVmacNoise, BackendKind::kBlockFp}) {
        BackendOptions opts;
        opts.kind = kind;
        auto bare = make_backend(cfg(6.0), {}, opts);
        EXPECT_EQ(dynamic_cast<DeviceVariation*>(bare.get()), nullptr)
            << backend_kind_name(kind) << ": inactive profile must not decorate";

        // Arithmetic pass-through: even an explicit zero-amplitude
        // decorator adds offset 0 at gain 1 — bit-identical terms.
        DeviceVariation zero(make_backend(cfg(6.0), {}, opts), DeviceProfile{});
        const auto bare_terms = drive_chunks(*bare, 12);
        const auto zero_terms = drive_chunks(zero, 12);
        ASSERT_EQ(bare_terms.size(), zero_terms.size());
        EXPECT_EQ(0, std::memcmp(bare_terms.data(), zero_terms.data(),
                                 bare_terms.size() * sizeof(double)))
            << backend_kind_name(kind);
    }
}

TEST(DeviceVariationTest, ConvWithVariationIsThreadCountInvariant) {
    Rng rng(31);
    Tensor w(Shape{4, 3, 3, 3});
    w.fill_uniform(rng, -1.0f, 1.0f);
    Tensor x(Shape{2, 3, 6, 6});
    x.fill_uniform(rng, 0.0f, 1.0f);

    BackendOptions opts;
    opts.kind = BackendKind::kPerVmacNoise;
    opts.variation.chip_seed = 7;
    opts.variation.cell_offset_sigma = 0.03;
    opts.variation.drift_nu = 0.1;
    opts.variation.drift_time = 10.0;

    const auto run = [&](std::size_t threads, std::uint64_t chip) {
        runtime::ThreadPool::set_global_threads(threads);
        BackendOptions o = opts;
        o.variation.chip_seed = chip;
        VmacConv2d vconv(w, 1, 1, cfg(6.0), {}, o, Rng(32));
        Tensor out = vconv.forward(x);
        runtime::ThreadPool::set_global_threads(runtime::ThreadPool::threads_from_env());
        return std::vector<float>(out.data(), out.data() + out.size());
    };
    const auto serial = run(1, 7);
    const auto parallel = run(4, 7);
    ASSERT_EQ(serial.size(), parallel.size());
    // Same chip: the engine's per-worker clones share the frozen
    // realization, so scheduling cannot perturb a single output bit.
    EXPECT_EQ(0, std::memcmp(serial.data(), parallel.data(), serial.size() * sizeof(float)));
    // Different chip: a genuinely different frozen realization.
    EXPECT_NE(serial, run(1, 8));
}

// ----- cost and composition contracts --------------------------------

TEST(DeviceVariationTest, DecorationAddsNoConversionsAndDelegatesIdentity) {
    DeviceProfile p;
    p.chip_seed = 3;
    p.cell_offset_sigma = 0.05;
    BackendOptions opts;
    opts.kind = BackendKind::kDeltaSigma;
    const auto bare = make_backend(cfg(6.0), {}, opts);
    opts.variation = p;
    const auto dev = make_backend(cfg(6.0), {}, opts);
    EXPECT_EQ(dev->kind(), bare->kind());
    EXPECT_EQ(dev->conversions_per_vmac(), bare->conversions_per_vmac());
    const ConversionProfile a = dev->conversion_profile();
    const ConversionProfile b = bare->conversion_profile();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].enob, b[i].enob);
        EXPECT_EQ(a[i].per_chunk, b[i].per_chunk);
        EXPECT_EQ(a[i].per_output, b[i].per_output);
    }
}

TEST(DeviceVariationTest, EffectiveEnobFoldsOffsetVarianceOnly) {
    DeviceProfile p;
    p.chip_seed = 3;
    p.cell_offset_sigma = 0.05;
    BackendOptions opts;
    opts.kind = BackendKind::kPerVmacNoise;
    const auto bare = make_backend(cfg(6.0), {}, opts);
    opts.variation = p;
    const auto dev = make_backend(cfg(6.0), {}, opts);

    const double e_bare = bare->effective_enob(8);
    VmacConfig at_e = cfg(6.0);
    at_e.enob = e_bare;
    const double var_inner = vmac_error_variance(at_e);
    const double var_offset = p.cell_offset_sigma * p.cell_offset_sigma;
    const double expected = e_bare - 0.5 * std::log2((var_inner + var_offset) / var_inner);
    EXPECT_DOUBLE_EQ(dev->effective_enob(8), expected);
    EXPECT_LT(dev->effective_enob(8), e_bare);

    // Multiplicative families are excluded (signal-proportional, like
    // reference scaling's clipping): drift-only composition keeps the
    // wrapped datapath's equivalent resolution.
    DeviceProfile drift_only;
    drift_only.drift_nu = 0.2;
    drift_only.drift_time = 64.0;
    opts.variation = drift_only;
    EXPECT_DOUBLE_EQ(make_backend(cfg(6.0), {}, opts)->effective_enob(8), e_bare);
}

TEST(DeviceVariationTest, OptionsStrAppendsVariationTag) {
    BackendOptions opts;
    opts.kind = BackendKind::kPerVmacNoise;
    const std::string bare_tag = opts.str();
    opts.variation.chip_seed = 7;
    EXPECT_EQ(opts.str(), bare_tag);  // inactive profile: untagged
    opts.variation.cell_offset_sigma = 0.02;
    opts.variation.drift_nu = 0.2;
    opts.variation.drift_time = 64.0;
    const std::string tag = opts.str();
    EXPECT_NE(tag.find(bare_tag), std::string::npos);
    EXPECT_NE(tag.find("chip7"), std::string::npos);
    EXPECT_NE(tag.find("off0.02"), std::string::npos);
    EXPECT_NE(tag.find("t64nu0.2"), std::string::npos);
}

TEST(DeviceVariationTest, ValidateRejectsNonPhysicalProfiles) {
    const auto expect_throw = [](auto mutate) {
        DeviceProfile p;
        mutate(p);
        EXPECT_THROW(p.validate(), std::invalid_argument);
    };
    expect_throw([](DeviceProfile& p) { p.cell_offset_sigma = -0.1; });
    expect_throw([](DeviceProfile& p) { p.drift_time = -1.0; });
    expect_throw([](DeviceProfile& p) { p.drift_t0 = 0.0; });
    expect_throw([](DeviceProfile& p) { p.drift_nu_sigma = -0.5; });
    expect_throw([](DeviceProfile& p) { p.ir_drop_alpha = 1.0; });
    expect_throw([](DeviceProfile& p) {
        p.ir_drop_alpha = 0.5;
        p.ir_drop_ref_cells = 0;
    });
    EXPECT_THROW(DeviceVariation(nullptr, DeviceProfile{}), std::invalid_argument);
}

// ----- network-level injector field ----------------------------------

TEST(DeviceVariationTest, InjectorDeviceFieldIsDeterministicPerChannelAffine) {
    // High-ENOB config: stochastic noise is ~1e-5 while the chip field
    // is O(0.1), so the affine structure is resolvable against noise.
    const VmacConfig c = cfg(20.0);
    const std::size_t n_tot = 512;
    DeviceProfile device;
    device.chip_seed = 9;
    device.cell_offset_sigma = 0.05;
    device.drift_nu = 0.1;
    device.drift_time = 16.0;

    Rng rng(77);
    Tensor in(Shape{2, 3, 4, 4});
    in.fill_uniform(rng, -1.0f, 1.0f);
    ErrorInjector injector(c, n_tot, Rng(41), InjectionMode::kLumpedGaussian, device);
    const Tensor out = injector.forward(in);

    const double gain = device.drift_gain();
    const double sigma_out =
        std::sqrt(static_cast<double>(vmacs_per_output(c, n_tot))) * device.cell_offset_sigma;
    const double tol = 16.0 * total_error_stddev(c, n_tot) + 1e-5;
    const std::size_t spatial = 16;
    std::vector<double> channel_offsets(3);
    for (std::size_t b = 0; b < 2; ++b) {
        for (std::size_t ch = 0; ch < 3; ++ch) {
            const float* xin = in.data() + (b * 3 + ch) * spatial;
            const float* xout = out.data() + (b * 3 + ch) * spatial;
            // Within one channel: constant additive offset on gain-scaled
            // data, identical across batch rows (channel-keyed field).
            const double offset0 = xout[0] - gain * xin[0];
            for (std::size_t i = 0; i < spatial; ++i) {
                EXPECT_NEAR(xout[i] - gain * xin[i], offset0, tol)
                    << "b=" << b << " ch=" << ch << " i=" << i;
            }
            if (b == 0) {
                channel_offsets[ch] = offset0;
            } else {
                EXPECT_NEAR(offset0, channel_offsets[ch], tol) << "ch=" << ch;
            }
            // The offset scale matches sqrt(vmacs_per_output) * sigma: a
            // unit-normal field sample, well within 5 sigma.
            EXPECT_LT(std::fabs(offset0), 5.0 * sigma_out) << "ch=" << ch;
        }
    }
    // Channels carry distinct field samples (keyed independently).
    EXPECT_GT(std::fabs(channel_offsets[0] - channel_offsets[1]), tol);

    // Bit-determinism: an identically constructed injector reproduces
    // the exact same bytes, device field included.
    ErrorInjector again(c, n_tot, Rng(41), InjectionMode::kLumpedGaussian, device);
    const Tensor out2 = again.forward(in);
    EXPECT_EQ(0, std::memcmp(out.data(), out2.data(), out.size() * sizeof(float)));
}

TEST(DeviceVariationTest, InjectorForwardMatchesExplicitInjectInplace) {
    const VmacConfig c = cfg(6.0);
    DeviceProfile device;
    device.chip_seed = 4;
    device.cell_offset_sigma = 0.02;

    Rng rng(88);
    Tensor in(Shape{3, 2, 5, 5});
    in.fill_uniform(rng, -1.0f, 1.0f);
    ErrorInjector a(c, 256, Rng(51), InjectionMode::kLumpedGaussian, device);
    const Tensor out = a.forward(in);

    // The compiled-plan executor path: same data via inject_inplace with
    // the tensor's (batch, channels) — must be bit-identical.
    std::vector<float> flat(in.data(), in.data() + in.size());
    ErrorInjector b(c, 256, Rng(51), InjectionMode::kLumpedGaussian, device);
    b.inject_inplace(flat.data(), flat.size(), /*batch=*/3, /*channels=*/2);
    EXPECT_EQ(0, std::memcmp(out.data(), flat.data(), flat.size() * sizeof(float)));
}

TEST(DeviceVariationTest, VariationCountersObserveTheChunkStream) {
    using runtime::metrics::Counter;
    runtime::metrics::set_level(runtime::metrics::Level::kCounters);
    runtime::metrics::reset();
    DeviceProfile p;
    p.chip_seed = 2;
    p.cell_offset_sigma = 0.01;
    DeviceVariation dv = decorated(p);
    (void)drive_chunks(dv, 12);
    EXPECT_EQ(runtime::metrics::value(Counter::kVariationChunks), 12u);

    const VmacConfig c = cfg(6.0);
    ErrorInjector injector(c, 64, Rng(61), InjectionMode::kLumpedGaussian, p);
    Tensor in(Shape{2, 8});
    Rng rng(62);
    in.fill_uniform(rng, -1.0f, 1.0f);
    (void)injector.forward(in);
    EXPECT_EQ(runtime::metrics::value(Counter::kVariationFieldSamples), 16u);
    runtime::metrics::set_level(runtime::metrics::Level::kOff);
    runtime::metrics::reset();
}

}  // namespace
}  // namespace ams::vmac
