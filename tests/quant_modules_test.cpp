#include "quant/quant_modules.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "quant/dorefa.hpp"

namespace ams::quant {
namespace {

TEST(QuantActTest, QuantizesToGrid) {
    QuantAct act(4);  // 7 levels
    Tensor x = Tensor::from_data(Shape{4}, {-0.3f, 0.5f, 0.93f, 1.7f});
    Tensor y = act.forward(x);
    EXPECT_FLOAT_EQ(y[0], 0.0f);
    EXPECT_NEAR(y[1], std::round(0.5f * 7.0f) / 7.0f, 1e-6f);
    EXPECT_NEAR(y[2], std::round(0.93f * 7.0f) / 7.0f, 1e-6f);
    EXPECT_FLOAT_EQ(y[3], 1.0f);
}

TEST(QuantActTest, FloatBitsActsAsClippedRelu) {
    QuantAct act(kFloatBits);
    Tensor x = Tensor::from_data(Shape{3}, {-1.0f, 0.37f, 2.0f});
    Tensor y = act.forward(x);
    EXPECT_FLOAT_EQ(y[0], 0.0f);
    EXPECT_FLOAT_EQ(y[1], 0.37f);
    EXPECT_FLOAT_EQ(y[2], 1.0f);
}

TEST(QuantActTest, SteMasksSaturation) {
    QuantAct act(4);
    Tensor x = Tensor::from_data(Shape{3}, {-0.5f, 0.5f, 1.5f});
    (void)act.forward(x);
    Tensor g(Shape{3}, 1.0f);
    Tensor gx = act.backward(g);
    EXPECT_FLOAT_EQ(gx[0], 0.0f);
    EXPECT_FLOAT_EQ(gx[1], 1.0f);  // straight-through
    EXPECT_FLOAT_EQ(gx[2], 0.0f);
}

TEST(QuantInputTest, RescalesBySuppliedMax) {
    QuantInput qi(4.0f, kFloatBits);
    Tensor x = Tensor::from_data(Shape{3}, {-4.0f, 2.0f, 8.0f});
    Tensor y = qi.forward(x);
    EXPECT_FLOAT_EQ(y[0], -1.0f);
    EXPECT_FLOAT_EQ(y[1], 0.5f);
    EXPECT_FLOAT_EQ(y[2], 1.0f);  // clamped
}

TEST(QuantInputTest, SignedQuantizationPreservesSign) {
    QuantInput qi(1.0f, 3);  // 3 levels on each side
    Tensor x = Tensor::from_data(Shape{2}, {-0.5f, 0.5f});
    Tensor y = qi.forward(x);
    EXPECT_NEAR(y[0], -std::round(0.5f * 3.0f) / 3.0f, 1e-6f);
    EXPECT_NEAR(y[1], std::round(0.5f * 3.0f) / 3.0f, 1e-6f);
}

TEST(QuantInputTest, BackwardAppliesInverseScale) {
    QuantInput qi(2.0f, 8);
    Tensor x = Tensor::from_data(Shape{2}, {1.0f, 5.0f});  // 5 clamps
    (void)qi.forward(x);
    Tensor g(Shape{2}, 1.0f);
    Tensor gx = qi.backward(g);
    EXPECT_FLOAT_EQ(gx[0], 0.5f);
    EXPECT_FLOAT_EQ(gx[1], 0.0f);  // saturated
}

TEST(QuantInputTest, ValidatesConstruction) {
    EXPECT_THROW(QuantInput(0.0f, 8), std::invalid_argument);
    EXPECT_THROW(QuantInput(1.0f, 1), std::invalid_argument);
}

TEST(QuantConv2dTest, ForwardUsesQuantizedWeights) {
    Rng rng(1);
    nn::Conv2dOptions opts{1, 1, 1, 1, 0, false};
    QuantConv2d qconv(opts, 2, rng);  // 2-bit weights: values in {-1, 0, 1}
    qconv.conv().weight().value[0] = 0.7f;
    Tensor x(Shape{1, 1, 1, 1}, 1.0f);
    Tensor y = qconv.forward(x);
    // tanh(0.7)/2max + 0.5 = 1.0 -> quantized 1 -> w_q = 1.
    EXPECT_FLOAT_EQ(y[0], 1.0f);
}

TEST(QuantConv2dTest, FloatBitsMatchesPlainConv) {
    Rng rng1(5), rng2(5);
    nn::Conv2dOptions opts{2, 3, 3, 1, 1, false};
    QuantConv2d qconv(opts, kFloatBits, rng1);
    nn::Conv2d conv(opts, rng2);
    Tensor x(Shape{1, 2, 4, 4});
    Rng xr(6);
    x.fill_uniform(xr, -1.0f, 1.0f);
    Tensor a = qconv.forward(x);
    Tensor b = conv.forward(x);
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(QuantConv2dTest, BackwardScalesGradBySte) {
    Rng rng(2);
    nn::Conv2dOptions opts{1, 1, 1, 1, 0, false};
    QuantConv2d qconv(opts, 8, rng);
    qconv.conv().weight().value[0] = 0.3f;
    Tensor x(Shape{1, 1, 1, 1}, 1.0f);
    (void)qconv.forward(x);
    Tensor g(Shape{1, 1, 1, 1}, 1.0f);
    (void)qconv.backward(g);
    // dL/dw_q = x = 1; STE scale for the max-|tanh| element is
    // (1 - t^2)/max|tanh| with t = tanh(0.3) = max here.
    const float t = std::tanh(0.3f);
    EXPECT_NEAR(qconv.conv().weight().grad[0], (1.0f - t * t) / t, 1e-5f);
}

TEST(QuantLinearTest, QuantizedForwardAndSteBackward) {
    Rng rng(3);
    QuantLinear qlin(1, 1, 8, rng, /*bias=*/false);
    qlin.linear().weight().value[0] = -0.4f;
    Tensor x = Tensor::from_data(Shape{1, 1}, {1.0f});
    Tensor y = qlin.forward(x);
    // Single weight: |tanh| max is itself -> unit transform maps to 0 or 1
    // boundary; w_q = -1 exactly (tanh/-2max + 0.5 = 0).
    EXPECT_FLOAT_EQ(y[0], -1.0f);

    (void)qlin.backward(Tensor(Shape{1, 1}, 1.0f));
    const float t = std::tanh(0.4f);
    EXPECT_NEAR(qlin.linear().weight().grad[0], (1.0f - t * t) / t, 1e-5f);
}

TEST(QuantConv2dTest, StateRoundTripStoresLatentWeights) {
    Rng rng(4);
    nn::Conv2dOptions opts{2, 2, 3, 1, 1, false};
    QuantConv2d a(opts, 6, rng);
    TensorMap state;
    a.collect_state("c.", state);
    ASSERT_TRUE(state.count("c.weight"));

    Rng rng2(77);
    QuantConv2d b(opts, 6, rng2);
    b.load_state("c.", state);
    Tensor x(Shape{1, 2, 4, 4});
    Rng xr(8);
    x.fill_uniform(xr, 0.0f, 1.0f);
    Tensor ya = a.forward(x);
    Tensor yb = b.forward(x);
    for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

}  // namespace
}  // namespace ams::quant
