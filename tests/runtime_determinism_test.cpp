// The acceptance criterion of the runtime subsystem: for a fixed seed,
// forward passes and evaluation accuracy are bit-identical no matter how
// many threads the global pool runs (AMSNET_THREADS=1 vs 4). Every kernel
// wired onto the pool keeps per-chunk arithmetic order fixed, and all
// injected noise is drawn from RngStream tiles keyed by data position, so
// scheduling cannot leak into numerics.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "ams/error_injector.hpp"
#include "ams/vmac_conv.hpp"
#include "data/synthetic_imagenet.hpp"
#include "models/resnet.hpp"
#include "nn/conv2d.hpp"
#include "runtime/eval_context.hpp"
#include "runtime/simd.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/gemm.hpp"
#include "train/evaluate.hpp"

namespace ams {
namespace {

/// Runs `make_output()` under a global pool of `threads` executors and
/// returns the raw floats, restoring the env-default pool afterwards.
template <typename Fn>
std::vector<float> with_threads(std::size_t threads, Fn&& make_output) {
    runtime::ThreadPool::set_global_threads(threads);
    Tensor out = make_output();
    std::vector<float> bits(out.data(), out.data() + out.size());
    runtime::ThreadPool::set_global_threads(runtime::ThreadPool::threads_from_env());
    return bits;
}

void expect_bit_identical(const std::vector<float>& a, const std::vector<float>& b) {
    ASSERT_EQ(a.size(), b.size());
    ASSERT_FALSE(a.empty());
    // memcmp, not float ==: bit-identical is the contract (covers NaN and
    // signed-zero payloads too, though none should appear here).
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

TEST(RuntimeDeterminismTest, GemmBitIdenticalAcrossThreadCounts) {
    Rng rng(7);
    const std::size_t m = 37, k = 53, n = 41;  // awkward sizes: uneven chunks
    Tensor a(Shape{m, k});
    Tensor b(Shape{k, n});
    a.fill_uniform(rng, -1.0f, 1.0f);
    b.fill_uniform(rng, -1.0f, 1.0f);
    auto run = [&] {
        Tensor c(Shape{m, n});
        gemm(a.data(), b.data(), c.data(), m, k, n);
        return c;
    };
    expect_bit_identical(with_threads(1, run), with_threads(4, run));
}

TEST(RuntimeDeterminismTest, GemmBitIdenticalAcrossThreadCountsOnBothArms) {
    // The AVX2 microkernel computes each C element with a full-K register
    // sweep, so the k-summation order cannot depend on how rows are
    // partitioned — the vector arm must honor the same bit-identity
    // contract as the scalar arm. Run both arms explicitly (the plain
    // GemmBitIdenticalAcrossThreadCounts test above covers whichever arm
    // the environment selected).
    Rng rng(7);
    const std::size_t m = 37, k = 53, n = 41;  // uneven chunks AND 6x16 tails
    Tensor a(Shape{m, k});
    Tensor b(Shape{k, n});
    a.fill_uniform(rng, -1.0f, 1.0f);
    b.fill_uniform(rng, -1.0f, 1.0f);
    auto run = [&] {
        Tensor c(Shape{m, n});
        gemm(a.data(), b.data(), c.data(), m, k, n);
        return c;
    };
    const simd::Level saved = simd::active_level();
    for (simd::Level level : {simd::Level::kScalar, simd::Level::kAvx2}) {
        if (level == simd::Level::kAvx2 && !simd::cpu_supports_avx2_fma()) continue;
        simd::set_level(level);
        expect_bit_identical(with_threads(1, run), with_threads(4, run));
    }
    simd::set_level(saved);
}

TEST(RuntimeDeterminismTest, Conv2dForwardBitIdenticalAcrossThreadCounts) {
    auto run = [] {
        Rng rng(42);
        nn::Conv2dOptions opts{3, 8, 3, 1, 1, true};
        nn::Conv2d conv(opts, rng);
        Tensor x(Shape{5, 3, 9, 9});  // batch 5: chunks split unevenly at 4 threads
        x.fill_uniform(rng, -1.0f, 1.0f);
        return conv.forward(x);
    };
    expect_bit_identical(with_threads(1, run), with_threads(4, run));
}

TEST(RuntimeDeterminismTest, ErrorInjectorBitIdenticalAcrossThreadCounts) {
    auto run = [] {
        vmac::VmacConfig cfg;
        cfg.enob = 6.0;
        cfg.nmult = 8;
        vmac::ErrorInjector inj(cfg, 72, Rng(42));
        Rng rng(1);
        Tensor x(Shape{3, 8, 13, 13});  // 4056 elements: several RNG tiles
        x.fill_uniform(rng, -1.0f, 1.0f);
        // Two passes: the per-forward epoch must also be thread-invariant.
        (void)inj.forward(x);
        return inj.forward(x);
    };
    expect_bit_identical(with_threads(1, run), with_threads(4, run));
}

TEST(RuntimeDeterminismTest, ErrorInjectorPerVmacModeBitIdentical) {
    auto run = [] {
        vmac::VmacConfig cfg;
        cfg.enob = 5.0;
        cfg.nmult = 8;
        vmac::ErrorInjector inj(cfg, 72, Rng(43), vmac::InjectionMode::kPerVmacUniform);
        Rng rng(2);
        Tensor x(Shape{2, 8, 16, 16});
        x.fill_uniform(rng, -1.0f, 1.0f);
        return inj.forward(x);
    };
    expect_bit_identical(with_threads(1, run), with_threads(4, run));
}

TEST(RuntimeDeterminismTest, VmacConvForwardBitIdenticalAcrossThreadCounts) {
    auto run = [] {
        Rng rng(11);
        Tensor w(Shape{4, 3, 3, 3});
        w.fill_uniform(rng, -1.0f, 1.0f);
        vmac::VmacConfig cfg;
        cfg.enob = 8.0;
        cfg.nmult = 8;
        cfg.bits_w = 16;
        cfg.bits_x = 16;
        vmac::VmacConv2d vconv(w, 1, 1, cfg, {}, vmac::VmacConvMode::kBitExact, Rng(12));
        Tensor x(Shape{3, 3, 6, 6});  // 12 (image, out-channel) tiles
        x.fill_uniform(rng, 0.0f, 1.0f);
        return vconv.forward(x);
    };
    expect_bit_identical(with_threads(1, run), with_threads(4, run));
}

TEST(RuntimeDeterminismTest, ArenaPathMatchesLegacyAllocatingPath) {
    // The no-numerics-change guarantee of the memory-planning refactor:
    // plan + arena forward must be bit-identical to the legacy allocating
    // forward, at any thread count. Fresh model per run: the injectors
    // advance a per-forward noise epoch, so reuse would shift streams.
    models::LayerCommon common;
    common.bits_w = 8;
    common.bits_x = 8;
    common.ams_enabled = true;  // stochastic injection: the hard case
    common.vmac.enob = 4.0;
    common.vmac.nmult = 8;

    auto make_input = [] {
        Rng rng(31);
        Tensor x(Shape{5, 3, 8, 8});  // batch 5: uneven chunks at 4 threads
        x.fill_uniform(rng, -1.0f, 1.0f);
        return x;
    };
    auto legacy = [&] {
        models::ResNet model(models::tiny_resnet_config(common));
        model.set_training(false);
        return model.forward(make_input());
    };
    auto arena = [&] {
        models::ResNet model(models::tiny_resnet_config(common));
        model.set_training(false);
        const Tensor x = make_input();
        runtime::EvalContext ctx;
        (void)model.plan(x.shape(), ctx);
        const Tensor out = model.forward(x, ctx);
        return Tensor(out);  // deep copy out of the arena before ctx dies
    };

    const std::vector<float> reference = with_threads(1, legacy);
    expect_bit_identical(reference, with_threads(1, arena));
    expect_bit_identical(reference, with_threads(4, arena));
    expect_bit_identical(reference, with_threads(4, legacy));
}

TEST(RuntimeDeterminismTest, EvaluateSharedContextMatchesLocalContext) {
    // evaluate_top1 with a caller-provided EvalContext (the sweep-worker
    // configuration, arenas warm across calls) must score exactly like the
    // internally managed context.
    data::DatasetOptions dopts;
    dopts.classes = 4;
    dopts.train_per_class = 4;
    dopts.val_per_class = 6;
    dopts.image_size = 8;
    dopts.seed = 15;
    data::SyntheticImageNet ds(dopts);

    models::LayerCommon common;
    common.bits_w = 8;
    common.bits_x = 8;
    common.ams_enabled = true;
    common.vmac.enob = 4.0;
    common.vmac.nmult = 8;

    auto passes = [&](runtime::EvalContext* ctx) {
        models::ResNet model(models::tiny_resnet_config(common));
        return train::evaluate_top1(model, ds.val_images(), ds.val_labels(), 16, 3, ctx)
            .passes;
    };
    runtime::EvalContext shared;
    // Two evaluations through the same context: the second reuses warmed
    // arenas and must still match the fresh-context result.
    const std::vector<double> warm_first = passes(&shared);
    const std::vector<double> warm_second = passes(&shared);
    const std::vector<double> local = passes(nullptr);
    ASSERT_EQ(warm_first.size(), local.size());
    for (std::size_t i = 0; i < local.size(); ++i) {
        EXPECT_DOUBLE_EQ(warm_first[i], local[i]) << "pass " << i;
        EXPECT_DOUBLE_EQ(warm_second[i], local[i]) << "pass " << i;
    }
}

TEST(RuntimeDeterminismTest, EvalAccuracyBitIdenticalAcrossThreadCounts) {
    data::DatasetOptions dopts;
    dopts.classes = 4;
    dopts.train_per_class = 4;
    dopts.val_per_class = 8;
    dopts.image_size = 8;
    dopts.seed = 9;

    models::LayerCommon common;
    common.bits_w = 8;
    common.bits_x = 8;
    common.ams_enabled = true;  // stochastic injection: the hard case
    common.vmac.enob = 4.0;
    common.vmac.nmult = 8;

    auto accuracies = [&](std::size_t threads) {
        runtime::ThreadPool::set_global_threads(threads);
        data::SyntheticImageNet ds(dopts);
        models::ResNet model(models::tiny_resnet_config(common));
        const train::EvalResult r =
            train::evaluate_top1(model, ds.val_images(), ds.val_labels(), 16, 3);
        runtime::ThreadPool::set_global_threads(runtime::ThreadPool::threads_from_env());
        return r.passes;
    };
    const std::vector<double> serial = accuracies(1);
    const std::vector<double> parallel = accuracies(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_DOUBLE_EQ(serial[i], parallel[i]) << "pass " << i;
    }
}

}  // namespace
}  // namespace ams
