#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/parallel_for.hpp"
#include "runtime/rng_stream.hpp"
#include "runtime/thread_pool.hpp"

namespace ams::runtime {
namespace {

/// Restores the global pool to the environment default on scope exit so
/// tests that resize it don't leak configuration into later tests.
class PoolSizeGuard {
public:
    ~PoolSizeGuard() { ThreadPool::set_global_threads(ThreadPool::threads_from_env()); }
};

TEST(ThreadPoolTest, StartStopSpawnsRequestedWorkers) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.worker_count(), 3u);  // caller is the 4th executor
    EXPECT_EQ(pool.parallelism(), 4u);
    ThreadPool serial(1);
    EXPECT_EQ(serial.worker_count(), 0u);
    EXPECT_EQ(serial.parallelism(), 1u);
    ThreadPool zero(0);  // treated as serial, not an error
    EXPECT_EQ(zero.parallelism(), 1u);
}

TEST(ThreadPoolTest, SubmittedTasksAllRunBeforeDestruction) {
    std::atomic<int> count{0};
    {
        ThreadPool pool(4);
        for (int i = 0; i < 100; ++i) {
            pool.submit([&count] { count.fetch_add(1); });
        }
        // Destructor drains the queues and joins the workers.
    }
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SerialPoolRunsSubmissionsInline) {
    ThreadPool pool(1);
    bool ran = false;
    pool.submit([&ran] { ran = true; });
    EXPECT_TRUE(ran);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
    PoolSizeGuard guard;
    ThreadPool::set_global_threads(4);
    std::vector<std::atomic<int>> touched(1000);
    parallel_for(0, touched.size(), 7, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) touched[i].fetch_add(1);
    });
    for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ParallelForTest, EmptyAndReversedRangesAreNoOps) {
    int calls = 0;
    parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { ++calls; });
    parallel_for(7, 3, 1, [&](std::size_t, std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, SingleElementRange) {
    std::size_t seen_lo = 99, seen_hi = 99;
    parallel_for(4, 5, 16, [&](std::size_t lo, std::size_t hi) {
        seen_lo = lo;
        seen_hi = hi;
    });
    EXPECT_EQ(seen_lo, 4u);
    EXPECT_EQ(seen_hi, 5u);
}

TEST(ParallelForTest, ZeroGrainIsTreatedAsOne) {
    std::atomic<int> chunks{0};
    parallel_for(0, 5, 0, [&](std::size_t lo, std::size_t hi) {
        EXPECT_EQ(hi, lo + 1);
        chunks.fetch_add(1);
    });
    EXPECT_EQ(chunks.load(), 5);
}

TEST(ParallelForTest, ChunkDecompositionIndependentOfThreadCount) {
    PoolSizeGuard guard;
    // The (lo, hi) chunk set must be a function of (range, grain) only —
    // this is what makes per-chunk-deterministic kernels bit-identical.
    auto chunks_at = [](std::size_t threads) {
        ThreadPool::set_global_threads(threads);
        std::set<std::pair<std::size_t, std::size_t>> chunks;
        std::mutex mu;
        parallel_for(3, 50, 8, [&](std::size_t lo, std::size_t hi) {
            std::lock_guard<std::mutex> lock(mu);
            chunks.emplace(lo, hi);
        });
        return chunks;
    };
    EXPECT_EQ(chunks_at(1), chunks_at(4));
}

TEST(ParallelForTest, PropagatesExceptionAndStaysUsable) {
    PoolSizeGuard guard;
    ThreadPool::set_global_threads(4);
    EXPECT_THROW(
        parallel_for(0, 100, 1,
                     [](std::size_t lo, std::size_t) {
                         if (lo == 42) throw std::runtime_error("chunk 42 failed");
                     }),
        std::runtime_error);
    // The pool must still execute new work after an exception drained.
    std::atomic<int> count{0};
    parallel_for(0, 64, 1, [&](std::size_t, std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 64);
}

TEST(ParallelForTest, NestedCallsFallBackToSerial) {
    PoolSizeGuard guard;
    ThreadPool::set_global_threads(4);
    std::atomic<int> inner_total{0};
    std::atomic<bool> saw_region_flag{false};
    parallel_for(0, 8, 1, [&](std::size_t, std::size_t) {
        EXPECT_TRUE(ThreadPool::in_parallel_region());
        parallel_for(0, 10, 2, [&](std::size_t lo, std::size_t hi) {
            if (ThreadPool::in_parallel_region()) saw_region_flag.store(true);
            inner_total.fetch_add(static_cast<int>(hi - lo));
        });
    });
    EXPECT_EQ(inner_total.load(), 80);
    EXPECT_TRUE(saw_region_flag.load());
    EXPECT_FALSE(ThreadPool::in_parallel_region());  // flag restored
}

TEST(ParallelForTest, SuggestGrainBounds) {
    PoolSizeGuard guard;
    ThreadPool::set_global_threads(1);
    EXPECT_EQ(suggest_grain(100), 100u);  // serial: one chunk
    ThreadPool::set_global_threads(4);
    const std::size_t g = suggest_grain(1000);
    EXPECT_GE(g, 1u);
    EXPECT_LE(g, 1000u);
    EXPECT_GE(suggest_grain(10, 64), 64u);  // floored at min_chunk
    EXPECT_EQ(suggest_grain(0), 1u);
}

TEST(RngStreamTest, StreamsArePureAndRepeatable) {
    RngStream s(123);
    Rng a = s.stream(7);
    Rng b = s.stream(7);  // same id -> identical generator, s unchanged
    for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngStreamTest, DistinctIdsDecorrelate) {
    RngStream s(123);
    Rng a = s.stream(0);
    Rng b = s.stream(1);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next_u64() == b.next_u64()) ++equal;
    }
    EXPECT_EQ(equal, 0);
}

TEST(RngStreamTest, SubstreamsMatchDirectDerivation) {
    RngStream root(99);
    Rng via_sub = root.substream(5).stream(3);
    Rng again = root.substream(5).stream(3);
    EXPECT_EQ(via_sub.next_u64(), again.next_u64());
    // Different epochs give different tile streams.
    Rng other_epoch = root.substream(6).stream(3);
    Rng same_epoch = root.substream(5).stream(3);
    EXPECT_NE(other_epoch.next_u64(), same_epoch.next_u64());
}

TEST(RngStreamTest, FromRngIsDeterministicInSeed) {
    const RngStream a = RngStream::from(Rng(42));
    const RngStream b = RngStream::from(Rng(42));
    EXPECT_EQ(a.seed(), b.seed());
    EXPECT_NE(a.seed(), RngStream::from(Rng(43)).seed());
}

TEST(ThreadPoolTest, EnvParsingDefaultsSanely) {
    // Whatever AMSNET_THREADS says, the answer is a positive count.
    EXPECT_GE(ThreadPool::threads_from_env(), 1u);
}

}  // namespace
}  // namespace ams::runtime
