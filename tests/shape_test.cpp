#include "tensor/shape.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ams {
namespace {

TEST(ShapeTest, DefaultIsScalar) {
    Shape s;
    EXPECT_EQ(s.rank(), 0u);
    EXPECT_EQ(s.numel(), 1u);
    EXPECT_TRUE(s.strides().empty());
}

TEST(ShapeTest, NumelIsProductOfDims) {
    EXPECT_EQ(Shape({2, 3, 4}).numel(), 24u);
    EXPECT_EQ(Shape({7}).numel(), 7u);
    EXPECT_EQ(Shape({5, 0, 2}).numel(), 0u);
}

TEST(ShapeTest, RowMajorStrides) {
    const Shape s{2, 3, 4};
    const auto strides = s.strides();
    ASSERT_EQ(strides.size(), 3u);
    EXPECT_EQ(strides[0], 12u);
    EXPECT_EQ(strides[1], 4u);
    EXPECT_EQ(strides[2], 1u);
}

TEST(ShapeTest, OffsetMatchesStrides) {
    const Shape s{2, 3, 4};
    EXPECT_EQ(s.offset({0, 0, 0}), 0u);
    EXPECT_EQ(s.offset({0, 0, 3}), 3u);
    EXPECT_EQ(s.offset({0, 2, 1}), 9u);
    EXPECT_EQ(s.offset({1, 2, 3}), 23u);
}

TEST(ShapeTest, OffsetRejectsRankMismatch) {
    const Shape s{2, 3};
    EXPECT_THROW(s.offset({1}), std::invalid_argument);
    EXPECT_THROW(s.offset({1, 1, 1}), std::invalid_argument);
}

TEST(ShapeTest, OffsetRejectsOutOfRange) {
    const Shape s{2, 3};
    EXPECT_THROW(s.offset({2, 0}), std::invalid_argument);
    EXPECT_THROW(s.offset({0, 3}), std::invalid_argument);
}

TEST(ShapeTest, EqualityComparesDims) {
    EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
    EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
    EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(ShapeTest, StrFormatsDims) {
    EXPECT_EQ(Shape({2, 3, 4}).str(), "[2, 3, 4]");
    EXPECT_EQ(Shape().str(), "[]");
}

TEST(ShapeTest, DimBoundsChecked) {
    const Shape s{2, 3};
    EXPECT_EQ(s.dim(1), 3u);
    EXPECT_THROW(s.dim(2), std::out_of_range);
}

class ShapeOffsetRoundTrip : public ::testing::TestWithParam<std::vector<std::size_t>> {};

TEST_P(ShapeOffsetRoundTrip, EnumeratesAllOffsetsExactlyOnce) {
    const Shape s(GetParam());
    std::vector<bool> seen(s.numel(), false);
    std::vector<std::size_t> idx(s.rank(), 0);
    for (std::size_t count = 0; count < s.numel(); ++count) {
        const std::size_t off = s.offset(idx);
        ASSERT_LT(off, s.numel());
        EXPECT_FALSE(seen[off]);
        seen[off] = true;
        // Increment the multi-index, last dimension fastest.
        for (std::size_t d = s.rank(); d-- > 0;) {
            if (++idx[d] < s.dim(d)) break;
            idx[d] = 0;
        }
    }
    for (bool b : seen) EXPECT_TRUE(b);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapeOffsetRoundTrip,
                         ::testing::Values(std::vector<std::size_t>{4},
                                           std::vector<std::size_t>{2, 3},
                                           std::vector<std::size_t>{2, 3, 4},
                                           std::vector<std::size_t>{1, 5, 1, 2}));

}  // namespace
}  // namespace ams
