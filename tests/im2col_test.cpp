#include "tensor/im2col.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "tensor/rng.hpp"

namespace ams {
namespace {

TEST(ConvGeometryTest, OutputDims) {
    ConvGeometry g{3, 8, 8, 3, 3, 1, 1, 1, 1};
    EXPECT_EQ(g.out_h(), 8u);
    EXPECT_EQ(g.out_w(), 8u);
    EXPECT_EQ(g.patch_size(), 27u);

    ConvGeometry strided{1, 8, 8, 3, 3, 2, 2, 1, 1};
    EXPECT_EQ(strided.out_h(), 4u);
}

TEST(ConvGeometryTest, ValidateRejectsDegenerate) {
    ConvGeometry g{0, 8, 8, 3, 3, 1, 1, 0, 0};
    EXPECT_THROW(g.validate(), std::invalid_argument);
    ConvGeometry big_kernel{1, 2, 2, 5, 5, 1, 1, 0, 0};
    EXPECT_THROW(big_kernel.validate(), std::invalid_argument);
    ConvGeometry zero_stride{1, 8, 8, 3, 3, 0, 1, 0, 0};
    EXPECT_THROW(zero_stride.validate(), std::invalid_argument);
}

TEST(Im2colTest, OneByOneKernelIsIdentity) {
    const ConvGeometry g{2, 3, 3, 1, 1, 1, 1, 0, 0};
    std::vector<float> image(18);
    for (std::size_t i = 0; i < image.size(); ++i) image[i] = static_cast<float>(i);
    std::vector<float> cols(g.patch_size() * g.out_h() * g.out_w());
    im2col(image.data(), g, cols.data());
    for (std::size_t i = 0; i < image.size(); ++i) EXPECT_FLOAT_EQ(cols[i], image[i]);
}

TEST(Im2colTest, PaddingProducesZeros) {
    // 1x1 image, 3x3 kernel, pad 1: only the center tap is the pixel.
    const ConvGeometry g{1, 1, 1, 3, 3, 1, 1, 1, 1};
    const std::vector<float> image{7.0f};
    std::vector<float> cols(9);
    im2col(image.data(), g, cols.data());
    for (std::size_t i = 0; i < 9; ++i) {
        if (i == 4) {
            EXPECT_FLOAT_EQ(cols[i], 7.0f);
        } else {
            EXPECT_FLOAT_EQ(cols[i], 0.0f);
        }
    }
}

TEST(Im2colTest, KnownSmallCase) {
    // 1 channel 3x3 image, 2x2 kernel, stride 1, no pad -> 2x2 output.
    const ConvGeometry g{1, 3, 3, 2, 2, 1, 1, 0, 0};
    const std::vector<float> image{0, 1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<float> cols(4 * 4);
    im2col(image.data(), g, cols.data());
    // Row 0 = kernel tap (0,0) across output positions (0,0),(0,1),(1,0),(1,1)
    EXPECT_FLOAT_EQ(cols[0], 0.0f);
    EXPECT_FLOAT_EQ(cols[1], 1.0f);
    EXPECT_FLOAT_EQ(cols[2], 3.0f);
    EXPECT_FLOAT_EQ(cols[3], 4.0f);
    // Row 3 = kernel tap (1,1)
    EXPECT_FLOAT_EQ(cols[12], 4.0f);
    EXPECT_FLOAT_EQ(cols[15], 8.0f);
}

struct GeomCase {
    ConvGeometry g;
};

class Im2colAdjoint : public ::testing::TestWithParam<GeomCase> {};

// col2im must be the exact adjoint of im2col:
// <im2col(x), y> == <x, col2im(y)> for all x, y.
TEST_P(Im2colAdjoint, AdjointIdentityHolds) {
    const ConvGeometry g = GetParam().g;
    g.validate();
    Rng rng(77);
    const std::size_t image_size = g.in_channels * g.in_h * g.in_w;
    const std::size_t cols_size = g.patch_size() * g.out_h() * g.out_w();

    std::vector<float> x(image_size), y(cols_size);
    for (float& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (float& v : y) v = static_cast<float>(rng.uniform(-1.0, 1.0));

    std::vector<float> ix(cols_size);
    im2col(x.data(), g, ix.data());
    std::vector<float> cy(image_size, 0.0f);
    col2im(y.data(), g, cy.data());

    double lhs = 0.0, rhs = 0.0;
    for (std::size_t i = 0; i < cols_size; ++i) lhs += static_cast<double>(ix[i]) * y[i];
    for (std::size_t i = 0; i < image_size; ++i) rhs += static_cast<double>(x[i]) * cy[i];
    EXPECT_NEAR(lhs, rhs, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2colAdjoint,
    ::testing::Values(GeomCase{{1, 5, 5, 3, 3, 1, 1, 1, 1}},
                      GeomCase{{3, 8, 8, 3, 3, 2, 2, 1, 1}},
                      GeomCase{{2, 7, 9, 1, 1, 1, 1, 0, 0}},
                      GeomCase{{4, 6, 6, 5, 5, 1, 1, 2, 2}},
                      GeomCase{{2, 9, 5, 3, 2, 2, 1, 0, 1}}));

TEST(Col2imTest, AccumulatesOverlaps) {
    // 3x3 image, 2x2 kernel stride 1: center pixel (1,1) belongs to all 4
    // patches. col2im of all-ones must count patch membership.
    const ConvGeometry g{1, 3, 3, 2, 2, 1, 1, 0, 0};
    std::vector<float> cols(16, 1.0f);
    std::vector<float> image(9, 0.0f);
    col2im(cols.data(), g, image.data());
    EXPECT_FLOAT_EQ(image[4], 4.0f);  // center
    EXPECT_FLOAT_EQ(image[0], 1.0f);  // corner
    EXPECT_FLOAT_EQ(image[1], 2.0f);  // edge
}

}  // namespace
}  // namespace ams
