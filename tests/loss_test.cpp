#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ams::nn {
namespace {

TEST(SoftmaxCrossEntropyTest, MatchesManualComputation) {
    SoftmaxCrossEntropy loss;
    Tensor logits = Tensor::from_data(Shape{1, 3}, {1.0f, 2.0f, 3.0f});
    const float l = loss.forward(logits, {2});
    const double denom = std::exp(1.0) + std::exp(2.0) + std::exp(3.0);
    EXPECT_NEAR(l, -std::log(std::exp(3.0) / denom), 1e-5);
}

TEST(SoftmaxCrossEntropyTest, UniformLogitsGiveLogC) {
    SoftmaxCrossEntropy loss;
    Tensor logits(Shape{4, 10}, 0.0f);
    const float l = loss.forward(logits, {0, 3, 5, 9});
    EXPECT_NEAR(l, std::log(10.0), 1e-5);
}

TEST(SoftmaxCrossEntropyTest, GradientIsProbMinusOneHotOverN) {
    SoftmaxCrossEntropy loss;
    Tensor logits = Tensor::from_data(Shape{2, 2}, {0, 0, 1, -1});
    (void)loss.forward(logits, {0, 1});
    Tensor g = loss.backward();
    // Row 0: p = (0.5, 0.5), label 0 -> grad = (-0.5, 0.5)/2
    EXPECT_NEAR(g[0], -0.25f, 1e-5f);
    EXPECT_NEAR(g[1], 0.25f, 1e-5f);
    // Row 1: p = (sig, 1-sig) with logits (1,-1)
    const double p0 = std::exp(1.0) / (std::exp(1.0) + std::exp(-1.0));
    EXPECT_NEAR(g[2], p0 / 2.0, 1e-5);
    EXPECT_NEAR(g[3], (1.0 - p0 - 1.0) / 2.0, 1e-5);
}

TEST(SoftmaxCrossEntropyTest, NumericallyStableForLargeLogits) {
    SoftmaxCrossEntropy loss;
    Tensor logits = Tensor::from_data(Shape{1, 2}, {1000.0f, 0.0f});
    const float l = loss.forward(logits, {0});
    EXPECT_NEAR(l, 0.0f, 1e-4f);
    EXPECT_TRUE(std::isfinite(loss.forward(logits, {1})));
}

TEST(SoftmaxCrossEntropyTest, ValidatesInputs) {
    SoftmaxCrossEntropy loss;
    Tensor logits(Shape{2, 3});
    EXPECT_THROW((void)loss.forward(logits, {0}), std::invalid_argument);
    EXPECT_THROW((void)loss.forward(logits, {0, 3}), std::invalid_argument);
    Tensor rank1(Shape{3});
    EXPECT_THROW((void)loss.forward(rank1, {0}), std::invalid_argument);
}

TEST(SoftmaxCrossEntropyTest, BackwardBeforeForwardThrows) {
    SoftmaxCrossEntropy loss;
    EXPECT_THROW((void)loss.backward(), std::logic_error);
}

TEST(AccuracyTest, Top1CountsArgmaxHits) {
    Tensor logits = Tensor::from_data(Shape{3, 3},
                                      {5, 1, 1,
                                       0, 9, 0,
                                       1, 2, 0});
    EXPECT_DOUBLE_EQ(top1_accuracy(logits, {0, 1, 0}), 2.0 / 3.0);
}

TEST(AccuracyTest, TopKExpandsAcceptance) {
    Tensor logits = Tensor::from_data(Shape{2, 4},
                                      {4, 3, 2, 1,
                                       1, 2, 3, 4});
    EXPECT_DOUBLE_EQ(topk_accuracy(logits, {2, 0}, 1), 0.0);
    EXPECT_DOUBLE_EQ(topk_accuracy(logits, {2, 0}, 3), 0.5);
    EXPECT_DOUBLE_EQ(topk_accuracy(logits, {2, 0}, 4), 1.0);
}

TEST(AccuracyTest, ValidatesArguments) {
    Tensor logits(Shape{2, 3});
    EXPECT_THROW((void)topk_accuracy(logits, {0}, 1), std::invalid_argument);
    EXPECT_THROW((void)topk_accuracy(logits, {0, 1}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ams::nn
