#include "data/synthetic_imagenet.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ams::data {
namespace {

DatasetOptions small_opts() {
    DatasetOptions o;
    o.classes = 4;
    o.train_per_class = 20;
    o.val_per_class = 8;
    o.image_size = 12;
    o.seed = 77;
    return o;
}

TEST(SyntheticImageNetTest, ShapesAndLabelCounts) {
    const DatasetOptions o = small_opts();
    SyntheticImageNet ds(o);
    EXPECT_EQ(ds.train_images().shape(), Shape({80, 3, 12, 12}));
    EXPECT_EQ(ds.val_images().shape(), Shape({32, 3, 12, 12}));
    EXPECT_EQ(ds.train_labels().size(), 80u);
    EXPECT_EQ(ds.val_labels().size(), 32u);
    // Labels are grouped per class in generation order.
    std::vector<std::size_t> counts(o.classes, 0);
    for (std::size_t l : ds.train_labels()) {
        ASSERT_LT(l, o.classes);
        ++counts[l];
    }
    for (std::size_t c : counts) EXPECT_EQ(c, o.train_per_class);
}

TEST(SyntheticImageNetTest, DeterministicForSeed) {
    SyntheticImageNet a(small_opts()), b(small_opts());
    for (std::size_t i = 0; i < a.train_images().size(); i += 97) {
        EXPECT_FLOAT_EQ(a.train_images()[i], b.train_images()[i]);
    }
    DatasetOptions other = small_opts();
    other.seed = 78;
    SyntheticImageNet c(other);
    bool any_diff = false;
    for (std::size_t i = 0; i < 1000; ++i) {
        if (a.train_images()[i] != c.train_images()[i]) {
            any_diff = true;
            break;
        }
    }
    EXPECT_TRUE(any_diff);
}

TEST(SyntheticImageNetTest, TrainAndValDiffer) {
    SyntheticImageNet ds(small_opts());
    bool any_diff = false;
    for (std::size_t i = 0; i < 500; ++i) {
        if (ds.train_images()[i] != ds.val_images()[i]) {
            any_diff = true;
            break;
        }
    }
    EXPECT_TRUE(any_diff);
}

TEST(SyntheticImageNetTest, MaxAbsCoversData) {
    SyntheticImageNet ds(small_opts());
    EXPECT_FLOAT_EQ(ds.max_abs_value(), ds.train_images().abs_max());
    EXPECT_GT(ds.max_abs_value(), 0.5f);
}

TEST(SyntheticImageNetTest, ClassesAreStatisticallyDistinct) {
    // Per-class mean images must differ across classes: a degenerate
    // generator would defeat every experiment downstream.
    DatasetOptions o = small_opts();
    o.train_per_class = 60;
    SyntheticImageNet ds(o);
    const std::size_t image = 3 * o.image_size * o.image_size;
    std::vector<std::vector<double>> class_mean(o.classes, std::vector<double>(image, 0.0));
    for (std::size_t s = 0; s < ds.train_labels().size(); ++s) {
        const std::size_t k = ds.train_labels()[s];
        for (std::size_t i = 0; i < image; ++i) {
            class_mean[k][i] += ds.train_images()[s * image + i];
        }
    }
    for (auto& m : class_mean) {
        for (double& v : m) v /= static_cast<double>(o.train_per_class);
    }
    for (std::size_t a = 0; a < o.classes; ++a) {
        for (std::size_t b = a + 1; b < o.classes; ++b) {
            double dist = 0.0;
            for (std::size_t i = 0; i < image; ++i) {
                const double d = class_mean[a][i] - class_mean[b][i];
                dist += d * d;
            }
            EXPECT_GT(std::sqrt(dist / image), 0.01) << "classes " << a << " vs " << b;
        }
    }
}

TEST(SyntheticImageNetTest, RenderSampleIsReusable) {
    const DatasetOptions o = small_opts();
    Rng rng(5);
    std::vector<float> buf(3 * o.image_size * o.image_size, 0.0f);
    render_sample(buf.data(), 2, o, rng);
    float max_abs = 0.0f;
    for (float v : buf) max_abs = std::max(max_abs, std::fabs(v));
    EXPECT_GT(max_abs, 0.1f);
}

TEST(SyntheticImageNetTest, ValidatesOptions) {
    DatasetOptions bad = small_opts();
    bad.classes = 1;
    EXPECT_THROW(SyntheticImageNet{bad}, std::invalid_argument);
    bad = small_opts();
    bad.classes = 99;  // beyond 2 * families
    EXPECT_THROW(SyntheticImageNet{bad}, std::invalid_argument);
    bad = small_opts();
    bad.image_size = 2;
    EXPECT_THROW(SyntheticImageNet{bad}, std::invalid_argument);
    bad = small_opts();
    bad.noise_sigma = -0.1f;
    EXPECT_THROW(SyntheticImageNet{bad}, std::invalid_argument);
    bad = small_opts();
    bad.val_per_class = 0;
    EXPECT_THROW(SyntheticImageNet{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace ams::data
