#include "nn/batchnorm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/gradcheck.hpp"

namespace ams::nn {
namespace {

TEST(BatchNormTest, NormalizesPerChannelInTraining) {
    BatchNorm2d bn(2);
    bn.set_training(true);
    Rng rng(1);
    Tensor x(Shape{4, 2, 3, 3});
    x.fill_normal(rng, 5.0f, 2.0f);
    Tensor y = bn.forward(x);

    // With gamma=1, beta=0 the per-channel output should be ~N(0,1).
    const std::size_t spatial = 9, batch = 4;
    for (std::size_t c = 0; c < 2; ++c) {
        double sum = 0.0, sq = 0.0;
        for (std::size_t b = 0; b < batch; ++b) {
            for (std::size_t i = 0; i < spatial; ++i) {
                const float v = y.at({b, c, i / 3, i % 3});
                sum += v;
                sq += static_cast<double>(v) * v;
            }
        }
        const double n = batch * spatial;
        EXPECT_NEAR(sum / n, 0.0, 1e-4);
        EXPECT_NEAR(sq / n, 1.0, 1e-2);
    }
}

TEST(BatchNormTest, GammaBetaApplied) {
    BatchNorm2d bn(1);
    bn.set_training(true);
    bn.gamma().value[0] = 3.0f;
    bn.beta().value[0] = -1.0f;
    Rng rng(2);
    Tensor x(Shape{2, 1, 4, 4});
    x.fill_normal(rng, 0.0f, 1.0f);
    Tensor y = bn.forward(x);
    EXPECT_NEAR(y.mean(), -1.0f, 1e-4f);
    EXPECT_NEAR(std::sqrt(y.variance()), 3.0f, 5e-2f);
}

TEST(BatchNormTest, RunningStatsConvergeToDataStats) {
    BatchNorm2d bn(1, 1e-5f, /*momentum=*/0.3f);
    bn.set_training(true);
    Rng rng(3);
    for (int step = 0; step < 60; ++step) {
        Tensor x(Shape{8, 1, 4, 4});
        x.fill_normal(rng, 2.0f, 0.5f);
        (void)bn.forward(x);
    }
    EXPECT_NEAR(bn.running_mean()[0], 2.0f, 0.1f);
    EXPECT_NEAR(bn.running_var()[0], 0.25f, 0.05f);
}

TEST(BatchNormTest, EvalModeUsesRunningStats) {
    BatchNorm2d bn(1, 1e-5f, 0.5f);
    bn.set_training(true);
    Rng rng(4);
    for (int step = 0; step < 40; ++step) {
        Tensor x(Shape{8, 1, 2, 2});
        x.fill_normal(rng, 10.0f, 1.0f);
        (void)bn.forward(x);
    }
    bn.set_training(false);
    // A constant input at the running mean should map to ~beta = 0.
    Tensor x(Shape{1, 1, 2, 2}, 10.0f);
    Tensor y = bn.forward(x);
    EXPECT_NEAR(y[0], 0.0f, 0.15f);
}

TEST(BatchNormTest, TrainingGradcheck) {
    BatchNorm2d bn(3);
    bn.set_training(true);
    Rng rng(5);
    bn.gamma().value.fill_uniform(rng, 0.5f, 1.5f);
    bn.beta().value.fill_uniform(rng, -0.5f, 0.5f);
    Tensor x(Shape{3, 3, 4, 4});
    x.fill_uniform(rng, -2.0f, 2.0f);
    const auto gi = check_input_gradient(bn, x, rng, 1e-2);
    EXPECT_LT(gi.max_rel_error, 3e-2) << "input grad";
    const auto gp = check_parameter_gradients(bn, x, rng, 1e-2);
    EXPECT_LT(gp.max_rel_error, 3e-2) << "param grad";
}

TEST(BatchNormTest, EvalBackwardIsLinearScale) {
    BatchNorm2d bn(1);
    bn.set_training(false);
    Tensor x(Shape{1, 1, 2, 2}, 3.0f);
    (void)bn.forward(x);
    Tensor g(Shape{1, 1, 2, 2}, 1.0f);
    Tensor gx = bn.backward(g);
    // gamma=1, running_var=1, eps tiny => scale ~ 1.
    EXPECT_NEAR(gx[0], 1.0f, 1e-4f);
}

TEST(BatchNormTest, StateRoundTripIncludesRunningStats) {
    BatchNorm2d bn(2);
    bn.set_training(true);
    Rng rng(6);
    Tensor x(Shape{4, 2, 3, 3});
    x.fill_normal(rng, 1.0f, 2.0f);
    (void)bn.forward(x);

    TensorMap state;
    bn.collect_state("bn.", state);
    EXPECT_TRUE(state.count("bn.gamma"));
    EXPECT_TRUE(state.count("bn.running_mean"));

    BatchNorm2d restored(2);
    restored.load_state("bn.", state);
    EXPECT_FLOAT_EQ(restored.running_mean()[0], bn.running_mean()[0]);
    EXPECT_FLOAT_EQ(restored.running_var()[1], bn.running_var()[1]);
}

TEST(BatchNormTest, RejectsBadConstruction) {
    EXPECT_THROW(BatchNorm2d(0), std::invalid_argument);
    EXPECT_THROW(BatchNorm2d(4, -1.0f), std::invalid_argument);
}

TEST(BatchNormTest, RejectsWrongChannelCount) {
    BatchNorm2d bn(3);
    Tensor x(Shape{1, 2, 2, 2});
    EXPECT_THROW((void)bn.forward(x), std::invalid_argument);
}

}  // namespace
}  // namespace ams::nn
