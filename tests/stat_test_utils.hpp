// Shared statistical acceptance machinery for the distribution tests
// (noise_distribution_test, device_variation_test). Every helper is a
// pure function of its sample vector, so tests stay deterministic under
// fixed seeds; the thresholds quoted in the doc comments are the
// alpha = 0.001 acceptance bands the tests assert against.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

namespace ams::stattest {

inline double sample_mean(const std::vector<double>& xs) {
    double s = 0.0;
    for (double x : xs) s += x;
    return s / static_cast<double>(xs.size());
}

inline double sample_variance(const std::vector<double>& xs) {
    const double m = sample_mean(xs);
    double s = 0.0;
    for (double x : xs) s += (x - m) * (x - m);
    return s / static_cast<double>(xs.size() - 1);
}

/// Standard normal CDF.
inline double phi(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

/// Chi-square statistic of `xs` against N(0, sigma): 16 equal-width bins
/// on [-2 sigma, 2 sigma] plus two tail bins (every expected count is
/// > 450 at n = 20000, far above the >= 5 validity rule). 17 degrees of
/// freedom; the 99.9th percentile of chi2_17 is 40.8.
inline double chi_square_vs_normal(const std::vector<double>& xs, double sigma) {
    constexpr int kInterior = 16;
    constexpr double kEdge = 2.0;
    std::vector<double> edges;  // z-space bin edges, tails implied
    for (int i = 0; i <= kInterior; ++i) {
        edges.push_back(-kEdge + 2.0 * kEdge * i / kInterior);
    }
    std::vector<double> expected;
    expected.push_back(phi(edges.front()));
    for (int i = 0; i < kInterior; ++i) expected.push_back(phi(edges[i + 1]) - phi(edges[i]));
    expected.push_back(1.0 - phi(edges.back()));

    std::vector<double> observed(expected.size(), 0.0);
    for (double x : xs) {
        const double z = x / sigma;
        const auto it = std::upper_bound(edges.begin(), edges.end(), z);
        observed[static_cast<std::size_t>(it - edges.begin())] += 1.0;
    }
    double chi2 = 0.0;
    for (std::size_t b = 0; b < expected.size(); ++b) {
        const double e = expected[b] * static_cast<double>(xs.size());
        chi2 += (observed[b] - e) * (observed[b] - e) / e;
    }
    return chi2;
}

/// Kolmogorov-Smirnov statistic of `xs` against Uniform[0, 1).
/// D * sqrt(n) < 1.95 is the alpha = 0.001 acceptance band.
inline double ks_statistic_uniform(std::vector<double> xs) {
    std::sort(xs.begin(), xs.end());
    const std::size_t n = xs.size();
    double d = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double lo = static_cast<double>(i) / static_cast<double>(n);
        const double hi = static_cast<double>(i + 1) / static_cast<double>(n);
        d = std::max({d, xs[i] - lo, hi - xs[i]});
    }
    return d;
}

/// KS statistic of `xs` against N(0, sigma) via the probability integral
/// transform. Same D * sqrt(n) < 1.95 band as the uniform test.
inline double ks_statistic_normal(const std::vector<double>& xs, double sigma) {
    std::vector<double> us;
    us.reserve(xs.size());
    for (double x : xs) us.push_back(phi(x / sigma));
    return ks_statistic_uniform(std::move(us));
}

/// Pearson correlation of two equal-length samples. |r| < 4 / sqrt(n)
/// is a four-sigma band around zero for independent draws.
inline double pearson_correlation(const std::vector<double>& xs,
                                  const std::vector<double>& ys) {
    const double nd = static_cast<double>(xs.size());
    double sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        syy += ys[i] * ys[i];
        sxy += xs[i] * ys[i];
    }
    const double cov = sxy / nd - (sx / nd) * (sy / nd);
    const double vx = sxx / nd - (sx / nd) * (sx / nd);
    const double vy = syy / nd - (sy / nd) * (sy / nd);
    return cov / std::sqrt(vx * vy);
}

}  // namespace ams::stattest
