#include "energy/energy_accuracy.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "energy/adc_energy.hpp"

namespace ams::energy {
namespace {

AccuracyCurve demo_curve() {
    // Loss shrinking with ENOB, measured at Nmult = 8.
    return AccuracyCurve({{5.0, 0.30}, {6.0, 0.10}, {7.0, 0.03}, {8.0, 0.01}, {10.0, 0.0}}, 8);
}

TEST(AccuracyCurveTest, InterpolatesLinearly) {
    const AccuracyCurve c = demo_curve();
    EXPECT_DOUBLE_EQ(c.loss_at(6.0, 8), 0.10);
    EXPECT_NEAR(c.loss_at(6.5, 8), 0.065, 1e-12);
    EXPECT_NEAR(c.loss_at(5.5, 8), 0.20, 1e-12);
}

TEST(AccuracyCurveTest, ClampsOutsideRange) {
    const AccuracyCurve c = demo_curve();
    EXPECT_DOUBLE_EQ(c.loss_at(2.0, 8), 0.30);
    EXPECT_DOUBLE_EQ(c.loss_at(15.0, 8), 0.0);
}

TEST(AccuracyCurveTest, NmultShiftUsesEquivalentEnob) {
    const AccuracyCurve c = demo_curve();
    // Nmult 32 at ENOB e behaves like Nmult 8 at ENOB e - 1.
    EXPECT_NEAR(c.loss_at(7.0, 32), c.loss_at(6.0, 8), 1e-12);
    EXPECT_NEAR(c.loss_at(7.0, 2), c.loss_at(8.0, 8), 1e-12);
}

TEST(AccuracyCurveTest, ValidatesConstruction) {
    EXPECT_THROW(AccuracyCurve({{5.0, 0.1}}, 8), std::invalid_argument);
    EXPECT_THROW(AccuracyCurve({{5.0, 0.1}, {5.0, 0.2}}, 8), std::invalid_argument);
    EXPECT_THROW(AccuracyCurve({{5.0, 0.1}, {6.0, 0.2}}, 0), std::invalid_argument);
}

TEST(EnergyAccuracyMapTest, GridDimensionsAndValues) {
    const AccuracyCurve c = demo_curve();
    EnergyAccuracyMap map(c, {6.0, 8.0, 12.0}, {1, 8, 64});
    EXPECT_EQ(map.grid().size(), 9u);
    const DesignPoint& p = map.at(1, 1);  // enob 8, nmult 8
    EXPECT_DOUBLE_EQ(p.accuracy_loss, 0.01);
    EXPECT_NEAR(p.emac_fj, emac_lower_bound_fj(8.0, 8), 1e-12);
    EXPECT_THROW((void)map.at(3, 0), std::out_of_range);
}

TEST(EnergyAccuracyMapTest, CheapestForLossFindsMinimalEnergy) {
    const AccuracyCurve c = demo_curve();
    std::vector<double> enobs;
    for (double e = 5.0; e <= 14.0; e += 0.5) enobs.push_back(e);
    EnergyAccuracyMap map(c, enobs, {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
    const DesignPoint* best = map.cheapest_for_loss(0.02);
    ASSERT_NE(best, nullptr);
    EXPECT_LT(best->accuracy_loss, 0.02);
    // Every other qualifying grid point costs at least as much.
    for (const DesignPoint& p : map.grid()) {
        if (p.accuracy_loss < 0.02) EXPECT_GE(p.emac_fj, best->emac_fj - 1e-12);
    }
}

TEST(EnergyAccuracyMapTest, ImpossibleLossReturnsNull) {
    const AccuracyCurve c = demo_curve();
    EnergyAccuracyMap map(c, {5.0}, {8});  // only a lossy config available
    EXPECT_EQ(map.cheapest_for_loss(0.001), nullptr);
}

TEST(EnergyAccuracyMapTest, BestAccuracyForEnergyBudget) {
    const AccuracyCurve c = demo_curve();
    EnergyAccuracyMap map(c, {5.0, 7.0, 9.0}, {8, 64});
    const DesignPoint* best = map.best_accuracy_for_energy(1e6);
    ASSERT_NE(best, nullptr);
    // With an unlimited budget the most accurate cell wins.
    double min_loss = 1.0;
    for (const DesignPoint& p : map.grid()) min_loss = std::min(min_loss, p.accuracy_loss);
    EXPECT_DOUBLE_EQ(best->accuracy_loss, min_loss);
    EXPECT_EQ(map.best_accuracy_for_energy(1e-9), nullptr);
}

TEST(EnergyAccuracyMapTest, ThermalRegimeEmacConstantAlongIsoAccuracyCurves) {
    // The paper's central claim (Sec. 4): in the thermal-noise-limited
    // regime, moving along an iso-accuracy curve (ENOB + 0.5 log2 ratio,
    // Nmult * ratio) leaves E_MAC unchanged, so accuracy loss and minimum
    // energy have a one-to-one relationship.
    const AccuracyCurve c = demo_curve();
    const double enob0 = 12.0;  // > 10.5: thermal regime
    const std::size_t nmult0 = 8;
    const double loss0 = c.loss_at(enob0, nmult0);
    const double emac0 = emac_lower_bound_fj(enob0, nmult0);
    for (double ratio : {4.0, 16.0, 64.0}) {
        const double enob = enob0 + 0.5 * std::log2(ratio);
        const auto nmult = static_cast<std::size_t>(nmult0 * ratio);
        EXPECT_NEAR(c.loss_at(enob, nmult), loss0, 1e-9);
        EXPECT_NEAR(emac_lower_bound_fj(enob, nmult) / emac0, 1.0, 2e-2);
    }
}

TEST(EnergyAccuracyMapTest, ValidatesGrid) {
    const AccuracyCurve c = demo_curve();
    EXPECT_THROW(EnergyAccuracyMap(c, {}, {8}), std::invalid_argument);
    EXPECT_THROW(EnergyAccuracyMap(c, {8.0}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace ams::energy
