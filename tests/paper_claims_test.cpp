// End-to-end assertions of the paper's *analytic* headline claims — the
// numbers a reader would quote from the abstract and Section 4. These are
// substrate-independent (pure model), so unlike the accuracy benches they
// must hold exactly.
#include <gtest/gtest.h>

#include <cmath>

#include "ams/error_model.hpp"
#include "energy/adc_energy.hpp"
#include "quant/dorefa.hpp"
#include "quant/fixed_point.hpp"
#include "quant/quant_modules.hpp"

namespace ams {
namespace {

TEST(PaperClaimsTest, Abstract300FemtojoulePerMacFloor) {
    // "achieving < 0.4% accuracy loss on ResNet-50 with AMS hardware
    // requires a computation energy of at least ~300 fJ/MAC" — the 0.4%
    // cutoff in Fig. 4 is ENOB 12 at Nmult 8:
    EXPECT_NEAR(energy::emac_lower_bound_fj(12.0, 8), 313.3, 0.5);
    // "...for < 1% accuracy loss, EMAC,min = ~78 fJ" (cutoff ENOB 11):
    EXPECT_NEAR(energy::emac_lower_bound_fj(11.0, 8), 78.3, 0.5);
}

TEST(PaperClaimsTest, Figure8LevelCurveValues) {
    // The red E_MAC level curves of Fig. 8: 78 fJ, 157 fJ, 313 fJ,
    // 626 fJ, 1.25 pJ — successive half-bit steps at Nmult 8.
    const double values[] = {78.3, 156.6, 313.3, 626.6, 1253.2};
    double enob = 11.0;
    for (double expected : values) {
        EXPECT_NEAR(energy::emac_lower_bound_fj(enob, 8) / expected, 1.0, 2e-3)
            << "at ENOB " << enob;
        enob += 0.5;
    }
}

TEST(PaperClaimsTest, FloorToThermalCrossoverNearTenPointFive) {
    // Where the Schreier line crosses the 0.3 pJ floor:
    // 6.02*ENOB - 68.25 = 10*log10(0.3)  =>  ENOB ~ 10.47.
    const double crossover = (10.0 * std::log10(0.3) + 68.25) / 6.02;
    EXPECT_NEAR(crossover, 10.5, 0.05);
}

TEST(PaperClaimsTest, EquationOneWorkedExample) {
    // Eq. 1 with Nmult = 8, ENOB = 12: LSB = 8 * 2^-11; Var = LSB^2/12.
    vmac::VmacConfig c;
    c.nmult = 8;
    c.enob = 12.0;
    EXPECT_DOUBLE_EQ(vmac::vmac_lsb(c), 8.0 / 2048.0);
    EXPECT_DOUBLE_EQ(vmac::vmac_error_variance(c),
                     (8.0 / 2048.0) * (8.0 / 2048.0) / 12.0);
}

TEST(PaperClaimsTest, ExtraBitQuartersErrorAndQuadruplesEnergy) {
    // Section 4: "for each extra digitized bit, the variance of the total
    // error drops by a factor of four ... [and in the thermal regime]
    // quadrupling of energy per conversion for each extra bit".
    vmac::VmacConfig lo;
    lo.enob = 12.0;
    vmac::VmacConfig hi;
    hi.enob = 13.0;
    EXPECT_NEAR(vmac::total_error_variance(lo, 512) / vmac::total_error_variance(hi, 512),
                4.0, 1e-9);
    EXPECT_NEAR(energy::adc_energy_lower_bound_pj(13.0) /
                    energy::adc_energy_lower_bound_pj(12.0),
                4.0, 0.01);
}

TEST(PaperClaimsTest, RetrainingHalfBitIsTwoXEnergy) {
    // "our retraining method recovers ~0.5b worth of accuracy, which is
    // equivalent to a ~2x reduction in EMAC,min" — in the thermal regime
    // half a bit of ENOB is a factor-2 of energy.
    EXPECT_NEAR(energy::adc_energy_lower_bound_pj(12.5) /
                    energy::adc_energy_lower_bound_pj(12.0),
                2.0, 0.01);
}

TEST(PaperClaimsTest, IdealProductPrecisionBookkeeping) {
    // Fig. 2: a BW-bit by BX-bit sign-magnitude multiply yields
    // BW+BX-2 magnitude bits; our codecs reproduce that exactly: the
    // product of the two LSBs is the product grid's LSB.
    for (std::size_t bw : {4u, 6u, 8u}) {
        for (std::size_t bx : {4u, 8u}) {
            quant::SignMagCodec w(bw), x(bx);
            const double product_lsb = w.lsb() * x.lsb();
            // Grid has (2^(bw-1)-1)(2^(bx-1)-1) levels per unit: the
            // magnitude-bit count of the full-scale product is bw+bx-2.
            const double full_levels = 1.0 / product_lsb;
            EXPECT_LE(full_levels, std::exp2(static_cast<double>(bw + bx - 2)));
            EXPECT_GT(full_levels, std::exp2(static_cast<double>(bw + bx - 2)) * 0.75);
        }
    }
}

TEST(PaperClaimsTest, QuantActGridMatchesSignMagnitudeCodec) {
    // The DoReFa activation quantizer and the hardware codec must agree
    // on the representable grid (both encode B-1 magnitude bits on [0,1]).
    for (std::size_t bits : {4u, 6u, 8u}) {
        quant::QuantAct act(bits);
        quant::SignMagCodec codec(bits);
        Rng rng(bits);
        Tensor x(Shape{256});
        x.fill_uniform(rng, 0.0f, 1.0f);
        Tensor q = act.forward(x);
        for (std::size_t i = 0; i < q.size(); ++i) {
            EXPECT_NEAR(codec.quantize(q[i]), q[i], 1e-6) << "bits " << bits;
        }
    }
}

TEST(PaperClaimsTest, AveragingHardwareIsEquivalentUpToRescale) {
    // Section 2: averaging moves the binary point but injects the same
    // relative error; the model must give identical variance for both
    // accumulation styles at the same ENOB (ENOB is range-relative).
    vmac::VmacConfig sum;
    sum.enob = 9.0;
    sum.nmult = 16;
    sum.accumulation = vmac::Accumulation::kSum;
    vmac::VmacConfig avg = sum;
    avg.accumulation = vmac::Accumulation::kAverage;
    // After the digital x Nmult rescale, LSBs agree.
    EXPECT_DOUBLE_EQ(vmac::vmac_lsb(sum), vmac::vmac_lsb(avg));
}

}  // namespace
}  // namespace ams
