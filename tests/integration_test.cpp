// Cross-module integration tests: the full pipeline on a deliberately
// tiny configuration, exercising the same paths the experiment benches
// use but in seconds.
#include <gtest/gtest.h>

#include <filesystem>

#include "amsnet.hpp"

namespace ams {
namespace {

namespace fs = std::filesystem;

core::ExperimentOptions tiny_options(const std::string& dir) {
    core::ExperimentOptions o;
    o.dataset.classes = 4;
    o.dataset.train_per_class = 40;
    o.dataset.val_per_class = 16;
    o.dataset.image_size = 8;
    o.dataset.noise_sigma = 0.2f;
    o.dataset.seed = 21;
    o.eval_passes = 3;
    o.batch_size = 16;
    o.fp32_train.epochs = 4;
    o.fp32_train.batch_size = 16;
    o.fp32_train.patience = 0;
    o.fp32_train.sgd = {0.05f, 0.9f, 0.0f};
    o.retrain.epochs = 2;
    o.retrain.batch_size = 16;
    o.retrain.patience = 0;
    o.cache_dir = dir;
    return o;
}

class IntegrationTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = (fs::temp_directory_path() / "amsnet_integration").string();
        fs::remove_all(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }
    std::string dir_;
};

TEST_F(IntegrationTest, FullPipelineBeatsChanceAtEveryPhase) {
    core::ExperimentEnv env(tiny_options(dir_));
    const double chance = 1.0 / static_cast<double>(env.options().dataset.classes);

    const TensorMap fp32 = env.fp32_state();
    const auto r_fp32 = env.evaluate_state(fp32, env.fp32_common());
    EXPECT_GT(r_fp32.mean, chance + 0.15);

    const TensorMap q = env.quantized_state(8, 8);
    const auto r_q = env.evaluate_state(q, env.quant_common(8, 8));
    EXPECT_GT(r_q.mean, chance + 0.15);

    vmac::VmacConfig v;
    v.enob = 6.0;
    v.nmult = 8;
    const TensorMap ams_state = env.ams_retrained_state(8, 8, v);
    const auto r_ams = env.evaluate_state(ams_state, env.ams_common(8, 8, v));
    EXPECT_GT(r_ams.mean, chance + 0.1);
}

TEST_F(IntegrationTest, MoreNoiseNeverHelpsAtEvalTime) {
    core::ExperimentEnv env(tiny_options(dir_));
    const TensorMap q = env.quantized_state(8, 8);
    double prev = 0.0;
    // Sweep coarse -> fine: accuracy must be non-decreasing up to noise.
    for (double enob : {2.0, 4.0, 8.0, 12.0}) {
        vmac::VmacConfig v;
        v.enob = enob;
        v.nmult = 8;
        const auto r = env.evaluate_state(q, env.ams_common(8, 8, v));
        EXPECT_GE(r.mean, prev - 0.08) << "at ENOB " << enob;
        prev = r.mean;
    }
}

TEST_F(IntegrationTest, CheckpointReloadReproducesEvaluationExactly) {
    core::ExperimentEnv env(tiny_options(dir_));
    const TensorMap q = env.quantized_state(8, 8);
    const auto a = env.evaluate_state(q, env.quant_common(8, 8));
    // A second env over the same cache dir must load identical weights.
    core::ExperimentEnv env2(tiny_options(dir_));
    const TensorMap q2 = env2.quantized_state(8, 8);
    const auto b = env2.evaluate_state(q2, env2.quant_common(8, 8));
    EXPECT_DOUBLE_EQ(a.mean, b.mean);
}

TEST_F(IntegrationTest, LumpedAndPerVmacInjectionAgreeAtNetworkLevel) {
    core::ExperimentEnv env(tiny_options(dir_));
    const TensorMap q = env.quantized_state(8, 8);
    vmac::VmacConfig v;
    v.enob = 5.0;
    v.nmult = 8;
    auto lumped = env.make_model(env.ams_common(8, 8, v));
    lumped->load_state("", q);
    auto per_vmac =
        env.make_model(env.ams_common(8, 8, v, vmac::InjectionMode::kPerVmacUniform));
    per_vmac->load_state("", q);
    const auto rl = train::evaluate_top1(*lumped, env.dataset().val_images(),
                                         env.dataset().val_labels(), 16, 6);
    const auto rp = train::evaluate_top1(*per_vmac, env.dataset().val_images(),
                                         env.dataset().val_labels(), 16, 6);
    EXPECT_NEAR(rl.mean, rp.mean, 0.12);
}

TEST_F(IntegrationTest, EnergyAccountingConsistentWithModelGeometry) {
    core::ExperimentEnv env(tiny_options(dir_));
    auto model = env.make_model(env.fp32_common());
    Tensor probe(Shape{1, 3, env.options().dataset.image_size,
                       env.options().dataset.image_size});
    const auto shapes = core::extract_layer_shapes(*model, probe);
    const auto report = energy::account_network(shapes, energy::VmacEnergyModel{}, 8.0, 8);
    EXPECT_EQ(report.layers.size(), model->num_conv_layers() + 1);
    EXPECT_GT(report.total_macs, 0u);
    // ADC-only at ENOB <= 10.5: every MAC costs the amortized floor.
    EXPECT_NEAR(report.mean_emac_fj(), 300.0 / 8.0, 1e-6);
}

TEST_F(IntegrationTest, ActivationMeansRespondToRetrainingWithNoise) {
    core::ExperimentEnv env(tiny_options(dir_));
    vmac::VmacConfig v;
    v.enob = 4.0;  // heavy noise
    v.nmult = 8;
    const TensorMap q = env.quantized_state(8, 8);
    const TensorMap ams_state = env.ams_retrained_state(8, 8, v);

    auto quant_model = env.make_model(env.quant_common(8, 8));
    quant_model->load_state("", q);
    auto ams_model = env.make_model(env.ams_common(8, 8, v));
    ams_model->load_state("", ams_state);

    const auto m_q =
        train::record_activation_means(*quant_model, env.dataset().val_images(), 16);
    const auto m_a =
        train::record_activation_means(*ams_model, env.dataset().val_images(), 16);
    ASSERT_EQ(m_q.size(), m_a.size());
    // The retrained network's activation means must differ measurably.
    double diff = 0.0;
    for (std::size_t i = 0; i < m_q.size(); ++i) diff += std::abs(m_a[i] - m_q[i]);
    EXPECT_GT(diff / static_cast<double>(m_q.size()), 1e-3);
}

}  // namespace
}  // namespace ams
