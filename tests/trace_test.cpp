// Observability subsystem acceptance tests: span nesting/ordering across
// pool threads, counter aggregation, exporter schema goldens, the
// conversion-counter <-> ConversionProfile cross-check for all six VMAC
// backends, and the no-allocation guarantee for counters mode on the
// planned inference path. Global operator new is overridden in this
// binary (alloc_count_test pattern) so the allocation claim is measured,
// not assumed.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>
#include <sstream>
#include <thread>
#include <vector>

#include "ams/vmac_backend.hpp"
#include "ams/vmac_conv.hpp"
#include "core/experiment.hpp"
#include "models/resnet.hpp"
#include "runtime/eval_context.hpp"
#include "runtime/metrics.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/trace.hpp"

namespace {
std::atomic<std::size_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void* p = nullptr;
    if (align < sizeof(void*)) align = sizeof(void*);
    if (posix_memalign(&p, align, size ? size : 1) != 0) return nullptr;
    return p;
}
}  // namespace

void* operator new(std::size_t size) {
    if (void* p = counted_alloc(size)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
    if (void* p = counted_alloc(size)) return p;
    throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
    if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align))) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
    if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align))) return p;
    throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    return counted_alloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace ams {
namespace {

namespace metrics = runtime::metrics;
namespace trace = runtime::trace;

/// Restores AMSNET_TRACE level and clears counters/spans around a test.
class TraceSandbox {
public:
    explicit TraceSandbox(metrics::Level level) {
        metrics::reset();
        trace::clear();
        metrics::set_level(level);
    }
    ~TraceSandbox() {
        metrics::set_level(metrics::Level::kOff);
        metrics::reset();
        trace::clear();
    }
};

TEST(MetricsTest, ParseLevel) {
    EXPECT_EQ(metrics::parse_level(nullptr), metrics::Level::kOff);
    EXPECT_EQ(metrics::parse_level("off"), metrics::Level::kOff);
    EXPECT_EQ(metrics::parse_level("counters"), metrics::Level::kCounters);
    EXPECT_EQ(metrics::parse_level("full"), metrics::Level::kFull);
    EXPECT_EQ(metrics::parse_level("bogus"), metrics::Level::kOff);
}

TEST(MetricsTest, OffLevelRecordsNothing) {
    TraceSandbox sandbox(metrics::Level::kOff);
    metrics::add(metrics::Counter::kGemmCalls, 5);
    metrics::gauge_max(metrics::Gauge::kArenaHighWaterBytes, 100);
    EXPECT_EQ(metrics::value(metrics::Counter::kGemmCalls), 0u);
    EXPECT_EQ(metrics::gauge_value(metrics::Gauge::kArenaHighWaterBytes), 0u);
}

TEST(MetricsTest, CounterAggregationAcrossThreads) {
    TraceSandbox sandbox(metrics::Level::kCounters);
    constexpr int kThreads = 4;
    constexpr int kAddsPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < kAddsPerThread; ++i) {
                metrics::add(metrics::Counter::kGemmCalls);
                metrics::add(metrics::Counter::kGemmFlops, 3);
                metrics::gauge_max(metrics::Gauge::kArenaHighWaterBytes,
                                   static_cast<std::uint64_t>(i));
            }
        });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(metrics::value(metrics::Counter::kGemmCalls),
              static_cast<std::uint64_t>(kThreads * kAddsPerThread));
    EXPECT_EQ(metrics::value(metrics::Counter::kGemmFlops),
              static_cast<std::uint64_t>(3 * kThreads * kAddsPerThread));
    EXPECT_EQ(metrics::gauge_value(metrics::Gauge::kArenaHighWaterBytes),
              static_cast<std::uint64_t>(kAddsPerThread - 1));
}

TEST(MetricsTest, MetricsJsonGolden) {
    // Full-schema golden: renaming or reordering any counter is a breaking
    // change to the exported artifact and must show up here.
    TraceSandbox sandbox(metrics::Level::kCounters);
    metrics::add(metrics::Counter::kGemmCalls, 2);
    metrics::add(metrics::Counter::kGemmFlops, 768);
    metrics::add(metrics::Counter::kAdcConversionsBitExact, 9);
    metrics::gauge_max(metrics::Gauge::kArenaHighWaterBytes, 4096);
    std::ostringstream os;
    metrics::write_metrics_json(os);
    const char* expected =
        "{\n"
        "  \"gemm_calls\": 2,\n"
        "  \"gemm_flops\": 768,\n"
        "  \"gemm_pack_growths\": 0,\n"
        "  \"gemm_int_calls\": 0,\n"
        "  \"requant_ops\": 0,\n"
        "  \"parallel_regions\": 0,\n"
        "  \"parallel_chunks\": 0,\n"
        "  \"adc_conversions_bit_exact\": 9,\n"
        "  \"adc_conversions_per_vmac_noise\": 0,\n"
        "  \"adc_conversions_partitioned\": 0,\n"
        "  \"adc_conversions_delta_sigma\": 0,\n"
        "  \"adc_conversions_reference_scaled\": 0,\n"
        "  \"adc_conversions_block_fp\": 0,\n"
        "  \"vmac_chunks\": 0,\n"
        "  \"vmac_outputs\": 0,\n"
        "  \"injected_samples\": 0,\n"
        "  \"checkpoint_disk_hits\": 0,\n"
        "  \"checkpoint_memo_hits\": 0,\n"
        "  \"checkpoint_misses\": 0,\n"
        "  \"checkpoint_corrupt_recovered\": 0,\n"
        "  \"checkpoint_legacy_migrations\": 0,\n"
        "  \"eval_passes\": 0,\n"
        "  \"eval_batches\": 0,\n"
        "  \"serve_requests\": 0,\n"
        "  \"serve_batches\": 0,\n"
        "  \"serve_batch_images\": 0,\n"
        "  \"serve_queue_wait_ns\": 0,\n"
        "  \"plan_compiles\": 0,\n"
        "  \"plan_runs\": 0,\n"
        "  \"plan_layers_fused\": 0,\n"
        "  \"plan_intermediates_eliminated\": 0,\n"
        "  \"plan_arena_bytes_saved\": 0,\n"
        "  \"sweep_points_completed\": 0,\n"
        "  \"sweep_points_skipped\": 0,\n"
        "  \"sweep_points_stolen\": 0,\n"
        "  \"sweep_workers_spawned\": 0,\n"
        "  \"variation_chunks\": 0,\n"
        "  \"variation_field_samples\": 0,\n"
        "  \"arena_high_water_bytes\": 4096,\n"
        "  \"serve_queue_depth_max\": 0\n"
        "}\n";
    EXPECT_EQ(os.str(), expected);
}

TEST(MetricsTest, MetricsCsvGolden) {
    TraceSandbox sandbox(metrics::Level::kCounters);
    metrics::add(metrics::Counter::kEvalPasses, 7);
    std::ostringstream os;
    metrics::write_metrics_csv(os);
    const std::string text = os.str();
    EXPECT_EQ(text.rfind("metric,value\n", 0), 0u);
    EXPECT_NE(text.find("eval_passes,7\n"), std::string::npos);
    EXPECT_NE(text.find("arena_high_water_bytes,0\n"), std::string::npos);
}

TEST(TraceTest, SpanNestingAndOrderingAcrossThreads) {
    TraceSandbox sandbox(metrics::Level::kFull);
    {
        trace::Span outer("outer");
        {
            trace::Span inner("inner", "k=v");
        }
    }
    std::thread other([] {
        trace::set_thread_label("other-thread");
        trace::Span span("other");
    });
    other.join();

    const std::vector<trace::Event> events = trace::collect();
    ASSERT_EQ(events.size(), 3u);

    // Sorted by (thread, start): within the main thread the enclosing span
    // precedes its child, and the child nests strictly inside it.
    const trace::Event* outer = nullptr;
    const trace::Event* inner = nullptr;
    const trace::Event* foreign = nullptr;
    for (const trace::Event& e : events) {
        if (std::string(e.name) == "outer") outer = &e;
        if (std::string(e.name) == "inner") inner = &e;
        if (std::string(e.name) == "other") foreign = &e;
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    ASSERT_NE(foreign, nullptr);
    EXPECT_EQ(outer->thread_index, inner->thread_index);
    EXPECT_NE(outer->thread_index, foreign->thread_index);
    EXPECT_EQ(outer->depth, 0u);
    EXPECT_EQ(inner->depth, 1u);
    EXPECT_LE(outer->start_ns, inner->start_ns);
    EXPECT_GE(outer->end_ns, inner->end_ns);
    EXPECT_STREQ(inner->tag, "k=v");
    // collect() ordering: enclosing-before-child within a thread.
    EXPECT_LT(outer - events.data(), inner - events.data());

    // A second collect is empty (the first drained the buffers).
    EXPECT_TRUE(trace::collect().empty());
}

TEST(TraceTest, SpansInertWhenNotFull) {
    TraceSandbox sandbox(metrics::Level::kCounters);
    {
        trace::Span span("should-not-record");
    }
    EXPECT_TRUE(trace::collect().empty());
}

TEST(TraceTest, ParallelForChunksAreSpannedAndCounted) {
    TraceSandbox sandbox(metrics::Level::kFull);
    runtime::ThreadPool::set_global_threads(4);
    std::atomic<int> work{0};
    runtime::parallel_for(0, 64, 4, [&](std::size_t b, std::size_t e) {
        work.fetch_add(static_cast<int>(e - b), std::memory_order_relaxed);
    });
    runtime::ThreadPool::set_global_threads(runtime::ThreadPool::threads_from_env());
    EXPECT_EQ(work.load(), 64);
    EXPECT_EQ(metrics::value(metrics::Counter::kParallelChunks), 16u);
    EXPECT_EQ(metrics::value(metrics::Counter::kParallelRegions), 1u);

    std::size_t chunk_spans = 0;
    for (const trace::Event& e : trace::collect()) {
        if (std::string(e.name) == "parallel_for.chunk") ++chunk_spans;
    }
    EXPECT_EQ(chunk_spans, 16u);
}

TEST(TraceTest, ChromeTraceExporterSchema) {
    TraceSandbox sandbox(metrics::Level::kFull);
    trace::set_thread_label("main");
    {
        trace::Span span("unit-span", "shape=2x3");
    }
    std::ostringstream os;
    trace::write_chrome_trace(os, trace::collect());
    const std::string text = os.str();

    // Chrome Trace Event Format essentials: a traceEvents array of "X"
    // complete events plus "M" thread_name metadata records.
    EXPECT_EQ(text.rfind("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [", 0), 0u);
    EXPECT_NE(text.find("\"name\": \"thread_name\", \"ph\": \"M\""), std::string::npos);
    EXPECT_NE(text.find("\"args\": {\"name\": \"main\"}"), std::string::npos);
    EXPECT_NE(text.find("\"name\": \"unit-span\", \"cat\": \"amsnet\", \"ph\": \"X\", \"ts\": "),
              std::string::npos);
    EXPECT_NE(text.find("\"args\": {\"tag\": \"shape=2x3\"}"), std::string::npos);
    EXPECT_EQ(text.substr(text.size() - 4), "\n]}\n");
}

/// Expected ADC conversions for a conv forward on `backend`:
/// outputs * sum_i(per_chunk_i * chunks + per_output_i), straight from the
/// backend's ConversionProfile — the same profile the energy model prices.
std::uint64_t expected_conversions(const vmac::VmacBackend& backend, std::size_t outputs,
                                   std::size_t chunks_per_output) {
    double per_output = 0.0;
    for (const vmac::ConversionCost& cost : backend.conversion_profile()) {
        per_output += cost.per_chunk * static_cast<double>(chunks_per_output) + cost.per_output;
    }
    return static_cast<std::uint64_t>(
        std::llround(per_output * static_cast<double>(outputs)));
}

struct BackendCase {
    vmac::BackendOptions options;
    metrics::Counter counter;
};

std::vector<BackendCase> conversion_cases() {
    std::vector<BackendCase> cases;
    {
        vmac::BackendOptions o;
        o.kind = vmac::BackendKind::kBitExact;
        cases.push_back({o, metrics::Counter::kAdcConversionsBitExact});
    }
    {
        vmac::BackendOptions o;
        o.kind = vmac::BackendKind::kPerVmacNoise;
        cases.push_back({o, metrics::Counter::kAdcConversionsPerVmacNoise});
    }
    {
        vmac::BackendOptions o;
        o.kind = vmac::BackendKind::kPartitioned;
        o.partition.nw = 2;
        o.partition.nx = 2;
        o.partition.enob_partial = 5.0;
        cases.push_back({o, metrics::Counter::kAdcConversionsPartitioned});
    }
    {
        vmac::BackendOptions o;
        o.kind = vmac::BackendKind::kDeltaSigma;
        cases.push_back({o, metrics::Counter::kAdcConversionsDeltaSigma});
    }
    {
        vmac::BackendOptions o;
        o.kind = vmac::BackendKind::kReferenceScaled;
        o.reference_scale = 0.5;
        cases.push_back({o, metrics::Counter::kAdcConversionsReferenceScaled});
    }
    {
        vmac::BackendOptions o;
        o.kind = vmac::BackendKind::kBlockFp;
        cases.push_back({o, metrics::Counter::kAdcConversionsBlockFp});
    }
    return cases;
}

TEST(TraceTest, ConversionCountersMatchConversionProfileForAllBackends) {
    // The counters recorded by the datapaths must agree exactly with the
    // ConversionProfile-derived counts the energy model uses — the two
    // views of "how many ADC conversions did this layer cost" may never
    // drift apart.
    vmac::VmacConfig cfg;
    cfg.enob = 6.0;
    cfg.nmult = 8;
    cfg.bits_w = 9;  // 8 magnitude bits chunk evenly into the 2x2 split
    cfg.bits_x = 9;

    Rng rng(11);
    Tensor w(Shape{3, 2, 3, 3});
    w.fill_uniform(rng, -1.0f, 1.0f);
    Tensor x(Shape{2, 2, 6, 6});
    x.fill_uniform(rng, 0.0f, 1.0f);

    const std::size_t patch = 2 * 3 * 3;
    const std::size_t chunks = (patch + cfg.nmult - 1) / cfg.nmult;

    for (const BackendCase& c : conversion_cases()) {
        TraceSandbox sandbox(metrics::Level::kCounters);
        vmac::VmacConv2d conv(w, /*stride=*/1, /*padding=*/1, cfg, {}, c.options, Rng(7));
        Tensor out = conv.forward(x);
        const std::size_t outputs = out.size();

        const auto reference = vmac::make_backend(cfg, {}, c.options);
        const std::uint64_t expected = expected_conversions(*reference, outputs, chunks);
        EXPECT_EQ(metrics::value(c.counter), expected)
            << "backend " << vmac::backend_kind_name(c.options.kind);
        EXPECT_EQ(metrics::value(metrics::Counter::kVmacOutputs), outputs);
        EXPECT_EQ(metrics::value(metrics::Counter::kVmacChunks),
                  static_cast<std::uint64_t>(outputs * chunks));

        // Only this backend's conversion counter moved.
        for (const BackendCase& other : conversion_cases()) {
            if (other.counter != c.counter) {
                EXPECT_EQ(metrics::value(other.counter), 0u)
                    << "cross-talk from " << vmac::backend_kind_name(c.options.kind) << " into "
                    << vmac::backend_kind_name(other.options.kind);
            }
        }
    }
}

TEST(TraceTest, CountersModeInferenceIsAllocationFree) {
    // The counters level must preserve the planned inference path's
    // zero-allocation guarantee (alloc_count_test holds the same claim
    // for AMSNET_TRACE=off).
    TraceSandbox sandbox(metrics::Level::kCounters);
    runtime::ThreadPool::set_global_threads(1);

    models::LayerCommon common;
    common.bits_w = 8;
    common.bits_x = 8;
    common.ams_enabled = true;
    common.vmac.enob = 5.0;
    common.vmac.nmult = 8;
    models::ResNet model(models::tiny_resnet_config(common));
    model.set_training(false);
    Rng rng(3);
    Tensor x(Shape{4, 3, 8, 8});
    x.fill_uniform(rng, -1.0f, 1.0f);

    runtime::EvalContext ctx;
    (void)model.plan(x.shape(), ctx);
    for (int i = 0; i < 2; ++i) {
        const runtime::TensorArena::Checkpoint cp = ctx.checkpoint();
        (void)model.forward(x, ctx);
        ctx.rewind(cp);
    }

    const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
    for (int i = 0; i < 3; ++i) {
        const runtime::TensorArena::Checkpoint cp = ctx.checkpoint();
        Tensor out = model.forward(x, ctx);
        ctx.rewind(cp);
    }
    const std::size_t allocs = g_alloc_count.load(std::memory_order_relaxed) - before;
    runtime::ThreadPool::set_global_threads(runtime::ThreadPool::threads_from_env());

    EXPECT_EQ(allocs, 0u) << "counters mode must not allocate on the planned path";
    EXPECT_GT(metrics::value(metrics::Counter::kGemmCalls), 0u);
    EXPECT_GT(metrics::value(metrics::Counter::kInjectedSamples), 0u);
}

TEST(TraceTest, FourThreadSweepChromeTraceExports) {
    // End-to-end: a 4-thread ams_enob_sweep under full tracing exports a
    // chrome://tracing-loadable file with the sweep's phase spans on it.
    namespace fs = std::filesystem;
    const std::string dir = (fs::temp_directory_path() / "amsnet_trace_sweep").string();
    fs::remove_all(dir);

    core::ExperimentOptions o;
    o.dataset.classes = 4;
    o.dataset.train_per_class = 16;
    o.dataset.val_per_class = 8;
    o.dataset.image_size = 8;
    o.dataset.seed = 3;
    o.eval_passes = 1;
    o.batch_size = 16;
    o.fp32_train.epochs = 1;
    o.fp32_train.batch_size = 16;
    o.fp32_train.patience = 0;
    o.retrain.epochs = 1;
    o.retrain.batch_size = 16;
    o.retrain.patience = 0;
    o.cache_dir = dir;

    TraceSandbox sandbox(metrics::Level::kFull);
    runtime::ThreadPool::set_global_threads(4);
    core::ExperimentEnv env(o);
    const auto points = env.ams_enob_sweep(8, 8, {4.0, 6.0}, {.retrain = false});
    runtime::ThreadPool::set_global_threads(runtime::ThreadPool::threads_from_env());
    ASSERT_EQ(points.size(), 2u);

    const std::string path = dir + "/sweep_trace.json";
    const std::size_t n_events = trace::write_chrome_trace_file(path);
    EXPECT_GT(n_events, 0u);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    EXPECT_EQ(text.rfind("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [", 0), 0u);
    EXPECT_EQ(text.substr(text.size() - 4), "\n]}\n");
    EXPECT_NE(text.find("\"name\": \"ams_enob_sweep\""), std::string::npos);
    EXPECT_NE(text.find("\"name\": \"ams_enob_sweep.point\""), std::string::npos);
    EXPECT_NE(text.find("\"name\": \"evaluate.pass\""), std::string::npos);
    EXPECT_NE(text.find("\"name\": \"thread_name\", \"ph\": \"M\""), std::string::npos);
    // The pool's workers label their tracks.
    EXPECT_NE(text.find("\"args\": {\"name\": \"worker-0\"}"), std::string::npos);

    // Counters rode along with full tracing: the sweep evaluated.
    EXPECT_GT(metrics::value(metrics::Counter::kEvalPasses), 0u);
    EXPECT_GT(metrics::value(metrics::Counter::kCheckpointMisses), 0u);

    fs::remove_all(dir);
}

}  // namespace
}  // namespace ams
