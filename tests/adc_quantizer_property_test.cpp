// Randomized property sweeps over AdcQuantizer, the one mid-tread
// converter model every datapath shares, plus bit-exact agreement checks
// that the backends really do route their conversions through it (the
// point of hoisting the quantizer into one header: the converters cannot
// drift apart, and these tests are the tripwire).
//
// All sweeps are driven by a fixed-seed Rng, so every case is
// deterministic and a failure log pinpoints the offending (enob, scale,
// input) triple.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "ams/adc_quantizer.hpp"
#include "ams/partitioned.hpp"
#include "ams/vmac_cell.hpp"

namespace ams {
namespace {

struct QuantizerCase {
    double enob;
    double full_scale;
    double reference_scale;
};

/// Randomized converter configurations: fractional and integral ENOBs,
/// scales spread over a few orders of magnitude, shrunk and stretched
/// references.
std::vector<QuantizerCase> random_cases(int n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<QuantizerCase> cases;
    cases.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        double enob = rng.uniform(1.0, 16.0);
        if (i % 3 == 0) enob = std::floor(enob);  // integral ENOBs are the common case
        const double full_scale = std::exp2(rng.uniform(-3.0, 5.0));
        const double reference_scale = rng.uniform(0.25, 2.0);
        cases.push_back({enob, full_scale, reference_scale});
    }
    return cases;
}

TEST(AdcQuantizerPropertyTest, ConvertIsMonotone) {
    Rng rng(21);
    for (const QuantizerCase& c : random_cases(200, 22)) {
        const vmac::AdcQuantizer q(c.enob, c.full_scale, c.reference_scale);
        double prev_in = -2.0 * q.reference();
        double prev_out = q.convert(prev_in);
        for (int i = 0; i < 50; ++i) {
            const double in = prev_in + rng.uniform(0.0, 0.2 * q.reference());
            const double out = q.convert(in);
            ASSERT_GE(out, prev_out) << "enob=" << c.enob << " fs=" << c.full_scale
                                     << " rs=" << c.reference_scale << " at v=" << in;
            prev_in = in;
            prev_out = out;
        }
    }
}

TEST(AdcQuantizerPropertyTest, ConvertIsIdempotent) {
    Rng rng(31);
    for (const QuantizerCase& c : random_cases(300, 32)) {
        const vmac::AdcQuantizer q(c.enob, c.full_scale, c.reference_scale);
        for (int i = 0; i < 20; ++i) {
            const double v = rng.uniform(-1.5 * q.reference(), 1.5 * q.reference());
            const double once = q.convert(v);
            ASSERT_EQ(q.convert(once), once)
                << "enob=" << c.enob << " fs=" << c.full_scale << " v=" << v;
        }
    }
}

TEST(AdcQuantizerPropertyTest, ConvertIsOddSymmetric) {
    // Mid-tread with round-half-away-from-zero is an odd function; the
    // converter must not bias positive and negative inputs differently.
    Rng rng(41);
    for (const QuantizerCase& c : random_cases(300, 42)) {
        const vmac::AdcQuantizer q(c.enob, c.full_scale, c.reference_scale);
        for (int i = 0; i < 20; ++i) {
            const double v = rng.uniform(0.0, 1.5 * q.reference());
            ASSERT_EQ(q.convert(-v), -q.convert(v))
                << "enob=" << c.enob << " fs=" << c.full_scale << " v=" << v;
        }
    }
}

TEST(AdcQuantizerPropertyTest, OutputStaysOnGridAndInRange) {
    Rng rng(51);
    for (const QuantizerCase& c : random_cases(300, 52)) {
        const vmac::AdcQuantizer q(c.enob, c.full_scale, c.reference_scale);
        for (int i = 0; i < 20; ++i) {
            const double v = rng.uniform(-3.0 * q.reference(), 3.0 * q.reference());
            const double out = q.convert(v);
            // Grid membership, stated FP-safely: re-snapping the output
            // to the nearest grid point reproduces it bit for bit
            // (out / lsb itself may sit half an ulp off an integer).
            const double steps = std::round(out / q.lsb());
            ASSERT_EQ(steps * q.lsb(), out) << "off-grid output " << out;
            // Range: the clipped-then-rounded output cannot exceed the
            // reference by more than half a step.
            ASSERT_LE(std::fabs(out), q.reference() + 0.5 * q.lsb());
        }
    }
}

TEST(AdcQuantizerPropertyTest, QuantizationErrorBoundedByHalfLsb) {
    Rng rng(61);
    for (const QuantizerCase& c : random_cases(300, 62)) {
        const vmac::AdcQuantizer q(c.enob, c.full_scale, c.reference_scale);
        for (int i = 0; i < 20; ++i) {
            // In-range inputs only: clipping error is unbounded by design.
            const double v = rng.uniform(-q.reference(), q.reference());
            const double err = std::fabs(q.convert(v) - v);
            ASSERT_LE(err, 0.5 * q.lsb() * (1.0 + 1e-12))
                << "enob=" << c.enob << " fs=" << c.full_scale << " v=" << v;
        }
    }
}

TEST(AdcQuantizerPropertyTest, ReferenceScaleFoldsIntoFullScale) {
    // (enob, fs, rs) and (enob, fs * rs, 1) describe the same converter;
    // the two parameterizations must agree bit for bit.
    Rng rng(71);
    for (const QuantizerCase& c : random_cases(200, 72)) {
        const vmac::AdcQuantizer split(c.enob, c.full_scale, c.reference_scale);
        const vmac::AdcQuantizer folded(c.enob, c.full_scale * c.reference_scale, 1.0);
        ASSERT_EQ(split.lsb(), folded.lsb());
        ASSERT_EQ(split.reference(), folded.reference());
        for (int i = 0; i < 10; ++i) {
            const double v = rng.uniform(-2.0 * split.reference(), 2.0 * split.reference());
            ASSERT_EQ(split.convert(v), folded.convert(v));
        }
    }
}

TEST(AdcQuantizerPropertyTest, EffectiveEnobInvertsLsb) {
    // effective_enob_from_rms is the inverse of the LSB formula: feeding
    // it the quantizer's own lsb / sqrt(12) as an RMS must return enob.
    for (const QuantizerCase& c : random_cases(100, 82)) {
        const vmac::AdcQuantizer q(c.enob, c.full_scale, c.reference_scale);
        const double rms = q.lsb() / std::sqrt(12.0);
        const double enob =
            vmac::effective_enob_from_rms(rms, c.full_scale * c.reference_scale);
        EXPECT_NEAR(enob, c.enob, 1e-9);
    }
}

TEST(AdcQuantizerPropertyTest, RejectsInvalidConfigurations) {
    EXPECT_THROW(vmac::AdcQuantizer(0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(vmac::AdcQuantizer(-2.0, 1.0), std::invalid_argument);
    EXPECT_THROW(vmac::AdcQuantizer(33.0, 1.0), std::invalid_argument);
    EXPECT_THROW(vmac::AdcQuantizer(8.0, 0.0), std::invalid_argument);
    EXPECT_THROW(vmac::AdcQuantizer(8.0, 1.0, 0.0), std::invalid_argument);
    EXPECT_THROW(vmac::AdcQuantizer(8.0, -1.0), std::invalid_argument);
}

/// Random operand pairs in the DoReFa ranges the cell is specified for.
void random_operands(Rng& rng, std::size_t n, std::vector<double>& w,
                     std::vector<double>& x) {
    w.resize(n);
    x.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        w[i] = rng.uniform(-1.0, 1.0);
        x[i] = rng.uniform(0.0, 1.0);
    }
}

TEST(AdcQuantizerPropertyTest, VmacCellRoutesThroughSharedQuantizer) {
    // With zero analog noise the cell's dot() is, definitionally,
    // quantizer().convert() of the encoded ideal dot product — exact
    // agreement, same floating-point order. This pins the bit_exact and
    // per_vmac_noise backends (which wrap VmacCell) to the shared model.
    Rng operand_rng(91);
    Rng noise_rng(92);
    for (double enob : {4.0, 6.5, 9.0}) {
        vmac::VmacConfig cfg;
        cfg.enob = enob;
        cfg.nmult = 8;
        const vmac::VmacCell cell(cfg);
        std::vector<double> w, x;
        for (int i = 0; i < 200; ++i) {
            random_operands(operand_rng, cfg.nmult, w, x);
            const double ideal = cell.dot_ideal(w, x);
            ASSERT_EQ(cell.dot(w, x, noise_rng), cell.quantizer().convert(ideal))
                << "enob=" << enob << " case " << i;
        }
    }
}

TEST(AdcQuantizerPropertyTest, ReferenceScaledCellAgreesIncludingClipping) {
    // Sec. 4 method 3 shrinks the reference: inputs beyond it must clip
    // exactly as the shared quantizer clips, not saturate some other way.
    Rng operand_rng(101);
    Rng noise_rng(102);
    vmac::VmacConfig cfg;
    cfg.enob = 6.0;
    cfg.nmult = 8;
    vmac::AnalogOptions analog;
    analog.reference_scale = 0.25;  // aggressive: most full dots clip
    const vmac::VmacCell cell(cfg, analog);
    std::vector<double> w, x;
    std::size_t clipped = 0;
    for (int i = 0; i < 300; ++i) {
        random_operands(operand_rng, cfg.nmult, w, x);
        const double ideal = cell.dot_ideal(w, x);
        if (cell.quantizer().clips(ideal)) ++clipped;
        ASSERT_EQ(cell.dot(w, x, noise_rng), cell.quantizer().convert(ideal)) << "case " << i;
    }
    EXPECT_GT(clipped, 0u) << "sweep never exercised the clipping region";
}

TEST(AdcQuantizerPropertyTest, TrivialPartitionReducesToSharedQuantizer) {
    // nw = nx = 1 with the partial converter at the cell's resolution is
    // no partition at all: one conversion of the full dot product through
    // the same shared quantizer. The partitioned datapath must then match
    // the plain cell exactly.
    vmac::VmacConfig cfg;
    cfg.enob = 6.0;
    cfg.nmult = 8;
    cfg.bits_w = 9;
    cfg.bits_x = 9;
    vmac::PartitionOptions popts;
    popts.nw = 1;
    popts.nx = 1;
    popts.enob_partial = cfg.enob;
    const vmac::PartitionedVmac partitioned(cfg, popts);
    ASSERT_EQ(partitioned.conversions_per_vmac(), 1u);
    const vmac::VmacCell cell(cfg);

    Rng operand_rng(111);
    Rng noise_rng(112);
    std::vector<double> w, x;
    for (int i = 0; i < 200; ++i) {
        random_operands(operand_rng, cfg.nmult, w, x);
        ASSERT_EQ(partitioned.dot_ideal(w, x), cell.dot_ideal(w, x)) << "case " << i;
        ASSERT_EQ(partitioned.dot(w, x, noise_rng), cell.dot(w, x, noise_rng))
            << "case " << i;
    }
}

}  // namespace
}  // namespace ams
