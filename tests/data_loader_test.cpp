#include "data/data_loader.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace ams::data {
namespace {

Tensor indexed_images(std::size_t n) {
    // Image i has every pixel equal to i, so batches reveal their sources.
    Tensor t(Shape{n, 1, 2, 2});
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < 4; ++j) t[i * 4 + j] = static_cast<float>(i);
    }
    return t;
}

std::vector<std::size_t> iota_labels(std::size_t n) {
    std::vector<std::size_t> l(n);
    for (std::size_t i = 0; i < n; ++i) l[i] = i;
    return l;
}

TEST(DataLoaderTest, EpochCoversEverySampleExactlyOnce) {
    const Tensor images = indexed_images(10);
    const auto labels = iota_labels(10);
    DataLoader loader(images, labels, 3, Rng(1));
    EXPECT_EQ(loader.batches_per_epoch(), 4u);
    std::multiset<std::size_t> seen;
    for (std::size_t b = 0; b < loader.batches_per_epoch(); ++b) {
        const Batch batch = loader.next();
        EXPECT_EQ(batch.images.dim(0), batch.labels.size());
        for (std::size_t i = 0; i < batch.labels.size(); ++i) {
            // Image content matches the label (source index).
            EXPECT_FLOAT_EQ(batch.images[i * 4], static_cast<float>(batch.labels[i]));
            seen.insert(batch.labels[i]);
        }
    }
    EXPECT_EQ(seen.size(), 10u);
    for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(seen.count(i), 1u);
}

TEST(DataLoaderTest, PartialFinalBatch) {
    const Tensor images = indexed_images(7);
    const auto labels = iota_labels(7);
    DataLoader loader(images, labels, 4, Rng(2));
    EXPECT_EQ(loader.next().labels.size(), 4u);
    EXPECT_EQ(loader.next().labels.size(), 3u);
    EXPECT_TRUE(loader.at_epoch_start());
}

TEST(DataLoaderTest, ShufflePermutesOrder) {
    const Tensor images = indexed_images(64);
    const auto labels = iota_labels(64);
    DataLoader loader(images, labels, 64, Rng(3));
    const Batch b = loader.next();
    bool out_of_order = false;
    for (std::size_t i = 0; i < 64; ++i) {
        if (b.labels[i] != i) {
            out_of_order = true;
            break;
        }
    }
    EXPECT_TRUE(out_of_order);
}

TEST(DataLoaderTest, NoShufflePreservesOrder) {
    const Tensor images = indexed_images(6);
    const auto labels = iota_labels(6);
    DataLoader loader(images, labels, 2, Rng(4), /*shuffle=*/false);
    EXPECT_EQ(loader.next().labels, (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(loader.next().labels, (std::vector<std::size_t>{2, 3}));
}

TEST(DataLoaderTest, ReshufflesBetweenEpochs) {
    const Tensor images = indexed_images(32);
    const auto labels = iota_labels(32);
    DataLoader loader(images, labels, 32, Rng(5));
    const auto first = loader.next().labels;
    const auto second = loader.next().labels;
    EXPECT_NE(first, second);
}

TEST(DataLoaderTest, DeterministicForSeed) {
    const Tensor images = indexed_images(16);
    const auto labels = iota_labels(16);
    DataLoader a(images, labels, 16, Rng(6));
    DataLoader b(images, labels, 16, Rng(6));
    EXPECT_EQ(a.next().labels, b.next().labels);
}

TEST(DataLoaderTest, ValidatesArguments) {
    const Tensor images = indexed_images(4);
    const auto labels = iota_labels(3);  // mismatch
    EXPECT_THROW(DataLoader(images, labels, 2, Rng(7)), std::invalid_argument);
    const auto ok_labels = iota_labels(4);
    EXPECT_THROW(DataLoader(images, ok_labels, 0, Rng(7)), std::invalid_argument);
    Tensor rank2(Shape{4, 4});
    EXPECT_THROW(DataLoader(rank2, ok_labels, 2, Rng(7)), std::invalid_argument);
}

}  // namespace
}  // namespace ams::data
