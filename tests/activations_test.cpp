#include "nn/activations.hpp"

#include <gtest/gtest.h>

#include "nn/gradcheck.hpp"

namespace ams::nn {
namespace {

TEST(ReLUTest, ForwardClampsNegatives) {
    ReLU relu;
    Tensor x = Tensor::from_data(Shape{4}, {-2, -0.5, 0, 3});
    Tensor y = relu.forward(x);
    EXPECT_FLOAT_EQ(y[0], 0.0f);
    EXPECT_FLOAT_EQ(y[1], 0.0f);
    EXPECT_FLOAT_EQ(y[2], 0.0f);
    EXPECT_FLOAT_EQ(y[3], 3.0f);
}

TEST(ReLUTest, BackwardMasksNegatives) {
    ReLU relu;
    Tensor x = Tensor::from_data(Shape{4}, {-2, -0.5, 0.5, 3});
    relu.forward(x);
    Tensor g = Tensor::from_data(Shape{4}, {1, 1, 1, 1});
    Tensor gx = relu.backward(g);
    EXPECT_FLOAT_EQ(gx[0], 0.0f);
    EXPECT_FLOAT_EQ(gx[1], 0.0f);
    EXPECT_FLOAT_EQ(gx[2], 1.0f);
    EXPECT_FLOAT_EQ(gx[3], 1.0f);
}

TEST(ClippedReLUTest, ForwardClipsBothEnds) {
    ClippedReLU act(1.0f);
    Tensor x = Tensor::from_data(Shape{5}, {-1, 0.25, 0.999f, 1.5, 100});
    Tensor y = act.forward(x);
    EXPECT_FLOAT_EQ(y[0], 0.0f);
    EXPECT_FLOAT_EQ(y[1], 0.25f);
    EXPECT_FLOAT_EQ(y[2], 0.999f);
    EXPECT_FLOAT_EQ(y[3], 1.0f);
    EXPECT_FLOAT_EQ(y[4], 1.0f);
}

TEST(ClippedReLUTest, BackwardMasksSaturatedRegions) {
    ClippedReLU act(1.0f);
    Tensor x = Tensor::from_data(Shape{4}, {-0.5, 0.5, 1.5, 0.9f});
    act.forward(x);
    Tensor g(Shape{4}, 2.0f);
    Tensor gx = act.backward(g);
    EXPECT_FLOAT_EQ(gx[0], 0.0f);
    EXPECT_FLOAT_EQ(gx[1], 2.0f);
    EXPECT_FLOAT_EQ(gx[2], 0.0f);
    EXPECT_FLOAT_EQ(gx[3], 2.0f);
}

TEST(ClippedReLUTest, CustomCeiling) {
    ClippedReLU act(6.0f);
    Tensor x = Tensor::from_data(Shape{2}, {5, 7});
    Tensor y = act.forward(x);
    EXPECT_FLOAT_EQ(y[0], 5.0f);
    EXPECT_FLOAT_EQ(y[1], 6.0f);
}

TEST(ClippedReLUTest, RejectsNonPositiveCeiling) {
    EXPECT_THROW(ClippedReLU(0.0f), std::invalid_argument);
    EXPECT_THROW(ClippedReLU(-1.0f), std::invalid_argument);
}

TEST(ActivationGradcheck, ReLUInputGradient) {
    // Keep inputs away from the kink at 0 for finite differences.
    ReLU relu;
    Rng rng(10);
    Tensor x(Shape{3, 7});
    x.fill_uniform(rng, 0.2f, 1.0f);
    for (std::size_t i = 0; i < x.size(); i += 2) x[i] -= 1.4f;  // clearly negative
    const auto result = check_input_gradient(relu, x, rng, 1e-3);
    EXPECT_LT(result.max_rel_error, 1e-2);
    EXPECT_EQ(result.checked, x.size());
}

TEST(ActivationGradcheck, ClippedReLUInputGradient) {
    ClippedReLU act(1.0f);
    Rng rng(11);
    Tensor x(Shape{4, 5});
    x.fill_uniform(rng, 0.1f, 0.9f);  // interior of the linear region
    const auto result = check_input_gradient(act, x, rng, 1e-3);
    EXPECT_LT(result.max_rel_error, 1e-2);
}

}  // namespace
}  // namespace ams::nn
