// Property tests for the dispatched GEMM kernels: every public op
// (gemm, gemm_accumulate, gemm_at, gemm_bt) on both dispatch arms,
// swept over shapes chosen to hit every microkernel edge — single rows,
// partial 6-row panels, masked column tails, k == 1, and sizes that
// cross the parallel-dispatch threshold.
//
// The scalar arm is held to a *bit-exact* standard against an in-k-order
// float reference (that arm is the legacy blocked kernel, whose per-
// element accumulation order is plain ascending k). The AVX2 arm is held
// to a tolerance against a double-precision reference — FMA contraction
// legitimately changes float realizations.
#include "tensor/gemm_kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "runtime/eval_context.hpp"
#include "runtime/simd.hpp"
#include "tensor/gemm.hpp"

namespace ams {
namespace {

// Restores the dispatch arm active at construction; tests flip arms via
// set_level and must not leak the override into other tests.
class LevelGuard {
public:
    LevelGuard() : saved_(simd::active_level()) {}
    ~LevelGuard() { simd::set_level(saved_); }

private:
    simd::Level saved_;
};

std::vector<float> random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
    std::vector<float> m(rows * cols);
    for (float& v : m) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    return m;
}

std::vector<float> transpose(const std::vector<float>& m, std::size_t rows, std::size_t cols) {
    std::vector<float> t(rows * cols);
    for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t j = 0; j < cols; ++j) t[j * rows + i] = m[i * cols + j];
    }
    return t;
}

// Double-precision ground truth, and the float in-k-order realization the
// scalar arm reproduces bit for bit.
template <typename Acc>
std::vector<float> naive_gemm(const std::vector<float>& a, const std::vector<float>& b,
                              std::size_t m, std::size_t k, std::size_t n, float c0) {
    std::vector<float> c(m * n);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            Acc acc = static_cast<Acc>(c0);
            for (std::size_t kk = 0; kk < k; ++kk) {
                acc += static_cast<Acc>(a[i * k + kk]) * static_cast<Acc>(b[kk * n + j]);
            }
            c[i * n + j] = static_cast<float>(acc);
        }
    }
    return c;
}

enum class Op { kGemm, kAccumulate, kAt, kBt };
constexpr Op kAllOps[] = {Op::kGemm, Op::kAccumulate, Op::kAt, Op::kBt};

const char* op_name(Op op) {
    switch (op) {
        case Op::kGemm: return "gemm";
        case Op::kAccumulate: return "gemm_accumulate";
        case Op::kAt: return "gemm_at";
        case Op::kBt: return "gemm_bt";
    }
    return "?";
}

// Runs one op through the public dispatching entry point. A and B are the
// *logical* (MxK, KxN) operands; the transposed ops receive the layout
// they expect. gemm_accumulate seeds C with 1.0f.
std::vector<float> run_op(Op op, const std::vector<float>& a, const std::vector<float>& b,
                          std::size_t m, std::size_t k, std::size_t n,
                          GemmPackBuffers* pack = nullptr) {
    std::vector<float> c(m * n, op == Op::kAccumulate ? 1.0f : 0.0f);
    switch (op) {
        case Op::kGemm:
            gemm(a.data(), b.data(), c.data(), m, k, n, pack);
            break;
        case Op::kAccumulate:
            gemm_accumulate(a.data(), b.data(), c.data(), m, k, n, pack);
            break;
        case Op::kAt: {
            const std::vector<float> at = transpose(a, m, k);  // stored KxM
            gemm_at(at.data(), b.data(), c.data(), m, k, n, pack);
            break;
        }
        case Op::kBt: {
            const std::vector<float> bt = transpose(b, k, n);  // stored NxK
            gemm_bt(a.data(), bt.data(), c.data(), m, k, n, pack);
            break;
        }
    }
    return c;
}

// Shape sweep: every remainder-tail class of the 6x16 microkernel (row
// tails 1..5, column tails 1..15, full tiles, k == 1) plus sizes big
// enough to cross kParallelMacThreshold and engage row-parallelism.
struct Dims {
    std::size_t m, k, n;
};
const Dims kShapes[] = {
    {1, 1, 1},    {1, 1, 16},  {1, 7, 15},   {2, 3, 4},    {3, 5, 17},  {5, 2, 31},
    {6, 8, 16},   {6, 16, 33}, {7, 5, 3},    {8, 15, 8},   {12, 16, 16}, {13, 33, 47},
    {15, 64, 15}, {16, 16, 16}, {17, 33, 65}, {33, 65, 17}, {37, 53, 41}, {64, 300, 70},
    {65, 48, 129}, {128, 64, 257},
};

TEST(GemmKernelsTest, ScalarArmBitExactVsInOrderReference) {
    LevelGuard guard;
    simd::set_level(simd::Level::kScalar);
    for (const Dims& d : kShapes) {
        Rng rng(2000 + d.m * 31 + d.k * 7 + d.n);
        const auto a = random_matrix(d.m, d.k, rng);
        const auto b = random_matrix(d.k, d.n, rng);
        for (Op op : kAllOps) {
            const float c0 = op == Op::kAccumulate ? 1.0f : 0.0f;
            const auto expected = naive_gemm<float>(a, b, d.m, d.k, d.n, c0);
            const auto actual = run_op(op, a, b, d.m, d.k, d.n);
            ASSERT_EQ(std::memcmp(actual.data(), expected.data(),
                                  expected.size() * sizeof(float)),
                      0)
                << op_name(op) << " " << d.m << "x" << d.k << "x" << d.n;
        }
    }
}

TEST(GemmKernelsTest, Avx2ArmMatchesDoubleReferenceWithinTolerance) {
    if (!simd::cpu_supports_avx2_fma()) GTEST_SKIP() << "no AVX2/FMA on this host";
    LevelGuard guard;
    simd::set_level(simd::Level::kAvx2);
    for (const Dims& d : kShapes) {
        Rng rng(2000 + d.m * 31 + d.k * 7 + d.n);
        const auto a = random_matrix(d.m, d.k, rng);
        const auto b = random_matrix(d.k, d.n, rng);
        // |err| <= ~k ulps of the partial sums; inputs in [-1,1] keep the
        // sums O(sqrt(k)), so an absolute bound scaled by k is comfortable.
        const float tol = 1e-6f * static_cast<float>(d.k) + 1e-5f;
        for (Op op : kAllOps) {
            const float c0 = op == Op::kAccumulate ? 1.0f : 0.0f;
            const auto expected = naive_gemm<double>(a, b, d.m, d.k, d.n, c0);
            const auto actual = run_op(op, a, b, d.m, d.k, d.n);
            for (std::size_t i = 0; i < expected.size(); ++i) {
                ASSERT_NEAR(actual[i], expected[i], tol)
                    << op_name(op) << " " << d.m << "x" << d.k << "x" << d.n << " at " << i;
            }
        }
    }
}

TEST(GemmKernelsTest, EvalContextPackBuffersMatchThreadLocalBitExactly) {
    // Same arm + same op must produce identical bits whether the pack
    // scratch comes from the thread-local fallback or an EvalContext
    // registry — the buffers only change *where* panels live, never the
    // arithmetic.
    LevelGuard guard;
    const Dims d{17, 33, 65};
    Rng rng(99);
    const auto a = random_matrix(d.m, d.k, rng);
    const auto b = random_matrix(d.k, d.n, rng);
    for (simd::Level level : {simd::Level::kScalar, simd::Level::kAvx2}) {
        if (level == simd::Level::kAvx2 && !simd::cpu_supports_avx2_fma()) continue;
        simd::set_level(level);
        for (Op op : kAllOps) {
            runtime::EvalContext ctx;
            const int owner = 0;  // any stable key works for a direct call
            (void)ctx.reserve_scratch(&owner, GemmPackBuffers::kPackB,
                                      packed_b_floats(d.k, d.n));
            (void)ctx.reserve_scratch(&owner, GemmPackBuffers::kTranspose, d.m * d.k);
            EvalContextPackBuffers pack(ctx, &owner, /*slot_base=*/0);
            const auto via_tls = run_op(op, a, b, d.m, d.k, d.n, nullptr);
            const auto via_ctx = run_op(op, a, b, d.m, d.k, d.n, &pack);
            ASSERT_EQ(std::memcmp(via_tls.data(), via_ctx.data(),
                                  via_tls.size() * sizeof(float)),
                      0)
                << op_name(op) << " on " << simd::level_name(level);
        }
    }
}

TEST(GemmKernelsTest, PackedBFloatsRoundsUpToPanelWidth) {
    EXPECT_EQ(packed_b_floats(0, 5), 0u);
    EXPECT_EQ(packed_b_floats(3, 1), 3u * 16u);
    EXPECT_EQ(packed_b_floats(3, 16), 3u * 16u);
    EXPECT_EQ(packed_b_floats(3, 17), 3u * 32u);
    EXPECT_EQ(packed_b_floats(7, 100), 7u * 112u);
}

}  // namespace
}  // namespace ams
