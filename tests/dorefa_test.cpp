#include "quant/dorefa.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace ams::quant {
namespace {

TEST(DorefaTest, MagnitudeLevelsMatchSignMagnitude) {
    EXPECT_EQ(magnitude_levels(2), 1u);
    EXPECT_EQ(magnitude_levels(4), 7u);
    EXPECT_EQ(magnitude_levels(8), 127u);
    EXPECT_THROW(magnitude_levels(1), std::invalid_argument);
    EXPECT_THROW(magnitude_levels(32), std::invalid_argument);
}

TEST(QuantizeUnitTest, ClampsAndRounds) {
    EXPECT_FLOAT_EQ(quantize_unit(-0.5f, 7), 0.0f);
    EXPECT_FLOAT_EQ(quantize_unit(1.5f, 7), 1.0f);
    EXPECT_FLOAT_EQ(quantize_unit(0.5f, 2), 0.5f);
    EXPECT_FLOAT_EQ(quantize_unit(0.24f, 2), 0.0f);
    EXPECT_FLOAT_EQ(quantize_unit(0.26f, 2), 0.5f);
    EXPECT_THROW(quantize_unit(0.5f, 0), std::invalid_argument);
}

class QuantizeUnitProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuantizeUnitProperty, IdempotentAndOnGrid) {
    const std::size_t bits = GetParam();
    const std::size_t levels = magnitude_levels(bits);
    Rng rng(bits);
    for (int i = 0; i < 500; ++i) {
        const float x = static_cast<float>(rng.uniform(-0.2, 1.2));
        const float q = quantize_unit(x, levels);
        // On-grid: q * levels is an integer.
        const float scaled = q * static_cast<float>(levels);
        EXPECT_NEAR(scaled, std::round(scaled), 1e-4f);
        // Idempotent.
        EXPECT_FLOAT_EQ(quantize_unit(q, levels), q);
        // Within half a step of the clamped input.
        const float clamped = std::clamp(x, 0.0f, 1.0f);
        EXPECT_LE(std::fabs(q - clamped), 0.5f / levels + 1e-6f);
    }
}

INSTANTIATE_TEST_SUITE_P(Bits, QuantizeUnitProperty, ::testing::Values(2u, 3u, 4u, 6u, 8u));

class DorefaWeightsProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DorefaWeightsProperty, QuantizedWeightsBoundedAndOnGrid) {
    const std::size_t bits = GetParam();
    Rng rng(100 + bits);
    Tensor w(Shape{64});
    w.fill_normal(rng, 0.0f, 1.5f);
    const DorefaWeights dq = dorefa_quantize_weights(w, bits);

    const std::size_t levels = magnitude_levels(bits);
    std::set<long long> grid_points;
    for (std::size_t i = 0; i < dq.quantized.size(); ++i) {
        const float q = dq.quantized[i];
        EXPECT_GE(q, -1.0f);
        EXPECT_LE(q, 1.0f);
        // Sign-magnitude grid: q * levels must be an integer.
        const float scaled = q * static_cast<float>(levels);
        EXPECT_NEAR(scaled, std::round(scaled), 1e-3f);
        grid_points.insert(std::llround(scaled));
        EXPECT_GT(dq.ste_scale[i], 0.0f);
    }
    // The transform must exercise more than one level for spread weights.
    EXPECT_GT(grid_points.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Bits, DorefaWeightsProperty, ::testing::Values(2u, 4u, 6u, 8u));

TEST(DorefaWeightsTest, FloatBitsIsIdentity) {
    Rng rng(7);
    Tensor w(Shape{16});
    w.fill_normal(rng, 0.0f, 2.0f);
    const DorefaWeights dq = dorefa_quantize_weights(w, kFloatBits);
    for (std::size_t i = 0; i < w.size(); ++i) {
        EXPECT_FLOAT_EQ(dq.quantized[i], w[i]);
        EXPECT_FLOAT_EQ(dq.ste_scale[i], 1.0f);
    }
}

TEST(DorefaWeightsTest, SteScaleMatchesTanhDerivative) {
    Tensor w = Tensor::from_data(Shape{2}, {0.3f, -1.2f});
    const DorefaWeights dq = dorefa_quantize_weights(w, 8);
    const float max_tanh = std::max(std::fabs(std::tanh(0.3f)), std::fabs(std::tanh(-1.2f)));
    for (std::size_t i = 0; i < 2; ++i) {
        const float t = std::tanh(w[i]);
        EXPECT_NEAR(dq.ste_scale[i], (1.0f - t * t) / max_tanh, 1e-5f);
    }
}

TEST(DorefaWeightsTest, LargestMagnitudeWeightMapsToUnit) {
    // The weight with the largest |tanh| maps to exactly +/-1.
    Tensor w = Tensor::from_data(Shape{3}, {0.1f, 2.0f, -0.5f});
    const DorefaWeights dq = dorefa_quantize_weights(w, 8);
    EXPECT_NEAR(dq.quantized[1], 1.0f, 1e-5f);
}

TEST(DorefaWeightsTest, AllZeroWeightsHandled) {
    Tensor w(Shape{4}, 0.0f);
    const DorefaWeights dq = dorefa_quantize_weights(w, 4);
    for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(dq.quantized[i], 0.0f);
}

TEST(DorefaActivationsTest, ClipsAndQuantizes) {
    Tensor a = Tensor::from_data(Shape{4}, {-0.5f, 0.49f, 0.51f, 2.0f});
    Tensor q = dorefa_quantize_activations(a, 2);  // 1 level: {0, 1}
    EXPECT_FLOAT_EQ(q[0], 0.0f);
    EXPECT_FLOAT_EQ(q[1], 0.0f);
    EXPECT_FLOAT_EQ(q[2], 1.0f);
    EXPECT_FLOAT_EQ(q[3], 1.0f);
}

TEST(DorefaActivationsTest, FloatBitsIsIdentity) {
    Tensor a = Tensor::from_data(Shape{2}, {-0.5f, 2.0f});
    Tensor q = dorefa_quantize_activations(a, kFloatBits);
    EXPECT_FLOAT_EQ(q[0], -0.5f);
    EXPECT_FLOAT_EQ(q[1], 2.0f);
}

}  // namespace
}  // namespace ams::quant
