#include "ams/delta_sigma.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ams/error_model.hpp"

namespace ams::vmac {
namespace {

VmacConfig cfg(double enob, std::size_t nmult) {
    VmacConfig c;
    c.enob = enob;
    c.nmult = nmult;
    return c;
}

std::vector<double> random_vec(std::size_t n, Rng& rng, double lo = -1.0, double hi = 1.0) {
    std::vector<double> v(n);
    for (double& x : v) x = rng.uniform(lo, hi);
    return v;
}

TEST(DeltaSigmaTest, RequiresFinalAtLeastPerCycleResolution) {
    EXPECT_THROW(DeltaSigmaVmac(cfg(10.0, 8), 8.0), std::invalid_argument);
    EXPECT_NO_THROW(DeltaSigmaVmac(cfg(10.0, 8), 10.0));
}

TEST(DeltaSigmaTest, TotalErrorBoundedByFinalConversionOnly) {
    // Telescoping: sum of cycle outputs + finalize() equals the exact dot
    // product up to the *final* converter's half-LSB, regardless of how
    // coarse the per-cycle ADC is.
    const VmacConfig per_cycle = cfg(6.0, 8);  // deliberately coarse
    const double final_enob = 14.0;
    DeltaSigmaVmac ds(per_cycle, final_enob);
    Rng rng(3);
    const auto w = random_vec(64, rng);
    const auto x = random_vec(64, rng, 0.0, 1.0);

    VmacCell exact(cfg(24.0, 8));
    double ideal = 0.0;
    for (std::size_t s = 0; s < 64; s += 8) {
        ideal += exact.dot_ideal(std::span(w).subspan(s, 8), std::span(x).subspan(s, 8));
    }
    const double got = ds.dot(w, x, rng);
    const double final_lsb = 2.0 * 8.0 * std::exp2(-final_enob);
    EXPECT_LE(std::fabs(got - ideal), 0.5 * final_lsb + 1e-12);
}

TEST(DeltaSigmaTest, BeatsPlainCellOfSameResolution) {
    const VmacConfig c = cfg(7.0, 8);
    Rng rng(4);
    double ds_sq = 0.0, plain_sq = 0.0;
    const int trials = 500;
    for (int t = 0; t < trials; ++t) {
        const auto w = random_vec(64, rng);
        const auto x = random_vec(64, rng, 0.0, 1.0);
        VmacCell exact(cfg(24.0, 8));
        double ideal = 0.0;
        for (std::size_t s = 0; s < 64; s += 8) {
            ideal +=
                exact.dot_ideal(std::span(w).subspan(s, 8), std::span(x).subspan(s, 8));
        }
        DeltaSigmaVmac ds(c, 12.0);
        const double ds_err = ds.dot(w, x, rng) - ideal;
        ds_sq += ds_err * ds_err;
        VmacCell plain(c);
        const double p_err = plain.dot_tiled(w, x, rng) - ideal;
        plain_sq += p_err * p_err;
    }
    // Error recycling should cut the error variance by a large factor.
    EXPECT_LT(ds_sq, plain_sq / 4.0);
}

TEST(DeltaSigmaTest, ResidualIsBoundedByHalfLsb) {
    DeltaSigmaVmac ds(cfg(8.0, 8), 12.0);
    Rng rng(5);
    for (int t = 0; t < 100; ++t) {
        const auto w = random_vec(8, rng);
        const auto x = random_vec(8, rng, 0.0, 1.0);
        (void)ds.accumulate(w, x, rng);
        EXPECT_LE(std::fabs(ds.residual()), 0.5 * ds.cell().adc_lsb() + 1e-12);
    }
}

TEST(DeltaSigmaTest, FinalizeResetsState) {
    DeltaSigmaVmac ds(cfg(8.0, 8), 12.0);
    Rng rng(6);
    const auto w = random_vec(8, rng);
    const auto x = random_vec(8, rng, 0.0, 1.0);
    (void)ds.accumulate(w, x, rng);
    (void)ds.finalize(rng);
    EXPECT_DOUBLE_EQ(ds.residual(), 0.0);
}

TEST(DeltaSigmaTest, ThermalNoiseIsNotRecycled) {
    // Paper: recycling reduces quantization error but not thermal noise.
    AnalogOptions noisy;
    noisy.adc_noise_sigma = 0.05;
    const VmacConfig c = cfg(14.0, 8);  // quantization negligible
    Rng rng(7);
    double sq = 0.0;
    const int trials = 2000;
    const int chunks = 8;
    for (int t = 0; t < trials; ++t) {
        const auto w = random_vec(8 * chunks, rng);
        const auto x = random_vec(8 * chunks, rng, 0.0, 1.0);
        VmacCell exact(cfg(24.0, 8));
        double ideal = 0.0;
        for (std::size_t s = 0; s < w.size(); s += 8) {
            ideal +=
                exact.dot_ideal(std::span(w).subspan(s, 8), std::span(x).subspan(s, 8));
        }
        DeltaSigmaVmac ds(c, 16.0, noisy);
        const double err = ds.dot(w, x, rng) - ideal;
        sq += err * err;
    }
    // Thermal noise accumulates across the 8 chunk conversions (plus the
    // final one): variance ~ (chunks + 1) * sigma^2.
    EXPECT_NEAR(sq / trials, (chunks + 1) * 0.05 * 0.05, 1.5e-3);
}

}  // namespace
}  // namespace ams::vmac
