#include "train/evaluate.hpp"

#include <gtest/gtest.h>

#include "data/synthetic_imagenet.hpp"

namespace ams::train {
namespace {

data::DatasetOptions tiny_data() {
    data::DatasetOptions o;
    o.classes = 4;
    o.train_per_class = 8;
    o.val_per_class = 8;
    o.image_size = 8;
    o.seed = 9;
    return o;
}

models::LayerCommon fp32_common() {
    models::LayerCommon c;
    c.bits_w = quant::kFloatBits;
    c.bits_x = quant::kFloatBits;
    return c;
}

models::LayerCommon ams_common(double enob) {
    models::LayerCommon c;
    c.bits_w = 8;
    c.bits_x = 8;
    c.ams_enabled = true;
    c.vmac.enob = enob;
    c.vmac.nmult = 8;
    return c;
}

TEST(EvaluateTest, DeterministicModelHasZeroStddev) {
    data::SyntheticImageNet ds(tiny_data());
    models::ResNet model(models::tiny_resnet_config(fp32_common()));
    const EvalResult r = evaluate_top1(model, ds.val_images(), ds.val_labels(), 16, 5);
    EXPECT_EQ(r.passes.size(), 5u);
    EXPECT_DOUBLE_EQ(r.stddev, 0.0);
    for (double p : r.passes) EXPECT_DOUBLE_EQ(p, r.passes[0]);
}

TEST(EvaluateTest, StochasticAmsModelHasSpread) {
    data::SyntheticImageNet ds(tiny_data());
    // Very coarse ENOB: predictions flip between passes.
    models::ResNet model(models::tiny_resnet_config(ams_common(2.0)));
    const EvalResult r = evaluate_top1(model, ds.val_images(), ds.val_labels(), 16, 8);
    bool any_diff = false;
    for (double p : r.passes) {
        if (p != r.passes[0]) any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(EvaluateTest, RestoresTrainingFlag) {
    data::SyntheticImageNet ds(tiny_data());
    models::ResNet model(models::tiny_resnet_config(fp32_common()));
    model.set_training(true);
    (void)evaluate_top1(model, ds.val_images(), ds.val_labels(), 16, 1);
    EXPECT_TRUE(model.training());
    model.set_training(false);
    (void)evaluate_top1(model, ds.val_images(), ds.val_labels(), 16, 1);
    EXPECT_FALSE(model.training());
}

TEST(EvaluateTest, TopkIsMonotoneInK) {
    data::SyntheticImageNet ds(tiny_data());
    models::ResNet model(models::tiny_resnet_config(fp32_common()));
    const double t1 = evaluate_topk(model, ds.val_images(), ds.val_labels(), 1, 16);
    const double t3 = evaluate_topk(model, ds.val_images(), ds.val_labels(), 3, 16);
    const double t4 = evaluate_topk(model, ds.val_images(), ds.val_labels(), 4, 16);
    EXPECT_LE(t1, t3);
    EXPECT_LE(t3, t4);
    EXPECT_DOUBLE_EQ(t4, 1.0);  // k == classes
}

TEST(EvaluateTest, RecordActivationMeansCoversAllConvLayers) {
    data::SyntheticImageNet ds(tiny_data());
    models::ResNet model(models::tiny_resnet_config(fp32_common()));
    const auto means = record_activation_means(model, ds.val_images(), 16);
    EXPECT_EQ(means.size(), model.num_conv_layers());
    bool any_nonzero = false;
    for (double m : means) {
        if (m != 0.0) any_nonzero = true;
    }
    EXPECT_TRUE(any_nonzero);
    // Recording is switched off afterwards: further forwards don't count.
    model.reset_stats();
    model.set_training(false);
    (void)model.forward(ds.val_images());
    for (double m : model.activation_means()) EXPECT_EQ(m, 0.0);
}

TEST(EvaluateTest, ValidatesArguments) {
    data::SyntheticImageNet ds(tiny_data());
    models::ResNet model(models::tiny_resnet_config(fp32_common()));
    EXPECT_THROW((void)evaluate_top1(model, ds.val_images(), ds.val_labels(), 16, 0),
                 std::invalid_argument);
    EXPECT_THROW((void)evaluate_top1(model, ds.val_images(), ds.val_labels(), 0, 1),
                 std::invalid_argument);
    std::vector<std::size_t> wrong_labels(3, 0);
    EXPECT_THROW((void)evaluate_top1(model, ds.val_images(), wrong_labels, 16, 1),
                 std::invalid_argument);
}

}  // namespace
}  // namespace ams::train
