#include "tensor/gemm.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

namespace ams {
namespace {

void naive_gemm(const std::vector<float>& a, const std::vector<float>& b, std::vector<float>& c,
                std::size_t m, std::size_t k, std::size_t n) {
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::size_t kk = 0; kk < k; ++kk) {
                acc += static_cast<double>(a[i * k + kk]) * b[kk * n + j];
            }
            c[i * n + j] = static_cast<float>(acc);
        }
    }
}

std::vector<float> random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
    std::vector<float> m(rows * cols);
    for (float& v : m) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    return m;
}

using Dims = std::tuple<std::size_t, std::size_t, std::size_t>;

class GemmVsNaive : public ::testing::TestWithParam<Dims> {};

TEST_P(GemmVsNaive, MatchesReference) {
    const auto [m, k, n] = GetParam();
    Rng rng(1000 + m * 31 + k * 7 + n);
    const auto a = random_matrix(m, k, rng);
    const auto b = random_matrix(k, n, rng);
    std::vector<float> expected(m * n), actual(m * n);
    naive_gemm(a, b, expected, m, k, n);
    gemm(a.data(), b.data(), actual.data(), m, k, n);
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_NEAR(actual[i], expected[i], 1e-3f) << "at " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GemmVsNaive,
                         ::testing::Values(Dims{1, 1, 1}, Dims{2, 3, 4}, Dims{7, 5, 3},
                                           Dims{16, 16, 16}, Dims{33, 65, 17},
                                           Dims{64, 300, 70}, Dims{128, 64, 257}));

TEST(GemmTest, AccumulateAddsOnTop) {
    Rng rng(5);
    const auto a = random_matrix(4, 6, rng);
    const auto b = random_matrix(6, 5, rng);
    std::vector<float> c(4 * 5, 1.0f);
    std::vector<float> ref(4 * 5);
    naive_gemm(a, b, ref, 4, 6, 5);
    gemm_accumulate(a.data(), b.data(), c.data(), 4, 6, 5);
    for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i] + 1.0f, 1e-4f);
}

TEST(GemmTest, TransposedAMatchesReference) {
    Rng rng(6);
    const std::size_t m = 9, k = 7, n = 11;
    const auto a = random_matrix(m, k, rng);  // logical A is m x k
    // Store A^T as k x m.
    std::vector<float> at(k * m);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t kk = 0; kk < k; ++kk) at[kk * m + i] = a[i * k + kk];
    }
    const auto b = random_matrix(k, n, rng);
    std::vector<float> expected(m * n), actual(m * n);
    naive_gemm(a, b, expected, m, k, n);
    gemm_at(at.data(), b.data(), actual.data(), m, k, n);
    for (std::size_t i = 0; i < expected.size(); ++i) EXPECT_NEAR(actual[i], expected[i], 1e-4f);
}

TEST(GemmTest, TransposedBMatchesReference) {
    Rng rng(8);
    const std::size_t m = 6, k = 10, n = 4;
    const auto a = random_matrix(m, k, rng);
    const auto b = random_matrix(k, n, rng);
    std::vector<float> bt(n * k);
    for (std::size_t kk = 0; kk < k; ++kk) {
        for (std::size_t j = 0; j < n; ++j) bt[j * k + kk] = b[kk * n + j];
    }
    std::vector<float> expected(m * n), actual(m * n);
    naive_gemm(a, b, expected, m, k, n);
    gemm_bt(a.data(), bt.data(), actual.data(), m, k, n);
    for (std::size_t i = 0; i < expected.size(); ++i) EXPECT_NEAR(actual[i], expected[i], 1e-4f);
}

TEST(GemmTest, MatmulValidatesShapes) {
    Tensor a(Shape{2, 3});
    Tensor b(Shape{4, 2});
    EXPECT_THROW((void)matmul(a, b), std::invalid_argument);
    Tensor c(Shape{3});
    EXPECT_THROW((void)matmul(a, c), std::invalid_argument);
}

TEST(GemmTest, MatmulComputesProduct) {
    Tensor a = Tensor::from_data(Shape{2, 2}, {1, 2, 3, 4});
    Tensor b = Tensor::from_data(Shape{2, 2}, {5, 6, 7, 8});
    Tensor c = matmul(a, b);
    EXPECT_FLOAT_EQ(c.at({0, 0}), 19.0f);
    EXPECT_FLOAT_EQ(c.at({0, 1}), 22.0f);
    EXPECT_FLOAT_EQ(c.at({1, 0}), 43.0f);
    EXPECT_FLOAT_EQ(c.at({1, 1}), 50.0f);
}

}  // namespace
}  // namespace ams
