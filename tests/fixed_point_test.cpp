#include "quant/fixed_point.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/rng.hpp"

namespace ams::quant {
namespace {

TEST(SignMagCodecTest, FullScaleAndLsb) {
    SignMagCodec codec(8);
    EXPECT_EQ(codec.full_scale(), 127u);
    EXPECT_NEAR(codec.lsb(), 1.0 / 127.0, 1e-12);
}

TEST(SignMagCodecTest, EncodesExtremes) {
    SignMagCodec codec(4);
    EXPECT_EQ(codec.encode(1.0).magnitude, 7u);
    EXPECT_FALSE(codec.encode(1.0).negative);
    EXPECT_EQ(codec.encode(-1.0).magnitude, 7u);
    EXPECT_TRUE(codec.encode(-1.0).negative);
    EXPECT_EQ(codec.encode(0.0).magnitude, 0u);
}

TEST(SignMagCodecTest, ClampsOutOfRange) {
    SignMagCodec codec(4);
    EXPECT_DOUBLE_EQ(codec.decode(codec.encode(5.0)), 1.0);
    EXPECT_DOUBLE_EQ(codec.decode(codec.encode(-5.0)), -1.0);
}

TEST(SignMagCodecTest, NegativeZeroIsNonNegative) {
    SignMagCodec codec(6);
    const SignMagCode z = codec.encode(-0.0);
    EXPECT_FALSE(z.negative);
    EXPECT_EQ(z.magnitude, 0u);
    // Tiny negative values also round to clean zero.
    EXPECT_FALSE(codec.encode(-1e-9).negative);
}

TEST(SignMagCodecTest, DecodeValidatesMagnitude) {
    SignMagCodec codec(4);
    EXPECT_THROW((void)codec.decode({false, 8}), std::invalid_argument);
}

TEST(SignMagCodecTest, ConstructionBounds) {
    EXPECT_THROW(SignMagCodec(1), std::invalid_argument);
    EXPECT_THROW(SignMagCodec(25), std::invalid_argument);
    EXPECT_NO_THROW(SignMagCodec(2));
    EXPECT_NO_THROW(SignMagCodec(24));
}

class CodecRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CodecRoundTrip, QuantizationErrorBoundedByHalfLsb) {
    const std::size_t bits = GetParam();
    SignMagCodec codec(bits);
    Rng rng(bits * 131);
    for (int i = 0; i < 2000; ++i) {
        const double x = rng.uniform(-1.0, 1.0);
        const double q = codec.quantize(x);
        EXPECT_LE(std::fabs(q - x), 0.5 * codec.lsb() + 1e-12);
        // Idempotence: representable values survive re-encoding exactly.
        EXPECT_DOUBLE_EQ(codec.quantize(q), q);
    }
}

INSTANTIATE_TEST_SUITE_P(Bits, CodecRoundTrip, ::testing::Values(2u, 4u, 6u, 8u, 12u, 16u));

TEST(SignMagCodecTest, SignSymmetry) {
    SignMagCodec codec(8);
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
        const double x = rng.uniform(0.0, 1.0);
        EXPECT_DOUBLE_EQ(codec.quantize(x), -codec.quantize(-x));
    }
}

TEST(SignMagCodecTest, EncodeAllMatchesEncode) {
    SignMagCodec codec(6);
    const std::vector<double> xs{-1.0, -0.3, 0.0, 0.77, 1.0};
    const auto codes = codec.encode_all(xs);
    ASSERT_EQ(codes.size(), xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        EXPECT_EQ(codes[i].magnitude, codec.encode(xs[i]).magnitude);
        EXPECT_EQ(codes[i].negative, codec.encode(xs[i]).negative);
    }
}

}  // namespace
}  // namespace ams::quant
