#include "energy/adc_survey.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "energy/adc_energy.hpp"

namespace ams::energy {
namespace {

TEST(AdcSurveyTest, PopulationRespectsLowerBound) {
    SurveyOptions opts;
    opts.designs = 2000;
    const auto survey = generate_survey(opts);
    ASSERT_EQ(survey.size(), 2000u);
    for (const AdcDesign& d : survey) {
        EXPECT_GE(d.energy_per_sample_pj, adc_energy_lower_bound_pj(d.enob) * (1.0 - 1e-12))
            << "design at ENOB " << d.enob;
    }
}

TEST(AdcSurveyTest, DeterministicForSeed) {
    SurveyOptions opts;
    opts.designs = 50;
    const auto a = generate_survey(opts);
    const auto b = generate_survey(opts);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].enob, b[i].enob);
        EXPECT_DOUBLE_EQ(a[i].energy_per_sample_pj, b[i].energy_per_sample_pj);
    }
    opts.seed = 999;
    const auto c = generate_survey(opts);
    EXPECT_NE(a[0].enob, c[0].enob);
}

TEST(AdcSurveyTest, FieldsWithinConfiguredRanges) {
    SurveyOptions opts;
    opts.designs = 500;
    const auto survey = generate_survey(opts);
    for (const AdcDesign& d : survey) {
        EXPECT_GE(d.enob, opts.enob_min);
        EXPECT_LE(d.enob, opts.enob_max);
        EXPECT_GE(d.year, opts.year_min);
        EXPECT_LE(d.year, opts.year_max);
        EXPECT_FALSE(d.architecture.empty());
    }
}

TEST(AdcSurveyTest, EnvelopeHugsTheBoundSomewhere) {
    // State-of-the-art designs exist: in a large population, some bins'
    // envelope should come within a factor ~3 of the theoretical bound.
    SurveyOptions opts;
    opts.designs = 3000;
    const auto survey = generate_survey(opts);
    const auto envelope = survey_envelope(survey, 1.0);
    ASSERT_FALSE(envelope.empty());
    std::size_t tight_bins = 0;
    for (const EnvelopePoint& p : envelope) {
        if (p.energy_pj < 3.0 * adc_energy_lower_bound_pj(p.enob)) ++tight_bins;
    }
    EXPECT_GE(tight_bins, envelope.size() / 3);
}

TEST(AdcSurveyTest, NewerDesignsAreMoreEfficientOnAverage) {
    SurveyOptions opts;
    opts.designs = 4000;
    const auto survey = generate_survey(opts);
    double old_excess = 0.0, new_excess = 0.0;
    std::size_t old_n = 0, new_n = 0;
    for (const AdcDesign& d : survey) {
        const double excess =
            std::log10(d.energy_per_sample_pj / adc_energy_lower_bound_pj(d.enob));
        if (d.year < 2005) {
            old_excess += excess;
            ++old_n;
        } else if (d.year > 2013) {
            new_excess += excess;
            ++new_n;
        }
    }
    ASSERT_GT(old_n, 100u);
    ASSERT_GT(new_n, 100u);
    EXPECT_GT(old_excess / old_n, new_excess / new_n);
}

TEST(AdcSurveyTest, EnvelopeBinsAreSorted) {
    SurveyOptions opts;
    opts.designs = 300;
    const auto envelope = survey_envelope(generate_survey(opts), 0.5);
    for (std::size_t i = 1; i < envelope.size(); ++i) {
        EXPECT_LT(envelope[i - 1].enob, envelope[i].enob);
    }
}

TEST(AdcSurveyTest, ValidatesOptions) {
    SurveyOptions bad;
    bad.designs = 0;
    EXPECT_THROW((void)generate_survey(bad), std::invalid_argument);
    SurveyOptions bad_range;
    bad_range.enob_min = 10.0;
    bad_range.enob_max = 5.0;
    EXPECT_THROW((void)generate_survey(bad_range), std::invalid_argument);
    EXPECT_THROW((void)survey_envelope({}, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace ams::energy
