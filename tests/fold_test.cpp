#include "models/fold.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "models/blocks.hpp"

namespace ams::models {
namespace {

LayerCommon fp32_common() {
    LayerCommon c;
    c.bits_w = quant::kFloatBits;
    c.bits_x = quant::kFloatBits;
    return c;
}

std::unique_ptr<ConvUnit> trained_unit(Rng& rng) {
    nn::Conv2dOptions opts{3, 4, 3, 1, 1, false};
    LayerCommon c = fp32_common();
    auto unit = std::make_unique<ConvUnit>(opts, c.bits_w, c.vmac, /*ams_enabled=*/false, rng,
                                           c.mode, 1);
    // Run a few training forwards so batch norm accumulates non-trivial
    // running statistics and non-default gamma/beta.
    unit->set_training(true);
    unit->bn().gamma().value.fill_uniform(rng, 0.7f, 1.3f);
    unit->bn().beta().value.fill_uniform(rng, -0.3f, 0.3f);
    for (int i = 0; i < 20; ++i) {
        Tensor x(Shape{4, 3, 6, 6});
        x.fill_normal(rng, 0.2f, 1.0f);
        (void)unit->forward(x);
    }
    unit->set_training(false);
    return unit;
}

TEST(FoldTest, FoldedConvMatchesUnitInEvalMode) {
    Rng rng(1);
    auto unit = trained_unit(rng);
    const FoldedConv folded = fold_conv_bn(*unit);

    Tensor x(Shape{2, 3, 6, 6});
    x.fill_normal(rng, 0.2f, 1.0f);
    Tensor expected = unit->forward(x);  // eval mode: conv + BN(running)
    Tensor got = apply_folded(folded, x, 1, 1);
    ASSERT_EQ(got.shape(), expected.shape());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i], expected[i], 2e-4f) << "at " << i;
    }
}

TEST(FoldTest, BiasAbsorbsRunningMean) {
    Rng rng(2);
    auto unit = trained_unit(rng);
    const FoldedConv folded = fold_conv_bn(*unit);
    // Zero input: conv output is 0, so unit output is the BN affine of
    // -running_mean, which must equal the folded bias.
    Tensor zero(Shape{1, 3, 6, 6}, 0.0f);
    Tensor expected = unit->forward(zero);
    Tensor got = apply_folded(folded, zero, 1, 1);
    for (std::size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], expected[i], 2e-4f);
    // And the bias itself matches the closed form.
    for (std::size_t oc = 0; oc < 4; ++oc) {
        const float inv_std = 1.0f / std::sqrt(unit->bn().running_var()[oc] + 1e-5f);
        const float expected_bias =
            unit->bn().beta().value[oc] -
            unit->bn().gamma().value[oc] * unit->bn().running_mean()[oc] * inv_std;
        EXPECT_NEAR(folded.bias[oc], expected_bias, 1e-5f);
    }
}

TEST(FoldTest, RefusesToFoldWithActiveInjector) {
    Rng rng(3);
    nn::Conv2dOptions opts{2, 2, 1, 1, 0, false};
    LayerCommon c = fp32_common();
    ConvUnit unit(opts, c.bits_w, c.vmac, /*ams_enabled=*/true, rng, c.mode, 1);
    EXPECT_THROW((void)fold_conv_bn(unit), std::invalid_argument);
    unit.injector().set_enabled(false);
    EXPECT_NO_THROW((void)fold_conv_bn(unit));
}

TEST(FoldTest, ApplyFoldedValidatesShapes) {
    FoldedConv folded{Tensor(Shape{2, 3, 3, 3}), Tensor(Shape{2})};
    Tensor bad(Shape{3, 6, 6});
    EXPECT_THROW((void)apply_folded(folded, bad, 1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace ams::models
