#include "nn/linear.hpp"

#include <gtest/gtest.h>

#include "nn/gradcheck.hpp"

namespace ams::nn {
namespace {

TEST(LinearTest, ForwardComputesAffineMap) {
    Rng rng(1);
    Linear lin(2, 3, rng, /*bias=*/true);
    // W = [[1,2],[3,4],[5,6]], b = [0.5, -0.5, 1]
    lin.weight().value = Tensor::from_data(Shape{3, 2}, {1, 2, 3, 4, 5, 6});
    lin.bias_param().value = Tensor::from_data(Shape{3}, {0.5f, -0.5f, 1.0f});
    Tensor x = Tensor::from_data(Shape{1, 2}, {1, 1});
    Tensor y = lin.forward(x);
    EXPECT_FLOAT_EQ(y[0], 3.5f);
    EXPECT_FLOAT_EQ(y[1], 6.5f);
    EXPECT_FLOAT_EQ(y[2], 12.0f);
}

TEST(LinearTest, NoBiasVariant) {
    Rng rng(2);
    Linear lin(2, 1, rng, /*bias=*/false);
    lin.weight().value = Tensor::from_data(Shape{1, 2}, {2, -1});
    Tensor x = Tensor::from_data(Shape{2, 2}, {1, 1, 3, 0});
    Tensor y = lin.forward(x);
    EXPECT_FLOAT_EQ(y[0], 1.0f);
    EXPECT_FLOAT_EQ(y[1], 6.0f);
    EXPECT_EQ(lin.parameters().size(), 1u);
}

TEST(LinearTest, GradcheckInputAndParams) {
    Rng rng(3);
    Linear lin(5, 4, rng);
    Tensor x(Shape{3, 5});
    x.fill_uniform(rng, -1.0f, 1.0f);
    const auto gi = check_input_gradient(lin, x, rng, 1e-2);
    EXPECT_LT(gi.max_rel_error, 1e-2);
    const auto gp = check_parameter_gradients(lin, x, rng, 1e-2);
    EXPECT_LT(gp.max_rel_error, 1e-2);
}

TEST(LinearTest, EffectiveWeightSubstitution) {
    Rng rng(4);
    Linear lin(1, 1, rng, /*bias=*/false);
    lin.weight().value[0] = 5.0f;
    Tensor sub(Shape{1, 1});
    sub[0] = -1.0f;
    lin.set_effective_weight(sub);
    Tensor x = Tensor::from_data(Shape{1, 1}, {2});
    EXPECT_FLOAT_EQ(lin.forward(x)[0], -2.0f);
    lin.clear_effective_weight();
    EXPECT_FLOAT_EQ(lin.forward(x)[0], 10.0f);
}

TEST(LinearTest, ShapeValidation) {
    Rng rng(5);
    EXPECT_THROW(Linear(0, 3, rng), std::invalid_argument);
    Linear lin(4, 2, rng);
    Tensor bad(Shape{2, 3});
    EXPECT_THROW((void)lin.forward(bad), std::invalid_argument);
}

TEST(LinearTest, BackwardBeforeForwardThrows) {
    Rng rng(6);
    Linear lin(2, 2, rng);
    Tensor g(Shape{1, 2});
    EXPECT_THROW((void)lin.backward(g), std::logic_error);
}

TEST(LinearTest, NTotIsInFeatures) {
    Rng rng(7);
    Linear lin(128, 10, rng);
    EXPECT_EQ(lin.n_tot(), 128u);
}

}  // namespace
}  // namespace ams::nn
