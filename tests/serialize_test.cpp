#include "tensor/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

namespace ams {
namespace {

TEST(SerializeTest, TensorRoundTrip) {
    Rng rng(1);
    Tensor t(Shape{3, 4, 5});
    t.fill_uniform(rng, -10.0f, 10.0f);
    std::stringstream ss;
    save_tensor(ss, t);
    Tensor u = load_tensor(ss);
    ASSERT_EQ(u.shape(), t.shape());
    for (std::size_t i = 0; i < t.size(); ++i) EXPECT_FLOAT_EQ(u[i], t[i]);
}

TEST(SerializeTest, ScalarTensorRoundTrip) {
    Tensor t(Shape{std::vector<std::size_t>{}});
    t[0] = 3.25f;
    std::stringstream ss;
    save_tensor(ss, t);
    Tensor u = load_tensor(ss);
    EXPECT_EQ(u.rank(), 0u);
    EXPECT_FLOAT_EQ(u[0], 3.25f);
}

TEST(SerializeTest, BadMagicRejected) {
    std::stringstream ss;
    ss << "this is not a tensor";
    EXPECT_THROW((void)load_tensor(ss), std::runtime_error);
}

TEST(SerializeTest, TruncatedDataRejected) {
    Tensor t(Shape{100});
    std::stringstream ss;
    save_tensor(ss, t);
    std::string payload = ss.str();
    payload.resize(payload.size() / 2);
    std::stringstream truncated(payload);
    EXPECT_THROW((void)load_tensor(truncated), std::runtime_error);
}

TEST(SerializeTest, MapRoundTripPreservesNamesAndShapes) {
    Rng rng(2);
    TensorMap map;
    map["layer0.weight"] = Tensor(Shape{4, 3});
    map["layer0.weight"].fill_uniform(rng, -1, 1);
    map["bn.running_mean"] = Tensor(Shape{7}, 0.5f);
    std::stringstream ss;
    save_tensor_map(ss, map);
    TensorMap loaded = load_tensor_map(ss);
    ASSERT_EQ(loaded.size(), 2u);
    ASSERT_TRUE(loaded.count("layer0.weight"));
    ASSERT_TRUE(loaded.count("bn.running_mean"));
    EXPECT_EQ(loaded["layer0.weight"].shape(), Shape({4, 3}));
    for (std::size_t i = 0; i < 12; ++i) {
        EXPECT_FLOAT_EQ(loaded["layer0.weight"][i], map["layer0.weight"][i]);
    }
}

TEST(SerializeTest, EmptyMapRoundTrip) {
    std::stringstream ss;
    save_tensor_map(ss, {});
    EXPECT_TRUE(load_tensor_map(ss).empty());
}

TEST(SerializeTest, FileRoundTrip) {
    const std::string path =
        (std::filesystem::temp_directory_path() / "amsnet_serialize_test.bin").string();
    TensorMap map;
    map["x"] = Tensor(Shape{2, 2}, 9.0f);
    save_tensor_map_file(path, map);
    TensorMap loaded = load_tensor_map_file(path);
    EXPECT_FLOAT_EQ(loaded["x"][3], 9.0f);
    std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileThrows) {
    EXPECT_THROW((void)load_tensor_map_file("/nonexistent/dir/nope.bin"), std::runtime_error);
}

}  // namespace
}  // namespace ams
