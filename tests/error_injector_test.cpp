#include "ams/error_injector.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ams::vmac {
namespace {

VmacConfig cfg(double enob, std::size_t nmult) {
    VmacConfig c;
    c.enob = enob;
    c.nmult = nmult;
    return c;
}

TEST(ErrorInjectorTest, DisabledIsExactPassThrough) {
    ErrorInjector inj(cfg(8.0, 8), 72, Rng(1));
    inj.set_enabled(false);
    Tensor x(Shape{4, 4}, 0.5f);
    Tensor y = inj.forward(x);
    for (std::size_t i = 0; i < y.size(); ++i) EXPECT_FLOAT_EQ(y[i], 0.5f);
}

TEST(ErrorInjectorTest, BackwardIsIdentity) {
    ErrorInjector inj(cfg(8.0, 8), 72, Rng(2));
    Tensor g(Shape{3, 3}, 2.5f);
    Tensor gx = inj.backward(g);
    for (std::size_t i = 0; i < gx.size(); ++i) EXPECT_FLOAT_EQ(gx[i], 2.5f);
}

struct VarCase {
    double enob;
    std::size_t nmult;
    std::size_t ntot;
    InjectionMode mode;
};

class InjectedVariance : public ::testing::TestWithParam<VarCase> {};

TEST_P(InjectedVariance, EmpiricalVarianceMatchesEquationTwo) {
    const auto p = GetParam();
    ErrorInjector inj(cfg(p.enob, p.nmult), p.ntot, Rng(42), p.mode);
    Tensor x(Shape{200, 250});  // 50k samples
    Tensor y = inj.forward(x);
    Tensor err = y - x;
    const double expected = total_error_variance(cfg(p.enob, p.nmult), p.ntot);
    EXPECT_NEAR(err.mean(), 0.0, 4.0 * std::sqrt(expected / 5e4));
    // Per-VMAC uniform mode sums ceil(Ntot/Nmult) uniforms, so its variance
    // is ceil(Ntot/Nmult) * LSB^2/12 — equal to Eq. 2 when Nmult | Ntot.
    EXPECT_NEAR(err.variance() / expected, 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, InjectedVariance,
    ::testing::Values(VarCase{8.0, 8, 72, InjectionMode::kLumpedGaussian},
                      VarCase{6.0, 8, 32, InjectionMode::kLumpedGaussian},
                      VarCase{10.0, 16, 1152, InjectionMode::kLumpedGaussian},
                      VarCase{8.0, 8, 72, InjectionMode::kPerVmacUniform},
                      VarCase{6.0, 4, 64, InjectionMode::kPerVmacUniform}));

TEST(ErrorInjectorTest, PerVmacModeApproachesNormality) {
    // With many VMACs per output the summed-uniform error should have
    // normal-like tails: |err| beyond 3 sigma should be rare but present.
    ErrorInjector inj(cfg(8.0, 8), 512, Rng(7), InjectionMode::kPerVmacUniform);
    Tensor x(Shape{100000});
    Tensor err = inj.forward(x) - x;
    const double sigma = total_error_stddev(cfg(8.0, 8), 512);
    std::size_t beyond2 = 0;
    for (std::size_t i = 0; i < err.size(); ++i) {
        if (std::fabs(err[i]) > 2.0 * sigma) ++beyond2;
    }
    const double frac = static_cast<double>(beyond2) / static_cast<double>(err.size());
    EXPECT_NEAR(frac, 0.0455, 0.01);  // normal two-sided 2-sigma mass
}

TEST(ErrorInjectorTest, SetConfigRetunesNoise) {
    ErrorInjector inj(cfg(6.0, 8), 72, Rng(3));
    const double sigma_before = inj.error_stddev();
    inj.set_config(cfg(8.0, 8));
    EXPECT_NEAR(inj.error_stddev() / sigma_before, 0.25, 1e-9);
}

TEST(ErrorInjectorTest, ValidatesArguments) {
    EXPECT_THROW(ErrorInjector(cfg(0.0, 8), 72, Rng(1)), std::invalid_argument);
    EXPECT_THROW(ErrorInjector(cfg(8.0, 8), 0, Rng(1)), std::invalid_argument);
    ErrorInjector inj(cfg(8.0, 8), 72, Rng(1));
    EXPECT_THROW(inj.set_config(cfg(-2.0, 8)), std::invalid_argument);
}

TEST(ErrorInjectorTest, DeterministicGivenSameRngState) {
    ErrorInjector a(cfg(8.0, 8), 72, Rng(99));
    ErrorInjector b(cfg(8.0, 8), 72, Rng(99));
    Tensor x(Shape{32}, 1.0f);
    Tensor ya = a.forward(x);
    Tensor yb = b.forward(x);
    for (std::size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

}  // namespace
}  // namespace ams::vmac
