#include "ams/vmac_cell.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ams/error_model.hpp"

namespace ams::vmac {
namespace {

VmacConfig cfg(double enob, std::size_t nmult, Accumulation acc = Accumulation::kSum) {
    VmacConfig c;
    c.enob = enob;
    c.nmult = nmult;
    c.accumulation = acc;
    return c;
}

std::vector<double> random_vec(std::size_t n, Rng& rng, double lo = -1.0, double hi = 1.0) {
    std::vector<double> v(n);
    for (double& x : v) x = rng.uniform(lo, hi);
    return v;
}

TEST(VmacCellTest, NoiselessErrorBoundedByHalfLsb) {
    VmacCell cell(cfg(10.0, 8));
    Rng rng(1);
    for (int trial = 0; trial < 200; ++trial) {
        const auto w = random_vec(8, rng);
        auto x = random_vec(8, rng, 0.0, 1.0);
        const double ideal = cell.dot_ideal(w, x);
        const double got = cell.dot(w, x, rng);
        EXPECT_LE(std::fabs(got - ideal), 0.5 * cell.adc_lsb() + 1e-12);
    }
}

TEST(VmacCellTest, AdcLsbMatchesErrorModel) {
    const VmacConfig c = cfg(9.5, 16);
    VmacCell cell(c);
    EXPECT_NEAR(cell.adc_lsb(), vmac_lsb(c), 1e-12);
}

class VmacVarianceMatchesModel : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {
};

// The empirical conversion-error variance of the bit-exact cell must match
// LSB^2/12 — the statistical model's Eq. 1 — validating the lumping.
TEST_P(VmacVarianceMatchesModel, EmpiricalVarianceNearLsbSqOver12) {
    const auto [enob, nmult] = GetParam();
    const VmacConfig c = cfg(enob, nmult);
    VmacCell cell(c);
    Rng rng(33);
    const int trials = 20000;
    double sq = 0.0, sum = 0.0;
    for (int t = 0; t < trials; ++t) {
        const auto w = random_vec(nmult, rng);
        const auto x = random_vec(nmult, rng, 0.0, 1.0);
        const double err = cell.dot(w, x, rng) - cell.dot_ideal(w, x);
        sum += err;
        sq += err * err;
    }
    const double mean = sum / trials;
    const double var = sq / trials - mean * mean;
    const double expected = vmac_error_variance(c);
    EXPECT_NEAR(var / expected, 1.0, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Grid, VmacVarianceMatchesModel,
                         ::testing::Values(std::make_tuple(8.0, std::size_t{8}),
                                           std::make_tuple(10.0, std::size_t{8}),
                                           std::make_tuple(9.0, std::size_t{16}),
                                           std::make_tuple(7.0, std::size_t{4})));

TEST(VmacCellTest, SumAndAverageModesAgree) {
    // Sec. 2: averaging just moves the binary point; after the digital
    // rescale the two hardware styles inject identical relative error.
    Rng rng(5);
    VmacCell sum_cell(cfg(10.0, 8, Accumulation::kSum));
    VmacCell avg_cell(cfg(10.0, 8, Accumulation::kAverage));
    for (int t = 0; t < 100; ++t) {
        const auto w = random_vec(8, rng);
        const auto x = random_vec(8, rng, 0.0, 1.0);
        Rng r1(1000 + t), r2(1000 + t);
        EXPECT_NEAR(sum_cell.dot(w, x, r1), avg_cell.dot(w, x, r2), 1e-9);
    }
}

TEST(VmacCellTest, TiledDotAccumulatesDigitally) {
    VmacCell cell(cfg(12.0, 8));
    Rng rng(6);
    const auto w = random_vec(72, rng);
    const auto x = random_vec(72, rng, 0.0, 1.0);
    double ideal = 0.0;
    for (std::size_t start = 0; start < 72; start += 8) {
        ideal += cell.dot_ideal(std::span(w).subspan(start, 8),
                                std::span(x).subspan(start, 8));
    }
    const double got = cell.dot_tiled(w, x, rng);
    // 9 tiles, each within LSB/2.
    EXPECT_LE(std::fabs(got - ideal), 9.0 * 0.5 * cell.adc_lsb() + 1e-12);
}

TEST(VmacCellTest, OperandQuantizationUsesConfiguredBits) {
    VmacConfig c = cfg(14.0, 2);
    c.bits_w = 2;  // weights in {-1, 0, 1}
    c.bits_x = 8;
    VmacCell cell(c);
    const std::vector<double> w{0.6, -0.2};
    const std::vector<double> x{1.0, 1.0};
    // w quantizes to {1, 0} -> ideal dot = 1.
    EXPECT_NEAR(cell.dot_ideal(w, x), 1.0, 1e-12);
}

TEST(VmacCellTest, EffectiveEnobDegradesWithThermalNoise) {
    const VmacConfig c = cfg(12.0, 8);
    VmacCell clean(c);
    AnalogOptions noisy;
    noisy.adc_noise_sigma = 4.0 * vmac_lsb(c);  // dominate quantization
    VmacCell cell(c, noisy);
    EXPECT_NEAR(clean.effective_enob(), 12.0, 1e-9);
    EXPECT_LT(cell.effective_enob(), 9.0);
}

TEST(VmacCellTest, EffectiveEnobCompositionFormula) {
    const VmacConfig c = cfg(10.0, 8);
    AnalogOptions a;
    a.adc_noise_sigma = vmac_lsb(c) / std::sqrt(12.0);  // equal variance
    VmacCell cell(c, a);
    // Doubling the variance costs half a bit.
    EXPECT_NEAR(cell.effective_enob(), 10.0 - 0.5, 1e-6);
}

TEST(VmacCellTest, ClippingAtReducedReference) {
    AnalogOptions a;
    a.reference_scale = 0.25;
    VmacCell cell(cfg(12.0, 8), a);
    std::vector<double> w(8, 1.0), x(8, 1.0);  // dot = 8, ref = 2
    Rng rng(9);
    EXPECT_NEAR(cell.dot(w, x, rng), 2.0, 1e-9);
}

TEST(VmacCellTest, ValidatesInputs) {
    VmacCell cell(cfg(10.0, 4));
    Rng rng(1);
    std::vector<double> w(5, 0.0), x(5, 0.0);
    EXPECT_THROW((void)cell.dot(w, x, rng), std::invalid_argument);  // > nmult
    std::vector<double> short_x(3, 0.0);
    std::vector<double> w4(4, 0.0);
    EXPECT_THROW((void)cell.dot(w4, short_x, rng), std::invalid_argument);
    AnalogOptions bad;
    bad.reference_scale = 0.0;
    EXPECT_THROW(VmacCell(cfg(10.0, 4), bad), std::invalid_argument);
    AnalogOptions neg;
    neg.adc_noise_sigma = -1.0;
    EXPECT_THROW(VmacCell(cfg(10.0, 4), neg), std::invalid_argument);
}

TEST(VmacCellTest, MultiplierNoisePropagates) {
    AnalogOptions a;
    a.multiplier_noise_sigma = 0.01;
    VmacCell cell(cfg(16.0, 8), a);  // fine ADC: noise dominates
    Rng rng(11);
    const std::vector<double> w(8, 0.5), x(8, 0.5);
    const double ideal = cell.dot_ideal(w, x);
    double sq = 0.0;
    const int trials = 5000;
    for (int t = 0; t < trials; ++t) {
        const double err = cell.dot(w, x, rng) - ideal;
        sq += err * err;
    }
    // Variance ~ 8 * 0.01^2 (8 independent multiplier noise sources).
    EXPECT_NEAR(sq / trials, 8.0 * 1e-4, 2e-5);
}

}  // namespace
}  // namespace ams::vmac
