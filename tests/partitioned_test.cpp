#include "ams/partitioned.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ams/error_model.hpp"

namespace ams::vmac {
namespace {

VmacConfig cfg(std::size_t nmult, std::size_t bw = 9, std::size_t bx = 9) {
    VmacConfig c;
    c.enob = 12.0;
    c.nmult = nmult;
    c.bits_w = bw;
    c.bits_x = bx;
    return c;
}

std::vector<double> random_vec(std::size_t n, Rng& rng, double lo = -1.0, double hi = 1.0) {
    std::vector<double> v(n);
    for (double& x : v) x = rng.uniform(lo, hi);
    return v;
}

TEST(PartitionedTest, RequiresEvenChunking) {
    // 9-bit operands have 8 magnitude bits: divisible by 2 and 4, not 3.
    PartitionOptions opt;
    opt.nw = 3;
    opt.nx = 2;
    EXPECT_THROW(PartitionedVmac(cfg(8), opt), std::invalid_argument);
    opt.nw = 2;
    EXPECT_NO_THROW(PartitionedVmac(cfg(8), opt));
    opt.nx = 0;
    EXPECT_THROW(PartitionedVmac(cfg(8), opt), std::invalid_argument);
}

TEST(PartitionedTest, HighResolutionPartialsReconstructExactly) {
    // With very fine partial ADCs the shift-and-add must reproduce the
    // exact operand-quantized product: the partitioning itself is lossless.
    PartitionOptions opt;
    opt.nw = 2;
    opt.nx = 2;
    opt.enob_partial = 24.0;
    PartitionedVmac pv(cfg(8), opt);
    Rng rng(1);
    for (int t = 0; t < 200; ++t) {
        const auto w = random_vec(8, rng);
        const auto x = random_vec(8, rng, 0.0, 1.0);
        EXPECT_NEAR(pv.dot(w, x, rng), pv.dot_ideal(w, x), 1e-6);
    }
}

TEST(PartitionedTest, ConversionsPerVmacIsNwTimesNx) {
    PartitionOptions opt;
    opt.nw = 2;
    opt.nx = 4;
    EXPECT_EQ(PartitionedVmac(cfg(8), opt).conversions_per_vmac(), 8u);
}

TEST(PartitionedTest, LowerResolutionAdcStillBeatsMonolithic) {
    // Paper Sec. 4 method 1: partial products have smaller full precision,
    // so a lower-resolution ADC can inject less total error than one
    // high-resolution conversion of the whole product.
    const std::size_t nmult = 8;
    Rng rng(2);
    PartitionOptions opt;
    opt.nw = 2;
    opt.nx = 2;
    opt.enob_partial = 8.0;  // 4 conversions at 8b
    PartitionedVmac pv(cfg(nmult), opt);
    VmacConfig mono_cfg = cfg(nmult);
    mono_cfg.enob = 8.0;  // one conversion at the same 8b resolution
    VmacCell mono(mono_cfg);

    double pv_sq = 0.0, mono_sq = 0.0;
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
        const auto w = random_vec(nmult, rng);
        const auto x = random_vec(nmult, rng, 0.0, 1.0);
        const double ideal = pv.dot_ideal(w, x);
        const double pe = pv.dot(w, x, rng) - ideal;
        pv_sq += pe * pe;
        const double me = mono.dot(w, x, rng) - mono.dot_ideal(w, x);
        mono_sq += me * me;
    }
    EXPECT_LT(pv_sq, mono_sq);
}

TEST(PartitionedTest, SignificanceDiscountReducesPartialEnob) {
    PartitionOptions opt;
    opt.nw = 2;
    opt.nx = 2;
    opt.enob_partial = 10.0;
    opt.significance_drop = 2.0;
    opt.min_enob = 5.0;
    PartitionedVmac pv(cfg(8), opt);
    EXPECT_DOUBLE_EQ(pv.partial_enob(0, 0), 10.0);
    EXPECT_DOUBLE_EQ(pv.partial_enob(0, 1), 8.0);
    EXPECT_DOUBLE_EQ(pv.partial_enob(1, 1), 6.0);
    // Floor applies.
    opt.significance_drop = 4.0;
    PartitionedVmac pv2(cfg(8), opt);
    EXPECT_DOUBLE_EQ(pv2.partial_enob(1, 1), 5.0);
}

TEST(PartitionedTest, DiscountedLowSignificanceCostsLittleError) {
    // Cutting resolution of low-significance partials should barely move
    // the total error (their digital weight is tiny).
    const std::size_t nmult = 8;
    Rng rng(3);
    PartitionOptions full;
    full.nw = 2;
    full.nx = 2;
    full.enob_partial = 10.0;
    PartitionOptions discounted = full;
    discounted.significance_drop = 1.5;
    discounted.min_enob = 5.0;

    PartitionedVmac pv_full(cfg(nmult), full);
    PartitionedVmac pv_disc(cfg(nmult), discounted);
    double full_sq = 0.0, disc_sq = 0.0;
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
        const auto w = random_vec(nmult, rng);
        const auto x = random_vec(nmult, rng, 0.0, 1.0);
        const double ideal = pv_full.dot_ideal(w, x);
        const double fe = pv_full.dot(w, x, rng) - ideal;
        full_sq += fe * fe;
        const double de = pv_disc.dot(w, x, rng) - ideal;
        disc_sq += de * de;
    }
    EXPECT_LT(disc_sq, 4.0 * full_sq);
}

TEST(PartitionedTest, OperandCountValidation) {
    PartitionOptions opt;
    opt.nw = 2;
    opt.nx = 2;
    PartitionedVmac pv(cfg(4), opt);
    Rng rng(4);
    std::vector<double> w(5, 0.0), x(5, 0.0);
    EXPECT_THROW((void)pv.dot(w, x, rng), std::invalid_argument);
}

}  // namespace
}  // namespace ams::vmac
