// Serving concurrency stress: many client threads against a small
// instance pool, shutdown racing in-flight submissions, idempotent
// shutdown. Designed to run under ThreadSanitizer (CI tsan job) — the
// assertions here are "no lost request, no data race", not performance.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "data/synthetic_imagenet.hpp"
#include "models/resnet.hpp"

namespace ams::serve {
namespace {

data::DatasetOptions tiny_data() {
    data::DatasetOptions o;
    o.classes = 4;
    o.train_per_class = 2;
    o.val_per_class = 4;
    o.image_size = 8;
    o.seed = 77;
    return o;
}

models::LayerCommon quant_common() {
    models::LayerCommon c;
    c.bits_w = 8;
    c.bits_x = 8;
    return c;
}

TEST(ServeStressTest, ConcurrentClientsLoseNoRequest) {
    data::SyntheticImageNet ds(tiny_data());
    models::ResNet primary(models::tiny_resnet_config(quant_common()));
    const Tensor& images = ds.val_images();
    const Shape chw{images.dim(1), images.dim(2), images.dim(3)};
    const std::size_t n_images = images.dim(0);
    const std::size_t image_floats = chw.numel();

    ServerOptions options;
    options.instances = 3;
    options.max_batch = 4;
    options.max_delay_us = 200;
    InferenceServer server(primary, chw, options);

    constexpr std::size_t kClients = 8;
    constexpr std::size_t kPerClient = 24;
    std::atomic<std::size_t> ok{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            for (std::size_t i = 0; i < kPerClient; ++i) {
                const float* image = images.data() + ((c + i) % n_images) * image_floats;
                const InferenceResult result = server.submit(image).get();
                if (result.logits.size() == 4 && result.predicted < 4) {
                    ok.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (std::thread& t : clients) t.join();
    server.shutdown();

    EXPECT_EQ(ok.load(), kClients * kPerClient);
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.submitted, kClients * kPerClient);
    EXPECT_EQ(stats.completed, kClients * kPerClient);
    EXPECT_EQ(server.queue_depth(), 0u);
}

TEST(ServeStressTest, ShutdownRacingSubmissionsLosesNothing) {
    data::SyntheticImageNet ds(tiny_data());
    models::ResNet primary(models::tiny_resnet_config(quant_common()));
    const Tensor& images = ds.val_images();
    const Shape chw{images.dim(1), images.dim(2), images.dim(3)};
    const std::size_t image_floats = chw.numel();

    ServerOptions options;
    options.instances = 2;
    options.max_batch = 4;
    options.max_delay_us = 1000;
    InferenceServer server(primary, chw, options);

    // Clients hammer submit while another thread shuts the server down:
    // every submit either returns a future that completes, or throws the
    // documented runtime_error — nothing hangs, nothing is dropped.
    constexpr std::size_t kClients = 6;
    std::atomic<std::size_t> accepted{0};
    std::atomic<std::size_t> completed{0};
    std::atomic<std::size_t> rejected{0};
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            std::vector<std::future<InferenceResult>> futures;
            for (std::size_t i = 0; i < 40; ++i) {
                try {
                    futures.push_back(server.submit(images.data() + (c % 4) * image_floats));
                    accepted.fetch_add(1, std::memory_order_relaxed);
                } catch (const std::runtime_error&) {
                    rejected.fetch_add(1, std::memory_order_relaxed);
                    break;  // server is stopping; later submits also throw
                }
            }
            for (auto& f : futures) {
                (void)f.get();
                completed.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    // Let some traffic through, then shut down concurrently from two
    // threads (shutdown is idempotent and thread-safe).
    std::thread closer_a([&] { server.shutdown(); });
    std::thread closer_b([&] { server.shutdown(); });
    closer_a.join();
    closer_b.join();
    for (std::thread& t : clients) t.join();

    EXPECT_EQ(completed.load(), accepted.load());
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.submitted, accepted.load());
    EXPECT_EQ(stats.completed, accepted.load());
    EXPECT_EQ(server.queue_depth(), 0u);

    // And shutdown again after the fact is a no-op.
    server.shutdown();
}

TEST(ServeStressTest, DestructorDrainsWithoutExplicitShutdown) {
    data::SyntheticImageNet ds(tiny_data());
    models::ResNet primary(models::tiny_resnet_config(quant_common()));
    const Tensor& images = ds.val_images();
    const Shape chw{images.dim(1), images.dim(2), images.dim(3)};

    std::vector<std::future<InferenceResult>> futures;
    {
        ServerOptions options;
        options.instances = 2;
        options.max_batch = 8;
        options.max_delay_us = 100000;
        InferenceServer server(primary, chw, options);
        for (std::size_t i = 0; i < 12; ++i) {
            futures.push_back(server.submit(images.data() + (i % 4) * chw.numel()));
        }
    }  // ~InferenceServer drains
    for (auto& f : futures) EXPECT_NO_THROW((void)f.get());
}

}  // namespace
}  // namespace ams::serve
