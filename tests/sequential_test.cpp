#include "nn/sequential.hpp"

#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/gradcheck.hpp"
#include "nn/linear.hpp"

namespace ams::nn {
namespace {

TEST(SequentialTest, ChainsForward) {
    Rng rng(1);
    Sequential seq;
    auto& lin = seq.emplace<Linear>(2, 2, rng, false);
    seq.emplace<ReLU>();
    lin.weight().value = Tensor::from_data(Shape{2, 2}, {1, 0, 0, -1});
    Tensor x = Tensor::from_data(Shape{1, 2}, {3, 4});
    Tensor y = seq.forward(x);
    EXPECT_FLOAT_EQ(y[0], 3.0f);
    EXPECT_FLOAT_EQ(y[1], 0.0f);  // -4 clipped by ReLU
}

TEST(SequentialTest, CollectsParametersInOrder) {
    Rng rng(2);
    Sequential seq;
    seq.emplace<Linear>(3, 4, rng);
    seq.emplace<ReLU>();
    seq.emplace<Linear>(4, 2, rng);
    EXPECT_EQ(seq.parameters().size(), 4u);  // two weights + two biases
    EXPECT_EQ(seq.size(), 3u);
}

TEST(SequentialTest, BackwardChainsInReverse) {
    Rng rng(3);
    Sequential seq;
    seq.emplace<Linear>(3, 3, rng);
    seq.emplace<ReLU>();
    seq.emplace<Linear>(3, 2, rng);
    Tensor x(Shape{2, 3});
    x.fill_uniform(rng, 0.1f, 1.0f);
    const auto gi = check_input_gradient(seq, x, rng, 1e-2);
    EXPECT_LT(gi.max_rel_error, 2e-2);
    const auto gp = check_parameter_gradients(seq, x, rng, 1e-2);
    EXPECT_LT(gp.max_rel_error, 2e-2);
}

TEST(SequentialTest, TrainingFlagPropagates) {
    Rng rng(4);
    Sequential seq;
    auto& lin = seq.emplace<Linear>(2, 2, rng);
    seq.set_training(false);
    EXPECT_FALSE(lin.training());
    seq.set_training(true);
    EXPECT_TRUE(lin.training());
}

TEST(SequentialTest, StateRoundTrip) {
    Rng rng(5);
    Sequential seq;
    seq.emplace<Linear>(2, 3, rng);
    seq.emplace<Linear>(3, 1, rng);
    TensorMap state;
    seq.collect_state("net.", state);
    EXPECT_TRUE(state.count("net.0.weight"));
    EXPECT_TRUE(state.count("net.1.bias"));

    Sequential other;
    other.emplace<Linear>(2, 3, rng);
    other.emplace<Linear>(3, 1, rng);
    other.load_state("net.", state);
    Tensor x = Tensor::from_data(Shape{1, 2}, {0.3f, -0.7f});
    Tensor a = seq.forward(x);
    Tensor b = other.forward(x);
    EXPECT_FLOAT_EQ(a[0], b[0]);
}

TEST(SequentialTest, RejectsNullModule) {
    Sequential seq;
    EXPECT_THROW(seq.add(nullptr), std::invalid_argument);
}

TEST(SequentialTest, SetFrozenFreezesAll) {
    Rng rng(6);
    Sequential seq;
    seq.emplace<Linear>(2, 2, rng);
    seq.set_frozen(true);
    for (Parameter* p : seq.parameters()) EXPECT_TRUE(p->frozen);
    seq.set_frozen(false);
    for (Parameter* p : seq.parameters()) EXPECT_FALSE(p->frozen);
}

}  // namespace
}  // namespace ams::nn
