#include "train/checkpoint_cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace ams::train {
namespace {

namespace fs = std::filesystem;

class CheckpointCacheTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = (fs::temp_directory_path() / "amsnet_cache_test").string();
        fs::remove_all(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }
    std::string dir_;
};

TensorMap make_state(float value) {
    TensorMap m;
    m["w"] = Tensor(Shape{2, 2}, value);
    return m;
}

TEST_F(CheckpointCacheTest, ProducesOnFirstCallOnly) {
    int calls = 0;
    auto produce = [&calls] {
        ++calls;
        return make_state(1.0f);
    };
    const TensorMap a = cached_state(dir_, "key1", produce);
    EXPECT_EQ(calls, 1);
    const TensorMap b = cached_state(dir_, "key1", produce);
    EXPECT_EQ(calls, 1);  // served from disk
    EXPECT_FLOAT_EQ(b.at("w")[0], 1.0f);
}

TEST_F(CheckpointCacheTest, DistinctKeysAreIndependent) {
    int calls = 0;
    auto produce1 = [&calls] {
        ++calls;
        return make_state(1.0f);
    };
    auto produce2 = [&calls] {
        ++calls;
        return make_state(2.0f);
    };
    (void)cached_state(dir_, "a", produce1);
    const TensorMap b = cached_state(dir_, "b", produce2);
    EXPECT_EQ(calls, 2);
    EXPECT_FLOAT_EQ(b.at("w")[0], 2.0f);
}

TEST_F(CheckpointCacheTest, CorruptFileIsRegenerated) {
    (void)cached_state(dir_, "key", [] { return make_state(3.0f); });
    // Corrupt the cache file.
    const fs::path path = fs::path(dir_) / (sanitize_cache_key("key") + ".amsckpt");
    ASSERT_TRUE(fs::exists(path));
    std::ofstream(path.string(), std::ios::trunc) << "garbage";
    int calls = 0;
    const TensorMap m = cached_state(dir_, "key", [&calls] {
        ++calls;
        return make_state(4.0f);
    });
    EXPECT_EQ(calls, 1);
    EXPECT_FLOAT_EQ(m.at("w")[0], 4.0f);
}

TEST_F(CheckpointCacheTest, SanitizeReplacesUnsafeCharacters) {
    EXPECT_EQ(sanitize_cache_key("a/b c:d"), "a_b_c_d");
    EXPECT_EQ(sanitize_cache_key("Safe-Key_1.0"), "Safe-Key_1.0");
}

TEST_F(CheckpointCacheTest, DefaultDirHonorsEnvironment) {
    // Without the env var, the fallback name is returned.
    unsetenv("AMSNET_CACHE_DIR");
    EXPECT_EQ(default_cache_dir(), "amsnet_cache");
    setenv("AMSNET_CACHE_DIR", "/tmp/ckpt_env_test", 1);
    EXPECT_EQ(default_cache_dir(), "/tmp/ckpt_env_test");
    unsetenv("AMSNET_CACHE_DIR");
}

TEST_F(CheckpointCacheTest, NoCacheFlagBypassesReads) {
    int calls = 0;
    auto produce = [&calls] {
        ++calls;
        return make_state(5.0f);
    };
    (void)cached_state(dir_, "k", produce);
    setenv("AMSNET_NO_CACHE", "1", 1);
    (void)cached_state(dir_, "k", produce);
    unsetenv("AMSNET_NO_CACHE");
    EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace ams::train
