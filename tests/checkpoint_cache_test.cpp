#include "train/checkpoint_cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace ams::train {
namespace {

namespace fs = std::filesystem;

class CheckpointCacheTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = (fs::temp_directory_path() / "amsnet_cache_test").string();
        fs::remove_all(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }
    std::string dir_;
};

TensorMap make_state(float value) {
    TensorMap m;
    m["w"] = Tensor(Shape{2, 2}, value);
    return m;
}

TEST_F(CheckpointCacheTest, ProducesOnFirstCallOnly) {
    int calls = 0;
    auto produce = [&calls] {
        ++calls;
        return make_state(1.0f);
    };
    const TensorMap a = cached_state(dir_, "key1", produce);
    EXPECT_EQ(calls, 1);
    const TensorMap b = cached_state(dir_, "key1", produce);
    EXPECT_EQ(calls, 1);  // served from disk
    EXPECT_FLOAT_EQ(b.at("w")[0], 1.0f);
}

TEST_F(CheckpointCacheTest, DistinctKeysAreIndependent) {
    int calls = 0;
    auto produce1 = [&calls] {
        ++calls;
        return make_state(1.0f);
    };
    auto produce2 = [&calls] {
        ++calls;
        return make_state(2.0f);
    };
    (void)cached_state(dir_, "a", produce1);
    const TensorMap b = cached_state(dir_, "b", produce2);
    EXPECT_EQ(calls, 2);
    EXPECT_FLOAT_EQ(b.at("w")[0], 2.0f);
}

TEST_F(CheckpointCacheTest, CorruptFileIsRegenerated) {
    (void)cached_state(dir_, "key", [] { return make_state(3.0f); });
    // Corrupt the cache file.
    const fs::path path = fs::path(dir_) / (sanitize_cache_key("key") + ".amsckpt");
    ASSERT_TRUE(fs::exists(path));
    std::ofstream(path.string(), std::ios::trunc) << "garbage";
    int calls = 0;
    const TensorMap m = cached_state(dir_, "key", [&calls] {
        ++calls;
        return make_state(4.0f);
    });
    EXPECT_EQ(calls, 1);
    EXPECT_FLOAT_EQ(m.at("w")[0], 4.0f);
}

TEST_F(CheckpointCacheTest, SanitizeReplacesUnsafeCharacters) {
    EXPECT_EQ(sanitize_cache_key("a/b c:d"), "a_b_c_d");
    EXPECT_EQ(sanitize_cache_key("Safe-Key_1.0"), "Safe-Key_1.0");
}

TEST_F(CheckpointCacheTest, DefaultDirHonorsEnvironment) {
    // Without the env var, the fallback name is returned.
    unsetenv("AMSNET_CACHE_DIR");
    EXPECT_EQ(default_cache_dir(), "amsnet_cache");
    setenv("AMSNET_CACHE_DIR", "/tmp/ckpt_env_test", 1);
    EXPECT_EQ(default_cache_dir(), "/tmp/ckpt_env_test");
    unsetenv("AMSNET_CACHE_DIR");
}

TEST_F(CheckpointCacheTest, NoCacheFlagBypassesReads) {
    int calls = 0;
    auto produce = [&calls] {
        ++calls;
        return make_state(5.0f);
    };
    (void)cached_state(dir_, "k", produce);
    setenv("AMSNET_NO_CACHE", "1", 1);
    (void)cached_state(dir_, "k", produce);
    unsetenv("AMSNET_NO_CACHE");
    EXPECT_EQ(calls, 2);
}

// ----- content-addressed keys -----

CacheKey content_key(std::size_t retrain_epochs, const std::string& legacy = "") {
    CacheKey key;
    key.label("ckpt_test");
    if (!legacy.empty()) key.legacy(legacy);
    key.add("schema", "ckpt-test-v1");
    key.add("bits_w", std::uint64_t{8});
    key.add("retrain.epochs", std::uint64_t{retrain_epochs});
    key.add("lr", 0.004);
    return key;
}

TEST_F(CheckpointCacheTest, ContentKeyHitsAndRegeneratesTruncatedEntry) {
    const CacheKey key = content_key(2);
    int calls = 0;
    auto produce = [&calls] {
        ++calls;
        return make_state(6.0f);
    };
    (void)cached_state(dir_, key, produce);
    EXPECT_EQ(calls, 1);
    (void)cached_state(dir_, key, produce);
    EXPECT_EQ(calls, 1);  // disk hit under the content-hash name

    // Truncate the entry (a killed pre-atomic-rename writer): the next
    // lookup must log + recompute, not throw, and must heal the file.
    const fs::path path = fs::path(dir_) / key.filename();
    ASSERT_TRUE(fs::exists(path));
    const auto full_size = fs::file_size(path);
    fs::resize_file(path, full_size / 2);
    const TensorMap healed = cached_state(dir_, key, produce);
    EXPECT_EQ(calls, 2);
    EXPECT_FLOAT_EQ(healed.at("w")[0], 6.0f);
    EXPECT_EQ(fs::file_size(path), full_size);  // republished intact
    (void)cached_state(dir_, key, produce);
    EXPECT_EQ(calls, 2);
}

TEST_F(CheckpointCacheTest, ConfigPerturbationProducesDistinctKey) {
    // The historical failure mode: a config change (here the retrain
    // schedule) reusing a stale entry. Content hashing keys the two
    // configs to different files.
    const CacheKey two_epochs = content_key(2);
    const CacheKey three_epochs = content_key(3);
    EXPECT_NE(two_epochs.hex(), three_epochs.hex());
    EXPECT_NE(two_epochs.filename(), three_epochs.filename());

    int calls = 0;
    (void)cached_state(dir_, two_epochs, [&calls] {
        ++calls;
        return make_state(1.0f);
    });
    const TensorMap other = cached_state(dir_, three_epochs, [&calls] {
        ++calls;
        return make_state(2.0f);
    });
    EXPECT_EQ(calls, 2);  // no aliasing
    EXPECT_FLOAT_EQ(other.at("w")[0], 2.0f);
}

TEST_F(CheckpointCacheTest, ConfigPerturbationDefeatsNoCacheMemo) {
    // The in-process memo is keyed by the content path, so under
    // AMSNET_NO_CACHE=1 a config change still re-produces (the legacy
    // string scheme could silently serve the stale memo entry here).
    setenv("AMSNET_NO_CACHE", "1", 1);
    int calls = 0;
    (void)cached_state(dir_, content_key(4), [&calls] {
        ++calls;
        return make_state(1.0f);
    });
    (void)cached_state(dir_, content_key(4), [&calls] {
        ++calls;
        return make_state(1.0f);
    });
    EXPECT_EQ(calls, 1);  // memo serves the identical config
    const TensorMap fresh = cached_state(dir_, content_key(5), [&calls] {
        ++calls;
        return make_state(9.0f);
    });
    unsetenv("AMSNET_NO_CACHE");
    EXPECT_EQ(calls, 2);  // perturbed config misses the memo
    EXPECT_FLOAT_EQ(fresh.at("w")[0], 9.0f);
}

TEST_F(CheckpointCacheTest, LegacyEntryIsMigratedInPlace) {
    // Seed the directory the pre-content-hash way, then look the state
    // up by content key: it must be served from the legacy file and
    // adopted under the content-hash name without calling produce.
    const std::string legacy = "mini_c10_legacy_key";
    (void)cached_state(dir_, legacy, [] { return make_state(7.0f); });

    const CacheKey key = content_key(2, legacy);
    int calls = 0;
    const TensorMap migrated = cached_state(dir_, key, [&calls] {
        ++calls;
        return make_state(0.0f);
    });
    EXPECT_EQ(calls, 0);
    EXPECT_FLOAT_EQ(migrated.at("w")[0], 7.0f);
    EXPECT_TRUE(fs::exists(fs::path(dir_) / key.filename()));
    // The legacy file stays for older builds sharing the directory.
    EXPECT_TRUE(fs::exists(fs::path(dir_) / (sanitize_cache_key(legacy) + ".amsckpt")));
}

TEST_F(CheckpointCacheTest, AtomicPublishLeavesNoTempFiles) {
    (void)cached_state(dir_, content_key(2), [] { return make_state(1.0f); });
    save_state_atomic((fs::path(dir_) / "direct.amsckpt").string(), make_state(2.0f));
    // Overwrite through the atomic path: readers see old-or-new, and no
    // .tmp.<pid>.<seq> intermediates survive.
    save_state_atomic((fs::path(dir_) / "direct.amsckpt").string(), make_state(3.0f));
    for (const auto& entry : fs::directory_iterator(dir_)) {
        EXPECT_EQ(entry.path().filename().string().find(".tmp."), std::string::npos)
            << "stray temp file: " << entry.path();
    }
    EXPECT_FLOAT_EQ(load_tensor_map_file((fs::path(dir_) / "direct.amsckpt").string())
                        .at("w")[0],
                    3.0f);
}

TEST_F(CheckpointCacheTest, CacheKeyRejectsAmbiguousFields) {
    CacheKey key;
    EXPECT_THROW(key.add("a=b", "v"), std::invalid_argument);
    EXPECT_THROW(key.add("a\nb", "v"), std::invalid_argument);
    EXPECT_THROW(key.add("a", "v\nw"), std::invalid_argument);
}

TEST_F(CheckpointCacheTest, ExactDoubleRoundTrips) {
    for (double v : {1.0 / 3.0, 0.1, 6.02214076e23, -0.0, 4.9406564584124654e-324}) {
        EXPECT_EQ(parse_exact_double(exact_double(v)), v);
    }
    EXPECT_THROW((void)parse_exact_double("1.5x"), std::invalid_argument);
    EXPECT_THROW((void)parse_exact_double(""), std::invalid_argument);
}

}  // namespace
}  // namespace ams::train
