#include "train/grad_quant.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace ams::train {
namespace {

TEST(GradQuantTest, FloatBitsIsNoOp) {
    Rng rng(1);
    Tensor g = Tensor::from_data(Shape{3}, {0.1f, -0.7f, 0.33f});
    Tensor before = g;
    quantize_gradient(g, 32, rng);
    for (std::size_t i = 0; i < g.size(); ++i) EXPECT_FLOAT_EQ(g[i], before[i]);
}

TEST(GradQuantTest, ZeroGradientStaysZero) {
    Rng rng(2);
    Tensor g(Shape{8}, 0.0f);
    quantize_gradient(g, 4, rng);
    for (std::size_t i = 0; i < g.size(); ++i) EXPECT_FLOAT_EQ(g[i], 0.0f);
}

TEST(GradQuantTest, OutputBoundedByMaxAbs) {
    Rng rng(3);
    Tensor g(Shape{1000});
    g.fill_normal(rng, 0.0f, 0.5f);
    const float max_abs = g.abs_max();
    quantize_gradient(g, 4, rng);
    for (std::size_t i = 0; i < g.size(); ++i) {
        EXPECT_LE(std::fabs(g[i]), max_abs + 1e-5f);
    }
}

TEST(GradQuantTest, StochasticQuantizationIsUnbiased) {
    // Repeatedly quantizing the same gradient must average back to it.
    Rng rng(4);
    const float value = 0.137f;
    Tensor reference = Tensor::from_data(Shape{2}, {value, 1.0f});  // 1.0 sets the scale
    double sum = 0.0;
    const int trials = 20000;
    for (int t = 0; t < trials; ++t) {
        Tensor g = reference;
        quantize_gradient(g, 4, rng);
        sum += g[0];
    }
    EXPECT_NEAR(sum / trials, value, 5e-3);
}

TEST(GradQuantTest, CoarseQuantizationSnapsToFewLevels) {
    Rng rng(5);
    Tensor g(Shape{500});
    g.fill_uniform(rng, -1.0f, 1.0f);
    quantize_gradient(g, 2, rng);  // 3 levels across [-max, max]
    std::set<float> values(g.values().begin(), g.values().end());
    EXPECT_LE(values.size(), 4u);
}

TEST(GradQuantTest, SkipsFrozenParameters) {
    Rng rng(6);
    nn::Parameter live("a", Tensor(Shape{4}, 0.0f));
    live.grad.fill_uniform(rng, -1.0f, 1.0f);
    nn::Parameter frozen("b", Tensor(Shape{4}, 0.0f));
    frozen.grad.fill_uniform(rng, -1.0f, 1.0f);
    frozen.frozen = true;
    Tensor frozen_before = frozen.grad;

    quantize_gradients({&live, &frozen}, 2, rng);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_FLOAT_EQ(frozen.grad[i], frozen_before[i]);
    }
}

TEST(GradQuantTest, RejectsBadBits) {
    Rng rng(7);
    Tensor g(Shape{2}, 0.5f);
    EXPECT_THROW(quantize_gradient(g, 1, rng), std::invalid_argument);
}

}  // namespace
}  // namespace ams::train
