#include "tensor/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

namespace ams {
namespace {

TEST(RngTest, DeterministicFromSeed) {
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next_u64() == b.next_u64()) ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformRangeRespected) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(RngTest, UniformIndexBoundsAndCoverage) {
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t k = rng.uniform_index(7);
        EXPECT_LT(k, 7u);
        seen.insert(k);
    }
    EXPECT_EQ(seen.size(), 7u);
    EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(RngTest, SplitStreamsAreDecorrelated) {
    Rng base(42);
    Rng a = base.split(1);
    Rng b = base.split(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next_u64() == b.next_u64()) ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(RngTest, SplitIsDeterministic) {
    Rng base1(42), base2(42);
    Rng a = base1.split(9);
    Rng b = base2.split(9);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

class RngNormalMoments : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngNormalMoments, MeanAndVarianceMatchStandardNormal) {
    Rng rng(GetParam());
    const int n = 200000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngNormalMoments, ::testing::Values(1u, 17u, 999u, 31337u));

TEST(RngTest, ScaledNormalMoments) {
    Rng rng(5);
    const int n = 100000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal(3.0, 0.5);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    EXPECT_NEAR(mean, 3.0, 0.02);
    EXPECT_NEAR(sq / n - mean * mean, 0.25, 0.01);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
    static_assert(std::uniform_random_bit_generator<Rng>);
    SUCCEED();
}

}  // namespace
}  // namespace ams
