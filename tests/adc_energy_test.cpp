#include "energy/adc_energy.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ams::energy {
namespace {

TEST(AdcEnergyTest, FloorBelowCrossover) {
    EXPECT_DOUBLE_EQ(adc_energy_lower_bound_pj(4.0), kEnergyFloorPj);
    EXPECT_DOUBLE_EQ(adc_energy_lower_bound_pj(10.5), kEnergyFloorPj);
}

TEST(AdcEnergyTest, ThermalBranchMatchesEquationThree) {
    // E = 10^(0.1 (6.02 ENOB - 68.25)) pJ for ENOB > 10.5.
    const double e12 = adc_energy_lower_bound_pj(12.0);
    EXPECT_NEAR(e12, std::pow(10.0, 0.1 * (6.02 * 12.0 - 68.25)), 1e-12);
}

TEST(AdcEnergyTest, NearlyContinuousAtCrossover) {
    const double below = adc_energy_lower_bound_pj(10.5);
    const double above = adc_energy_lower_bound_pj(10.5 + 1e-9);
    EXPECT_NEAR(above / below, 1.0, 0.05);
}

TEST(AdcEnergyTest, EnergyQuadruplesPerBitInThermalRegime) {
    const double e12 = adc_energy_lower_bound_pj(12.0);
    const double e13 = adc_energy_lower_bound_pj(13.0);
    EXPECT_NEAR(e13 / e12, std::pow(10.0, 0.602), 1e-6);  // ~4x
}

TEST(AdcEnergyTest, ThermalBranchEqualsSchreierLine) {
    // The paper's Eq. 3 exponent matches the FOM_S = 187 dB line (up to
    // the rounding of the published 68.25 constant, < 0.01%).
    for (double enob : {11.0, 12.5, 14.0, 16.0}) {
        EXPECT_NEAR(adc_energy_lower_bound_pj(enob) / schreier_energy_pj(enob, 187.0), 1.0,
                    1e-3);
    }
}

TEST(AdcEnergyTest, EmacAmortizesOverNmult) {
    EXPECT_DOUBLE_EQ(emac_lower_bound_pj(8.0, 1), kEnergyFloorPj);
    EXPECT_DOUBLE_EQ(emac_lower_bound_pj(8.0, 8), kEnergyFloorPj / 8.0);
    EXPECT_NEAR(emac_lower_bound_fj(8.0, 8), 37.5, 1e-9);
    EXPECT_THROW((void)emac_lower_bound_pj(8.0, 0), std::invalid_argument);
}

TEST(AdcEnergyTest, PaperHeadlineNumbers) {
    // The paper's Fig. 8 level curves: ~313 fJ/MAC and ~78 fJ/MAC occur at
    // (ENOB, Nmult) combinations in the thermal regime. Verify two cells
    // of the published grid: E_MAC(ENOB, Nmult) doubles per half bit.
    const double e = emac_lower_bound_fj(12.5, 8);
    const double e_half_bit_less = emac_lower_bound_fj(12.0, 8);
    EXPECT_NEAR(e / e_half_bit_less, std::pow(10.0, 0.301), 1e-3);  // ~2x
}

TEST(AdcEnergyTest, SndrEnobRoundTrip) {
    for (double enob : {6.0, 10.0, 14.0}) {
        EXPECT_NEAR(sndr_db_to_enob(enob_to_sndr_db(enob)), enob, 1e-12);
    }
    EXPECT_NEAR(enob_to_sndr_db(10.0), 61.96, 1e-9);
}

TEST(AdcEnergyTest, WaldenFom) {
    // 1 pJ at 10 ENOB -> 1000 fJ / 1024 steps.
    EXPECT_NEAR(walden_fom_fj(1.0, 10.0), 1000.0 / 1024.0, 1e-9);
    EXPECT_THROW((void)walden_fom_fj(1.0, 0.0), std::invalid_argument);
}

TEST(AdcEnergyTest, MonotoneNonDecreasing) {
    double prev = 0.0;
    for (double enob = 1.0; enob <= 20.0; enob += 0.25) {
        const double e = adc_energy_lower_bound_pj(enob);
        EXPECT_GE(e, prev);
        prev = e;
    }
}

TEST(AdcEnergyTest, RejectsNonPositiveEnob) {
    EXPECT_THROW((void)adc_energy_lower_bound_pj(0.0), std::invalid_argument);
    EXPECT_THROW((void)schreier_energy_pj(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace ams::energy
