#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ams {
namespace {

TEST(TensorTest, ConstructionFillsValue) {
    Tensor t(Shape{2, 3}, 1.5f);
    EXPECT_EQ(t.size(), 6u);
    for (std::size_t i = 0; i < t.size(); ++i) EXPECT_FLOAT_EQ(t[i], 1.5f);
}

TEST(TensorTest, DefaultIsEmpty) {
    Tensor t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.size(), 0u);
}

TEST(TensorTest, FromDataValidatesSize) {
    EXPECT_NO_THROW(Tensor::from_data(Shape{2, 2}, {1, 2, 3, 4}));
    EXPECT_THROW(Tensor::from_data(Shape{2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(TensorTest, MultiIndexAccess) {
    Tensor t = Tensor::from_data(Shape{2, 3}, {0, 1, 2, 3, 4, 5});
    EXPECT_FLOAT_EQ(t.at({0, 0}), 0.0f);
    EXPECT_FLOAT_EQ(t.at({1, 2}), 5.0f);
    EXPECT_THROW(t.at({2, 0}), std::invalid_argument);
}

TEST(TensorTest, ReshapePreservesData) {
    Tensor t = Tensor::from_data(Shape{2, 3}, {0, 1, 2, 3, 4, 5});
    Tensor r = t.reshaped(Shape{3, 2});
    EXPECT_EQ(r.shape(), Shape({3, 2}));
    EXPECT_FLOAT_EQ(r.at({2, 1}), 5.0f);
    EXPECT_THROW(t.reshaped(Shape{4, 2}), std::invalid_argument);
}

TEST(TensorTest, ElementwiseArithmetic) {
    Tensor a = Tensor::from_data(Shape{3}, {1, 2, 3});
    Tensor b = Tensor::from_data(Shape{3}, {10, 20, 30});
    Tensor sum = a + b;
    Tensor diff = b - a;
    Tensor prod = a * b;
    EXPECT_FLOAT_EQ(sum[1], 22.0f);
    EXPECT_FLOAT_EQ(diff[2], 27.0f);
    EXPECT_FLOAT_EQ(prod[0], 10.0f);
    Tensor scaled = a * 2.0f;
    EXPECT_FLOAT_EQ(scaled[2], 6.0f);
}

TEST(TensorTest, ShapeMismatchThrows) {
    Tensor a(Shape{2, 2});
    Tensor b(Shape{4});
    EXPECT_THROW(a += b, std::invalid_argument);
    EXPECT_THROW(a *= b, std::invalid_argument);
}

TEST(TensorTest, Reductions) {
    Tensor t = Tensor::from_data(Shape{4}, {1, -2, 3, -4});
    EXPECT_FLOAT_EQ(t.sum(), -2.0f);
    EXPECT_FLOAT_EQ(t.mean(), -0.5f);
    EXPECT_FLOAT_EQ(t.min(), -4.0f);
    EXPECT_FLOAT_EQ(t.max(), 3.0f);
    EXPECT_FLOAT_EQ(t.abs_max(), 4.0f);
    EXPECT_EQ(t.argmax(), 2u);
}

TEST(TensorTest, VarianceMatchesDefinition) {
    Tensor t = Tensor::from_data(Shape{4}, {1, 1, 3, 3});
    EXPECT_FLOAT_EQ(t.variance(), 1.0f);  // mean 2, deviations +/-1
}

TEST(TensorTest, EmptyReductionsThrow) {
    Tensor t;
    EXPECT_THROW((void)t.min(), std::logic_error);
    EXPECT_THROW((void)t.max(), std::logic_error);
    EXPECT_THROW((void)t.argmax(), std::logic_error);
}

TEST(TensorTest, ApplyTransformsElements) {
    Tensor t = Tensor::from_data(Shape{3}, {1, 2, 3});
    t.apply([](float v) { return v * v; });
    EXPECT_FLOAT_EQ(t[2], 9.0f);
}

TEST(TensorTest, RandomFillsAreInRange) {
    Rng rng(3);
    Tensor t(Shape{1000});
    t.fill_uniform(rng, -2.0f, 2.0f);
    EXPECT_GE(t.min(), -2.0f);
    EXPECT_LE(t.max(), 2.0f);
    EXPECT_GT(t.variance(), 0.5f);  // roughly (b-a)^2/12 = 1.33
}

TEST(TensorTest, HeNormalVarianceMatchesFanIn) {
    Rng rng(4);
    Tensor t(Shape{50000});
    t.fill_he_normal(rng, 8);
    EXPECT_NEAR(t.variance(), 2.0f / 8.0f, 0.01f);
    EXPECT_THROW(t.fill_he_normal(rng, 0), std::invalid_argument);
}

struct MomentsCase {
    std::size_t n;
    float lo;
    float hi;
};

class TensorUniformMoments : public ::testing::TestWithParam<MomentsCase> {};

TEST_P(TensorUniformMoments, MeanMatchesMidpoint) {
    const auto& p = GetParam();
    Rng rng(99);
    Tensor t(Shape{p.n});
    t.fill_uniform(rng, p.lo, p.hi);
    EXPECT_NEAR(t.mean(), (p.lo + p.hi) / 2.0f, 0.05f * (p.hi - p.lo));
}

INSTANTIATE_TEST_SUITE_P(Ranges, TensorUniformMoments,
                         ::testing::Values(MomentsCase{10000, 0.0f, 1.0f},
                                           MomentsCase{10000, -1.0f, 1.0f},
                                           MomentsCase{20000, -5.0f, 3.0f}));

}  // namespace
}  // namespace ams
