#include "ams/vmac_conv.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ams/error_model.hpp"
#include "nn/conv2d.hpp"

namespace ams::vmac {
namespace {

VmacConfig cfg(double enob, std::size_t nmult = 8) {
    VmacConfig c;
    c.enob = enob;
    c.nmult = nmult;
    c.bits_w = 16;  // fine operand codecs: isolate ADC error
    c.bits_x = 16;
    return c;
}

Tensor random_weight(std::size_t cout, std::size_t cin, std::size_t k, Rng& rng) {
    Tensor w(Shape{cout, cin, k, k});
    w.fill_uniform(rng, -1.0f, 1.0f);
    return w;
}

TEST(VmacConvTest, HighEnobMatchesExactConvolution) {
    Rng rng(1);
    Tensor w = random_weight(3, 2, 3, rng);
    VmacConv2d vconv(w, 1, 1, cfg(22.0), {}, VmacConvMode::kBitExact, Rng(2));

    nn::Conv2dOptions opts{2, 3, 3, 1, 1, false};
    nn::Conv2d ref(opts, rng);
    ref.set_effective_weight(w);

    Tensor x(Shape{2, 2, 6, 6});
    x.fill_uniform(rng, 0.0f, 1.0f);
    Tensor a = vconv.forward(x);
    Tensor b = ref.forward(x);
    ASSERT_EQ(a.shape(), b.shape());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 2e-3f);
}

TEST(VmacConvTest, ErrorVarianceTracksEquationTwo) {
    Rng rng(3);
    Tensor w = random_weight(4, 8, 3, rng);  // n_tot = 72
    const VmacConfig c = cfg(8.0);
    VmacConv2d vconv(w, 1, 1, c, {}, VmacConvMode::kBitExact, Rng(4));

    nn::Conv2dOptions opts{8, 4, 3, 1, 1, false};
    nn::Conv2d ref(opts, rng);
    ref.set_effective_weight(w);

    Tensor x(Shape{4, 8, 8, 8});
    x.fill_uniform(rng, 0.0f, 1.0f);
    Tensor err = vconv.forward(x) - ref.forward(x);
    const double model_var = total_error_variance(c, vconv.n_tot());
    EXPECT_NEAR(err.variance() / model_var, 1.0, 0.25);
    EXPECT_NEAR(err.mean(), 0.0, 4.0 * std::sqrt(model_var / err.size()));
}

TEST(VmacConvTest, PerVmacNoiseModeAlsoTracksModel) {
    Rng rng(5);
    Tensor w = random_weight(4, 8, 3, rng);
    const VmacConfig c = cfg(8.0);
    VmacConv2d vconv(w, 1, 1, c, {}, VmacConvMode::kPerVmacNoise, Rng(6));

    nn::Conv2dOptions opts{8, 4, 3, 1, 1, false};
    nn::Conv2d ref(opts, rng);
    ref.set_effective_weight(w);

    Tensor x(Shape{4, 8, 8, 8});
    x.fill_uniform(rng, 0.0f, 1.0f);
    Tensor err = vconv.forward(x) - ref.forward(x);
    EXPECT_NEAR(err.variance() / total_error_variance(c, vconv.n_tot()), 1.0, 0.15);
}

TEST(VmacConvTest, StridedGeometryMatchesPlainConv) {
    Rng rng(7);
    Tensor w = random_weight(2, 3, 3, rng);
    VmacConv2d vconv(w, 2, 1, cfg(22.0), {}, VmacConvMode::kBitExact, Rng(8));
    nn::Conv2dOptions opts{3, 2, 3, 2, 1, false};
    nn::Conv2d ref(opts, rng);
    ref.set_effective_weight(w);
    Tensor x(Shape{1, 3, 8, 8});
    x.fill_uniform(rng, 0.0f, 1.0f);
    Tensor a = vconv.forward(x);
    Tensor b = ref.forward(x);
    ASSERT_EQ(a.shape(), b.shape());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 2e-3f);
}

TEST(VmacConvTest, EvaluationOnly) {
    Rng rng(9);
    Tensor w = random_weight(1, 1, 1, rng);
    VmacConv2d vconv(w, 1, 0, cfg(10.0), {}, VmacConvMode::kBitExact, Rng(10));
    Tensor g(Shape{1, 1, 2, 2});
    EXPECT_THROW((void)vconv.backward(g), std::logic_error);
}

TEST(VmacConvTest, ValidatesConstructionAndInput) {
    Rng rng(11);
    Tensor bad_rank(Shape{2, 3, 3});
    EXPECT_THROW(VmacConv2d(bad_rank, 1, 1, cfg(10.0), {}, VmacConvMode::kBitExact, Rng(1)),
                 std::invalid_argument);
    Tensor rect(Shape{1, 1, 3, 5});
    EXPECT_THROW(VmacConv2d(rect, 1, 1, cfg(10.0), {}, VmacConvMode::kBitExact, Rng(1)),
                 std::invalid_argument);
    Tensor w = random_weight(1, 2, 3, rng);
    VmacConv2d vconv(w, 1, 1, cfg(10.0), {}, VmacConvMode::kBitExact, Rng(1));
    Tensor wrong_channels(Shape{1, 3, 6, 6});
    EXPECT_THROW((void)vconv.forward(wrong_channels), std::invalid_argument);
}

TEST(VmacConvTest, NTotFromWeightShape) {
    Rng rng(12);
    Tensor w = random_weight(5, 8, 3, rng);
    VmacConv2d vconv(w, 1, 1, cfg(10.0), {}, VmacConvMode::kBitExact, Rng(1));
    EXPECT_EQ(vconv.n_tot(), 72u);
}

}  // namespace
}  // namespace ams::vmac
