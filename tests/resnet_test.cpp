#include "models/resnet.hpp"

#include <gtest/gtest.h>

namespace ams::models {
namespace {

LayerCommon fp32_common() {
    LayerCommon c;
    c.bits_w = quant::kFloatBits;
    c.bits_x = quant::kFloatBits;
    return c;
}

LayerCommon ams_common(double enob = 8.0) {
    LayerCommon c;
    c.bits_w = 8;
    c.bits_x = 8;
    c.ams_enabled = true;
    c.vmac.enob = enob;
    c.vmac.nmult = 8;
    return c;
}

TEST(ResNetStructureTest, ResNet50HasFiftyThreeConvLayers) {
    // The paper: "43 of the 53 convolutional layers of the network
    // (including downsampling layers)" — ResNet-50 has 53 convs total.
    ResNetConfig cfg = resnet50_config(fp32_common());
    ResNet model(cfg);
    EXPECT_EQ(model.num_conv_layers(), 53u);
    EXPECT_EQ(model.injectors().size(), 54u);  // + FC injector
}

TEST(ResNetStructureTest, MiniPresetShapesFlowThrough) {
    ResNet model(mini_resnet_config(fp32_common()));
    model.set_training(true);
    Rng rng(1);
    Tensor x(Shape{2, 3, 16, 16});
    x.fill_uniform(rng, -2.0f, 2.0f);
    Tensor y = model.forward(x);
    EXPECT_EQ(y.shape(), Shape({2, 10}));
    // Backward runs end to end.
    Tensor g(Shape{2, 10}, 0.1f);
    Tensor gx = model.backward(g);
    EXPECT_EQ(gx.shape(), x.shape());
}

TEST(ResNetStructureTest, TinyPresetUsesBasicBlocks) {
    ResNet model(tiny_resnet_config(fp32_common()));
    model.set_training(true);
    Rng rng(2);
    Tensor x(Shape{1, 3, 8, 8});
    x.fill_uniform(rng, -1.0f, 1.0f);
    EXPECT_EQ(model.forward(x).shape(), Shape({1, 4}));
}

TEST(ResNetTest, QuantizedBuildHasInputConditioning) {
    ResNetConfig cfg = tiny_resnet_config(ams_common());
    cfg.input_max_abs = 2.5f;
    ResNet model(cfg);
    model.set_training(false);
    Rng rng(3);
    Tensor x(Shape{1, 3, 8, 8});
    x.fill_uniform(rng, -2.5f, 2.5f);
    EXPECT_NO_THROW((void)model.forward(x));
}

TEST(ResNetTest, LastLayerInjectionPolicy) {
    ResNet model(tiny_resnet_config(ams_common()));
    // Training: FC injector disabled (paper: breaks learning); conv
    // injectors stay on.
    model.set_training(true);
    EXPECT_FALSE(model.fc_injector().enabled());
    EXPECT_TRUE(model.conv_units().front()->injector().enabled());
    // Evaluation: everything on.
    model.set_training(false);
    EXPECT_TRUE(model.fc_injector().enabled());
}

TEST(ResNetTest, LastLayerPolicyOverride) {
    ResNetConfig cfg = tiny_resnet_config(ams_common());
    cfg.inject_last_layer_in_training = true;
    ResNet model(cfg);
    model.set_training(true);
    EXPECT_TRUE(model.fc_injector().enabled());
}

TEST(ResNetTest, SetAmsEnabledTogglesAllInjectors) {
    ResNet model(tiny_resnet_config(ams_common()));
    model.set_training(false);
    model.set_ams_enabled(false);
    for (auto* inj : model.injectors()) EXPECT_FALSE(inj->enabled());
    model.set_ams_enabled(true);
    for (auto* inj : model.injectors()) EXPECT_TRUE(inj->enabled());
}

TEST(ResNetTest, SetVmacRetunesEveryInjector) {
    ResNet model(tiny_resnet_config(ams_common(6.0)));
    vmac::VmacConfig v;
    v.enob = 9.5;
    v.nmult = 16;
    model.set_vmac(v);
    for (auto* inj : model.injectors()) {
        EXPECT_DOUBLE_EQ(inj->config().enob, 9.5);
        EXPECT_EQ(inj->config().nmult, 16u);
    }
}

TEST(ResNetTest, GroupFreezingMatchesTaxonomy) {
    ResNet model(tiny_resnet_config(ams_common()));
    model.set_group_frozen(LayerGroup::kBatchNorm, true);
    for (auto* p : model.group_parameters(LayerGroup::kBatchNorm)) EXPECT_TRUE(p->frozen);
    for (auto* p : model.group_parameters(LayerGroup::kConv)) EXPECT_FALSE(p->frozen);
    for (auto* p : model.group_parameters(LayerGroup::kFullyConnected)) EXPECT_FALSE(p->frozen);
    // Groups partition all parameters.
    const std::size_t total = model.parameters().size();
    const std::size_t sum = model.group_parameters(LayerGroup::kConv).size() +
                            model.group_parameters(LayerGroup::kBatchNorm).size() +
                            model.group_parameters(LayerGroup::kFullyConnected).size();
    EXPECT_EQ(total, sum);
}

TEST(ResNetTest, StateRoundTripReproducesOutputs) {
    ResNetConfig cfg = tiny_resnet_config(fp32_common(), 4, /*seed=*/11);
    ResNet a(cfg);
    a.set_training(false);
    TensorMap state;
    a.collect_state("", state);

    ResNetConfig cfg2 = tiny_resnet_config(fp32_common(), 4, /*seed=*/99);
    ResNet b(cfg2);
    b.load_state("", state);
    b.set_training(false);

    Rng rng(4);
    Tensor x(Shape{2, 3, 8, 8});
    x.fill_uniform(rng, -1.0f, 1.0f);
    Tensor ya = a.forward(x);
    Tensor yb = b.forward(x);
    for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(ResNetTest, StateTransfersAcrossVariants) {
    // The FP32 -> quantized retraining path requires state compatibility
    // between variants built with different bitwidths.
    ResNet fp32(tiny_resnet_config(fp32_common()));
    TensorMap state;
    fp32.collect_state("", state);
    ResNet quant(tiny_resnet_config(ams_common()));
    EXPECT_NO_THROW(quant.load_state("", state));
}

TEST(ResNetTest, ActivationRecordingProducesPerLayerMeans) {
    ResNet model(tiny_resnet_config(fp32_common()));
    model.set_training(false);
    model.set_recording(true);
    Rng rng(5);
    Tensor x(Shape{2, 3, 8, 8});
    x.fill_uniform(rng, -1.0f, 1.0f);
    (void)model.forward(x);
    const auto means = model.activation_means();
    EXPECT_EQ(means.size(), model.num_conv_layers());
    model.reset_stats();
    for (double m : model.activation_means()) EXPECT_EQ(m, 0.0);
}

TEST(ResNetTest, ValidatesConfig) {
    ResNetConfig cfg = tiny_resnet_config(fp32_common());
    cfg.stages.clear();
    EXPECT_THROW(ResNet{cfg}, std::invalid_argument);
    cfg = tiny_resnet_config(fp32_common());
    cfg.num_classes = 1;
    EXPECT_THROW(ResNet{cfg}, std::invalid_argument);
    cfg = tiny_resnet_config(fp32_common());
    cfg.input_max_abs = 0.0f;
    EXPECT_THROW(ResNet{cfg}, std::invalid_argument);
}

TEST(ResNetTest, DeterministicConstructionFromSeed) {
    ResNet a(tiny_resnet_config(fp32_common(), 4, 55));
    ResNet b(tiny_resnet_config(fp32_common(), 4, 55));
    a.set_training(false);
    b.set_training(false);
    Rng rng(6);
    Tensor x(Shape{1, 3, 8, 8});
    x.fill_uniform(rng, -1.0f, 1.0f);
    Tensor ya = a.forward(x);
    Tensor yb = b.forward(x);
    for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
}


TEST(ResNetTest, MaxpoolStemPathForwardAndBackward) {
    // The ResNet-50-style stem (strided conv + 3x3/2 max pool) is a
    // distinct code path from the Mini presets.
    ResNetConfig cfg = tiny_resnet_config(fp32_common());
    cfg.stem_kernel = 5;
    cfg.stem_stride = 2;
    cfg.stem_maxpool = true;
    ResNet model(cfg);
    model.set_training(true);
    Rng rng(21);
    Tensor x(Shape{2, 3, 32, 32});
    x.fill_uniform(rng, -1.0f, 1.0f);
    Tensor y = model.forward(x);
    EXPECT_EQ(y.shape(), Shape({2, 4}));
    Tensor g(Shape{2, 4}, 0.1f);
    EXPECT_EQ(model.backward(g).shape(), x.shape());
}

TEST(ResNetTest, QuantizedBackwardRunsEndToEnd) {
    ResNet model(tiny_resnet_config(ams_common()));
    model.set_training(true);
    Rng rng(22);
    Tensor x(Shape{2, 3, 8, 8});
    x.fill_uniform(rng, -1.0f, 1.0f);
    (void)model.forward(x);
    Tensor g(Shape{2, 4}, 0.1f);
    Tensor gx = model.backward(g);
    EXPECT_EQ(gx.shape(), x.shape());
    // Gradients reached the latent conv weights through the STE.
    bool any_nonzero = false;
    for (nn::Parameter* p : model.group_parameters(LayerGroup::kConv)) {
        for (std::size_t i = 0; i < p->grad.size(); ++i) {
            if (p->grad[i] != 0.0f) any_nonzero = true;
        }
    }
    EXPECT_TRUE(any_nonzero);
}

}  // namespace
}  // namespace ams::models
