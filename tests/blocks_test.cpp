#include "models/blocks.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "nn/gradcheck.hpp"

namespace ams::models {
namespace {

LayerCommon fp32_common() {
    LayerCommon c;
    c.bits_w = quant::kFloatBits;
    c.bits_x = quant::kFloatBits;
    c.ams_enabled = false;
    return c;
}

LayerCommon quant_common(std::size_t bw, std::size_t bx) {
    LayerCommon c;
    c.bits_w = bw;
    c.bits_x = bx;
    return c;
}

TEST(ConvUnitTest, PipelineOrderIsConvInjectBn) {
    Rng rng(1);
    nn::Conv2dOptions opts{1, 1, 1, 1, 0, false};
    LayerCommon c = fp32_common();
    ConvUnit unit(opts, c.bits_w, c.vmac, /*ams_enabled=*/false, rng, c.mode, 7);
    unit.set_training(false);
    unit.conv().conv().weight().value[0] = 2.0f;
    Tensor x(Shape{1, 1, 2, 2}, 1.0f);
    Tensor y = unit.forward(x);
    // BN in eval with unit running stats: y = conv output = 2.
    for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], 2.0f, 1e-4f);
}

TEST(ConvUnitTest, RecordingAccumulatesPostInjectionMean) {
    Rng rng(2);
    nn::Conv2dOptions opts{1, 1, 1, 1, 0, false};
    LayerCommon c = fp32_common();
    ConvUnit unit(opts, c.bits_w, c.vmac, false, rng, c.mode, 8);
    unit.set_training(false);
    unit.conv().conv().weight().value[0] = 1.0f;
    unit.set_recording(true);
    Tensor x(Shape{1, 1, 2, 2}, 3.0f);
    (void)unit.forward(x);
    (void)unit.forward(x);
    EXPECT_EQ(unit.stats().count(), 8u);
    EXPECT_NEAR(unit.stats().mean(), 3.0, 1e-5);
    unit.stats().reset();
    EXPECT_EQ(unit.stats().count(), 0u);
}

TEST(ConvUnitTest, ParameterGroupsSeparateConvAndBn) {
    Rng rng(3);
    nn::Conv2dOptions opts{2, 4, 3, 1, 1, false};
    LayerCommon c = fp32_common();
    ConvUnit unit(opts, c.bits_w, c.vmac, false, rng, c.mode, 9);
    EXPECT_EQ(unit.conv_parameters().size(), 1u);  // weight only (no bias)
    EXPECT_EQ(unit.bn_parameters().size(), 2u);    // gamma, beta
    EXPECT_EQ(unit.parameters().size(), 3u);
}

TEST(BottleneckBlockTest, IdentityShortcutPreservesShape) {
    Rng rng(4);
    LayerCommon c = fp32_common();
    BottleneckBlock block(16, 16, 1, c, rng, 1);
    EXPECT_EQ(block.conv_units().size(), 3u);  // no projection
    block.set_training(true);
    Tensor x(Shape{2, 16, 8, 8});
    x.fill_uniform(rng, -1.0f, 1.0f);
    Tensor y = block.forward(x);
    EXPECT_EQ(y.shape(), x.shape());
}

TEST(BottleneckBlockTest, ProjectionOnChannelOrStrideChange) {
    Rng rng(5);
    LayerCommon c = fp32_common();
    BottleneckBlock wide(8, 16, 1, c, rng, 1);
    EXPECT_EQ(wide.conv_units().size(), 4u);
    BottleneckBlock strided(16, 16, 2, c, rng, 2);
    EXPECT_EQ(strided.conv_units().size(), 4u);
    strided.set_training(true);
    Tensor x(Shape{1, 16, 8, 8});
    x.fill_uniform(rng, -1.0f, 1.0f);
    EXPECT_EQ(strided.forward(x).shape(), Shape({1, 16, 4, 4}));
}

TEST(BottleneckBlockTest, GradcheckThroughResidualJoin) {
    Rng rng(6);
    LayerCommon c = fp32_common();
    BottleneckBlock block(4, 4, 1, c, rng, 3);
    block.set_training(true);
    Tensor x(Shape{2, 4, 5, 5});
    x.fill_uniform(rng, 0.1f, 1.0f);
    // ReLU kink crossings make any single direction occasionally noisy;
    // a genuine gradient bug is direction-independent, so check the best
    // of a few random directions.
    double err = 1.0;
    for (int trial = 0; trial < 3; ++trial) {
        err = std::min(err, nn::directional_gradient_error(block, x, rng, 1e-2));
    }
    EXPECT_LT(err, 5e-3);
}

TEST(BottleneckBlockTest, GradcheckWithProjection) {
    Rng rng(7);
    LayerCommon c = fp32_common();
    BottleneckBlock block(4, 8, 2, c, rng, 4);
    block.set_training(true);
    Tensor x(Shape{1, 4, 6, 6});
    x.fill_uniform(rng, 0.1f, 1.0f);
    // ReLU kink crossings make any single direction occasionally noisy;
    // a genuine gradient bug is direction-independent, so check the best
    // of a few random directions.
    double err = 1.0;
    for (int trial = 0; trial < 3; ++trial) {
        err = std::min(err, nn::directional_gradient_error(block, x, rng, 1e-2));
    }
    EXPECT_LT(err, 5e-3);
}

TEST(BasicBlockTest, ForwardAndGradcheck) {
    Rng rng(8);
    LayerCommon c = fp32_common();
    BasicBlock block(4, 4, 1, c, rng, 5);
    EXPECT_EQ(block.conv_units().size(), 2u);
    block.set_training(true);
    Tensor x(Shape{2, 4, 5, 5});
    x.fill_uniform(rng, 0.1f, 1.0f);
    EXPECT_EQ(block.forward(x).shape(), x.shape());
    // ReLU kink crossings make any single direction occasionally noisy;
    // a genuine gradient bug is direction-independent, so check the best
    // of a few random directions.
    double err = 1.0;
    for (int trial = 0; trial < 3; ++trial) {
        err = std::min(err, nn::directional_gradient_error(block, x, rng, 1e-2));
    }
    EXPECT_LT(err, 5e-3);
}

TEST(BlocksTest, QuantizedVariantUsesQuantAct) {
    LayerCommon c = quant_common(8, 8);
    auto act = make_activation(c);
    EXPECT_EQ(act->name(), "QuantAct");
    auto relu = make_activation(fp32_common());
    EXPECT_EQ(relu->name(), "ReLU");
}

TEST(BlocksTest, StateRoundTripMatchesForward) {
    Rng rng(9);
    LayerCommon c = quant_common(8, 8);
    BottleneckBlock a(4, 8, 2, c, rng, 6);
    TensorMap state;
    a.collect_state("blk.", state);

    Rng rng2(1234);
    BottleneckBlock b(4, 8, 2, c, rng2, 6);
    b.load_state("blk.", state);
    a.set_training(false);
    b.set_training(false);
    Tensor x(Shape{1, 4, 6, 6});
    Rng xr(10);
    x.fill_uniform(xr, 0.0f, 1.0f);
    Tensor ya = a.forward(x);
    Tensor yb = b.forward(x);
    for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(BlocksTest, InjectorNTotMatchesConvGeometry) {
    Rng rng(11);
    LayerCommon c = quant_common(8, 8);
    c.ams_enabled = true;
    BottleneckBlock block(8, 16, 1, c, rng, 7);
    const auto units = block.conv_units();
    // unit1: 1x1 over 8 channels -> n_tot = 8
    EXPECT_EQ(units[0]->injector().n_tot(), 8u);
    // unit2: 3x3 over mid=4 channels -> 36
    EXPECT_EQ(units[1]->injector().n_tot(), 36u);
    // unit3: 1x1 over mid=4 -> 4
    EXPECT_EQ(units[2]->injector().n_tot(), 4u);
    // projection: 1x1 over 8 -> 8
    EXPECT_EQ(units[3]->injector().n_tot(), 8u);
}

}  // namespace
}  // namespace ams::models
