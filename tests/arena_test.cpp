// TensorArena contract tests: alignment, rewind/checkpoint discipline,
// growth policy, and the max_bytes OOM behaviour — plus the EvalContext
// scratch registry built on top of it.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <new>

#include "runtime/arena.hpp"
#include "runtime/eval_context.hpp"

namespace ams::runtime {
namespace {

bool aligned(const void* p) {
    return reinterpret_cast<std::uintptr_t>(p) % TensorArena::kAlignment == 0;
}

TEST(ArenaTest, AllocationsAreCacheLineAligned) {
    TensorArena arena(1u << 12);
    // Odd sizes force rounding; every returned pointer must stay aligned.
    for (std::size_t bytes : {1u, 3u, 63u, 64u, 65u, 127u, 1000u}) {
        EXPECT_TRUE(aligned(arena.allocate(bytes))) << bytes;
    }
    EXPECT_TRUE(aligned(arena.allocate_floats(7)));
}

TEST(ArenaTest, RewindReleasesMemoryForReuse) {
    TensorArena arena(1u << 12);
    (void)arena.allocate(128);
    const TensorArena::Checkpoint cp = arena.checkpoint();
    const std::size_t held = arena.in_use();

    float* a = arena.allocate_floats(32);
    EXPECT_GT(arena.in_use(), held);
    arena.rewind(cp);
    EXPECT_EQ(arena.in_use(), held);

    // The next allocation of the same size lands on the released bytes.
    float* b = arena.allocate_floats(32);
    EXPECT_EQ(a, b);
}

TEST(ArenaTest, CheckpointsNestLifo) {
    TensorArena arena(1u << 12);
    const TensorArena::Checkpoint outer = arena.checkpoint();
    (void)arena.allocate(100);
    const TensorArena::Checkpoint inner = arena.checkpoint();
    const std::size_t at_inner = arena.in_use();
    (void)arena.allocate(200);
    (void)arena.allocate(300);

    arena.rewind(inner);
    EXPECT_EQ(arena.in_use(), at_inner);
    arena.rewind(outer);
    EXPECT_EQ(arena.in_use(), 0u);
}

TEST(ArenaTest, GrowsAcrossBlocksAndRewindsBackThroughThem) {
    TensorArena arena(/*initial_bytes=*/256);
    const TensorArena::Checkpoint start = arena.checkpoint();
    // Far more than the first block: forces several doubling additions.
    float* big[8];
    for (auto& p : big) {
        p = arena.allocate_floats(200);  // 800 B each
        std::memset(p, 0, 200 * sizeof(float));
    }
    EXPECT_GE(arena.block_count(), 2u);
    EXPECT_GE(arena.capacity(), arena.in_use());
    const std::size_t peak = arena.high_water_mark();
    EXPECT_GE(peak, 8u * 200u * sizeof(float));

    arena.rewind(start);
    EXPECT_EQ(arena.in_use(), 0u);
    EXPECT_EQ(arena.high_water_mark(), peak);  // HWM survives the rewind
    // Capacity is retained: the same workload re-runs with no new blocks.
    const std::size_t blocks = arena.block_count();
    for (int i = 0; i < 8; ++i) (void)arena.allocate_floats(200);
    EXPECT_EQ(arena.block_count(), blocks);
}

TEST(ArenaTest, ResetKeepsCapacity) {
    TensorArena arena(256);
    (void)arena.allocate(2000);
    const std::size_t cap = arena.capacity();
    arena.reset();
    EXPECT_EQ(arena.in_use(), 0u);
    EXPECT_EQ(arena.capacity(), cap);
}

TEST(ArenaTest, MaxBytesCapThrowsBadAllocAndStaysUsable) {
    TensorArena arena(/*initial_bytes=*/256, /*max_bytes=*/512);
    float* a = arena.allocate_floats(50);  // 200 B -> first 256 B block
    a[0] = 1.0f;
    // Doubling would exceed the cap; the arena must fall back to the
    // exact request (another 256 B block) instead of failing early.
    float* b = arena.allocate_floats(50);
    b[0] = 2.0f;
    EXPECT_EQ(arena.capacity(), 512u);
    // Now the cap is exhausted: fail loudly, never overlap.
    EXPECT_THROW((void)arena.allocate_floats(50), std::bad_alloc);
    // Prior allocations are untouched and the arena still works.
    EXPECT_EQ(a[0], 1.0f);
    EXPECT_EQ(b[0], 2.0f);
    arena.reset();
    EXPECT_NO_THROW((void)arena.allocate_floats(50));
}

TEST(ArenaTest, OversizedRequestGetsItsOwnBlock) {
    TensorArena arena(/*initial_bytes=*/64);
    float* p = arena.allocate_floats(10000);  // ~40 KB >> initial block
    std::memset(p, 0, 10000 * sizeof(float));
    EXPECT_TRUE(aligned(p));
}

TEST(EvalContextTest, ScratchRegistryReusesWhenBigEnough) {
    EvalContext ctx;
    float* a = ctx.reserve_scratch(&ctx, 0, 128);
    // Same key, smaller or equal request: the exact same buffer.
    EXPECT_EQ(ctx.reserve_scratch(&ctx, 0, 64), a);
    EXPECT_EQ(ctx.reserve_scratch(&ctx, 0, 128), a);
    // Larger request re-reserves (old region parks in the arena).
    float* grown = ctx.reserve_scratch(&ctx, 0, 256);
    EXPECT_NE(grown, a);
    EXPECT_EQ(ctx.reserve_scratch(&ctx, 0, 256), grown);
}

TEST(EvalContextTest, ScratchSlotsAreDisjoint) {
    EvalContext ctx;
    int owner_a = 0, owner_b = 0;
    float* s0 = ctx.reserve_scratch(&owner_a, 0, 64);
    float* s1 = ctx.reserve_scratch(&owner_a, 1, 64);
    float* t0 = ctx.reserve_scratch(&owner_b, 0, 64);
    EXPECT_NE(s0, s1);
    EXPECT_NE(s0, t0);
    EXPECT_NE(s1, t0);
    // Writes through one slot must not bleed into another.
    for (std::size_t i = 0; i < 64; ++i) {
        s0[i] = 1.0f;
        s1[i] = 2.0f;
        t0[i] = 3.0f;
    }
    EXPECT_EQ(s0[63], 1.0f);
    EXPECT_EQ(s1[0], 2.0f);
    EXPECT_EQ(t0[0], 3.0f);
}

TEST(EvalContextTest, ActivationRewindDoesNotDisturbScratch) {
    EvalContext ctx;
    float* scratch = ctx.reserve_scratch(&ctx, 7, 16);
    scratch[0] = 42.0f;
    const TensorArena::Checkpoint cp = ctx.checkpoint();
    (void)ctx.alloc_activation(1024);
    ctx.rewind(cp);
    // Scratch lives in its own arena; per-batch rewinds cannot kill it.
    EXPECT_EQ(ctx.reserve_scratch(&ctx, 7, 16), scratch);
    EXPECT_EQ(scratch[0], 42.0f);
}

TEST(EvalContextTest, HighWaterMarkSumsBothArenas) {
    EvalContext ctx;
    EXPECT_EQ(ctx.high_water_mark(), 0u);
    (void)ctx.alloc_activation(100);
    (void)ctx.reserve_scratch(&ctx, 0, 100);
    EXPECT_GE(ctx.high_water_mark(), 2u * 100u * sizeof(float));
}

}  // namespace
}  // namespace ams::runtime
