#include "ams/error_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ams::vmac {
namespace {

VmacConfig cfg(double enob, std::size_t nmult) {
    VmacConfig c;
    c.enob = enob;
    c.nmult = nmult;
    return c;
}

TEST(ErrorModelTest, LsbMatchesEquationOne) {
    // LSB = Nmult * 2^-(ENOB-1): paper Eq. 1.
    EXPECT_DOUBLE_EQ(vmac_lsb(cfg(10.0, 8)), 8.0 * std::exp2(-9.0));
    EXPECT_DOUBLE_EQ(vmac_lsb(cfg(12.5, 16)), 16.0 * std::exp2(-11.5));
}

TEST(ErrorModelTest, VarianceIsLsbSquaredOverTwelve) {
    const VmacConfig c = cfg(10.0, 8);
    const double lsb = vmac_lsb(c);
    EXPECT_DOUBLE_EQ(vmac_error_variance(c), lsb * lsb / 12.0);
}

TEST(ErrorModelTest, TotalVarianceScalesWithNtotOverNmult) {
    // Eq. 2: Var(E_tot) = (Ntot/Nmult) * Var(E_VMAC).
    const VmacConfig c = cfg(11.0, 8);
    EXPECT_DOUBLE_EQ(total_error_variance(c, 8), vmac_error_variance(c));
    EXPECT_DOUBLE_EQ(total_error_variance(c, 80), 10.0 * vmac_error_variance(c));
    EXPECT_DOUBLE_EQ(total_error_stddev(c, 72),
                     std::sqrt(total_error_variance(c, 72)));
}

TEST(ErrorModelTest, EachExtraBitQuartersVariance) {
    const double v10 = total_error_variance(cfg(10.0, 8), 64);
    const double v11 = total_error_variance(cfg(11.0, 8), 64);
    EXPECT_NEAR(v10 / v11, 4.0, 1e-9);
}

TEST(ErrorModelTest, NmultDependenceIsLinearAtFixedNtot) {
    // Paper Sec. 4: quadratically more error per VMAC but linearly fewer
    // VMACs -> overall linear in Nmult.
    const double v8 = total_error_variance(cfg(10.0, 8), 64);
    const double v16 = total_error_variance(cfg(10.0, 16), 64);
    EXPECT_NEAR(v16 / v8, 2.0, 1e-9);
}

TEST(ErrorModelTest, VmacsPerOutputCeils) {
    EXPECT_EQ(vmacs_per_output(cfg(10, 8), 8), 1u);
    EXPECT_EQ(vmacs_per_output(cfg(10, 8), 9), 2u);
    EXPECT_EQ(vmacs_per_output(cfg(10, 8), 72), 9u);
    EXPECT_THROW((void)vmacs_per_output(cfg(10, 8), 0), std::invalid_argument);
}

TEST(ErrorModelTest, EquivalentEnobKeepsNoiseScale) {
    // Shifting Nmult while applying the equivalent ENOB leaves the noise
    // scale (and hence accuracy) unchanged.
    for (std::size_t n_from : {1u, 8u, 64u}) {
        for (std::size_t n_to : {2u, 8u, 256u}) {
            const double e = equivalent_enob(10.0, n_from, n_to);
            EXPECT_NEAR(noise_scale(e, n_to), noise_scale(10.0, n_from), 1e-12);
        }
    }
}

TEST(ErrorModelTest, EquivalentEnobKnownValues) {
    // Quadrupling Nmult costs one ENOB.
    EXPECT_DOUBLE_EQ(equivalent_enob(10.0, 8, 32), 11.0);
    EXPECT_DOUBLE_EQ(equivalent_enob(10.0, 8, 2), 9.0);
    EXPECT_DOUBLE_EQ(equivalent_enob(10.0, 8, 8), 10.0);
}

TEST(ErrorModelTest, ValidationErrors) {
    VmacConfig bad = cfg(0.0, 8);
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    EXPECT_THROW((void)vmac_lsb(cfg(-1.0, 8)), std::invalid_argument);
    EXPECT_THROW((void)total_error_variance(cfg(10, 8), 0), std::invalid_argument);
    EXPECT_THROW((void)equivalent_enob(10.0, 0, 8), std::invalid_argument);
    VmacConfig zero_n = cfg(10.0, 8);
    zero_n.nmult = 0;
    EXPECT_THROW(zero_n.validate(), std::invalid_argument);
    VmacConfig bad_bits = cfg(10.0, 8);
    bad_bits.bits_w = 1;
    EXPECT_THROW(bad_bits.validate(), std::invalid_argument);
}

struct GridCase {
    double enob;
    std::size_t nmult;
    std::size_t ntot;
};

class ErrorModelGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(ErrorModelGrid, ClosedFormMatchesDirectEvaluation) {
    const auto p = GetParam();
    const VmacConfig c = cfg(p.enob, p.nmult);
    // sigma = sqrt(Ntot * Nmult) * 2^-(ENOB-1) / sqrt(12)
    const double expected = std::sqrt(static_cast<double>(p.ntot) * p.nmult) *
                            std::exp2(-(p.enob - 1.0)) / std::sqrt(12.0);
    EXPECT_NEAR(total_error_stddev(c, p.ntot), expected, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Grid, ErrorModelGrid,
                         ::testing::Values(GridCase{8.0, 8, 72}, GridCase{10.5, 16, 1152},
                                           GridCase{12.5, 8, 4608}, GridCase{6.0, 4, 32},
                                           GridCase{9.0, 64, 2304}));

}  // namespace
}  // namespace ams::vmac
