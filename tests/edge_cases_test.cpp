// Cross-cutting edge cases and failure-injection tests that don't belong
// to a single module's suite.
#include <gtest/gtest.h>

#include <cmath>

#include "amsnet.hpp"

namespace ams {
namespace {

TEST(EdgeCaseTest, LoadStateRejectsWrongShapes) {
    models::LayerCommon common;
    common.bits_w = quant::kFloatBits;
    common.bits_x = quant::kFloatBits;
    models::ResNet model(models::tiny_resnet_config(common));
    TensorMap state;
    model.collect_state("", state);
    // Corrupt one entry's shape.
    state["stem.conv.weight"] = Tensor(Shape{1, 1, 1, 1});
    EXPECT_THROW(model.load_state("", state), std::runtime_error);
    // Missing entry.
    TensorMap empty;
    EXPECT_THROW(model.load_state("", empty), std::runtime_error);
}

TEST(EdgeCaseTest, TopkWithKEqualToClassesAlwaysHits) {
    Tensor logits(Shape{5, 3}, 0.0f);
    EXPECT_DOUBLE_EQ(nn::topk_accuracy(logits, {0, 1, 2, 0, 1}, 3), 1.0);
}

TEST(EdgeCaseTest, PartitionedOneByOneMatchesMonolithicConverter) {
    // NW = NX = 1 degenerates to a single conversion of the whole product:
    // identical to a plain noiseless VmacCell of the same resolution.
    vmac::VmacConfig c;
    c.enob = 9.0;
    c.nmult = 8;
    c.bits_w = 9;
    c.bits_x = 9;
    vmac::PartitionOptions opt;
    opt.nw = 1;
    opt.nx = 1;
    opt.enob_partial = 9.0;
    vmac::PartitionedVmac pv(c, opt);
    vmac::VmacCell cell(c);
    Rng rng(3);
    for (int t = 0; t < 200; ++t) {
        std::vector<double> w(8), x(8);
        for (double& v : w) v = rng.uniform(-1.0, 1.0);
        for (double& v : x) v = rng.uniform(0.0, 1.0);
        Rng r1(t), r2(t);
        EXPECT_NEAR(pv.dot(w, x, r1), cell.dot(w, x, r2), 1e-9);
    }
}

TEST(EdgeCaseTest, DeltaSigmaHandlesRaggedTailChunk) {
    vmac::VmacConfig c;
    c.enob = 8.0;
    c.nmult = 8;
    vmac::DeltaSigmaVmac ds(c, 14.0);
    Rng rng(4);
    std::vector<double> w(13), x(13);  // 8 + 5: last chunk is partial
    for (double& v : w) v = rng.uniform(-1.0, 1.0);
    for (double& v : x) v = rng.uniform(0.0, 1.0);
    vmac::VmacCell exact([] {
        vmac::VmacConfig e;
        e.enob = 24.0;
        e.nmult = 16;
        return e;
    }());
    const double ideal = exact.dot_ideal(w, x);
    const double got = ds.dot(w, x, rng);
    const double final_lsb = 2.0 * 8.0 * std::exp2(-14.0);
    EXPECT_LE(std::fabs(got - ideal), 0.5 * final_lsb + 1e-12);
}

TEST(EdgeCaseTest, InjectorWithNtotSmallerThanNmult) {
    // A 1x1 conv over few channels can have N_tot < Nmult; Eq. 2's ratio
    // is then < 1 (one partially-filled VMAC) and must still be sane.
    vmac::VmacConfig c;
    c.enob = 8.0;
    c.nmult = 16;
    EXPECT_GT(vmac::total_error_variance(c, 4), 0.0);
    EXPECT_LT(vmac::total_error_variance(c, 4), vmac::vmac_error_variance(c));
    EXPECT_EQ(vmac::vmacs_per_output(c, 4), 1u);
}

TEST(EdgeCaseTest, EvaluateOnSingleSample) {
    models::LayerCommon common;
    common.bits_w = quant::kFloatBits;
    common.bits_x = quant::kFloatBits;
    models::ResNet model(models::tiny_resnet_config(common));
    Rng rng(5);
    Tensor image(Shape{1, 3, 8, 8});
    image.fill_uniform(rng, -1.0f, 1.0f);
    const auto r = train::evaluate_top1(model, image, {0}, 16, 2);
    EXPECT_TRUE(r.mean == 0.0 || r.mean == 1.0);
}

TEST(EdgeCaseTest, BatchOfOneThroughBatchNormTraining) {
    // N=1 training batches make per-channel variance over H*W only;
    // must not divide by zero for spatial size > 1.
    nn::BatchNorm2d bn(2);
    bn.set_training(true);
    Rng rng(6);
    Tensor x(Shape{1, 2, 4, 4});
    x.fill_normal(rng, 0.0f, 1.0f);
    Tensor y = bn.forward(x);
    for (std::size_t i = 0; i < y.size(); ++i) EXPECT_TRUE(std::isfinite(y[i]));
}

TEST(EdgeCaseTest, ReferenceScaleSweepWithConstantSamples) {
    // Degenerate data (all samples identical) must not crash and must
    // report zero clipping for scales that cover the value.
    vmac::VmacConfig c;
    c.enob = 8.0;
    c.nmult = 8;
    std::vector<double> samples(100, 1.5);
    const auto r = vmac::evaluate_reference_scale(c, samples, 0.5);  // ref = 4
    EXPECT_DOUBLE_EQ(r.clip_fraction, 0.0);
    EXPECT_LE(r.rms_error, 0.5 * 2.0 * 4.0 * std::exp2(-8.0) + 1e-12);
}

TEST(EdgeCaseTest, QuantConvFullRangeWeightSurvivesRoundTrip) {
    // Weights exactly at the tanh-normalized extremes map to +/-1 and
    // back through state save/load without drift.
    Rng rng(7);
    nn::Conv2dOptions opts{1, 2, 1, 1, 0, false};
    quant::QuantConv2d qconv(opts, 4, rng);
    qconv.conv().weight().value[0] = 10.0f;   // tanh ~ 1
    qconv.conv().weight().value[1] = -10.0f;  // tanh ~ -1
    Tensor x(Shape{1, 1, 1, 1}, 1.0f);
    Tensor y = qconv.forward(x);
    EXPECT_NEAR(y[0], 1.0f, 1e-6f);
    EXPECT_NEAR(y[1], -1.0f, 1e-6f);
}

TEST(EdgeCaseTest, SequentialEmptyActsAsIdentity) {
    nn::Sequential seq;
    Tensor x = Tensor::from_data(Shape{2}, {1.0f, -2.0f});
    Tensor y = seq.forward(x);
    EXPECT_FLOAT_EQ(y[0], 1.0f);
    Tensor g = seq.backward(y);
    EXPECT_FLOAT_EQ(g[1], -2.0f);
    EXPECT_TRUE(seq.parameters().empty());
}

}  // namespace
}  // namespace ams
