#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace ams::core {
namespace {

namespace fs = std::filesystem;

ExperimentOptions tiny_options(const std::string& cache_dir) {
    ExperimentOptions o;
    o.dataset.classes = 4;
    o.dataset.train_per_class = 16;
    o.dataset.val_per_class = 8;
    o.dataset.image_size = 8;
    o.dataset.seed = 3;
    o.eval_passes = 2;
    o.batch_size = 16;
    o.fp32_train.epochs = 1;
    o.fp32_train.batch_size = 16;
    o.fp32_train.patience = 0;
    o.retrain.epochs = 1;
    o.retrain.batch_size = 16;
    o.retrain.patience = 0;
    o.cache_dir = cache_dir;
    return o;
}

class ExperimentEnvTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = (fs::temp_directory_path() / "amsnet_exp_test").string();
        fs::remove_all(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }
    std::string dir_;
};

TEST_F(ExperimentEnvTest, PipelinePhasesProduceLoadableStates) {
    ExperimentEnv env(tiny_options(dir_));
    const TensorMap fp32 = env.fp32_state();
    EXPECT_FALSE(fp32.empty());
    const auto r = env.evaluate_state(fp32, env.fp32_common());
    EXPECT_GE(r.mean, 0.0);
    EXPECT_EQ(r.passes.size(), 2u);

    const TensorMap quant = env.quantized_state(8, 8);
    EXPECT_FALSE(quant.empty());

    vmac::VmacConfig v;
    v.enob = 6.0;
    v.nmult = 8;
    const TensorMap ams = env.ams_retrained_state(8, 8, v);
    EXPECT_FALSE(ams.empty());
    const auto ra = env.evaluate_state(ams, env.ams_common(8, 8, v));
    EXPECT_GE(ra.mean, 0.0);
}

TEST_F(ExperimentEnvTest, StatesAreCachedOnDisk) {
    ExperimentEnv env(tiny_options(dir_));
    (void)env.fp32_state();
    std::size_t files = 0;
    for (const auto& e : fs::directory_iterator(dir_)) {
        (void)e;
        ++files;
    }
    EXPECT_EQ(files, 1u);
    // Second call must not add files (cache hit).
    (void)env.fp32_state();
    files = 0;
    for (const auto& e : fs::directory_iterator(dir_)) {
        (void)e;
        ++files;
    }
    EXPECT_EQ(files, 1u);
}

TEST_F(ExperimentEnvTest, FreezeTagChangesCacheKey) {
    ExperimentEnv env(tiny_options(dir_));
    vmac::VmacConfig v;
    v.enob = 6.0;
    v.nmult = 8;
    (void)env.ams_retrained_state(8, 8, v, {});
    (void)env.ams_retrained_state(8, 8, v, {models::LayerGroup::kBatchNorm});
    // fp32 + quant + two AMS variants = 4 cache files.
    std::size_t files = 0;
    for (const auto& e : fs::directory_iterator(dir_)) {
        (void)e;
        ++files;
    }
    EXPECT_EQ(files, 4u);
}

TEST_F(ExperimentEnvTest, CommonFactoriesSetBits) {
    ExperimentEnv env(tiny_options(dir_));
    EXPECT_EQ(env.fp32_common().bits_w, quant::kFloatBits);
    EXPECT_EQ(env.quant_common(6, 4).bits_w, 6u);
    EXPECT_EQ(env.quant_common(6, 4).bits_x, 4u);
    vmac::VmacConfig v;
    v.enob = 9.0;
    const auto c = env.ams_common(8, 8, v);
    EXPECT_TRUE(c.ams_enabled);
    EXPECT_DOUBLE_EQ(c.vmac.enob, 9.0);
}

TEST_F(ExperimentEnvTest, StandardOptionsAreSane) {
    const auto o = ExperimentOptions::standard();
    EXPECT_GE(o.dataset.classes, 2u);
    EXPECT_GT(o.fp32_train.epochs, 0u);
    EXPECT_GT(o.retrain.epochs, 0u);
    EXPECT_EQ(o.eval_passes, 5u);  // the paper's protocol
}

}  // namespace
}  // namespace ams::core
