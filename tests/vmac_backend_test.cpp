#include "ams/vmac_backend.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ams/adc_quantizer.hpp"
#include "ams/partitioned.hpp"

namespace ams::vmac {
namespace {

VmacConfig cfg(double enob, std::size_t nmult = 8, std::size_t bits = 16) {
    VmacConfig c;
    c.enob = enob;
    c.nmult = nmult;
    c.bits_w = bits;
    c.bits_x = bits;
    return c;
}

void random_operands(std::vector<double>& w, std::vector<double>& x, Rng& rng) {
    for (double& v : w) v = rng.uniform(-1.0, 1.0);
    for (double& v : x) v = rng.uniform(0.0, 1.0);
}

TEST(VmacBackendTest, KindNamesRoundTrip) {
    for (BackendKind kind : all_backend_kinds()) {
        EXPECT_EQ(parse_backend_kind(backend_kind_name(kind)), kind);
    }
    EXPECT_EQ(all_backend_kinds().size(), 6u);
    try {
        (void)parse_backend_kind("not_a_backend");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        // The error must list the valid names so the CLI is self-documenting.
        EXPECT_NE(std::string(e.what()).find("bit_exact"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("delta_sigma"), std::string::npos);
    }
}

TEST(VmacBackendTest, OptionsStrTagsAreDistinctPerConfiguration) {
    BackendOptions a;
    EXPECT_EQ(a.str(), "bit_exact");

    BackendOptions b;
    b.kind = BackendKind::kPartitioned;
    EXPECT_EQ(b.str(), "partitioned_nw2_nx2_p8");
    b.partition.significance_drop = 2.0;
    EXPECT_NE(b.str().find("_d2"), std::string::npos);

    BackendOptions c;
    c.kind = BackendKind::kDeltaSigma;
    c.delta_sigma_final_enob = 12.0;
    EXPECT_EQ(c.str(), "delta_sigma_f12");

    BackendOptions d;
    d.kind = BackendKind::kReferenceScaled;
    d.reference_scale = 0.25;
    EXPECT_EQ(d.str(), "reference_scaled_s0.25");

    BackendOptions e;
    e.kind = BackendKind::kBlockFp;
    EXPECT_EQ(e.str(), "block_fp_mauto");
    e.block_fp_mantissa_bits = 6;
    EXPECT_EQ(e.str(), "block_fp_m6");
}

TEST(VmacBackendTest, ConversionCountsMatchDatapaths) {
    const VmacConfig c = cfg(8.0, 8, 9);  // 8 magnitude bits: partitionable
    BackendOptions opts;
    for (BackendKind kind : all_backend_kinds()) {
        opts.kind = kind;
        const auto backend = make_backend(c, {}, opts);
        EXPECT_EQ(backend->kind(), kind);
        EXPECT_EQ(backend->name(), backend_kind_name(kind));
        EXPECT_FALSE(backend->trainable());
        if (kind == BackendKind::kPartitioned) {
            EXPECT_EQ(backend->conversions_per_vmac(), 4u);  // 2x2 default
        } else {
            EXPECT_EQ(backend->conversions_per_vmac(), 1u);
        }
    }
}

TEST(VmacBackendTest, ConversionProfilesPriceTheRightConversions) {
    const VmacConfig c = cfg(8.0, 8, 9);

    const auto bit_exact = make_backend(c, {});
    const ConversionProfile pe = bit_exact->conversion_profile();
    ASSERT_EQ(pe.size(), 1u);
    EXPECT_DOUBLE_EQ(pe[0].enob, 8.0);
    EXPECT_DOUBLE_EQ(pe[0].per_chunk, 1.0);
    EXPECT_DOUBLE_EQ(pe[0].per_output, 0.0);

    BackendOptions ds_opts;
    ds_opts.kind = BackendKind::kDeltaSigma;  // final defaults to enob + 4
    const auto ds = make_backend(c, {}, ds_opts);
    const ConversionProfile pd = ds->conversion_profile();
    ASSERT_EQ(pd.size(), 2u);
    EXPECT_DOUBLE_EQ(pd[0].enob, 8.0);
    EXPECT_DOUBLE_EQ(pd[0].per_chunk, 1.0);
    EXPECT_DOUBLE_EQ(pd[1].enob, 12.0);
    EXPECT_DOUBLE_EQ(pd[1].per_output, 1.0);
    EXPECT_DOUBLE_EQ(pd[1].per_chunk, 0.0);

    BackendOptions part_opts;
    part_opts.kind = BackendKind::kPartitioned;
    part_opts.partition.significance_drop = 2.0;
    part_opts.partition.min_enob = 4.0;
    const auto part = make_backend(c, {}, part_opts);
    const ConversionProfile pp = part->conversion_profile();
    ASSERT_EQ(pp.size(), 4u);
    // Depth-discounted resolutions: 8, 6, 6, 4.
    double total = 0.0;
    for (const ConversionCost& cost : pp) total += cost.enob;
    EXPECT_DOUBLE_EQ(total, 24.0);
}

TEST(VmacBackendTest, BitExactBackendMatchesVmacCell) {
    const VmacConfig c = cfg(7.0);
    AnalogOptions analog;
    analog.adc_noise_sigma = 0.01;
    const auto backend = make_backend(c, analog);
    VmacCell cell(c, analog);

    std::vector<double> w(8), x(8);
    Rng data_rng(11);
    Rng rng_a(21), rng_b(21);
    for (int t = 0; t < 50; ++t) {
        random_operands(w, x, data_rng);
        EXPECT_DOUBLE_EQ(backend->accumulate(w, x, rng_a), cell.dot(w, x, rng_b));
    }
    // Stateless: finish_output adds nothing and burns no rng draws.
    EXPECT_DOUBLE_EQ(backend->finish_output(rng_a), 0.0);
    EXPECT_DOUBLE_EQ(rng_a.next_u64(), rng_b.next_u64());
}

TEST(VmacBackendTest, PerVmacNoiseBackendMatchesManualModel) {
    const VmacConfig c = cfg(6.0);
    const auto backend = make_backend(c, {}, {.kind = BackendKind::kPerVmacNoise});
    VmacCell cell(c);

    std::vector<double> w(8), x(8);
    Rng data_rng(13);
    random_operands(w, x, data_rng);
    Rng rng_a(31), rng_b(31);
    double exact = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i) exact += w[i] * x[i];
    const double lsb = cell.adc_lsb();
    const double expected = exact + rng_b.uniform(-0.5 * lsb, 0.5 * lsb);
    EXPECT_DOUBLE_EQ(backend->accumulate(w, x, rng_a), expected);
    EXPECT_THROW((void)backend->accumulate(std::vector<double>(9), std::vector<double>(9),
                                           rng_a),
                 std::invalid_argument);
}

TEST(VmacBackendTest, DeltaSigmaBackendTelescopesToFinalConversionError) {
    const VmacConfig c = cfg(5.0);  // coarse per-cycle converter
    BackendOptions opts;
    opts.kind = BackendKind::kDeltaSigma;
    opts.delta_sigma_final_enob = 14.0;
    const auto backend = make_backend(c, {}, opts);
    VmacCell ideal(cfg(5.0));

    Rng data_rng(17), rng(19);
    std::vector<double> w(8), x(8);
    const double final_lsb = 2.0 * 8.0 * std::exp2(-14.0);
    for (int rep = 0; rep < 20; ++rep) {
        double total = 0.0, exact = 0.0;
        for (int chunk = 0; chunk < 12; ++chunk) {
            random_operands(w, x, data_rng);
            total += backend->accumulate(w, x, rng);
            exact += ideal.dot_ideal(w, x);
        }
        total += backend->finish_output(rng);
        // Only the final high-resolution conversion's error survives.
        EXPECT_NEAR(total, exact, 0.5 * final_lsb + 1e-12);
    }
}

TEST(VmacBackendTest, CloneResetsDeltaSigmaState) {
    const VmacConfig c = cfg(5.0);
    BackendOptions opts;
    opts.kind = BackendKind::kDeltaSigma;
    opts.delta_sigma_final_enob = 12.0;
    const auto dirty = make_backend(c, {}, opts);

    std::vector<double> w(8), x(8);
    Rng data_rng(23);
    random_operands(w, x, data_rng);
    Rng scratch(1);
    (void)dirty->accumulate(w, x, scratch);  // leave residual behind

    // A clone of the dirty backend must behave like a brand-new one.
    const auto cloned = dirty->clone();
    const auto fresh = make_backend(c, {}, opts);
    Rng rng_a(29), rng_b(29);
    for (int chunk = 0; chunk < 5; ++chunk) {
        random_operands(w, x, data_rng);
        EXPECT_DOUBLE_EQ(cloned->accumulate(w, x, rng_a), fresh->accumulate(w, x, rng_b));
    }
    EXPECT_DOUBLE_EQ(cloned->finish_output(rng_a), fresh->finish_output(rng_b));
}

TEST(VmacBackendTest, EveryDatapathSatisfiesTheCloneIsolationContract) {
    // Regression for the clone() contract make_backend asserts in debug
    // builds: clones own ALL mutable state (residuals, scratch, RNGs), so
    // driving one clone never perturbs another. Runs the checker
    // explicitly because release builds compile the factory assert out.
    const VmacConfig c = cfg(8.0, 8, 9);  // 8 magnitude bits: partitionable
    BackendOptions opts;
    for (BackendKind kind : all_backend_kinds()) {
        opts.kind = kind;
        const auto backend = make_backend(c, {}, opts);
        EXPECT_TRUE(verify_clone_isolation(*backend)) << backend_kind_name(kind);
    }
    // The device-variability decorator must preserve the property (its
    // lazily materialized cell realization is per-instance state).
    opts.kind = BackendKind::kPerVmacNoise;
    opts.variation.chip_seed = 11;
    opts.variation.cell_offset_sigma = 0.03;
    const auto dev = make_backend(c, {}, opts);
    EXPECT_TRUE(verify_clone_isolation(*dev));
}

TEST(VmacBackendTest, PartitionedAnalyticEnobMatchesMeasurement) {
    const VmacConfig c = cfg(8.0, 8, 9);
    BackendOptions opts;
    opts.kind = BackendKind::kPartitioned;
    const auto backend = make_backend(c, {}, opts);
    PartitionedVmac reference(c, opts.partition);

    Rng data_rng(37), rng(41);
    std::vector<double> w(8), x(8);
    double sq = 0.0;
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
        random_operands(w, x, data_rng);
        const double err = backend->accumulate(w, x, rng) - reference.dot_ideal(w, x);
        sq += err * err;
    }
    const double measured =
        effective_enob_from_rms(std::sqrt(sq / trials), /*full_scale=*/8.0);
    EXPECT_NEAR(backend->effective_enob(1), measured, 0.5);
    // Partitioning buys resolution over one conversion at the same ENOB.
    EXPECT_GT(backend->effective_enob(1), 8.0);
}

TEST(VmacBackendTest, ReferenceScalingTradesRangeForResolution) {
    const VmacConfig c = cfg(8.0);
    BackendOptions opts;
    opts.kind = BackendKind::kReferenceScaled;
    opts.reference_scale = 0.5;
    const auto backend = make_backend(c, {}, opts);
    // Halving the reference halves the LSB: +1 effective bit (no-clip).
    EXPECT_NEAR(backend->effective_enob(1), 9.0, 1e-9);

    // The scaled converter clips where the unscaled one does not.
    std::vector<double> w(8, 1.0), x(8, 1.0);  // saturating dot = full scale
    Rng rng(43);
    EXPECT_NEAR(backend->accumulate(w, x, rng), 4.0, 0.1);  // clipped at ref

    opts.reference_scale = 0.0;
    EXPECT_THROW((void)make_backend(c, {}, opts), std::invalid_argument);
}

TEST(VmacBackendTest, DeltaSigmaEffectiveEnobImprovesWithStationarity) {
    const VmacConfig c = cfg(6.0);
    BackendOptions opts;
    opts.kind = BackendKind::kDeltaSigma;
    opts.delta_sigma_final_enob = 10.0;
    const auto backend = make_backend(c, {}, opts);
    // chunks * LSB(eq)^2 = LSB(final)^2  =>  eq = final + 0.5 log2(chunks).
    EXPECT_NEAR(backend->effective_enob(1), 10.0, 1e-12);
    EXPECT_NEAR(backend->effective_enob(16), 12.0, 1e-12);
    EXPECT_NEAR(backend->effective_enob(0), 10.0, 1e-12);  // degenerate guard
}

TEST(VmacBackendTest, PartitionedRejectsNonDivisibleOperandBits) {
    BackendOptions opts;
    opts.kind = BackendKind::kPartitioned;
    // Default 8-bit operands have 7 magnitude bits — not divisible by 2.
    EXPECT_THROW((void)make_backend(cfg(8.0, 8, 8), {}, opts), std::invalid_argument);
}

TEST(VmacBackendTest, BlockFpExactOnRepresentableOperandsAcrossScales) {
    // Operands that are multiples of 2^-5 encode exactly whenever the
    // mantissa budget covers 5 fractional bits below the block exponent
    // — at *any* magnitude scale, because the block exponent follows the
    // data. The noise-free datapath then reduces to the shared ADC
    // conversion of the exact dot, and burns no rng draws.
    const VmacConfig c = cfg(8.0);
    BackendOptions opts;
    opts.kind = BackendKind::kBlockFp;
    opts.block_fp_mantissa_bits = 8;
    const auto backend = make_backend(c, {}, opts);
    const AdcQuantizer quantizer(c.enob, /*full_scale=*/8.0, /*reference_scale=*/1.0);

    Rng data_rng(47);
    Rng rng_a(51), rng_b(51);
    std::vector<double> w(8), x(8);
    for (const double scale : {1.0, 1.0 / 64.0, 1.0 / 4096.0}) {
        for (int t = 0; t < 25; ++t) {
            double exact = 0.0;
            for (std::size_t i = 0; i < w.size(); ++i) {
                w[i] = static_cast<double>(static_cast<int>(data_rng.uniform(-32.0, 33.0))) /
                       32.0 * scale;
                x[i] = static_cast<double>(static_cast<int>(data_rng.uniform(0.0, 33.0))) /
                       32.0 * scale;
                exact += w[i] * x[i];
            }
            EXPECT_DOUBLE_EQ(backend->accumulate(w, x, rng_a), quantizer.convert(exact))
                << "scale=" << scale;
        }
    }
    // Deterministic when noise-free: rng untouched (plan bit-identity
    // across thread counts depends on this).
    EXPECT_DOUBLE_EQ(backend->finish_output(rng_a), 0.0);
    EXPECT_EQ(rng_a.next_u64(), rng_b.next_u64());
}

TEST(VmacBackendTest, BlockFpContractAndEffectiveEnob) {
    const VmacConfig c = cfg(8.0, 8, 9);
    BackendOptions opts;
    opts.kind = BackendKind::kBlockFp;
    const auto backend = make_backend(c, {}, opts);
    EXPECT_EQ(backend->kind(), BackendKind::kBlockFp);
    EXPECT_EQ(backend->conversions_per_vmac(), 1u);
    const ConversionProfile profile = backend->conversion_profile();
    ASSERT_EQ(profile.size(), 1u);
    EXPECT_DOUBLE_EQ(profile[0].enob, 8.0);
    EXPECT_DOUBLE_EQ(profile[0].per_chunk, 1.0);
    EXPECT_DOUBLE_EQ(profile[0].per_output, 0.0);

    // Clone preserves behavior (stateless datapath).
    const auto cloned = backend->clone();
    std::vector<double> w(8), x(8);
    Rng data_rng(53);
    random_operands(w, x, data_rng);
    Rng rng_a(57), rng_b(57);
    EXPECT_DOUBLE_EQ(cloned->accumulate(w, x, rng_a), backend->accumulate(w, x, rng_b));

    // Worst-case analytic ENOB: more mantissa bits approach the pure-ADC
    // resolution from below; a starved mantissa dominates the budget.
    auto enob_for = [&](std::size_t bits) {
        BackendOptions o;
        o.kind = BackendKind::kBlockFp;
        o.block_fp_mantissa_bits = bits;
        return make_backend(c, {}, o)->effective_enob(1);
    };
    EXPECT_NEAR(enob_for(24), 8.0, 0.05);
    EXPECT_LT(enob_for(4), enob_for(12));
    EXPECT_LT(enob_for(12), enob_for(24));
    EXPECT_LE(enob_for(24), 8.0);
}

TEST(VmacBackendTest, BlockFpRejectsInvalidMantissaBits) {
    BackendOptions opts;
    opts.kind = BackendKind::kBlockFp;
    opts.block_fp_mantissa_bits = 1;  // below the [2, 30] floor
    EXPECT_THROW((void)make_backend(cfg(8.0), {}, opts), std::invalid_argument);
    opts.block_fp_mantissa_bits = 31;
    EXPECT_THROW((void)make_backend(cfg(8.0), {}, opts), std::invalid_argument);
    // Derived default (bits - 1 magnitude bits) stays in range for the
    // operand widths the models use.
    opts.block_fp_mantissa_bits = 0;
    EXPECT_NO_THROW((void)make_backend(cfg(8.0, 8, 8), {}, opts));
}

}  // namespace
}  // namespace ams::vmac
