// Packed integer GEMM property tests: every dispatch arm (scalar,
// SSE4.1, AVX2) must produce the *same bits* as the naive integer
// reference at any thread count — integer accumulation is exact and
// associative, so unlike the fp32 kernels there is no toleranced arm.
// Shapes sweep the microkernel remainder tails: partial 4-row A tiles,
// masked B column groups, k not divisible by the 4-wide (int8) and
// 2-wide (int16) k-blocks.
#include "tensor/gemm_int.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "runtime/simd.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/im2col.hpp"
#include "tensor/rng.hpp"

namespace ams {
namespace {

class LevelGuard {
public:
    LevelGuard() : saved_(simd::active_level()) {}
    ~LevelGuard() { simd::set_level(saved_); }

private:
    simd::Level saved_;
};

struct ShapeCase {
    std::size_t m, k, n;
};

// Remainder coverage: m % 4, n % 8, k % 4 (and % 2) all nonzero
// somewhere, plus degenerate single-row/column cases and one size large
// enough to cross the parallel-dispatch threshold.
constexpr ShapeCase kShapes[] = {
    {1, 1, 1},   {1, 9, 8},   {4, 27, 49},  {5, 27, 49},  {3, 7, 5},
    {6, 13, 17}, {8, 32, 64}, {17, 51, 33}, {64, 36, 81},
};

std::vector<std::int32_t> naive_s8u8(const std::vector<std::int8_t>& a,
                                     const std::vector<std::uint8_t>& b, std::size_t m,
                                     std::size_t k, std::size_t n) {
    std::vector<std::int32_t> c(m * n, 0);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t kk = 0; kk < k; ++kk) {
            for (std::size_t j = 0; j < n; ++j) {
                c[i * n + j] += static_cast<std::int32_t>(a[i * k + kk]) * b[kk * n + j];
            }
        }
    }
    return c;
}

std::vector<std::int32_t> naive_s16(const std::vector<std::int16_t>& a,
                                    const std::vector<std::int16_t>& b, std::size_t m,
                                    std::size_t k, std::size_t n) {
    std::vector<std::int32_t> c(m * n, 0);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t kk = 0; kk < k; ++kk) {
            for (std::size_t j = 0; j < n; ++j) {
                c[i * n + j] += static_cast<std::int32_t>(a[i * k + kk]) * b[kk * n + j];
            }
        }
    }
    return c;
}

std::vector<simd::Level> testable_levels() {
    std::vector<simd::Level> levels{simd::Level::kScalar};
#if defined(AMSNET_HAVE_SSE41)
    if (simd::level_at_least(simd::detect_level(), simd::Level::kSse41)) {
        levels.push_back(simd::Level::kSse41);
    }
#endif
#if defined(AMSNET_HAVE_AVX2)
    if (simd::cpu_supports_avx2_fma()) levels.push_back(simd::Level::kAvx2);
#endif
    return levels;
}

TEST(GemmIntTest, S8U8AllArmsBitEqualToNaiveAtOneAndFourThreads) {
    LevelGuard guard;
    Rng rng(5);
    for (const ShapeCase s : kShapes) {
        std::vector<std::int8_t> a(s.m * s.k);
        for (auto& v : a) v = static_cast<std::int8_t>(rng.uniform(-127.0, 127.0));
        std::vector<std::uint8_t> b(s.k * s.n);
        for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform(0.0, 127.0));
        const std::vector<std::int32_t> expected = naive_s8u8(a, b, s.m, s.k, s.n);

        for (const simd::Level level : testable_levels()) {
            simd::set_level(level);
            for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
                runtime::ThreadPool::set_global_threads(threads);
                std::vector<std::int32_t> c(s.m * s.n, -1);
                gemm_s8u8(a.data(), b.data(), c.data(), s.m, s.k, s.n);
                EXPECT_EQ(std::memcmp(c.data(), expected.data(),
                                      c.size() * sizeof(std::int32_t)),
                          0)
                    << "m=" << s.m << " k=" << s.k << " n=" << s.n << " level="
                    << simd::level_name(level) << " threads=" << threads;
            }
        }
    }
    runtime::ThreadPool::set_global_threads(runtime::ThreadPool::threads_from_env());
}

TEST(GemmIntTest, S16AllArmsBitEqualToNaiveAtOneAndFourThreads) {
    LevelGuard guard;
    Rng rng(6);
    for (const ShapeCase s : kShapes) {
        std::vector<std::int16_t> a(s.m * s.k);
        for (auto& v : a) v = static_cast<std::int16_t>(rng.uniform(-1023.0, 1023.0));
        std::vector<std::int16_t> b(s.k * s.n);
        for (auto& v : b) v = static_cast<std::int16_t>(rng.uniform(-1023.0, 1023.0));
        const std::vector<std::int32_t> expected = naive_s16(a, b, s.m, s.k, s.n);

        for (const simd::Level level : testable_levels()) {
            simd::set_level(level);
            for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
                runtime::ThreadPool::set_global_threads(threads);
                std::vector<std::int32_t> c(s.m * s.n, -1);
                gemm_s16(a.data(), b.data(), c.data(), s.m, s.k, s.n);
                EXPECT_EQ(std::memcmp(c.data(), expected.data(),
                                      c.size() * sizeof(std::int32_t)),
                          0)
                    << "m=" << s.m << " k=" << s.k << " n=" << s.n << " level="
                    << simd::level_name(level) << " threads=" << threads;
            }
        }
    }
    runtime::ThreadPool::set_global_threads(runtime::ThreadPool::threads_from_env());
}

TEST(GemmIntTest, ExtremeCodesCannotSaturateTheInnerProducts) {
    // The documented operand contracts at their limits: pmaddubsw's i16
    // intermediate holds 2 * 127 * 127, pmaddwd's i32 holds 2 * 32767^2.
    LevelGuard guard;
    const std::size_t m = 5, k = 9, n = 11;
    std::vector<std::int8_t> a8(m * k, -127);
    std::vector<std::uint8_t> b8(k * n, 127);
    const auto expected8 = naive_s8u8(a8, b8, m, k, n);
    std::vector<std::int16_t> a16(m * k, -32767);
    std::vector<std::int16_t> b16(k * n, 32767);
    const auto expected16 = naive_s16(a16, b16, m, k, n);

    for (const simd::Level level : testable_levels()) {
        simd::set_level(level);
        std::vector<std::int32_t> c8(m * n);
        gemm_s8u8(a8.data(), b8.data(), c8.data(), m, k, n);
        EXPECT_EQ(std::memcmp(c8.data(), expected8.data(), c8.size() * sizeof(std::int32_t)),
                  0)
            << simd::level_name(level);
        std::vector<std::int32_t> c16(m * n);
        gemm_s16(a16.data(), b16.data(), c16.data(), m, k, n);
        EXPECT_EQ(
            std::memcmp(c16.data(), expected16.data(), c16.size() * sizeof(std::int32_t)), 0)
            << simd::level_name(level);
    }
}

TEST(GemmIntTest, AccumulatorSafetyBound) {
    // 127 * 127 * k <= 2^30 up to k = 66572.
    EXPECT_TRUE(int_accumulator_safe(127, 127, 66572));
    EXPECT_FALSE(int_accumulator_safe(127, 127, 66573));
    EXPECT_TRUE(int_accumulator_safe(32767, 32767, 1));
    EXPECT_FALSE(int_accumulator_safe(32767, 32767, 2));
    EXPECT_TRUE(int_accumulator_safe(0, 0, 1u << 31));
}

TEST(GemmIntTest, ModeNamesParseAndRoundTrip) {
    for (const GemmIntMode mode : {GemmIntMode::kOff, GemmIntMode::kInt8, GemmIntMode::kInt16,
                                   GemmIntMode::kAuto}) {
        EXPECT_EQ(parse_gemm_int_mode(gemm_int_mode_name(mode)), mode);
    }
    EXPECT_EQ(parse_gemm_int_mode(nullptr), GemmIntMode::kOff);
    EXPECT_EQ(parse_gemm_int_mode(""), GemmIntMode::kOff);
    EXPECT_EQ(parse_gemm_int_mode("bogus"), GemmIntMode::kOff);

    ::setenv("AMSNET_GEMM_INT", "auto", 1);
    EXPECT_EQ(env_gemm_int_mode(), GemmIntMode::kAuto);
    ::unsetenv("AMSNET_GEMM_INT");
    EXPECT_EQ(env_gemm_int_mode(), GemmIntMode::kOff);
}

TEST(GemmIntTest, CodeIm2colMatchesFloatIm2colAddressing) {
    // im2col_u8 / im2col_i16 must place code[p] exactly where the float
    // lowering places float(code[p]), with padding encoded as code 0.
    ConvGeometry g;
    g.in_channels = 3;
    g.in_h = 7;
    g.in_w = 6;
    g.kernel_h = 3;
    g.kernel_w = 3;
    g.stride_h = 2;
    g.stride_w = 1;
    g.pad_h = 1;
    g.pad_w = 1;
    const std::size_t image = g.in_channels * g.in_h * g.in_w;
    const std::size_t cols = g.patch_size() * g.out_h() * g.out_w();

    Rng rng(9);
    std::vector<std::uint8_t> codes_u8(image);
    for (auto& c : codes_u8) c = static_cast<std::uint8_t>(rng.uniform(0.0, 127.0));
    std::vector<float> as_float(image);
    for (std::size_t i = 0; i < image; ++i) as_float[i] = static_cast<float>(codes_u8[i]);

    std::vector<float> float_cols(cols);
    im2col(as_float.data(), g, float_cols.data());
    std::vector<std::uint8_t> u8_cols(cols, 255);
    im2col_u8(codes_u8.data(), g, u8_cols.data());
    std::vector<std::int16_t> i16_codes(image);
    for (std::size_t i = 0; i < image; ++i) i16_codes[i] = codes_u8[i];
    std::vector<std::int16_t> i16_cols(cols, -1);
    im2col_i16(i16_codes.data(), g, i16_cols.data());

    for (std::size_t i = 0; i < cols; ++i) {
        EXPECT_EQ(static_cast<float>(u8_cols[i]), float_cols[i]) << "col " << i;
        EXPECT_EQ(static_cast<float>(i16_cols[i]), float_cols[i]) << "col " << i;
    }
}

}  // namespace
}  // namespace ams
