#include "core/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ams::core {
namespace {

TEST(ReportTest, TableAlignsColumns) {
    Table t({"name", "value"});
    t.add_row({"short", "1"});
    t.add_row({"a much longer name", "2"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("a much longer name"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    // Each printed row of a 2-col table has the separator gutter.
    EXPECT_NE(out.find("short               1"), std::string::npos);
}

TEST(ReportTest, RowsPaddedToHeaderCount) {
    Table t({"a", "b", "c"});
    t.add_row({"only one"});
    std::ostringstream os;
    EXPECT_NO_THROW(t.print(os));
}

TEST(ReportTest, FixedFormatting) {
    EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
    EXPECT_EQ(fmt_fixed(-0.5, 1), "-0.5");
}

TEST(ReportTest, PercentFormatting) {
    EXPECT_EQ(fmt_pct(0.0353), "3.53%");
    EXPECT_EQ(fmt_pct(-0.002, 1), "-0.2%");
}

TEST(ReportTest, MeanStdFormatting) {
    EXPECT_EQ(fmt_mean_std(0.778, 0.001), "0.778 +/- 0.001");
}

TEST(ReportTest, EnergyFormattingSwitchesUnits) {
    EXPECT_EQ(fmt_energy_fj(313.0), "313.0 fJ");
    EXPECT_EQ(fmt_energy_fj(1250.0), "1.25 pJ");
}

TEST(ReportTest, BannerContainsTitleAndReference) {
    std::ostringstream os;
    print_banner(os, "Table 1", "paper Table 1");
    EXPECT_NE(os.str().find("Table 1"), std::string::npos);
    EXPECT_NE(os.str().find("Paper reference: paper Table 1"), std::string::npos);
}

}  // namespace
}  // namespace ams::core
