#include "ams/reference_scaling.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ams::vmac {
namespace {

VmacConfig cfg(double enob, std::size_t nmult) {
    VmacConfig c;
    c.enob = enob;
    c.nmult = nmult;
    return c;
}

std::vector<double> gaussian_samples(std::size_t n, double sigma, Rng& rng) {
    std::vector<double> v(n);
    for (double& x : v) x = rng.normal(0.0, sigma);
    return v;
}

TEST(ReferenceScalingTest, UnitScaleNeverClips) {
    Rng rng(1);
    // Samples well inside the natural full scale of 8.
    const auto samples = gaussian_samples(5000, 0.5, rng);
    const auto r = evaluate_reference_scale(cfg(8.0, 8), samples, 1.0);
    EXPECT_DOUBLE_EQ(r.clip_fraction, 0.0);
    EXPECT_GT(r.rms_error, 0.0);
}

TEST(ReferenceScalingTest, SmallerReferenceImprovesConcentratedData) {
    // Paper Sec. 4 method 3: if the partial sums concentrate near zero,
    // shrinking the reference trades harmless clipping for a finer LSB.
    Rng rng(2);
    const auto samples = gaussian_samples(20000, 0.4, rng);  // FS = 8 >> 6*sigma
    const auto full = evaluate_reference_scale(cfg(8.0, 8), samples, 1.0);
    const auto shrunk = evaluate_reference_scale(cfg(8.0, 8), samples, 0.25);
    EXPECT_LT(shrunk.rms_error, full.rms_error / 2.0);
    EXPECT_GT(shrunk.effective_enob, full.effective_enob + 1.0);
}

TEST(ReferenceScalingTest, TooSmallReferenceClipsAndHurts) {
    Rng rng(3);
    const auto samples = gaussian_samples(20000, 2.0, rng);
    const auto tiny = evaluate_reference_scale(cfg(8.0, 8), samples, 0.01);
    EXPECT_GT(tiny.clip_fraction, 0.5);
    const auto sane = evaluate_reference_scale(cfg(8.0, 8), samples, 1.0);
    EXPECT_GT(tiny.rms_error, sane.rms_error);
}

TEST(ReferenceScalingTest, SweepSortsByRmsError) {
    Rng rng(4);
    const auto samples = gaussian_samples(10000, 0.4, rng);
    const std::vector<double> scales{1.0, 0.5, 0.25, 0.125, 0.01};
    const auto results = sweep_reference_scales(cfg(8.0, 8), samples, scales);
    ASSERT_EQ(results.size(), scales.size());
    for (std::size_t i = 1; i < results.size(); ++i) {
        EXPECT_LE(results[i - 1].rms_error, results[i].rms_error);
    }
    // The winner should not be either extreme for this distribution.
    EXPECT_GT(results.front().reference_scale, 0.01);
}

TEST(ReferenceScalingTest, EffectiveEnobConsistentWithRms) {
    Rng rng(5);
    const auto samples = gaussian_samples(50000, 1.0, rng);
    const VmacConfig c = cfg(10.0, 8);
    const auto r = evaluate_reference_scale(c, samples, 1.0);
    // No clipping and uniform quantization error: effective ENOB should be
    // close to the quantizer's nominal resolution.
    EXPECT_NEAR(r.effective_enob, 10.0, 0.1);
}

TEST(ReferenceScalingTest, ValidatesArguments) {
    Rng rng(6);
    const auto samples = gaussian_samples(10, 1.0, rng);
    EXPECT_THROW((void)evaluate_reference_scale(cfg(8.0, 8), {}, 1.0), std::invalid_argument);
    EXPECT_THROW((void)evaluate_reference_scale(cfg(8.0, 8), samples, 0.0),
                 std::invalid_argument);
    EXPECT_THROW((void)sweep_reference_scales(cfg(8.0, 8), samples, {}), std::invalid_argument);
}

}  // namespace
}  // namespace ams::vmac
