#include "core/csv.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace ams::core {
namespace {

namespace fs = std::filesystem;

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

class CsvTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = (fs::temp_directory_path() / "amsnet_csv_test").string();
        fs::remove_all(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }
    std::string dir_;
};

TEST_F(CsvTest, WritesHeaderAndRows) {
    const std::string path = dir_ + "/out.csv";
    {
        CsvWriter csv(path, {"enob", "loss"});
        csv.add_row({"8.0", "0.01"});
        csv.add_row({"9.0", "0.002"});
    }
    EXPECT_EQ(read_file(path), "enob,loss\n8.0,0.01\n9.0,0.002\n");
}

TEST_F(CsvTest, CreatesParentDirectories) {
    const std::string path = dir_ + "/a/b/c.csv";
    CsvWriter csv(path, {"x"});
    EXPECT_TRUE(fs::exists(path));
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
    const std::string path = dir_ + "/esc.csv";
    {
        CsvWriter csv(path, {"name", "note"});
        csv.add_row({"a,b", "say \"hi\""});
    }
    EXPECT_EQ(read_file(path), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST_F(CsvTest, ShortRowsArePadded) {
    const std::string path = dir_ + "/pad.csv";
    {
        CsvWriter csv(path, {"a", "b", "c"});
        csv.add_row({"1"});
    }
    EXPECT_EQ(read_file(path), "a,b,c\n1,,\n");
}

TEST_F(CsvTest, ArtifactDirHonorsEnvironment) {
    unsetenv("AMSNET_ARTIFACT_DIR");
    EXPECT_EQ(artifact_dir(), "artifacts");
    setenv("AMSNET_ARTIFACT_DIR", "/tmp/my_artifacts", 1);
    EXPECT_EQ(artifact_dir(), "/tmp/my_artifacts");
    unsetenv("AMSNET_ARTIFACT_DIR");
}

}  // namespace
}  // namespace ams::core
