// The zero-allocation acceptance test: after planning and one warm-up
// pass, a steady-state eval forward of the full quantized+AMS model must
// perform ZERO heap allocations. Global operator new is overridden in
// this binary to count every allocation, so any regression — a stray
// Tensor copy, a std::function capture, a vector resize on the hot path —
// fails this test by name.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "models/resnet.hpp"
#include "runtime/eval_context.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/gemm.hpp"

namespace {
std::atomic<std::size_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void* p = nullptr;
    if (align < sizeof(void*)) align = sizeof(void*);
    if (posix_memalign(&p, align, size ? size : 1) != 0) return nullptr;
    return p;
}
}  // namespace

void* operator new(std::size_t size) {
    if (void* p = counted_alloc(size)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
    if (void* p = counted_alloc(size)) return p;
    throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
    if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align))) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
    if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align))) return p;
    throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    return counted_alloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace ams {
namespace {

models::LayerCommon quant_ams_common() {
    models::LayerCommon common;
    common.bits_w = 8;
    common.bits_x = 8;
    common.ams_enabled = true;  // injectors on: the full eval pipeline
    common.vmac.enob = 5.0;
    common.vmac.nmult = 8;
    return common;
}

TEST(AllocCountTest, SteadyStateEvalForwardIsAllocationFree) {
    // Serial execution: the parallel dispatch path intentionally shares
    // work through heap-backed queues, but the single-thread fast path —
    // the one inside every sweep worker — must be allocation-free.
    runtime::ThreadPool::set_global_threads(1);

    models::ResNet model(models::tiny_resnet_config(quant_ams_common()));
    model.set_training(false);
    Rng rng(3);
    Tensor x(Shape{4, 3, 8, 8});
    x.fill_uniform(rng, -1.0f, 1.0f);

    runtime::EvalContext ctx;
    (void)model.plan(x.shape(), ctx);
    // Warm-up: grows the arenas to their steady footprint and populates
    // the scratch registry.
    for (int i = 0; i < 2; ++i) {
        const runtime::TensorArena::Checkpoint cp = ctx.checkpoint();
        (void)model.forward(x, ctx);
        ctx.rewind(cp);
    }

    const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
    for (int i = 0; i < 3; ++i) {
        const runtime::TensorArena::Checkpoint cp = ctx.checkpoint();
        Tensor out = model.forward(x, ctx);
        ctx.rewind(cp);
    }
    const std::size_t allocs = g_alloc_count.load(std::memory_order_relaxed) - before;
    runtime::ThreadPool::set_global_threads(runtime::ThreadPool::threads_from_env());

    EXPECT_EQ(allocs, 0u) << "steady-state ctx forward must not touch the heap";
}

TEST(AllocCountTest, SteadyStateGemmAtIsAllocationFree) {
    // gemm_at used to build its transpose scratch in a per-call
    // std::vector; it now draws from reusable pack buffers (thread-local
    // here, EvalContext scratch on the planned path), so repeated calls —
    // e.g. the backward pass, once per image — must not touch the heap.
    runtime::ThreadPool::set_global_threads(1);
    const std::size_t m = 33, k = 17, n = 65;
    std::vector<float> a(k * m), b(k * n), c(m * n);
    for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<float>(i % 7) - 3.0f;
    for (std::size_t i = 0; i < b.size(); ++i) b[i] = static_cast<float>(i % 5) - 2.0f;

    // Warm-up grows the thread-local buffers (transpose scratch on the
    // scalar arm, pack panels on the vector arm) to this shape's footprint.
    gemm_at(a.data(), b.data(), c.data(), m, k, n);

    const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
    for (int i = 0; i < 3; ++i) gemm_at(a.data(), b.data(), c.data(), m, k, n);
    const std::size_t allocs = g_alloc_count.load(std::memory_order_relaxed) - before;
    runtime::ThreadPool::set_global_threads(runtime::ThreadPool::threads_from_env());

    EXPECT_EQ(allocs, 0u) << "steady-state gemm_at must reuse its scratch";
}

TEST(AllocCountTest, LegacyForwardStillAllocates) {
    // Sanity check that the counter actually observes the model: the
    // allocating path must register heap traffic, otherwise a broken
    // override would make the zero-allocation test pass vacuously.
    runtime::ThreadPool::set_global_threads(1);
    models::ResNet model(models::tiny_resnet_config(quant_ams_common()));
    model.set_training(false);
    Rng rng(3);
    Tensor x(Shape{4, 3, 8, 8});
    x.fill_uniform(rng, -1.0f, 1.0f);
    (void)model.forward(x);  // warm-up

    const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
    (void)model.forward(x);
    const std::size_t allocs = g_alloc_count.load(std::memory_order_relaxed) - before;
    runtime::ThreadPool::set_global_threads(runtime::ThreadPool::threads_from_env());

    EXPECT_GT(allocs, 0u);
}

}  // namespace
}  // namespace ams
