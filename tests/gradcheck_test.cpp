#include "nn/gradcheck.hpp"

#include <gtest/gtest.h>

#include "nn/linear.hpp"

namespace ams::nn {
namespace {

/// A module with a deliberately wrong backward: returns half the true
/// input gradient. Both checkers must flag it.
class BrokenScale : public Module {
public:
    Tensor forward(const Tensor& input) override {
        cached_ = input;
        return input * 3.0f;
    }
    Tensor backward(const Tensor& grad_output) override {
        return grad_output * 1.5f;  // should be 3.0
    }
    [[nodiscard]] std::string name() const override { return "BrokenScale"; }

private:
    Tensor cached_;
};

TEST(GradcheckTest, AcceptsCorrectLinearModule) {
    Rng rng(1);
    Linear lin(4, 3, rng);
    Tensor x(Shape{2, 4});
    x.fill_uniform(rng, -1.0f, 1.0f);
    EXPECT_LT(check_input_gradient(lin, x, rng).max_rel_error, 1e-2);
    EXPECT_LT(directional_gradient_error(lin, x, rng), 1e-3);
}

TEST(GradcheckTest, FlagsBrokenBackward) {
    Rng rng(2);
    BrokenScale broken;
    Tensor x(Shape{3, 3});
    x.fill_uniform(rng, -1.0f, 1.0f);
    EXPECT_GT(check_input_gradient(broken, x, rng).max_rel_error, 0.3);
    EXPECT_GT(directional_gradient_error(broken, x, rng), 0.3);
}

TEST(GradcheckTest, SampleStrideReducesCheckedCount) {
    Rng rng(3);
    Linear lin(6, 2, rng);
    Tensor x(Shape{2, 6});
    x.fill_uniform(rng, -1.0f, 1.0f);
    const auto full = check_input_gradient(lin, x, rng, 1e-3, 1);
    const auto strided = check_input_gradient(lin, x, rng, 1e-3, 4);
    EXPECT_EQ(full.checked, 12u);
    EXPECT_EQ(strided.checked, 3u);
}

TEST(GradcheckTest, RejectsZeroStride) {
    Rng rng(4);
    Linear lin(2, 2, rng);
    Tensor x(Shape{1, 2});
    EXPECT_THROW((void)check_input_gradient(lin, x, rng, 1e-3, 0), std::invalid_argument);
    EXPECT_THROW((void)check_parameter_gradients(lin, x, rng, 1e-3, 0),
                 std::invalid_argument);
}

TEST(GradcheckTest, ParameterCheckerFindsPerturbedGradients) {
    Rng rng(5);
    Linear lin(3, 3, rng);
    Tensor x(Shape{2, 3});
    x.fill_uniform(rng, -1.0f, 1.0f);
    const auto r = check_parameter_gradients(lin, x, rng, 1e-3);
    EXPECT_EQ(r.checked, 12u);  // 9 weights + 3 biases
    EXPECT_LT(r.max_rel_error, 1e-2);
}

}  // namespace
}  // namespace ams::nn
