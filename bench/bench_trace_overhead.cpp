// Trace overhead microbench: proves the observability layer's cost
// contract on the GEMM hot loop.
//
// The same GEMM workload runs at AMSNET_TRACE=off, counters, and full,
// and the artifact (BENCH_trace_overhead.json) records the per-call time
// and the overhead of each level relative to off. The contract under
// test: instrumentation at off is a relaxed atomic load plus a branch
// per *entry point* (never per inner-loop iteration), so even the
// counters level — which actually increments — must stay within 1% of
// off on this loop; off itself is the baseline the other levels are
// charged against. The bench also checks the numerics contract: the
// output matrix is bit-identical at every level.
//
// Timing uses min-of-trials (each trial averaging many calls) so the
// reported overhead reflects the systematic cost, not scheduler jitter.
#include <chrono>
#include <cstring>
#include <functional>
#include <iostream>
#include <vector>

#include "core/bench_json.hpp"
#include "core/report.hpp"
#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/gemm.hpp"
#include "tensor/tensor.hpp"

using namespace ams;

namespace {

double min_seconds_of(const std::function<void()>& fn, int reps, int trials) {
    fn();  // warm-up: page in buffers, grow pack scratch
    double best = 0.0;
    for (int t = 0; t < trials; ++t) {
        const auto t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < reps; ++r) fn();
        const auto t1 = std::chrono::steady_clock::now();
        const double s = std::chrono::duration<double>(t1 - t0).count() / reps;
        if (t == 0 || s < best) best = s;
    }
    return best;
}

using runtime::metrics::level_name;

}  // namespace

int main() {
    core::print_banner(std::cout, "Trace overhead: GEMM hot loop at off/counters/full",
                       "infrastructure (no paper figure)");

    // Single-threaded so the measurement is the kernel, not the pool.
    runtime::ThreadPool::set_global_threads(1);

    // Eval-shaped conv GEMM (the Fig. 4/5 inner loop's hottest shape).
    const std::size_t m = 64, k = 576, n = 1024;
    const int reps = 20, trials = 5;
    Rng rng(41);
    Tensor a(Shape{m, k});
    Tensor b(Shape{k, n});
    a.fill_uniform(rng, -1.0f, 1.0f);
    b.fill_uniform(rng, -1.0f, 1.0f);

    const runtime::metrics::Level levels[] = {runtime::metrics::Level::kOff,
                                              runtime::metrics::Level::kCounters,
                                              runtime::metrics::Level::kFull};
    double seconds[3] = {0.0, 0.0, 0.0};
    Tensor outputs[3] = {Tensor(Shape{m, n}), Tensor(Shape{m, n}), Tensor(Shape{m, n})};
    for (int i = 0; i < 3; ++i) {
        runtime::metrics::set_level(levels[i]);
        Tensor& c = outputs[i];
        seconds[i] = min_seconds_of(
            [&] { gemm(a.data(), b.data(), c.data(), m, k, n); }, reps, trials);
    }
    runtime::metrics::set_level(runtime::metrics::Level::kOff);

    core::BenchReport report("trace_overhead");
    report.record_runtime_env();
    report.config().set("m", m);
    report.config().set("k", k);
    report.config().set("n", n);
    report.config().set("reps", reps);
    report.config().set("trials", trials);

    core::Table table({"level", "gemm (us/call)", "GFLOP/s", "overhead vs off"});
    const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(k) *
                         static_cast<double>(n);
    bool all_identical = true;
    double counters_overhead = 0.0;
    for (int i = 0; i < 3; ++i) {
        const double overhead = seconds[i] / seconds[0] - 1.0;
        if (i == 1) counters_overhead = overhead;
        const bool identical =
            std::memcmp(outputs[i].data(), outputs[0].data(), m * n * sizeof(float)) == 0;
        all_identical = all_identical && identical;
        table.add_row({level_name(levels[i]), core::fmt_fixed(seconds[i] * 1e6, 1),
                       core::fmt_fixed(flops / seconds[i] / 1e9, 2),
                       core::fmt_fixed(overhead * 100.0, 2) + "%"});
        core::BenchFields& row = report.add_row();
        row.set("level", level_name(levels[i]));
        row.set("gemm_s_per_call", seconds[i]);
        row.set("gflops", flops / seconds[i] / 1e9);
        row.set("overhead_vs_off_pct", overhead * 100.0);
        row.set("bit_identical_to_off", identical);
    }
    table.print(std::cout);

    // Contract verdicts, recorded in the artifact so CI can gate on them.
    const bool within_1pct = counters_overhead < 0.01;
    report.config().set("counters_within_1pct", within_1pct);
    report.config().set("bit_identical_across_levels", all_identical);
    std::cout << "\ncounters-level overhead " << core::fmt_fixed(counters_overhead * 100.0, 2)
              << "% (< 1% contract: " << (within_1pct ? "MET" : "VIOLATED") << ")\n";
    std::cout << "outputs bit-identical across levels: " << (all_identical ? "yes" : "NO")
              << "\n";

    std::cout << "Artifact written to " << report.write_artifact() << "\n";
    return (within_1pct && all_identical) ? 0 : 1;
}
