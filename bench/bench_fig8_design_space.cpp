// Figure 8 reproduction: the (ENOB_VMAC, Nmult) design-space lookup table
// with overlaid accuracy-loss and energy-per-MAC level curves.
//
// The accuracy sweep is measured once at Nmult = 8 (from the Fig. 4
// retrained networks) and mapped across the Nmult axis via the Eq. 2
// equivalence; energy comes from Eqs. 3-4. Paper shape claims:
//   1. In the thermal regime the accuracy-loss and E_MAC level curves are
//      parallel -> a one-to-one loss <-> E_MAC,min relationship.
//   2. Headline lookups: paper finds <0.4% loss  => ~313 fJ/MAC and
//      <1% loss => ~78 fJ/MAC on ResNet-50. Our substrate tolerates much
//      lower ENOB (smaller N_tot, easier task), so its E_MAC,min values
//      are correspondingly lower; the one-to-one relationship is the
//      reproduced object, and we report both numbers side by side.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/bench_json.hpp"
#include "core/csv.hpp"
#include "core/report.hpp"
#include "energy/adc_energy.hpp"
#include "energy/energy_accuracy.hpp"

using namespace ams;

int main() {
    core::print_banner(std::cout,
                       "Figure 8: accuracy loss & E_MAC over the (ENOB, Nmult) design space",
                       "Fig. 8 (<0.4% -> ~313 fJ/MAC; <1% -> ~78 fJ/MAC on ResNet-50)");

    core::ExperimentEnv env(core::ExperimentOptions::standard());
    const TensorMap q88 = env.quantized_state(8, 8);
    const train::EvalResult base = env.evaluate_state(q88, env.quant_common(8, 8));

    // Accuracy curve at the reference Nmult = 8 from retrained networks;
    // every ENOB point retrains and evaluates concurrently on the pool.
    const auto sweep =
        env.ams_enob_sweep(8, 8, bench::enob_sweep(), {.nmult = 8, .eval_only = false});
    std::vector<energy::AccuracyCurve::Point> points;
    for (const auto& point : sweep) {
        points.push_back({point.enob, std::max(0.0, base.mean - point.retrained.mean)});
    }
    const energy::AccuracyCurve curve(points, /*reference_nmult=*/8);

    std::vector<double> enobs;
    for (double e = 4.0; e <= 14.0; e += 1.0) enobs.push_back(e);
    const energy::EnergyAccuracyMap map(curve, enobs, bench::nmult_sweep());

    // Grid: rows = ENOB, columns = Nmult; cell = loss% / EMAC.
    std::vector<std::string> headers{"ENOB \\ Nmult"};
    for (std::size_t n : map.nmults()) headers.push_back(std::to_string(n));
    core::Table table(headers);
    for (std::size_t ei = 0; ei < map.enobs().size(); ++ei) {
        std::vector<std::string> row{core::fmt_fixed(map.enobs()[ei], 0)};
        for (std::size_t ni = 0; ni < map.nmults().size(); ++ni) {
            const auto& p = map.at(ei, ni);
            row.push_back(core::fmt_fixed(p.accuracy_loss * 100.0, 1) + "%/" +
                          core::fmt_energy_fj(p.emac_fj));
        }
        table.add_row(std::move(row));
    }
    table.print(std::cout);

    // CSV: the Eq. 3-4 lower-bound grid plus one labeled series per
    // hardware backend, each priced from its reported conversion profile
    // and mapped to accuracy through its equivalent monolithic ENOB.
    core::CsvWriter csv(core::artifact_dir() + "/fig8_design_space.csv",
                        {"backend", "enob", "nmult", "accuracy_loss", "emac_fj",
                         "conversions_per_vmac", "effective_enob"});
    for (const auto& p : map.grid()) {
        csv.add_row({"lower_bound", core::fmt_fixed(p.enob, 2), std::to_string(p.nmult),
                     core::fmt_fixed(p.accuracy_loss, 6), core::fmt_fixed(p.emac_fj, 3), "1",
                     core::fmt_fixed(p.enob, 2)});
    }

    // Backend series share a 9/9-bit operand prototype: 8 magnitude bits
    // chunk evenly into the partitioned datapath's 2x2 split.
    vmac::VmacConfig proto;
    proto.bits_w = 9;
    proto.bits_x = 9;
    const vmac::AnalogOptions analog;
    const std::size_t ref_chunks = 8;  ///< chunks per output for amortization
    core::BenchReport report("fig8_design_space");
    report.record_runtime_env();
    report.config().set("baseline_top1", base.mean);
    report.config().set("reference_nmult", std::uint64_t{8});
    report.config().set("backend_ref_chunks", ref_chunks);
    core::Table backend_table({"backend", "conv/VMAC", "eff ENOB @8", "loss @8/8",
                               "E_MAC @8/8"});
    for (vmac::BackendKind kind : vmac::all_backend_kinds()) {
        vmac::BackendOptions bopts;
        bopts.kind = kind;
        const auto series = energy::backend_design_series(curve, proto, analog, bopts, enobs,
                                                          bench::nmult_sweep(), ref_chunks);
        const energy::BackendDesignPoint* at88 = nullptr;
        for (const auto& p : series) {
            csv.add_row({p.backend, core::fmt_fixed(p.enob, 2), std::to_string(p.nmult),
                         core::fmt_fixed(p.accuracy_loss, 6), core::fmt_fixed(p.emac_fj, 3),
                         core::fmt_fixed(p.conversions_per_vmac, 0),
                         core::fmt_fixed(p.effective_enob, 2)});
            if (p.enob == 8.0 && p.nmult == 8) at88 = &p;
        }
        if (at88 != nullptr) {
            backend_table.add_row({at88->backend,
                                   core::fmt_fixed(at88->conversions_per_vmac, 0),
                                   core::fmt_fixed(at88->effective_enob, 2),
                                   core::fmt_pct(at88->accuracy_loss, 2),
                                   core::fmt_energy_fj(at88->emac_fj)});
            core::BenchFields& row = report.add_row();
            row.set("kind", "backend_at_8_8");
            row.set("backend", at88->backend);
            row.set("conversions_per_vmac", at88->conversions_per_vmac);
            row.set("effective_enob", at88->effective_enob);
            row.set("accuracy_loss", at88->accuracy_loss);
            row.set("emac_fj", at88->emac_fj);
        }
    }
    std::cout << "\nBackend series at grid ENOB 8, Nmult 8 (conversion-profile pricing):\n";
    backend_table.print(std::cout);
    std::cout << "\nGrid written to " << csv.path() << "\n";

    // Headline lookups.
    std::cout << "\nDesigner lookups (ours vs paper):\n";
    struct Target {
        double loss;
        const char* paper;
    };
    for (const Target t : {Target{0.004, "~313 fJ/MAC"}, Target{0.01, "~78 fJ/MAC"}}) {
        const auto* best = map.cheapest_for_loss(t.loss);
        std::cout << "  < " << core::fmt_pct(t.loss, 1) << " loss: ";
        core::BenchFields& row = report.add_row();
        row.set("kind", "designer_lookup");
        row.set("loss_target", t.loss);
        row.set("achievable", best != nullptr);
        if (best != nullptr) {
            std::cout << "E_MAC,min = " << core::fmt_energy_fj(best->emac_fj) << " at (ENOB "
                      << core::fmt_fixed(best->enob, 1) << ", Nmult " << best->nmult << ")";
            row.set("emac_min_fj", best->emac_fj);
            row.set("enob", best->enob);
            row.set("nmult", best->nmult);
        } else {
            std::cout << "not achievable on grid";
        }
        std::cout << "   [paper: " << t.paper << " on ResNet-50]\n";
    }
    report.capture_runtime_metrics();
    std::cout << "Artifact written to " << report.write_artifact() << "\n";

    // Level-curve parallelism in the thermal regime: along an
    // iso-accuracy path (ENOB + 0.5 log2 r, Nmult * r), E_MAC stays flat.
    std::cout << "\nShape check — parallel level curves (thermal regime):\n";
    const double e0 = 11.0;
    const std::size_t n0 = 8;
    const double emac0 = energy::emac_lower_bound_fj(e0, n0);
    const double loss0 = curve.loss_at(e0, n0);
    bool parallel = true;
    for (double r : {4.0, 16.0, 64.0}) {
        const double e = e0 + 0.5 * std::log2(r);
        const auto n = static_cast<std::size_t>(n0 * r);
        const double emac = energy::emac_lower_bound_fj(e, n);
        const double loss = curve.loss_at(e, n);
        std::cout << "  (ENOB " << core::fmt_fixed(e, 1) << ", Nmult " << n
                  << "): loss " << core::fmt_pct(loss) << ", E_MAC "
                  << core::fmt_energy_fj(emac) << "\n";
        if (std::fabs(loss - loss0) > 1e-6 || std::fabs(emac / emac0 - 1.0) > 0.05) {
            parallel = false;
        }
    }
    std::cout << "  iso-accuracy path has constant E_MAC: "
              << (parallel ? "REPRODUCED (one-to-one loss <-> energy tradeoff)"
                           : "NOT REPRODUCED")
              << "\n";
    return 0;
}
