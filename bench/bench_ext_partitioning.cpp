// Section 4 extension 1: multiplication partitioning.
//
// Splits each BW x BX multiply into NW x NX chunk multiplies, converts
// each partial VMAC with a lower-resolution ADC, and adds the shifted
// results digitally. The paper's claims, measured here with the bit-exact
// datapath: (a) less injected error than one conversion at the same
// per-conversion resolution; (b) possibly lower energy per MAC if
// E(low-res) < E(high-res)/(NW*NX); (c) discounting the resolution of
// low-significance partials saves energy at little error cost.
#include <cmath>
#include <iostream>
#include <vector>

#include "ams/partitioned.hpp"
#include "bench_common.hpp"
#include "core/report.hpp"
#include "energy/adc_energy.hpp"

using namespace ams;

namespace {

constexpr int kTrials = 20000;

}  // namespace

int main() {
    core::print_banner(std::cout, "Extension 1: multiplication partitioning (long multiply)",
                       "Sec. 4, method 1 (lower-res ADCs, less injected error overall)");

    const std::size_t nmult = 8;
    vmac::VmacConfig base;
    base.nmult = nmult;
    base.bits_w = 9;  // 8 magnitude bits: cleanly partitionable
    base.bits_x = 9;
    Rng rng(2024);

    core::Table table({"Datapath", "ADC res", "Conv/VMAC", "RMS error", "Eff. ENOB",
                       "E_MAC [fJ]"});

    // Monolithic references at several resolutions.
    for (double enob : {8.0, 10.0, 12.0}) {
        vmac::VmacConfig c = base;
        c.enob = enob;
        vmac::VmacCell cell(c);
        const bench::ErrorStats m = bench::measure_rms_error(
            nmult, static_cast<double>(nmult), kTrials, rng,
            [&](const auto& w, const auto& x) {
                return cell.dot(w, x, rng) - cell.dot_ideal(w, x);
            });
        table.add_row({"monolithic", core::fmt_fixed(enob, 0) + "b", "1",
                       core::fmt_fixed(m.rms_error, 5), core::fmt_fixed(m.effective_enob, 2),
                       core::fmt_fixed(energy::emac_lower_bound_fj(enob, nmult), 1)});
    }

    // Partitioned variants.
    struct Part {
        std::size_t nw, nx;
        double enob;
        double drop;
    };
    for (const Part p : {Part{2, 2, 8.0, 0.0}, Part{2, 2, 10.0, 0.0}, Part{4, 4, 8.0, 0.0},
                         Part{2, 2, 10.0, 2.0}}) {
        vmac::PartitionOptions opt;
        opt.nw = p.nw;
        opt.nx = p.nx;
        opt.enob_partial = p.enob;
        opt.significance_drop = p.drop;
        opt.min_enob = 4.0;
        vmac::PartitionedVmac pv(base, opt);
        const bench::ErrorStats m = bench::measure_rms_error(
            nmult, static_cast<double>(nmult), kTrials, rng,
            [&](const auto& w, const auto& x) {
                return pv.dot(w, x, rng) - pv.dot_ideal(w, x);
            });
        // Energy: one conversion per (p,q) partial, each at its own
        // (possibly discounted) resolution, amortized over Nmult MACs.
        double energy_pj = 0.0;
        for (std::size_t a = 0; a < p.nw; ++a) {
            for (std::size_t b = 0; b < p.nx; ++b) {
                energy_pj += energy::adc_energy_lower_bound_pj(pv.partial_enob(a, b));
            }
        }
        const double emac_fj = energy_pj / static_cast<double>(nmult) * 1e3;
        table.add_row({"partitioned " + std::to_string(p.nw) + "x" + std::to_string(p.nx) +
                           (p.drop > 0.0 ? " (LSB discount)" : ""),
                       core::fmt_fixed(p.enob, 0) + "b",
                       std::to_string(pv.conversions_per_vmac()),
                       core::fmt_fixed(m.rms_error, 5), core::fmt_fixed(m.effective_enob, 2),
                       core::fmt_fixed(emac_fj, 1)});
    }
    table.print(std::cout);

    std::cout << "\nReading: at equal per-conversion resolution, the partitioned datapath's\n"
                 "effective ENOB is higher (less injected error), at the cost of NW*NX\n"
                 "conversions — the paper's claimed error/energy/speed tradeoff.\n";
    return 0;
}
