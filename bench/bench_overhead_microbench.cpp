// Section 2 claim: "DoReFa-based quantization and AMS error injection
// together incur a roughly 50% overhead in forward pass computation time
// compared to the out-of-the-box FP32 network."
//
// Google-benchmark of the MiniResNet forward pass in the three variants.
#include <benchmark/benchmark.h>

#include "models/resnet.hpp"

namespace {

using namespace ams;

models::LayerCommon variant(std::size_t bits, bool ams) {
    models::LayerCommon c;
    c.bits_w = bits;
    c.bits_x = bits;
    c.ams_enabled = ams;
    c.vmac.enob = 6.0;
    c.vmac.nmult = 8;
    return c;
}

Tensor make_input() {
    Rng rng(1);
    Tensor x(Shape{8, 3, 16, 16});
    x.fill_uniform(rng, -2.0f, 2.0f);
    return x;
}

void BM_ForwardFp32(benchmark::State& state) {
    models::ResNet model(models::mini_resnet_config(variant(quant::kFloatBits, false)));
    model.set_training(false);
    const Tensor x = make_input();
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.forward(x));
    }
}
BENCHMARK(BM_ForwardFp32)->Unit(benchmark::kMillisecond);

void BM_ForwardQuantized8b(benchmark::State& state) {
    models::ResNet model(models::mini_resnet_config(variant(8, false), 10, 2.5f));
    model.set_training(false);
    const Tensor x = make_input();
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.forward(x));
    }
}
BENCHMARK(BM_ForwardQuantized8b)->Unit(benchmark::kMillisecond);

void BM_ForwardQuantizedAms(benchmark::State& state) {
    models::ResNet model(models::mini_resnet_config(variant(8, true), 10, 2.5f));
    model.set_training(false);
    const Tensor x = make_input();
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.forward(x));
    }
}
BENCHMARK(BM_ForwardQuantizedAms)->Unit(benchmark::kMillisecond);

// Training step (forward + backward + update) comparison, since the
// paper's 50% figure is about the retraining loop.
void BM_TrainStepFp32(benchmark::State& state) {
    models::ResNet model(models::mini_resnet_config(variant(quant::kFloatBits, false)));
    model.set_training(true);
    const Tensor x = make_input();
    Tensor g(Shape{8, 10}, 0.01f);
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.forward(x));
        benchmark::DoNotOptimize(model.backward(g));
    }
}
BENCHMARK(BM_TrainStepFp32)->Unit(benchmark::kMillisecond);

void BM_TrainStepQuantizedAms(benchmark::State& state) {
    models::ResNet model(models::mini_resnet_config(variant(8, true), 10, 2.5f));
    model.set_training(true);
    const Tensor x = make_input();
    Tensor g(Shape{8, 10}, 0.01f);
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.forward(x));
        benchmark::DoNotOptimize(model.backward(g));
    }
}
BENCHMARK(BM_TrainStepQuantizedAms)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
