// Section 4 extension 3: ADC reference-voltage scaling.
//
// The paper: shrinking the ADC reference below the multiplier supply cuts
// off MSBs of the partial dot product in exchange for finer LSBs, and
// "the effectiveness of this scheme is network- and data-dependent, and
// therefore needs to be confirmed with runs" — so this bench evaluates it
// on *empirical* per-VMAC partial sums assembled from the trained 8b
// network's own quantized stem weights and quantized input activations.
#include <cmath>
#include <iostream>
#include <vector>

#include "ams/reference_scaling.hpp"
#include "bench_common.hpp"
#include "core/report.hpp"
#include "quant/dorefa.hpp"

using namespace ams;

int main() {
    core::print_banner(std::cout, "Extension 3: ADC reference scaling on real layer data",
                       "Sec. 4, method 3 (dynamic range vs resolution; data-dependent)");

    core::ExperimentEnv env(core::ExperimentOptions::standard());
    const TensorMap q88 = env.quantized_state(8, 8);
    auto model = env.make_model(env.quant_common(8, 8));
    model->load_state("", q88);

    // Assemble per-VMAC analog partial sums from the stem conv's DoReFa-
    // quantized weights and the dataset's quantized input activations —
    // the actual operand streams that layer's VMACs would see.
    const quant::DorefaWeights wq =
        quant::dorefa_quantize_weights(model->conv_units()[0]->conv().conv().weight().value, 8);
    auto input_model = env.make_model(env.quant_common(8, 8));
    input_model->load_state("", q88);

    const Tensor& images = env.dataset().val_images();
    const float max_abs = env.dataset().max_abs_value();
    const std::size_t nmult = 8;
    std::vector<double> partial_sums;
    Rng pick(99);
    const std::size_t samples = 60000;
    partial_sums.reserve(samples);
    for (std::size_t s = 0; s < samples; ++s) {
        double acc = 0.0;
        for (std::size_t m = 0; m < nmult; ++m) {
            const float w = wq.quantized[pick.uniform_index(wq.quantized.size())];
            // Input activations after the paper's first-layer rescale.
            float a = images[pick.uniform_index(images.size())] / max_abs;
            a = std::clamp(a, -1.0f, 1.0f);
            acc += static_cast<double>(w) * a;
        }
        partial_sums.push_back(acc);
    }
    const bench::SampleStats stats = bench::sample_stats(partial_sums);
    std::cout << "Empirical partial-sum distribution (stem layer, Nmult=8): mean "
              << core::fmt_fixed(stats.mean, 3) << ", std " << core::fmt_fixed(stats.stddev, 3)
              << ", natural full scale " << nmult << "\n\n";

    vmac::VmacConfig c;
    c.enob = 8.0;
    c.nmult = nmult;
    const std::vector<double> scales{1.0, 0.5, 0.25, 0.125, 0.0625, 0.03125};
    const auto results = vmac::sweep_reference_scales(c, partial_sums, scales);

    core::Table table({"Reference scale", "RMS error", "Clip fraction", "Effective ENOB"});
    // Print in scale order for readability.
    for (double s : scales) {
        for (const auto& r : results) {
            if (r.reference_scale == s) {
                table.add_row({core::fmt_fixed(s, 5), core::fmt_fixed(r.rms_error, 5),
                               core::fmt_pct(r.clip_fraction),
                               core::fmt_fixed(r.effective_enob, 2)});
            }
        }
    }
    table.print(std::cout);

    const auto& best = results.front();
    std::cout << "\nBest reference scale for this layer/data: "
              << core::fmt_fixed(best.reference_scale, 5) << " (effective ENOB gain "
              << core::fmt_fixed(best.effective_enob - 8.0, 2)
              << "b over the unscaled converter)\n"
              << "Shape check — an intermediate scale beats both extremes: "
              << ((best.reference_scale < 1.0 && best.reference_scale > scales.back())
                      ? "REPRODUCED (data-dependent sweet spot exists)"
                      : "boundary optimum (distribution-dependent)")
              << "\n";
    return 0;
}
