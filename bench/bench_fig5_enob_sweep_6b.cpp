// Figure 5 reproduction: top-1 accuracy loss vs ENOB_VMAC (Nmult = 8)
// relative to the 6b quantized network, AMS error at evaluation only
// (the paper skips retraining at this precision based on Fig. 4).
//
// Paper shape claims: loss < 1% above a cutoff ENOB (11 on ResNet-50),
// within one sample sigma of the 6b baseline above a higher cutoff (12.5).
#include <iostream>

#include "bench_common.hpp"
#include "core/report.hpp"

using namespace ams;

int main() {
    core::print_banner(std::cout,
                       "Figure 5: accuracy loss vs ENOB_VMAC (Nmult=8), rel. 6b quantized",
                       "Fig. 5 (<1% at ENOB 11; within 1 sigma at 12.5 on ResNet-50)");

    core::ExperimentEnv env(core::ExperimentOptions::standard());
    const TensorMap q66 = env.quantized_state(6, 6);
    const train::EvalResult base = env.evaluate_state(q66, env.quant_common(6, 6));
    std::cout << "6b quantized baseline: " << core::fmt_mean_std(base.mean, base.stddev)
              << "\n\n";

    core::Table table({"ENOB", "Eval-only loss", "Samp. Std."});
    double cutoff_1pct = 0.0;
    double cutoff_sigma = 0.0;
    // Eval-only sweep (no retraining at this precision, as in the paper);
    // all points run concurrently on the runtime pool.
    const auto sweep =
        env.ams_enob_sweep(6, 6, bench::enob_sweep(), {.nmult = 8, .retrain = false});
    for (const auto& point : sweep) {
        const double enob = point.enob;
        const train::EvalResult& r = point.eval_only;
        const double loss = base.mean - r.mean;
        if (loss < 0.01 && cutoff_1pct == 0.0) cutoff_1pct = enob;
        // Deterministic baseline: use the AMS run's error bar (see Fig. 4).
        if (loss <= std::max(base.stddev, r.stddev) && cutoff_sigma == 0.0) {
            cutoff_sigma = enob;
        }
        table.add_row(
            {core::fmt_fixed(enob, 1), core::fmt_pct(loss), core::fmt_fixed(r.stddev, 4)});
    }
    table.print(std::cout);

    std::cout << "\nShape checks:\n"
              << "  - first swept ENOB with < 1% loss: "
              << (cutoff_1pct > 0.0 ? core::fmt_fixed(cutoff_1pct, 1)
                                    : std::string("none in sweep"))
              << " (paper: 11 at ResNet-50 scale)\n"
              << "  - first swept ENOB within 1 baseline sigma: "
              << (cutoff_sigma > 0.0 ? core::fmt_fixed(cutoff_sigma, 1)
                                     : std::string("none in sweep"))
              << " (paper: 12.5)\n";
    return 0;
}
