// VMAC model-validation microbench (paper Sec. 4, "improving our error
// models"): compares the lumped statistical injector against the
// bit-exact per-VMAC simulation — both in distribution (printed agreement
// check) and in throughput (google-benchmark timers), quantifying the
// speed/fidelity tradeoff the paper describes.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "ams/error_injector.hpp"
#include "ams/vmac_cell.hpp"

namespace {

using namespace ams;

vmac::VmacConfig cfg(double enob = 8.0, std::size_t nmult = 8) {
    vmac::VmacConfig c;
    c.enob = enob;
    c.nmult = nmult;
    return c;
}

void BM_BitExactVmacDot(benchmark::State& state) {
    const auto nmult = static_cast<std::size_t>(state.range(0));
    vmac::VmacCell cell(cfg(8.0, nmult));
    Rng rng(1);
    std::vector<double> w(nmult), x(nmult);
    for (double& v : w) v = rng.uniform(-1.0, 1.0);
    for (double& v : x) v = rng.uniform(0.0, 1.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cell.dot(w, x, rng));
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(nmult));
}
BENCHMARK(BM_BitExactVmacDot)->Arg(8)->Arg(64)->Arg(256);

void BM_LumpedInjectorPerElement(benchmark::State& state) {
    vmac::ErrorInjector inj(cfg(), 72, Rng(2));
    Tensor t(Shape{4096});
    for (auto _ : state) {
        benchmark::DoNotOptimize(inj.forward(t));
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_LumpedInjectorPerElement);

void BM_PerVmacInjectorPerElement(benchmark::State& state) {
    vmac::ErrorInjector inj(cfg(), 72, Rng(3), vmac::InjectionMode::kPerVmacUniform);
    Tensor t(Shape{4096});
    for (auto _ : state) {
        benchmark::DoNotOptimize(inj.forward(t));
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_PerVmacInjectorPerElement);

/// Printed (non-timed) agreement check between the statistical model and
/// the bit-exact cell: error variance ratio should be ~1.
void print_agreement() {
    std::printf("\n=== Lumped statistical model vs bit-exact VMAC agreement ===\n");
    std::printf("%-8s %-8s %-14s %-14s %-8s\n", "ENOB", "Nmult", "bit-exact var",
                "Eq.1 variance", "ratio");
    Rng rng(42);
    for (double enob : {6.0, 8.0, 10.0}) {
        for (std::size_t nmult : {std::size_t{8}, std::size_t{16}}) {
            vmac::VmacCell cell(cfg(enob, nmult));
            double sq = 0.0;
            const int trials = 20000;
            std::vector<double> w(nmult), x(nmult);
            for (int t = 0; t < trials; ++t) {
                for (double& v : w) v = rng.uniform(-1.0, 1.0);
                for (double& v : x) v = rng.uniform(0.0, 1.0);
                const double err = cell.dot(w, x, rng) - cell.dot_ideal(w, x);
                sq += err * err;
            }
            const double empirical = sq / trials;
            const double model = vmac::vmac_error_variance(cfg(enob, nmult));
            std::printf("%-8.1f %-8zu %-14.6g %-14.6g %-8.3f\n", enob, nmult, empirical,
                        model, empirical / model);
        }
    }
    std::printf("ratio ~ 1 validates lumping all VMAC error into Eq. 1/2 (paper Sec. 2).\n\n");
}

}  // namespace

int main(int argc, char** argv) {
    print_agreement();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
