// Sharded-sweep bench: what does the multi-process sweep orchestrator
// buy, and is it exactly right?
//
// Three campaigns over the same quick Fig. 8-style grid, each with its
// own run directory and its own checkpoint cache pre-seeded from one
// shared warm prerequisite cache (so no run cache-hits another run's
// point-level retrained states, and none pays for the shared fp32 ->
// quantized training):
//
//   * workers=1  — one worker process, one thread: the serial baseline;
//   * workers=4  — four worker processes, one thread each: the headline
//                  `speedup_4w` row (acceptance target >= 3x, enforced
//                  only when the host has >= 4 hardware threads — on
//                  fewer cores the ratio is physically meaningless and
//                  the gate records "skipped_few_cores", like
//                  bench_gemm_microbench's AVX2 gate);
//   * kill+resume — four workers with shard 1 SIGKILLed mid-grid, then
//                  resumed: exercises the crash-resume protocol end to
//                  end.
//
// The correctness gates are unconditional: all three campaigns must
// produce byte-identical merged reports. AMSNET_BENCH_QUICK=1 shrinks
// the grid for CI smoke runs. Artifact: BENCH_sweep.json.
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>

#include "core/bench_json.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "runtime/metrics.hpp"
#include "sweep/coordinator.hpp"
#include "sweep/worker.hpp"

using namespace ams;
namespace fs = std::filesystem;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

sweep::SweepGrid bench_grid(bool quick, const std::string& cache_dir) {
    sweep::SweepGrid grid;
    grid.backends = {vmac::BackendKind::kBitExact, vmac::BackendKind::kPerVmacNoise};
    grid.enobs = quick ? std::vector<double>{4.5, 6.5} : std::vector<double>{4.5, 5.5, 6.5, 7.5};
    grid.seeds = quick ? std::vector<std::uint64_t>{11} : std::vector<std::uint64_t>{11, 23};
    grid.base.dataset.classes = 6;
    grid.base.dataset.train_per_class = 32;
    grid.base.dataset.val_per_class = 12;
    grid.base.dataset.image_size = 12;
    grid.base.eval_passes = 3;
    grid.base.batch_size = 32;
    grid.base.fp32_train.epochs = 3;
    grid.base.fp32_train.batch_size = 32;
    grid.base.retrain.epochs = 2;
    grid.base.retrain.batch_size = 32;
    grid.base.cache_dir = cache_dir;
    return grid;
}

void seed_cache_from(const std::string& warm_dir, const std::string& cache_dir) {
    fs::create_directories(cache_dir);
    for (const auto& entry : fs::directory_iterator(warm_dir)) {
        fs::copy_file(entry.path(), fs::path(cache_dir) / entry.path().filename(),
                      fs::copy_options::overwrite_existing);
    }
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

}  // namespace

int main(int argc, char** argv) {
    if (const int rc = sweep::maybe_worker_main(argc, argv); rc >= 0) return rc;

    core::print_banner(std::cout, "Sharded sweep: multi-process fleet vs one worker",
                       "infrastructure (no paper figure)");
    if (!runtime::metrics::counters_enabled()) {
        runtime::metrics::set_level(runtime::metrics::Level::kCounters);
    }

    const bool quick = [] {
        const char* env = std::getenv("AMSNET_BENCH_QUICK");
        return env != nullptr && *env != '\0' && *env != '0';
    }();
    const std::string scratch =
        (fs::temp_directory_path() / ("amsnet-bench-sweep-" + std::to_string(getpid())))
            .string();
    fs::remove_all(scratch);
    fs::create_directories(scratch);
    const std::string warm_cache = scratch + "/warm-cache";

    // Warm the shared fp32 -> quantized prerequisites once; every timed
    // campaign starts from a copy, so runs differ only in point work.
    {
        sweep::SweepGrid grid = bench_grid(quick, warm_cache);
        for (std::uint64_t seed : grid.seeds) {
            core::ExperimentEnv env(grid.options_for_seed(seed));
            (void)env.quantized_state(grid.bits_w, grid.bits_x);
        }
    }

    struct Campaign {
        std::string name;
        std::size_t workers = 1;
        double seconds = 0.0;
        sweep::SweepOutcome outcome;
        std::string report;
    };
    const auto run_campaign = [&](const std::string& name, std::size_t workers, int kill_shard,
                                  bool resume_after_kill) {
        Campaign c;
        c.name = name;
        c.workers = workers;
        const std::string run_dir = scratch + "/" + name;
        const std::string cache_dir = run_dir + "-cache";
        seed_cache_from(warm_cache, cache_dir);
        sweep::SweepGrid grid = bench_grid(quick, cache_dir);
        sweep::CoordinatorOptions options;
        options.run_dir = run_dir;
        options.workers = workers;
        options.threads_per_worker = 1;
        options.kill_shard = kill_shard;
        options.kill_after_points = 1;
        const auto start = std::chrono::steady_clock::now();
        c.outcome = sweep::run_sweep(grid, options);
        if (resume_after_kill && !c.outcome.complete) {
            options.kill_shard = -1;
            const sweep::SweepOutcome resumed = sweep::run_sweep(grid, options);
            c.outcome.computed += resumed.computed;
            c.outcome.stolen += resumed.stolen;
            c.outcome.replayed = resumed.replayed;  // survivors of the kill
            c.outcome.complete = resumed.complete;
            c.outcome.report_path = resumed.report_path;
        }
        c.seconds = seconds_since(start);
        if (!c.outcome.complete) {
            throw std::runtime_error("campaign " + name + " did not complete");
        }
        c.report = read_file(c.outcome.report_path);
        return c;
    };

    const Campaign serial = run_campaign("w1", 1, -1, false);
    const Campaign fleet = run_campaign("w4", 4, -1, false);
    // The killed shard must hold more than one point so the SIGKILL
    // deterministically leaves pending work: 2 workers in quick mode
    // (4-point grid), 4 in full (16-point grid).
    const Campaign resumed = run_campaign("kill-resume", quick ? 2 : 4, 1, true);

    const double speedup = serial.seconds / fleet.seconds;
    const unsigned cores = std::thread::hardware_concurrency();
    const bool enough_cores = cores >= 4;
    const bool speedup_ok = !enough_cores || speedup >= 3.0;
    const bool fleet_identical = fleet.report == serial.report;
    const bool resume_identical = resumed.report == serial.report;
    const bool resume_exercised = resumed.outcome.replayed > 0;

    core::Table table({"campaign", "seconds", "points", "replayed", "stolen"});
    for (const Campaign* c : {&serial, &fleet, &resumed}) {
        table.add_row({c->name, core::fmt_fixed(c->seconds, 2),
                       std::to_string(c->outcome.total), std::to_string(c->outcome.replayed),
                       std::to_string(c->outcome.stolen)});
    }
    table.print(std::cout);
    std::cout << "\n4-worker speedup vs 1 worker: " << core::fmt_fixed(speedup, 2)
              << "x (target >= 3x, " << cores << " hardware thread(s)): "
              << (enough_cores ? (speedup >= 3.0 ? "yes" : "NO") : "skipped_few_cores") << "\n";
    std::cout << "4-worker merged report byte-identical: " << (fleet_identical ? "yes" : "NO")
              << "\n";
    std::cout << "kill+resume merged report byte-identical: "
              << (resume_identical ? "yes" : "NO") << " (replayed "
              << resumed.outcome.replayed << ", stolen " << resumed.outcome.stolen << ")\n";

    core::BenchReport bench("sweep");
    bench.record_runtime_env();
    bench.config().set("quick", quick);
    bench.config().set("points", static_cast<std::uint64_t>(serial.outcome.total));
    bench.config().set("hardware_threads", static_cast<std::uint64_t>(cores));
    bench.config().set("threads_per_worker", static_cast<std::uint64_t>(1));
    bench.config().set("speedup_4w", speedup);
    bench.config().set("speedup_gate",
                       enough_cores ? (speedup >= 3.0 ? "pass" : "fail")
                                    : "skipped_few_cores");
    bench.config().set("merge_identical_4w", fleet_identical);
    bench.config().set("merge_identical_kill_resume", resume_identical);
    bench.config().set("resume_replayed",
                       static_cast<std::uint64_t>(resumed.outcome.replayed));
    bench.config().set("resume_stolen", static_cast<std::uint64_t>(resumed.outcome.stolen));
    for (const Campaign* c : {&serial, &fleet, &resumed}) {
        core::BenchFields& row = bench.add_row();
        row.set("campaign", c->name);
        row.set("seconds", c->seconds);
        row.set("workers", static_cast<std::uint64_t>(c->workers));
        row.set("points", static_cast<std::uint64_t>(c->outcome.total));
        row.set("replayed", static_cast<std::uint64_t>(c->outcome.replayed));
        row.set("stolen", static_cast<std::uint64_t>(c->outcome.stolen));
        row.set("points_per_s", static_cast<double>(c->outcome.total) / c->seconds);
    }
    bench.capture_runtime_metrics();
    std::cout << "Artifact written to " << bench.write_artifact() << "\n";

    fs::remove_all(scratch);
    return speedup_ok && fleet_identical && resume_identical && resume_exercised ? 0 : 1;
}
