// GEMM kernel microbench: GFLOP/s of the scalar blocked arm vs the
// AVX2/FMA microkernel arm at eval-shaped sizes (im2col-lowered conv
// GEMMs and the classifier gemm_bt), plus an end-to-end evaluate_top1
// images/s comparison on the quantized+AMS tiny ResNet.
//
// Writes a machine-readable artifact, BENCH_gemm.json (shared
// amsnet-bench-v1 schema; see core/bench_json.hpp), alongside the usual
// printed table so CI and later sessions can diff kernel performance
// without parsing stdout. On hosts without AVX2/FMA the vector rows are
// omitted and the JSON records "avx2_available": false.
#include <chrono>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/bench_json.hpp"
#include "core/report.hpp"
#include "data/synthetic_imagenet.hpp"
#include "models/resnet.hpp"
#include "runtime/eval_context.hpp"
#include "runtime/simd.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/gemm.hpp"
#include "tensor/tensor.hpp"
#include "train/evaluate.hpp"

using namespace ams;

namespace {

double seconds_of(const std::function<void()>& fn, int reps) {
    fn();  // warm-up: page in buffers, grow pack scratch
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count() / reps;
}

struct GemmShape {
    const char* tag;  // which layer this GEMM is lowered from
    std::size_t m, k, n;
};

// Conv layers lower to (Cout x patch) * (patch x out_spatial); the
// classifier runs (batch x in) * (in x out) through gemm_bt. Shapes span
// the tiny-resnet eval sizes up to ResNet-18-on-32x32-class layers.
constexpr GemmShape kShapes[] = {
    {"conv3x3_16c_8x8", 16, 144, 64},
    {"conv3x3_64c_32x32", 64, 576, 1024},
    {"conv3x3_128c_16x16", 128, 1152, 256},
    {"conv3x3_256c_8x8", 256, 2304, 64},
    {"square_384", 384, 512, 384},
};

struct GemmRow {
    GemmShape shape;
    double scalar_gflops = 0.0;
    double avx2_gflops = 0.0;
};

double gflops(const GemmShape& s, double seconds) {
    return 2.0 * static_cast<double>(s.m) * static_cast<double>(s.k) *
           static_cast<double>(s.n) / seconds / 1e9;
}

double measure_eval_images_per_s() {
    data::DatasetOptions dopts;
    dopts.classes = 4;
    dopts.train_per_class = 4;
    dopts.val_per_class = 32;
    dopts.image_size = 8;
    dopts.seed = 17;
    data::SyntheticImageNet ds(dopts);

    models::LayerCommon common;
    common.bits_w = 8;
    common.bits_x = 8;
    common.ams_enabled = true;
    common.vmac.enob = 5.0;
    common.vmac.nmult = 8;
    models::ResNet model(models::tiny_resnet_config(common));

    runtime::EvalContext ctx;
    const std::size_t images = ds.val_images().dim(0);
    const double s = seconds_of(
        [&] {
            (void)train::evaluate_top1(model, ds.val_images(), ds.val_labels(), 16, 1, &ctx);
        },
        3);
    return static_cast<double>(images) / s;
}

}  // namespace

int main() {
    core::print_banner(std::cout, "GEMM microbench: scalar blocked arm vs AVX2/FMA microkernel",
                       "infrastructure (no paper figure)");

    const bool has_avx2 = simd::cpu_supports_avx2_fma();
    std::cout << "avx2/fma available: " << (has_avx2 ? "yes" : "no")
              << "   default arm: " << simd::level_name(simd::detect_level()) << "\n\n";

    // Kernel timings run serially: GFLOP/s per arm, not pool scaling
    // (bench_runtime_scaling covers threads).
    runtime::ThreadPool::set_global_threads(1);

    std::vector<GemmRow> rows;
    Rng rng(33);
    for (const GemmShape& s : kShapes) {
        Tensor a(Shape{s.m, s.k});
        Tensor b(Shape{s.k, s.n});
        Tensor c(Shape{s.m, s.n});
        a.fill_uniform(rng, -1.0f, 1.0f);
        b.fill_uniform(rng, -1.0f, 1.0f);
        const int reps = s.m * s.k * s.n > (1u << 24) ? 5 : 20;

        GemmRow row{s, 0.0, 0.0};
        simd::set_level(simd::Level::kScalar);
        row.scalar_gflops =
            gflops(s, seconds_of([&] { gemm(a.data(), b.data(), c.data(), s.m, s.k, s.n); },
                                 reps));
        if (has_avx2) {
            simd::set_level(simd::Level::kAvx2);
            row.avx2_gflops = gflops(
                s, seconds_of([&] { gemm(a.data(), b.data(), c.data(), s.m, s.k, s.n); },
                              reps));
        }
        rows.push_back(row);
    }

    // End-to-end: images/s through evaluate_top1 on the planned arena
    // path, per arm.
    simd::set_level(simd::Level::kScalar);
    const double eval_scalar_ips = measure_eval_images_per_s();
    double eval_avx2_ips = 0.0;
    if (has_avx2) {
        simd::set_level(simd::Level::kAvx2);
        eval_avx2_ips = measure_eval_images_per_s();
    }
    simd::set_level(simd::detect_level());
    runtime::ThreadPool::set_global_threads(runtime::ThreadPool::threads_from_env());

    core::Table table({"GEMM (m x k x n)", "scalar GFLOP/s", "avx2 GFLOP/s", "speedup"});
    for (const GemmRow& r : rows) {
        const std::string dims = std::to_string(r.shape.m) + " x " + std::to_string(r.shape.k) +
                                 " x " + std::to_string(r.shape.n);
        table.add_row({r.shape.tag + (" (" + dims + ")"), core::fmt_fixed(r.scalar_gflops, 2),
                       has_avx2 ? core::fmt_fixed(r.avx2_gflops, 2) : "-",
                       has_avx2 ? core::fmt_fixed(r.avx2_gflops / r.scalar_gflops, 2) + "x"
                                : "-"});
    }
    table.add_row({"evaluate_top1 (images/s)", core::fmt_fixed(eval_scalar_ips, 1),
                   has_avx2 ? core::fmt_fixed(eval_avx2_ips, 1) : "-",
                   has_avx2 ? core::fmt_fixed(eval_avx2_ips / eval_scalar_ips, 2) + "x" : "-"});
    table.print(std::cout);

    core::BenchReport report("gemm");
    report.record_runtime_env();
    report.config().set("avx2_available", has_avx2);
    report.config().set("threads", std::uint64_t{1});  // measurement threads (not the pool)
    for (const GemmRow& r : rows) {
        core::BenchFields& row = report.add_row();
        row.set("kind", "gemm");
        row.set("tag", r.shape.tag);
        row.set("m", r.shape.m);
        row.set("k", r.shape.k);
        row.set("n", r.shape.n);
        row.set("scalar_gflops", r.scalar_gflops);
        row.set("avx2_gflops", r.avx2_gflops);
        row.set("speedup", r.scalar_gflops > 0.0 ? r.avx2_gflops / r.scalar_gflops : 0.0);
    }
    core::BenchFields& eval_row = report.add_row();
    eval_row.set("kind", "evaluate_top1");
    eval_row.set("scalar_images_per_s", eval_scalar_ips);
    eval_row.set("avx2_images_per_s", eval_avx2_ips);
    eval_row.set("speedup", eval_scalar_ips > 0.0 ? eval_avx2_ips / eval_scalar_ips : 0.0);
    report.capture_runtime_metrics();
    std::cout << "\nSeries written to " << report.write_artifact() << "\n";

    if (has_avx2) {
        std::cout << "\nExpected on this host: >= 3x GEMM speedup at the conv-shaped sizes.\n";
    } else {
        std::cout << "\nNo AVX2/FMA: only the scalar arm was measured.\n";
    }
    return 0;
}
