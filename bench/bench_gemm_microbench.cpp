// GEMM kernel microbench: GFLOP/s of the scalar blocked arm vs the
// AVX2/FMA microkernel arm at eval-shaped sizes (im2col-lowered conv
// GEMMs and the classifier gemm_bt), plus an end-to-end evaluate_top1
// images/s comparison on the quantized+AMS tiny ResNet.
//
// The integer numeric domain (DESIGN.md §14) rides the same harness:
// GOP/s of the packed int8/int16 code kernels per arm, and the headline
// acceptance figure — end-to-end quantized eval images/s of the int8
// ExecutionPlan vs the fp32 fused plan on the mini ResNet, which must
// reach >= 1.5x for the bench to exit 0 (CI gates on the exit code;
// AMSNET_BENCH_QUICK=1 shrinks repetition counts).
//
// Writes a machine-readable artifact, BENCH_gemm.json (shared
// amsnet-bench-v1 schema; see core/bench_json.hpp), alongside the usual
// printed table so CI and later sessions can diff kernel performance
// without parsing stdout. On hosts without AVX2/FMA the vector rows are
// omitted and the JSON records "avx2_available": false.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "compile/plan.hpp"
#include "core/bench_json.hpp"
#include "core/report.hpp"
#include "data/synthetic_imagenet.hpp"
#include "models/resnet.hpp"
#include "runtime/eval_context.hpp"
#include "runtime/simd.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/gemm.hpp"
#include "tensor/gemm_int.hpp"
#include "tensor/tensor.hpp"
#include "train/evaluate.hpp"

using namespace ams;

namespace {

double seconds_of(const std::function<void()>& fn, int reps) {
    fn();  // warm-up: page in buffers, grow pack scratch
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count() / reps;
}

struct GemmShape {
    const char* tag;  // which layer this GEMM is lowered from
    std::size_t m, k, n;
};

// Conv layers lower to (Cout x patch) * (patch x out_spatial); the
// classifier runs (batch x in) * (in x out) through gemm_bt. Shapes span
// the tiny-resnet eval sizes up to ResNet-18-on-32x32-class layers.
constexpr GemmShape kShapes[] = {
    {"conv3x3_16c_8x8", 16, 144, 64},
    {"conv3x3_64c_32x32", 64, 576, 1024},
    {"conv3x3_128c_16x16", 128, 1152, 256},
    {"conv3x3_256c_8x8", 256, 2304, 64},
    {"square_384", 384, 512, 384},
};

struct GemmRow {
    GemmShape shape;
    double scalar_gflops = 0.0;
    double avx2_gflops = 0.0;
};

/// Per-shape GOP/s of the packed integer code kernels (gemm_s8u8 /
/// gemm_s16), per arm. One "op" is one code multiply-add, so the figures
/// are directly comparable with the fp32 GFLOP/s rows above.
struct IntGemmRow {
    GemmShape shape;
    double s8u8_scalar_gops = 0.0;
    double s8u8_avx2_gops = 0.0;
    double s16_scalar_gops = 0.0;
    double s16_avx2_gops = 0.0;
};

double gflops(const GemmShape& s, double seconds) {
    return 2.0 * static_cast<double>(s.m) * static_cast<double>(s.k) *
           static_cast<double>(s.n) / seconds / 1e9;
}

/// End-to-end eval throughput of the compiled mini-ResNet plan under one
/// numeric mode: images/s through ExecutionPlan::run on a steady-state
/// batch (same model/batch/geometry as bench_plan_compile, AMS off so
/// the per-image work is deterministic).
struct PlanEval {
    double fp32_ips = 0.0;
    double int8_ips = 0.0;
    double int16_ips = 0.0;
};

PlanEval measure_plan_eval(bool quick) {
    const std::size_t batch = 16;
    const std::size_t reps = quick ? 12 : 60;
    const std::size_t warmup = quick ? 2 : 5;

    models::LayerCommon common;
    common.bits_w = 8;
    common.bits_x = 8;  // quantized, AMS noise off: deterministic work
    models::ResNet model(models::mini_resnet_config(common));
    model.set_training(false);

    data::DatasetOptions dopts;
    dopts.classes = 10;
    dopts.train_per_class = 1;
    dopts.val_per_class = 4;
    dopts.image_size = 16;
    dopts.seed = 21;
    data::SyntheticImageNet dataset(dopts);
    const Tensor& images = dataset.val_images();
    const Shape in_shape{batch, images.dim(1), images.dim(2), images.dim(3)};

    runtime::EvalContext ctx;
    (void)model.plan(in_shape, ctx);
    Tensor x(in_shape);
    for (std::size_t i = 0; i < batch; ++i) {
        const std::size_t src = i % images.dim(0);
        const std::size_t image = images.size() / images.dim(0);
        std::copy(images.data() + src * image, images.data() + (src + 1) * image,
                  x.data() + i * image);
    }

    auto ips_for = [&](GemmIntMode mode) {
        compile::CompileOptions copts;
        copts.gemm_int = mode;
        compile::ExecutionPlan plan = compile::compile(model, in_shape, copts);
        for (std::size_t i = 0; i < warmup; ++i) {
            const runtime::TensorArena::Checkpoint cp = ctx.checkpoint();
            (void)plan.run(x, ctx);
            ctx.rewind(cp);
        }
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < reps; ++i) {
            const runtime::TensorArena::Checkpoint cp = ctx.checkpoint();
            (void)plan.run(x, ctx);
            ctx.rewind(cp);
        }
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
        return static_cast<double>(reps * batch) / elapsed;
    };

    PlanEval out;
    out.fp32_ips = ips_for(GemmIntMode::kOff);
    out.int8_ips = ips_for(GemmIntMode::kInt8);
    out.int16_ips = ips_for(GemmIntMode::kInt16);
    return out;
}

double measure_eval_images_per_s() {
    data::DatasetOptions dopts;
    dopts.classes = 4;
    dopts.train_per_class = 4;
    dopts.val_per_class = 32;
    dopts.image_size = 8;
    dopts.seed = 17;
    data::SyntheticImageNet ds(dopts);

    models::LayerCommon common;
    common.bits_w = 8;
    common.bits_x = 8;
    common.ams_enabled = true;
    common.vmac.enob = 5.0;
    common.vmac.nmult = 8;
    models::ResNet model(models::tiny_resnet_config(common));

    runtime::EvalContext ctx;
    const std::size_t images = ds.val_images().dim(0);
    const double s = seconds_of(
        [&] {
            (void)train::evaluate_top1(model, ds.val_images(), ds.val_labels(), 16, 1, &ctx);
        },
        3);
    return static_cast<double>(images) / s;
}

}  // namespace

int main() {
    core::print_banner(std::cout, "GEMM microbench: scalar blocked arm vs AVX2/FMA microkernel",
                       "infrastructure (no paper figure)");

    const bool has_avx2 = simd::cpu_supports_avx2_fma();
    const bool quick = [] {
        const char* env = std::getenv("AMSNET_BENCH_QUICK");
        return env != nullptr && *env != '\0' && *env != '0';
    }();
    std::cout << "avx2/fma available: " << (has_avx2 ? "yes" : "no")
              << "   default arm: " << simd::level_name(simd::detect_level()) << "\n\n";

    // Kernel timings run serially: GFLOP/s per arm, not pool scaling
    // (bench_runtime_scaling covers threads).
    runtime::ThreadPool::set_global_threads(1);

    std::vector<GemmRow> rows;
    Rng rng(33);
    for (const GemmShape& s : kShapes) {
        Tensor a(Shape{s.m, s.k});
        Tensor b(Shape{s.k, s.n});
        Tensor c(Shape{s.m, s.n});
        a.fill_uniform(rng, -1.0f, 1.0f);
        b.fill_uniform(rng, -1.0f, 1.0f);
        const int reps = quick ? 3 : (s.m * s.k * s.n > (1u << 24) ? 5 : 20);

        GemmRow row{s, 0.0, 0.0};
        simd::set_level(simd::Level::kScalar);
        row.scalar_gflops =
            gflops(s, seconds_of([&] { gemm(a.data(), b.data(), c.data(), s.m, s.k, s.n); },
                                 reps));
        if (has_avx2) {
            simd::set_level(simd::Level::kAvx2);
            row.avx2_gflops = gflops(
                s, seconds_of([&] { gemm(a.data(), b.data(), c.data(), s.m, s.k, s.n); },
                              reps));
        }
        rows.push_back(row);
    }

    // Packed integer code kernels at the same shapes. Operand codes use
    // the 8-bit DoReFa grid bounds (|a| <= 127, b <= 127), so every
    // shape here satisfies int_accumulator_safe.
    std::vector<IntGemmRow> int_rows;
    for (const GemmShape& s : kShapes) {
        std::vector<std::int8_t> a8(s.m * s.k);
        std::vector<std::uint8_t> b8(s.k * s.n);
        std::vector<std::int16_t> a16(s.m * s.k);
        std::vector<std::int16_t> b16(s.k * s.n);
        std::vector<std::int32_t> c32(s.m * s.n);
        for (std::size_t i = 0; i < a8.size(); ++i) {
            a8[i] = static_cast<std::int8_t>(static_cast<int>(rng.next_u64() % 255) - 127);
            a16[i] = a8[i];
        }
        for (std::size_t i = 0; i < b8.size(); ++i) {
            b8[i] = static_cast<std::uint8_t>(rng.next_u64() % 128);
            b16[i] = b8[i];
        }
        const int reps = quick ? 3 : (s.m * s.k * s.n > (1u << 24) ? 5 : 20);

        IntGemmRow row{s, 0.0, 0.0, 0.0, 0.0};
        simd::set_level(simd::Level::kScalar);
        row.s8u8_scalar_gops = gflops(
            s, seconds_of([&] { gemm_s8u8(a8.data(), b8.data(), c32.data(), s.m, s.k, s.n); },
                          reps));
        row.s16_scalar_gops = gflops(
            s, seconds_of([&] { gemm_s16(a16.data(), b16.data(), c32.data(), s.m, s.k, s.n); },
                          reps));
        if (has_avx2) {
            simd::set_level(simd::Level::kAvx2);
            row.s8u8_avx2_gops = gflops(
                s,
                seconds_of([&] { gemm_s8u8(a8.data(), b8.data(), c32.data(), s.m, s.k, s.n); },
                           reps));
            row.s16_avx2_gops = gflops(
                s,
                seconds_of([&] { gemm_s16(a16.data(), b16.data(), c32.data(), s.m, s.k, s.n); },
                           reps));
        }
        int_rows.push_back(row);
    }

    // End-to-end: images/s through evaluate_top1 on the planned arena
    // path, per arm.
    simd::set_level(simd::Level::kScalar);
    const double eval_scalar_ips = measure_eval_images_per_s();
    double eval_avx2_ips = 0.0;
    if (has_avx2) {
        simd::set_level(simd::Level::kAvx2);
        eval_avx2_ips = measure_eval_images_per_s();
    }
    simd::set_level(simd::detect_level());

    // Headline acceptance figure: end-to-end eval images/s of the int8
    // compiled plan vs the fp32 fused plan on the default arm (the int16
    // row rides along for reference). Gated below.
    const PlanEval plan_eval = measure_plan_eval(quick);
    const double int8_vs_fp32 =
        plan_eval.fp32_ips > 0.0 ? plan_eval.int8_ips / plan_eval.fp32_ips : 0.0;
    const double int16_vs_fp32 =
        plan_eval.fp32_ips > 0.0 ? plan_eval.int16_ips / plan_eval.fp32_ips : 0.0;

    runtime::ThreadPool::set_global_threads(runtime::ThreadPool::threads_from_env());

    core::Table table({"GEMM (m x k x n)", "scalar GFLOP/s", "avx2 GFLOP/s", "speedup"});
    for (const GemmRow& r : rows) {
        const std::string dims = std::to_string(r.shape.m) + " x " + std::to_string(r.shape.k) +
                                 " x " + std::to_string(r.shape.n);
        table.add_row({r.shape.tag + (" (" + dims + ")"), core::fmt_fixed(r.scalar_gflops, 2),
                       has_avx2 ? core::fmt_fixed(r.avx2_gflops, 2) : "-",
                       has_avx2 ? core::fmt_fixed(r.avx2_gflops / r.scalar_gflops, 2) + "x"
                                : "-"});
    }
    table.add_row({"evaluate_top1 (images/s)", core::fmt_fixed(eval_scalar_ips, 1),
                   has_avx2 ? core::fmt_fixed(eval_avx2_ips, 1) : "-",
                   has_avx2 ? core::fmt_fixed(eval_avx2_ips / eval_scalar_ips, 2) + "x" : "-"});
    table.print(std::cout);

    std::cout << "\n";
    core::Table int_table({"int GEMM (m x k x n)", "s8u8 scalar", "s8u8 avx2", "s16 scalar",
                           "s16 avx2"});
    for (const IntGemmRow& r : int_rows) {
        const std::string dims = std::to_string(r.shape.m) + " x " + std::to_string(r.shape.k) +
                                 " x " + std::to_string(r.shape.n);
        int_table.add_row({r.shape.tag + (" (" + dims + ")"),
                           core::fmt_fixed(r.s8u8_scalar_gops, 2),
                           has_avx2 ? core::fmt_fixed(r.s8u8_avx2_gops, 2) : "-",
                           core::fmt_fixed(r.s16_scalar_gops, 2),
                           has_avx2 ? core::fmt_fixed(r.s16_avx2_gops, 2) : "-"});
    }
    int_table.print(std::cout);
    std::cout << "(GOP/s; one op = one code multiply-add, comparable with the "
                 "fp32 GFLOP/s rows)\n";

    std::cout << "\n";
    core::Table plan_table({"plan numeric mode", "images/s", "vs fp32"});
    plan_table.add_row({"fp32 fused", core::fmt_fixed(plan_eval.fp32_ips, 1), "1.00x"});
    plan_table.add_row({"int8", core::fmt_fixed(plan_eval.int8_ips, 1),
                        core::fmt_fixed(int8_vs_fp32, 2) + "x"});
    plan_table.add_row({"int16", core::fmt_fixed(plan_eval.int16_ips, 1),
                        core::fmt_fixed(int16_vs_fp32, 2) + "x"});
    plan_table.print(std::cout);

    core::BenchReport report("gemm");
    report.record_runtime_env();
    report.config().set("avx2_available", has_avx2);
    report.config().set("threads", std::uint64_t{1});  // measurement threads (not the pool)
    for (const GemmRow& r : rows) {
        core::BenchFields& row = report.add_row();
        row.set("kind", "gemm");
        row.set("tag", r.shape.tag);
        row.set("m", r.shape.m);
        row.set("k", r.shape.k);
        row.set("n", r.shape.n);
        row.set("scalar_gflops", r.scalar_gflops);
        row.set("avx2_gflops", r.avx2_gflops);
        row.set("speedup", r.scalar_gflops > 0.0 ? r.avx2_gflops / r.scalar_gflops : 0.0);
    }
    for (const IntGemmRow& r : int_rows) {
        core::BenchFields& row = report.add_row();
        row.set("kind", "gemm_int");
        row.set("tag", r.shape.tag);
        row.set("m", r.shape.m);
        row.set("k", r.shape.k);
        row.set("n", r.shape.n);
        row.set("s8u8_scalar_gops", r.s8u8_scalar_gops);
        row.set("s8u8_avx2_gops", r.s8u8_avx2_gops);
        row.set("s16_scalar_gops", r.s16_scalar_gops);
        row.set("s16_avx2_gops", r.s16_avx2_gops);
    }
    core::BenchFields& eval_row = report.add_row();
    eval_row.set("kind", "evaluate_top1");
    eval_row.set("scalar_images_per_s", eval_scalar_ips);
    eval_row.set("avx2_images_per_s", eval_avx2_ips);
    eval_row.set("speedup", eval_scalar_ips > 0.0 ? eval_avx2_ips / eval_scalar_ips : 0.0);
    core::BenchFields& plan_row = report.add_row();
    plan_row.set("kind", "plan_eval");
    plan_row.set("fp32_images_per_s", plan_eval.fp32_ips);
    plan_row.set("int8_images_per_s", plan_eval.int8_ips);
    plan_row.set("int16_images_per_s", plan_eval.int16_ips);
    plan_row.set("int8_vs_fp32", int8_vs_fp32);
    plan_row.set("int16_vs_fp32", int16_vs_fp32);
    report.config().set("quick", quick);
    report.config().set("int8_vs_fp32_target", 1.5);
    report.capture_runtime_metrics();
    std::cout << "\nSeries written to " << report.write_artifact() << "\n";

    if (has_avx2) {
        std::cout << "\nExpected on this host: >= 3x GEMM speedup at the conv-shaped sizes.\n";
    } else {
        std::cout << "\nNo AVX2/FMA: only the scalar arm was measured.\n";
    }

    // Acceptance gate (DESIGN.md §14): the int8 plan must deliver >= 1.5x
    // the fp32 fused plan's end-to-end eval throughput. Only enforced
    // where the AVX2 kernels run — on scalar-only hosts the figure is
    // reported but not gated.
    const bool int8_ok = !has_avx2 || int8_vs_fp32 >= 1.5;
    std::cout << "int8 plan vs fp32 fused plan: " << core::fmt_fixed(int8_vs_fp32, 2)
              << "x (target >= 1.5x" << (has_avx2 ? "" : ", not gated without avx2")
              << "): " << (int8_ok ? "yes" : "NO") << "\n";
    return int8_ok ? 0 : 1;
}
