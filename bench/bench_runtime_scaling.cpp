// Runtime scaling microbench: wall-clock for the two hottest kernels —
// raw GEMM and the bit-exact VmacConv2d forward — plus a full batch-eval
// of the quantized+AMS tiny ResNet (legacy allocating forward vs the
// planned arena forward, with the arena high-water mark), at 1/2/4/8 pool
// threads. Prints a speedup table and writes a CSV artifact.
//
// On a single-core host the pool degrades gracefully: every thread count
// measures the same serial work (speedup ~1.0x), which is the expected
// "graceful no-op" outcome. Outputs are bit-identical at every thread
// count (see runtime_determinism_test), so only time varies here.
#include <chrono>
#include <functional>
#include <iostream>
#include <thread>
#include <vector>

#include "ams/vmac_conv.hpp"
#include "core/bench_json.hpp"
#include "core/csv.hpp"
#include "core/report.hpp"
#include "models/resnet.hpp"
#include "runtime/eval_context.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/gemm.hpp"
#include "tensor/tensor.hpp"

using namespace ams;

namespace {

double seconds_of(const std::function<void()>& fn, int reps) {
    fn();  // warm-up: page in buffers, spin up workers
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count() / reps;
}

}  // namespace

int main() {
    core::print_banner(std::cout, "Runtime scaling: gemm + VmacConv2d forward vs threads",
                       "infrastructure (no paper figure)");

    const unsigned hw = std::thread::hardware_concurrency();
    std::cout << "hardware_concurrency: " << hw << "\n\n";

    // GEMM workload: 384x512 * 512x384, well above the parallel threshold.
    Rng rng(21);
    const std::size_t m = 384, k = 512, n = 384;
    Tensor a(Shape{m, k});
    Tensor b(Shape{k, n});
    Tensor c(Shape{m, n});
    a.fill_uniform(rng, -1.0f, 1.0f);
    b.fill_uniform(rng, -1.0f, 1.0f);

    // VmacConv workload: bit-exact cells, 8 images x 8 out-channels tiles.
    Tensor w(Shape{8, 8, 3, 3});
    w.fill_uniform(rng, -1.0f, 1.0f);
    vmac::VmacConfig cfg;
    cfg.enob = 8.0;
    cfg.nmult = 8;
    vmac::VmacConv2d vconv(w, 1, 1, cfg, {}, vmac::VmacConvMode::kBitExact, Rng(22));
    Tensor x(Shape{8, 8, 12, 12});
    x.fill_uniform(rng, 0.0f, 1.0f);

    // Batch-eval workload: the full quantized+AMS tiny ResNet, compared
    // on the legacy allocating forward vs the planned arena forward (the
    // ams_enob_sweep inner loop). Also reports the arena high-water mark.
    models::LayerCommon common;
    common.bits_w = 8;
    common.bits_x = 8;
    common.ams_enabled = true;
    common.vmac.enob = 5.0;
    common.vmac.nmult = 8;
    models::ResNet model(models::tiny_resnet_config(common));
    model.set_training(false);
    Tensor ex(Shape{16, 3, 8, 8});
    ex.fill_uniform(rng, -1.0f, 1.0f);

    core::Table table({"Threads", "gemm (ms)", "gemm speedup", "vmac_conv (ms)",
                       "vmac speedup", "eval legacy (ms)", "eval arena (ms)",
                       "arena HWM (KiB)"});
    core::CsvWriter csv(core::artifact_dir() + "/runtime_scaling.csv",
                        {"threads", "gemm_ms", "gemm_speedup", "vmac_conv_ms",
                         "vmac_conv_speedup", "batch_eval_legacy_ms",
                         "batch_eval_arena_ms", "arena_hwm_bytes"});

    core::BenchReport report("runtime_scaling");
    report.record_runtime_env();  // "threads" = pre-sweep pool; rows carry the sweep
    report.config().set("hardware_concurrency", static_cast<std::uint64_t>(hw));
    double gemm_base = 0.0;
    double vmac_base = 0.0;
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
        runtime::ThreadPool::set_global_threads(threads);
        const double gemm_s =
            seconds_of([&] { gemm(a.data(), b.data(), c.data(), m, k, n); }, 5);
        const double vmac_s = seconds_of([&] { (void)vconv.forward(x); }, 2);
        const double eval_legacy_s = seconds_of([&] { (void)model.forward(ex); }, 3);
        // Fresh context per thread count: the plan and warm-up are part of
        // the measured workflow's setup, but steady state is what repeats.
        runtime::EvalContext ctx;
        (void)model.plan(ex.shape(), ctx);
        const double eval_arena_s = seconds_of(
            [&] {
                const runtime::TensorArena::Checkpoint cp = ctx.checkpoint();
                (void)model.forward(ex, ctx);
                ctx.rewind(cp);
            },
            3);
        const std::size_t hwm = ctx.high_water_mark();
        if (threads == 1) {
            gemm_base = gemm_s;
            vmac_base = vmac_s;
        }
        const double gemm_speedup = gemm_base / gemm_s;
        const double vmac_speedup = vmac_base / vmac_s;
        table.add_row({std::to_string(threads), core::fmt_fixed(gemm_s * 1e3, 2),
                       core::fmt_fixed(gemm_speedup, 2) + "x",
                       core::fmt_fixed(vmac_s * 1e3, 2),
                       core::fmt_fixed(vmac_speedup, 2) + "x",
                       core::fmt_fixed(eval_legacy_s * 1e3, 2),
                       core::fmt_fixed(eval_arena_s * 1e3, 2),
                       core::fmt_fixed(static_cast<double>(hwm) / 1024.0, 1)});
        csv.add_row({std::to_string(threads), core::fmt_fixed(gemm_s * 1e3, 4),
                     core::fmt_fixed(gemm_speedup, 3), core::fmt_fixed(vmac_s * 1e3, 4),
                     core::fmt_fixed(vmac_speedup, 3),
                     core::fmt_fixed(eval_legacy_s * 1e3, 4),
                     core::fmt_fixed(eval_arena_s * 1e3, 4), std::to_string(hwm)});
        core::BenchFields& row = report.add_row();
        row.set("threads", threads);
        row.set("gemm_ms", gemm_s * 1e3);
        row.set("gemm_speedup", gemm_speedup);
        row.set("vmac_conv_ms", vmac_s * 1e3);
        row.set("vmac_conv_speedup", vmac_speedup);
        row.set("batch_eval_legacy_ms", eval_legacy_s * 1e3);
        row.set("batch_eval_arena_ms", eval_arena_s * 1e3);
        row.set("arena_hwm_bytes", hwm);
    }
    runtime::ThreadPool::set_global_threads(runtime::ThreadPool::threads_from_env());
    table.print(std::cout);
    report.capture_runtime_metrics();
    std::cout << "\nSeries written to " << csv.path() << " and " << report.write_artifact()
              << "\n";

    if (hw <= 1) {
        std::cout << "\nSingle-core host: speedups ~1.0x are expected (the pool\n"
                     "spawns no useful helpers; numerics stay identical).\n";
    } else {
        std::cout << "\nExpected on this host: >= 1.5x gemm speedup at 4 threads.\n";
    }
    return 0;
}
