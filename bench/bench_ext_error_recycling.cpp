// Section 4 extension 2: quantization-error recycling (first-order
// delta-sigma in place of the ADC).
//
// Paper claims, measured with the bit-exact datapath: recycling removes
// the accumulated per-cycle quantization error, leaving only the final
// (higher-resolution) conversion's error plus thermal noise; thermal
// noise is NOT reduced; the error reduction can be traded for energy by
// lowering the nominal per-cycle ENOB.
#include <cmath>
#include <iostream>
#include <vector>

#include "ams/delta_sigma.hpp"
#include "ams/error_model.hpp"
#include "bench_common.hpp"
#include "core/report.hpp"

using namespace ams;

int main() {
    core::print_banner(std::cout, "Extension 2: quantization error recycling (delta-sigma)",
                       "Sec. 4, method 2 (only final conversion's error survives)");

    const std::size_t nmult = 8;
    Rng rng(7);

    core::Table table({"Dot length", "Plain RMS", "DeltaSigma RMS", "Improvement",
                       "Model bound (plain)"});
    for (std::size_t len : {16u, 64u, 256u, 1024u}) {
        vmac::VmacConfig c;
        c.enob = 8.0;
        c.nmult = nmult;
        vmac::VmacCell plain(c);
        vmac::VmacCell exact([] {
            vmac::VmacConfig e;
            e.enob = 24.0;
            e.nmult = 8;
            return e;
        }());

        bench::RmsAccumulator plain_acc, ds_acc;
        const int trials = 2000;
        for (int t = 0; t < trials; ++t) {
            std::vector<double> w(len), x(len);
            bench::random_operands(w, x, rng);
            double ideal = 0.0;
            for (std::size_t s = 0; s < len; s += nmult) {
                ideal += exact.dot_ideal(std::span(w).subspan(s, nmult),
                                         std::span(x).subspan(s, nmult));
            }
            plain_acc.add(plain.dot_tiled(w, x, rng) - ideal);
            vmac::DeltaSigmaVmac ds(c, /*final_enob=*/12.0);
            ds_acc.add(ds.dot(w, x, rng) - ideal);
        }
        const double model_sigma = vmac::total_error_stddev(c, len);
        table.add_row({std::to_string(len), core::fmt_fixed(plain_acc.rms(), 5),
                       core::fmt_fixed(ds_acc.rms(), 5),
                       core::fmt_fixed(plain_acc.rms() / ds_acc.rms(), 1) + "x",
                       core::fmt_fixed(model_sigma, 5)});
    }
    table.print(std::cout);

    std::cout
        << "\nReading: plain tiling's error grows as sqrt(dot length / Nmult) (matching the\n"
           "Eq. 2 column); delta-sigma's stays pinned at the final conversion's error, so\n"
           "the improvement factor grows with output stationarity — the paper's claim.\n";

    // Thermal noise is not recycled: compare with thermal-dominated cells.
    vmac::AnalogOptions noisy;
    noisy.adc_noise_sigma = 0.05;
    vmac::VmacConfig fine;
    fine.enob = 14.0;
    fine.nmult = nmult;
    Rng rng2(8);
    bench::RmsAccumulator plain_acc, ds_acc;
    const int trials = 2000;
    const std::size_t len = 64;
    for (int t = 0; t < trials; ++t) {
        std::vector<double> w(len), x(len);
        bench::random_operands(w, x, rng2);
        vmac::VmacCell plain(fine, noisy);
        vmac::VmacCell exact_cell([] {
            vmac::VmacConfig e;
            e.enob = 24.0;
            e.nmult = 8;
            return e;
        }());
        double ideal = 0.0;
        for (std::size_t s = 0; s < len; s += nmult) {
            ideal += exact_cell.dot_ideal(std::span(w).subspan(s, nmult),
                                          std::span(x).subspan(s, nmult));
        }
        plain_acc.add(plain.dot_tiled(w, x, rng2) - ideal);
        vmac::DeltaSigmaVmac ds(fine, 16.0, noisy);
        ds_acc.add(ds.dot(w, x, rng2) - ideal);
    }
    std::cout << "\nThermal-noise-dominated comparison (sigma_th = 0.05, ENOB 14):\n"
              << "  plain RMS = " << core::fmt_fixed(plain_acc.rms(), 4)
              << ", delta-sigma RMS = " << core::fmt_fixed(ds_acc.rms(), 4)
              << "  -> recycling does NOT beat thermal noise (paper's caveat): "
              << (ds_acc.rms() > 0.8 * plain_acc.rms() ? "REPRODUCED" : "NOT REPRODUCED")
              << "\n";
    return 0;
}
