// Table 1 reproduction: top-1 accuracy for various weight / activation
// bitwidths after DoReFa retraining, with no AMS error.
//
// Paper (ImageNet, ResNet-50):
//   FP32          0.778 +/- 7.0e-4
//   BW=8,  BX=8   0.781 +/- 2.8e-3   (full recovery, slightly above FP32)
//   BW=6,  BX=6   0.757 +/- 9.8e-4   (~2% drop)
//   BW=6,  BX=4   0.606 +/- 7.0e-4   (~17% drop)
// Shape to reproduce: FP32 ~ 8b > 6b > 6b/4b, with 6b/4b clearly worst.
#include <iostream>

#include "bench_common.hpp"
#include "core/report.hpp"

using namespace ams;

int main() {
    core::print_banner(std::cout, "Table 1: accuracy vs weight/activation bitwidth (DoReFa)",
                       "Table 1 (FP32 0.778 / 8b 0.781 / 6b 0.757 / 6b4b 0.606)");

    core::ExperimentEnv env(core::ExperimentOptions::standard());
    core::Table table({"Quantization", "Paper Top-1", "Ours Top-1", "Ours Samp. Std."});

    // The paper's rows, plus substrate-scale analog rows: MiniResNet on
    // the synthetic task tolerates more quantization than ResNet-50 on
    // ImageNet (the same axis shift as the ENOB sweeps, see
    // bench_common.hpp), so the paper's 8b/6b/4b cliff appears here at
    // 4b/3b/2b. Paper reference values are ImageNet numbers.
    struct Row {
        const char* name;
        std::size_t bw, bx;
        double paper;  ///< negative = no paper analog (extension row)
    };
    const Row rows[] = {
        {"FP32", quant::kFloatBits, quant::kFloatBits, 0.778},
        {"BW=8, BX=8", 8, 8, 0.781},
        {"BW=6, BX=6", 6, 6, 0.757},
        {"BW=6, BX=4", 6, 4, 0.606},
        {"BW=4, BX=4 (substrate analog of 6/6)", 4, 4, -1.0},
        {"BW=4, BX=3 (substrate analog of 6/4)", 4, 3, -1.0},
        {"BW=3, BX=2 (binary activations)", 3, 2, -1.0},
    };

    double fp32_acc = 0.0;
    double acc_88 = 0.0;
    std::vector<double> ours;
    for (const Row& row : rows) {
        const bool is_fp32 = row.bw >= quant::kFloatBits;
        const TensorMap state =
            is_fp32 ? env.fp32_state() : env.quantized_state(row.bw, row.bx);
        const auto common =
            is_fp32 ? env.fp32_common() : env.quant_common(row.bw, row.bx);
        const train::EvalResult r = env.evaluate_state(state, common);
        if (is_fp32) fp32_acc = r.mean;
        if (row.bw == 8) acc_88 = r.mean;
        ours.push_back(r.mean);
        table.add_row({row.name, row.paper > 0.0 ? core::fmt_fixed(row.paper, 3) : "-",
                       core::fmt_fixed(r.mean, 3), core::fmt_fixed(r.stddev, 4)});
    }
    table.print(std::cout);

    const double mildest = ours[1];   // 8/8
    const double harshest = ours.back();  // 3/2
    std::cout << "\nShape checks (paper's qualitative claims, at substrate scale):\n"
              << "  - mild quantization fully recovers (8b within noise of FP32): "
              << ((std::abs(acc_88 - fp32_acc) < 0.02) ? "REPRODUCED" : "NOT REPRODUCED")
              << " (" << core::fmt_fixed(acc_88, 3) << " vs " << core::fmt_fixed(fp32_acc, 3)
              << ")\n"
              << "  - aggressive activation quantization collapses accuracy: "
              << ((mildest - harshest > 0.05) ? "REPRODUCED" : "NOT REPRODUCED") << " (drop "
              << core::fmt_pct(mildest - harshest) << ")\n";
    return 0;
}
