// Ablation: lumped statistical injection (the paper's model) vs per-VMAC
// injection vs full bit-exact VMAC convolution (paper Sec. 4, "improving
// our error models").
//
// Question answered: does the cheap lumped-Gaussian model (Eq. 2) predict
// the same accuracy as actually computing the convolution through VMAC
// cells? The paper assumes yes ("assuming that the AMS errors at the
// output of each VMAC are independent and identically distributed");
// this bench measures it on the first conv layer of the trained network
// and at network level for the stochastic modes.
#include <chrono>
#include <cmath>
#include <iostream>

#include "ams/vmac_conv.hpp"
#include "bench_common.hpp"
#include "core/report.hpp"
#include "quant/dorefa.hpp"
#include "train/evaluate.hpp"

using namespace ams;

int main() {
    core::print_banner(std::cout,
                       "Ablation: lumped Eq.2 injection vs per-VMAC vs bit-exact VMAC conv",
                       "Sec. 2 lumping assumption + Sec. 4 finer-grained modeling");

    core::ExperimentEnv env(core::ExperimentOptions::standard());
    const TensorMap q88 = env.quantized_state(8, 8);

    // --- Network-level: lumped Gaussian vs per-VMAC uniform accuracy. ---
    core::Table acc_table({"ENOB", "Lumped Gaussian top-1", "Per-VMAC uniform top-1",
                           "Difference"});
    for (double enob : {5.0, 6.0, 7.0}) {
        const auto vmac_cfg = bench::vmac_at(enob);
        auto lumped = env.make_model(env.ams_common(8, 8, vmac_cfg));
        lumped->load_state("", q88);
        const auto r_lumped =
            train::evaluate_top1(*lumped, env.dataset().val_images(),
                                 env.dataset().val_labels(), env.options().batch_size, 5);
        auto per_vmac = env.make_model(env.ams_common(
            8, 8, vmac_cfg, vmac::InjectionMode::kPerVmacUniform));
        per_vmac->load_state("", q88);
        const auto r_pv =
            train::evaluate_top1(*per_vmac, env.dataset().val_images(),
                                 env.dataset().val_labels(), env.options().batch_size, 5);
        acc_table.add_row({core::fmt_fixed(enob, 1),
                           core::fmt_mean_std(r_lumped.mean, r_lumped.stddev),
                           core::fmt_mean_std(r_pv.mean, r_pv.stddev),
                           core::fmt_pct(std::fabs(r_lumped.mean - r_pv.mean))});
    }
    acc_table.print(std::cout);
    std::cout << "Differences within ~1-2 sample sigma validate the lumping (Sec. 2).\n\n";

    // --- Layer-level: bit-exact VMAC conv vs lumped model, error stats. ---
    auto model = env.make_model(env.quant_common(8, 8));
    model->load_state("", q88);
    auto& unit = *model->conv_units()[1];  // first 1x1 conv after stem
    const quant::DorefaWeights wq =
        quant::dorefa_quantize_weights(unit.conv().conv().weight().value, 8);

    // A quantized activation batch for that layer: use clipped inputs.
    Rng rng(5);
    const auto& opts = unit.conv().conv().options();
    Tensor x(Shape{4, opts.in_channels, 16, 16});
    x.fill_uniform(rng, 0.0f, 1.0f);

    core::Table err_table({"ENOB", "bit-exact conv err sigma", "Eq.2 model sigma", "ratio",
                           "slowdown vs GEMM"});
    for (double enob : {6.0, 8.0, 10.0}) {
        const auto vmac_cfg = bench::vmac_at(enob);
        // Exact digital reference through the plain conv.
        nn::Conv2d ref_conv(opts, rng);
        ref_conv.set_effective_weight(wq.quantized);
        const auto t0 = std::chrono::steady_clock::now();
        Tensor exact = ref_conv.forward(x);
        const auto t1 = std::chrono::steady_clock::now();

        vmac::VmacConv2d vconv(wq.quantized, opts.stride, opts.padding, vmac_cfg, {},
                               vmac::VmacConvMode::kBitExact, Rng(777));
        Tensor noisy = vconv.forward(x);
        const auto t2 = std::chrono::steady_clock::now();

        Tensor err = noisy - exact;
        const double sigma = std::sqrt(err.variance());
        const double model_sigma = vmac::total_error_stddev(vmac_cfg, vconv.n_tot());
        const double slowdown = std::chrono::duration<double>(t2 - t1).count() /
                                std::max(1e-9, std::chrono::duration<double>(t1 - t0).count());
        err_table.add_row({core::fmt_fixed(enob, 1), core::fmt_fixed(sigma, 5),
                           core::fmt_fixed(model_sigma, 5),
                           core::fmt_fixed(sigma / model_sigma, 2),
                           core::fmt_fixed(slowdown, 0) + "x"});
    }
    err_table.print(std::cout);
    std::cout << "\nratio ~ 1: the bit-exact datapath injects the error Eq. 2 predicts\n"
                 "(the >1 part at coarse ENOB is operand re-quantization, absent from the\n"
                 "lumped model). The slowdown column is the paper's stated cost of the\n"
                 "finer model.\n";
    return 0;
}
