// Chip-population (Monte-Carlo fleet) bench: device variability + drift
// through the sharded sweep orchestrator.
//
// One quick Fig. 4/5-style grid with the PR 10 variability axes switched
// on — a population of chips, each a frozen realization of static
// programming offsets (AMSNET_OFFSET_SIGMA-style amplitude) plus
// power-law conductance drift G(t) = G0 (t/t0)^-nu — swept at drift
// times {0, 64}. Three campaigns over the identical grid:
//
//   * workers=1   — serial baseline;
//   * workers=4   — multi-process fleet;
//   * kill+resume — a worker SIGKILLed mid-fleet, then resumed.
//
// Gates (all unconditional, exit-code enforced):
//   * all three merged reports byte-identical — chip realizations are
//     pure functions of (chip_seed, family, cell), so process count and
//     crash history cannot perturb them;
//   * at the max studied drift time, the population-mean retrained
//     accuracy >= the population-mean eval-only accuracy: STE robust
//     retraining recovers drift-induced loss.
//
// The artifact (BENCH_variation.json) records population mean/p5/p95
// accuracy per drift time — the error-bar data of a chip-population
// plot. AMSNET_BENCH_QUICK=1 shrinks the chip count for CI smoke runs.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>
#include <unistd.h>

#include "core/bench_json.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "runtime/metrics.hpp"
#include "sweep/coordinator.hpp"
#include "sweep/worker.hpp"

using namespace ams;
namespace fs = std::filesystem;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

sweep::SweepGrid fleet_grid(bool quick, const std::string& cache_dir) {
    sweep::SweepGrid grid;
    grid.backends = {vmac::BackendKind::kPerVmacNoise};
    grid.enobs = {6.5};
    grid.seeds = {11};
    grid.chips = quick ? std::vector<std::uint64_t>{1, 2, 3}
                       : std::vector<std::uint64_t>{1, 2, 3, 4, 5};
    grid.drift_times = {0.0, 64.0};
    grid.variation.cell_offset_sigma = 0.05;
    grid.variation.drift_nu = 0.2;
    // Unlike bench_sweep_shard (whose gates are pure byte-identity),
    // the recovery gate needs a grid that actually learns: a few-class
    // dataset and real learning rates put accuracy well above chance,
    // so the drift-induced loss and its recovery are resolvable.
    grid.base.dataset.classes = 4;
    grid.base.dataset.train_per_class = quick ? 48 : 96;
    grid.base.dataset.val_per_class = 16;
    grid.base.dataset.image_size = 16;
    grid.base.eval_passes = 3;
    grid.base.batch_size = 32;
    grid.base.fp32_train.epochs = quick ? 6 : 10;
    grid.base.fp32_train.batch_size = 32;
    grid.base.fp32_train.sgd = {/*lr=*/0.05f, /*momentum=*/0.9f, /*weight_decay=*/5e-4f};
    grid.base.retrain.epochs = 3;
    grid.base.retrain.batch_size = 32;
    grid.base.retrain.sgd = {/*lr=*/0.01f, /*momentum=*/0.9f, /*weight_decay=*/0.0f};
    grid.base.cache_dir = cache_dir;
    return grid;
}

void seed_cache_from(const std::string& warm_dir, const std::string& cache_dir) {
    fs::create_directories(cache_dir);
    for (const auto& entry : fs::directory_iterator(warm_dir)) {
        fs::copy_file(entry.path(), fs::path(cache_dir) / entry.path().filename(),
                      fs::copy_options::overwrite_existing);
    }
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

// Linear-interpolated percentile of an unsorted sample, p in [0, 1].
double percentile(std::vector<double> values, double p) {
    std::sort(values.begin(), values.end());
    const double pos = p * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double mean_of(const std::vector<double>& values) {
    double sum = 0.0;
    for (double v : values) sum += v;
    return sum / static_cast<double>(values.size());
}

}  // namespace

int main(int argc, char** argv) {
    if (const int rc = sweep::maybe_worker_main(argc, argv); rc >= 0) return rc;

    core::print_banner(std::cout, "Chip-population fleet: device variability + drift",
                       "paper Figs. 4/5 under per-chip error families");
    if (!runtime::metrics::counters_enabled()) {
        runtime::metrics::set_level(runtime::metrics::Level::kCounters);
    }

    const bool quick = [] {
        const char* env = std::getenv("AMSNET_BENCH_QUICK");
        return env != nullptr && *env != '\0' && *env != '0';
    }();
    const std::string scratch =
        (fs::temp_directory_path() / ("amsnet-bench-variation-" + std::to_string(getpid())))
            .string();
    fs::remove_all(scratch);
    fs::create_directories(scratch);
    const std::string warm_cache = scratch + "/warm-cache";

    // Warm the shared fp32 -> quantized prerequisites once; chips branch
    // off the quantized state, so this is the whole shared prefix.
    {
        sweep::SweepGrid grid = fleet_grid(quick, warm_cache);
        for (std::uint64_t seed : grid.seeds) {
            core::ExperimentEnv env(grid.options_for_seed(seed));
            (void)env.quantized_state(grid.bits_w, grid.bits_x);
        }
    }

    struct Campaign {
        std::string name;
        double seconds = 0.0;
        sweep::SweepOutcome outcome;
        std::string report;
        std::string run_dir;
    };
    const auto run_campaign = [&](const std::string& name, std::size_t workers, int kill_shard,
                                  bool resume_after_kill) {
        Campaign c;
        c.name = name;
        c.run_dir = scratch + "/" + name;
        const std::string cache_dir = c.run_dir + "-cache";
        seed_cache_from(warm_cache, cache_dir);
        sweep::SweepGrid grid = fleet_grid(quick, cache_dir);
        sweep::CoordinatorOptions options;
        options.run_dir = c.run_dir;
        options.workers = workers;
        options.threads_per_worker = 1;
        options.kill_shard = kill_shard;
        options.kill_after_points = 1;
        const auto start = std::chrono::steady_clock::now();
        c.outcome = sweep::run_sweep(grid, options);
        if (resume_after_kill && !c.outcome.complete) {
            options.kill_shard = -1;
            const sweep::SweepOutcome resumed = sweep::run_sweep(grid, options);
            c.outcome.computed += resumed.computed;
            c.outcome.stolen += resumed.stolen;
            c.outcome.replayed = resumed.replayed;
            c.outcome.complete = resumed.complete;
            c.outcome.report_path = resumed.report_path;
        }
        c.seconds = seconds_since(start);
        if (!c.outcome.complete) {
            throw std::runtime_error("campaign " + name + " did not complete");
        }
        c.report = read_file(c.outcome.report_path);
        return c;
    };

    const Campaign serial = run_campaign("w1", 1, -1, false);
    const Campaign fleet = run_campaign("w4", 4, -1, false);
    const Campaign resumed = run_campaign("kill-resume", 2, 1, true);

    const bool fleet_identical = fleet.report == serial.report;
    const bool resume_identical = resumed.report == serial.report;
    const bool resume_exercised = resumed.outcome.replayed > 0;

    // Population statistics across the chip axis, per drift time, from
    // the serial campaign's journaled points (any campaign works — they
    // are byte-identical).
    sweep::SweepGrid grid = fleet_grid(quick, scratch + "/w1-cache");
    const std::vector<sweep::WorkItem> items = sweep::enumerate_grid(grid);
    std::map<double, std::vector<double>> eval_by_time, retrain_by_time;
    for (const sweep::PointRecord& record : sweep::replay_run_dir(serial.run_dir)) {
        const sweep::WorkItem& item = items.at(record.index);
        eval_by_time[item.drift_time].push_back(record.point.eval_only.mean);
        retrain_by_time[item.drift_time].push_back(record.point.retrained.mean);
    }
    const double max_time = grid.drift_times.back();
    const double eval_mean_at_max = mean_of(eval_by_time.at(max_time));
    const double retrain_mean_at_max = mean_of(retrain_by_time.at(max_time));
    const bool retrain_recovers = retrain_mean_at_max >= eval_mean_at_max;

    core::Table table({"drift_time", "eval_mean", "eval_p5", "eval_p95", "retrain_mean",
                       "retrain_p5", "retrain_p95"});
    for (const auto& [t, evals] : eval_by_time) {
        const std::vector<double>& retrains = retrain_by_time.at(t);
        table.add_row({core::fmt_fixed(t, 0), core::fmt_fixed(mean_of(evals), 4),
                       core::fmt_fixed(percentile(evals, 0.05), 4),
                       core::fmt_fixed(percentile(evals, 0.95), 4),
                       core::fmt_fixed(mean_of(retrains), 4),
                       core::fmt_fixed(percentile(retrains, 0.05), 4),
                       core::fmt_fixed(percentile(retrains, 0.95), 4)});
    }
    table.print(std::cout);
    std::cout << "\n4-worker merged report byte-identical: " << (fleet_identical ? "yes" : "NO")
              << "\n";
    std::cout << "kill+resume merged report byte-identical: "
              << (resume_identical ? "yes" : "NO") << " (replayed "
              << resumed.outcome.replayed << ", stolen " << resumed.outcome.stolen << ")\n";
    std::cout << "retraining recovers drift at t=" << core::fmt_fixed(max_time, 0) << ": "
              << (retrain_recovers ? "yes" : "NO") << " ("
              << core::fmt_fixed(retrain_mean_at_max, 4) << " vs "
              << core::fmt_fixed(eval_mean_at_max, 4) << " eval-only)\n";

    core::BenchReport bench("variation");
    bench.record_runtime_env();
    bench.config().set("quick", quick);
    bench.config().set("chips", static_cast<std::uint64_t>(grid.chips.size()));
    bench.config().set("variation", grid.variation.str());
    bench.config().set("points", static_cast<std::uint64_t>(serial.outcome.total));
    bench.config().set("merge_identical_4w", fleet_identical);
    bench.config().set("merge_identical_kill_resume", resume_identical);
    bench.config().set("resume_replayed",
                       static_cast<std::uint64_t>(resumed.outcome.replayed));
    bench.config().set("retrain_recovers_drift", retrain_recovers);
    bench.config().set("seconds_w1", serial.seconds);
    bench.config().set("seconds_w4", fleet.seconds);
    for (const auto& [t, evals] : eval_by_time) {
        const std::vector<double>& retrains = retrain_by_time.at(t);
        core::BenchFields& row = bench.add_row();
        row.set("drift_time", t);
        row.set("chips", static_cast<std::uint64_t>(evals.size()));
        row.set("eval_only_mean", mean_of(evals));
        row.set("eval_only_p5", percentile(evals, 0.05));
        row.set("eval_only_p95", percentile(evals, 0.95));
        row.set("retrained_mean", mean_of(retrains));
        row.set("retrained_p5", percentile(retrains, 0.05));
        row.set("retrained_p95", percentile(retrains, 0.95));
    }
    bench.capture_runtime_metrics();
    std::cout << "Artifact written to " << bench.write_artifact() << "\n";

    fs::remove_all(scratch);
    return fleet_identical && resume_identical && resume_exercised && retrain_recovers ? 0 : 1;
}
