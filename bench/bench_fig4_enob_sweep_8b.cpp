// Figure 4 reproduction: top-1 accuracy loss vs ENOB_VMAC (Nmult = 8)
// relative to the 8b quantized network, for AMS error injected (a) at
// evaluation only and (b) during retraining as well.
//
// Paper shape claims to reproduce (ImageNet ENOB range 9-13; ours shifts
// to ~4.5-8, see bench_common.hpp):
//   1. Eval-only loss grows steeply as ENOB falls.
//   2. For low ENOB, retraining with AMS error recovers up to ~half the
//      lost accuracy (~0.5 ENOB worth).
//   3. For high ENOB, retraining gives no benefit (can slightly hurt).
//   4. There is a cutoff ENOB above which loss is within one sample
//      standard deviation of the quantized baseline.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/csv.hpp"
#include "core/report.hpp"

using namespace ams;

int main() {
    core::print_banner(std::cout,
                       "Figure 4: accuracy loss vs ENOB_VMAC (Nmult=8), rel. 8b quantized",
                       "Fig. 4 (crossover ~ENOB 11; within 1 sigma at 12.5 on ResNet-50)");

    core::ExperimentEnv env(core::ExperimentOptions::standard());
    const TensorMap q88 = env.quantized_state(8, 8);
    const train::EvalResult base = env.evaluate_state(q88, env.quant_common(8, 8));
    std::cout << "8b quantized baseline: " << core::fmt_mean_std(base.mean, base.stddev)
              << "\n\n";

    core::Table table({"ENOB", "Eval-only loss", "Retrained loss", "Recovery",
                       "Eval std", "Retrain std"});
    core::CsvWriter csv(core::artifact_dir() + "/fig4_enob_sweep.csv",
                        {"enob", "loss_eval_only", "loss_retrained", "eval_std",
                         "retrain_std"});

    double max_recovery = 0.0;
    double last_recovery = 0.0;
    double cutoff_within_sigma = 0.0;
    // All ENOB points run concurrently on the runtime pool: (a) AMS error
    // at evaluation only on the quantized network, (b) AMS error also
    // during retraining. Results are identical to the serial order.
    const auto sweep = env.ams_enob_sweep(8, 8, bench::enob_sweep());
    for (const auto& point : sweep) {
        const double enob = point.enob;
        const train::EvalResult& eval_only = point.eval_only;
        const train::EvalResult& retrain = point.retrained;

        const double loss_eval = base.mean - eval_only.mean;
        const double loss_retrain = base.mean - retrain.mean;
        const double recovery = loss_eval - loss_retrain;
        max_recovery = std::max(max_recovery, recovery);
        // "Within one sample standard deviation": our quantized baseline
        // is deterministic (sigma 0), so the relevant sigma is the AMS
        // run's own error bar, as in the paper's plots.
        const double sigma = std::max(base.stddev, retrain.stddev);
        if (loss_retrain <= sigma && cutoff_within_sigma == 0.0) {
            cutoff_within_sigma = enob;
        }
        last_recovery = recovery;

        table.add_row({core::fmt_fixed(enob, 1), core::fmt_pct(loss_eval),
                       core::fmt_pct(loss_retrain), core::fmt_pct(recovery),
                       core::fmt_fixed(eval_only.stddev, 4),
                       core::fmt_fixed(retrain.stddev, 4)});
        csv.add_row({core::fmt_fixed(enob, 2), core::fmt_fixed(loss_eval, 6),
                     core::fmt_fixed(loss_retrain, 6), core::fmt_fixed(eval_only.stddev, 6),
                     core::fmt_fixed(retrain.stddev, 6)});
    }
    table.print(std::cout);
    std::cout << "\nSeries written to " << csv.path() << "\n";

    std::cout << "\nShape checks:\n"
              << "  - max accuracy recovered by retraining with AMS error: "
              << core::fmt_pct(max_recovery) << "\n"
              << "  - first swept ENOB with retrained loss within 1 baseline sigma: "
              << (cutoff_within_sigma > 0.0 ? core::fmt_fixed(cutoff_within_sigma, 1)
                                            : std::string("none in sweep"))
              << " (paper: 12.5 at ResNet-50 scale)\n"
              << "  - retraining benefit collapses as ENOB grows (recovery at top of sweep\n"
              << "    vs maximum): " << core::fmt_pct(last_recovery) << " vs "
              << core::fmt_pct(max_recovery) << "  "
              << (last_recovery < 0.25 * max_recovery ? "REPRODUCED" : "NOT REPRODUCED")
              << "\n"
              << "  (Note: negative retrained-loss cells mean retraining with near-zero\n"
              << "   noise acts as extra fine-tuning on this substrate; the paper's fully\n"
              << "   converged ResNet-50 baseline instead loses slightly — see\n"
              << "   EXPERIMENTS.md.)\n";
    return 0;
}
