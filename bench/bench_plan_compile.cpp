// Graph-compiler bench: what does compiling a mini-ResNet buy?
//
// Rows of BENCH_plan.json, all over the same quantized (8b, AMS off =
// deterministic per-image work) mini-ResNet at batch 16:
//
//   * dispatch=module_walk   — virtual-dispatch forward through plan()'d
//                              modules (today's evaluate path);
//   * dispatch=plan_unfused  — ExecutionPlan with fuse=off: flat
//                              dispatch, but every elementwise layer is
//                              a standalone buffered step;
//   * dispatch=plan_fused    — the default plan: epilogue fusion +
//                              in-place elementwise + liveness-packed
//                              arena.
//
// Plus compile-time statistics (mean/min ms over repeated compiles) and
// the arena high-water-mark comparison (module-walk floats vs the fused
// plan's single block). The headline acceptance figures are
// `fused_vs_walk_speedup` (target >= 1.2x end-to-end eval images/s) and
// `arena_saved_ratio` (> 0). AMSNET_BENCH_QUICK=1 shrinks repetition
// counts for CI smoke runs.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "compile/plan.hpp"
#include "core/bench_json.hpp"
#include "core/report.hpp"
#include "data/synthetic_imagenet.hpp"
#include "models/resnet.hpp"
#include "runtime/eval_context.hpp"
#include "train/evaluate.hpp"

using namespace ams;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Times `reps` forwards of `batch` through `forward_once` (after
/// `warmup` unmeasured calls) and returns images/s.
template <typename Fn>
double throughput_images_per_s(std::size_t reps, std::size_t warmup, std::size_t batch,
                               Fn&& forward_once) {
    for (std::size_t i = 0; i < warmup; ++i) forward_once();
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < reps; ++i) forward_once();
    const double elapsed = seconds_since(start);
    return static_cast<double>(reps * batch) / elapsed;
}

}  // namespace

int main() {
    core::print_banner(std::cout, "Graph compiler: fused ExecutionPlan vs module walk",
                       "infrastructure (no paper figure)");

    const bool quick = [] {
        const char* env = std::getenv("AMSNET_BENCH_QUICK");
        return env != nullptr && *env != '\0' && *env != '0';
    }();
    const std::size_t batch = 16;
    const std::size_t reps = quick ? 12 : 60;
    const std::size_t warmup = quick ? 2 : 5;
    const std::size_t compile_reps = quick ? 5 : 25;

    models::LayerCommon common;
    common.bits_w = 8;
    common.bits_x = 8;  // quantized, AMS noise off: deterministic work
    models::ResNet model(models::mini_resnet_config(common));
    model.set_training(false);

    data::DatasetOptions data_options;
    data_options.classes = 10;
    data_options.train_per_class = 1;
    data_options.val_per_class = 4;
    data_options.image_size = 16;
    data_options.seed = 21;
    data::SyntheticImageNet dataset(data_options);
    const Tensor& images = dataset.val_images();
    const Shape in_shape{batch, images.dim(1), images.dim(2), images.dim(3)};

    runtime::EvalContext ctx;
    (void)model.plan(in_shape, ctx);
    // One steady-state batch, assembled once (the bench times the model,
    // not the gather).
    Tensor x(in_shape);
    for (std::size_t i = 0; i < batch; ++i) {
        const std::size_t src = i % images.dim(0);
        const std::size_t image = images.size() / images.dim(0);
        std::copy(images.data() + src * image, images.data() + (src + 1) * image,
                  x.data() + i * image);
    }

    // ----- compile time -----
    double compile_total_ms = 0.0;
    double compile_min_ms = 1e30;
    for (std::size_t i = 0; i < compile_reps; ++i) {
        const auto start = std::chrono::steady_clock::now();
        compile::ExecutionPlan p = compile::compile(model, in_shape);
        const double ms = seconds_since(start) * 1e3;
        compile_total_ms += ms;
        compile_min_ms = std::min(compile_min_ms, ms);
        (void)p;
    }
    const double compile_mean_ms = compile_total_ms / static_cast<double>(compile_reps);

    compile::CompileOptions unfused_options;
    unfused_options.fuse = false;
    compile::ExecutionPlan fused = compile::compile(model, in_shape);
    compile::ExecutionPlan unfused = compile::compile(model, in_shape, unfused_options);

    // ----- throughput -----
    auto timed_forward = [&](auto&& produce) {
        return throughput_images_per_s(reps, warmup, batch, [&] {
            const runtime::TensorArena::Checkpoint cp = ctx.checkpoint();
            (void)produce();
            ctx.rewind(cp);
        });
    };
    const double walk_ips = timed_forward([&] { return model.forward(x, ctx); });
    const double unfused_ips = timed_forward([&] { return unfused.run(x, ctx); });
    const double fused_ips = timed_forward([&] { return fused.run(x, ctx); });

    const double fused_vs_walk = fused_ips / walk_ips;
    const double fused_vs_unfused = fused_ips / unfused_ips;
    const compile::Stats& stats = fused.stats();
    const double arena_saved_ratio =
        stats.module_walk_floats == 0
            ? 0.0
            : 1.0 - static_cast<double>(stats.plan_floats) /
                        static_cast<double>(stats.module_walk_floats);

    // ----- report -----
    core::BenchReport bench("plan");
    bench.record_runtime_env();
    bench.config().set("model", "mini_resnet_8b");
    bench.config().set("image_size", static_cast<std::uint64_t>(data_options.image_size));
    bench.config().set("batch", static_cast<std::uint64_t>(batch));
    bench.config().set("reps", static_cast<std::uint64_t>(reps));
    bench.config().set("compile_reps", static_cast<std::uint64_t>(compile_reps));
    bench.config().set("quick", quick);
    bench.config().set("compile_mean_ms", compile_mean_ms);
    bench.config().set("compile_min_ms", compile_min_ms);
    bench.config().set("plan_steps", static_cast<std::uint64_t>(stats.steps));
    bench.config().set("layers_fused", static_cast<std::uint64_t>(stats.layers_fused));
    bench.config().set("intermediates_eliminated",
                       static_cast<std::uint64_t>(stats.intermediates_eliminated));
    bench.config().set("arena_floats_module_walk",
                       static_cast<std::uint64_t>(stats.module_walk_floats));
    bench.config().set("arena_floats_plan_unfused",
                       static_cast<std::uint64_t>(unfused.arena_floats()));
    bench.config().set("arena_floats_plan_fused", static_cast<std::uint64_t>(stats.plan_floats));
    bench.config().set("arena_saved_ratio", arena_saved_ratio);
    bench.config().set("fused_vs_walk_speedup", fused_vs_walk);
    bench.config().set("fused_vs_unfused_speedup", fused_vs_unfused);

    struct Row {
        const char* dispatch;
        double images_per_s;
        std::uint64_t arena_floats;
    };
    const std::vector<Row> rows = {
        {"module_walk", walk_ips, stats.module_walk_floats},
        {"plan_unfused", unfused_ips, unfused.arena_floats()},
        {"plan_fused", fused_ips, stats.plan_floats},
    };
    core::Table table({"dispatch", "images/s", "vs walk", "arena floats"});
    for (const Row& row : rows) {
        core::BenchFields& out = bench.add_row();
        out.set("dispatch", row.dispatch);
        out.set("images_per_s", row.images_per_s);
        out.set("speedup_vs_walk", row.images_per_s / walk_ips);
        out.set("arena_floats", row.arena_floats);
        table.add_row({row.dispatch, core::fmt_fixed(row.images_per_s, 1),
                       core::fmt_fixed(row.images_per_s / walk_ips, 2),
                       std::to_string(row.arena_floats)});
    }
    table.print(std::cout);
    std::cout << "\ncompile: mean " << core::fmt_fixed(compile_mean_ms, 2) << " ms, min "
              << core::fmt_fixed(compile_min_ms, 2) << " ms over " << compile_reps
              << " compiles\n";
    std::cout << "arena HWM: " << stats.module_walk_floats << " -> " << stats.plan_floats
              << " floats (" << core::fmt_fixed(100.0 * arena_saved_ratio, 1) << "% saved)\n";

    const bool speedup_ok = fused_vs_walk >= 1.2;
    const bool arena_ok = stats.plan_floats < stats.module_walk_floats;
    std::cout << "fused plan speedup vs module walk: " << core::fmt_fixed(fused_vs_walk, 2)
              << "x (target >= 1.2x): " << (speedup_ok ? "yes" : "NO") << "\n";
    std::cout << "arena high-water mark reduced: " << (arena_ok ? "yes" : "NO") << "\n";

    bench.capture_runtime_metrics();
    std::cout << "Artifact written to " << bench.write_artifact() << "\n";
    return speedup_ok && arena_ok ? 0 : 1;
}
