// Figure 6 reproduction: means of activations at the output of each
// convolutional layer (the injection point), evaluated across the whole
// validation set, for FP32, the 8b quantized network, and AMS-retrained
// networks at increasing noise levels.
//
// Paper shape claims: in most conv layers (43 of 53 on ResNet-50) the
// network retrained with AMS error pushes the activation means *away*
// from zero, and the larger the injected noise, the greater the push —
// the batch norm layers' mechanism for drowning the additive error.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/csv.hpp"
#include "core/report.hpp"
#include "train/evaluate.hpp"

using namespace ams;

namespace {

std::vector<double> means_for_state(core::ExperimentEnv& env, const TensorMap& state,
                                    const models::LayerCommon& common) {
    auto model = env.make_model(common);
    model->load_state("", state);
    return train::record_activation_means(*model, env.dataset().val_images(),
                                          env.options().batch_size);
}

}  // namespace

int main() {
    core::print_banner(std::cout,
                       "Figure 6: activation means at conv outputs vs injected AMS noise",
                       "Fig. 6 (means pushed away from 0 in 43/53 layers, more with noise)");

    core::ExperimentEnv env(core::ExperimentOptions::standard());

    // Variants, in increasing-noise order for the monotonicity check.
    const auto fig6 = bench::fig6_enobs();  // decreasing-noise order is reversed below
    std::vector<std::pair<std::string, std::vector<double>>> variants;
    variants.emplace_back("FP32",
                          means_for_state(env, env.fp32_state(), env.fp32_common()));
    variants.emplace_back("Quantized 8b",
                          means_for_state(env, env.quantized_state(8, 8),
                                          env.quant_common(8, 8)));
    for (auto it = fig6.rbegin(); it != fig6.rend(); ++it) {  // high ENOB (low noise) first
        const auto vmac_cfg = bench::vmac_at(*it);
        variants.emplace_back(
            "AMS " + core::fmt_fixed(*it, 1) + "b",
            means_for_state(env, env.ams_retrained_state(8, 8, vmac_cfg),
                            env.ams_common(8, 8, vmac_cfg)));
    }

    const std::size_t layers = variants.front().second.size();

    // Full per-layer series to CSV (one column per variant).
    {
        std::vector<std::string> headers{"layer"};
        for (const auto& [name, means] : variants) {
            (void)means;
            headers.push_back(name);
        }
        core::CsvWriter csv(core::artifact_dir() + "/fig6_activation_means.csv", headers);
        for (std::size_t l = 0; l < layers; ++l) {
            std::vector<std::string> row{std::to_string(l)};
            for (const auto& [name, means] : variants) {
                (void)name;
                row.push_back(core::fmt_fixed(means[l], 6));
            }
            csv.add_row(row);
        }
        std::cout << "Per-layer series written to " << csv.path() << "\n\n";
    }

    // Representative layer detail (the paper plots one layer): pick the
    // layer with the largest spread between quantized and noisiest AMS.
    std::size_t rep = 0;
    double best_spread = -1.0;
    const auto& quant_means = variants[1].second;
    const auto& noisy_means = variants.back().second;
    for (std::size_t l = 0; l < layers; ++l) {
        const double spread = std::fabs(noisy_means[l]) - std::fabs(quant_means[l]);
        if (spread > best_spread) {
            best_spread = spread;
            rep = l;
        }
    }

    core::Table table({"Variant", "mean(|layer mean|)", "rep. layer " + std::to_string(rep),
                       "AMS err std (rep.)"});
    for (const auto& [name, means] : variants) {
        double avg_abs = 0.0;
        for (double m : means) avg_abs += std::fabs(m);
        avg_abs /= static_cast<double>(layers);
        // Error std-dev at the representative layer, if this is an AMS variant.
        std::string err = "-";
        if (name.rfind("AMS", 0) == 0) {
            const double enob = std::stod(name.substr(4));
            auto model = env.make_model(env.ams_common(8, 8, bench::vmac_at(enob)));
            err = core::fmt_fixed(model->conv_units()[rep]->injector().error_stddev(), 4);
        }
        table.add_row({name, core::fmt_fixed(avg_abs, 4), core::fmt_fixed(means[rep], 4), err});
    }
    table.print(std::cout);

    // Count layers where the noisiest AMS variant sits farther from zero
    // than the quantized baseline (the paper's 43-of-53 statistic).
    std::size_t pushed = 0;
    for (std::size_t l = 0; l < layers; ++l) {
        if (std::fabs(noisy_means[l]) > std::fabs(quant_means[l])) ++pushed;
    }
    std::cout << "\nShape checks:\n"
              << "  - layers with activation mean pushed away from zero under AMS noise: "
              << pushed << " / " << layers << " (paper: 43 / 53)\n"
              << "  - monotonic push with noise at representative layer: ";
    bool monotone = true;
    for (std::size_t v = 2; v + 1 < variants.size(); ++v) {
        if (std::fabs(variants[v + 1].second[rep]) < std::fabs(variants[v].second[rep]) - 1e-3) {
            monotone = false;
        }
    }
    std::cout << (monotone ? "REPRODUCED" : "mixed (noise-dependent)") << "\n";
    return 0;
}
