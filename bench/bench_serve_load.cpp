// Serving load bench: drives amsnet::serve with closed- and open-loop
// clients across an offered-QPS sweep and >= 2 instance-pool sizes.
//
// Protocol, per instance count:
//
//   1. one *closed-loop* run (clients = 2 x instances) measures the
//      concurrency-limited capacity of the pool — its achieved QPS is
//      the calibration point for the open-loop sweep;
//   2. *open-loop* runs at 25/50/75/100% of that capacity submit on a
//      Poisson arrival schedule, exposing queueing delay as the offered
//      rate approaches saturation (the regime closed-loop clients never
//      reach).
//
// Each row of BENCH_serve.json records offered vs achieved QPS, server-
// side p50/p95/p99 latency, queue-wait percentiles, batch-fill statistics
// and the dispatched batch-size histogram. AMSNET_BENCH_QUICK=1 shrinks
// the request counts for CI smoke runs (the sweep structure — >= 4 QPS
// points x >= 2 instance counts — is preserved).
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/bench_json.hpp"
#include "core/report.hpp"
#include "data/synthetic_imagenet.hpp"
#include "models/resnet.hpp"
#include "serve/load_gen.hpp"
#include "serve/server.hpp"

using namespace ams;

namespace {

std::string histogram_string(const std::vector<std::uint64_t>& histogram) {
    std::ostringstream os;
    bool first = true;
    for (std::size_t b = 1; b < histogram.size(); ++b) {
        if (histogram[b] == 0) continue;
        if (!first) os << " ";
        first = false;
        os << b << ":" << histogram[b];
    }
    return os.str();
}

struct RunRow {
    std::string loop;
    std::size_t instances = 0;
    double offered_qps = 0.0;  // 0 for closed loop
    serve::LoadReport report;
    std::string dispatch = "walk";  ///< "walk" or "plan" (compiled replicas)
};

void add_report_row(core::BenchReport& bench, const RunRow& row, std::size_t max_batch) {
    core::BenchFields& out = bench.add_row();
    out.set("loop", row.loop);
    out.set("dispatch", row.dispatch);
    out.set("instances", static_cast<std::uint64_t>(row.instances));
    out.set("offered_qps", row.offered_qps);
    out.set("achieved_qps", row.report.achieved_qps);
    out.set("images_per_s", row.report.achieved_qps);
    out.set("issued", static_cast<std::uint64_t>(row.report.issued));
    out.set("completed", static_cast<std::uint64_t>(row.report.completed));
    out.set("duration_s", row.report.duration_s);
    out.set("latency_p50_us", row.report.latency.p50_us);
    out.set("latency_p95_us", row.report.latency.p95_us);
    out.set("latency_p99_us", row.report.latency.p99_us);
    out.set("latency_mean_us", row.report.latency.mean_us);
    out.set("latency_max_us", row.report.latency.max_us);
    out.set("queue_wait_p50_us", row.report.queue_wait.p50_us);
    out.set("queue_wait_p99_us", row.report.queue_wait.p99_us);
    out.set("mean_batch", row.report.server.mean_batch());
    out.set("batch_fill_ratio", row.report.server.batch_fill_ratio(max_batch));
    out.set("max_queue_depth", row.report.server.max_queue_depth);
    out.set("batch_histogram", histogram_string(row.report.server.batch_size_histogram));
}

}  // namespace

int main() {
    core::print_banner(std::cout, "Serving load: dynamic batching under offered-QPS sweep",
                       "infrastructure (no paper figure)");

    const bool quick = [] {
        const char* env = std::getenv("AMSNET_BENCH_QUICK");
        return env != nullptr && *env != '\0' && *env != '0';
    }();
    const std::size_t requests = quick ? 96 : 512;
    const std::vector<std::size_t> instance_counts = quick ? std::vector<std::size_t>{1, 2}
                                                           : std::vector<std::size_t>{1, 2, 4};
    const std::vector<double> load_fractions = {0.25, 0.50, 0.75, 1.00};

    serve::ServerOptions server_options;
    server_options.max_batch = 8;
    server_options.max_delay_us = 2000;

    // Quantized (8b) mini-ResNet, AMS noise off: the deterministic serving
    // datapath, so every run does identical per-image work.
    models::LayerCommon common;
    common.bits_w = 8;
    common.bits_x = 8;
    models::ResNet primary(models::mini_resnet_config(common));
    primary.set_training(false);

    data::DatasetOptions data_options;
    data_options.classes = 10;
    data_options.train_per_class = 1;
    data_options.val_per_class = 8;
    data_options.image_size = 16;
    data_options.seed = 17;
    data::SyntheticImageNet dataset(data_options);
    const Tensor& images = dataset.val_images();
    const Shape image_shape{images.dim(1), images.dim(2), images.dim(3)};

    core::BenchReport bench("serve");
    bench.record_runtime_env();
    bench.config().set("model", "mini_resnet_8b");
    bench.config().set("image_size", static_cast<std::uint64_t>(data_options.image_size));
    bench.config().set("requests_per_run", static_cast<std::uint64_t>(requests));
    bench.config().set("max_batch", static_cast<std::uint64_t>(server_options.max_batch));
    bench.config().set("max_delay_us", server_options.max_delay_us);
    bench.config().set("quick", quick);
    {
        std::ostringstream counts;
        for (std::size_t i = 0; i < instance_counts.size(); ++i) {
            counts << (i ? "," : "") << instance_counts[i];
        }
        bench.config().set("instance_counts", counts.str());
    }

    core::Table table({"loop", "inst", "offered qps", "achieved qps", "p50 (us)", "p99 (us)",
                       "mean batch", "fill", "max depth"});
    std::vector<RunRow> rows;

    for (std::size_t instances : instance_counts) {
        serve::ServerOptions options = server_options;
        options.instances = instances;

        // Closed loop: capacity calibration, module walk vs compiled
        // ExecutionPlan replicas (bit-identical logits, different
        // dispatch — the plan row isolates the compiler's serving win).
        double capacity_qps = 0.0;
        for (const serve::CompileMode mode :
             {serve::CompileMode::kOff, serve::CompileMode::kOn}) {
            serve::ServerOptions mode_options = options;
            mode_options.compile_mode = mode;
            serve::InferenceServer server(primary, image_shape, mode_options);
            serve::LoadGenOptions load;
            load.open_loop = false;
            load.clients = 2 * instances;
            load.requests = requests;
            RunRow row{"closed", instances, 0.0, run_load(server, images, load),
                       mode == serve::CompileMode::kOn ? "plan" : "walk"};
            server.shutdown();
            if (mode == serve::CompileMode::kOff) capacity_qps = row.report.achieved_qps;
            rows.push_back(std::move(row));
        }

        // Open loop: Poisson arrivals at fractions of measured capacity.
        for (double fraction : load_fractions) {
            const double offered = std::max(1.0, capacity_qps * fraction);
            serve::InferenceServer server(primary, image_shape, options);
            serve::LoadGenOptions load;
            load.open_loop = true;
            load.offered_qps = offered;
            load.clients = 2 * instances;
            load.requests = requests;
            load.seed = 1000 + instances;
            RunRow row{"open", instances, offered, run_load(server, images, load)};
            server.shutdown();
            rows.push_back(std::move(row));
        }
    }

    for (const RunRow& row : rows) {
        table.add_row({row.dispatch == "plan" ? row.loop + "/plan" : row.loop,
                       std::to_string(row.instances),
                       row.offered_qps == 0.0 ? "-" : core::fmt_fixed(row.offered_qps, 0),
                       core::fmt_fixed(row.report.achieved_qps, 0),
                       core::fmt_fixed(row.report.latency.p50_us, 0),
                       core::fmt_fixed(row.report.latency.p99_us, 0),
                       core::fmt_fixed(row.report.server.mean_batch(), 2),
                       core::fmt_fixed(row.report.server.batch_fill_ratio(
                                           server_options.max_batch), 2),
                       std::to_string(row.report.server.max_queue_depth)});
        add_report_row(bench, row, server_options.max_batch);
    }
    table.print(std::cout);

    bool complete = true;
    for (const RunRow& row : rows) complete = complete && row.report.completed == requests;
    std::cout << "\nall requests completed in every run: " << (complete ? "yes" : "NO") << "\n";

    bench.capture_runtime_metrics();
    std::cout << "Artifact written to " << bench.write_artifact() << "\n";
    return complete ? 0 : 1;
}
