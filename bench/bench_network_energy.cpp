// Whole-network inference energy accounting (extends the paper's fJ/MAC
// numbers to full inferences, and exposes the component model of
// energy::VmacEnergyModel as Sec. 4 invites).
//
// Prints per-layer MAC/VMAC counts and energy for MiniResNet on this
// substrate, then scales the story to the paper's ResNet-50 structure
// (3.86 GMAC/inference at 224x224) using the same E_MAC lower bounds —
// e.g. at the paper's <0.4% operating point (~313 fJ/MAC) a ResNet-50
// inference costs >= ~1.2 mJ in AMS MAC energy alone.
#include <iostream>

#include "bench_common.hpp"
#include "core/network_energy.hpp"
#include "core/report.hpp"

using namespace ams;

int main() {
    core::print_banner(std::cout, "Network energy accounting (component-level E_MAC model)",
                       "Sec. 4 (Eq. 3-4 lower bound; 'more sophisticated energy models')");

    core::ExperimentEnv env(core::ExperimentOptions::standard());
    auto model = env.make_model(env.fp32_common());
    Tensor probe(Shape{1, 3, env.options().dataset.image_size,
                       env.options().dataset.image_size});
    const auto shapes = core::extract_layer_shapes(*model, probe);

    const double enob = 6.0;
    const std::size_t nmult = 8;
    energy::VmacEnergyModel adc_only;  // the paper's ADC-dominated bound
    energy::VmacEnergyModel component;
    component.mult_fj_per_op = 3.0;    // switched-cap D-to-A multiply [24]
    component.digital_fj_per_add = 1.0;

    const auto report = energy::account_network(shapes, adc_only, enob, nmult);
    const auto report_full = energy::account_network(shapes, component, enob, nmult);

    core::Table table({"Layer", "N_tot", "Outputs", "MACs", "VMACs", "E [nJ] (ADC-only)"});
    for (const auto& l : report.layers) {
        table.add_row({l.name, std::to_string(l.n_tot), std::to_string(l.outputs),
                       std::to_string(l.macs), std::to_string(l.vmacs),
                       core::fmt_fixed(l.energy_nj, 2)});
    }
    table.print(std::cout);

    std::cout << "\nMiniResNet inference @ (ENOB " << enob << ", Nmult " << nmult << "):\n"
              << "  total " << report.total_macs << " MACs, ADC-only bound "
              << core::fmt_fixed(report.total_nj, 1) << " nJ ("
              << core::fmt_energy_fj(report.mean_emac_fj()) << "/MAC)\n"
              << "  with multiplier+digital components: "
              << core::fmt_fixed(report_full.total_nj, 1) << " nJ ("
              << core::fmt_energy_fj(report_full.mean_emac_fj()) << "/MAC)\n";

    // Scale to the paper's platform: ResNet-50 at 224x224 = 3.86 GMAC.
    std::cout << "\nResNet-50 (3.86 GMAC/inference) at the paper's operating points:\n";
    core::Table r50({"Operating point", "E_MAC,min", "AMS MAC energy per inference"});
    struct Op {
        const char* name;
        double enob;
        std::size_t nmult;
    };
    for (const Op op : {Op{"<1% loss   (ENOB 11, Nmult 8 per Fig. 4/8)", 11.0, 8},
                        Op{"<0.4% loss (ENOB 12, Nmult 8 per Fig. 4/8)", 12.0, 8},
                        Op{"floor regime (ENOB 10.5, Nmult 8)", 10.5, 8},
                        Op{"floor + large Nmult (ENOB 10.5, Nmult 64)", 10.5, 64}}) {
        const double emac = energy::emac_lower_bound_fj(op.enob, op.nmult);
        const double per_inference_uj = emac * 3.86e9 * 1e-9;  // fJ * MACs -> uJ
        r50.add_row({op.name, core::fmt_energy_fj(emac),
                     core::fmt_fixed(per_inference_uj, 1) + " uJ"});
    }
    r50.print(std::cout);
    std::cout << "\nReading: the paper's ~313 fJ/MAC floor for <0.4% loss corresponds to\n"
                 "~1.2 mJ of MAC energy per ResNet-50 inference — the system-level form of\n"
                 "its energy-accuracy conclusion.\n";
    return 0;
}
