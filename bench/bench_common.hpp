// Shared configuration for the experiment benches.
//
// Every bench regenerates one table or figure of the paper and prints the
// paper's reference values alongside the values measured on this
// substrate (synthetic dataset + MiniResNet; see DESIGN.md). Absolute
// numbers differ from the paper by construction — the *shape* (ordering,
// crossovers, recovery factors) is what is being reproduced.
//
// The interesting ENOB range shifts with network scale: ResNet-50 layers
// have N_tot up to 4608 and ImageNet demands fine logits, putting the
// paper's accuracy cliff at ENOB 9-13; MiniResNet's N_tot tops out at 288
// on an easier task, putting ours at ENOB ~4.5-8. Equivalence: accuracy
// depends on sqrt(Ntot * Nmult) * 2^-ENOB (Eq. 2), so the sweep below is
// the same experiment at this substrate's operating point.
#pragma once

#include <cmath>
#include <cstdlib>
#include <span>
#include <vector>

#include "ams/adc_quantizer.hpp"
#include "core/experiment.hpp"
#include "tensor/rng.hpp"

namespace ams::bench {

/// ENOB sweep for the Fig. 4 / Fig. 5 analogues (Nmult = 8 throughout,
/// matching the paper).
inline std::vector<double> enob_sweep() {
    if (core::env_flag("REPRO_FAST")) return {4.5, 5.5, 7.0};
    return {4.5, 5.0, 5.5, 6.0, 6.5, 7.0, 8.0, 9.0, 10.0};
}

/// ENOB used for the Table 2 freezing study: clearly inside the lossy
/// region (the paper uses ENOB 10 for the same reason at its scale).
inline double freezing_enob() {
    return 5.0;
}

/// AMS variants plotted in the Fig. 6 analogue (noise decreasing).
inline std::vector<double> fig6_enobs() {
    if (core::env_flag("REPRO_FAST")) return {4.5, 7.0};
    return {4.5, 5.5, 6.5, 8.0};
}

/// The paper sweeps Nmult over powers of two in Fig. 8.
inline std::vector<std::size_t> nmult_sweep() {
    return {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
}

inline vmac::VmacConfig vmac_at(double enob, std::size_t nmult = 8) {
    vmac::VmacConfig v;
    v.enob = enob;
    v.nmult = nmult;
    return v;
}

// ----- shared error-measurement helpers for the extension benches -----

/// Incremental RMS accumulator for injected-error samples.
class RmsAccumulator {
public:
    void add(double err) {
        sq_ += err * err;
        ++n_;
    }
    [[nodiscard]] double rms() const {
        return n_ == 0 ? 0.0 : std::sqrt(sq_ / static_cast<double>(n_));
    }
    /// Effective ENOB implied by the accumulated RMS at `full_scale`.
    [[nodiscard]] double effective_enob(double full_scale) const {
        return vmac::effective_enob_from_rms(rms(), full_scale);
    }
    [[nodiscard]] std::size_t count() const { return n_; }

private:
    double sq_ = 0.0;
    std::size_t n_ = 0;
};

/// Draws one random operand set in the DoReFa ranges every extension
/// bench uses: weights uniform in [-1, 1], activations uniform in [0, 1].
inline void random_operands(std::span<double> w, std::span<double> x, Rng& rng) {
    for (double& v : w) v = rng.uniform(-1.0, 1.0);
    for (double& v : x) v = rng.uniform(0.0, 1.0);
}

/// RMS error and effective ENOB of a dot-product datapath over random
/// operand draws.
struct ErrorStats {
    double rms_error = 0.0;
    double effective_enob = 0.0;
};

/// Runs `trials` random length-`len` dot products through `error_fn`
/// (called as error_fn(w, x), returning datapath - ideal for that draw)
/// and reports the RMS error plus the effective ENOB at `full_scale`.
template <typename ErrorFn>
ErrorStats measure_rms_error(std::size_t len, double full_scale, int trials, Rng& rng,
                             ErrorFn&& error_fn) {
    RmsAccumulator acc;
    for (int t = 0; t < trials; ++t) {
        std::vector<double> w(len), x(len);
        random_operands(w, x, rng);
        acc.add(error_fn(w, x));
    }
    return {acc.rms(), acc.effective_enob(full_scale)};
}

/// Mean and standard deviation of a sample set (population convention).
struct SampleStats {
    double mean = 0.0;
    double stddev = 0.0;
};

inline SampleStats sample_stats(std::span<const double> samples) {
    if (samples.empty()) return {};
    double mean = 0.0, sq = 0.0;
    for (double v : samples) {
        mean += v;
        sq += v * v;
    }
    mean /= static_cast<double>(samples.size());
    const double var = sq / static_cast<double>(samples.size()) - mean * mean;
    return {mean, std::sqrt(std::max(0.0, var))};
}

}  // namespace ams::bench
