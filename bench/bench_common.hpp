// Shared configuration for the experiment benches.
//
// Every bench regenerates one table or figure of the paper and prints the
// paper's reference values alongside the values measured on this
// substrate (synthetic dataset + MiniResNet; see DESIGN.md). Absolute
// numbers differ from the paper by construction — the *shape* (ordering,
// crossovers, recovery factors) is what is being reproduced.
//
// The interesting ENOB range shifts with network scale: ResNet-50 layers
// have N_tot up to 4608 and ImageNet demands fine logits, putting the
// paper's accuracy cliff at ENOB 9-13; MiniResNet's N_tot tops out at 288
// on an easier task, putting ours at ENOB ~4.5-8. Equivalence: accuracy
// depends on sqrt(Ntot * Nmult) * 2^-ENOB (Eq. 2), so the sweep below is
// the same experiment at this substrate's operating point.
#pragma once

#include <cstdlib>
#include <vector>

#include "core/experiment.hpp"

namespace ams::bench {

/// ENOB sweep for the Fig. 4 / Fig. 5 analogues (Nmult = 8 throughout,
/// matching the paper).
inline std::vector<double> enob_sweep() {
    if (core::env_flag("REPRO_FAST")) return {4.5, 5.5, 7.0};
    return {4.5, 5.0, 5.5, 6.0, 6.5, 7.0, 8.0, 9.0, 10.0};
}

/// ENOB used for the Table 2 freezing study: clearly inside the lossy
/// region (the paper uses ENOB 10 for the same reason at its scale).
inline double freezing_enob() {
    return 5.0;
}

/// AMS variants plotted in the Fig. 6 analogue (noise decreasing).
inline std::vector<double> fig6_enobs() {
    if (core::env_flag("REPRO_FAST")) return {4.5, 7.0};
    return {4.5, 5.5, 6.5, 8.0};
}

/// The paper sweeps Nmult over powers of two in Fig. 8.
inline std::vector<std::size_t> nmult_sweep() {
    return {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
}

inline vmac::VmacConfig vmac_at(double enob, std::size_t nmult = 8) {
    vmac::VmacConfig v;
    v.enob = enob;
    v.nmult = nmult;
    return v;
}

}  // namespace ams::bench
