// Figure 7 reproduction: Murmann's ADC survey — P/f_snyq vs ENOB with the
// constant-energy floor and the (slightly shifted) Schreier FOM_S = 187 dB
// line whose lower envelope is the paper's Eq. 3.
//
// The survey population here is synthetic but envelope-consistent (see
// DESIGN.md): the checks that matter for the paper — no published design
// beats the bound; the envelope hugs the floor below ENOB ~10.5 and the
// thermal wall above it — are asserted against the generated population.
#include <cmath>
#include <iostream>
#include <map>

#include "core/report.hpp"
#include "energy/adc_energy.hpp"
#include "energy/adc_survey.hpp"

using namespace ams;

int main() {
    core::print_banner(std::cout, "Figure 7: ADC survey envelope vs the Eq. 3 energy bound",
                       "Fig. 7 (floor ~0.3 pJ below ENOB 10.5; FOM_S=187 dB wall above)");

    energy::SurveyOptions opts;
    opts.designs = 1000;
    const auto survey = energy::generate_survey(opts);

    std::size_t isscc = 0;
    for (const auto& d : survey) {
        if (d.venue == energy::Venue::kIsscc) ++isscc;
    }
    std::cout << "Synthetic survey population: " << survey.size() << " designs ("
              << isscc << " ISSCC, " << survey.size() - isscc << " VLSI), years "
              << opts.year_min << "-" << opts.year_max << "\n\n";

    const auto envelope = energy::survey_envelope(survey, 1.0);
    // Per-bin minimum excess over the bound, evaluated at each design's
    // own ENOB (the bin-center bound would misstate designs near edges).
    std::map<long long, double> min_excess;
    for (const auto& d : survey) {
        const long long bin = static_cast<long long>(std::floor(d.enob));
        const double excess =
            d.energy_per_sample_pj / energy::adc_energy_lower_bound_pj(d.enob);
        const auto it = min_excess.find(bin);
        if (it == min_excess.end() || excess < it->second) min_excess[bin] = excess;
    }

    core::Table table({"ENOB bin", "Envelope P/fs [pJ]", "Eq.3 bound [pJ]",
                       "min(design/bound)", "Regime"});
    for (const auto& p : envelope) {
        const double bound = energy::adc_energy_lower_bound_pj(p.enob);
        const long long bin = static_cast<long long>(std::floor(p.enob));
        table.add_row({core::fmt_fixed(p.enob, 1), core::fmt_fixed(p.energy_pj, 3),
                       core::fmt_fixed(bound, 3), core::fmt_fixed(min_excess.at(bin), 2),
                       p.enob <= energy::kThermalCrossoverEnob ? "floor" : "thermal"});
    }
    table.print(std::cout);

    // Invariants the figure encodes.
    bool none_below = true;
    for (const auto& d : survey) {
        if (d.energy_per_sample_pj < energy::adc_energy_lower_bound_pj(d.enob) * (1 - 1e-9)) {
            none_below = false;
        }
    }
    const double wall_ratio = energy::adc_energy_lower_bound_pj(14.0) /
                              energy::adc_energy_lower_bound_pj(13.0);
    std::cout << "\nShape checks:\n"
              << "  - no design beats the Eq. 3 bound: "
              << (none_below ? "REPRODUCED" : "VIOLATED") << "\n"
              << "  - thermal wall slope (energy ratio per extra bit above 10.5): "
              << core::fmt_fixed(wall_ratio, 2) << "x (paper: ~4x)\n"
              << "  - Schreier line consistency at ENOB 12: Eq.3 = "
              << core::fmt_fixed(energy::adc_energy_lower_bound_pj(12.0), 3)
              << " pJ vs FOM_S(187dB) = "
              << core::fmt_fixed(energy::schreier_energy_pj(12.0), 3) << " pJ\n";
    return 0;
}
