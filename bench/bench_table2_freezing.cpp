// Table 2 reproduction: selective freezing during retraining with AMS
// error in the loop (ENOB in the lossy region, Nmult = 8).
//
// Paper (ENOB 10, ResNet-50), top-1 loss relative to the 8b network:
//   None      0.0353      Conv      0.0341   (freezing conv: no effect)
//   BN        0.0886      FC        0.0774   (freezing BN/FC hurts a lot)
//   BN and FC 0.120
// Shape to reproduce: loss(None) ~ loss(Conv) << loss(FC), loss(BN),
// loss(BN+FC) — i.e. batch norm (with the FC head) is what recovers
// accuracy, the conv weights barely matter.
//
// Extension row (paper Sec. 2 finding): retraining with AMS error in the
// LAST layer as well destroys learning; we reproduce that failure mode.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/report.hpp"

using namespace ams;

int main() {
    const double enob = bench::freezing_enob();
    core::print_banner(std::cout,
                       "Table 2: selective freezing during AMS retraining (ENOB " +
                           core::fmt_fixed(enob, 1) + ", Nmult=8)",
                       "Table 2 (None .0353 / Conv .0341 / BN .0886 / FC .0774 / BN+FC .120)");

    core::ExperimentEnv env(core::ExperimentOptions::standard());
    const TensorMap q88 = env.quantized_state(8, 8);
    const train::EvalResult base = env.evaluate_state(q88, env.quant_common(8, 8));
    std::cout << "8b quantized baseline: " << core::fmt_mean_std(base.mean, base.stddev)
              << "\n\n";

    const auto vmac_cfg = bench::vmac_at(enob);

    struct Row {
        const char* name;
        std::vector<models::LayerGroup> frozen;
        double paper_loss;
    };
    const Row rows[] = {
        {"None", {}, 0.0353},
        {"Conv", {models::LayerGroup::kConv}, 0.0341},
        {"BN", {models::LayerGroup::kBatchNorm}, 0.0886},
        {"FC", {models::LayerGroup::kFullyConnected}, 0.0774},
        {"BN and FC",
         {models::LayerGroup::kBatchNorm, models::LayerGroup::kFullyConnected},
         0.120},
    };

    // Eval-only loss at this ENOB: the recovery denominator.
    const train::EvalResult eval_only =
        env.evaluate_state(q88, env.ams_common(8, 8, vmac_cfg));
    const double loss_eval_only = base.mean - eval_only.mean;
    std::cout << "eval-only loss at this ENOB (no retraining): "
              << core::fmt_pct(loss_eval_only) << "\n\n";

    core::Table table({"Frozen Layers", "Paper loss re: 8b", "Ours loss re: 8b",
                       "Recovery fraction", "Samp. Std."});
    double loss_none = 0.0, loss_conv = 0.0;
    for (const Row& row : rows) {
        const TensorMap state = env.ams_retrained_state(8, 8, vmac_cfg, row.frozen);
        const train::EvalResult r = env.evaluate_state(state, env.ams_common(8, 8, vmac_cfg));
        const double loss = base.mean - r.mean;
        const double recovery_fraction =
            (loss_eval_only - loss) / std::max(loss_eval_only, 1e-9);
        if (std::string(row.name) == "None") loss_none = loss;
        if (std::string(row.name) == "Conv") loss_conv = loss;
        table.add_row({row.name, core::fmt_fixed(row.paper_loss, 4), core::fmt_pct(loss),
                       core::fmt_pct(recovery_fraction, 0), core::fmt_fixed(r.stddev, 4)});
    }
    table.print(std::cout);

    const double rec_none = loss_eval_only - loss_none;
    const double rec_conv_frozen = loss_eval_only - loss_conv;
    std::cout
        << "\nShape checks:\n"
        << "  - BN+FC alone (conv frozen) recover most of what full retraining does: "
        << core::fmt_pct(rec_conv_frozen) << " of " << core::fmt_pct(rec_none) << " ("
        << core::fmt_pct(rec_conv_frozen / std::max(rec_none, 1e-9), 0) << ")  "
        << (rec_conv_frozen > 0.5 * rec_none ? "REPRODUCED" : "NOT REPRODUCED") << "\n"
        << "  (Scale note: on ResNet-50 the paper finds conv freezing changes *nothing*\n"
        << "   — briefly-retrained 25M-parameter conv layers cannot move. On this small\n"
        << "   substrate conv layers do adapt, so freezing them costs a few points; the\n"
        << "   transferable mechanism — BN(+FC) suffices for the bulk of the recovery —\n"
        << "   is what this bench asserts. See EXPERIMENTS.md.)\n";

    // Extension: the paper found that injecting AMS error into the last
    // layer during training makes the network unable to learn. Retrain a
    // copy with the last-layer injector active and compare.
    std::cout << "\nExtension: AMS error in the last layer during training (paper Sec. 2)\n";
    auto model = env.make_model(env.ams_common(8, 8, vmac_cfg));
    model->load_state("", q88);
    auto cfg = model->config();
    // Rebuild with the failure-mode policy.
    auto bad_cfg = models::mini_resnet_config(env.ams_common(8, 8, vmac_cfg),
                                              env.options().dataset.classes,
                                              env.dataset().max_abs_value());
    bad_cfg.inject_last_layer_in_training = true;
    models::ResNet bad_model(bad_cfg);
    bad_model.load_state("", q88);
    auto opts = env.options().retrain;
    const train::TrainResult bad =
        fit(bad_model, env.dataset().train_images(), env.dataset().train_labels(),
            env.dataset().val_images(), env.dataset().val_labels(), opts);
    const TensorMap good_state = env.ams_retrained_state(8, 8, vmac_cfg);
    const train::EvalResult good =
        env.evaluate_state(good_state, env.ams_common(8, 8, vmac_cfg));
    std::cout << "  retrained WITHOUT last-layer injection: "
              << core::fmt_fixed(good.mean, 3) << "\n"
              << "  retrained WITH last-layer injection:    "
              << core::fmt_fixed(bad.best_val_top1, 3)
              << (bad.best_val_top1 < good.mean - 0.01
                      ? "  (worse -> paper's workaround justified)"
                      : "  (no failure at this scale: 10-way logits have wide margins;\n"
                        "   the paper's loss-of-learning occurs with 1000-way ImageNet\n"
                        "   logits, where FC-output noise of comparable LSB magnitude\n"
                        "   scrambles closely spaced class scores)")
              << "\n";
    (void)cfg;
    return 0;
}
