// amsnet::serve — in-process inference server with dynamic batching.
//
// The offline harness (train/evaluate.hpp) answers "what is the accuracy
// of this error model" by sweeping whole validation sets. This layer
// answers the serving question the ROADMAP's north star asks: single-image
// requests arrive asynchronously, get coalesced into batches under a
// latency budget, and are executed by a pool of model *instances* — each
// an eval-only replica of one primary model (models::make_eval_replica)
// with its own arena-planned EvalContext, so the steady-state model path
// stays allocation-free and noisy AMS backends stay statistically
// independent across instances.
//
// Architecture (DESIGN.md §12):
//
//     submit() ──▶ [ request queue ] ──▶ worker 0: replica 0 + ctx 0
//        │              (mutex+cv)  ──▶ worker 1: replica 1 + ctx 1
//     future◀───────────────────────────────┘   ... instance pool ...
//
//   * The queue is a plain FIFO guarded by one mutex: requests are a few
//     KiB of image each, so queue ops are nanoseconds next to a forward.
//   * A worker forms a batch by taking what is queued (up to max_batch);
//     if the batch is short it waits until either more work arrives or
//     `max_delay_us` has elapsed since the *oldest member* was enqueued —
//     the latency budget bounds the queueing delay batching can add.
//   * Completion is futures-based: submit() returns a
//     std::future<InferenceResult> fulfilled by the worker that served
//     the request. Model kernels themselves still fan out through the
//     global ThreadPool (parallel_for regions issued from worker
//     threads), so one big batch uses every core.
//   * shutdown() is graceful: new submissions are rejected, workers
//     drain every queued request (ignoring the batching delay), futures
//     all complete, threads join. The destructor calls it.
//
// Determinism contract: a deterministic model configuration (no AMS
// noise, e.g. the bit_exact datapath) produces logits *bit-identical* to
// train::evaluate on the same images at any instance count, batch size,
// and request interleaving — serving shares the evaluate batch->logits
// path (train::forward_batch) and per-image results are independent of
// the batch they ride in. Stochastic configurations are *not* batch- or
// schedule-invariant (noise epochs advance per forward); instead each
// instance owns an independent, per-instance-seeded noise stream.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "models/resnet.hpp"
#include "nn/module.hpp"
#include "runtime/eval_context.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"

namespace ams::serve {

/// Whether instances execute batches through a compiled ExecutionPlan
/// (src/compile) instead of the module walk. The two paths are
/// bit-identical (the compiler's determinism contract), so this is purely
/// a dispatch/throughput knob.
enum class CompileMode {
    kAuto,  ///< compile when AMSNET_COMPILE=on; fall back silently on CompileError
    kOn,    ///< always compile; construction throws CompileError if unsupported
    kOff,   ///< always run the module walk
};

/// Server knobs. Defaults serve a latency-lenient batch-throughput mix.
struct ServerOptions {
    std::size_t instances = 1;        ///< model replicas == worker threads
    std::size_t max_batch = 8;        ///< batch coalescing cap (>= 1)
    std::uint64_t max_delay_us = 1000;  ///< latency budget for batch fill;
                                        ///< 0 = never wait (batch whatever
                                        ///< is already queued)
    std::uint64_t seed = 0x5EBFE5EBFE5ULL;  ///< EvalContext seed base
    CompileMode compile_mode = CompileMode::kAuto;  ///< plan-compiled dispatch

    /// Throws std::invalid_argument on degenerate values.
    void validate() const;
};

/// Per-request timing, measured on the server's steady clock (ns since
/// server construction).
struct RequestTiming {
    std::uint64_t enqueue_ns = 0;   ///< submit() accepted the request
    std::uint64_t dequeue_ns = 0;   ///< its batch was formed
    std::uint64_t complete_ns = 0;  ///< its future was fulfilled
    std::size_t batch_size = 0;     ///< size of the batch it was served in
    std::size_t instance = 0;       ///< replica that served it

    [[nodiscard]] std::uint64_t queue_wait_ns() const { return dequeue_ns - enqueue_ns; }
    [[nodiscard]] std::uint64_t latency_ns() const { return complete_ns - enqueue_ns; }
};

/// What a fulfilled future carries.
struct InferenceResult {
    std::vector<float> logits;  ///< one row of the model's output
    std::size_t predicted = 0;  ///< argmax of logits
    RequestTiming timing;
};

/// Monotonic server counters (also mirrored into runtime::metrics under
/// the serve_* names, so AMSNET_TRACE=counters sees serving traffic in
/// the process-wide ledger).
struct ServerStats {
    std::uint64_t submitted = 0;      ///< requests accepted
    std::uint64_t completed = 0;      ///< futures fulfilled (incl. errors)
    std::uint64_t batches = 0;        ///< batches dispatched
    std::uint64_t batched_images = 0; ///< images across all batches
    std::uint64_t queue_wait_ns = 0;  ///< summed enqueue -> dequeue wait
    std::uint64_t max_queue_depth = 0;
    /// histogram[b] = batches dispatched with exactly b images
    /// (index 0 unused; size max_batch + 1).
    std::vector<std::uint64_t> batch_size_histogram;

    /// Mean fraction of max_batch a dispatched batch actually filled.
    [[nodiscard]] double batch_fill_ratio(std::size_t max_batch) const {
        return batches == 0 ? 0.0
                            : static_cast<double>(batched_images) /
                                  (static_cast<double>(batches) * static_cast<double>(max_batch));
    }
    [[nodiscard]] double mean_batch() const {
        return batches == 0 ? 0.0
                            : static_cast<double>(batched_images) / static_cast<double>(batches);
    }
};

/// Builds the model instance a worker will own. Called once per instance
/// at server construction; must return a *planned-ready* module in eval
/// mode (the server plans it for [max_batch, CHW] and owns it for the
/// server's lifetime). Instances must be independent: concurrent
/// forwards on distinct returned modules must not share mutable state.
using InstanceFactory = std::function<std::unique_ptr<nn::Module>(std::size_t instance)>;

/// The in-process inference server.
class InferenceServer {
public:
    /// Serves replicas of `primary` (models::make_eval_replica: shared
    /// immutable weights, per-instance noise streams). `primary` must
    /// outlive the server and must not be mutated while it runs.
    /// `image_shape` is the CHW shape of one request image.
    InferenceServer(models::ResNet& primary, const Shape& image_shape,
                    const ServerOptions& options = {});

    /// Generic form: serves whatever `factory` builds (any nn::Module
    /// with a planned forward path — e.g. a Sequential wrapping a
    /// VmacConv2d backend datapath).
    InferenceServer(InstanceFactory factory, const Shape& image_shape,
                    const ServerOptions& options = {});

    /// Graceful shutdown (drains the queue).
    ~InferenceServer();

    InferenceServer(const InferenceServer&) = delete;
    InferenceServer& operator=(const InferenceServer&) = delete;

    /// Enqueues one image (copied; `image` must hold CHW floats of the
    /// construction-time shape) and returns the future of its result.
    /// Thread-safe. Throws std::runtime_error once shutdown has begun.
    [[nodiscard]] std::future<InferenceResult> submit(const float* image);

    /// Convenience: rank-3 CHW tensor, or rank-4 [1, C, H, W]. Throws
    /// std::invalid_argument on a shape mismatch.
    [[nodiscard]] std::future<InferenceResult> submit(const Tensor& image);

    /// Stops accepting work, serves every queued request (the batching
    /// delay is waived while draining), joins the instance workers, and
    /// exports the metrics snapshot if AMSNET_METRICS_DUMP is set.
    /// Idempotent; thread-safe.
    void shutdown();

    /// Snapshot of the server counters (consistent across fields).
    [[nodiscard]] ServerStats stats() const;

    /// Requests currently queued (not yet dispatched to an instance).
    [[nodiscard]] std::size_t queue_depth() const;

    [[nodiscard]] const ServerOptions& options() const { return options_; }
    [[nodiscard]] const Shape& image_shape() const { return image_shape_; }

    /// ns since the server's epoch on its steady clock (the timebase of
    /// RequestTiming).
    [[nodiscard]] std::uint64_t now_ns() const;

private:
    struct Request;
    struct Instance;

    void start_workers();
    void worker_loop(std::size_t instance_index);
    /// Pops the next batch under the latency budget; empty => shut down.
    [[nodiscard]] std::vector<Request> next_batch();
    void run_batch(std::size_t instance_index, std::vector<Request>& batch);

    ServerOptions options_;
    Shape image_shape_;       // CHW
    std::size_t image_floats_ = 0;
    std::chrono::steady_clock::time_point epoch_;

    // ----- request queue (guarded by queue_mu_) -----
    mutable std::mutex queue_mu_;
    std::condition_variable queue_cv_;
    std::deque<Request> queue_;
    bool stopping_ = false;

    // ----- instance pool -----
    std::vector<std::unique_ptr<Instance>> instances_;
    std::vector<std::thread> workers_;
    std::once_flag shutdown_once_;

    // ----- counters (guarded by stats_mu_) -----
    mutable std::mutex stats_mu_;
    ServerStats stats_;
};

}  // namespace ams::serve
