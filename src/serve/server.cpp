#include "serve/server.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "compile/plan.hpp"
#include "runtime/metrics.hpp"
#include "runtime/trace.hpp"
#include "train/evaluate.hpp"

namespace ams::serve {

namespace metrics = runtime::metrics;

void ServerOptions::validate() const {
    if (instances == 0) throw std::invalid_argument("ServerOptions: instances must be > 0");
    if (max_batch == 0) throw std::invalid_argument("ServerOptions: max_batch must be > 0");
}

/// One queued request: an owned copy of the image plus the promise its
/// worker fulfills. Requests are moved (never copied) through the queue.
struct InferenceServer::Request {
    std::vector<float> image;
    std::promise<InferenceResult> promise;
    std::uint64_t enqueue_ns = 0;
};

/// One pool entry: an independent model replica plus the arena-planned
/// context its worker thread runs forwards in. The worker also keeps its
/// per-batch gather/scratch vectors here so the dispatch loop performs no
/// steady-state allocations of its own (result logits are per-request
/// heap copies by contract — they outlive the arena rewind).
struct InferenceServer::Instance {
    std::unique_ptr<nn::Module> model;
    runtime::EvalContext ctx;
    std::vector<const float*> gather;  ///< per-batch image pointers
    /// Compiled dispatch program over `model` (null: module walk). Built
    /// at construction per CompileMode; shares `ctx` scratch keys with
    /// the module path, so both stay usable and bit-identical.
    std::unique_ptr<compile::ExecutionPlan> plan;

    Instance(std::unique_ptr<nn::Module> m, std::uint64_t ctx_seed)
        : model(std::move(m)), ctx(ctx_seed) {}
};

InferenceServer::InferenceServer(models::ResNet& primary, const Shape& image_shape,
                                 const ServerOptions& options)
    : InferenceServer(
          [&primary](std::size_t instance) -> std::unique_ptr<nn::Module> {
              return models::make_eval_replica(primary, instance);
          },
          image_shape, options) {}

InferenceServer::InferenceServer(InstanceFactory factory, const Shape& image_shape,
                                 const ServerOptions& options)
    : options_(options), image_shape_(image_shape), epoch_(std::chrono::steady_clock::now()) {
    options_.validate();
    if (image_shape_.rank() != 3) {
        throw std::invalid_argument("InferenceServer: image_shape must be CHW (rank 3)");
    }
    if (!factory) throw std::invalid_argument("InferenceServer: null instance factory");
    image_floats_ = image_shape_.numel();
    stats_.batch_size_histogram.assign(options_.max_batch + 1, 0);

    const Shape batch_shape{options_.max_batch, image_shape_.dim(0), image_shape_.dim(1),
                            image_shape_.dim(2)};
    instances_.reserve(options_.instances);
    for (std::size_t i = 0; i < options_.instances; ++i) {
        auto model = factory(i);
        if (!model) throw std::invalid_argument("InferenceServer: factory returned null model");
        // Per-instance context seed: the context RNG root is not used by
        // the current module set (noise lives in module-owned streams),
        // but keep instances distinguishable for anything that does.
        instances_.push_back(
            std::make_unique<Instance>(std::move(model), options_.seed + 0x9E37 * (i + 1)));
        Instance& inst = *instances_.back();
        inst.model->set_training(false);
        (void)inst.model->plan(batch_shape, inst.ctx);
        inst.gather.reserve(options_.max_batch);
        const bool want_compile =
            options_.compile_mode == CompileMode::kOn ||
            (options_.compile_mode == CompileMode::kAuto && compile::env_enabled());
        if (want_compile) {
            compile::CompileOptions copts;
            copts.gemm_int = env_gemm_int_mode();  // AMSNET_GEMM_INT (off by default)
            try {
                inst.plan = std::make_unique<compile::ExecutionPlan>(
                    compile::compile(*inst.model, batch_shape, copts));
            } catch (const compile::CompileError&) {
                // kAuto: unsupported graphs stay on the (bit-identical)
                // module walk; kOn makes the failure a construction error.
                if (options_.compile_mode == CompileMode::kOn) throw;
            }
        }
    }
    start_workers();
}

InferenceServer::~InferenceServer() {
    shutdown();
}

std::uint64_t InferenceServer::now_ns() const {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now() - epoch_)
                                          .count());
}

void InferenceServer::start_workers() {
    workers_.reserve(instances_.size());
    for (std::size_t i = 0; i < instances_.size(); ++i) {
        workers_.emplace_back([this, i] { worker_loop(i); });
    }
}

std::future<InferenceResult> InferenceServer::submit(const float* image) {
    if (image == nullptr) throw std::invalid_argument("InferenceServer::submit: null image");
    Request req;
    req.image.assign(image, image + image_floats_);
    std::future<InferenceResult> future = req.promise.get_future();
    req.enqueue_ns = now_ns();
    std::size_t depth = 0;
    {
        std::lock_guard<std::mutex> lock(queue_mu_);
        if (stopping_) {
            throw std::runtime_error("InferenceServer::submit: server is shutting down");
        }
        queue_.push_back(std::move(req));
        depth = queue_.size();
    }
    queue_cv_.notify_one();
    metrics::add(metrics::Counter::kServeRequests);
    metrics::gauge_max(metrics::Gauge::kServeQueueDepthMax, depth);
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.submitted;
        stats_.max_queue_depth = std::max<std::uint64_t>(stats_.max_queue_depth, depth);
    }
    return future;
}

std::future<InferenceResult> InferenceServer::submit(const Tensor& image) {
    const bool chw = image.rank() == 3 && image.shape() == image_shape_;
    const bool nchw = image.rank() == 4 && image.dim(0) == 1 && image.dim(1) == image_shape_.dim(0) &&
                      image.dim(2) == image_shape_.dim(1) && image.dim(3) == image_shape_.dim(2);
    if (!chw && !nchw) {
        throw std::invalid_argument("InferenceServer::submit: image shape " + image.shape().str() +
                                    " does not match configured " + image_shape_.str());
    }
    return submit(image.data());
}

std::size_t InferenceServer::queue_depth() const {
    std::lock_guard<std::mutex> lock(queue_mu_);
    return queue_.size();
}

ServerStats InferenceServer::stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
}

std::vector<InferenceServer::Request> InferenceServer::next_batch() {
    std::unique_lock<std::mutex> lock(queue_mu_);
    queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return {};  // stopping_ && drained => exit

    std::vector<Request> batch;
    batch.reserve(options_.max_batch);
    auto take_available = [&] {
        while (!queue_.empty() && batch.size() < options_.max_batch) {
            batch.push_back(std::move(queue_.front()));
            queue_.pop_front();
        }
    };
    take_available();

    // Latency budget: wait for more work only while the batch is short,
    // the server is live, and the oldest member's budget has not expired.
    // While draining (stopping_), serve immediately with what we have.
    if (batch.size() < options_.max_batch && !stopping_ && options_.max_delay_us > 0) {
        const auto deadline = epoch_ + std::chrono::nanoseconds(batch.front().enqueue_ns) +
                              std::chrono::microseconds(options_.max_delay_us);
        while (batch.size() < options_.max_batch && !stopping_) {
            if (!queue_.empty()) {
                take_available();
                continue;
            }
            if (queue_cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
        }
        take_available();
    }
    return batch;
}

void InferenceServer::run_batch(std::size_t instance_index, std::vector<Request>& batch) {
    Instance& instance = *instances_[instance_index];
    const std::size_t count = batch.size();
    const std::uint64_t dequeue_ns = now_ns();
    char tag[48];
    std::snprintf(tag, sizeof(tag), "size=%zu", count);
    runtime::trace::Span span("serve.batch", tag);

    std::uint64_t wait_ns = 0;
    for (const Request& r : batch) wait_ns += dequeue_ns - r.enqueue_ns;
    metrics::add(metrics::Counter::kServeBatches);
    metrics::add(metrics::Counter::kServeBatchImages, count);
    metrics::add(metrics::Counter::kServeQueueWaitNs, wait_ns);

    instance.gather.clear();
    for (const Request& r : batch) instance.gather.push_back(r.image.data());

    const runtime::TensorArena::Checkpoint cp = instance.ctx.checkpoint();
    try {
        const Tensor batch_tensor =
            train::assemble_batch(instance.gather.data(), count, image_shape_, instance.ctx);
        const Tensor logits =
            instance.plan != nullptr
                ? instance.plan->run(batch_tensor, instance.ctx)
                : train::forward_batch(*instance.model, batch_tensor, instance.ctx);
        if (logits.rank() != 2 || logits.dim(0) != count) {
            throw std::runtime_error("InferenceServer: model produced logits of shape " +
                                     logits.shape().str() + " for a batch of " +
                                     std::to_string(count));
        }
        const std::size_t classes = logits.dim(1);
        for (std::size_t i = 0; i < count; ++i) {
            InferenceResult result;
            const float* row = logits.data() + i * classes;
            result.logits.assign(row, row + classes);
            result.predicted = static_cast<std::size_t>(
                std::max_element(row, row + classes) - row);
            result.timing.enqueue_ns = batch[i].enqueue_ns;
            result.timing.dequeue_ns = dequeue_ns;
            result.timing.complete_ns = now_ns();
            result.timing.batch_size = count;
            result.timing.instance = instance_index;
            batch[i].promise.set_value(std::move(result));
        }
    } catch (...) {
        const std::exception_ptr error = std::current_exception();
        for (Request& r : batch) r.promise.set_exception(error);
    }
    instance.ctx.rewind(cp);

    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.completed += count;
    ++stats_.batches;
    stats_.batched_images += count;
    stats_.queue_wait_ns += wait_ns;
    ++stats_.batch_size_histogram[count];
}

void InferenceServer::worker_loop(std::size_t instance_index) {
    const std::string label = "serve-" + std::to_string(instance_index);
    runtime::trace::set_thread_label(label.c_str());
    for (;;) {
        std::vector<Request> batch = next_batch();
        if (batch.empty()) return;
        run_batch(instance_index, batch);
    }
}

void InferenceServer::shutdown() {
    std::call_once(shutdown_once_, [this] {
        {
            std::lock_guard<std::mutex> lock(queue_mu_);
            stopping_ = true;
        }
        queue_cv_.notify_all();
        for (std::thread& t : workers_) t.join();
        // Every accepted request has been served: workers only exit on
        // (stopping_ && queue empty) and submissions are rejected after
        // stopping_ flips under the queue lock.
        (void)metrics::dump_snapshot_if_configured();
    });
}

}  // namespace ams::serve
