// Load generator for the inference server: the client half of the
// serving bench (bench_serve_load) and stress tests.
//
// Two canonical client models (the distinction matters — they probe
// different failure modes of a serving system):
//
//   * closed loop — `clients` threads each run submit -> wait -> submit.
//     Offered load adapts to service rate; measures best-case latency
//     and saturated throughput (concurrency-limited).
//   * open loop — requests arrive on a Poisson process at `offered_qps`
//     regardless of completions (client threads pace themselves against
//     a shared precomputed arrival schedule). Measures latency under a
//     fixed offered rate, including the queueing blow-up past
//     saturation — the regime closed-loop clients can never see.
//
// Latencies are taken from the server-side RequestTiming carried by each
// result (enqueue -> complete), so client scheduling jitter does not
// pollute the tail percentiles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/server.hpp"
#include "tensor/tensor.hpp"

namespace ams::serve {

struct LoadGenOptions {
    bool open_loop = false;     ///< false: closed loop (offered_qps ignored)
    double offered_qps = 0.0;   ///< open-loop Poisson arrival rate (> 0)
    std::size_t clients = 4;    ///< client threads
    std::size_t requests = 256; ///< total requests to issue
    std::uint64_t seed = 1;     ///< arrival-process + image-pick RNG

    /// Throws std::invalid_argument on degenerate values.
    void validate() const;
};

/// Order statistics of a latency sample, in microseconds.
struct LatencyStats {
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double mean_us = 0.0;
    double max_us = 0.0;
};

/// Nearest-rank percentiles of `samples_us` (sorted in place). Zero stats
/// on an empty sample.
[[nodiscard]] LatencyStats summarize_latency_us(std::vector<double>& samples_us);

/// One load run's results.
struct LoadReport {
    std::size_t issued = 0;
    std::size_t completed = 0;
    double duration_s = 0.0;     ///< first submit -> last completion
    double achieved_qps = 0.0;   ///< completed / duration
    LatencyStats latency;        ///< end-to-end (enqueue -> complete)
    LatencyStats queue_wait;     ///< enqueue -> batch formation
    ServerStats server;          ///< server counter snapshot after the run
};

/// Drives `server` with requests drawn round-robin from `images` (NCHW;
/// each request is one image) under the given client model and returns
/// the measured report. Blocks until every issued request completed.
/// Throws std::invalid_argument on shape mismatch with the server.
[[nodiscard]] LoadReport run_load(InferenceServer& server, const Tensor& images,
                                  const LoadGenOptions& options);

}  // namespace ams::serve
