#include "serve/load_gen.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "tensor/rng.hpp"

namespace ams::serve {

void LoadGenOptions::validate() const {
    if (clients == 0) throw std::invalid_argument("LoadGenOptions: clients must be > 0");
    if (requests == 0) throw std::invalid_argument("LoadGenOptions: requests must be > 0");
    if (open_loop && !(offered_qps > 0.0)) {
        throw std::invalid_argument("LoadGenOptions: open loop needs offered_qps > 0");
    }
}

LatencyStats summarize_latency_us(std::vector<double>& samples_us) {
    LatencyStats stats;
    if (samples_us.empty()) return stats;
    std::sort(samples_us.begin(), samples_us.end());
    const auto rank = [&](double q) {
        // Nearest-rank: ceil(q * n), 1-based.
        const std::size_t n = samples_us.size();
        std::size_t r = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
        r = std::min(std::max<std::size_t>(r, 1), n);
        return samples_us[r - 1];
    };
    stats.p50_us = rank(0.50);
    stats.p95_us = rank(0.95);
    stats.p99_us = rank(0.99);
    stats.max_us = samples_us.back();
    double sum = 0.0;
    for (double s : samples_us) sum += s;
    stats.mean_us = sum / static_cast<double>(samples_us.size());
    return stats;
}

namespace {

/// Everything the client threads share during one run.
struct RunState {
    std::atomic<std::size_t> next{0};  ///< request index dispenser
    std::mutex mu;                     ///< guards the merged timing list
    std::vector<RequestTiming> timings;
    std::atomic<std::size_t> failed{0};
};

void record(RunState& state, std::vector<RequestTiming>& local) {
    std::lock_guard<std::mutex> lock(state.mu);
    state.timings.insert(state.timings.end(), local.begin(), local.end());
    local.clear();
}

}  // namespace

LoadReport run_load(InferenceServer& server, const Tensor& images,
                    const LoadGenOptions& options) {
    options.validate();
    if (images.rank() != 4 || images.dim(0) == 0) {
        throw std::invalid_argument("run_load: images must be a non-empty NCHW tensor");
    }
    const Shape& chw = server.image_shape();
    if (images.dim(1) != chw.dim(0) || images.dim(2) != chw.dim(1) ||
        images.dim(3) != chw.dim(2)) {
        throw std::invalid_argument("run_load: image shape does not match the server's");
    }
    const std::size_t n_images = images.dim(0);
    const std::size_t image_floats = chw.numel();
    const float* base = images.data();

    // Open loop: one shared Poisson arrival schedule (cumulative offsets
    // from the run start), precomputed so every client paces against the
    // same clock and the process is reproducible under `seed`.
    std::vector<double> arrival_s;
    if (options.open_loop) {
        arrival_s.resize(options.requests);
        Rng rng(options.seed);
        double t = 0.0;
        for (std::size_t i = 0; i < options.requests; ++i) {
            const double u = rng.uniform(0.0, 1.0);
            t += -std::log1p(-u) / options.offered_qps;  // Exp(offered_qps)
            arrival_s[i] = t;
        }
    }

    RunState state;
    state.timings.reserve(options.requests);
    const auto run_start = std::chrono::steady_clock::now();

    auto client = [&](std::size_t /*client_index*/) {
        std::vector<RequestTiming> local;
        std::vector<std::future<InferenceResult>> pending;
        for (;;) {
            const std::size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
            if (i >= options.requests) break;
            const float* image = base + (i % n_images) * image_floats;
            try {
                if (options.open_loop) {
                    std::this_thread::sleep_until(
                        run_start + std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::duration<double>(arrival_s[i])));
                    pending.push_back(server.submit(image));
                } else {
                    const InferenceResult result = server.submit(image).get();
                    local.push_back(result.timing);
                }
            } catch (const std::exception&) {
                state.failed.fetch_add(1, std::memory_order_relaxed);
            }
        }
        // Open loop: reap after the issue phase so waiting never delays
        // the arrival schedule.
        for (std::future<InferenceResult>& f : pending) {
            try {
                local.push_back(f.get().timing);
            } catch (const std::exception&) {
                state.failed.fetch_add(1, std::memory_order_relaxed);
            }
        }
        record(state, local);
    };

    std::vector<std::thread> threads;
    threads.reserve(options.clients);
    for (std::size_t c = 0; c < options.clients; ++c) threads.emplace_back(client, c);
    for (std::thread& t : threads) t.join();

    LoadReport report;
    report.issued = options.requests;
    report.completed = state.timings.size();
    report.server = server.stats();

    if (!state.timings.empty()) {
        std::uint64_t first_enqueue = state.timings.front().enqueue_ns;
        std::uint64_t last_complete = 0;
        std::vector<double> latency_us;
        std::vector<double> wait_us;
        latency_us.reserve(state.timings.size());
        wait_us.reserve(state.timings.size());
        for (const RequestTiming& t : state.timings) {
            first_enqueue = std::min(first_enqueue, t.enqueue_ns);
            last_complete = std::max(last_complete, t.complete_ns);
            latency_us.push_back(static_cast<double>(t.latency_ns()) * 1e-3);
            wait_us.push_back(static_cast<double>(t.queue_wait_ns()) * 1e-3);
        }
        report.duration_s = static_cast<double>(last_complete - first_enqueue) * 1e-9;
        report.achieved_qps = report.duration_s > 0.0
                                  ? static_cast<double>(report.completed) / report.duration_s
                                  : 0.0;
        report.latency = summarize_latency_us(latency_us);
        report.queue_wait = summarize_latency_us(wait_us);
    }
    return report;
}

}  // namespace ams::serve
