#include "nn/linear.hpp"

#include <stdexcept>

#include "tensor/gemm.hpp"
#include "tensor/gemm_kernels.hpp"

namespace ams::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng, bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias),
      weight_("weight", Tensor(Shape{out_features, in_features})),
      bias_("bias", Tensor(Shape{bias ? out_features : 0})) {
    if (in_features == 0 || out_features == 0) {
        throw std::invalid_argument("Linear: feature counts must be nonzero");
    }
    weight_.value.fill_he_normal(rng, in_features);
}

void Linear::set_effective_weight(Tensor w) {
    if (w.shape() != weight_.value.shape()) {
        throw std::invalid_argument("Linear::set_effective_weight: shape mismatch " +
                                    w.shape().str() + " vs " + weight_.value.shape().str());
    }
    effective_weight_ = std::move(w);
}

Tensor Linear::forward(const Tensor& input) {
    if (input.rank() != 2 || input.dim(1) != in_features_) {
        throw std::invalid_argument("Linear::forward: expected {N, " +
                                    std::to_string(in_features_) + "}, got " +
                                    input.shape().str());
    }
    cached_input_ = input;
    const std::size_t batch = input.dim(0);
    Tensor output(Shape{batch, out_features_});
    // y (N x Out) = x (N x In) * W^T (In x Out); W stored (Out x In).
    gemm_bt(input.data(), forward_weight().data(), output.data(), batch, in_features_,
            out_features_);
    if (has_bias_) {
        for (std::size_t b = 0; b < batch; ++b) {
            float* row = output.data() + b * out_features_;
            for (std::size_t j = 0; j < out_features_; ++j) row[j] += bias_.value[j];
        }
    }
    return output;
}

Shape Linear::plan(const Shape& in, runtime::EvalContext& ctx) {
    if (in.rank() != 2 || in.dim(1) != in_features_) {
        throw std::invalid_argument("Linear::plan: expected {N, " +
                                    std::to_string(in_features_) + "}, got " + in.str());
    }
    // SIMD-arm pack buffer for W^T (gemm_bt); a no-op-sized reservation is
    // still registered so the scalar arm costs nothing extra.
    (void)ctx.reserve_scratch(this, GemmPackBuffers::kPackB,
                              packed_b_floats(in_features_, out_features_));
    return Shape{in.dim(0), out_features_};
}

Tensor Linear::forward(const Tensor& input, runtime::EvalContext& ctx) {
    if (training()) return forward(input);  // backward needs cached_input_
    if (input.rank() != 2 || input.dim(1) != in_features_) {
        throw std::invalid_argument("Linear::forward: expected {N, " +
                                    std::to_string(in_features_) + "}, got " +
                                    input.shape().str());
    }
    const std::size_t batch = input.dim(0);
    Tensor output = arena_output(ctx, Shape{batch, out_features_});
    (void)ctx.reserve_scratch(this, GemmPackBuffers::kPackB,
                              packed_b_floats(in_features_, out_features_));
    EvalContextPackBuffers pack(ctx, this, /*slot_base=*/0);
    gemm_bt(input.data(), forward_weight().data(), output.data(), batch, in_features_,
            out_features_, &pack);
    if (has_bias_) {
        for (std::size_t b = 0; b < batch; ++b) {
            float* row = output.data() + b * out_features_;
            for (std::size_t j = 0; j < out_features_; ++j) row[j] += bias_.value[j];
        }
    }
    return output;
}

Tensor Linear::backward(const Tensor& grad_output) {
    if (cached_input_.empty()) throw std::logic_error("Linear::backward before forward");
    const std::size_t batch = cached_input_.dim(0);
    if (grad_output.shape() != Shape{batch, out_features_}) {
        throw std::invalid_argument("Linear::backward: bad grad shape " +
                                    grad_output.shape().str());
    }
    // dW (Out x In) += gout^T (Out x N) * x (N x In)
    Tensor grad_w(weight_.value.shape());
    gemm_at(grad_output.data(), cached_input_.data(), grad_w.data(), out_features_, batch,
            in_features_);
    weight_.grad += grad_w;

    if (has_bias_) {
        for (std::size_t b = 0; b < batch; ++b) {
            const float* row = grad_output.data() + b * out_features_;
            for (std::size_t j = 0; j < out_features_; ++j) bias_.grad[j] += row[j];
        }
    }

    // dx (N x In) = gout (N x Out) * W (Out x In)
    Tensor grad_input(cached_input_.shape());
    gemm(grad_output.data(), forward_weight().data(), grad_input.data(), batch, out_features_,
         in_features_);
    return grad_input;
}

std::vector<Parameter*> Linear::parameters() {
    std::vector<Parameter*> out{&weight_};
    if (has_bias_) out.push_back(&bias_);
    return out;
}

std::vector<const Parameter*> Linear::own_parameters() const {
    std::vector<const Parameter*> out{&weight_};
    if (has_bias_) out.push_back(&bias_);
    return out;
}

std::vector<Parameter*> Linear::own_parameters() {
    return parameters();
}

}  // namespace ams::nn
