// Elementwise activation layers.
#pragma once

#include "nn/module.hpp"

namespace ams::nn {

/// Standard rectified linear unit: y = max(x, 0).
class ReLU : public Module {
public:
    Tensor forward(const Tensor& input) override;
    Tensor forward(const Tensor& input, runtime::EvalContext& ctx) override;
    Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] std::string name() const override { return "ReLU"; }

private:
    Tensor cached_input_;
};

/// ReLU clipped at `ceiling`: y = clamp(x, 0, ceiling).
///
/// DoReFa replaces every activation function with a ReLU that clips at 1
/// so the next layer's input activations are bounded in [0, 1] (paper
/// Sec. 2). The gradient is passed where 0 < x < ceiling.
class ClippedReLU : public Module {
public:
    /// Throws std::invalid_argument if ceiling <= 0.
    explicit ClippedReLU(float ceiling = 1.0f);

    Tensor forward(const Tensor& input) override;
    Tensor forward(const Tensor& input, runtime::EvalContext& ctx) override;
    Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] std::string name() const override { return "ClippedReLU"; }
    [[nodiscard]] float ceiling() const { return ceiling_; }

private:
    float ceiling_;
    Tensor cached_input_;
};

}  // namespace ams::nn
