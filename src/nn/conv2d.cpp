#include "nn/conv2d.hpp"

#include <stdexcept>
#include <vector>

#include "nn/conv_eval.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/trace.hpp"
#include "tensor/gemm.hpp"
#include "tensor/gemm_kernels.hpp"

namespace ams::nn {

Conv2d::Conv2d(const Conv2dOptions& opts, Rng& rng)
    : opts_(opts),
      weight_("weight",
              Tensor(Shape{opts.out_channels, opts.in_channels, opts.kernel, opts.kernel})) {
    if (opts.in_channels == 0 || opts.out_channels == 0 || opts.kernel == 0) {
        throw std::invalid_argument("Conv2d: channels and kernel must be nonzero");
    }
    if (opts.stride == 0) throw std::invalid_argument("Conv2d: stride must be nonzero");
    weight_.value.fill_he_normal(rng, opts.in_channels * opts.kernel * opts.kernel);
    if (opts.bias) {
        bias_.emplace("bias", Tensor(Shape{opts.out_channels}));
    }
}

void Conv2d::set_effective_weight(Tensor w) {
    if (w.shape() != weight_.value.shape()) {
        throw std::invalid_argument("Conv2d::set_effective_weight: shape mismatch " +
                                    w.shape().str() + " vs " + weight_.value.shape().str());
    }
    effective_weight_ = std::move(w);
}

ConvLowering Conv2d::make_lowering(const Shape& in) const {
    if (in.rank() != 4) {
        throw std::invalid_argument("Conv2d: expected NCHW input, got " + in.str());
    }
    if (in.dim(1) != opts_.in_channels) {
        throw std::invalid_argument("Conv2d: input channels " + std::to_string(in.dim(1)) +
                                    " != configured " + std::to_string(opts_.in_channels));
    }
    return ConvLowering(ConvGeometry{opts_.in_channels, in.dim(2),  in.dim(3),
                                     opts_.kernel,      opts_.kernel,  opts_.stride,
                                     opts_.stride,      opts_.padding, opts_.padding});
}

void Conv2d::add_bias(float* out_image_base, std::size_t out_spatial) const {
    for (std::size_t c = 0; c < opts_.out_channels; ++c) {
        float* chan = out_image_base + c * out_spatial;
        const float bv = bias_->value[c];
        for (std::size_t i = 0; i < out_spatial; ++i) chan[i] += bv;
    }
}

Tensor Conv2d::forward(const Tensor& input) {
    runtime::trace::Span span("Conv2d.forward");
    lowering_ = make_lowering(input.shape());
    cached_input_ = input;

    const std::size_t batch = input.dim(0);
    const std::size_t out_spatial = lowering_.out_spatial();
    const std::size_t patch = lowering_.patch_size();

    Tensor output(Shape{batch, opts_.out_channels, lowering_.out_h(), lowering_.out_w()});
    const Tensor& w = forward_weight();
    const std::size_t out_image = opts_.out_channels * out_spatial;

    if (training()) {
        // Lower the whole batch once into the member cache; backward()
        // reuses these columns instead of re-running im2col per image.
        cached_columns_.resize(batch * patch * out_spatial);
        cached_columns_batch_ = batch;
        lowering_.lower_batch(input.data(), batch, cached_columns_.data());
        runtime::parallel_for(
            0, batch, runtime::suggest_grain(batch, 1),
            [&](std::size_t b_begin, std::size_t b_end) {
                for (std::size_t b = b_begin; b < b_end; ++b) {
                    // out (Cout x OHW) = W (Cout x patch) * columns (patch x OHW)
                    gemm(w.data(), cached_columns_.data() + b * patch * out_spatial,
                         output.data() + b * out_image, opts_.out_channels, patch,
                         out_spatial);
                    if (bias_) add_bias(output.data() + b * out_image, out_spatial);
                }
            });
        return output;
    }

    // Eval without a context: images are independent, each chunk lowers
    // and multiplies its own slice of the batch with a private scratch
    // buffer. The inner im2col and gemm are themselves parallel, so a
    // batch of 1 still scales.
    cached_columns_batch_ = 0;
    runtime::parallel_for(
        0, batch, runtime::suggest_grain(batch, 1),
        [&](std::size_t b_begin, std::size_t b_end) {
            std::vector<float> columns(patch * out_spatial);
            for (std::size_t b = b_begin; b < b_end; ++b) {
                lowering_.lower_image(input.data(), b, columns.data());
                gemm(w.data(), columns.data(), output.data() + b * out_image,
                     opts_.out_channels, patch, out_spatial);
                if (bias_) add_bias(output.data() + b * out_image, out_spatial);
            }
        });
    return output;
}

Shape Conv2d::plan(const Shape& in, runtime::EvalContext& ctx) {
    const ConvLowering low = make_lowering(in);
    conv_eval_reserve(ctx, this, in.dim(0), low.patch_size(), low.out_spatial());
    return Shape{in.dim(0), opts_.out_channels, low.out_h(), low.out_w()};
}

Tensor Conv2d::forward(const Tensor& input, runtime::EvalContext& ctx) {
    if (training()) return forward(input);  // backward needs the caches
    lowering_ = make_lowering(input.shape());

    const std::size_t batch = input.dim(0);
    Tensor output =
        arena_output(ctx, Shape{batch, opts_.out_channels, lowering_.out_h(), lowering_.out_w()});

    // Local struct (not a lambda): conv_eval_run takes a plain function
    // pointer so the hot path stays allocation-free.
    struct BiasTail {
        const Conv2d* conv;
        std::size_t out_spatial;
        static void apply(void* self, float* out_image, std::size_t /*b*/) {
            const auto* tail = static_cast<const BiasTail*>(self);
            tail->conv->add_bias(out_image, tail->out_spatial);
        }
    } tail{this, lowering_.out_spatial()};

    conv_eval_run(input.data(), batch, lowering_, forward_weight().data(), opts_.out_channels,
                  output.data(), ctx, this, bias_ ? &BiasTail::apply : nullptr,
                  bias_ ? &tail : nullptr);
    return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
    if (cached_input_.empty()) {
        throw std::logic_error("Conv2d::backward called before forward");
    }
    const std::size_t batch = cached_input_.dim(0);
    const std::size_t out_spatial = lowering_.out_spatial();
    const std::size_t patch = lowering_.patch_size();
    const Shape expected{batch, opts_.out_channels, lowering_.out_h(), lowering_.out_w()};
    if (grad_output.shape() != expected) {
        throw std::invalid_argument("Conv2d::backward: grad shape " + grad_output.shape().str() +
                                    " != " + expected.str());
    }

    Tensor grad_input(cached_input_.shape());
    // Columns were already lowered by the training forward; fall back to
    // one fresh lowering into the same reusable cache otherwise (e.g. a
    // forward that ran in eval mode). Either way im2col runs at most once
    // per (input, shape), not once per image per backward.
    if (cached_columns_batch_ != batch ||
        cached_columns_.size() < batch * patch * out_spatial) {
        cached_columns_.resize(batch * patch * out_spatial);
        lowering_.lower_batch(cached_input_.data(), batch, cached_columns_.data());
        cached_columns_batch_ = batch;
    }
    bwd_grad_columns_.resize(patch * out_spatial);
    bwd_grad_w_.resize(opts_.out_channels * patch);
    const Tensor& w = forward_weight();

    const std::size_t in_image = lowering_.image_floats();
    const std::size_t out_image = opts_.out_channels * out_spatial;
    for (std::size_t b = 0; b < batch; ++b) {
        const float* gout = grad_output.data() + b * out_image;
        const float* columns = cached_columns_.data() + b * patch * out_spatial;

        // dW (Cout x patch) += gout (Cout x OHW) * columns^T (OHW x patch)
        gemm_bt(gout, columns, bwd_grad_w_.data(), opts_.out_channels, out_spatial, patch);
        for (std::size_t i = 0; i < bwd_grad_w_.size(); ++i) {
            weight_.grad[i] += bwd_grad_w_[i];
        }

        // dColumns (patch x OHW) = W^T (patch x Cout) * gout (Cout x OHW)
        gemm_at(w.data(), gout, bwd_grad_columns_.data(), patch, opts_.out_channels,
                out_spatial);
        col2im(bwd_grad_columns_.data(), lowering_.geometry(),
               grad_input.data() + b * in_image);

        if (bias_) {
            for (std::size_t c = 0; c < opts_.out_channels; ++c) {
                const float* chan = gout + c * out_spatial;
                double acc = 0.0;
                for (std::size_t i = 0; i < out_spatial; ++i) acc += chan[i];
                bias_->grad[c] += static_cast<float>(acc);
            }
        }
    }
    return grad_input;
}

std::vector<Parameter*> Conv2d::parameters() {
    std::vector<Parameter*> out{&weight_};
    if (bias_) out.push_back(&*bias_);
    return out;
}

std::vector<const Parameter*> Conv2d::own_parameters() const {
    std::vector<const Parameter*> out{&weight_};
    if (bias_) out.push_back(&*bias_);
    return out;
}

std::vector<Parameter*> Conv2d::own_parameters() {
    return parameters();
}

}  // namespace ams::nn
