#include "nn/conv2d.hpp"

#include <stdexcept>
#include <vector>

#include "runtime/parallel_for.hpp"
#include "tensor/gemm.hpp"

namespace ams::nn {

Conv2d::Conv2d(const Conv2dOptions& opts, Rng& rng)
    : opts_(opts),
      weight_("weight",
              Tensor(Shape{opts.out_channels, opts.in_channels, opts.kernel, opts.kernel})) {
    if (opts.in_channels == 0 || opts.out_channels == 0 || opts.kernel == 0) {
        throw std::invalid_argument("Conv2d: channels and kernel must be nonzero");
    }
    if (opts.stride == 0) throw std::invalid_argument("Conv2d: stride must be nonzero");
    weight_.value.fill_he_normal(rng, opts.in_channels * opts.kernel * opts.kernel);
    if (opts.bias) {
        bias_.emplace("bias", Tensor(Shape{opts.out_channels}));
    }
}

void Conv2d::set_effective_weight(Tensor w) {
    if (w.shape() != weight_.value.shape()) {
        throw std::invalid_argument("Conv2d::set_effective_weight: shape mismatch " +
                                    w.shape().str() + " vs " + weight_.value.shape().str());
    }
    effective_weight_ = std::move(w);
}

Tensor Conv2d::forward(const Tensor& input) {
    if (input.rank() != 4) {
        throw std::invalid_argument("Conv2d::forward: expected NCHW input, got " +
                                    input.shape().str());
    }
    if (input.dim(1) != opts_.in_channels) {
        throw std::invalid_argument("Conv2d::forward: input channels " +
                                    std::to_string(input.dim(1)) + " != configured " +
                                    std::to_string(opts_.in_channels));
    }
    geometry_ = ConvGeometry{opts_.in_channels, input.dim(2),  input.dim(3),
                             opts_.kernel,      opts_.kernel,  opts_.stride,
                             opts_.stride,      opts_.padding, opts_.padding};
    geometry_.validate();
    cached_input_ = input;

    const std::size_t batch = input.dim(0);
    const std::size_t oh = geometry_.out_h();
    const std::size_t ow = geometry_.out_w();
    const std::size_t out_spatial = oh * ow;
    const std::size_t patch = geometry_.patch_size();

    Tensor output(Shape{batch, opts_.out_channels, oh, ow});
    const Tensor& w = forward_weight();

    const std::size_t in_image = opts_.in_channels * geometry_.in_h * geometry_.in_w;
    const std::size_t out_image = opts_.out_channels * out_spatial;
    // Images are independent: each chunk lowers and multiplies its own
    // slice of the batch with a private scratch buffer. The inner im2col
    // and gemm are themselves parallel, so a batch of 1 still scales.
    runtime::parallel_for(
        0, batch, runtime::suggest_grain(batch, 1),
        [&](std::size_t b_begin, std::size_t b_end) {
            std::vector<float> columns(patch * out_spatial);
            for (std::size_t b = b_begin; b < b_end; ++b) {
                im2col(input.data() + b * in_image, geometry_, columns.data());
                // out (Cout x OHW) = W (Cout x patch) * columns (patch x OHW)
                gemm(w.data(), columns.data(), output.data() + b * out_image,
                     opts_.out_channels, patch, out_spatial);
                if (bias_) {
                    for (std::size_t c = 0; c < opts_.out_channels; ++c) {
                        float* chan = output.data() + b * out_image + c * out_spatial;
                        const float bv = bias_->value[c];
                        for (std::size_t i = 0; i < out_spatial; ++i) chan[i] += bv;
                    }
                }
            }
        });
    return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
    if (cached_input_.empty()) {
        throw std::logic_error("Conv2d::backward called before forward");
    }
    const std::size_t batch = cached_input_.dim(0);
    const std::size_t oh = geometry_.out_h();
    const std::size_t ow = geometry_.out_w();
    const std::size_t out_spatial = oh * ow;
    const std::size_t patch = geometry_.patch_size();
    const Shape expected{batch, opts_.out_channels, oh, ow};
    if (grad_output.shape() != expected) {
        throw std::invalid_argument("Conv2d::backward: grad shape " + grad_output.shape().str() +
                                    " != " + expected.str());
    }

    Tensor grad_input(cached_input_.shape());
    std::vector<float> columns(patch * out_spatial);
    std::vector<float> grad_columns(patch * out_spatial);
    std::vector<float> grad_w_sample(opts_.out_channels * patch);
    const Tensor& w = forward_weight();

    const std::size_t in_image = opts_.in_channels * geometry_.in_h * geometry_.in_w;
    const std::size_t out_image = opts_.out_channels * out_spatial;
    for (std::size_t b = 0; b < batch; ++b) {
        const float* gout = grad_output.data() + b * out_image;

        // dW (Cout x patch) += gout (Cout x OHW) * columns^T (OHW x patch)
        im2col(cached_input_.data() + b * in_image, geometry_, columns.data());
        gemm_bt(gout, columns.data(), grad_w_sample.data(), opts_.out_channels, out_spatial,
                patch);
        for (std::size_t i = 0; i < grad_w_sample.size(); ++i) {
            weight_.grad[i] += grad_w_sample[i];
        }

        // dColumns (patch x OHW) = W^T (patch x Cout) * gout (Cout x OHW)
        gemm_at(w.data(), gout, grad_columns.data(), patch, opts_.out_channels, out_spatial);
        col2im(grad_columns.data(), geometry_, grad_input.data() + b * in_image);

        if (bias_) {
            for (std::size_t c = 0; c < opts_.out_channels; ++c) {
                const float* chan = gout + c * out_spatial;
                double acc = 0.0;
                for (std::size_t i = 0; i < out_spatial; ++i) acc += chan[i];
                bias_->grad[c] += static_cast<float>(acc);
            }
        }
    }
    return grad_input;
}

std::vector<Parameter*> Conv2d::parameters() {
    std::vector<Parameter*> out{&weight_};
    if (bias_) out.push_back(&*bias_);
    return out;
}

std::vector<const Parameter*> Conv2d::own_parameters() const {
    std::vector<const Parameter*> out{&weight_};
    if (bias_) out.push_back(&*bias_);
    return out;
}

std::vector<Parameter*> Conv2d::own_parameters() {
    return parameters();
}

}  // namespace ams::nn
