#include "nn/activations.hpp"

#include <stdexcept>

namespace ams::nn {

Tensor ReLU::forward(const Tensor& input) {
    cached_input_ = input;
    Tensor out = input;
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (out[i] < 0.0f) out[i] = 0.0f;
    }
    return out;
}

Tensor ReLU::forward(const Tensor& input, runtime::EvalContext& ctx) {
    if (training()) return forward(input);  // backward needs cached_input_
    Tensor out = arena_output(ctx, input.shape());
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = input[i] < 0.0f ? 0.0f : input[i];
    }
    return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
    check_same_shape(grad_output, cached_input_, "ReLU::backward");
    Tensor grad = grad_output;
    for (std::size_t i = 0; i < grad.size(); ++i) {
        if (cached_input_[i] <= 0.0f) grad[i] = 0.0f;
    }
    return grad;
}

ClippedReLU::ClippedReLU(float ceiling) : ceiling_(ceiling) {
    if (ceiling <= 0.0f) throw std::invalid_argument("ClippedReLU: ceiling must be positive");
}

Tensor ClippedReLU::forward(const Tensor& input) {
    cached_input_ = input;
    Tensor out = input;
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (out[i] < 0.0f) {
            out[i] = 0.0f;
        } else if (out[i] > ceiling_) {
            out[i] = ceiling_;
        }
    }
    return out;
}

Tensor ClippedReLU::forward(const Tensor& input, runtime::EvalContext& ctx) {
    if (training()) return forward(input);
    Tensor out = arena_output(ctx, input.shape());
    for (std::size_t i = 0; i < out.size(); ++i) {
        const float x = input[i];
        out[i] = x < 0.0f ? 0.0f : (x > ceiling_ ? ceiling_ : x);
    }
    return out;
}

Tensor ClippedReLU::backward(const Tensor& grad_output) {
    check_same_shape(grad_output, cached_input_, "ClippedReLU::backward");
    Tensor grad = grad_output;
    for (std::size_t i = 0; i < grad.size(); ++i) {
        const float x = cached_input_[i];
        if (x <= 0.0f || x >= ceiling_) grad[i] = 0.0f;
    }
    return grad;
}

}  // namespace ams::nn
