#include "nn/activations.hpp"

#include <stdexcept>

#include "runtime/simd.hpp"

namespace ams::nn {

Tensor ReLU::forward(const Tensor& input) {
    cached_input_ = input;
    Tensor out = input;
    simd::relu(out.data(), out.data(), out.size());
    return out;
}

Tensor ReLU::forward(const Tensor& input, runtime::EvalContext& ctx) {
    if (training()) return forward(input);  // backward needs cached_input_
    Tensor out = arena_output(ctx, input.shape());
    simd::relu(input.data(), out.data(), out.size());
    return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
    check_same_shape(grad_output, cached_input_, "ReLU::backward");
    Tensor grad = grad_output;
    for (std::size_t i = 0; i < grad.size(); ++i) {
        if (cached_input_[i] <= 0.0f) grad[i] = 0.0f;
    }
    return grad;
}

ClippedReLU::ClippedReLU(float ceiling) : ceiling_(ceiling) {
    if (ceiling <= 0.0f) throw std::invalid_argument("ClippedReLU: ceiling must be positive");
}

Tensor ClippedReLU::forward(const Tensor& input) {
    cached_input_ = input;
    Tensor out = input;
    simd::clipped_relu(out.data(), out.data(), out.size(), ceiling_);
    return out;
}

Tensor ClippedReLU::forward(const Tensor& input, runtime::EvalContext& ctx) {
    if (training()) return forward(input);
    Tensor out = arena_output(ctx, input.shape());
    simd::clipped_relu(input.data(), out.data(), out.size(), ceiling_);
    return out;
}

Tensor ClippedReLU::backward(const Tensor& grad_output) {
    check_same_shape(grad_output, cached_input_, "ClippedReLU::backward");
    Tensor grad = grad_output;
    for (std::size_t i = 0; i < grad.size(); ++i) {
        const float x = cached_input_[i];
        if (x <= 0.0f || x >= ceiling_) grad[i] = 0.0f;
    }
    return grad;
}

}  // namespace ams::nn
