// Softmax cross-entropy loss with integer class labels.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace ams::nn {

/// Numerically stable softmax + cross-entropy over {N, classes} logits.
class SoftmaxCrossEntropy {
public:
    /// Returns mean loss over the batch. `labels` must have one entry per
    /// row of `logits`, each < logits.dim(1). Throws std::invalid_argument
    /// otherwise.
    float forward(const Tensor& logits, const std::vector<std::size_t>& labels);

    /// Gradient of the mean loss w.r.t. the logits of the last forward().
    [[nodiscard]] Tensor backward() const;

    /// Softmax probabilities from the last forward() ({N, classes}).
    [[nodiscard]] const Tensor& probabilities() const { return probs_; }

private:
    Tensor probs_;
    std::vector<std::size_t> labels_;
};

/// Fraction of rows whose argmax equals the label (top-1 accuracy).
[[nodiscard]] double top1_accuracy(const Tensor& logits, const std::vector<std::size_t>& labels);

/// Fraction of rows whose label is among the k largest logits.
[[nodiscard]] double topk_accuracy(const Tensor& logits, const std::vector<std::size_t>& labels,
                                   std::size_t k);

}  // namespace ams::nn
