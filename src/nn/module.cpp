#include "nn/module.hpp"

#include <stdexcept>

namespace ams::nn {

void Module::collect_state(const std::string& prefix, TensorMap& out) const {
    for (const Parameter* p : own_parameters()) {
        out[prefix + p->name] = p->value;
    }
}

void Module::load_state(const std::string& prefix, const TensorMap& in) {
    for (Parameter* p : own_parameters()) {
        const auto it = in.find(prefix + p->name);
        if (it == in.end()) {
            throw std::runtime_error("Module::load_state: missing entry " + prefix + p->name);
        }
        if (it->second.shape() != p->value.shape()) {
            throw std::runtime_error("Module::load_state: shape mismatch for " + prefix + p->name +
                                     ": " + it->second.shape().str() + " vs " +
                                     p->value.shape().str());
        }
        p->value = it->second;
        p->grad = Tensor(p->value.shape());
    }
}

void Module::set_frozen(bool frozen) {
    for (Parameter* p : parameters()) p->frozen = frozen;
}

void zero_grads(const std::vector<Parameter*>& params) {
    for (Parameter* p : params) p->zero_grad();
}

std::size_t parameter_count(const std::vector<Parameter*>& params) {
    std::size_t n = 0;
    for (const Parameter* p : params) n += p->value.size();
    return n;
}

std::size_t share_parameters_with(Module& dst, Module& src) {
    const std::vector<Parameter*> dst_params = dst.parameters();
    const std::vector<Parameter*> src_params = src.parameters();
    if (dst_params.size() != src_params.size()) {
        throw std::invalid_argument("share_parameters_with: parameter count mismatch (" +
                                    std::to_string(dst_params.size()) + " vs " +
                                    std::to_string(src_params.size()) + ")");
    }
    std::size_t shared = 0;
    for (std::size_t i = 0; i < dst_params.size(); ++i) {
        Parameter& d = *dst_params[i];
        Parameter& s = *src_params[i];
        if (d.name != s.name) {
            throw std::invalid_argument("share_parameters_with: parameter name mismatch at " +
                                        std::to_string(i) + ": " + d.name + " vs " + s.name);
        }
        if (d.value.shape() != s.value.shape()) {
            throw std::invalid_argument("share_parameters_with: shape mismatch for " + d.name +
                                        ": " + d.value.shape().str() + " vs " +
                                        s.value.shape().str());
        }
        d.value = Tensor::borrowed(s.value.shape(), s.value.data());
        shared += d.value.size();
    }
    return shared;
}

std::size_t release_gradients(Module& module) {
    std::size_t freed = 0;
    for (Parameter* p : module.parameters()) {
        freed += p->grad.size();
        p->grad = Tensor();
    }
    return freed;
}

std::size_t owned_parameter_floats(Module& module) {
    std::size_t owned = 0;
    for (Parameter* p : module.parameters()) {
        if (p->value.owns_storage()) owned += p->value.size();
    }
    return owned;
}

}  // namespace ams::nn
