#include "nn/module.hpp"

#include <stdexcept>

namespace ams::nn {

void Module::collect_state(const std::string& prefix, TensorMap& out) const {
    for (const Parameter* p : own_parameters()) {
        out[prefix + p->name] = p->value;
    }
}

void Module::load_state(const std::string& prefix, const TensorMap& in) {
    for (Parameter* p : own_parameters()) {
        const auto it = in.find(prefix + p->name);
        if (it == in.end()) {
            throw std::runtime_error("Module::load_state: missing entry " + prefix + p->name);
        }
        if (it->second.shape() != p->value.shape()) {
            throw std::runtime_error("Module::load_state: shape mismatch for " + prefix + p->name +
                                     ": " + it->second.shape().str() + " vs " +
                                     p->value.shape().str());
        }
        p->value = it->second;
        p->grad = Tensor(p->value.shape());
    }
}

void Module::set_frozen(bool frozen) {
    for (Parameter* p : parameters()) p->frozen = frozen;
}

void zero_grads(const std::vector<Parameter*>& params) {
    for (Parameter* p : params) p->zero_grad();
}

std::size_t parameter_count(const std::vector<Parameter*>& params) {
    std::size_t n = 0;
    for (const Parameter* p : params) n += p->value.size();
    return n;
}

}  // namespace ams::nn
