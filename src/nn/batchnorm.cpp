#include "nn/batchnorm.hpp"

#include <cmath>
#include <stdexcept>

#include "runtime/simd.hpp"

namespace ams::nn {

BatchNorm2d::BatchNorm2d(std::size_t channels, float eps, float momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_("gamma", Tensor(Shape{channels}, 1.0f)),
      beta_("beta", Tensor(Shape{channels}, 0.0f)),
      running_mean_(Shape{channels}, 0.0f),
      running_var_(Shape{channels}, 1.0f) {
    if (channels == 0) throw std::invalid_argument("BatchNorm2d: channels must be nonzero");
    if (eps <= 0.0f) throw std::invalid_argument("BatchNorm2d: eps must be positive");
}

Tensor BatchNorm2d::forward(const Tensor& input) {
    if (input.rank() != 4 || input.dim(1) != channels_) {
        throw std::invalid_argument("BatchNorm2d::forward: expected {N, " +
                                    std::to_string(channels_) + ", H, W}, got " +
                                    input.shape().str());
    }
    const std::size_t batch = input.dim(0);
    const std::size_t spatial = input.dim(2) * input.dim(3);
    const std::size_t per_channel = batch * spatial;
    const std::size_t image = channels_ * spatial;

    cached_shape_ = input.shape();
    cached_training_ = training();
    Tensor output(input.shape());

    if (training()) {
        cached_xhat_ = Tensor(input.shape());
        cached_inv_std_.assign(channels_, 0.0f);
        for (std::size_t c = 0; c < channels_; ++c) {
            double sum = 0.0, sq = 0.0;
            for (std::size_t b = 0; b < batch; ++b) {
                const float* chan = input.data() + b * image + c * spatial;
                for (std::size_t i = 0; i < spatial; ++i) {
                    sum += chan[i];
                    sq += static_cast<double>(chan[i]) * chan[i];
                }
            }
            const double mean = sum / static_cast<double>(per_channel);
            const double var = sq / static_cast<double>(per_channel) - mean * mean;
            const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps_));
            cached_inv_std_[c] = inv_std;

            running_mean_[c] = (1.0f - momentum_) * running_mean_[c] +
                               momentum_ * static_cast<float>(mean);
            running_var_[c] =
                (1.0f - momentum_) * running_var_[c] + momentum_ * static_cast<float>(var);

            const float g = gamma_.value[c];
            const float bt = beta_.value[c];
            const float fmean = static_cast<float>(mean);
            for (std::size_t b = 0; b < batch; ++b) {
                const float* chan = input.data() + b * image + c * spatial;
                float* xhat = cached_xhat_.data() + b * image + c * spatial;
                float* out = output.data() + b * image + c * spatial;
                for (std::size_t i = 0; i < spatial; ++i) {
                    const float xh = (chan[i] - fmean) * inv_std;
                    xhat[i] = xh;
                    out[i] = g * xh + bt;
                }
            }
        }
    } else {
        eval_normalize(input, output.data());
    }
    return output;
}

void BatchNorm2d::eval_normalize(const Tensor& input, float* out_base) const {
    normalize_eval(input.data(), out_base, input.dim(0), input.dim(2) * input.dim(3));
}

void BatchNorm2d::normalize_eval(const float* in, float* out, std::size_t batch,
                                 std::size_t spatial) const {
    const std::size_t image = channels_ * spatial;
    for (std::size_t c = 0; c < channels_; ++c) {
        const float inv_std = 1.0f / std::sqrt(running_var_[c] + eps_);
        const float g = gamma_.value[c];
        const float bt = beta_.value[c];
        const float mean = running_mean_[c];
        for (std::size_t b = 0; b < batch; ++b) {
            simd::bn_normalize(in + b * image + c * spatial, out + b * image + c * spatial,
                               spatial, mean, inv_std, g, bt);
        }
    }
}

Shape BatchNorm2d::plan(const Shape& in, runtime::EvalContext& ctx) {
    (void)ctx;  // elementwise over channels: no scratch
    if (in.rank() != 4 || in.dim(1) != channels_) {
        throw std::invalid_argument("BatchNorm2d::plan: expected {N, " +
                                    std::to_string(channels_) + ", H, W}, got " + in.str());
    }
    return in;
}

Tensor BatchNorm2d::forward(const Tensor& input, runtime::EvalContext& ctx) {
    if (training()) return forward(input);  // batch stats + caches for backward
    if (input.rank() != 4 || input.dim(1) != channels_) {
        throw std::invalid_argument("BatchNorm2d::forward: expected {N, " +
                                    std::to_string(channels_) + ", H, W}, got " +
                                    input.shape().str());
    }
    Tensor output = arena_output(ctx, input.shape());
    eval_normalize(input, output.data());
    return output;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
    if (grad_output.shape() != cached_shape_) {
        throw std::invalid_argument("BatchNorm2d::backward: grad shape " +
                                    grad_output.shape().str() + " != cached " +
                                    cached_shape_.str());
    }
    const std::size_t batch = cached_shape_.dim(0);
    const std::size_t spatial = cached_shape_.dim(2) * cached_shape_.dim(3);
    const std::size_t per_channel = batch * spatial;
    const std::size_t image = channels_ * spatial;
    Tensor grad_input(cached_shape_);

    if (!cached_training_) {
        // Eval-mode backward: y = g*(x - m)*inv_std + b with constant stats.
        for (std::size_t c = 0; c < channels_; ++c) {
            const float scale = gamma_.value[c] / std::sqrt(running_var_[c] + eps_);
            for (std::size_t b = 0; b < batch; ++b) {
                const float* g = grad_output.data() + b * image + c * spatial;
                float* gi = grad_input.data() + b * image + c * spatial;
                for (std::size_t i = 0; i < spatial; ++i) gi[i] = g[i] * scale;
            }
        }
        return grad_input;
    }

    for (std::size_t c = 0; c < channels_; ++c) {
        // Accumulate dBeta = sum(dy), dGamma = sum(dy * xhat).
        double sum_dy = 0.0, sum_dy_xhat = 0.0;
        for (std::size_t b = 0; b < batch; ++b) {
            const float* g = grad_output.data() + b * image + c * spatial;
            const float* xh = cached_xhat_.data() + b * image + c * spatial;
            for (std::size_t i = 0; i < spatial; ++i) {
                sum_dy += g[i];
                sum_dy_xhat += static_cast<double>(g[i]) * xh[i];
            }
        }
        beta_.grad[c] += static_cast<float>(sum_dy);
        gamma_.grad[c] += static_cast<float>(sum_dy_xhat);

        // dx = (gamma * inv_std) * (dy - mean(dy) - xhat * mean(dy*xhat))
        const float scale = gamma_.value[c] * cached_inv_std_[c];
        const float mean_dy = static_cast<float>(sum_dy / static_cast<double>(per_channel));
        const float mean_dy_xhat =
            static_cast<float>(sum_dy_xhat / static_cast<double>(per_channel));
        for (std::size_t b = 0; b < batch; ++b) {
            const float* g = grad_output.data() + b * image + c * spatial;
            const float* xh = cached_xhat_.data() + b * image + c * spatial;
            float* gi = grad_input.data() + b * image + c * spatial;
            for (std::size_t i = 0; i < spatial; ++i) {
                gi[i] = scale * (g[i] - mean_dy - xh[i] * mean_dy_xhat);
            }
        }
    }
    return grad_input;
}

std::vector<Parameter*> BatchNorm2d::parameters() {
    return {&gamma_, &beta_};
}

std::vector<const Parameter*> BatchNorm2d::own_parameters() const {
    return {&gamma_, &beta_};
}

std::vector<Parameter*> BatchNorm2d::own_parameters() {
    return {&gamma_, &beta_};
}

void BatchNorm2d::collect_state(const std::string& prefix, TensorMap& out) const {
    Module::collect_state(prefix, out);
    out[prefix + "running_mean"] = running_mean_;
    out[prefix + "running_var"] = running_var_;
}

void BatchNorm2d::load_state(const std::string& prefix, const TensorMap& in) {
    Module::load_state(prefix, in);
    const auto mean_it = in.find(prefix + "running_mean");
    const auto var_it = in.find(prefix + "running_var");
    if (mean_it == in.end() || var_it == in.end()) {
        throw std::runtime_error("BatchNorm2d::load_state: missing running stats at " + prefix);
    }
    if (mean_it->second.shape() != running_mean_.shape() ||
        var_it->second.shape() != running_var_.shape()) {
        throw std::runtime_error("BatchNorm2d::load_state: running stat shape mismatch at " +
                                 prefix);
    }
    running_mean_ = mean_it->second;
    running_var_ = var_it->second;
}

}  // namespace ams::nn
