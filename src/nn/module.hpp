// Module: the base abstraction for differentiable network layers.
//
// amsnet uses module-level backpropagation (as opposed to a taped autograd
// graph): every Module caches whatever it needs during forward() and
// produces the input gradient in backward(), accumulating parameter
// gradients as a side effect. This mirrors how Distiller-wrapped PyTorch
// layers behave from the error-injection point of view, and keeps the
// framework small and auditable.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "runtime/eval_context.hpp"
#include "tensor/serialize.hpp"
#include "tensor/tensor.hpp"

namespace ams::nn {

/// A trainable tensor with its gradient accumulator.
///
/// `frozen` implements the paper's selective-freezing study (Table 2):
/// a frozen parameter still participates in forward/backward (gradients
/// flow *through* its layer) but the optimizer does not update it.
struct Parameter {
    std::string name;
    Tensor value;
    Tensor grad;
    bool frozen = false;

    Parameter() = default;
    Parameter(std::string n, Tensor v)
        : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

    void zero_grad() { grad.zero(); }
};

/// Base class for all layers.
class Module {
public:
    Module() = default;
    Module(const Module&) = delete;
    Module& operator=(const Module&) = delete;
    virtual ~Module() = default;

    /// Computes the layer output, caching state needed by backward().
    virtual Tensor forward(const Tensor& input) = 0;

    /// Plan-then-execute entry point: computes the output shape for an
    /// input of shape `in` and reserves this layer's scratch in `ctx` so
    /// the subsequent ctx-forward passes are allocation-free. Containers
    /// propagate planning through their children. The default is the
    /// shape-preserving no-op (correct for elementwise layers).
    virtual Shape plan(const Shape& in, runtime::EvalContext& ctx) {
        (void)ctx;
        return in;
    }

    /// Arena-aware forward: writes the output into `ctx`'s activation
    /// arena (a borrowed Tensor) instead of heap-allocating it. Migrated
    /// modules override this for eval mode; the default — and every
    /// module in training mode — falls back to the allocating forward,
    /// so the refactor lands incrementally and numerics never change.
    virtual Tensor forward(const Tensor& input, runtime::EvalContext& ctx) {
        (void)ctx;
        return forward(input);
    }

    /// Given dL/d(output), accumulates parameter gradients and returns
    /// dL/d(input). Must be called after forward() on the same input.
    virtual Tensor backward(const Tensor& grad_output) = 0;

    /// All trainable parameters of this module (recursively for containers).
    virtual std::vector<Parameter*> parameters() { return {}; }

    /// Switches between training and evaluation behaviour (e.g. batch norm
    /// batch statistics vs running statistics). Default: stateless.
    virtual void set_training(bool training) { training_ = training; }
    [[nodiscard]] bool training() const { return training_; }

    /// Short human-readable layer kind, e.g. "Conv2d".
    [[nodiscard]] virtual std::string name() const = 0;

    /// Serializes parameters and persistent buffers under `prefix`.
    virtual void collect_state(const std::string& prefix, TensorMap& out) const;

    /// Restores state written by collect_state. Throws std::runtime_error
    /// if a required entry is missing or has the wrong shape.
    virtual void load_state(const std::string& prefix, const TensorMap& in);

    /// Freezes / unfreezes every parameter of this module.
    void set_frozen(bool frozen);

protected:
    /// Non-virtual parameter access used by the default state (de)serializers.
    /// Containers override collect_state/load_state instead.
    virtual std::vector<const Parameter*> own_parameters() const { return {}; }
    virtual std::vector<Parameter*> own_parameters() { return {}; }

private:
    bool training_ = true;
};

/// Borrowed output tensor over `shape.numel()` floats bump-allocated from
/// the context's activation arena. Valid until the caller's next rewind.
[[nodiscard]] inline Tensor arena_output(runtime::EvalContext& ctx, const Shape& shape) {
    return Tensor::borrowed(shape, ctx.alloc_activation(shape.numel()));
}

/// Convenience: zero the gradients of a parameter set.
void zero_grads(const std::vector<Parameter*>& params);

/// Total number of scalar weights in a parameter set.
[[nodiscard]] std::size_t parameter_count(const std::vector<Parameter*>& params);

}  // namespace ams::nn
