// Module: the base abstraction for differentiable network layers.
//
// amsnet uses module-level backpropagation (as opposed to a taped autograd
// graph): every Module caches whatever it needs during forward() and
// produces the input gradient in backward(), accumulating parameter
// gradients as a side effect. This mirrors how Distiller-wrapped PyTorch
// layers behave from the error-injection point of view, and keeps the
// framework small and auditable.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "runtime/eval_context.hpp"
#include "tensor/serialize.hpp"
#include "tensor/tensor.hpp"

namespace ams::nn {

/// A trainable tensor with its gradient accumulator.
///
/// `frozen` implements the paper's selective-freezing study (Table 2):
/// a frozen parameter still participates in forward/backward (gradients
/// flow *through* its layer) but the optimizer does not update it.
struct Parameter {
    std::string name;
    Tensor value;
    Tensor grad;
    bool frozen = false;

    Parameter() = default;
    Parameter(std::string n, Tensor v)
        : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

    void zero_grad() { grad.zero(); }
};

/// Base class for all layers.
class Module {
public:
    Module() = default;
    Module(const Module&) = delete;
    Module& operator=(const Module&) = delete;
    virtual ~Module() = default;

    /// Computes the layer output, caching state needed by backward().
    virtual Tensor forward(const Tensor& input) = 0;

    /// Plan-then-execute entry point: computes the output shape for an
    /// input of shape `in` and reserves this layer's scratch in `ctx` so
    /// the subsequent ctx-forward passes are allocation-free. Containers
    /// propagate planning through their children. The default is the
    /// shape-preserving no-op (correct for elementwise layers).
    virtual Shape plan(const Shape& in, runtime::EvalContext& ctx) {
        (void)ctx;
        return in;
    }

    /// Arena-aware forward: writes the output into `ctx`'s activation
    /// arena (a borrowed Tensor) instead of heap-allocating it. Migrated
    /// modules override this for eval mode; the default — and every
    /// module in training mode — falls back to the allocating forward,
    /// so the refactor lands incrementally and numerics never change.
    virtual Tensor forward(const Tensor& input, runtime::EvalContext& ctx) {
        (void)ctx;
        return forward(input);
    }

    /// Given dL/d(output), accumulates parameter gradients and returns
    /// dL/d(input). Must be called after forward() on the same input.
    virtual Tensor backward(const Tensor& grad_output) = 0;

    /// All trainable parameters of this module (recursively for containers).
    virtual std::vector<Parameter*> parameters() { return {}; }

    /// Switches between training and evaluation behaviour (e.g. batch norm
    /// batch statistics vs running statistics). Default: stateless.
    virtual void set_training(bool training) { training_ = training; }
    [[nodiscard]] bool training() const { return training_; }

    /// Short human-readable layer kind, e.g. "Conv2d".
    [[nodiscard]] virtual std::string name() const = 0;

    /// Serializes parameters and persistent buffers under `prefix`.
    virtual void collect_state(const std::string& prefix, TensorMap& out) const;

    /// Restores state written by collect_state. Throws std::runtime_error
    /// if a required entry is missing or has the wrong shape.
    virtual void load_state(const std::string& prefix, const TensorMap& in);

    /// Freezes / unfreezes every parameter of this module.
    void set_frozen(bool frozen);

protected:
    /// Non-virtual parameter access used by the default state (de)serializers.
    /// Containers override collect_state/load_state instead.
    virtual std::vector<const Parameter*> own_parameters() const { return {}; }
    virtual std::vector<Parameter*> own_parameters() { return {}; }

private:
    bool training_ = true;
};

/// Borrowed output tensor over `shape.numel()` floats bump-allocated from
/// the context's activation arena. Valid until the caller's next rewind.
[[nodiscard]] inline Tensor arena_output(runtime::EvalContext& ctx, const Shape& shape) {
    return Tensor::borrowed(shape, ctx.alloc_activation(shape.numel()));
}

/// Convenience: zero the gradients of a parameter set.
void zero_grads(const std::vector<Parameter*>& params);

/// Total number of scalar weights in a parameter set.
[[nodiscard]] std::size_t parameter_count(const std::vector<Parameter*>& params);

// ----- weight sharing for evaluation replicas (instance pools) -----
//
// A serving instance pool wants N copies of one model that differ only in
// their *mutable* per-forward state (noise stream epochs, backend
// residue, BN batch caches) while the large immutable weight tensors are
// held once. share_parameters_with rebinds every parameter of `dst` to a
// borrowed view over the matching parameter of `src`: after the call the
// replica owns no weight storage of its own (its previous deep copies
// are freed), so each added instance costs only its small buffers and
// arenas. The borrow follows Tensor::borrowed semantics — `src` must
// outlive `dst`, and `src`'s parameters must not reallocate (training or
// load_state on the primary while replicas exist is undefined).

/// Rebinds every parameter value of `dst` to borrow the storage of the
/// positionally matching parameter of `src`. Both modules must have the
/// same architecture: parameter lists are matched by position and
/// checked by name and shape (std::invalid_argument on any mismatch).
/// Returns the number of floats now shared instead of copied.
std::size_t share_parameters_with(Module& dst, Module& src);

/// Releases the gradient accumulators of every parameter (an eval-only
/// replica never runs backward; keeping the accumulators would double
/// its footprint). Returns the number of floats freed.
std::size_t release_gradients(Module& module);

/// Floats of parameter-value storage `module` actually owns — borrowed
/// (shared) parameters count zero. The per-instance weight cost of a
/// replica, proven ~0 by tests/replica_test.cpp.
[[nodiscard]] std::size_t owned_parameter_floats(Module& module);

}  // namespace ams::nn
