#include "nn/conv_eval.hpp"

#include "runtime/parallel_for.hpp"
#include "runtime/trace.hpp"
#include "tensor/gemm.hpp"
#include "tensor/gemm_kernels.hpp"

namespace ams::nn {

void conv_eval_reserve(runtime::EvalContext& ctx, const void* scratch_owner, std::size_t batch,
                       std::size_t patch, std::size_t out_spatial) {
    const std::size_t grain = runtime::suggest_grain(batch, 1);
    const std::size_t n_chunks = (batch + grain - 1) / grain;
    for (std::size_t c = 0; c < n_chunks; ++c) {
        const int base = static_cast<int>(4 * c);
        (void)ctx.reserve_scratch(scratch_owner, base + 3, patch * out_spatial);
        (void)ctx.reserve_scratch(scratch_owner, base + GemmPackBuffers::kPackB,
                                  packed_b_floats(patch, out_spatial));
    }
}

void conv_eval_run(const float* input, std::size_t batch, const ConvLowering& low,
                   const float* weight, std::size_t out_channels, float* out,
                   runtime::EvalContext& ctx, const void* scratch_owner, ConvEpilogueFn epilogue,
                   void* epilogue_ctx) {
    runtime::trace::Span span("Conv2d.forward");
    const std::size_t out_spatial = low.out_spatial();
    const std::size_t patch = low.patch_size();
    const std::size_t out_image = out_channels * out_spatial;

    // Reservations run serially before the region (re-planning on a shape
    // change, e.g. the last partial batch); inside the region
    // reserve_scratch is a pure lookup, safe from concurrent chunks.
    conv_eval_reserve(ctx, scratch_owner, batch, patch, out_spatial);
    const std::size_t grain = runtime::suggest_grain(batch, 1);
    runtime::parallel_for(0, batch, grain, [&](std::size_t b_begin, std::size_t b_end) {
        const int base = static_cast<int>(4 * (b_begin / grain));
        float* columns = ctx.reserve_scratch(scratch_owner, base + 3, patch * out_spatial);
        EvalContextPackBuffers pack(ctx, scratch_owner, base);
        for (std::size_t b = b_begin; b < b_end; ++b) {
            low.lower_image(input, b, columns);
            gemm(weight, columns, out + b * out_image, out_channels, patch, out_spatial, &pack);
            if (epilogue) epilogue(epilogue_ctx, out + b * out_image, b);
        }
    });
}

}  // namespace ams::nn
