// BatchNorm2d: per-channel batch normalization over NCHW tensors.
//
// Batch normalization is central to this paper: Section 3 shows that the
// accuracy recovered by retraining with AMS error in the loop is almost
// entirely attributable to the batch norm layers learning to push
// activation means away from zero (Fig. 6, Table 2).
#pragma once

#include "nn/module.hpp"

namespace ams::nn {

/// Per-channel batch normalization.
///
/// Training mode uses batch statistics and maintains exponential running
/// averages; evaluation mode uses the running statistics. Scale (gamma)
/// and shift (beta) are trainable parameters; per the paper they are kept
/// in full precision (they fold into the conv / digital bias add).
class BatchNorm2d : public Module {
public:
    /// Throws std::invalid_argument if channels == 0 or eps <= 0.
    explicit BatchNorm2d(std::size_t channels, float eps = 1e-5f, float momentum = 0.1f);

    Tensor forward(const Tensor& input) override;
    Shape plan(const Shape& in, runtime::EvalContext& ctx) override;
    Tensor forward(const Tensor& input, runtime::EvalContext& ctx) override;
    Tensor backward(const Tensor& grad_output) override;
    std::vector<Parameter*> parameters() override;
    [[nodiscard]] std::string name() const override { return "BatchNorm2d"; }

    void collect_state(const std::string& prefix, TensorMap& out) const override;
    void load_state(const std::string& prefix, const TensorMap& in) override;

    [[nodiscard]] std::size_t channels() const { return channels_; }
    [[nodiscard]] float eps() const { return eps_; }
    [[nodiscard]] Parameter& gamma() { return gamma_; }
    [[nodiscard]] Parameter& beta() { return beta_; }
    [[nodiscard]] const Tensor& running_mean() const { return running_mean_; }
    [[nodiscard]] const Tensor& running_var() const { return running_var_; }

    /// Raw-pointer eval-mode normalization over `batch` NCHW images of
    /// `channels() x spatial` each: out = gamma*(x-mean)*inv_std + beta
    /// from the running statistics. `in == out` is allowed (the SIMD
    /// primitive is elementwise). This is the hook the compiled-plan
    /// executor shares with forward(input, ctx): per-channel arithmetic is
    /// identical for any batch split, so applying it per image inside a
    /// fused GEMM tail stays bit-identical to the whole-tensor call.
    void normalize_eval(const float* in, float* out, std::size_t batch,
                        std::size_t spatial) const;

protected:
    std::vector<const Parameter*> own_parameters() const override;
    std::vector<Parameter*> own_parameters() override;

private:
    std::size_t channels_;
    float eps_;
    float momentum_;
    Parameter gamma_;
    Parameter beta_;
    Tensor running_mean_;
    Tensor running_var_;

    // Forward cache (training mode)
    Tensor cached_xhat_;
    std::vector<float> cached_inv_std_;
    Shape cached_shape_;
    bool cached_training_ = true;

    /// Shared eval-mode normalization: writes g*(x-m)*inv_std + b per
    /// channel from the running statistics into `out`.
    void eval_normalize(const Tensor& input, float* out) const;
};

}  // namespace ams::nn
