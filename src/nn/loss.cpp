#include "nn/loss.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "runtime/parallel_for.hpp"

namespace ams::nn {

float SoftmaxCrossEntropy::forward(const Tensor& logits,
                                   const std::vector<std::size_t>& labels) {
    if (logits.rank() != 2) {
        throw std::invalid_argument("SoftmaxCrossEntropy: expected {N, classes}, got " +
                                    logits.shape().str());
    }
    const std::size_t n = logits.dim(0), classes = logits.dim(1);
    if (labels.size() != n) {
        throw std::invalid_argument("SoftmaxCrossEntropy: label count " +
                                    std::to_string(labels.size()) + " != batch " +
                                    std::to_string(n));
    }
    probs_ = Tensor(logits.shape());
    labels_ = labels;
    double total = 0.0;
    for (std::size_t b = 0; b < n; ++b) {
        if (labels[b] >= classes) {
            throw std::invalid_argument("SoftmaxCrossEntropy: label out of range");
        }
        const float* row = logits.data() + b * classes;
        float* prow = probs_.data() + b * classes;
        const float mx = *std::max_element(row, row + classes);
        double denom = 0.0;
        for (std::size_t c = 0; c < classes; ++c) {
            const double e = std::exp(static_cast<double>(row[c] - mx));
            prow[c] = static_cast<float>(e);
            denom += e;
        }
        const double inv = 1.0 / denom;
        for (std::size_t c = 0; c < classes; ++c) prow[c] = static_cast<float>(prow[c] * inv);
        // -log p[label]; clamp to avoid -inf on underflow.
        total -= std::log(std::max(static_cast<double>(prow[labels[b]]), 1e-30));
    }
    return static_cast<float>(total / static_cast<double>(n));
}

Tensor SoftmaxCrossEntropy::backward() const {
    if (probs_.empty()) throw std::logic_error("SoftmaxCrossEntropy::backward before forward");
    const std::size_t n = probs_.dim(0), classes = probs_.dim(1);
    Tensor grad = probs_;
    const float inv_n = 1.0f / static_cast<float>(n);
    for (std::size_t b = 0; b < n; ++b) {
        grad[b * classes + labels_[b]] -= 1.0f;
    }
    grad *= inv_n;
    return grad;
}

double top1_accuracy(const Tensor& logits, const std::vector<std::size_t>& labels) {
    return topk_accuracy(logits, labels, 1);
}

double topk_accuracy(const Tensor& logits, const std::vector<std::size_t>& labels,
                     std::size_t k) {
    if (logits.rank() != 2 || logits.dim(0) != labels.size()) {
        throw std::invalid_argument("topk_accuracy: shape/label mismatch");
    }
    if (k == 0) throw std::invalid_argument("topk_accuracy: k must be > 0");
    const std::size_t n = logits.dim(0), classes = logits.dim(1);
    // Rows score independently; the integer hit count is order-invariant,
    // so the parallel reduction is exact at any thread count.
    std::atomic<std::size_t> hits{0};
    runtime::parallel_for(
        0, n, runtime::suggest_grain(n, 64),
        [&](std::size_t b_begin, std::size_t b_end) {
            std::size_t local_hits = 0;
            for (std::size_t b = b_begin; b < b_end; ++b) {
                const float* row = logits.data() + b * classes;
                const float label_score = row[labels[b]];
                // Count strictly-greater entries; label is in the top-k if
                // fewer than k entries beat it.
                std::size_t greater = 0;
                for (std::size_t c = 0; c < classes; ++c) {
                    if (row[c] > label_score) ++greater;
                }
                if (greater < k) ++local_hits;
            }
            hits.fetch_add(local_hits, std::memory_order_relaxed);
        });
    return static_cast<double>(hits.load()) / static_cast<double>(n);
}

}  // namespace ams::nn
