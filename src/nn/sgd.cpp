#include "nn/sgd.hpp"

#include <stdexcept>

namespace ams::nn {

Sgd::Sgd(std::vector<Parameter*> params, const SgdOptions& opts)
    : params_(std::move(params)), opts_(opts) {
    if (opts.lr <= 0.0f) throw std::invalid_argument("Sgd: lr must be positive");
    if (opts.momentum < 0.0f) throw std::invalid_argument("Sgd: momentum must be >= 0");
    velocity_.reserve(params_.size());
    for (const Parameter* p : params_) {
        if (p == nullptr) throw std::invalid_argument("Sgd: null parameter");
        velocity_.emplace_back(p->value.shape());
    }
}

void Sgd::step() {
    for (std::size_t i = 0; i < params_.size(); ++i) {
        Parameter& p = *params_[i];
        if (p.frozen) continue;
        Tensor& v = velocity_[i];
        for (std::size_t j = 0; j < p.value.size(); ++j) {
            const float g = p.grad[j] + opts_.weight_decay * p.value[j];
            v[j] = opts_.momentum * v[j] + g;
            p.value[j] -= opts_.lr * v[j];
        }
    }
}

void Sgd::zero_grad() {
    for (Parameter* p : params_) p->zero_grad();
}

void Sgd::set_lr(float lr) {
    if (lr <= 0.0f) throw std::invalid_argument("Sgd::set_lr: lr must be positive");
    opts_.lr = lr;
}

}  // namespace ams::nn
