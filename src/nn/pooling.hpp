// Spatial pooling layers over NCHW tensors.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace ams::nn {

/// Max pooling with square window and stride.
class MaxPool2d : public Module {
public:
    /// Throws std::invalid_argument if window or stride is zero.
    explicit MaxPool2d(std::size_t window, std::size_t stride = 0, std::size_t padding = 0);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] std::string name() const override { return "MaxPool2d"; }

private:
    std::size_t window_;
    std::size_t stride_;
    std::size_t padding_;
    Shape input_shape_{std::vector<std::size_t>{}};
    Shape output_shape_{std::vector<std::size_t>{}};
    std::vector<std::size_t> argmax_;  ///< flat input index of each output max
};

/// Global average pooling: {N,C,H,W} -> {N,C}.
class GlobalAvgPool : public Module {
public:
    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] std::string name() const override { return "GlobalAvgPool"; }

private:
    Shape input_shape_{std::vector<std::size_t>{}};
};

}  // namespace ams::nn
