// Spatial pooling layers over NCHW tensors.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace ams::nn {

/// Max pooling with square window and stride.
class MaxPool2d : public Module {
public:
    /// Throws std::invalid_argument if window or stride is zero.
    explicit MaxPool2d(std::size_t window, std::size_t stride = 0, std::size_t padding = 0);

    Tensor forward(const Tensor& input) override;
    Shape plan(const Shape& in, runtime::EvalContext& ctx) override;
    Tensor forward(const Tensor& input, runtime::EvalContext& ctx) override;
    Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] std::string name() const override { return "MaxPool2d"; }

    /// Output shape for `in`; throws on bad rank / window vs input size.
    [[nodiscard]] Shape out_shape(const Shape& in) const;

    /// Eval-only pooling into a caller-provided buffer (no argmax record,
    /// no module state touched). The compiled-plan executor's hook; the
    /// loop is the same one forward(input, ctx) runs.
    void pool_eval(const Tensor& input, float* out) const { pool(input, out, nullptr); }

private:
    /// The pooling loop; writes into `out` and, when `argmax` is nonnull,
    /// records the flat input index of each max for backward.
    void pool(const Tensor& input, float* out, std::size_t* argmax) const;

    std::size_t window_;
    std::size_t stride_;
    std::size_t padding_;
    Shape input_shape_;
    Shape output_shape_;
    std::vector<std::size_t> argmax_;  ///< flat input index of each output max
};

/// Global average pooling: {N,C,H,W} -> {N,C}.
class GlobalAvgPool : public Module {
public:
    Tensor forward(const Tensor& input) override;
    Shape plan(const Shape& in, runtime::EvalContext& ctx) override;
    Tensor forward(const Tensor& input, runtime::EvalContext& ctx) override;
    Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] std::string name() const override { return "GlobalAvgPool"; }

    /// The {N,C,H,W} -> {N,C} mean reduction both eval paths share
    /// (serial, double accumulator per channel).
    static void reduce(const Tensor& input, float* out);

private:
    Shape input_shape_;
};

}  // namespace ams::nn
