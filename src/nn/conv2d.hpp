// Conv2d: 2-D convolution over NCHW tensors via im2col + GEMM.
#pragma once

#include <cstddef>
#include <optional>

#include "nn/module.hpp"
#include "tensor/im2col.hpp"

namespace ams::nn {

/// Configuration for a Conv2d layer.
struct Conv2dOptions {
    std::size_t in_channels = 0;
    std::size_t out_channels = 0;
    std::size_t kernel = 3;   ///< square kernel size
    std::size_t stride = 1;
    std::size_t padding = 0;
    bool bias = false;        ///< ResNet convs carry no bias (BN follows)
};

/// 2-D convolution. Weight layout: {out_channels, in_channels, k, k}.
///
/// The layer optionally supports an externally substituted *effective
/// weight* for the forward pass (see set_effective_weight): the quantized
/// wrapper computes DoReFa-quantized weights from the latent FP32 weights
/// each step and runs the convolution with those, while gradients are
/// routed back to the latent weights through the straight-through
/// estimator. The convolution itself is exact digital arithmetic; AMS
/// error is injected *after* it, per Fig. 3 of the paper.
class Conv2d : public Module {
public:
    /// Throws std::invalid_argument on zero channels / kernel.
    Conv2d(const Conv2dOptions& opts, Rng& rng);

    Tensor forward(const Tensor& input) override;
    Shape plan(const Shape& in, runtime::EvalContext& ctx) override;
    Tensor forward(const Tensor& input, runtime::EvalContext& ctx) override;
    Tensor backward(const Tensor& grad_output) override;
    std::vector<Parameter*> parameters() override;
    [[nodiscard]] std::string name() const override { return "Conv2d"; }

    [[nodiscard]] const Conv2dOptions& options() const { return opts_; }
    [[nodiscard]] Parameter& weight() { return weight_; }
    [[nodiscard]] const Parameter& weight() const { return weight_; }
    [[nodiscard]] Parameter* bias() { return bias_ ? &*bias_ : nullptr; }

    /// Number of multiplications per output activation (the paper's N_tot):
    /// in_channels * kernel * kernel.
    [[nodiscard]] std::size_t n_tot() const {
        return opts_.in_channels * opts_.kernel * opts_.kernel;
    }

    /// Substitutes `w` (same shape as weight) for the next forward pass.
    /// Gradients computed in backward() are accumulated into the latent
    /// weight's grad — this is exactly the straight-through estimator
    /// contract the quantized wrapper needs. Cleared by clear_effective_weight().
    void set_effective_weight(Tensor w);
    void clear_effective_weight() { effective_weight_.reset(); }

protected:
    std::vector<const Parameter*> own_parameters() const override;
    std::vector<Parameter*> own_parameters() override;

private:
    [[nodiscard]] const Tensor& forward_weight() const {
        return effective_weight_ ? *effective_weight_ : weight_.value;
    }

    /// Builds (and validates) the lowering for an input of this spatial
    /// size; throws on rank/channel mismatch.
    [[nodiscard]] ConvLowering make_lowering(const Shape& in) const;

    /// Adds the bias vector to one image's output channels.
    void add_bias(float* out_image_base, std::size_t out_spatial) const;

    Conv2dOptions opts_;
    Parameter weight_;
    std::optional<Parameter> bias_;
    std::optional<Tensor> effective_weight_;

    Tensor cached_input_;     ///< saved by forward() for backward()
    ConvLowering lowering_;   ///< geometry of the last forward

    // Training-path scratch, reused across steps (satellite fix: backward
    // no longer re-runs im2col into fresh buffers). cached_columns_ holds
    // the full-batch column matrices lowered by the training forward.
    std::vector<float> cached_columns_;
    std::size_t cached_columns_batch_ = 0;
    std::vector<float> bwd_grad_columns_;
    std::vector<float> bwd_grad_w_;
};

}  // namespace ams::nn
