// Finite-difference gradient verification utilities (used by the tests).
#pragma once

#include <functional>

#include "nn/module.hpp"

namespace ams::nn {

/// Result of a gradient check: worst relative error over all coordinates.
struct GradCheckResult {
    double max_rel_error = 0.0;
    double max_abs_error = 0.0;
    std::size_t checked = 0;
};

/// Checks d(scalar objective)/d(input) of `module` against central finite
/// differences. The scalar objective is sum(weights * output) for a fixed
/// random weighting, which exercises all output coordinates at once.
///
/// `sample_stride` checks every k-th input coordinate to bound cost.
GradCheckResult check_input_gradient(Module& module, const Tensor& input, Rng& rng,
                                     double epsilon = 1e-3, std::size_t sample_stride = 1);

/// Same, but for every trainable parameter of the module.
GradCheckResult check_parameter_gradients(Module& module, const Tensor& input, Rng& rng,
                                          double epsilon = 1e-3, std::size_t sample_stride = 1);

/// Directional gradient check: compares the analytic directional
/// derivative <grad, d> along one random unit direction d against a
/// central finite difference of the scalar objective. Because the fp32
/// forward-pass noise averages over all coordinates, this is the robust
/// check for deep composite modules (residual blocks, whole networks)
/// where per-coordinate differences drown in rounding error.
/// Returns the relative error.
double directional_gradient_error(Module& module, const Tensor& input, Rng& rng,
                                  double epsilon = 1e-2);

}  // namespace ams::nn
