// Linear: fully-connected layer over {N, in_features} tensors.
#pragma once

#include <optional>

#include "nn/module.hpp"

namespace ams::nn {

/// Fully-connected layer: y = x W^T + b.
/// Weight layout: {out_features, in_features}; bias: {out_features}.
///
/// Supports the same effective-weight substitution mechanism as Conv2d so
/// the DoReFa wrapper can run the forward pass with quantized weights while
/// gradients flow to the latent FP32 weights (straight-through estimator).
class Linear : public Module {
public:
    /// Throws std::invalid_argument on zero feature counts.
    Linear(std::size_t in_features, std::size_t out_features, Rng& rng, bool bias = true);

    Tensor forward(const Tensor& input) override;
    Shape plan(const Shape& in, runtime::EvalContext& ctx) override;
    Tensor forward(const Tensor& input, runtime::EvalContext& ctx) override;
    Tensor backward(const Tensor& grad_output) override;
    std::vector<Parameter*> parameters() override;
    [[nodiscard]] std::string name() const override { return "Linear"; }

    [[nodiscard]] std::size_t in_features() const { return in_features_; }
    [[nodiscard]] std::size_t out_features() const { return out_features_; }
    [[nodiscard]] Parameter& weight() { return weight_; }
    [[nodiscard]] Parameter& bias_param() { return bias_; }

    /// Multiplications per output activation (the paper's N_tot).
    [[nodiscard]] std::size_t n_tot() const { return in_features_; }

    void set_effective_weight(Tensor w);
    void clear_effective_weight() { effective_weight_.reset(); }

protected:
    std::vector<const Parameter*> own_parameters() const override;
    std::vector<Parameter*> own_parameters() override;

private:
    [[nodiscard]] const Tensor& forward_weight() const {
        return effective_weight_ ? *effective_weight_ : weight_.value;
    }

    std::size_t in_features_;
    std::size_t out_features_;
    bool has_bias_;
    Parameter weight_;
    Parameter bias_;
    std::optional<Tensor> effective_weight_;
    Tensor cached_input_;
};

}  // namespace ams::nn
