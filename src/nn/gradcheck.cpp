#include "nn/gradcheck.hpp"

#include <cmath>
#include <stdexcept>

namespace ams::nn {

namespace {

double objective(Module& module, const Tensor& input, const Tensor& weights) {
    Tensor out = module.forward(input);
    check_same_shape(out, weights, "gradcheck objective");
    double acc = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
        acc += static_cast<double>(out[i]) * weights[i];
    }
    return acc;
}

void update_result(GradCheckResult& r, double analytic, double numeric) {
    const double abs_err = std::fabs(analytic - numeric);
    const double scale = std::max({std::fabs(analytic), std::fabs(numeric), 1e-4});
    r.max_abs_error = std::max(r.max_abs_error, abs_err);
    r.max_rel_error = std::max(r.max_rel_error, abs_err / scale);
    ++r.checked;
}

}  // namespace

GradCheckResult check_input_gradient(Module& module, const Tensor& input, Rng& rng,
                                     double epsilon, std::size_t sample_stride) {
    if (sample_stride == 0) throw std::invalid_argument("gradcheck: stride must be > 0");
    // Analytic pass: forward once to learn the output shape, weight the
    // output, then backward.
    Tensor probe = module.forward(input);
    Tensor weights(probe.shape());
    weights.fill_uniform(rng, -1.0f, 1.0f);
    zero_grads(module.parameters());
    module.forward(input);
    Tensor analytic = module.backward(weights);

    GradCheckResult result;
    Tensor perturbed = input;
    for (std::size_t i = 0; i < input.size(); i += sample_stride) {
        const float orig = perturbed[i];
        perturbed[i] = orig + static_cast<float>(epsilon);
        const double plus = objective(module, perturbed, weights);
        perturbed[i] = orig - static_cast<float>(epsilon);
        const double minus = objective(module, perturbed, weights);
        perturbed[i] = orig;
        update_result(result, analytic[i], (plus - minus) / (2.0 * epsilon));
    }
    return result;
}

GradCheckResult check_parameter_gradients(Module& module, const Tensor& input, Rng& rng,
                                          double epsilon, std::size_t sample_stride) {
    if (sample_stride == 0) throw std::invalid_argument("gradcheck: stride must be > 0");
    Tensor probe = module.forward(input);
    Tensor weights(probe.shape());
    weights.fill_uniform(rng, -1.0f, 1.0f);
    zero_grads(module.parameters());
    module.forward(input);
    module.backward(weights);

    GradCheckResult result;
    for (Parameter* p : module.parameters()) {
        // Copy analytic grads before the finite-difference passes disturb them.
        Tensor analytic = p->grad;
        for (std::size_t i = 0; i < p->value.size(); i += sample_stride) {
            const float orig = p->value[i];
            p->value[i] = orig + static_cast<float>(epsilon);
            const double plus = objective(module, input, weights);
            p->value[i] = orig - static_cast<float>(epsilon);
            const double minus = objective(module, input, weights);
            p->value[i] = orig;
            update_result(result, analytic[i], (plus - minus) / (2.0 * epsilon));
        }
    }
    return result;
}

double directional_gradient_error(Module& module, const Tensor& input, Rng& rng,
                                  double epsilon) {
    Tensor probe = module.forward(input);
    Tensor weights(probe.shape());
    weights.fill_uniform(rng, -1.0f, 1.0f);
    zero_grads(module.parameters());
    module.forward(input);
    Tensor analytic = module.backward(weights);

    // Random unit direction.
    Tensor direction(input.shape());
    direction.fill_normal(rng, 0.0f, 1.0f);
    double norm = 0.0;
    for (std::size_t i = 0; i < direction.size(); ++i) {
        norm += static_cast<double>(direction[i]) * direction[i];
    }
    norm = std::sqrt(norm);
    for (std::size_t i = 0; i < direction.size(); ++i) {
        direction[i] = static_cast<float>(direction[i] / norm);
    }

    double analytic_dd = 0.0;
    for (std::size_t i = 0; i < input.size(); ++i) {
        analytic_dd += static_cast<double>(analytic[i]) * direction[i];
    }

    Tensor plus = input, minus = input;
    for (std::size_t i = 0; i < input.size(); ++i) {
        plus[i] += static_cast<float>(epsilon) * direction[i];
        minus[i] -= static_cast<float>(epsilon) * direction[i];
    }
    const double numeric_dd =
        (objective(module, plus, weights) - objective(module, minus, weights)) /
        (2.0 * epsilon);

    const double scale = std::max({std::fabs(analytic_dd), std::fabs(numeric_dd), 1e-6});
    return std::fabs(analytic_dd - numeric_dd) / scale;
}

}  // namespace ams::nn
