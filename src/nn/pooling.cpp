#include "nn/pooling.hpp"

#include <limits>
#include <stdexcept>

namespace ams::nn {

MaxPool2d::MaxPool2d(std::size_t window, std::size_t stride, std::size_t padding)
    : window_(window), stride_(stride == 0 ? window : stride), padding_(padding) {
    if (window == 0) throw std::invalid_argument("MaxPool2d: window must be nonzero");
}

Shape MaxPool2d::out_shape(const Shape& in) const {
    if (in.rank() != 4) {
        throw std::invalid_argument("MaxPool2d: expected NCHW, got " + in.str());
    }
    const std::size_t h = in.dim(2), w = in.dim(3);
    if (h + 2 * padding_ < window_ || w + 2 * padding_ < window_) {
        throw std::invalid_argument("MaxPool2d: window larger than padded input");
    }
    const std::size_t oh = (h + 2 * padding_ - window_) / stride_ + 1;
    const std::size_t ow = (w + 2 * padding_ - window_) / stride_ + 1;
    return Shape{in.dim(0), in.dim(1), oh, ow};
}

void MaxPool2d::pool(const Tensor& input, float* out, std::size_t* argmax) const {
    const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
    const std::size_t oh = (h + 2 * padding_ - window_) / stride_ + 1;
    const std::size_t ow = (w + 2 * padding_ - window_) / stride_ + 1;
    std::size_t oi = 0;
    for (std::size_t b = 0; b < n; ++b) {
        for (std::size_t ch = 0; ch < c; ++ch) {
            const float* chan = input.data() + (b * c + ch) * h * w;
            const std::size_t chan_base = (b * c + ch) * h * w;
            for (std::size_t oy = 0; oy < oh; ++oy) {
                for (std::size_t ox = 0; ox < ow; ++ox, ++oi) {
                    float best = -std::numeric_limits<float>::infinity();
                    std::size_t best_idx = 0;
                    for (std::size_t ky = 0; ky < window_; ++ky) {
                        const long long iy = static_cast<long long>(oy * stride_ + ky) -
                                             static_cast<long long>(padding_);
                        if (iy < 0 || iy >= static_cast<long long>(h)) continue;
                        for (std::size_t kx = 0; kx < window_; ++kx) {
                            const long long ix = static_cast<long long>(ox * stride_ + kx) -
                                                 static_cast<long long>(padding_);
                            if (ix < 0 || ix >= static_cast<long long>(w)) continue;
                            const std::size_t idx = static_cast<std::size_t>(iy) * w +
                                                    static_cast<std::size_t>(ix);
                            if (chan[idx] > best) {
                                best = chan[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    out[oi] = best;
                    if (argmax != nullptr) argmax[oi] = chan_base + best_idx;
                }
            }
        }
    }
}

Tensor MaxPool2d::forward(const Tensor& input) {
    input_shape_ = input.shape();
    output_shape_ = out_shape(input.shape());
    Tensor out(output_shape_);
    argmax_.assign(out.size(), 0);
    pool(input, out.data(), argmax_.data());
    return out;
}

Shape MaxPool2d::plan(const Shape& in, runtime::EvalContext& ctx) {
    (void)ctx;  // backward is never called on the planned path: no argmax scratch
    return out_shape(in);
}

Tensor MaxPool2d::forward(const Tensor& input, runtime::EvalContext& ctx) {
    if (training()) return forward(input);  // backward needs argmax_
    Tensor out = arena_output(ctx, out_shape(input.shape()));
    pool(input, out.data(), nullptr);
    return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
    if (grad_output.shape() != output_shape_) {
        throw std::invalid_argument("MaxPool2d::backward: grad shape " +
                                    grad_output.shape().str() + " != " + output_shape_.str());
    }
    Tensor grad_input(input_shape_);
    for (std::size_t i = 0; i < grad_output.size(); ++i) {
        grad_input[argmax_[i]] += grad_output[i];
    }
    return grad_input;
}

void GlobalAvgPool::reduce(const Tensor& input, float* out) {
    const std::size_t n = input.dim(0), c = input.dim(1);
    const std::size_t spatial = input.dim(2) * input.dim(3);
    for (std::size_t b = 0; b < n; ++b) {
        for (std::size_t ch = 0; ch < c; ++ch) {
            const float* chan = input.data() + (b * c + ch) * spatial;
            double acc = 0.0;
            for (std::size_t i = 0; i < spatial; ++i) acc += chan[i];
            out[b * c + ch] = static_cast<float>(acc / static_cast<double>(spatial));
        }
    }
}

Tensor GlobalAvgPool::forward(const Tensor& input) {
    if (input.rank() != 4) {
        throw std::invalid_argument("GlobalAvgPool::forward: expected NCHW, got " +
                                    input.shape().str());
    }
    input_shape_ = input.shape();
    Tensor out(Shape{input.dim(0), input.dim(1)});
    reduce(input, out.data());
    return out;
}

Shape GlobalAvgPool::plan(const Shape& in, runtime::EvalContext& ctx) {
    (void)ctx;
    if (in.rank() != 4) {
        throw std::invalid_argument("GlobalAvgPool::plan: expected NCHW, got " + in.str());
    }
    return Shape{in.dim(0), in.dim(1)};
}

Tensor GlobalAvgPool::forward(const Tensor& input, runtime::EvalContext& ctx) {
    if (training()) return forward(input);
    if (input.rank() != 4) {
        throw std::invalid_argument("GlobalAvgPool::forward: expected NCHW, got " +
                                    input.shape().str());
    }
    Tensor out = arena_output(ctx, Shape{input.dim(0), input.dim(1)});
    reduce(input, out.data());
    return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
    const std::size_t n = input_shape_.dim(0), c = input_shape_.dim(1);
    if (grad_output.shape() != Shape{n, c}) {
        throw std::invalid_argument("GlobalAvgPool::backward: grad shape " +
                                    grad_output.shape().str());
    }
    const std::size_t spatial = input_shape_.dim(2) * input_shape_.dim(3);
    const float inv = 1.0f / static_cast<float>(spatial);
    Tensor grad_input(input_shape_);
    for (std::size_t b = 0; b < n; ++b) {
        for (std::size_t ch = 0; ch < c; ++ch) {
            float* chan = grad_input.data() + (b * c + ch) * spatial;
            const float g = grad_output[b * c + ch] * inv;
            for (std::size_t i = 0; i < spatial; ++i) chan[i] = g;
        }
    }
    return grad_input;
}

}  // namespace ams::nn
