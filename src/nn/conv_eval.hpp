// Shared eval-mode convolution executor: im2col + packed GEMM over
// per-chunk EvalContext scratch. One implementation serves
// Conv2d::forward(ctx), the folded-conv path (models/fold.cpp), and the
// compiled-plan executor (src/compile) — callers that pass the same
// scratch owner share buffers and, by construction, bit-identical
// numerics with the module walk.
#pragma once

#include <cstddef>

#include "runtime/eval_context.hpp"
#include "tensor/im2col.hpp"

namespace ams::nn {

/// Per-image epilogue hook for conv_eval_run: invoked inside the batch
/// parallel region, right after the image's GEMM, with the image's output
/// base pointer. Plain function pointer + context (no std::function): the
/// eval hot path must not touch the heap.
using ConvEpilogueFn = void (*)(void* epilogue_ctx, float* out_image, std::size_t image_index);

/// Reserves the per-chunk eval scratch (im2col columns + GEMM pack
/// buffers) for a batch of `batch` images in the context registry, keyed
/// by `scratch_owner`. Slot layout per chunk, base = 4 * chunk: the
/// GemmPackBuffers slots (kPackB = 1, kTranspose = 2) plus the column
/// buffer at base + 3; kPackA deliberately stays thread-local inside the
/// kernels. Serial — call before any parallel region; at steady state
/// every reservation is a pure lookup.
void conv_eval_reserve(runtime::EvalContext& ctx, const void* scratch_owner, std::size_t batch,
                       std::size_t patch, std::size_t out_spatial);

/// Runs one eval-mode convolution: for each image, im2col into the
/// chunk's column scratch, then out (Cout x OHW) = weight (Cout x patch)
/// * columns (patch x OHW) via the packed GEMM, then the optional
/// epilogue. Chunking depends only on (batch, suggest_grain), and the
/// GEMM is row-partition invariant, so results are bit-identical at any
/// thread count. `out` must hold batch * out_channels * out_spatial
/// floats and be disjoint from `input`.
void conv_eval_run(const float* input, std::size_t batch, const ConvLowering& low,
                   const float* weight, std::size_t out_channels, float* out,
                   runtime::EvalContext& ctx, const void* scratch_owner,
                   ConvEpilogueFn epilogue = nullptr, void* epilogue_ctx = nullptr);

}  // namespace ams::nn
