#include "nn/sequential.hpp"

#include <stdexcept>

namespace ams::nn {

Module& Sequential::add(std::unique_ptr<Module> module) {
    if (!module) throw std::invalid_argument("Sequential::add: null module");
    modules_.push_back(std::move(module));
    return *modules_.back();
}

Tensor Sequential::forward(const Tensor& input) {
    Tensor x = input;
    for (auto& m : modules_) x = m->forward(x);
    return x;
}

Shape Sequential::plan(const Shape& in, runtime::EvalContext& ctx) {
    Shape s = in;
    for (auto& m : modules_) s = m->plan(s, ctx);
    return s;
}

Tensor Sequential::forward(const Tensor& input, runtime::EvalContext& ctx) {
    if (modules_.empty()) return forward(input);
    Tensor x = modules_.front()->forward(input, ctx);
    for (std::size_t i = 1; i < modules_.size(); ++i) {
        x = modules_[i]->forward(x, ctx);
    }
    return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
    Tensor g = grad_output;
    for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) g = (*it)->backward(g);
    return g;
}

std::vector<Parameter*> Sequential::parameters() {
    std::vector<Parameter*> out;
    for (auto& m : modules_) {
        auto p = m->parameters();
        out.insert(out.end(), p.begin(), p.end());
    }
    return out;
}

void Sequential::set_training(bool training) {
    Module::set_training(training);
    for (auto& m : modules_) m->set_training(training);
}

void Sequential::collect_state(const std::string& prefix, TensorMap& out) const {
    for (std::size_t i = 0; i < modules_.size(); ++i) {
        modules_[i]->collect_state(prefix + std::to_string(i) + ".", out);
    }
}

void Sequential::load_state(const std::string& prefix, const TensorMap& in) {
    for (std::size_t i = 0; i < modules_.size(); ++i) {
        modules_[i]->load_state(prefix + std::to_string(i) + ".", in);
    }
}

}  // namespace ams::nn
