// Sequential: ordered container of modules.
#pragma once

#include <memory>

#include "nn/module.hpp"

namespace ams::nn {

/// Runs child modules in order on forward, in reverse on backward.
class Sequential : public Module {
public:
    Sequential() = default;

    /// Appends a module; returns a reference to it for fluent building.
    Module& add(std::unique_ptr<Module> module);

    /// Typed emplace convenience: seq.emplace<ReLU>();
    template <typename M, typename... Args>
    M& emplace(Args&&... args) {
        auto mod = std::make_unique<M>(std::forward<Args>(args)...);
        M& ref = *mod;
        add(std::move(mod));
        return ref;
    }

    Tensor forward(const Tensor& input) override;
    Shape plan(const Shape& in, runtime::EvalContext& ctx) override;
    Tensor forward(const Tensor& input, runtime::EvalContext& ctx) override;
    Tensor backward(const Tensor& grad_output) override;
    std::vector<Parameter*> parameters() override;
    void set_training(bool training) override;
    [[nodiscard]] std::string name() const override { return "Sequential"; }

    void collect_state(const std::string& prefix, TensorMap& out) const override;
    void load_state(const std::string& prefix, const TensorMap& in) override;

    [[nodiscard]] std::size_t size() const { return modules_.size(); }
    [[nodiscard]] Module& child(std::size_t i) { return *modules_.at(i); }
    [[nodiscard]] const Module& child(std::size_t i) const { return *modules_.at(i); }

private:
    std::vector<std::unique_ptr<Module>> modules_;
};

}  // namespace ams::nn
