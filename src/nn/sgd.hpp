// SGD optimizer with momentum and weight decay.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace ams::nn {

/// Hyperparameters for SGD. The paper retrains with minibatch 1024 and
/// learning rate 0.004 and no schedule; our defaults are scaled for the
/// synthetic workload but the semantics are identical.
struct SgdOptions {
    float lr = 0.004f;
    float momentum = 0.9f;
    float weight_decay = 0.0f;
};

/// Stochastic gradient descent with classical momentum:
///   v <- momentum * v + (grad + weight_decay * w);  w <- w - lr * v
/// Frozen parameters (Parameter::frozen) are skipped entirely, which is
/// how the selective-freezing study (Table 2) is implemented.
class Sgd {
public:
    /// Keeps non-owning pointers to `params`; they must outlive the optimizer.
    /// Throws std::invalid_argument if lr <= 0 or momentum < 0.
    Sgd(std::vector<Parameter*> params, const SgdOptions& opts);

    /// Applies one update from the accumulated gradients.
    void step();

    /// Zeroes all parameter gradients.
    void zero_grad();

    [[nodiscard]] const SgdOptions& options() const { return opts_; }
    void set_lr(float lr);

private:
    std::vector<Parameter*> params_;
    std::vector<Tensor> velocity_;
    SgdOptions opts_;
};

}  // namespace ams::nn
