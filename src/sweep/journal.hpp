// Per-shard completion journals: the sweep's crash-resume substrate.
//
// Each worker appends one JSON line per completed grid point to its own
// `shard-<i>.jsonl`. A line is written and flushed only after the point
// is fully computed, so on restart the coordinator replays every journal
// in the run directory, treats the union of parsed lines as "done", and
// reissues only the set-difference. A crash mid-write leaves at most one
// truncated trailing line, which replay drops (the point recomputes —
// results are deterministic, so the rewrite is identical).
//
// All doubles are rendered with 17 significant digits so a replayed
// record is bit-identical to the in-process original; the merged report
// is built purely from journal records, which is what makes a resumed
// or multi-process run byte-identical to a single-process one.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "sweep/grid.hpp"

namespace ams::sweep {

/// One journaled grid-point result.
struct PointRecord {
    std::size_t index = 0;   ///< position in enumerate_grid order
    std::size_t shard = 0;   ///< shard that computed it
    std::string point_id;    ///< WorkItem::point_id (consistency check)
    core::ExperimentEnv::EnobSweepPoint point;
};

/// Renders one record as a single JSON line (no trailing newline).
[[nodiscard]] std::string journal_line(const PointRecord& record);

/// Parses a line written by journal_line. Returns false (without
/// throwing) on truncated or malformed input — replay tolerance.
[[nodiscard]] bool parse_journal_line(const std::string& line, PointRecord& out);

/// Append-mode journal writer. Each append() writes one line and
/// flushes, so a completed point survives a SIGKILL immediately after.
class JournalWriter {
public:
    /// Opens `path` in append mode (creating it if absent). Throws
    /// std::runtime_error on failure.
    explicit JournalWriter(const std::string& path);
    ~JournalWriter();
    JournalWriter(const JournalWriter&) = delete;
    JournalWriter& operator=(const JournalWriter&) = delete;

    void append(const PointRecord& record);

    [[nodiscard]] const std::string& path() const { return path_; }

private:
    std::string path_;
    std::FILE* file_ = nullptr;
};

/// Parses every well-formed line of `path` (missing file => empty;
/// truncated/garbled lines are skipped and counted in *dropped).
[[nodiscard]] std::vector<PointRecord> replay_journal(const std::string& path,
                                                      std::size_t* dropped = nullptr);

}  // namespace ams::sweep
