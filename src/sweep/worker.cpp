#include "sweep/worker.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <map>
#include <memory>

#include "core/experiment.hpp"
#include "runtime/eval_context.hpp"
#include "runtime/metrics.hpp"

namespace ams::sweep {

std::string journal_path(const std::string& run_dir, std::size_t shard) {
    return run_dir + "/shard-" + std::to_string(shard) + ".jsonl";
}

std::string items_path(const std::string& run_dir, std::size_t shard) {
    return run_dir + "/shard-" + std::to_string(shard) + ".items";
}

std::string metrics_path(const std::string& run_dir, std::size_t shard) {
    return run_dir + "/shard-" + std::to_string(shard) + ".metrics.json";
}

std::string manifest_path(const std::string& run_dir) {
    return run_dir + "/manifest.txt";
}

void run_items(const SweepGrid& grid, const std::vector<WorkItem>& items, std::size_t shard,
               JournalWriter& journal) {
    // Group by seed so each seed's fp32 -> quantized prerequisite chain
    // is materialized once. Enumeration order is seed-outermost, so the
    // grouping preserves per-seed point order (stable map iteration).
    std::map<std::uint64_t, std::vector<const WorkItem*>> by_seed;
    for (const WorkItem& item : items) {
        by_seed[item.seed].push_back(&item);
    }
    for (const auto& [seed, seed_items] : by_seed) {
        core::ExperimentEnv env(grid.options_for_seed(seed));
        const TensorMap quant = env.quantized_state(grid.bits_w, grid.bits_x);
        // One eval context per seed: arenas warm up on the first point
        // and later points evaluate allocation-free.
        runtime::EvalContext ctx;
        for (const WorkItem* item : seed_items) {
            PointRecord record;
            record.index = item->index;
            record.shard = shard;
            record.point_id = item->point_id;
            record.point = env.compute_enob_point(grid.bits_w, grid.bits_x, item->enob,
                                                  grid.sweep_options(*item), quant, &ctx);
            journal.append(record);
            runtime::metrics::add(runtime::metrics::Counter::kSweepPointsCompleted);
        }
    }
}

int worker_main(const std::string& run_dir, std::size_t shard) {
    try {
        // Workers always keep a counter ledger: the per-shard metrics
        // file is part of the run directory's record. Counter adds never
        // feed back into computed values, so this cannot perturb results.
        if (!runtime::metrics::counters_enabled()) {
            runtime::metrics::set_level(runtime::metrics::Level::kCounters);
        }
        const Manifest manifest = read_manifest(manifest_path(run_dir));
        const std::vector<WorkItem> all = enumerate_grid(manifest.grid);

        std::ifstream in(items_path(run_dir, shard));
        if (!in) {
            std::fprintf(stderr, "[sweep worker %zu] missing %s\n", shard,
                         items_path(run_dir, shard).c_str());
            return 1;
        }
        std::vector<WorkItem> mine;
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty()) continue;
            const std::size_t index = std::stoull(line);
            if (index >= all.size()) {
                std::fprintf(stderr, "[sweep worker %zu] item index %zu out of range\n", shard,
                             index);
                return 1;
            }
            mine.push_back(all[index]);
        }

        JournalWriter journal(journal_path(run_dir, shard));
        run_items(manifest.grid, mine, shard, journal);
        runtime::metrics::write_metrics_file(metrics_path(run_dir, shard));
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "[sweep worker %zu] fatal: %s\n", shard, e.what());
        return 1;
    }
}

int maybe_worker_main(int argc, char** argv) {
    if (argc != 4 || std::strcmp(argv[1], "--amsnet-sweep-worker") != 0) return -1;
    return worker_main(argv[2], static_cast<std::size_t>(std::strtoull(argv[3], nullptr, 10)));
}

}  // namespace ams::sweep
