#include "sweep/grid.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "train/cache_key.hpp"

namespace ams::sweep {

namespace {

std::string join_doubles(const std::vector<double>& values) {
    std::string out;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i != 0) out.push_back(',');
        out += train::exact_double(values[i]);
    }
    return out;
}

template <typename T>
std::string join_ints(const std::vector<T>& values) {
    std::string out;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i != 0) out.push_back(',');
        out += std::to_string(values[i]);
    }
    return out;
}

std::string join_backends(const std::vector<vmac::BackendKind>& kinds) {
    std::string out;
    for (std::size_t i = 0; i < kinds.size(); ++i) {
        if (i != 0) out.push_back(',');
        out += vmac::backend_kind_name(kinds[i]);
    }
    return out;
}

std::vector<std::string> split_list(const std::string& text) {
    std::vector<std::string> out;
    std::string item;
    std::istringstream is(text);
    while (std::getline(is, item, ',')) {
        if (!item.empty()) out.push_back(item);
    }
    return out;
}

// Adds every hash-relevant grid field to `key`. Shared by content_hash()
// and the manifest writer so the two serializations cannot drift.
void add_grid_fields(train::CacheKey& key, const SweepGrid& g) {
    key.add("schema", "amsnet-sweep-grid-v1");
    key.add("bits_w", g.bits_w);
    key.add("bits_x", g.bits_x);
    key.add("backends", join_backends(g.backends));
    key.add("enobs", join_doubles(g.enobs));
    key.add("seeds", join_ints(g.seeds));
    key.add("nmults", join_ints(g.nmults));
    key.add("eval_only", g.eval_only);
    key.add("retrain", g.retrain);
    key.add("backend_ref_chunks", g.backend_ref_chunks);
    key.add("data.classes", g.base.dataset.classes);
    key.add("data.train_per_class", g.base.dataset.train_per_class);
    key.add("data.val_per_class", g.base.dataset.val_per_class);
    key.add("data.image_size", g.base.dataset.image_size);
    key.add("data.channels", g.base.dataset.channels);
    key.add("data.noise_sigma", static_cast<double>(g.base.dataset.noise_sigma));
    key.add("eval_passes", g.base.eval_passes);
    key.add("batch_size", g.base.batch_size);
    const auto schedule = [&key](const std::string& prefix, const train::TrainOptions& t) {
        key.add(prefix + ".epochs", t.epochs);
        key.add(prefix + ".batch_size", t.batch_size);
        key.add(prefix + ".patience", t.patience);
        key.add(prefix + ".grad_bits", t.grad_bits);
        key.add(prefix + ".shuffle_seed", std::uint64_t{t.shuffle_seed});
        key.add(prefix + ".lr", static_cast<double>(t.sgd.lr));
        key.add(prefix + ".momentum", static_cast<double>(t.sgd.momentum));
        key.add(prefix + ".weight_decay", static_cast<double>(t.sgd.weight_decay));
    };
    schedule("fp32_train", g.base.fp32_train);
    schedule("retrain", g.base.retrain);
    // Variability axes are hashed only when in play, so every legacy
    // grid's content hash (and pinned manifest) is preserved verbatim.
    if (g.variation_active()) {
        key.add("chips", join_ints(g.chips));
        key.add("drift_times", join_doubles(g.drift_times));
        key.add("variation.chip_seed", std::uint64_t{g.variation.chip_seed});
        key.add("variation.cell_offset_sigma", g.variation.cell_offset_sigma);
        key.add("variation.drift_nu", g.variation.drift_nu);
        key.add("variation.drift_time", g.variation.drift_time);
        key.add("variation.drift_t0", g.variation.drift_t0);
        key.add("variation.drift_nu_sigma", g.variation.drift_nu_sigma);
        key.add("variation.ir_drop_alpha", g.variation.ir_drop_alpha);
        key.add("variation.ir_drop_ref_cells", g.variation.ir_drop_ref_cells);
    }
}

}  // namespace

std::string SweepGrid::content_hash() const {
    train::CacheKey key;
    add_grid_fields(key, *this);
    return key.hex();
}

void SweepGrid::validate() const {
    if (backends.empty()) throw std::invalid_argument("SweepGrid: no backends");
    if (enobs.empty()) throw std::invalid_argument("SweepGrid: no enobs");
    if (seeds.empty()) throw std::invalid_argument("SweepGrid: no seeds");
    if (nmults.empty()) throw std::invalid_argument("SweepGrid: no nmults");
    if (!eval_only && !retrain) {
        throw std::invalid_argument("SweepGrid: nothing to measure (eval_only and retrain off)");
    }
    variation.validate();
    for (double t : drift_times) {
        if (t < 0.0) throw std::invalid_argument("SweepGrid: negative drift time");
    }
    if (has_drift_times() && variation.drift_nu == 0.0 && variation.drift_nu_sigma == 0.0) {
        throw std::invalid_argument(
            "SweepGrid: drift_times axis needs variation.drift_nu (or nu_sigma) set");
    }
}

core::ExperimentOptions SweepGrid::options_for_seed(std::uint64_t seed) const {
    core::ExperimentOptions o = base;
    o.dataset.seed = seed;
    return o;
}

core::ExperimentEnv::EnobSweepOptions SweepGrid::sweep_options(vmac::BackendKind backend,
                                                               std::size_t nmult) const {
    core::ExperimentEnv::EnobSweepOptions sweep;
    sweep.nmult = nmult;
    sweep.eval_only = eval_only;
    sweep.retrain = retrain;
    sweep.backend.kind = backend;
    sweep.backend_ref_chunks = backend_ref_chunks;
    return sweep;
}

core::ExperimentEnv::EnobSweepOptions SweepGrid::sweep_options(const WorkItem& item) const {
    core::ExperimentEnv::EnobSweepOptions sweep = sweep_options(item.backend, item.nmult);
    if (variation_active()) {
        vmac::DeviceProfile profile = variation;
        profile.chip_seed = item.chip;
        profile.drift_time = item.drift_time;
        sweep.backend.variation = profile;
    }
    return sweep;
}

std::vector<WorkItem> enumerate_grid(const SweepGrid& grid) {
    grid.validate();
    // Absent axes collapse to the variation template's own coordinates,
    // so the loop structure (and legacy ordering) is uniform.
    const std::vector<std::uint64_t> chip_axis =
        grid.has_chips() ? grid.chips
                         : std::vector<std::uint64_t>{grid.variation.chip_seed};
    const std::vector<double> time_axis =
        grid.has_drift_times() ? grid.drift_times
                               : std::vector<double>{grid.variation.drift_time};
    std::vector<WorkItem> items;
    items.reserve(grid.seeds.size() * chip_axis.size() * grid.backends.size() *
                  grid.nmults.size() * grid.enobs.size() * time_axis.size());
    for (std::uint64_t seed : grid.seeds) {
        for (std::uint64_t chip : chip_axis) {
            for (vmac::BackendKind backend : grid.backends) {
                for (std::size_t nmult : grid.nmults) {
                    for (double enob : grid.enobs) {
                        for (double drift_time : time_axis) {
                            WorkItem item;
                            item.index = items.size();
                            item.backend = backend;
                            item.enob = enob;
                            item.seed = seed;
                            item.nmult = nmult;
                            item.chip = chip;
                            item.drift_time = drift_time;
                            item.point_id =
                                std::string(vmac::backend_kind_name(backend)) + ":e" +
                                train::exact_double(enob) + ":s" + std::to_string(seed) +
                                ":n" + std::to_string(nmult);
                            if (grid.has_chips()) {
                                item.point_id += ":c" + std::to_string(chip);
                            }
                            if (grid.has_drift_times()) {
                                item.point_id += ":t" + train::exact_double(drift_time);
                            }
                            items.push_back(std::move(item));
                        }
                    }
                }
            }
        }
    }
    return items;
}

void write_manifest(const std::string& path, const SweepGrid& grid, std::size_t workers) {
    grid.validate();
    std::ostringstream os;
    os << "amsnet-sweep-manifest-v1\n";
    os << "grid_hash " << grid.content_hash() << "\n";
    os << "workers " << workers << "\n";
    os << "bits_w " << grid.bits_w << "\n";
    os << "bits_x " << grid.bits_x << "\n";
    os << "backends " << join_backends(grid.backends) << "\n";
    os << "enobs " << join_doubles(grid.enobs) << "\n";
    os << "seeds " << join_ints(grid.seeds) << "\n";
    os << "nmults " << join_ints(grid.nmults) << "\n";
    os << "eval_only " << (grid.eval_only ? 1 : 0) << "\n";
    os << "retrain " << (grid.retrain ? 1 : 0) << "\n";
    os << "backend_ref_chunks " << grid.backend_ref_chunks << "\n";
    os << "data.classes " << grid.base.dataset.classes << "\n";
    os << "data.train_per_class " << grid.base.dataset.train_per_class << "\n";
    os << "data.val_per_class " << grid.base.dataset.val_per_class << "\n";
    os << "data.image_size " << grid.base.dataset.image_size << "\n";
    os << "data.channels " << grid.base.dataset.channels << "\n";
    os << "data.noise_sigma " << train::exact_double(grid.base.dataset.noise_sigma) << "\n";
    os << "eval_passes " << grid.base.eval_passes << "\n";
    os << "batch_size " << grid.base.batch_size << "\n";
    const auto schedule = [&os](const char* prefix, const train::TrainOptions& t) {
        os << prefix << ".epochs " << t.epochs << "\n";
        os << prefix << ".batch_size " << t.batch_size << "\n";
        os << prefix << ".patience " << t.patience << "\n";
        os << prefix << ".grad_bits " << t.grad_bits << "\n";
        os << prefix << ".shuffle_seed " << t.shuffle_seed << "\n";
        os << prefix << ".lr " << train::exact_double(t.sgd.lr) << "\n";
        os << prefix << ".momentum " << train::exact_double(t.sgd.momentum) << "\n";
        os << prefix << ".weight_decay " << train::exact_double(t.sgd.weight_decay) << "\n";
    };
    schedule("fp32_train", grid.base.fp32_train);
    schedule("retrain", grid.base.retrain);
    // Same gate as add_grid_fields: legacy manifests stay byte-identical,
    // and the reader keys the whole block on variation.chip_seed.
    if (grid.variation_active()) {
        os << "chips " << join_ints(grid.chips) << "\n";
        os << "drift_times " << join_doubles(grid.drift_times) << "\n";
        os << "variation.chip_seed " << grid.variation.chip_seed << "\n";
        os << "variation.cell_offset_sigma "
           << train::exact_double(grid.variation.cell_offset_sigma) << "\n";
        os << "variation.drift_nu " << train::exact_double(grid.variation.drift_nu) << "\n";
        os << "variation.drift_time " << train::exact_double(grid.variation.drift_time)
           << "\n";
        os << "variation.drift_t0 " << train::exact_double(grid.variation.drift_t0) << "\n";
        os << "variation.drift_nu_sigma "
           << train::exact_double(grid.variation.drift_nu_sigma) << "\n";
        os << "variation.ir_drop_alpha "
           << train::exact_double(grid.variation.ir_drop_alpha) << "\n";
        os << "variation.ir_drop_ref_cells " << grid.variation.ir_drop_ref_cells << "\n";
    }
    os << "cache_dir " << grid.base.cache_dir << "\n";

    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) throw std::runtime_error("write_manifest: cannot open " + tmp);
        out << os.str();
        if (!out.flush()) throw std::runtime_error("write_manifest: write failed for " + tmp);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) throw std::runtime_error("write_manifest: rename failed: " + ec.message());
}

Manifest read_manifest(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("read_manifest: cannot open " + path);
    std::string header;
    if (!std::getline(in, header) || header != "amsnet-sweep-manifest-v1") {
        throw std::runtime_error("read_manifest: bad header in " + path);
    }
    std::map<std::string, std::string> fields;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        const std::size_t space = line.find(' ');
        // A key with no value (e.g. empty cache_dir) is legal.
        if (space == std::string::npos) {
            fields[line] = "";
        } else {
            fields[line.substr(0, space)] = line.substr(space + 1);
        }
    }
    const auto get = [&fields, &path](const std::string& key) -> const std::string& {
        auto it = fields.find(key);
        if (it == fields.end()) {
            throw std::runtime_error("read_manifest: missing field '" + key + "' in " + path);
        }
        return it->second;
    };
    const auto get_u64 = [&get](const std::string& key) {
        return static_cast<std::uint64_t>(std::stoull(get(key)));
    };
    const auto get_size = [&get](const std::string& key) {
        return static_cast<std::size_t>(std::stoull(get(key)));
    };

    Manifest m;
    m.workers = get_size("workers");
    SweepGrid& g = m.grid;
    g.bits_w = get_size("bits_w");
    g.bits_x = get_size("bits_x");
    g.backends.clear();
    for (const std::string& name : split_list(get("backends"))) {
        g.backends.push_back(vmac::parse_backend_kind(name));
    }
    g.enobs.clear();
    for (const std::string& text : split_list(get("enobs"))) {
        g.enobs.push_back(train::parse_exact_double(text));
    }
    g.seeds.clear();
    for (const std::string& text : split_list(get("seeds"))) {
        g.seeds.push_back(static_cast<std::uint64_t>(std::stoull(text)));
    }
    g.nmults.clear();
    for (const std::string& text : split_list(get("nmults"))) {
        g.nmults.push_back(static_cast<std::size_t>(std::stoull(text)));
    }
    g.eval_only = get("eval_only") == "1";
    g.retrain = get("retrain") == "1";
    g.backend_ref_chunks = get_size("backend_ref_chunks");
    g.base.dataset.classes = get_size("data.classes");
    g.base.dataset.train_per_class = get_size("data.train_per_class");
    g.base.dataset.val_per_class = get_size("data.val_per_class");
    g.base.dataset.image_size = get_size("data.image_size");
    g.base.dataset.channels = get_size("data.channels");
    g.base.dataset.noise_sigma =
        static_cast<float>(train::parse_exact_double(get("data.noise_sigma")));
    g.base.dataset.seed = g.seeds.front();
    g.base.eval_passes = get_size("eval_passes");
    g.base.batch_size = get_size("batch_size");
    const auto schedule = [&](const std::string& prefix, train::TrainOptions& t) {
        t.epochs = get_size(prefix + ".epochs");
        t.batch_size = get_size(prefix + ".batch_size");
        t.patience = get_size(prefix + ".patience");
        t.grad_bits = get_size(prefix + ".grad_bits");
        t.shuffle_seed = get_u64(prefix + ".shuffle_seed");
        t.sgd.lr = static_cast<float>(train::parse_exact_double(get(prefix + ".lr")));
        t.sgd.momentum =
            static_cast<float>(train::parse_exact_double(get(prefix + ".momentum")));
        t.sgd.weight_decay =
            static_cast<float>(train::parse_exact_double(get(prefix + ".weight_decay")));
    };
    schedule("fp32_train", g.base.fp32_train);
    schedule("retrain", g.base.retrain);
    // Variation block: present iff the campaign used the variability
    // axes (see write_manifest). Pre-PR 10 manifests simply lack it.
    if (fields.count("variation.chip_seed") != 0) {
        g.chips.clear();
        for (const std::string& text : split_list(get("chips"))) {
            g.chips.push_back(static_cast<std::uint64_t>(std::stoull(text)));
        }
        g.drift_times.clear();
        for (const std::string& text : split_list(get("drift_times"))) {
            g.drift_times.push_back(train::parse_exact_double(text));
        }
        g.variation.chip_seed = get_u64("variation.chip_seed");
        g.variation.cell_offset_sigma =
            train::parse_exact_double(get("variation.cell_offset_sigma"));
        g.variation.drift_nu = train::parse_exact_double(get("variation.drift_nu"));
        g.variation.drift_time = train::parse_exact_double(get("variation.drift_time"));
        g.variation.drift_t0 = train::parse_exact_double(get("variation.drift_t0"));
        g.variation.drift_nu_sigma =
            train::parse_exact_double(get("variation.drift_nu_sigma"));
        g.variation.ir_drop_alpha =
            train::parse_exact_double(get("variation.ir_drop_alpha"));
        g.variation.ir_drop_ref_cells = get_size("variation.ir_drop_ref_cells");
    }
    g.base.cache_dir = get("cache_dir");
    g.base.verbose = false;

    if (g.content_hash() != get("grid_hash")) {
        throw std::runtime_error("read_manifest: grid hash mismatch in " + path +
                                 " (manifest does not round-trip)");
    }
    return m;
}

}  // namespace ams::sweep
