// Sweep coordinator: shards a grid across worker processes, resumes
// crashed campaigns from their journals, and merges shards into one
// deterministic report.
//
// Protocol (DESIGN.md §15):
//   1. The run directory's manifest pins the grid (hash-checked on
//      resume: a coordinator refuses to "resume" a different campaign).
//   2. Every completed point lives in some shard-<i>.jsonl journal.
//      Replay of all journals yields the done-set; the pending set is
//      the enumeration-order difference, partitioned round-robin across
//      the requested workers. A resumed point landing on a different
//      shard than its original (index % first-attempt workers) counts
//      as stolen.
//   3. Workers are fork+execve re-invocations of this binary
//      (--amsnet-sweep-worker) — exec, not bare fork, because the
//      coordinator may have live pool threads. Each gets
//      AMSNET_THREADS=<threads_per_worker>.
//   4. When every point is journaled, the merged report is built purely
//      from the parsed records in enumeration order; it is therefore a
//      function of (grid, results) only — byte-identical across worker
//      counts, resume histories, and run directories.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sweep/grid.hpp"
#include "sweep/journal.hpp"

namespace ams::sweep {

struct CoordinatorOptions {
    std::string run_dir;
    /// Worker processes to spawn; 0 computes in-process (no fork).
    std::size_t workers = 0;
    /// Binary to re-exec as workers; empty uses /proc/self/exe. The
    /// binary must call maybe_worker_main() first in main().
    std::string exe;
    /// AMSNET_THREADS for each worker (0 leaves the inherited value).
    std::size_t threads_per_worker = 1;
    /// Train each pending seed's fp32 -> quantized prerequisites once
    /// in-process before fanning out, so N workers sharing a seed don't
    /// race to train the same checkpoints.
    bool materialize_prerequisites = true;
    /// Fault-injection hook (tests, bench): SIGKILL worker `kill_shard`
    /// once its journal holds `kill_after_points` lines. -1 disables.
    int kill_shard = -1;
    std::size_t kill_after_points = 1;
    bool verbose = false;
};

struct SweepOutcome {
    std::size_t total = 0;     ///< grid points in the campaign
    std::size_t replayed = 0;  ///< served from journals (skipped)
    std::size_t computed = 0;  ///< newly journaled by this invocation
    std::size_t stolen = 0;    ///< resumed points reassigned across shards
    int workers_failed = 0;    ///< workers exiting nonzero or signaled
    bool complete = false;     ///< every point journaled; report written
    std::string report_path;   ///< merged report (when complete)
};

/// Runs (or resumes) a campaign. Creates run_dir and its manifest on
/// first use; on resume verifies the manifest matches `grid` (throws
/// std::runtime_error on mismatch). Returns with complete=false when
/// killed/failed workers left points pending — call again to resume.
SweepOutcome run_sweep(const SweepGrid& grid, const CoordinatorOptions& options);

/// All journal records in run_dir (every shard-*.jsonl, truncated
/// trailing lines dropped).
[[nodiscard]] std::vector<PointRecord> replay_run_dir(const std::string& run_dir);

/// The merged amsnet-bench-v1 report: a pure function of the grid and
/// the journaled results, rendered in enumeration order. Throws
/// std::runtime_error if any point is missing or a record's point id
/// disagrees with the grid's enumeration.
[[nodiscard]] std::string merged_report_json(const SweepGrid& grid,
                                             const std::vector<PointRecord>& records);

/// Absolute path of the running binary (/proc/self/exe).
[[nodiscard]] std::string self_exe_path();

}  // namespace ams::sweep
