#include "sweep/journal.hpp"

#include <cctype>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "train/cache_key.hpp"

namespace ams::sweep {

namespace {

// Hand-rolled reader for the journal's fixed, machine-written JSON
// shape. Not a general JSON parser: field order is fixed by
// journal_line, which is the only writer.
class LineReader {
public:
    explicit LineReader(const std::string& text) : text_(text) {}

    bool literal(const char* expect) {
        const std::size_t n = std::strlen(expect);
        if (text_.compare(pos_, n, expect) != 0) return false;
        pos_ += n;
        return true;
    }

    bool unsigned_int(std::uint64_t& out) {
        std::size_t end = pos_;
        while (end < text_.size() && text_[end] >= '0' && text_[end] <= '9') ++end;
        if (end == pos_) return false;
        out = std::stoull(text_.substr(pos_, end - pos_));
        pos_ = end;
        return true;
    }

    bool number(double& out) {
        std::size_t end = pos_;
        while (end < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[end])) || text_[end] == '-' ||
                text_[end] == '+' || text_[end] == '.' || text_[end] == 'e' ||
                text_[end] == 'E')) {
            ++end;
        }
        if (end == pos_) return false;
        try {
            out = train::parse_exact_double(text_.substr(pos_, end - pos_));
        } catch (const std::exception&) {
            return false;
        }
        pos_ = end;
        return true;
    }

    // Journal strings (point ids) never contain escapes.
    bool quoted(std::string& out) {
        if (pos_ >= text_.size() || text_[pos_] != '"') return false;
        const std::size_t close = text_.find('"', pos_ + 1);
        if (close == std::string::npos) return false;
        out = text_.substr(pos_ + 1, close - pos_ - 1);
        pos_ = close + 1;
        return true;
    }

    bool number_array(std::vector<double>& out) {
        out.clear();
        if (!literal("[")) return false;
        if (literal("]")) return true;
        while (true) {
            double v = 0.0;
            if (!number(v)) return false;
            out.push_back(v);
            if (literal("]")) return true;
            if (!literal(",")) return false;
        }
    }

    [[nodiscard]] bool at_end() const { return pos_ == text_.size(); }

private:
    const std::string& text_;
    std::size_t pos_ = 0;
};

void append_eval(std::string& out, const char* name, const train::EvalResult& r) {
    out += "\"";
    out += name;
    out += "\":{\"mean\":";
    out += train::exact_double(r.mean);
    out += ",\"stddev\":";
    out += train::exact_double(r.stddev);
    out += ",\"passes\":[";
    for (std::size_t i = 0; i < r.passes.size(); ++i) {
        if (i != 0) out += ",";
        out += train::exact_double(r.passes[i]);
    }
    out += "]}";
}

bool parse_eval(LineReader& in, const char* name, train::EvalResult& r) {
    std::string open = std::string("\"") + name + "\":{\"mean\":";
    if (!in.literal(open.c_str())) return false;
    if (!in.number(r.mean)) return false;
    if (!in.literal(",\"stddev\":")) return false;
    if (!in.number(r.stddev)) return false;
    if (!in.literal(",\"passes\":")) return false;
    if (!in.number_array(r.passes)) return false;
    return in.literal("}");
}

}  // namespace

std::string journal_line(const PointRecord& record) {
    std::string out = "{\"index\":";
    out += std::to_string(record.index);
    out += ",\"shard\":";
    out += std::to_string(record.shard);
    out += ",\"point_id\":\"";
    out += record.point_id;
    out += "\",\"enob\":";
    out += train::exact_double(record.point.enob);
    out += ",\"effective_enob\":";
    out += train::exact_double(record.point.effective_enob);
    out += ",";
    append_eval(out, "eval_only", record.point.eval_only);
    out += ",";
    append_eval(out, "retrained", record.point.retrained);
    out += "}";
    return out;
}

bool parse_journal_line(const std::string& line, PointRecord& out) {
    LineReader in(line);
    std::uint64_t index = 0;
    std::uint64_t shard = 0;
    if (!in.literal("{\"index\":")) return false;
    if (!in.unsigned_int(index)) return false;
    if (!in.literal(",\"shard\":")) return false;
    if (!in.unsigned_int(shard)) return false;
    if (!in.literal(",\"point_id\":")) return false;
    if (!in.quoted(out.point_id)) return false;
    if (!in.literal(",\"enob\":")) return false;
    if (!in.number(out.point.enob)) return false;
    if (!in.literal(",\"effective_enob\":")) return false;
    if (!in.number(out.point.effective_enob)) return false;
    if (!in.literal(",")) return false;
    if (!parse_eval(in, "eval_only", out.point.eval_only)) return false;
    if (!in.literal(",")) return false;
    if (!parse_eval(in, "retrained", out.point.retrained)) return false;
    if (!in.literal("}")) return false;
    if (!in.at_end()) return false;
    out.index = static_cast<std::size_t>(index);
    out.shard = static_cast<std::size_t>(shard);
    return true;
}

JournalWriter::JournalWriter(const std::string& path) : path_(path) {
    file_ = std::fopen(path.c_str(), "ab");
    if (file_ == nullptr) {
        throw std::runtime_error("JournalWriter: cannot open " + path);
    }
}

JournalWriter::~JournalWriter() {
    if (file_ != nullptr) std::fclose(file_);
}

void JournalWriter::append(const PointRecord& record) {
    const std::string line = journal_line(record) + "\n";
    if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
        std::fflush(file_) != 0) {
        throw std::runtime_error("JournalWriter: write failed for " + path_);
    }
}

std::vector<PointRecord> replay_journal(const std::string& path, std::size_t* dropped) {
    std::vector<PointRecord> records;
    std::size_t bad = 0;
    std::ifstream in(path);
    if (in) {
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty()) continue;
            PointRecord record;
            if (parse_journal_line(line, record)) {
                records.push_back(std::move(record));
            } else {
                ++bad;
            }
        }
    }
    if (dropped != nullptr) *dropped = bad;
    return records;
}

}  // namespace ams::sweep
