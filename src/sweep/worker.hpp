// Sweep worker: computes one shard's slice of the grid.
//
// A worker is either an in-process call (run_items, used by the
// coordinator's workers=0 mode and by tests) or a forked child of the
// coordinator re-exec'ing this binary with
//   --amsnet-sweep-worker <run_dir> <shard>
// (worker_main, entered through maybe_worker_main before any other CLI
// parsing). Either way the per-point computation is exactly
// ExperimentEnv::compute_enob_point — the same code path as the
// in-process ams_enob_sweep — so a sharded campaign's numbers are
// bit-identical to a single-process run.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sweep/grid.hpp"
#include "sweep/journal.hpp"

namespace ams::sweep {

/// Computes `items` (grouped by seed so each fp32/quantized prerequisite
/// pipeline is materialized once), appending a journal record per
/// completed point. Safe to call with items from any mix of shards; the
/// records carry `shard` as their computing shard.
void run_items(const SweepGrid& grid, const std::vector<WorkItem>& items, std::size_t shard,
               JournalWriter& journal);

/// Entry point of a forked worker process: reads the run directory's
/// manifest and its shard item file (`shard-<i>.items`), computes the
/// listed points into `shard-<i>.jsonl`, and writes the process's
/// counter ledger to `shard-<i>.metrics.json`. Returns a process exit
/// code (0 on success).
int worker_main(const std::string& run_dir, std::size_t shard);

/// Dispatch hook for binaries that can host a worker: when argv is a
/// `--amsnet-sweep-worker <run_dir> <shard>` invocation, runs the worker
/// and returns its exit code (>= 0); otherwise returns -1 and the caller
/// proceeds with its own CLI. Call first in main().
int maybe_worker_main(int argc, char** argv);

/// Filename helpers shared by coordinator and worker.
[[nodiscard]] std::string journal_path(const std::string& run_dir, std::size_t shard);
[[nodiscard]] std::string items_path(const std::string& run_dir, std::size_t shard);
[[nodiscard]] std::string metrics_path(const std::string& run_dir, std::size_t shard);
[[nodiscard]] std::string manifest_path(const std::string& run_dir);

}  // namespace ams::sweep
