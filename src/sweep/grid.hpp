// Design-space sweep grid: the work manifest of a sharded campaign.
//
// A SweepGrid names every axis of a Fig. 8-style design-space map — the
// hardware backends, the swept converter resolutions (ENOB), the dataset
// seeds ("chip"/data variants for Monte-Carlo fleets), and the VMAC
// vector lengths — plus the full experiment configuration (dataset
// sizes, training schedules) the points are measured under. Its
// enumeration is position-deterministic: the same grid always produces
// the same ordered list of WorkItems with the same point ids, which is
// what lets N worker processes each compute a disjoint slice and lets a
// crashed campaign resume by set-difference against its journals.
//
// The grid's content hash (train::CacheKey over a canonical field
// serialization, same machinery as the checkpoint cache) identifies the
// *scientific* content only — run-local knobs (cache directory, verbose)
// are excluded — so a resume can verify it is continuing the same
// campaign, and two run directories with different scratch paths still
// produce byte-identical merged reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ams/vmac_backend.hpp"
#include "core/experiment.hpp"

namespace ams::sweep {

struct WorkItem;

struct SweepGrid {
    std::size_t bits_w = 8;
    std::size_t bits_x = 8;
    std::vector<vmac::BackendKind> backends{vmac::BackendKind::kBitExact};
    std::vector<double> enobs;
    /// Dataset seeds: one full fp32 -> quantized -> AMS pipeline per
    /// seed (the Monte-Carlo "chips" axis). base.dataset.seed is
    /// overridden per point by this axis.
    std::vector<std::uint64_t> seeds;
    std::vector<std::size_t> nmults{8};
    bool eval_only = true;
    bool retrain = true;
    std::size_t backend_ref_chunks = 8;

    /// Device-variability axes of a chip-population (Monte-Carlo fleet)
    /// campaign. `variation` is the amplitude template (offset sigma,
    /// drift exponent, IR drop) shared by every point; the `chips` axis
    /// overrides its chip_seed per point (one frozen realization per
    /// fabricated chip) and the `drift_times` axis overrides its
    /// drift_time (accuracy vs time since programming). All empty /
    /// inactive by default: legacy grids hash, enumerate, and report
    /// byte-identically to PR 9.
    std::vector<std::uint64_t> chips{};
    std::vector<double> drift_times{};
    vmac::DeviceProfile variation{};

    [[nodiscard]] bool has_chips() const { return !chips.empty(); }
    [[nodiscard]] bool has_drift_times() const { return !drift_times.empty(); }
    /// True when any variability axis or amplitude is in play; gates the
    /// variation fields in the content hash, manifest, and report.
    [[nodiscard]] bool variation_active() const {
        return variation.active() || has_chips() || has_drift_times();
    }
    /// Dataset sizes, schedules, eval protocol, and the (run-local)
    /// checkpoint cache directory.
    core::ExperimentOptions base;

    /// Hex hash of the canonical grid serialization (excludes cache_dir,
    /// verbose, and base.dataset.seed — the seed axis supersedes it).
    [[nodiscard]] std::string content_hash() const;

    /// Throws std::invalid_argument on an empty axis.
    void validate() const;

    /// The experiment configuration for one seed of the grid.
    [[nodiscard]] core::ExperimentOptions options_for_seed(std::uint64_t seed) const;

    /// The per-point sweep options for one (backend, nmult) cell.
    [[nodiscard]] core::ExperimentEnv::EnobSweepOptions sweep_options(
        vmac::BackendKind backend, std::size_t nmult) const;

    /// The full per-point sweep options, chip/drift axes applied: the
    /// variation template's chip_seed / drift_time are overridden by the
    /// item's coordinates. This is what workers must use — the
    /// (backend, nmult) overload above ignores the variability axes.
    [[nodiscard]] core::ExperimentEnv::EnobSweepOptions sweep_options(const WorkItem& item) const;
};

/// One grid point, in enumeration order.
struct WorkItem {
    std::size_t index = 0;  ///< position in enumeration order
    vmac::BackendKind backend = vmac::BackendKind::kBitExact;
    double enob = 0.0;
    std::uint64_t seed = 0;
    std::size_t nmult = 8;
    /// Variability coordinates: the chip whose frozen realization this
    /// point evaluates, and its drift time. When the grid has no
    /// chips/drift_times axis these echo the variation template (0/0 for
    /// legacy grids) and do not appear in the point id.
    std::uint64_t chip = 0;
    double drift_time = 0.0;
    /// Stable human-readable id ("bit_exact:e4.5:s11:n8", chip fleets
    /// append ":c<chip>" and drift axes ":t<time>") used as the
    /// journal's completed-point key.
    std::string point_id;
};

/// Deterministic enumeration: seeds (outermost) x chips x backends x
/// nmults x enobs x drift_times. Ordering is part of the resume/merge
/// contract — changing it invalidates existing journals (which is why
/// journals also carry the point id, so a mismatch is detected rather
/// than silently misfiled). Grids without variability axes enumerate
/// exactly as before PR 10.
[[nodiscard]] std::vector<WorkItem> enumerate_grid(const SweepGrid& grid);

/// The run directory's durable record of the campaign.
struct Manifest {
    SweepGrid grid;
    /// Worker count of the first attempt; defines the "original shard"
    /// of every item (index % workers) for the steal accounting.
    std::size_t workers = 1;
};

/// Writes the manifest (atomic temp + rename).
void write_manifest(const std::string& path, const SweepGrid& grid, std::size_t workers);

/// Parses a manifest written by write_manifest. Round-trips every field
/// exactly (doubles via 17-significant-digit text). Throws
/// std::runtime_error on malformed input.
[[nodiscard]] Manifest read_manifest(const std::string& path);

}  // namespace ams::sweep
