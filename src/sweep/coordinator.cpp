#include "sweep/coordinator.hpp"

#include <sys/types.h>
#include <sys/wait.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unistd.h>
#include <unordered_map>

#include "core/bench_json.hpp"
#include "core/experiment.hpp"
#include "runtime/metrics.hpp"
#include "sweep/worker.hpp"

extern char** environ;

namespace ams::sweep {

namespace fs = std::filesystem;

namespace {

std::size_t count_journal_lines(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return 0;
    std::size_t lines = 0;
    char buffer[4096];
    while (in.read(buffer, sizeof(buffer)) || in.gcount() > 0) {
        for (std::streamsize i = 0; i < in.gcount(); ++i) {
            if (buffer[i] == '\n') ++lines;
        }
        if (!in) break;
    }
    return lines;
}

struct WorkerProc {
    pid_t pid = -1;
    std::size_t shard = 0;
    bool exited = false;
    int status = 0;
};

/// fork + execve of `exe --amsnet-sweep-worker run_dir shard`. Everything
/// the child needs (argv, envp) is built BEFORE fork: the coordinator
/// may carry live pool threads, so only async-signal-safe calls are
/// legal between fork and exec.
pid_t spawn_worker(const std::string& exe, const std::string& run_dir, std::size_t shard,
                   std::size_t threads_per_worker) {
    const std::string shard_text = std::to_string(shard);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(exe.c_str()));
    argv.push_back(const_cast<char*>("--amsnet-sweep-worker"));
    argv.push_back(const_cast<char*>(run_dir.c_str()));
    argv.push_back(const_cast<char*>(shard_text.c_str()));
    argv.push_back(nullptr);

    std::vector<std::string> env_store;
    std::vector<char*> envp;
    const std::string threads_entry =
        "AMSNET_THREADS=" + std::to_string(threads_per_worker);
    for (char** e = environ; *e != nullptr; ++e) {
        if (threads_per_worker > 0 && std::strncmp(*e, "AMSNET_THREADS=", 15) == 0) continue;
        envp.push_back(*e);
    }
    if (threads_per_worker > 0) {
        env_store.push_back(threads_entry);
        envp.push_back(const_cast<char*>(env_store.back().c_str()));
    }
    envp.push_back(nullptr);

    const pid_t pid = fork();
    if (pid < 0) throw std::runtime_error("run_sweep: fork failed");
    if (pid == 0) {
        execve(exe.c_str(), argv.data(), envp.data());
        _exit(127);  // exec failed; async-signal-safe exit only
    }
    return pid;
}

void write_items_file(const std::string& path, const std::vector<std::size_t>& indices) {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) throw std::runtime_error("run_sweep: cannot open " + tmp);
        for (std::size_t index : indices) out << index << "\n";
        if (!out.flush()) throw std::runtime_error("run_sweep: write failed for " + tmp);
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) throw std::runtime_error("run_sweep: rename failed: " + ec.message());
}

}  // namespace

std::string self_exe_path() {
    char buffer[4096];
    const ssize_t n = readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
    if (n <= 0) throw std::runtime_error("self_exe_path: readlink(/proc/self/exe) failed");
    buffer[n] = '\0';
    return std::string(buffer);
}

std::vector<PointRecord> replay_run_dir(const std::string& run_dir) {
    std::vector<PointRecord> records;
    if (!fs::exists(run_dir)) return records;
    std::vector<std::string> paths;
    for (const auto& entry : fs::directory_iterator(run_dir)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("shard-", 0) == 0 && name.size() > 6 &&
            name.compare(name.size() - 6, 6, ".jsonl") == 0) {
            paths.push_back(entry.path().string());
        }
    }
    // Directory iteration order is unspecified; sort so replay (and any
    // duplicate-resolution by position) is deterministic.
    std::sort(paths.begin(), paths.end());
    for (const std::string& path : paths) {
        std::size_t dropped = 0;
        std::vector<PointRecord> shard_records = replay_journal(path, &dropped);
        if (dropped > 0) {
            std::fprintf(stderr, "[sweep] %s: dropped %zu truncated/garbled line(s)\n",
                         path.c_str(), dropped);
        }
        for (PointRecord& record : shard_records) records.push_back(std::move(record));
    }
    return records;
}

std::string merged_report_json(const SweepGrid& grid, const std::vector<PointRecord>& records) {
    const std::vector<WorkItem> items = enumerate_grid(grid);
    std::vector<const PointRecord*> by_index(items.size(), nullptr);
    for (const PointRecord& record : records) {
        if (record.index >= items.size()) {
            throw std::runtime_error("merged_report_json: record index " +
                                     std::to_string(record.index) + " out of range");
        }
        if (record.point_id != items[record.index].point_id) {
            throw std::runtime_error("merged_report_json: point id mismatch at index " +
                                     std::to_string(record.index) + ": journal says '" +
                                     record.point_id + "', grid says '" +
                                     items[record.index].point_id + "'");
        }
        by_index[record.index] = &record;  // duplicates: results are
                                           // deterministic, any copy works
    }
    std::size_t missing = 0;
    for (const PointRecord* record : by_index) {
        if (record == nullptr) ++missing;
    }
    if (missing > 0) {
        throw std::runtime_error("merged_report_json: " + std::to_string(missing) +
                                 " of " + std::to_string(items.size()) + " points missing");
    }

    // The report must be a pure function of (grid, results): no
    // record_runtime_env / capture_runtime_metrics (those are run-local
    // and would break cross-run byte identity); shard ids stay in the
    // journals only.
    core::BenchReport report("sweep_grid");
    report.config().set("grid_hash", grid.content_hash());
    report.config().set("points", static_cast<std::uint64_t>(items.size()));
    report.config().set("bits_w", static_cast<std::uint64_t>(grid.bits_w));
    report.config().set("bits_x", static_cast<std::uint64_t>(grid.bits_x));
    report.config().set("eval_only", grid.eval_only);
    report.config().set("retrain", grid.retrain);
    report.config().set("eval_passes", static_cast<std::uint64_t>(grid.base.eval_passes));
    // Variability campaign header, gated so legacy reports stay
    // byte-identical (same rule as the grid hash and manifest).
    if (grid.variation_active()) {
        report.config().set("chips", static_cast<std::uint64_t>(grid.chips.size()));
        report.config().set("drift_times",
                            static_cast<std::uint64_t>(grid.drift_times.size()));
        report.config().set("variation", grid.variation.str());
    }
    for (std::size_t i = 0; i < items.size(); ++i) {
        const WorkItem& item = items[i];
        const core::ExperimentEnv::EnobSweepPoint& point = by_index[i]->point;
        core::BenchFields& row = report.add_row();
        row.set("index", static_cast<std::uint64_t>(item.index));
        row.set("point_id", item.point_id);
        row.set("backend", vmac::backend_kind_name(item.backend));
        row.set("seed", static_cast<std::uint64_t>(item.seed));
        row.set("nmult", static_cast<std::uint64_t>(item.nmult));
        if (grid.has_chips()) row.set("chip", static_cast<std::uint64_t>(item.chip));
        if (grid.has_drift_times()) row.set("drift_time", item.drift_time);
        row.set("enob", point.enob);
        row.set("effective_enob", point.effective_enob);
        if (grid.eval_only) {
            row.set("eval_only_mean", point.eval_only.mean);
            row.set("eval_only_stddev", point.eval_only.stddev);
        }
        if (grid.retrain) {
            row.set("retrained_mean", point.retrained.mean);
            row.set("retrained_stddev", point.retrained.stddev);
        }
    }
    std::ostringstream os;
    report.write(os);
    return os.str();
}

SweepOutcome run_sweep(const SweepGrid& grid, const CoordinatorOptions& options) {
    if (options.run_dir.empty()) throw std::invalid_argument("run_sweep: empty run_dir");
    grid.validate();
    fs::create_directories(options.run_dir);

    // Manifest: pin the campaign on first use, verify on resume.
    const std::string mpath = manifest_path(options.run_dir);
    const std::size_t first_attempt_workers = std::max<std::size_t>(options.workers, 1);
    Manifest manifest;
    if (fs::exists(mpath)) {
        manifest = read_manifest(mpath);
        if (manifest.grid.content_hash() != grid.content_hash()) {
            throw std::runtime_error(
                "run_sweep: run_dir " + options.run_dir +
                " holds a different campaign (grid hash mismatch); refusing to resume");
        }
    } else {
        write_manifest(mpath, grid, first_attempt_workers);
        manifest.grid = grid;
        manifest.workers = first_attempt_workers;
    }

    const std::vector<WorkItem> items = enumerate_grid(grid);
    SweepOutcome outcome;
    outcome.total = items.size();

    // Replay: the done-set is whatever any previous attempt journaled.
    std::vector<bool> done(items.size(), false);
    for (const PointRecord& record : replay_run_dir(options.run_dir)) {
        if (record.index < items.size() && record.point_id == items[record.index].point_id &&
            !done[record.index]) {
            done[record.index] = true;
            ++outcome.replayed;
        }
    }
    runtime::metrics::add(runtime::metrics::Counter::kSweepPointsSkipped, outcome.replayed);

    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (!done[i]) pending.push_back(i);
    }
    if (options.verbose) {
        std::fprintf(stderr, "[sweep] %zu points: %zu journaled, %zu pending, %zu worker(s)\n",
                     items.size(), outcome.replayed, pending.size(), options.workers);
    }

    if (!pending.empty()) {
        // Train shared prerequisites once so concurrent workers find warm
        // checkpoints instead of racing to produce them.
        if (options.materialize_prerequisites) {
            std::vector<std::uint64_t> seeds;
            for (std::size_t index : pending) {
                if (std::find(seeds.begin(), seeds.end(), items[index].seed) == seeds.end()) {
                    seeds.push_back(items[index].seed);
                }
            }
            for (std::uint64_t seed : seeds) {
                core::ExperimentEnv env(grid.options_for_seed(seed));
                (void)env.quantized_state(grid.bits_w, grid.bits_x);
            }
        }

        if (options.workers == 0) {
            // In-process: one logical shard, no fork.
            std::vector<WorkItem> mine;
            for (std::size_t index : pending) mine.push_back(items[index]);
            JournalWriter journal(journal_path(options.run_dir, 0));
            run_items(grid, mine, 0, journal);
            outcome.computed = mine.size();
        } else {
            // Partition round-robin over the pending list. On a fresh run
            // with the manifest's worker count this reproduces the
            // original owner (index % workers); on resume, reassignments
            // are steals.
            std::vector<std::vector<std::size_t>> shards(options.workers);
            for (std::size_t i = 0; i < pending.size(); ++i) {
                const std::size_t shard = i % options.workers;
                shards[shard].push_back(pending[i]);
                if (pending[i] % manifest.workers != shard && outcome.replayed > 0) {
                    ++outcome.stolen;
                }
            }
            runtime::metrics::add(runtime::metrics::Counter::kSweepPointsStolen, outcome.stolen);

            const std::string exe = options.exe.empty() ? self_exe_path() : options.exe;
            std::vector<WorkerProc> procs;
            for (std::size_t shard = 0; shard < options.workers; ++shard) {
                if (shards[shard].empty()) continue;
                write_items_file(items_path(options.run_dir, shard), shards[shard]);
                WorkerProc proc;
                proc.shard = shard;
                proc.pid = spawn_worker(exe, options.run_dir, shard, options.threads_per_worker);
                procs.push_back(proc);
                runtime::metrics::add(runtime::metrics::Counter::kSweepWorkersSpawned);
            }

            bool kill_pending = options.kill_shard >= 0;
            std::size_t live = procs.size();
            while (live > 0) {
                for (WorkerProc& proc : procs) {
                    if (proc.exited) continue;
                    int status = 0;
                    const pid_t r = waitpid(proc.pid, &status, WNOHANG);
                    if (r == proc.pid) {
                        proc.exited = true;
                        proc.status = status;
                        --live;
                        const bool failed = !WIFEXITED(status) || WEXITSTATUS(status) != 0;
                        if (failed) ++outcome.workers_failed;
                        if (options.verbose || failed) {
                            std::fprintf(stderr, "[sweep] shard %zu exited (%s %d)\n",
                                         proc.shard, WIFSIGNALED(status) ? "signal" : "status",
                                         WIFSIGNALED(status) ? WTERMSIG(status)
                                                             : WEXITSTATUS(status));
                        }
                    }
                }
                if (kill_pending) {
                    const std::size_t shard = static_cast<std::size_t>(options.kill_shard);
                    for (WorkerProc& proc : procs) {
                        if (proc.shard != shard || proc.exited) continue;
                        if (count_journal_lines(journal_path(options.run_dir, shard)) >=
                            options.kill_after_points) {
                            kill(proc.pid, SIGKILL);
                            kill_pending = false;
                        }
                    }
                }
                if (live > 0) std::this_thread::sleep_for(std::chrono::milliseconds(5));
            }
        }
    }

    // Post-run accounting and merge, purely from the journals.
    std::vector<PointRecord> records = replay_run_dir(options.run_dir);
    std::vector<bool> now_done(items.size(), false);
    for (const PointRecord& record : records) {
        if (record.index < items.size() && record.point_id == items[record.index].point_id) {
            now_done[record.index] = true;
        }
    }
    std::size_t completed = 0;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (now_done[i]) ++completed;
    }
    if (options.workers != 0) outcome.computed = completed - outcome.replayed;
    outcome.complete = completed == items.size();
    if (outcome.complete) {
        const std::string report = merged_report_json(grid, records);
        const std::string path = options.run_dir + "/report.json";
        const std::string tmp = path + ".tmp";
        {
            std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
            if (!out) throw std::runtime_error("run_sweep: cannot open " + tmp);
            out << report;
            if (!out.flush()) throw std::runtime_error("run_sweep: write failed for " + tmp);
        }
        std::error_code ec;
        fs::rename(tmp, path, ec);
        if (ec) throw std::runtime_error("run_sweep: rename failed: " + ec.message());
        outcome.report_path = path;
    }
    return outcome;
}

}  // namespace ams::sweep
