// The Fig. 8 energy-accuracy design-space map.
//
// Accuracy results are measured once at a reference Nmult (the paper uses
// 8) across an ENOB sweep; Eq. 2 implies the injected error depends on
// (ENOB, Nmult) only through sqrt(Nmult) * 2^-ENOB, so the sweep maps
// onto the full (ENOB, Nmult) grid via an equivalent-ENOB shift. Energy
// comes from Eqs. 3-4. The paper's headline observation falls out of the
// grid: accuracy-loss and minimum-energy level curves are parallel in the
// thermal-noise-limited regime, so the two metrics trade off one-for-one.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ams/vmac_backend.hpp"
#include "energy/vmac_energy.hpp"

namespace ams::energy {

/// Piecewise-linear accuracy-loss curve measured at a reference Nmult.
/// Points map ENOB (at the reference Nmult) to top-1 accuracy loss.
class AccuracyCurve {
public:
    struct Point {
        double enob = 0.0;
        double loss = 0.0;
    };

    /// `reference_nmult` is the Nmult at which the points were measured.
    /// Points are sorted by ENOB; throws std::invalid_argument if fewer
    /// than two points or duplicate ENOBs are given.
    AccuracyCurve(std::vector<Point> points, std::size_t reference_nmult);

    /// Loss at an arbitrary (ENOB, Nmult): shifts to the equivalent ENOB
    /// at the reference Nmult and interpolates linearly, clamping to the
    /// end points outside the measured range.
    [[nodiscard]] double loss_at(double enob, std::size_t nmult) const;

    [[nodiscard]] std::size_t reference_nmult() const { return reference_nmult_; }
    [[nodiscard]] const std::vector<Point>& points() const { return points_; }

private:
    std::vector<Point> points_;
    std::size_t reference_nmult_;
};

/// One cell of the Fig. 8 lookup grid.
struct DesignPoint {
    double enob = 0.0;
    std::size_t nmult = 0;
    double accuracy_loss = 0.0;  ///< relative to the quantized baseline
    double emac_fj = 0.0;        ///< minimum energy per MAC (Eq. 3-4)
};

/// Dense (ENOB x Nmult) grid of accuracy loss and energy.
class EnergyAccuracyMap {
public:
    /// Evaluates the grid. `enobs` and `nmults` must be non-empty.
    EnergyAccuracyMap(const AccuracyCurve& curve, std::vector<double> enobs,
                      std::vector<std::size_t> nmults);

    [[nodiscard]] const std::vector<DesignPoint>& grid() const { return grid_; }
    [[nodiscard]] const std::vector<double>& enobs() const { return enobs_; }
    [[nodiscard]] const std::vector<std::size_t>& nmults() const { return nmults_; }

    /// Grid cell accessor (row = enob index, col = nmult index).
    [[nodiscard]] const DesignPoint& at(std::size_t enob_idx, std::size_t nmult_idx) const;

    /// Cheapest design meeting `max_loss`, or nullptr if none on the grid
    /// qualifies. This is the lookup a system designer performs ("for
    /// < 0.4% accuracy loss, EMAC_min = ~313 fJ").
    [[nodiscard]] const DesignPoint* cheapest_for_loss(double max_loss) const;

    /// Most accurate design within an energy budget (fJ/MAC), or nullptr.
    [[nodiscard]] const DesignPoint* best_accuracy_for_energy(double max_emac_fj) const;

private:
    std::vector<double> enobs_;
    std::vector<std::size_t> nmults_;
    std::vector<DesignPoint> grid_;
};

/// One point of a backend-labeled Fig. 8 series: a hardware datapath
/// evaluated at a grid (ENOB, Nmult). Accuracy comes from the backend's
/// equivalent monolithic ENOB pushed through the measured curve (Eq. 2
/// equivalence); energy comes from the backend's conversion profile, so
/// partitioning pays NW*NX cheap conversions and delta-sigma amortizes
/// one expensive final conversion.
struct BackendDesignPoint {
    std::string backend;          ///< backend_kind_name label (CSV series)
    double enob = 0.0;            ///< grid per-conversion resolution
    std::size_t nmult = 0;
    double effective_enob = 0.0;  ///< backend-equivalent monolithic ENOB
    double conversions_per_vmac = 0.0;
    double accuracy_loss = 0.0;   ///< relative to the quantized baseline
    double emac_fj = 0.0;         ///< energy per MAC from the profile
};

/// Evaluates one backend family over the (ENOB x Nmult) grid. The grid
/// ENOB drives the backend's converter resolution (for partitioning it
/// becomes the partial-conversion resolution); `proto` supplies operand
/// bitwidths and accumulation mode; `chunks_per_output` amortizes
/// per-output conversions. Throws std::invalid_argument on an empty grid
/// or a configuration the backend rejects.
[[nodiscard]] std::vector<BackendDesignPoint> backend_design_series(
    const AccuracyCurve& curve, const vmac::VmacConfig& proto,
    const vmac::AnalogOptions& analog, const vmac::BackendOptions& options,
    const std::vector<double>& enobs, const std::vector<std::size_t>& nmults,
    std::size_t chunks_per_output, const VmacEnergyModel& model = {});

}  // namespace ams::energy
