#include "energy/adc_energy.hpp"

#include <cmath>
#include <stdexcept>

namespace ams::energy {

double enob_to_sndr_db(double enob) {
    return 6.02 * enob + 1.76;
}

double sndr_db_to_enob(double sndr_db) {
    return (sndr_db - 1.76) / 6.02;
}

double schreier_energy_pj(double enob, double fom_db) {
    if (enob <= 0.0) throw std::invalid_argument("schreier_energy_pj: enob must be positive");
    // FOM_S = SNDR + 10 log10((fs/2) / P)  =>  P / fs = 0.5 * 10^((SNDR - FOM)/10) J
    const double joules_per_sample =
        0.5 * std::pow(10.0, (enob_to_sndr_db(enob) - fom_db) / 10.0);
    return joules_per_sample * 1e12;
}

double adc_energy_lower_bound_pj(double enob) {
    if (enob <= 0.0) {
        throw std::invalid_argument("adc_energy_lower_bound_pj: enob must be positive");
    }
    if (enob <= kThermalCrossoverEnob) return kEnergyFloorPj;
    return std::pow(10.0, 0.1 * (6.02 * enob - 68.25));
}

double emac_lower_bound_pj(double enob, std::size_t nmult) {
    if (nmult == 0) throw std::invalid_argument("emac_lower_bound_pj: nmult must be > 0");
    return adc_energy_lower_bound_pj(enob) / static_cast<double>(nmult);
}

double emac_lower_bound_fj(double enob, std::size_t nmult) {
    return emac_lower_bound_pj(enob, nmult) * 1e3;
}

double walden_fom_fj(double energy_pj, double enob) {
    if (enob <= 0.0) throw std::invalid_argument("walden_fom_fj: enob must be positive");
    return energy_pj * 1e3 / std::exp2(enob);
}

}  // namespace ams::energy
