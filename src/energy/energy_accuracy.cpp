#include "energy/energy_accuracy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ams/error_model.hpp"
#include "energy/adc_energy.hpp"

namespace ams::energy {

AccuracyCurve::AccuracyCurve(std::vector<Point> points, std::size_t reference_nmult)
    : points_(std::move(points)), reference_nmult_(reference_nmult) {
    if (points_.size() < 2) {
        throw std::invalid_argument("AccuracyCurve: need at least two points");
    }
    if (reference_nmult == 0) {
        throw std::invalid_argument("AccuracyCurve: reference_nmult must be > 0");
    }
    std::sort(points_.begin(), points_.end(),
              [](const Point& a, const Point& b) { return a.enob < b.enob; });
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (points_[i].enob == points_[i - 1].enob) {
            throw std::invalid_argument("AccuracyCurve: duplicate ENOB point");
        }
    }
}

double AccuracyCurve::loss_at(double enob, std::size_t nmult) const {
    // Map (enob, nmult) to the ENOB at the reference Nmult with the same
    // injected-noise scale (Eq. 2 equivalence).
    const double eq_enob = vmac::equivalent_enob(enob, nmult, reference_nmult_);
    if (eq_enob <= points_.front().enob) return points_.front().loss;
    if (eq_enob >= points_.back().enob) return points_.back().loss;
    const auto upper = std::lower_bound(
        points_.begin(), points_.end(), eq_enob,
        [](const Point& p, double e) { return p.enob < e; });
    const Point& hi = *upper;
    const Point& lo = *(upper - 1);
    const double t = (eq_enob - lo.enob) / (hi.enob - lo.enob);
    return lo.loss + t * (hi.loss - lo.loss);
}

EnergyAccuracyMap::EnergyAccuracyMap(const AccuracyCurve& curve, std::vector<double> enobs,
                                     std::vector<std::size_t> nmults)
    : enobs_(std::move(enobs)), nmults_(std::move(nmults)) {
    if (enobs_.empty() || nmults_.empty()) {
        throw std::invalid_argument("EnergyAccuracyMap: need a non-empty grid");
    }
    grid_.reserve(enobs_.size() * nmults_.size());
    for (double enob : enobs_) {
        for (std::size_t nmult : nmults_) {
            DesignPoint p;
            p.enob = enob;
            p.nmult = nmult;
            p.accuracy_loss = curve.loss_at(enob, nmult);
            p.emac_fj = emac_lower_bound_fj(enob, nmult);
            grid_.push_back(p);
        }
    }
}

const DesignPoint& EnergyAccuracyMap::at(std::size_t enob_idx, std::size_t nmult_idx) const {
    if (enob_idx >= enobs_.size() || nmult_idx >= nmults_.size()) {
        throw std::out_of_range("EnergyAccuracyMap::at: index out of range");
    }
    return grid_[enob_idx * nmults_.size() + nmult_idx];
}

const DesignPoint* EnergyAccuracyMap::cheapest_for_loss(double max_loss) const {
    const DesignPoint* best = nullptr;
    for (const DesignPoint& p : grid_) {
        if (p.accuracy_loss >= max_loss) continue;
        if (best == nullptr || p.emac_fj < best->emac_fj) best = &p;
    }
    return best;
}

const DesignPoint* EnergyAccuracyMap::best_accuracy_for_energy(double max_emac_fj) const {
    const DesignPoint* best = nullptr;
    for (const DesignPoint& p : grid_) {
        if (p.emac_fj > max_emac_fj) continue;
        if (best == nullptr || p.accuracy_loss < best->accuracy_loss) best = &p;
    }
    return best;
}

std::vector<BackendDesignPoint> backend_design_series(
    const AccuracyCurve& curve, const vmac::VmacConfig& proto,
    const vmac::AnalogOptions& analog, const vmac::BackendOptions& options,
    const std::vector<double>& enobs, const std::vector<std::size_t>& nmults,
    std::size_t chunks_per_output, const VmacEnergyModel& model) {
    if (enobs.empty() || nmults.empty()) {
        throw std::invalid_argument("backend_design_series: need a non-empty grid");
    }
    if (chunks_per_output == 0) {
        throw std::invalid_argument("backend_design_series: chunks_per_output must be > 0");
    }
    std::vector<BackendDesignPoint> series;
    series.reserve(enobs.size() * nmults.size());
    for (double enob : enobs) {
        for (std::size_t nmult : nmults) {
            vmac::VmacConfig cfg = proto;
            cfg.enob = enob;
            cfg.nmult = nmult;
            vmac::BackendOptions bopts = options;
            // The swept resolution is the per-conversion resolution of
            // whatever converters the datapath actually instantiates.
            if (bopts.kind == vmac::BackendKind::kPartitioned) {
                bopts.partition.enob_partial = enob;
            }
            const auto backend = vmac::make_backend(cfg, analog, bopts);
            BackendDesignPoint p;
            p.backend = backend->name();
            p.enob = enob;
            p.nmult = nmult;
            p.effective_enob = backend->effective_enob(chunks_per_output);
            p.conversions_per_vmac = static_cast<double>(backend->conversions_per_vmac());
            p.accuracy_loss = curve.loss_at(p.effective_enob, nmult);
            p.emac_fj = model.backend_emac_fj(*backend, chunks_per_output);
            series.push_back(std::move(p));
        }
    }
    return series;
}

}  // namespace ams::energy
