#include "energy/vmac_energy.hpp"

#include <stdexcept>

namespace ams::energy {

VmacEnergyBreakdown VmacEnergyModel::vmac_energy(double enob, std::size_t nmult) const {
    if (nmult == 0) throw std::invalid_argument("VmacEnergyModel: nmult must be > 0");
    VmacEnergyBreakdown b;
    b.adc_fj = adc_margin * adc_energy_lower_bound_pj(enob) * 1e3;
    b.mult_fj = mult_fj_per_op * static_cast<double>(nmult);
    // One digital add per VMAC output into the accumulator.
    b.digital_fj = digital_fj_per_add;
    return b;
}

double VmacEnergyModel::emac_fj(double enob, std::size_t nmult) const {
    return vmac_energy(enob, nmult).total_fj() / static_cast<double>(nmult);
}

double profile_conversion_fj(const vmac::ConversionProfile& profile, std::size_t chunks,
                             double adc_margin) {
    if (chunks == 0) {
        throw std::invalid_argument("profile_conversion_fj: chunks must be > 0");
    }
    double fj = 0.0;
    for (const vmac::ConversionCost& cost : profile) {
        fj += adc_margin * adc_energy_lower_bound_pj(cost.enob) * 1e3 *
              (cost.per_chunk * static_cast<double>(chunks) + cost.per_output);
    }
    return fj;
}

VmacEnergyBreakdown VmacEnergyModel::backend_vmac_energy(const vmac::VmacBackend& backend,
                                                         std::size_t chunks_per_output) const {
    if (chunks_per_output == 0) {
        throw std::invalid_argument("backend_vmac_energy: chunks_per_output must be > 0");
    }
    VmacEnergyBreakdown b;
    b.adc_fj = profile_conversion_fj(backend.conversion_profile(), chunks_per_output,
                                     adc_margin) /
               static_cast<double>(chunks_per_output);
    b.mult_fj = mult_fj_per_op * static_cast<double>(backend.config().nmult);
    // One digital shift-and-add per conversion result.
    b.digital_fj = digital_fj_per_add * static_cast<double>(backend.conversions_per_vmac());
    return b;
}

double VmacEnergyModel::backend_emac_fj(const vmac::VmacBackend& backend,
                                        std::size_t chunks_per_output) const {
    return backend_vmac_energy(backend, chunks_per_output).total_fj() /
           static_cast<double>(backend.config().nmult);
}

NetworkEnergyReport account_network(const std::vector<LayerEnergy>& layer_shapes,
                                    const VmacEnergyModel& model, double enob,
                                    std::size_t nmult) {
    if (nmult == 0) throw std::invalid_argument("account_network: nmult must be > 0");
    NetworkEnergyReport report;
    const double emac_fj = model.emac_fj(enob, nmult);
    for (const LayerEnergy& shape : layer_shapes) {
        if (shape.n_tot == 0 || shape.outputs == 0) {
            throw std::invalid_argument("account_network: degenerate layer " + shape.name);
        }
        LayerEnergy layer = shape;
        layer.macs = layer.n_tot * layer.outputs;
        layer.vmacs = ((layer.n_tot + nmult - 1) / nmult) * layer.outputs;
        layer.energy_nj = emac_fj * static_cast<double>(layer.macs) * 1e-6;
        report.total_macs += layer.macs;
        report.total_nj += layer.energy_nj;
        report.layers.push_back(std::move(layer));
    }
    return report;
}

NetworkEnergyReport account_network(const std::vector<LayerEnergy>& layer_shapes,
                                    const VmacEnergyModel& model,
                                    const vmac::VmacBackend& backend) {
    const std::size_t nmult = backend.config().nmult;
    NetworkEnergyReport report;
    for (const LayerEnergy& shape : layer_shapes) {
        if (shape.n_tot == 0 || shape.outputs == 0) {
            throw std::invalid_argument("account_network: degenerate layer " + shape.name);
        }
        LayerEnergy layer = shape;
        layer.macs = layer.n_tot * layer.outputs;
        const std::size_t chunks = (layer.n_tot + nmult - 1) / nmult;
        layer.vmacs = chunks * layer.outputs;
        const double vmac_fj = model.backend_vmac_energy(backend, chunks).total_fj();
        layer.energy_nj = vmac_fj * static_cast<double>(layer.vmacs) * 1e-6;
        report.total_macs += layer.macs;
        report.total_nj += layer.energy_nj;
        report.layers.push_back(std::move(layer));
    }
    return report;
}

}  // namespace ams::energy
