#include "energy/vmac_energy.hpp"

#include <stdexcept>

namespace ams::energy {

VmacEnergyBreakdown VmacEnergyModel::vmac_energy(double enob, std::size_t nmult) const {
    if (nmult == 0) throw std::invalid_argument("VmacEnergyModel: nmult must be > 0");
    VmacEnergyBreakdown b;
    b.adc_fj = adc_margin * adc_energy_lower_bound_pj(enob) * 1e3;
    b.mult_fj = mult_fj_per_op * static_cast<double>(nmult);
    // One digital add per VMAC output into the accumulator.
    b.digital_fj = digital_fj_per_add;
    return b;
}

double VmacEnergyModel::emac_fj(double enob, std::size_t nmult) const {
    return vmac_energy(enob, nmult).total_fj() / static_cast<double>(nmult);
}

NetworkEnergyReport account_network(const std::vector<LayerEnergy>& layer_shapes,
                                    const VmacEnergyModel& model, double enob,
                                    std::size_t nmult) {
    if (nmult == 0) throw std::invalid_argument("account_network: nmult must be > 0");
    NetworkEnergyReport report;
    const double emac_fj = model.emac_fj(enob, nmult);
    for (const LayerEnergy& shape : layer_shapes) {
        if (shape.n_tot == 0 || shape.outputs == 0) {
            throw std::invalid_argument("account_network: degenerate layer " + shape.name);
        }
        LayerEnergy layer = shape;
        layer.macs = layer.n_tot * layer.outputs;
        layer.vmacs = ((layer.n_tot + nmult - 1) / nmult) * layer.outputs;
        layer.energy_nj = emac_fj * static_cast<double>(layer.macs) * 1e-6;
        report.total_macs += layer.macs;
        report.total_nj += layer.energy_nj;
        report.layers.push_back(std::move(layer));
    }
    return report;
}

}  // namespace ams::energy
