#include "energy/adc_survey.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "energy/adc_energy.hpp"

namespace ams::energy {

namespace {

std::string pick_architecture(double enob, Rng& rng) {
    // Rough architectural plausibility: flash at low resolution, SAR in
    // the middle, pipelines broad, delta-sigma at high resolution.
    if (enob < 6.0) return rng.uniform() < 0.6 ? "flash" : "SAR";
    if (enob < 11.0) return rng.uniform() < 0.55 ? "SAR" : "pipeline";
    return rng.uniform() < 0.7 ? "delta-sigma" : "pipeline";
}

}  // namespace

std::vector<AdcDesign> generate_survey(const SurveyOptions& options) {
    if (options.designs == 0) throw std::invalid_argument("generate_survey: need designs > 0");
    if (options.enob_min <= 0.0 || options.enob_max <= options.enob_min) {
        throw std::invalid_argument("generate_survey: bad ENOB range");
    }
    if (options.year_max < options.year_min) {
        throw std::invalid_argument("generate_survey: bad year range");
    }
    Rng rng(options.seed);
    std::vector<AdcDesign> survey;
    survey.reserve(options.designs);
    for (std::size_t i = 0; i < options.designs; ++i) {
        AdcDesign d;
        d.enob = rng.uniform(options.enob_min, options.enob_max);
        d.year = options.year_min +
                 static_cast<int>(rng.uniform_index(
                     static_cast<std::uint64_t>(options.year_max - options.year_min + 1)));
        d.venue = rng.uniform() < 0.65 ? Venue::kIsscc : Venue::kVlsi;
        d.architecture = pick_architecture(d.enob, rng);

        // Excess above the envelope, in decades: exponential spread whose
        // mean grows with design age. |normal| keeps a heavy shoulder.
        const double age_decades =
            static_cast<double>(options.year_max - d.year) / 10.0;
        const double mean_excess =
            options.mean_excess_decades + options.era_decades_per_decade * age_decades;
        const double u = std::max(rng.uniform(), 1e-12);
        double excess = -mean_excess * std::log(u);  // exponential(mean_excess)
        excess = std::min(excess, 5.0);              // keep the plot bounded
        d.energy_per_sample_pj =
            adc_energy_lower_bound_pj(d.enob) * std::pow(10.0, excess);
        survey.push_back(std::move(d));
    }
    return survey;
}

std::vector<EnvelopePoint> survey_envelope(const std::vector<AdcDesign>& survey,
                                           double bin_width) {
    if (bin_width <= 0.0) throw std::invalid_argument("survey_envelope: bad bin width");
    std::map<long long, double> best;
    for (const AdcDesign& d : survey) {
        const long long bin = static_cast<long long>(std::floor(d.enob / bin_width));
        const auto it = best.find(bin);
        if (it == best.end() || d.energy_per_sample_pj < it->second) {
            best[bin] = d.energy_per_sample_pj;
        }
    }
    std::vector<EnvelopePoint> envelope;
    envelope.reserve(best.size());
    for (const auto& [bin, energy] : best) {
        envelope.push_back({(static_cast<double>(bin) + 0.5) * bin_width, energy});
    }
    return envelope;
}

}  // namespace ams::energy
