// ADC energy model (paper Sec. 4, Eqs. 3-4).
//
// The VMAC energy is assumed to be dominated by its ADC, with
// ENOB_VMAC = ENOB_ADC; the model is therefore a lower bound on energy
// and an upper bound on accuracy. The bound is derived from the lower
// envelope of Murmann's ADC survey (July 2018): a constant ~0.3 pJ/sample
// floor for low-to-mid resolutions and a Schreier-FOM-limited thermal
// wall (~FOM_S = 187 dB) above ENOB ~ 10.5, where energy quadruples per
// extra bit.
#pragma once

#include <cstddef>

namespace ams::energy {

/// ENOB where the paper's piecewise bound switches from the constant
/// floor to the thermal-noise-limited regime.
inline constexpr double kThermalCrossoverEnob = 10.5;

/// The constant low-resolution energy floor, in pJ per conversion.
inline constexpr double kEnergyFloorPj = 0.3;

/// Schreier figure of merit of the paper's (slightly shifted) state-of-
/// the-art line, in dB.
inline constexpr double kSchreierFomDb = 187.0;

/// Energy per sample P/f_snyq implied by a Schreier FOM, in pJ:
///   FOM_S = SNDR + 10 log10((f_s / 2) / P),  SNDR = 6.02 ENOB + 1.76 dB.
/// Throws std::invalid_argument if enob <= 0.
[[nodiscard]] double schreier_energy_pj(double enob, double fom_db = kSchreierFomDb);

/// SNDR (dB) corresponding to an ENOB: 6.02 * ENOB + 1.76.
[[nodiscard]] double enob_to_sndr_db(double enob);

/// ENOB corresponding to an SNDR (dB).
[[nodiscard]] double sndr_db_to_enob(double sndr_db);

/// Eq. 3: lower bound on ADC conversion energy, in pJ:
///   E >= 0.3 pJ                          for ENOB <= 10.5
///   E >= 10^(0.1 (6.02 ENOB - 68.25)) pJ for ENOB > 10.5
/// (The second branch equals the FOM_S = 187 dB Schreier line.)
[[nodiscard]] double adc_energy_lower_bound_pj(double enob);

/// Eq. 4: minimum energy per MAC, in pJ: the ADC energy amortized over
/// the Nmult multiplications it digitizes. Throws if nmult == 0.
[[nodiscard]] double emac_lower_bound_pj(double enob, std::size_t nmult);

/// Same in femtojoules (the unit the paper quotes: "~300 fJ/MAC").
[[nodiscard]] double emac_lower_bound_fj(double enob, std::size_t nmult);

/// Walden figure of merit, fJ per conversion-step: E / 2^ENOB.
[[nodiscard]] double walden_fom_fj(double energy_pj, double enob);

}  // namespace ams::energy
