// Synthetic ADC survey consistent with Murmann's published envelope.
//
// Figure 7 of the paper plots P/f_snyq against ENOB for every ADC
// published at ISSCC/VLSI 1997-2018 and draws (a) the ~0.3 pJ constant-
// energy-per-sample floor and (b) a slightly shifted Schreier FOM_S =
// 187 dB line. The actual spreadsheet is not redistributable, so this
// module *generates* a survey whose population respects the same lower
// envelope (no design beats the bound) with a realistic spread above it —
// enough to regenerate the figure and to property-test Eq. 3 as a true
// lower bound of the population.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/rng.hpp"

namespace ams::energy {

/// Publication venue categories used in Murmann's survey.
enum class Venue { kIsscc, kVlsi };

/// One published ADC design point.
struct AdcDesign {
    Venue venue = Venue::kIsscc;
    int year = 2018;
    std::string architecture;      ///< SAR, pipeline, delta-sigma, flash
    double enob = 10.0;            ///< ENOB at high input frequency
    double energy_per_sample_pj = 1.0;  ///< P / f_snyq
};

/// Parameters of the synthetic survey population.
struct SurveyOptions {
    std::size_t designs = 500;
    int year_min = 1997;
    int year_max = 2018;
    double enob_min = 4.0;
    double enob_max = 20.0;
    /// Mean decades of energy above the state-of-the-art envelope for a
    /// 2018 design; older designs sit higher (see era_decades_per_decade).
    double mean_excess_decades = 0.8;
    /// Additional mean excess per decade of age (technology progress).
    double era_decades_per_decade = 0.5;
    std::uint64_t seed = 0x5EEDADC5u;
};

/// Generates a survey population. Every design satisfies
/// energy >= adc_energy_lower_bound_pj(enob) (the Eq. 3 envelope).
[[nodiscard]] std::vector<AdcDesign> generate_survey(const SurveyOptions& options);

/// Lower envelope of a population: for each ENOB bin, the minimum energy.
struct EnvelopePoint {
    double enob = 0.0;
    double energy_pj = 0.0;
};
[[nodiscard]] std::vector<EnvelopePoint> survey_envelope(const std::vector<AdcDesign>& survey,
                                                         double bin_width = 0.5);

}  // namespace ams::energy
