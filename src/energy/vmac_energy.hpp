// Component-level VMAC energy model and whole-network energy accounting.
//
// The paper's Eq. 3-4 model is deliberately ADC-dominated ("our results
// therefore provide a lower bound on energy"); Section 4 invites "more
// sophisticated energy models [to] be substituted into the presented
// framework". This module adds the next level of detail: per-component
// energy (D-to-A multipliers, ADC, digital accumulation) and a
// network-level accountant that multiplies per-MAC energy by the MAC
// counts of every layer of a ResNet to estimate whole-inference energy.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ams/vmac_backend.hpp"
#include "energy/adc_energy.hpp"

namespace ams::energy {

/// Per-component energy of one VMAC evaluation, in femtojoules.
struct VmacEnergyBreakdown {
    double adc_fj = 0.0;      ///< one conversion (Eq. 3 bound by default)
    double mult_fj = 0.0;     ///< Nmult D-to-A multiplications
    double digital_fj = 0.0;  ///< digital accumulation of the VMAC output

    [[nodiscard]] double total_fj() const { return adc_fj + mult_fj + digital_fj; }
};

/// Tunable component costs. Defaults follow the paper's assumptions: the
/// ADC dominates and everything else is (optionally) small but nonzero.
struct VmacEnergyModel {
    /// Energy of one D-to-A multiply, fJ (switched-capacitor multipliers
    /// are O(1-10 fJ) at 8b in 28 nm, e.g. Bankman & Murmann 2016).
    double mult_fj_per_op = 0.0;
    /// Energy of one digital add in the accumulation tree, fJ.
    double digital_fj_per_add = 0.0;
    /// Multiplier on the Eq. 3 ADC bound (1.0 = state-of-the-art).
    double adc_margin = 1.0;

    /// Breakdown for one VMAC at (enob, nmult).
    /// Throws std::invalid_argument on non-positive enob / zero nmult.
    [[nodiscard]] VmacEnergyBreakdown vmac_energy(double enob, std::size_t nmult) const;

    /// Energy per MAC = total VMAC energy / Nmult, fJ.
    [[nodiscard]] double emac_fj(double enob, std::size_t nmult) const;

    /// Breakdown for one VMAC-sized chunk through a hardware backend,
    /// priced from its reported conversion profile: the ADC term covers
    /// every conversion class at its own resolution (partitioning pays
    /// NW*NX cheap conversions, delta-sigma amortizes one expensive final
    /// conversion over `chunks_per_output` chunks), and the digital term
    /// pays one add per conversion. Throws on chunks_per_output == 0.
    [[nodiscard]] VmacEnergyBreakdown backend_vmac_energy(
        const vmac::VmacBackend& backend, std::size_t chunks_per_output) const;

    /// Energy per MAC through `backend` = chunk energy / Nmult, fJ.
    [[nodiscard]] double backend_emac_fj(const vmac::VmacBackend& backend,
                                         std::size_t chunks_per_output) const;
};

/// Total ADC conversion energy (fJ) of one output accumulator computed as
/// `chunks` VMAC-sized chunks under a backend's conversion profile:
///   sum_i margin * E_ADC(enob_i) * (per_chunk_i * chunks + per_output_i).
[[nodiscard]] double profile_conversion_fj(const vmac::ConversionProfile& profile,
                                           std::size_t chunks, double adc_margin = 1.0);

/// One layer's contribution to network inference energy.
struct LayerEnergy {
    std::string name;
    std::size_t n_tot = 0;        ///< multiplications per output activation
    std::size_t outputs = 0;      ///< output activations per inference
    std::size_t macs = 0;         ///< n_tot * outputs
    std::size_t vmacs = 0;        ///< ceil(n_tot/nmult) * outputs
    double energy_nj = 0.0;       ///< layer energy per inference, nanojoules
};

/// Whole-network accounting: layer rows plus totals.
struct NetworkEnergyReport {
    std::vector<LayerEnergy> layers;
    std::size_t total_macs = 0;
    double total_nj = 0.0;
    [[nodiscard]] double mean_emac_fj() const {
        return total_macs == 0 ? 0.0 : total_nj * 1e6 / static_cast<double>(total_macs);
    }
};

/// Builds the report from per-layer (name, n_tot, outputs) descriptions.
/// Throws std::invalid_argument if any layer is degenerate.
[[nodiscard]] NetworkEnergyReport account_network(
    const std::vector<LayerEnergy>& layer_shapes, const VmacEnergyModel& model, double enob,
    std::size_t nmult);

/// Backend-priced accounting: every layer's conversion energy follows the
/// backend's profile, with per-output conversions amortized over that
/// layer's actual ceil(n_tot / nmult) chunk count.
[[nodiscard]] NetworkEnergyReport account_network(
    const std::vector<LayerEnergy>& layer_shapes, const VmacEnergyModel& model,
    const vmac::VmacBackend& backend);

}  // namespace ams::energy
