// ExecutionPlan::run — the flat, dispatch-free interpreter over the
// compiled steps. Every kernel call here is the *same* primitive the
// module walk uses (conv_eval_run, gemm_bt, simd::*, normalize_eval,
// forward_planned, pool_eval, reduce), applied over the same extents in
// the same order, which is what makes default-options plans bit-identical
// to root.forward(input, ctx).
#include "compile/plan.hpp"

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/conv_eval.hpp"
#include "runtime/metrics.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/simd.hpp"
#include "runtime/trace.hpp"
#include "tensor/gemm.hpp"
#include "tensor/gemm_kernels.hpp"

namespace ams::compile {

namespace {

namespace metrics = runtime::metrics;

/// The compiled shape with its batch dimension replaced by the run-time
/// batch (offsets stay those of the compiled batch; extents scale).
Shape at_batch(const Shape& s, std::size_t batch) {
    std::vector<std::size_t> dims(s.dims().begin(), s.dims().end());
    dims[0] = batch;
    return Shape(dims);
}

void add_bias_rows(float* data, const float* bias, std::size_t batch, std::size_t channels,
                   std::size_t spatial) {
    for (std::size_t b = 0; b < batch; ++b) {
        float* image = data + b * channels * spatial;
        for (std::size_t c = 0; c < channels; ++c) {
            float* row = image + c * spatial;
            const float bv = bias[c];
            for (std::size_t i = 0; i < spatial; ++i) row[i] += bv;
        }
    }
}

/// Whole-tensor application of one tail op — the same primitive call the
/// module walk makes for the corresponding layer.
void apply_ew_whole(const EwOp& op, float* data, const Shape& shape) {
    const std::size_t n = shape.numel();
    switch (op.kind) {
        case EwOp::Kind::kInject:
            // A disabled injector is skipped entirely: in place there is
            // nothing to copy, and no noise epoch is consumed — exactly
            // the module path, which copies without consuming an epoch.
            if (op.injector->enabled()) {
                // Pass the leading dims so the chip-field pre-pass keys
                // offsets per output channel, identically to the module
                // walk's shape-aware inject().
                op.injector->inject_inplace(data, n, shape.rank() > 0 ? shape.dim(0) : 1,
                                            shape.rank() > 1 ? shape.dim(1) : 1);
            }
            break;
        case EwOp::Kind::kRecord:
            if (op.unit->recording()) {
                op.unit->stats().accumulate(Tensor::borrowed(shape, data));
            }
            break;
        case EwOp::Kind::kBatchNorm: {
            const std::size_t spatial = shape.rank() == 4 ? shape.dim(2) * shape.dim(3) : 1;
            op.bn->normalize_eval(data, data, shape.dim(0), spatial);
            break;
        }
        case EwOp::Kind::kBias: {
            const std::size_t spatial = shape.rank() == 4 ? shape.dim(2) * shape.dim(3) : 1;
            add_bias_rows(data, op.bias, shape.dim(0), shape.dim(1), spatial);
            break;
        }
        case EwOp::Kind::kRelu:
            simd::relu(data, data, n);
            break;
        case EwOp::Kind::kClippedRelu:
            simd::clipped_relu(data, data, n, op.ceiling);
            break;
        case EwOp::Kind::kQuantAct:
            if (op.bits >= 32) {
                simd::clamp(data, data, n, 0.0f, 1.0f);
            } else {
                simd::quantize_unit(data, data, n, static_cast<float>(op.levels));
            }
            break;
    }
}

/// Per-image GEMM epilogue over the in-loop-eligible prefix of a conv
/// step's tail. On the fp32 path only kBias and kBatchNorm do work here;
/// the integer path additionally runs activations in-loop (all are
/// per-element, so per-image and whole-tensor application coincide
/// bit-for-bit). Eligible no-ops (disabled inject, inactive record) are
/// skipped.
struct ConvTailEpilogue {
    const Step* step;
    std::size_t n_inloop;
    std::size_t out_spatial;

    static void apply(void* self, float* out_image, std::size_t /*image_index*/) {
        const auto* e = static_cast<const ConvTailEpilogue*>(self);
        const std::size_t n_img = e->step->out_channels * e->out_spatial;
        for (std::size_t i = 0; i < e->n_inloop; ++i) {
            const EwOp& op = e->step->tail[i];
            switch (op.kind) {
                case EwOp::Kind::kBias: {
                    for (std::size_t oc = 0; oc < e->step->out_channels; ++oc) {
                        float* row = out_image + oc * e->out_spatial;
                        const float bv = op.bias[oc];
                        for (std::size_t j = 0; j < e->out_spatial; ++j) row[j] += bv;
                    }
                    break;
                }
                case EwOp::Kind::kBatchNorm:
                    op.bn->normalize_eval(out_image, out_image, 1, e->out_spatial);
                    break;
                case EwOp::Kind::kRelu:
                    simd::relu(out_image, out_image, n_img);
                    break;
                case EwOp::Kind::kClippedRelu:
                    simd::clipped_relu(out_image, out_image, n_img, op.ceiling);
                    break;
                case EwOp::Kind::kQuantAct:
                    if (op.bits >= 32) {
                        simd::clamp(out_image, out_image, n_img, 0.0f, 1.0f);
                    } else {
                        simd::quantize_unit(out_image, out_image, n_img,
                                            static_cast<float>(op.levels));
                    }
                    break;
                default:
                    break;  // eligible no-ops
            }
        }
    }
};

/// Splits a conv tail at run time into the in-loop prefix (ops that are
/// bit-identical per image: bias, batch norm, and currently-inactive
/// inject/record) and the whole-tensor suffix (everything from the first
/// op whose whole-tensor order matters: active injection consumes its
/// noise epoch over the full tensor, active recording accumulates a
/// serial double sum, activations follow). Re-evaluated every run so
/// toggling an injector or recording after compile stays correct.
struct TailSplit {
    std::size_t n_inloop = 0;
    bool inloop_work = false;
};

TailSplit split_tail(const Step& step) {
    TailSplit split;
    for (const EwOp& op : step.tail) {
        bool eligible = false;
        bool work = false;
        switch (op.kind) {
            case EwOp::Kind::kBias:
            case EwOp::Kind::kBatchNorm:
                eligible = true;
                work = true;
                break;
            case EwOp::Kind::kInject:
                eligible = !op.injector->enabled();
                break;
            case EwOp::Kind::kRecord:
                eligible = !op.unit->recording();
                break;
            default:
                eligible = false;
        }
        if (!eligible) break;
        ++split.n_inloop;
        split.inloop_work |= work;
    }
    return split;
}

/// Tail split for integer conv steps. The integer path is already a
/// toleranced realization (no whole-tensor bit-identity contract to
/// preserve against the module walk), so the per-element activations —
/// identical per-image vs whole-tensor — also run in-loop, fused right
/// after requantization.
TailSplit split_tail_int(const Step& step) {
    TailSplit split;
    for (const EwOp& op : step.tail) {
        bool eligible = false;
        bool work = false;
        switch (op.kind) {
            case EwOp::Kind::kBias:
            case EwOp::Kind::kBatchNorm:
            case EwOp::Kind::kRelu:
            case EwOp::Kind::kClippedRelu:
            case EwOp::Kind::kQuantAct:
                eligible = true;
                work = true;
                break;
            case EwOp::Kind::kInject:
                eligible = !op.injector->enabled();
                break;
            case EwOp::Kind::kRecord:
                eligible = !op.unit->recording();
                break;
        }
        if (!eligible) break;
        ++split.n_inloop;
        split.inloop_work |= work;
    }
    return split;
}

/// Scratch-slot namespace for the integer conv path: far above the fp32
/// conv's base = 4 * chunk ids, so the two numeric realizations of one
/// nn::Conv2d never collide in the (owner, slot) scratch registry.
/// Slot base - 1 holds the step's whole-input code buffer; per chunk,
/// base + 1 (kPackB) the panel, base + 2 the i32 accumulators, and
/// base + 3 the code columns — mirroring the fp32 layout.
constexpr int kIntSlotBase = 1 << 20;

/// Integer realization of one kConv step: encode the input value to grid
/// codes once, then per image run code-typed im2col, the packed integer
/// GEMM into an i32 accumulator, and a fused epilogue that requantizes
/// (one multiply per output) and applies the in-loop tail prefix.
void run_conv_int(const Step& step, const float* in, float* out, std::size_t batch,
                  runtime::EvalContext& ctx, const TailSplit& split) {
    runtime::trace::Span span("Conv2d.forward_int");
    const ConvLowering& low = step.lowering;
    const std::size_t patch = low.patch_size();
    const std::size_t out_spatial = low.out_spatial();
    const std::size_t out_image = step.out_channels * out_spatial;
    const std::size_t image = low.image_floats();
    const bool is8 = step.numeric == NumericMode::kInt8;
    const std::size_t code_bytes = is8 ? 1 : 2;

    // Encode the whole input value once per run. Element-wise and
    // chunk-independent, so the batch parallelism is free of ordering
    // effects.
    const std::size_t n_in = batch * image;
    float* codes_f = ctx.reserve_scratch(step.scratch_owner, kIntSlotBase - 1,
                                         (n_in * code_bytes + 3) / 4);
    runtime::parallel_for(
        0, n_in, runtime::suggest_grain(n_in, 4096), [&](std::size_t i0, std::size_t i1) {
            if (is8) {
                quant::encode_unit_u8(in + i0, i1 - i0, step.act_levels,
                                      reinterpret_cast<std::uint8_t*>(codes_f) + i0);
            } else if (step.act_signed) {
                quant::encode_signed_i16(in + i0, i1 - i0, step.act_levels,
                                         reinterpret_cast<std::int16_t*>(codes_f) + i0);
            } else {
                quant::encode_unit_u16(in + i0, i1 - i0, step.act_levels,
                                       reinterpret_cast<std::int16_t*>(codes_f) + i0);
            }
        });

    // Pointwise (1x1, stride 1, no padding) convolutions need no im2col
    // at all: the code image's (C, H*W) layout IS the (patch x
    // out_spatial) column matrix, so the GEMM reads the encoded input
    // directly. This covers most convs of a bottleneck-style network.
    const ConvGeometry& geo = low.geometry();
    const bool pointwise = geo.kernel_h == 1 && geo.kernel_w == 1 && geo.stride_h == 1 &&
                           geo.stride_w == 1 && geo.pad_h == 0 && geo.pad_w == 0;

    // Serial reservations, then the same batch-chunk structure as
    // conv_eval_run with the integer slot namespace.
    const std::size_t grain = runtime::suggest_grain(batch, 1);
    const std::size_t n_chunks = (batch + grain - 1) / grain;
    const std::size_t col_floats = (patch * out_spatial * code_bytes + 3) / 4;
    const std::size_t panel_floats = is8 ? packed_b_i8_floats(patch, out_spatial)
                                         : packed_b_i16_floats(patch, out_spatial);
    for (std::size_t c = 0; c < n_chunks; ++c) {
        const int base = kIntSlotBase + static_cast<int>(4 * c);
        if (!pointwise) (void)ctx.reserve_scratch(step.scratch_owner, base + 3, col_floats);
        (void)ctx.reserve_scratch(step.scratch_owner, base + GemmPackBuffers::kPackB,
                                  panel_floats);
        (void)ctx.reserve_scratch(step.scratch_owner, base + 2, out_image);
    }
    ConvTailEpilogue epilogue{&step, split.n_inloop, out_spatial};
    runtime::parallel_for(0, batch, grain, [&](std::size_t b_begin, std::size_t b_end) {
        const int base = kIntSlotBase + static_cast<int>(4 * (b_begin / grain));
        float* col_f = pointwise ? nullptr
                                 : ctx.reserve_scratch(step.scratch_owner, base + 3, col_floats);
        auto* acc = reinterpret_cast<std::int32_t*>(
            ctx.reserve_scratch(step.scratch_owner, base + 2, out_image));
        EvalContextPackBuffers pack(ctx, step.scratch_owner, base);
        for (std::size_t b = b_begin; b < b_end; ++b) {
            float* dst = out + b * out_image;
            if (is8) {
                const auto* img = reinterpret_cast<const std::uint8_t*>(codes_f) + b * image;
                const std::uint8_t* cols = img;
                if (!pointwise) {
                    im2col_u8(img, geo, reinterpret_cast<std::uint8_t*>(col_f));
                    cols = reinterpret_cast<const std::uint8_t*>(col_f);
                }
                gemm_s8u8(step.weight_i8, cols, acc, step.out_channels, patch, out_spatial,
                          &pack);
            } else {
                const auto* img = reinterpret_cast<const std::int16_t*>(codes_f) + b * image;
                const std::int16_t* cols = img;
                if (!pointwise) {
                    im2col_i16(img, geo, reinterpret_cast<std::int16_t*>(col_f));
                    cols = reinterpret_cast<const std::int16_t*>(col_f);
                }
                gemm_s16(step.weight_i16, cols, acc, step.out_channels, patch, out_spatial,
                         &pack);
            }
            // Fused requantization: the exact int32 dot of codes returns
            // to the value domain with one multiply per output.
            for (std::size_t i = 0; i < out_image; ++i) {
                dst[i] = static_cast<float>(acc[i]) * step.dequant;
            }
            if (split.n_inloop > 0) ConvTailEpilogue::apply(&epilogue, dst, b);
        }
    });
    metrics::add(metrics::Counter::kRequantOps,
                 static_cast<std::uint64_t>(batch) * out_image);
}

}  // namespace

Tensor ExecutionPlan::run(const Tensor& input, runtime::EvalContext& ctx) {
    const Shape& compiled = p_.input_shape;
    if (input.rank() != compiled.rank()) {
        throw std::invalid_argument("ExecutionPlan::run: input rank " +
                                    std::to_string(input.rank()) + " vs compiled " +
                                    compiled.str());
    }
    for (std::size_t d = 1; d < compiled.rank(); ++d) {
        if (input.dim(d) != compiled.dim(d)) {
            throw std::invalid_argument("ExecutionPlan::run: input " + input.shape().str() +
                                        " does not match compiled " + compiled.str());
        }
    }
    const std::size_t batch = input.dim(0);
    if (batch == 0 || batch > compiled.dim(0)) {
        throw std::invalid_argument("ExecutionPlan::run: batch " + std::to_string(batch) +
                                    " exceeds compiled maximum " +
                                    std::to_string(compiled.dim(0)));
    }

    runtime::trace::Span span("plan.run");
    metrics::add(metrics::Counter::kPlanRuns);

    // The plan's entire intermediate footprint: one block, one allocation,
    // inside the caller's checkpoint/rewind discipline.
    float* block = ctx.alloc_activation(p_.arena_floats);
    // The input tensor may be a const borrow; every step only reads it.
    float* external = const_cast<float*>(input.data());

    auto value_ptr = [&](int id) -> float* {
        const Value& v = p_.values[id];
        return v.external ? external : block + v.offset;
    };
    auto value_shape = [&](int id) { return at_batch(p_.values[id].shape, batch); };

    for (const Step& step : p_.steps) {
        switch (step.kind) {
            case StepKind::kQuantInput: {
                const float* src = value_ptr(step.in);
                float* dst = value_ptr(step.out);
                const std::size_t n = value_shape(step.out).numel();
                simd::scale_clamp(src, dst, n, step.inv_scale, -1.0f, 1.0f);
                if (step.bits < 32) {
                    simd::quantize_signed(dst, dst, n, static_cast<float>(step.levels));
                }
                break;
            }
            case StepKind::kConv: {
                if (step.numeric != NumericMode::kFp32) {
                    const TailSplit split = split_tail_int(step);
                    run_conv_int(step, value_ptr(step.in), value_ptr(step.out), batch, ctx,
                                 split);
                    const Shape out_shape = value_shape(step.out);
                    for (std::size_t i = split.n_inloop; i < step.tail.size(); ++i) {
                        apply_ew_whole(step.tail[i], value_ptr(step.out), out_shape);
                    }
                    break;
                }
                const TailSplit split = split_tail(step);
                ConvTailEpilogue epilogue{&step, split.n_inloop, step.lowering.out_spatial()};
                nn::conv_eval_run(value_ptr(step.in), batch, step.lowering, step.weight,
                                  step.out_channels, value_ptr(step.out), ctx,
                                  step.scratch_owner,
                                  split.inloop_work ? &ConvTailEpilogue::apply : nullptr,
                                  split.inloop_work ? &epilogue : nullptr);
                const Shape out_shape = value_shape(step.out);
                for (std::size_t i = split.n_inloop; i < step.tail.size(); ++i) {
                    apply_ew_whole(step.tail[i], value_ptr(step.out), out_shape);
                }
                break;
            }
            case StepKind::kVmacConv: {
                step.vmac->forward_planned(value_ptr(step.in), value_shape(step.in),
                                           value_ptr(step.out), ctx);
                const Shape out_shape = value_shape(step.out);
                for (const EwOp& op : step.tail) {
                    apply_ew_whole(op, value_ptr(step.out), out_shape);
                }
                break;
            }
            case StepKind::kLinear: {
                nn::Linear& lin = *step.linear;
                const std::size_t in_f = lin.in_features();
                const std::size_t out_f = lin.out_features();
                (void)ctx.reserve_scratch(&lin, GemmPackBuffers::kPackB,
                                          packed_b_floats(in_f, out_f));
                EvalContextPackBuffers pack(ctx, &lin, /*slot_base=*/0);
                float* dst = value_ptr(step.out);
                gemm_bt(value_ptr(step.in), step.weight, dst, batch, in_f, out_f, &pack);
                if (step.bias != nullptr) {
                    for (std::size_t b = 0; b < batch; ++b) {
                        float* row = dst + b * out_f;
                        for (std::size_t j = 0; j < out_f; ++j) row[j] += step.bias[j];
                    }
                }
                const Shape out_shape = value_shape(step.out);
                for (const EwOp& op : step.tail) {
                    apply_ew_whole(op, dst, out_shape);
                }
                break;
            }
            case StepKind::kElementwise: {
                const float* src = value_ptr(step.in);
                float* dst = value_ptr(step.out);
                const Shape shape = value_shape(step.out);
                const std::size_t n = shape.numel();
                switch (step.ew.kind) {
                    case EwOp::Kind::kRelu:
                        simd::relu(src, dst, n);
                        break;
                    case EwOp::Kind::kClippedRelu:
                        simd::clipped_relu(src, dst, n, step.ew.ceiling);
                        break;
                    case EwOp::Kind::kQuantAct:
                        if (step.ew.bits >= 32) {
                            simd::clamp(src, dst, n, 0.0f, 1.0f);
                        } else {
                            simd::quantize_unit(src, dst, n,
                                                static_cast<float>(step.ew.levels));
                        }
                        break;
                    case EwOp::Kind::kBatchNorm: {
                        const std::size_t spatial =
                            shape.rank() == 4 ? shape.dim(2) * shape.dim(3) : 1;
                        step.ew.bn->normalize_eval(src, dst, shape.dim(0), spatial);
                        break;
                    }
                    default:
                        // kInject / kRecord / kBias are in-place-or-copy ops.
                        if (dst != src) {
                            std::memcpy(dst, src, n * sizeof(float));
                        }
                        apply_ew_whole(step.ew, dst, shape);
                        break;
                }
                break;
            }
            case StepKind::kMaxPool: {
                const Tensor in = Tensor::borrowed(value_shape(step.in),
                                                   value_ptr(step.in));
                step.maxpool->pool_eval(in, value_ptr(step.out));
                break;
            }
            case StepKind::kGlobalAvgPool: {
                const Tensor in = Tensor::borrowed(value_shape(step.in),
                                                   value_ptr(step.in));
                nn::GlobalAvgPool::reduce(in, value_ptr(step.out));
                break;
            }
            case StepKind::kResidualAdd: {
                // Tensor::operator+= is a serial loop; keep the exact
                // element order of the module walk's `m += shortcut`.
                float* dst = value_ptr(step.out);
                const float* src = value_ptr(step.in2);
                const std::size_t n = value_shape(step.out).numel();
                for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
                break;
            }
        }
    }

    return Tensor::borrowed(value_shape(p_.output_value), value_ptr(p_.output_value));
}

}  // namespace ams::compile
