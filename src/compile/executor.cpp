// ExecutionPlan::run — the flat, dispatch-free interpreter over the
// compiled steps. Every kernel call here is the *same* primitive the
// module walk uses (conv_eval_run, gemm_bt, simd::*, normalize_eval,
// forward_planned, pool_eval, reduce), applied over the same extents in
// the same order, which is what makes default-options plans bit-identical
// to root.forward(input, ctx).
#include "compile/plan.hpp"

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/conv_eval.hpp"
#include "runtime/metrics.hpp"
#include "runtime/simd.hpp"
#include "runtime/trace.hpp"
#include "tensor/gemm.hpp"
#include "tensor/gemm_kernels.hpp"

namespace ams::compile {

namespace {

namespace metrics = runtime::metrics;

/// The compiled shape with its batch dimension replaced by the run-time
/// batch (offsets stay those of the compiled batch; extents scale).
Shape at_batch(const Shape& s, std::size_t batch) {
    std::vector<std::size_t> dims(s.dims().begin(), s.dims().end());
    dims[0] = batch;
    return Shape(dims);
}

void add_bias_rows(float* data, const float* bias, std::size_t batch, std::size_t channels,
                   std::size_t spatial) {
    for (std::size_t b = 0; b < batch; ++b) {
        float* image = data + b * channels * spatial;
        for (std::size_t c = 0; c < channels; ++c) {
            float* row = image + c * spatial;
            const float bv = bias[c];
            for (std::size_t i = 0; i < spatial; ++i) row[i] += bv;
        }
    }
}

/// Whole-tensor application of one tail op — the same primitive call the
/// module walk makes for the corresponding layer.
void apply_ew_whole(const EwOp& op, float* data, const Shape& shape) {
    const std::size_t n = shape.numel();
    switch (op.kind) {
        case EwOp::Kind::kInject:
            // A disabled injector is skipped entirely: in place there is
            // nothing to copy, and no noise epoch is consumed — exactly
            // the module path, which copies without consuming an epoch.
            if (op.injector->enabled()) op.injector->inject_inplace(data, n);
            break;
        case EwOp::Kind::kRecord:
            if (op.unit->recording()) {
                op.unit->stats().accumulate(Tensor::borrowed(shape, data));
            }
            break;
        case EwOp::Kind::kBatchNorm: {
            const std::size_t spatial = shape.rank() == 4 ? shape.dim(2) * shape.dim(3) : 1;
            op.bn->normalize_eval(data, data, shape.dim(0), spatial);
            break;
        }
        case EwOp::Kind::kBias: {
            const std::size_t spatial = shape.rank() == 4 ? shape.dim(2) * shape.dim(3) : 1;
            add_bias_rows(data, op.bias, shape.dim(0), shape.dim(1), spatial);
            break;
        }
        case EwOp::Kind::kRelu:
            simd::relu(data, data, n);
            break;
        case EwOp::Kind::kClippedRelu:
            simd::clipped_relu(data, data, n, op.ceiling);
            break;
        case EwOp::Kind::kQuantAct:
            if (op.bits >= 32) {
                simd::clamp(data, data, n, 0.0f, 1.0f);
            } else {
                simd::quantize_unit(data, data, n, static_cast<float>(op.levels));
            }
            break;
    }
}

/// Per-image GEMM epilogue over the in-loop-eligible prefix of a conv
/// step's tail. Only kBias and kBatchNorm do work here (both are
/// row-granularity identical between per-image and whole-tensor
/// application); eligible no-ops (disabled inject, inactive record) are
/// skipped.
struct ConvTailEpilogue {
    const Step* step;
    std::size_t n_inloop;
    std::size_t out_spatial;

    static void apply(void* self, float* out_image, std::size_t /*image_index*/) {
        const auto* e = static_cast<const ConvTailEpilogue*>(self);
        for (std::size_t i = 0; i < e->n_inloop; ++i) {
            const EwOp& op = e->step->tail[i];
            switch (op.kind) {
                case EwOp::Kind::kBias: {
                    for (std::size_t oc = 0; oc < e->step->out_channels; ++oc) {
                        float* row = out_image + oc * e->out_spatial;
                        const float bv = op.bias[oc];
                        for (std::size_t j = 0; j < e->out_spatial; ++j) row[j] += bv;
                    }
                    break;
                }
                case EwOp::Kind::kBatchNorm:
                    op.bn->normalize_eval(out_image, out_image, 1, e->out_spatial);
                    break;
                default:
                    break;  // eligible no-ops
            }
        }
    }
};

/// Splits a conv tail at run time into the in-loop prefix (ops that are
/// bit-identical per image: bias, batch norm, and currently-inactive
/// inject/record) and the whole-tensor suffix (everything from the first
/// op whose whole-tensor order matters: active injection consumes its
/// noise epoch over the full tensor, active recording accumulates a
/// serial double sum, activations follow). Re-evaluated every run so
/// toggling an injector or recording after compile stays correct.
struct TailSplit {
    std::size_t n_inloop = 0;
    bool inloop_work = false;
};

TailSplit split_tail(const Step& step) {
    TailSplit split;
    for (const EwOp& op : step.tail) {
        bool eligible = false;
        bool work = false;
        switch (op.kind) {
            case EwOp::Kind::kBias:
            case EwOp::Kind::kBatchNorm:
                eligible = true;
                work = true;
                break;
            case EwOp::Kind::kInject:
                eligible = !op.injector->enabled();
                break;
            case EwOp::Kind::kRecord:
                eligible = !op.unit->recording();
                break;
            default:
                eligible = false;
        }
        if (!eligible) break;
        ++split.n_inloop;
        split.inloop_work |= work;
    }
    return split;
}

}  // namespace

Tensor ExecutionPlan::run(const Tensor& input, runtime::EvalContext& ctx) {
    const Shape& compiled = p_.input_shape;
    if (input.rank() != compiled.rank()) {
        throw std::invalid_argument("ExecutionPlan::run: input rank " +
                                    std::to_string(input.rank()) + " vs compiled " +
                                    compiled.str());
    }
    for (std::size_t d = 1; d < compiled.rank(); ++d) {
        if (input.dim(d) != compiled.dim(d)) {
            throw std::invalid_argument("ExecutionPlan::run: input " + input.shape().str() +
                                        " does not match compiled " + compiled.str());
        }
    }
    const std::size_t batch = input.dim(0);
    if (batch == 0 || batch > compiled.dim(0)) {
        throw std::invalid_argument("ExecutionPlan::run: batch " + std::to_string(batch) +
                                    " exceeds compiled maximum " +
                                    std::to_string(compiled.dim(0)));
    }

    runtime::trace::Span span("plan.run");
    metrics::add(metrics::Counter::kPlanRuns);

    // The plan's entire intermediate footprint: one block, one allocation,
    // inside the caller's checkpoint/rewind discipline.
    float* block = ctx.alloc_activation(p_.arena_floats);
    // The input tensor may be a const borrow; every step only reads it.
    float* external = const_cast<float*>(input.data());

    auto value_ptr = [&](int id) -> float* {
        const Value& v = p_.values[id];
        return v.external ? external : block + v.offset;
    };
    auto value_shape = [&](int id) { return at_batch(p_.values[id].shape, batch); };

    for (const Step& step : p_.steps) {
        switch (step.kind) {
            case StepKind::kQuantInput: {
                const float* src = value_ptr(step.in);
                float* dst = value_ptr(step.out);
                const std::size_t n = value_shape(step.out).numel();
                simd::scale_clamp(src, dst, n, step.inv_scale, -1.0f, 1.0f);
                if (step.bits < 32) {
                    simd::quantize_signed(dst, dst, n, static_cast<float>(step.levels));
                }
                break;
            }
            case StepKind::kConv: {
                const TailSplit split = split_tail(step);
                ConvTailEpilogue epilogue{&step, split.n_inloop, step.lowering.out_spatial()};
                nn::conv_eval_run(value_ptr(step.in), batch, step.lowering, step.weight,
                                  step.out_channels, value_ptr(step.out), ctx,
                                  step.scratch_owner,
                                  split.inloop_work ? &ConvTailEpilogue::apply : nullptr,
                                  split.inloop_work ? &epilogue : nullptr);
                const Shape out_shape = value_shape(step.out);
                for (std::size_t i = split.n_inloop; i < step.tail.size(); ++i) {
                    apply_ew_whole(step.tail[i], value_ptr(step.out), out_shape);
                }
                break;
            }
            case StepKind::kVmacConv: {
                step.vmac->forward_planned(value_ptr(step.in), value_shape(step.in),
                                           value_ptr(step.out), ctx);
                const Shape out_shape = value_shape(step.out);
                for (const EwOp& op : step.tail) {
                    apply_ew_whole(op, value_ptr(step.out), out_shape);
                }
                break;
            }
            case StepKind::kLinear: {
                nn::Linear& lin = *step.linear;
                const std::size_t in_f = lin.in_features();
                const std::size_t out_f = lin.out_features();
                (void)ctx.reserve_scratch(&lin, GemmPackBuffers::kPackB,
                                          packed_b_floats(in_f, out_f));
                EvalContextPackBuffers pack(ctx, &lin, /*slot_base=*/0);
                float* dst = value_ptr(step.out);
                gemm_bt(value_ptr(step.in), step.weight, dst, batch, in_f, out_f, &pack);
                if (step.bias != nullptr) {
                    for (std::size_t b = 0; b < batch; ++b) {
                        float* row = dst + b * out_f;
                        for (std::size_t j = 0; j < out_f; ++j) row[j] += step.bias[j];
                    }
                }
                const Shape out_shape = value_shape(step.out);
                for (const EwOp& op : step.tail) {
                    apply_ew_whole(op, dst, out_shape);
                }
                break;
            }
            case StepKind::kElementwise: {
                const float* src = value_ptr(step.in);
                float* dst = value_ptr(step.out);
                const Shape shape = value_shape(step.out);
                const std::size_t n = shape.numel();
                switch (step.ew.kind) {
                    case EwOp::Kind::kRelu:
                        simd::relu(src, dst, n);
                        break;
                    case EwOp::Kind::kClippedRelu:
                        simd::clipped_relu(src, dst, n, step.ew.ceiling);
                        break;
                    case EwOp::Kind::kQuantAct:
                        if (step.ew.bits >= 32) {
                            simd::clamp(src, dst, n, 0.0f, 1.0f);
                        } else {
                            simd::quantize_unit(src, dst, n,
                                                static_cast<float>(step.ew.levels));
                        }
                        break;
                    case EwOp::Kind::kBatchNorm: {
                        const std::size_t spatial =
                            shape.rank() == 4 ? shape.dim(2) * shape.dim(3) : 1;
                        step.ew.bn->normalize_eval(src, dst, shape.dim(0), spatial);
                        break;
                    }
                    default:
                        // kInject / kRecord / kBias are in-place-or-copy ops.
                        if (dst != src) {
                            std::memcpy(dst, src, n * sizeof(float));
                        }
                        apply_ew_whole(step.ew, dst, shape);
                        break;
                }
                break;
            }
            case StepKind::kMaxPool: {
                const Tensor in = Tensor::borrowed(value_shape(step.in),
                                                   value_ptr(step.in));
                step.maxpool->pool_eval(in, value_ptr(step.out));
                break;
            }
            case StepKind::kGlobalAvgPool: {
                const Tensor in = Tensor::borrowed(value_shape(step.in),
                                                   value_ptr(step.in));
                nn::GlobalAvgPool::reduce(in, value_ptr(step.out));
                break;
            }
            case StepKind::kResidualAdd: {
                // Tensor::operator+= is a serial loop; keep the exact
                // element order of the module walk's `m += shortcut`.
                float* dst = value_ptr(step.out);
                const float* src = value_ptr(step.in2);
                const std::size_t n = value_shape(step.out).numel();
                for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
                break;
            }
        }
    }

    return Tensor::borrowed(value_shape(p_.output_value), value_ptr(p_.output_value));
}

}  // namespace ams::compile
