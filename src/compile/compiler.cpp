// Plan construction: the typed structure walk, epilogue fusion, optional
// BN folding, liveness-based arena layout, and the textual IR dump.
// Execution lives in executor.cpp.
#include "compile/plan.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "models/blocks.hpp"
#include "models/fold.hpp"
#include "models/resnet.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/sequential.hpp"
#include "quant/dorefa.hpp"
#include "quant/quant_modules.hpp"
#include "runtime/metrics.hpp"
#include "runtime/trace.hpp"

namespace ams::compile {

namespace {

namespace metrics = runtime::metrics;

/// Arena slots are 16-float (64-byte) aligned so every value base has the
/// same alignment class as a module-walk arena allocation — a precondition
/// of the whole-tensor bit-identity argument for SIMD elementwise tails.
std::size_t align16(std::size_t n) {
    return (n + 15) / 16 * 16;
}

bool has_tail(StepKind kind) {
    return kind == StepKind::kConv || kind == StepKind::kVmacConv || kind == StepKind::kLinear;
}

/// True for tail ops that replace a whole module-walk layer (and its
/// arena output); kBias / kRecord are parts of their parent layer.
bool counts_as_layer(EwOp::Kind kind) {
    return kind == EwOp::Kind::kInject || kind == EwOp::Kind::kBatchNorm ||
           kind == EwOp::Kind::kRelu || kind == EwOp::Kind::kClippedRelu ||
           kind == EwOp::Kind::kQuantAct;
}

const char* ew_name(EwOp::Kind kind) {
    switch (kind) {
        case EwOp::Kind::kInject: return "inject";
        case EwOp::Kind::kRecord: return "record";
        case EwOp::Kind::kBatchNorm: return "bn";
        case EwOp::Kind::kBias: return "bias";
        case EwOp::Kind::kRelu: return "relu";
        case EwOp::Kind::kClippedRelu: return "clipped_relu";
        case EwOp::Kind::kQuantAct: return "quant_act";
    }
    return "?";
}

/// Integer-mode eligibility for one conv GEMM (DESIGN.md §14). int8
/// requires unsigned activation codes (vpmaddubsw takes one unsigned
/// operand) and both code magnitudes <= 127; int16 takes either
/// signedness up to 32767. Both require the int32 accumulator bound
/// over the patch depth.
NumericMode resolve_numeric(GemmIntMode mode, std::size_t w_levels,
                            const quant::QuantGrid& act, std::size_t patch) {
    const bool acc_ok = int_accumulator_safe(w_levels, act.levels, patch);
    const bool int8_ok =
        acc_ok && !act.is_signed && w_levels <= 127 && act.levels <= 127;
    const bool int16_ok = acc_ok && w_levels <= 32767 && act.levels <= 32767;
    switch (mode) {
        case GemmIntMode::kInt8: return int8_ok ? NumericMode::kInt8 : NumericMode::kFp32;
        case GemmIntMode::kInt16:
            return int16_ok ? NumericMode::kInt16 : NumericMode::kFp32;
        case GemmIntMode::kAuto:
            if (int8_ok) return NumericMode::kInt8;
            return int16_ok ? NumericMode::kInt16 : NumericMode::kFp32;
        case GemmIntMode::kOff: break;
    }
    return NumericMode::kFp32;
}

const char* step_name(StepKind kind) {
    switch (kind) {
        case StepKind::kQuantInput: return "quant_input";
        case StepKind::kConv: return "conv";
        case StepKind::kVmacConv: return "vmac_conv";
        case StepKind::kLinear: return "linear";
        case StepKind::kElementwise: return "elementwise";
        case StepKind::kMaxPool: return "maxpool";
        case StepKind::kGlobalAvgPool: return "global_avg_pool";
        case StepKind::kResidualAdd: return "residual_add";
    }
    return "?";
}

/// Builds a Program by walking the module graph in exactly the order the
/// module-walk forward visits it, emitting flat steps.
class Builder {
public:
    Builder(nn::Module& root, const Shape& input, const CompileOptions& options) {
        p_.input_shape = input;
        p_.root_name = root.name();
        p_.options = options;
        Value in;
        in.shape = input;
        in.external = true;
        in.label = "input";
        p_.values.push_back(std::move(in));
        cur_ = 0;
    }

    Program build(nn::Module& root) {
        lower(root);
        p_.output_value = cur_;
        assign_offsets();
        p_.stats.steps = p_.steps.size();
        p_.stats.plan_floats = p_.arena_floats;
        return std::move(p_);
    }

private:
    // ----- value / step bookkeeping -----

    Shape shape_of(int v) const { return p_.values[v].shape; }

    int new_value(Shape shape, std::string label) {
        Value v;
        v.shape = std::move(shape);
        v.def_step = static_cast<int>(p_.steps.size());
        v.last_use = v.def_step;
        v.label = std::move(label);
        p_.values.push_back(std::move(v));
        return static_cast<int>(p_.values.size()) - 1;
    }

    void use(int v) {
        if (v >= 0) {
            p_.values[v].last_use =
                std::max(p_.values[v].last_use, static_cast<int>(p_.steps.size()));
        }
    }

    void push(Step s) {
        use(s.in);
        use(s.in2);
        use(s.out);
        p_.steps.push_back(std::move(s));
    }

    bool pinned(int v) const { return pinned_.count(v) != 0; }

    // ----- value grid tracking (integer numeric domain) -----
    //
    // grids_[v] describes the grid of value v's *contents at the current
    // program point*: set when the last write is QuantInput / QuantAct,
    // cleared when any other write lands on it. Value ids are never
    // reused, so fresh values can't inherit stale grids.

    const quant::QuantGrid* grid_of(int v) const {
        const auto it = grids_.find(v);
        return it == grids_.end() ? nullptr : &it->second;
    }

    void set_grid(int v, quant::QuantGrid g) { grids_[v] = g; }
    void clear_grid(int v) { grids_.erase(v); }

    /// Grid effect of one elementwise write onto `v`. kRecord only reads;
    /// kQuantAct re-establishes the unsigned activation grid; everything
    /// else (bn, bias, relu, inject, ...) takes the value off-grid. An
    /// injector may be toggled after compile, so kInject conservatively
    /// clears even though a tail ending in kQuantAct re-grids anyway.
    void apply_grid_effect(const EwOp& op, int v) {
        if (op.kind == EwOp::Kind::kRecord) return;
        if (op.kind == EwOp::Kind::kQuantAct && op.bits < quant::kFloatBits) {
            set_grid(v, quant::QuantGrid{op.levels, /*is_signed=*/false});
            return;
        }
        clear_grid(v);
    }

    // ----- owned weight storage -----

    const float* own_copy(const Tensor& t) {
        p_.owned.emplace_back(t.data(), t.data() + t.size());
        return p_.owned.back().data();
    }

    /// Pre-quantizes `w` on the DoReFa grid for bits < 32 (bit-for-bit
    /// the per-pass quantization of the module walk); aliasing of latent
    /// FP32 weights is the caller's choice.
    const float* own_quantized(const Tensor& w, std::size_t bits) {
        p_.owned.emplace_back(w.size());
        quant::dorefa_quantize_weights_into(w, bits, p_.owned.back().data());
        return p_.owned.back().data();
    }

    // ----- elementwise emission (fusion pass) -----

    /// Emits one elementwise layer: fused into the preceding step's tail
    /// when legal, else standalone (in place when its input has no later
    /// use). `alloc_floats` is what the module walk would allocate for it.
    void emit_ew(EwOp op, const std::string& label) {
        const bool is_record = op.kind == EwOp::Kind::kRecord;
        if (!is_record) p_.stats.module_walk_floats += shape_of(cur_).numel();
        const bool fusible = (p_.options.fuse || is_record) && !p_.steps.empty() &&
                             has_tail(p_.steps.back().kind) && p_.steps.back().out == cur_ &&
                             !pinned(cur_);
        if (fusible) {
            apply_grid_effect(op, cur_);
            p_.steps.back().tail.push_back(op);
            if (counts_as_layer(op.kind)) {
                ++p_.stats.layers_fused;
                ++p_.stats.intermediates_eliminated;
            }
            return;
        }
        Step s;
        s.kind = StepKind::kElementwise;
        s.ew = op;
        s.in = cur_;
        s.label = label;
        const bool in_place =
            is_record ||
            (p_.options.fuse && !pinned(cur_) && !p_.values[cur_].external);
        if (in_place) {
            s.out = cur_;
            if (counts_as_layer(op.kind)) ++p_.stats.intermediates_eliminated;
        } else {
            s.out = new_value(shape_of(cur_), label);
        }
        const int out = s.out;
        apply_grid_effect(s.ew, out);
        push(std::move(s));
        cur_ = out;
    }

    // ----- module lowering -----

    void lower(nn::Module& m) {
        if (auto* net = dynamic_cast<models::ResNet*>(&m)) return lower_resnet(*net);
        if (auto* blk = dynamic_cast<models::BottleneckBlock*>(&m)) return lower_bottleneck(*blk);
        if (auto* blk = dynamic_cast<models::BasicBlock*>(&m)) return lower_basic(*blk);
        if (auto* unit = dynamic_cast<models::ConvUnit*>(&m)) return lower_conv_unit(*unit);
        if (auto* seq = dynamic_cast<nn::Sequential*>(&m)) {
            for (std::size_t i = 0; i < seq->size(); ++i) lower(seq->child(i));
            return;
        }
        if (auto* qi = dynamic_cast<quant::QuantInput*>(&m)) return lower_quant_input(*qi);
        if (auto* qa = dynamic_cast<quant::QuantAct*>(&m)) {
            EwOp op;
            op.kind = EwOp::Kind::kQuantAct;
            op.bits = qa->bits();
            op.levels = qa->bits() < quant::kFloatBits ? quant::magnitude_levels(qa->bits()) : 1;
            return emit_ew(op, "quant_act");
        }
        if (dynamic_cast<nn::ReLU*>(&m) != nullptr) {
            EwOp op;
            op.kind = EwOp::Kind::kRelu;
            return emit_ew(op, "relu");
        }
        if (auto* cr = dynamic_cast<nn::ClippedReLU*>(&m)) {
            EwOp op;
            op.kind = EwOp::Kind::kClippedRelu;
            op.ceiling = cr->ceiling();
            return emit_ew(op, "clipped_relu");
        }
        if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&m)) {
            EwOp op;
            op.kind = EwOp::Kind::kBatchNorm;
            op.bn = bn;
            return emit_ew(op, "bn");
        }
        if (auto* inj = dynamic_cast<vmac::ErrorInjector*>(&m)) {
            EwOp op;
            op.kind = EwOp::Kind::kInject;
            op.injector = inj;
            return emit_ew(op, "inject");
        }
        if (auto* vc = dynamic_cast<vmac::VmacConv2d*>(&m)) return lower_vmac(*vc);
        if (auto* mp = dynamic_cast<nn::MaxPool2d*>(&m)) return lower_maxpool(*mp);
        if (auto* gap = dynamic_cast<nn::GlobalAvgPool*>(&m)) return lower_gap(*gap);
        if (auto* qc = dynamic_cast<quant::QuantConv2d*>(&m)) {
            return lower_conv(qc->conv(), qc->bits_w(), nullptr, "conv");
        }
        if (auto* conv = dynamic_cast<nn::Conv2d*>(&m)) {
            return lower_conv(*conv, quant::kFloatBits, nullptr, "conv");
        }
        if (auto* ql = dynamic_cast<quant::QuantLinear*>(&m)) {
            return lower_linear(ql->linear(), ql->bits_w());
        }
        if (auto* lin = dynamic_cast<nn::Linear*>(&m)) {
            return lower_linear(*lin, quant::kFloatBits);
        }
        throw CompileError("compile: unsupported module type '" + m.name() + "'");
    }

    void lower_quant_input(quant::QuantInput& qi) {
        Step s;
        s.kind = StepKind::kQuantInput;
        s.in = cur_;
        s.inv_scale = 1.0f / qi.max_abs_input();
        s.bits = qi.bits();
        s.levels = qi.bits() < quant::kFloatBits ? quant::magnitude_levels(qi.bits()) : 1;
        s.label = "quant_input";
        s.out = new_value(shape_of(cur_), "quant_input");
        p_.stats.module_walk_floats += shape_of(cur_).numel();
        const int out = s.out;
        if (s.bits < quant::kFloatBits) {
            set_grid(out, quant::QuantGrid{s.levels, /*is_signed=*/true});
        }
        push(std::move(s));
        cur_ = out;
    }

    /// Emits one eval-mode convolution through the shared conv executor.
    /// `folded_bias` is the digital bias of a BN fold (null otherwise).
    void lower_conv(nn::Conv2d& conv, std::size_t bits_w, const Tensor* fold_weight,
                    const std::string& label, const float* folded_bias = nullptr) {
        const nn::Conv2dOptions& o = conv.options();
        const Shape in_shape = shape_of(cur_);
        if (in_shape.rank() != 4 || in_shape.dim(1) != o.in_channels) {
            throw CompileError("compile: conv expects NCHW with " +
                               std::to_string(o.in_channels) + " channels, got " +
                               in_shape.str());
        }
        ConvGeometry g{o.in_channels, in_shape.dim(2), in_shape.dim(3), o.kernel, o.kernel,
                       o.stride,      o.stride,        o.padding,       o.padding};
        g.validate();
        const ConvLowering low(g);

        Step s;
        s.kind = StepKind::kConv;
        s.lowering = low;
        s.out_channels = o.out_channels;
        s.scratch_owner = &conv;
        const Tensor& latent = fold_weight != nullptr ? *fold_weight : conv.weight().value;
        if (bits_w < quant::kFloatBits) {
            s.weight = own_quantized(latent, bits_w);
            // Integer numeric domain: eligible when this conv's input is
            // known to sit on a quantization grid that fits the requested
            // code width. The codes are encoded once here, from the same
            // owned quantized-float weights the fp32 path multiplies.
            if (p_.options.gemm_int != GemmIntMode::kOff) {
                if (const quant::QuantGrid* in_grid = grid_of(cur_)) {
                    const std::size_t w_levels = quant::magnitude_levels(bits_w);
                    const NumericMode numeric = resolve_numeric(
                        p_.options.gemm_int, w_levels, *in_grid, low.patch_size());
                    if (numeric != NumericMode::kFp32) {
                        p_.owned_codes.emplace_back(
                            p_.owned.back().data(), latent.size(),
                            quant::QuantGrid{w_levels, /*is_signed=*/true},
                            /*force_wide=*/numeric == NumericMode::kInt16);
                        const quant::QuantizedView wv = p_.owned_codes.back().view();
                        s.numeric = numeric;
                        s.weight_i8 = wv.i8;
                        s.weight_i16 = wv.i16;
                        s.act_levels = in_grid->levels;
                        s.act_signed = in_grid->is_signed;
                        s.dequant = 1.0f / (static_cast<float>(w_levels) *
                                            static_cast<float>(in_grid->levels));
                    }
                }
            }
        } else if (fold_weight != nullptr) {
            s.weight = own_copy(latent);
        } else {
            s.weight = latent.data();
        }
        if (folded_bias != nullptr) {
            EwOp b;
            b.kind = EwOp::Kind::kBias;
            b.bias = folded_bias;
            s.tail.push_back(b);
        } else if (conv.bias() != nullptr) {
            // The layer's own digital bias is part of the conv step, not
            // of the fusion pass (the module walk applies it inside the
            // GEMM epilogue too).
            EwOp b;
            b.kind = EwOp::Kind::kBias;
            b.bias = conv.bias()->value.data();
            s.tail.push_back(b);
        }
        s.in = cur_;
        s.label = label;
        s.out = new_value(Shape{in_shape.dim(0), o.out_channels, low.out_h(), low.out_w()},
                          label);
        p_.stats.module_walk_floats += shape_of(s.out).numel();
        const int out = s.out;
        push(std::move(s));
        cur_ = out;
    }

    void lower_conv_unit(models::ConvUnit& unit) {
        quant::QuantConv2d& qc = unit.conv();
        const std::size_t bits_w = qc.bits_w();
        const float* fold_bias = nullptr;
        Tensor folded_weight;
        if (p_.options.fold_bn) {
            models::FoldedConv folded = models::fold_bn_into_conv(
                qc.conv().weight().value, unit.bn(), unit.bn().eps());
            fold_bias = own_copy(folded.bias);
            folded_weight = std::move(folded.weight);
        }
        lower_conv(qc.conv(), bits_w, p_.options.fold_bn ? &folded_weight : nullptr,
                   "conv_unit", fold_bias);

        // Same epilogue order as ConvUnit::forward: inject, record, then
        // batch norm — or, under fold_bn, the digital bias already rides
        // the conv step and the batch norm disappears.
        EwOp inject;
        inject.kind = EwOp::Kind::kInject;
        inject.injector = &unit.injector();
        emit_ew(inject, "inject");
        // The injector's arena copy exists on the module walk whether or
        // not it is enabled.
        EwOp record;
        record.kind = EwOp::Kind::kRecord;
        record.unit = &unit;
        emit_ew(record, "record");
        if (!p_.options.fold_bn) {
            EwOp bn;
            bn.kind = EwOp::Kind::kBatchNorm;
            bn.bn = &unit.bn();
            emit_ew(bn, "bn");
        } else {
            // Module-walk accounting still sees the BN output it no
            // longer needs to materialize.
            p_.stats.module_walk_floats += shape_of(cur_).numel();
            ++p_.stats.layers_fused;
            ++p_.stats.intermediates_eliminated;
        }
    }

    void lower_vmac(vmac::VmacConv2d& vc) {
        const Shape out_shape = vc.output_shape(shape_of(cur_));
        Step s;
        s.kind = StepKind::kVmacConv;
        s.vmac = &vc;
        s.in = cur_;
        s.label = "vmac_conv";
        s.out = new_value(out_shape, "vmac_conv");
        p_.stats.module_walk_floats += out_shape.numel();
        const int out = s.out;
        push(std::move(s));
        cur_ = out;
    }

    void lower_maxpool(nn::MaxPool2d& mp) {
        const Shape out_shape = mp.out_shape(shape_of(cur_));
        Step s;
        s.kind = StepKind::kMaxPool;
        s.maxpool = &mp;
        s.in = cur_;
        s.label = "maxpool";
        s.out = new_value(out_shape, "maxpool");
        p_.stats.module_walk_floats += out_shape.numel();
        const int out = s.out;
        // Max over on-grid values picks one of them, so the grid survives.
        if (const quant::QuantGrid* g = grid_of(s.in)) set_grid(out, *g);
        push(std::move(s));
        cur_ = out;
    }

    void lower_gap(nn::GlobalAvgPool&) {
        const Shape in_shape = shape_of(cur_);
        if (in_shape.rank() != 4) {
            throw CompileError("compile: GlobalAvgPool expects NCHW, got " + in_shape.str());
        }
        Step s;
        s.kind = StepKind::kGlobalAvgPool;
        s.in = cur_;
        s.label = "gap";
        s.out = new_value(Shape{in_shape.dim(0), in_shape.dim(1)}, "gap");
        p_.stats.module_walk_floats += shape_of(s.out).numel();
        const int out = s.out;
        push(std::move(s));
        cur_ = out;
    }

    void lower_linear(nn::Linear& lin, std::size_t bits_w) {
        const Shape in_shape = shape_of(cur_);
        if (in_shape.rank() != 2 || in_shape.dim(1) != lin.in_features()) {
            throw CompileError("compile: linear expects {N, " +
                               std::to_string(lin.in_features()) + "}, got " + in_shape.str());
        }
        Step s;
        s.kind = StepKind::kLinear;
        s.linear = &lin;
        s.out_channels = lin.out_features();
        s.weight = bits_w < quant::kFloatBits ? own_quantized(lin.weight().value, bits_w)
                                              : lin.weight().value.data();
        const Tensor& b = lin.bias_param().value;
        s.bias = b.size() == lin.out_features() ? b.data() : nullptr;
        s.in = cur_;
        s.label = "fc";
        s.out = new_value(Shape{in_shape.dim(0), lin.out_features()}, "fc");
        p_.stats.module_walk_floats += shape_of(s.out).numel();
        const int out = s.out;
        push(std::move(s));
        cur_ = out;
    }

    void emit_residual_add(int dst, int src) {
        Step s;
        s.kind = StepKind::kResidualAdd;
        s.in = dst;
        s.in2 = src;
        s.out = dst;  // the module walk's in-place `m += shortcut`
        s.label = "residual_add";
        clear_grid(dst);  // a sum of grid points is generally off-grid
        push(std::move(s));
        cur_ = dst;
    }

    void lower_basic(models::BasicBlock& blk) {
        const int x = cur_;
        const bool identity = blk.projection() == nullptr;
        if (identity) pinned_.insert(x);  // the shortcut add needs the pre-activation input
        lower(blk.act_in());
        const int a = cur_;
        lower_conv_unit(blk.unit1());
        lower(blk.act1());
        lower_conv_unit(blk.unit2());
        const int m = cur_;
        if (identity) {
            pinned_.erase(x);
            emit_residual_add(m, x);
        } else {
            cur_ = a;
            lower_conv_unit(*blk.projection());
            emit_residual_add(m, cur_);
        }
    }

    void lower_bottleneck(models::BottleneckBlock& blk) {
        const int x = cur_;
        const bool identity = blk.projection() == nullptr;
        if (identity) pinned_.insert(x);
        lower(blk.act_in());
        const int a = cur_;
        lower_conv_unit(blk.unit1());
        lower(blk.act1());
        lower_conv_unit(blk.unit2());
        lower(blk.act2());
        lower_conv_unit(blk.unit3());
        const int m = cur_;
        if (identity) {
            pinned_.erase(x);
            emit_residual_add(m, x);
        } else {
            cur_ = a;
            lower_conv_unit(*blk.projection());
            emit_residual_add(m, cur_);
        }
    }

    void lower_resnet(models::ResNet& net) {
        if (net.quant_input() != nullptr) lower_quant_input(*net.quant_input());
        lower_conv_unit(net.stem());
        if (net.stem_pool() != nullptr) lower_maxpool(*net.stem_pool());
        for (auto& blk : net.blocks()) {
            if (auto* bb = dynamic_cast<models::BottleneckBlock*>(blk.get())) {
                lower_bottleneck(*bb);
            } else if (auto* basic = dynamic_cast<models::BasicBlock*>(blk.get())) {
                lower_basic(*basic);
            } else {
                throw CompileError("compile: unknown residual block type");
            }
        }
        lower(net.final_activation());
        lower_gap(net.gap());
        if (net.fc_activation() != nullptr) lower(*net.fc_activation());
        lower_linear(net.fc().linear(), net.fc().bits_w());
        EwOp inject;
        inject.kind = EwOp::Kind::kInject;
        inject.injector = &net.fc_injector();
        emit_ew(inject, "fc_inject");
    }

    // ----- liveness-based arena layout -----

    /// Linear scan with a first-fit free list. Outputs defined at step i
    /// are placed before inputs dying at step i are released, so a step's
    /// input and output never alias (conv kernels require disjointness).
    void assign_offsets() {
        struct Block {
            std::size_t start, size;
        };
        std::vector<Block> free_list;  // sorted by start
        std::size_t arena = 0;

        auto alloc = [&](std::size_t n) -> std::size_t {
            for (auto it = free_list.begin(); it != free_list.end(); ++it) {
                if (it->size >= n) {
                    const std::size_t off = it->start;
                    it->start += n;
                    it->size -= n;
                    if (it->size == 0) free_list.erase(it);
                    return off;
                }
            }
            // Extend the arena; grow from a free block touching the end
            // when one exists, so the tail fragment is reused.
            if (!free_list.empty() && free_list.back().start + free_list.back().size == arena) {
                const std::size_t off = free_list.back().start;
                free_list.pop_back();
                arena = off + n;
                return off;
            }
            const std::size_t off = arena;
            arena += n;
            return off;
        };
        auto release = [&](std::size_t start, std::size_t n) {
            Block blk{start, n};
            auto it = std::lower_bound(
                free_list.begin(), free_list.end(), blk,
                [](const Block& a, const Block& b) { return a.start < b.start; });
            it = free_list.insert(it, blk);
            if (it + 1 != free_list.end() && it->start + it->size == (it + 1)->start) {
                it->size += (it + 1)->size;
                free_list.erase(it + 1);
            }
            if (it != free_list.begin() && (it - 1)->start + (it - 1)->size == it->start) {
                (it - 1)->size += it->size;
                free_list.erase(it);
            }
        };

        const int n_steps = static_cast<int>(p_.steps.size());
        for (int i = 0; i < n_steps; ++i) {
            for (std::size_t v = 0; v < p_.values.size(); ++v) {
                Value& val = p_.values[v];
                if (!val.external && val.def_step == i) {
                    val.offset = alloc(align16(val.shape.numel()));
                }
            }
            for (std::size_t v = 0; v < p_.values.size(); ++v) {
                const Value& val = p_.values[v];
                if (!val.external && val.last_use == i &&
                    static_cast<int>(v) != p_.output_value) {
                    release(val.offset, align16(val.shape.numel()));
                }
            }
        }
        p_.arena_floats = arena;
    }

    Program p_;
    int cur_ = 0;
    std::set<int> pinned_;  ///< values fusion/in-place must not overwrite
    std::map<int, quant::QuantGrid> grids_;  ///< value id -> current grid
};

void dump_tail(std::ostream& os, const std::vector<EwOp>& tail) {
    os << " tail=[";
    for (std::size_t i = 0; i < tail.size(); ++i) {
        if (i != 0) os << ' ';
        os << ew_name(tail[i].kind);
    }
    os << ']';
}

}  // namespace

const char* numeric_mode_name(NumericMode mode) {
    switch (mode) {
        case NumericMode::kInt8: return "int8";
        case NumericMode::kInt16: return "int16";
        case NumericMode::kFp32: break;
    }
    return "fp32";
}

void ExecutionPlan::dump(std::ostream& os) const {
    os << "plan \"" << p_.root_name << "\" input=" << p_.input_shape.str() << " options{fuse="
       << (p_.options.fuse ? "on" : "off")
       << " fold_bn=" << (p_.options.fold_bn ? "on" : "off")
       << " gemm_int=" << gemm_int_mode_name(p_.options.gemm_int) << "}\n";
    os << "values (" << p_.values.size() << ", arena " << p_.arena_floats << " floats):\n";
    for (std::size_t i = 0; i < p_.values.size(); ++i) {
        const Value& v = p_.values[i];
        os << "  v" << i << ": " << v.shape.str();
        if (v.external) {
            os << " external";
        } else {
            os << " @" << v.offset;
        }
        os << " \"" << v.label << "\"";
        if (static_cast<int>(i) == p_.output_value) os << " (output)";
        os << '\n';
    }
    os << "steps (" << p_.steps.size() << "):\n";
    for (std::size_t i = 0; i < p_.steps.size(); ++i) {
        const Step& s = p_.steps[i];
        os << "  s" << i << ": " << step_name(s.kind);
        if (s.kind == StepKind::kElementwise) os << '/' << ew_name(s.ew.kind);
        os << " v" << s.in;
        if (s.in2 >= 0) os << " + v" << s.in2;
        os << " -> v" << s.out;
        switch (s.kind) {
            case StepKind::kQuantInput:
                os << "  bits=" << s.bits;
                break;
            case StepKind::kConv: {
                const ConvGeometry& g = s.lowering.geometry();
                os << "  cout=" << s.out_channels << " k=" << g.kernel_h << "x" << g.kernel_w
                   << " s=" << g.stride_h << " p=" << g.pad_h
                   << " numeric=" << numeric_mode_name(s.numeric);
                break;
            }
            case StepKind::kLinear:
                os << "  out_features=" << s.out_channels
                   << (s.bias != nullptr ? " bias" : "")
                   << " numeric=" << numeric_mode_name(s.numeric);
                break;
            default:
                break;
        }
        if (!s.tail.empty()) dump_tail(os, s.tail);
        os << '\n';
    }
    os << "stats: steps=" << p_.stats.steps << " layers_fused=" << p_.stats.layers_fused
       << " intermediates_eliminated=" << p_.stats.intermediates_eliminated
       << " module_walk_floats=" << p_.stats.module_walk_floats
       << " plan_floats=" << p_.stats.plan_floats << '\n';
}

std::string ExecutionPlan::dump_string() const {
    std::ostringstream os;
    dump(os);
    return os.str();
}

ExecutionPlan compile(nn::Module& root, const Shape& input, const CompileOptions& options) {
    runtime::trace::Span span("plan.compile");
    if (root.training()) {
        throw CompileError("compile: root module is in training mode (call set_training(false))");
    }
    if (input.rank() == 0 || input.dim(0) == 0) {
        throw CompileError("compile: input shape needs a nonzero batch dimension");
    }
    Builder builder(root, input, options);
    ExecutionPlan plan(builder.build(root));

    metrics::add(metrics::Counter::kPlanCompiles);
    const Stats& st = plan.stats();
    metrics::add(metrics::Counter::kPlanLayersFused, st.layers_fused);
    metrics::add(metrics::Counter::kPlanIntermediatesEliminated, st.intermediates_eliminated);
    if (st.module_walk_floats > st.plan_floats) {
        metrics::add(metrics::Counter::kPlanArenaBytesSaved,
                     4 * (st.module_walk_floats - st.plan_floats));
    }

    if (const char* path = std::getenv("AMSNET_PLAN_DUMP");
        path != nullptr && path[0] != '\0') {
        try {
            const std::filesystem::path p(path);
            if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
            std::ofstream out(path);  // overwrite: latest compile wins
            out << plan.dump_string();
            if (!out) throw std::runtime_error("write failed");
        } catch (const std::exception& e) {
            std::fprintf(stderr, "amsnet: AMSNET_PLAN_DUMP export failed for %s: %s\n", path,
                         e.what());
        }
    }
    return plan;
}

bool env_enabled() {
    const char* v = std::getenv("AMSNET_COMPILE");
    if (v == nullptr) return false;
    const std::string s(v);
    return s == "on" || s == "1";
}

}  // namespace ams::compile
