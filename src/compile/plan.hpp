// Graph compiler: ahead-of-time lowering of an eval-mode module graph
// into a flat ExecutionPlan — a vector of fused steps with pre-resolved
// arena offsets — that evaluate_*, benches, and serve::InferenceServer
// execute with zero virtual dispatch per layer.
//
// Passes (DESIGN.md §13):
//   1. *Structure lowering*: a typed walk over the known module set
//      (ResNet, residual blocks, ConvUnit, Sequential, and the leaf
//      layers) emits one Step per tensor-producing operation; unknown
//      module types raise CompileError (callers fall back to the module
//      walk).
//   2. *Epilogue fusion* (CompileOptions::fuse, default on): elementwise
//      layers — injection, batch norm, bias, ReLU / clipped ReLU,
//      activation quantization — are absorbed into the tail of the
//      preceding conv / VMAC / linear step, or run in place when their
//      input has no later use. Fusion is value-preserving: the fused
//      tail applies the same kernels in the same order over the same
//      extents as the module walk, so logits stay bit-identical.
//   3. *BN folding* (CompileOptions::fold_bn, default OFF): every
//      ConvUnit's batch norm is folded into the conv weights
//      (models::fold_bn_into_conv) with DoReFa re-quantization of the
//      folded weights when bits_w < 32. This changes deployment
//      semantics (the paper's "fold after retraining" step), so it is
//      opt-in and never part of the default bit-identity contract.
//   4. *Liveness-based arena layout*: a linear-scan, first-fit
//      assignment packs every intermediate into one activation block,
//      shrinking the high-water mark versus the module-by-module plan.
//
// Weight preparation happens once at compile time: DoReFa weight grids
// are materialized via quant::dorefa_quantize_weights_into (bit-for-bit
// the per-pass quantization of the module walk), removing the per-pass
// tanh-normalization from the hot path.
//
// AMSNET_COMPILE=on|1 turns the compiled path on in evaluate_* and the
// server's kAuto mode; AMSNET_PLAN_DUMP=<path> exports the textual plan
// IR at every compile.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "ams/error_injector.hpp"
#include "ams/vmac_conv.hpp"
#include "models/conv_unit.hpp"
#include "nn/batchnorm.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"
#include "nn/pooling.hpp"
#include "quant/quantized_view.hpp"
#include "runtime/eval_context.hpp"
#include "tensor/gemm_int.hpp"
#include "tensor/im2col.hpp"

namespace ams::compile {

/// Raised when the graph contains a module the compiler cannot lower (or
/// the root is in training mode). Callers on the opportunistic path
/// (server kAuto) catch this and stay on the module walk.
class CompileError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Compilation knobs.
struct CompileOptions {
    /// Epilogue fusion + in-place elementwise steps. Value-preserving;
    /// on by default.
    bool fuse = true;
    /// Fold every ConvUnit's batch norm into its conv weights
    /// (re-quantized for bits_w < 32) with a digital bias tail. A
    /// deployment-semantics change (EXPERIMENTS.md); off by default.
    bool fold_bn = false;
    /// Integer numeric domain for eligible conv GEMM steps (DESIGN.md
    /// §14): when a conv's weights and input both live on DoReFa grids
    /// that fit the requested code width, the step runs as a packed
    /// int8/int16 GEMM with requantization fused into its epilogue.
    /// A *toleranced* numeric realization (per-product rounding differs
    /// from fp32), so it is off by default and excluded from the
    /// bit-identity contract. Callers honoring AMSNET_GEMM_INT pass
    /// env_gemm_int_mode() here.
    GemmIntMode gemm_int = GemmIntMode::kOff;
};

/// Numeric realization of a GEMM step (kConv / kLinear). kFp32 is the
/// bit-identity path; the integer modes multiply quantization codes
/// exactly in int32 and dequantize once per output.
enum class NumericMode {
    kFp32,
    kInt8,   ///< int8 weight codes x uint8 activation codes
    kInt16,  ///< int16 weight codes x int16 activation codes
};

[[nodiscard]] const char* numeric_mode_name(NumericMode mode);

/// One SSA-ish intermediate of the plan: a tensor buffer at a fixed
/// offset in the plan's single activation block. Shapes are recorded at
/// the compile-time (maximum) batch; offsets stay valid for any smaller
/// run-time batch because every value is batch-major.
struct Value {
    Shape shape;                ///< at the compiled (max) batch
    std::size_t offset = 0;     ///< floats into the plan block
    bool external = false;      ///< value 0: the caller's input tensor
    int def_step = -1;          ///< step that first writes it (-1: external)
    int last_use = -1;          ///< last step that reads or writes it
    std::string label;
};

/// One fused elementwise operation, either in a step's epilogue tail or
/// as a standalone kElementwise step.
struct EwOp {
    enum class Kind {
        kInject,       ///< ErrorInjector::inject_inplace (skipped when disabled)
        kRecord,       ///< ConvUnit activation-stats accumulate (when recording)
        kBatchNorm,    ///< BatchNorm2d::normalize_eval (running statistics)
        kBias,         ///< per-channel digital bias add
        kRelu,         ///< simd::relu
        kClippedRelu,  ///< simd::clipped_relu
        kQuantAct,     ///< DoReFa activation quantization (clamp for >= 32 bits)
    };
    Kind kind = Kind::kRelu;
    vmac::ErrorInjector* injector = nullptr;  ///< kInject
    models::ConvUnit* unit = nullptr;         ///< kRecord
    const nn::BatchNorm2d* bn = nullptr;      ///< kBatchNorm
    const float* bias = nullptr;              ///< kBias ({out_channels} floats)
    float ceiling = 1.0f;                     ///< kClippedRelu
    std::size_t bits = 32;                    ///< kQuantAct
    std::size_t levels = 1;                   ///< kQuantAct magnitude levels
};

/// The step taxonomy: every compute shape of the module set.
enum class StepKind {
    kQuantInput,     ///< scale/clamp + signed quantization of the input
    kConv,           ///< im2col + packed GEMM (nn::conv_eval_run)
    kVmacConv,       ///< explicit-VMAC conv (VmacConv2d::forward_planned)
    kLinear,         ///< gemm_bt + bias (the FC head)
    kElementwise,    ///< standalone EwOp (in-place when legal)
    kMaxPool,        ///< MaxPool2d::pool_eval
    kGlobalAvgPool,  ///< GlobalAvgPool::reduce
    kResidualAdd,    ///< dst += src (digital shortcut join)
};

/// One flat execution step. Raw pointers refer either to the compiled
/// module graph (which must outlive the plan) or to the plan's owned
/// weight storage.
struct Step {
    StepKind kind = StepKind::kElementwise;
    int in = -1;    ///< input value id
    int in2 = -1;   ///< kResidualAdd: source value id
    int out = -1;   ///< output value id (== in for in-place steps)

    // kConv
    const float* weight = nullptr;       ///< pre-quantized / folded / latent
    std::size_t out_channels = 0;
    ConvLowering lowering;
    const void* scratch_owner = nullptr; ///< the source nn::Conv2d (shared scratch)

    // kVmacConv / kLinear / kMaxPool
    vmac::VmacConv2d* vmac = nullptr;
    nn::Linear* linear = nullptr;        ///< weight/bias read via `weight`/`bias`
    const float* bias = nullptr;         ///< kLinear digital bias (may be null)
    nn::MaxPool2d* maxpool = nullptr;

    // kQuantInput
    float inv_scale = 1.0f;
    std::size_t bits = 32;
    std::size_t levels = 1;

    // kConv integer numeric domain (kFp32 for every other step kind).
    // Weight code pointers alias the plan's owned_codes storage; the
    // activation grid describes the step's *input* value, which the
    // executor re-encodes to codes at run time.
    NumericMode numeric = NumericMode::kFp32;
    const std::int8_t* weight_i8 = nullptr;    ///< kInt8 weight codes
    const std::int16_t* weight_i16 = nullptr;  ///< kInt16 weight codes
    std::size_t act_levels = 0;                ///< input grid levels
    bool act_signed = false;                   ///< input grid signedness
    float dequant = 1.0f;                      ///< 1 / (w_levels * act_levels)

    EwOp ew;                  ///< kElementwise payload
    std::vector<EwOp> tail;   ///< fused epilogue (kConv / kVmacConv / kLinear)
    std::string label;
};

/// Compile-time metrics (also mirrored into runtime::metrics plan_*
/// counters).
struct Stats {
    std::size_t steps = 0;
    std::size_t layers_fused = 0;             ///< elementwise layers absorbed into tails
    std::size_t intermediates_eliminated = 0; ///< module-walk tensors never materialized
    std::size_t module_walk_floats = 0;       ///< activation floats the module walk allocates
    std::size_t plan_floats = 0;              ///< the plan's single-block size
};

/// The compiled program, as built by compile(). Public so the builder,
/// the executor, and the dump all speak one type; not intended for
/// hand-construction.
struct Program {
    Shape input_shape;                      ///< at the compiled (max) batch
    std::vector<Value> values;
    std::vector<Step> steps;
    std::vector<std::vector<float>> owned;  ///< pre-quantized / folded weights & biases
    std::vector<quant::QuantizedTensor> owned_codes;  ///< integer-mode weight codes
    std::size_t arena_floats = 0;           ///< one activation block, 16-float aligned slots
    int output_value = -1;
    Stats stats;
    std::string root_name;
    CompileOptions options;
};

/// A flat, dispatch-free forward program over one module graph.
///
/// run() allocates exactly one activation block from the context (inside
/// the caller's checkpoint/rewind) and executes the steps in order; the
/// returned Tensor borrows the output slot of that block. Accepts any
/// batch <= the compiled batch (offsets are fixed at the compiled batch;
/// per-run extents scale with the actual one).
///
/// Determinism contract: with default options the plan produces logits
/// bit-identical to root.forward(input, ctx) for every backend, at any
/// thread count, on both SIMD arms — enforced by tests/plan_identity_test.
/// The plan holds raw pointers into the compiled modules (noise streams,
/// BN statistics) and shares their EvalContext scratch keys, so plan and
/// module walk may interleave in one context; the graph must outlive the
/// plan and weights must not be reallocated.
class ExecutionPlan {
public:
    explicit ExecutionPlan(Program program) : p_(std::move(program)) {}

    ExecutionPlan(const ExecutionPlan&) = delete;
    ExecutionPlan& operator=(const ExecutionPlan&) = delete;
    ExecutionPlan(ExecutionPlan&&) = default;
    ExecutionPlan& operator=(ExecutionPlan&&) = default;

    /// One forward pass. Throws std::invalid_argument if `input` does not
    /// match the compiled shape (batch may be smaller, never larger).
    [[nodiscard]] Tensor run(const Tensor& input, runtime::EvalContext& ctx);

    [[nodiscard]] const Stats& stats() const { return p_.stats; }
    [[nodiscard]] const Shape& input_shape() const { return p_.input_shape; }
    [[nodiscard]] std::size_t num_steps() const { return p_.steps.size(); }
    [[nodiscard]] std::size_t arena_floats() const { return p_.arena_floats; }
    [[nodiscard]] const Program& program() const { return p_; }

    /// Textual plan IR (the AMSNET_PLAN_DUMP format): values, steps with
    /// fused tails, arena layout, and the stats footer. Stable across
    /// runs — no pointers, only structure.
    void dump(std::ostream& os) const;
    [[nodiscard]] std::string dump_string() const;

private:
    Program p_;
};

/// Compiles `root` (which must be in eval mode) for inputs of shape
/// `input` (batch-major; the batch dimension is the maximum run() will
/// accept). Throws CompileError on training mode or an unsupported
/// module. Honors AMSNET_PLAN_DUMP.
[[nodiscard]] ExecutionPlan compile(nn::Module& root, const Shape& input,
                                    const CompileOptions& options = {});

/// True when AMSNET_COMPILE is "on" or "1" — the switch evaluate_* and
/// the server's kAuto mode read. Re-read on every call (tests toggle it).
[[nodiscard]] bool env_enabled();

}  // namespace ams::compile
