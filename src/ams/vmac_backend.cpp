#include "ams/vmac_backend.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "ams/adc_quantizer.hpp"
#include "ams/block_fp.hpp"
#include "ams/device_variation.hpp"
#include "runtime/metrics.hpp"

namespace ams::vmac {

namespace {

/// Conversion ledger: every accumulate() records one chunk plus its ADC
/// conversions under the backend's own counter. These counters are the
/// source of truth the energy model's ConversionProfile-derived counts
/// are cross-checked against (tests/trace_test.cpp asserts exact
/// agreement for all five kinds).
inline void count_chunk(runtime::metrics::Counter counter, std::uint64_t conversions = 1) {
    runtime::metrics::add(runtime::metrics::Counter::kVmacChunks);
    runtime::metrics::add(counter, conversions);
}

}  // namespace

const char* backend_kind_name(BackendKind kind) {
    switch (kind) {
        case BackendKind::kBitExact: return "bit_exact";
        case BackendKind::kPerVmacNoise: return "per_vmac_noise";
        case BackendKind::kPartitioned: return "partitioned";
        case BackendKind::kDeltaSigma: return "delta_sigma";
        case BackendKind::kReferenceScaled: return "reference_scaled";
        case BackendKind::kBlockFp: return "block_fp";
    }
    throw std::invalid_argument("backend_kind_name: unknown BackendKind");
}

BackendKind parse_backend_kind(std::string_view name) {
    for (BackendKind kind : all_backend_kinds()) {
        if (name == backend_kind_name(kind)) return kind;
    }
    std::string valid;
    for (BackendKind kind : all_backend_kinds()) {
        if (!valid.empty()) valid += ", ";
        valid += backend_kind_name(kind);
    }
    throw std::invalid_argument("parse_backend_kind: unknown backend '" + std::string(name) +
                                "' (valid: " + valid + ")");
}

const std::vector<BackendKind>& all_backend_kinds() {
    static const std::vector<BackendKind> kinds{
        BackendKind::kBitExact,    BackendKind::kPerVmacNoise,
        BackendKind::kPartitioned, BackendKind::kDeltaSigma,
        BackendKind::kReferenceScaled, BackendKind::kBlockFp};
    return kinds;
}

std::string BackendOptions::str() const {
    std::ostringstream os;
    os << backend_kind_name(kind);
    switch (kind) {
        case BackendKind::kPartitioned:
            os << "_nw" << partition.nw << "_nx" << partition.nx << "_p"
               << partition.enob_partial;
            if (partition.significance_drop > 0.0) os << "_d" << partition.significance_drop;
            break;
        case BackendKind::kDeltaSigma:
            // <= 0 means "derive from the per-cycle ENOB" (see make_backend).
            if (delta_sigma_final_enob > 0.0) {
                os << "_f" << delta_sigma_final_enob;
            } else {
                os << "_fauto";
            }
            break;
        case BackendKind::kReferenceScaled:
            os << "_s" << reference_scale;
            break;
        case BackendKind::kBlockFp:
            // 0 means "derive from the operand widths" (see make_backend).
            if (block_fp_mantissa_bits > 0) {
                os << "_m" << block_fp_mantissa_bits;
            } else {
                os << "_mauto";
            }
            break;
        default:
            break;
    }
    if (variation.active()) os << "_" << variation.str();
    return os.str();
}

namespace {

/// Plain VmacCell datapath: one ADC conversion per chunk.
class BitExactBackend final : public VmacBackend {
public:
    BitExactBackend(const VmacConfig& config, const AnalogOptions& analog)
        : cell_(config, analog) {}

    double accumulate(std::span<const double> weights, std::span<const double> activations,
                      Rng& rng) override {
        count_chunk(runtime::metrics::Counter::kAdcConversionsBitExact);
        return cell_.dot(weights, activations, rng);
    }

    [[nodiscard]] BackendKind kind() const override { return BackendKind::kBitExact; }
    [[nodiscard]] std::size_t conversions_per_vmac() const override { return 1; }
    [[nodiscard]] ConversionProfile conversion_profile() const override {
        return {{cell_.config().enob, 1.0, 0.0}};
    }
    /// Composite cell ENOB: quantization plus thermal noise.
    [[nodiscard]] double effective_enob(std::size_t /*chunks_per_output*/) const override {
        return cell_.effective_enob();
    }
    [[nodiscard]] std::unique_ptr<VmacBackend> clone() const override {
        return std::make_unique<BitExactBackend>(cell_.config(), cell_.analog());
    }
    [[nodiscard]] const VmacConfig& config() const override { return cell_.config(); }

private:
    VmacCell cell_;
};

/// Exact digital partial sums + one uniform(-LSB/2, LSB/2) draw per chunk:
/// per-VMAC granularity without operand re-quantization.
class PerVmacNoiseBackend final : public VmacBackend {
public:
    PerVmacNoiseBackend(const VmacConfig& config, const AnalogOptions& analog)
        : cell_(config, analog) {}

    double accumulate(std::span<const double> weights, std::span<const double> activations,
                      Rng& rng) override {
        if (weights.size() != activations.size() || weights.size() > cell_.config().nmult) {
            throw std::invalid_argument("PerVmacNoiseBackend: bad operand count");
        }
        count_chunk(runtime::metrics::Counter::kAdcConversionsPerVmacNoise);
        double partial = 0.0;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            partial += weights[i] * activations[i];
        }
        const double lsb = cell_.adc_lsb();
        return partial + rng.uniform(-0.5 * lsb, 0.5 * lsb);
    }

    [[nodiscard]] BackendKind kind() const override { return BackendKind::kPerVmacNoise; }
    [[nodiscard]] std::size_t conversions_per_vmac() const override { return 1; }
    [[nodiscard]] ConversionProfile conversion_profile() const override {
        return {{cell_.config().enob, 1.0, 0.0}};
    }
    /// Pure quantization-error model: the nominal resolution.
    [[nodiscard]] double effective_enob(std::size_t /*chunks_per_output*/) const override {
        return cell_.config().enob;
    }
    [[nodiscard]] std::unique_ptr<VmacBackend> clone() const override {
        return std::make_unique<PerVmacNoiseBackend>(cell_.config(), cell_.analog());
    }
    [[nodiscard]] const VmacConfig& config() const override { return cell_.config(); }

private:
    VmacCell cell_;  ///< supplies the validated config and the ADC LSB
};

/// Sec. 4 method 1: NW x NX partial conversions at lower resolution.
class PartitionedBackend final : public VmacBackend {
public:
    PartitionedBackend(const VmacConfig& config, PartitionOptions options)
        : vmac_(config, options) {}

    double accumulate(std::span<const double> weights, std::span<const double> activations,
                      Rng& rng) override {
        count_chunk(runtime::metrics::Counter::kAdcConversionsPartitioned,
                    vmac_.conversions_per_vmac());
        return vmac_.dot(weights, activations, rng);
    }

    [[nodiscard]] BackendKind kind() const override { return BackendKind::kPartitioned; }
    [[nodiscard]] std::size_t conversions_per_vmac() const override {
        return vmac_.conversions_per_vmac();
    }
    [[nodiscard]] ConversionProfile conversion_profile() const override {
        ConversionProfile profile;
        for (std::size_t p = 0; p < vmac_.options().nw; ++p) {
            for (std::size_t q = 0; q < vmac_.options().nx; ++q) {
                profile.push_back({vmac_.partial_enob(p, q), 1.0, 0.0});
            }
        }
        return profile;
    }
    /// Analytic (thermal noise excluded): the shift-and-add weighted sum
    /// of the partial converters' quantization variances.
    [[nodiscard]] double effective_enob(std::size_t /*chunks_per_output*/) const override {
        return vmac_.effective_enob();
    }
    [[nodiscard]] std::unique_ptr<VmacBackend> clone() const override {
        return std::make_unique<PartitionedBackend>(vmac_.base_config(), vmac_.options());
    }
    [[nodiscard]] const VmacConfig& config() const override { return vmac_.base_config(); }

private:
    PartitionedVmac vmac_;
};

/// Sec. 4 method 2: first-order delta-sigma modulator in place of the
/// ADC. Stateful across the chunks of one output accumulator; the final
/// high-resolution conversion happens in finish_output().
class DeltaSigmaBackend final : public VmacBackend {
public:
    DeltaSigmaBackend(const VmacConfig& config, double final_enob, const AnalogOptions& analog)
        : vmac_(config, final_enob, analog), analog_(analog) {}

    double accumulate(std::span<const double> weights, std::span<const double> activations,
                      Rng& rng) override {
        count_chunk(runtime::metrics::Counter::kAdcConversionsDeltaSigma);
        return vmac_.accumulate(weights, activations, rng);
    }
    double finish_output(Rng& rng) override {
        // The one extra high-resolution conversion per output accumulator.
        runtime::metrics::add(runtime::metrics::Counter::kAdcConversionsDeltaSigma);
        return vmac_.finalize(rng);
    }

    [[nodiscard]] BackendKind kind() const override { return BackendKind::kDeltaSigma; }
    [[nodiscard]] std::size_t conversions_per_vmac() const override { return 1; }
    [[nodiscard]] ConversionProfile conversion_profile() const override {
        return {{vmac_.cell().config().enob, 1.0, 0.0}, {vmac_.final_enob(), 0.0, 1.0}};
    }
    /// Telescoping: only the final conversion's error survives, so the
    /// per-conversion equivalent improves by 0.5 bit per doubling of the
    /// chunk stream (chunks * LSB(e_eq)^2 = LSB(final)^2).
    [[nodiscard]] double effective_enob(std::size_t chunks_per_output) const override {
        const double chunks = static_cast<double>(chunks_per_output == 0 ? 1 : chunks_per_output);
        return vmac_.final_enob() + 0.5 * std::log2(chunks);
    }
    [[nodiscard]] std::unique_ptr<VmacBackend> clone() const override {
        return std::make_unique<DeltaSigmaBackend>(vmac_.cell().config(), vmac_.final_enob(),
                                                   analog_);
    }
    [[nodiscard]] const VmacConfig& config() const override { return vmac_.cell().config(); }

private:
    DeltaSigmaVmac vmac_;
    AnalogOptions analog_;  ///< kept for clone(); DeltaSigmaVmac doesn't expose it
};

/// Sec. 4 method 3: bit-exact cell with the ADC reference shrunk below
/// the natural full scale (finer LSBs, MSBs clip).
class ReferenceScaledBackend final : public VmacBackend {
public:
    ReferenceScaledBackend(const VmacConfig& config, const AnalogOptions& analog,
                           double reference_scale)
        : cell_(config, scaled(analog, reference_scale)),
          base_analog_(analog),
          scale_(reference_scale) {}

    double accumulate(std::span<const double> weights, std::span<const double> activations,
                      Rng& rng) override {
        count_chunk(runtime::metrics::Counter::kAdcConversionsReferenceScaled);
        return cell_.dot(weights, activations, rng);
    }

    [[nodiscard]] BackendKind kind() const override { return BackendKind::kReferenceScaled; }
    [[nodiscard]] std::size_t conversions_per_vmac() const override { return 1; }
    [[nodiscard]] ConversionProfile conversion_profile() const override {
        return {{cell_.config().enob, 1.0, 0.0}};
    }
    /// Clip-free equivalent: the finer LSB raises the composite cell ENOB
    /// by -log2(scale). The data-dependent clipping penalty is what
    /// sweep_reference_scales / bench_ext_reference_scaling measure
    /// empirically — this analytic number is the no-clip optimum.
    [[nodiscard]] double effective_enob(std::size_t /*chunks_per_output*/) const override {
        return cell_.effective_enob();
    }
    [[nodiscard]] std::unique_ptr<VmacBackend> clone() const override {
        return std::make_unique<ReferenceScaledBackend>(cell_.config(), base_analog_, scale_);
    }
    [[nodiscard]] const VmacConfig& config() const override { return cell_.config(); }

    [[nodiscard]] double reference_scale() const { return scale_; }

private:
    static AnalogOptions scaled(AnalogOptions analog, double reference_scale) {
        analog.reference_scale *= reference_scale;
        return analog;
    }

    VmacCell cell_;
    AnalogOptions base_analog_;  ///< pre-scaling options, for clone()
    double scale_;
};

/// Adaptive block floating-point datapath: shared per-chunk exponents,
/// exact integer mantissa dot, one ADC conversion per chunk.
class BlockFpBackend final : public VmacBackend {
public:
    BlockFpBackend(const VmacConfig& config, std::size_t mantissa_bits_w,
                   std::size_t mantissa_bits_x, const AnalogOptions& analog)
        : vmac_(config, mantissa_bits_w, mantissa_bits_x, analog) {}

    double accumulate(std::span<const double> weights, std::span<const double> activations,
                      Rng& rng) override {
        count_chunk(runtime::metrics::Counter::kAdcConversionsBlockFp);
        return vmac_.dot(weights, activations, rng);
    }

    [[nodiscard]] BackendKind kind() const override { return BackendKind::kBlockFp; }
    [[nodiscard]] std::size_t conversions_per_vmac() const override { return 1; }
    [[nodiscard]] ConversionProfile conversion_profile() const override {
        return {{vmac_.config().enob, 1.0, 0.0}};
    }
    /// Analytic worst-case (full-scale block) equivalent; the adaptive
    /// exponent's data-dependent gains are measured empirically.
    [[nodiscard]] double effective_enob(std::size_t /*chunks_per_output*/) const override {
        return vmac_.effective_enob();
    }
    [[nodiscard]] std::unique_ptr<VmacBackend> clone() const override {
        return std::make_unique<BlockFpBackend>(vmac_.config(), vmac_.mantissa_bits_w(),
                                                vmac_.mantissa_bits_x(), vmac_.analog());
    }
    [[nodiscard]] const VmacConfig& config() const override { return vmac_.config(); }

private:
    BlockFpVmac vmac_;
};

}  // namespace

namespace {

std::unique_ptr<VmacBackend> make_bare_backend(const VmacConfig& config,
                                               const AnalogOptions& analog,
                                               const BackendOptions& options) {
    switch (options.kind) {
        case BackendKind::kBitExact:
            return std::make_unique<BitExactBackend>(config, analog);
        case BackendKind::kPerVmacNoise:
            return std::make_unique<PerVmacNoiseBackend>(config, analog);
        case BackendKind::kPartitioned: {
            PartitionOptions part = options.partition;
            part.analog = analog;
            return std::make_unique<PartitionedBackend>(config, part);
        }
        case BackendKind::kDeltaSigma: {
            const double final_enob = options.delta_sigma_final_enob > 0.0
                                          ? options.delta_sigma_final_enob
                                          : config.enob + 4.0;
            return std::make_unique<DeltaSigmaBackend>(config, final_enob, analog);
        }
        case BackendKind::kReferenceScaled:
            if (options.reference_scale <= 0.0) {
                throw std::invalid_argument(
                    "make_backend: reference_scale must be positive");
            }
            return std::make_unique<ReferenceScaledBackend>(config, analog,
                                                            options.reference_scale);
        case BackendKind::kBlockFp: {
            // Default mantissa budget: the cell's sign-magnitude codecs
            // spend bits - 1 on magnitude; match that per operand.
            const std::size_t mw = options.block_fp_mantissa_bits > 0
                                       ? options.block_fp_mantissa_bits
                                       : config.bits_w - 1;
            const std::size_t mx = options.block_fp_mantissa_bits > 0
                                       ? options.block_fp_mantissa_bits
                                       : config.bits_x - 1;
            return std::make_unique<BlockFpBackend>(config, mw, mx, analog);
        }
    }
    throw std::invalid_argument("make_backend: unknown BackendKind");
}

}  // namespace

std::unique_ptr<VmacBackend> make_backend(const VmacConfig& config, const AnalogOptions& analog,
                                          const BackendOptions& options) {
    // An active device profile decorates the datapath; an inactive one is
    // a structural no-op (with_variation returns the bare backend), so the
    // default path is bit-identical to — in fact is — the historical one.
    std::unique_ptr<VmacBackend> backend =
        with_variation(make_bare_backend(config, analog, options), options.variation);
    // Debug builds re-check the clone() isolation contract on every
    // factory call: the decorator amplifies any latent state aliasing.
    assert(verify_clone_isolation(*backend));
    return backend;
}

std::unique_ptr<VmacBackend> make_backend(const VmacConfig& config,
                                          const AnalogOptions& analog) {
    return make_backend(config, analog, BackendOptions{});
}

bool verify_clone_isolation(const VmacBackend& backend) {
    // Probe chunks must not leak into the process-wide conversion ledger
    // (trace_test cross-checks those counters exactly).
    const runtime::metrics::Level saved = runtime::metrics::level();
    runtime::metrics::set_level(runtime::metrics::Level::kOff);

    const std::size_t n = std::min<std::size_t>(backend.config().nmult, 4);
    const std::vector<double> w(n, 0.5);
    const std::vector<double> x(n, 0.25);
    const auto run = [&](VmacBackend& b, std::uint64_t seed, std::size_t chunks) {
        Rng rng(seed);
        double acc = 0.0;
        for (std::size_t i = 0; i < chunks; ++i) acc += b.accumulate(w, x, rng);
        acc += b.finish_output(rng);
        return acc;
    };

    const auto active = backend.clone();   // the clone being perturbed
    const auto observed = backend.clone(); // must not notice
    (void)run(*active, 0xA11CEu, 3);
    const double with_sibling_activity = run(*observed, 0xB0B5EEDu, 2);
    const double fresh = run(*backend.clone(), 0xB0B5EEDu, 2);

    runtime::metrics::set_level(saved);
    // Bit-identical or the clones shared mutable state.
    return with_sibling_activity == fresh;
}

}  // namespace ams::vmac
