#include "ams/vmac_cell.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ams::vmac {

VmacCell::VmacCell(const VmacConfig& config, const AnalogOptions& analog)
    : config_(config),
      analog_(analog),
      weight_codec_(config.bits_w),
      act_codec_(config.bits_x) {
    config_.validate();
    if (analog.reference_scale <= 0.0) {
        throw std::invalid_argument("VmacCell: reference_scale must be positive");
    }
    if (analog.multiplier_noise_sigma < 0.0 || analog.adc_noise_sigma < 0.0) {
        throw std::invalid_argument("VmacCell: noise sigmas must be non-negative");
    }
    quantizer_ = AdcQuantizer(config_.enob, full_scale(), analog_.reference_scale);
}

double VmacCell::full_scale() const {
    return config_.accumulation == Accumulation::kSum
               ? static_cast<double>(config_.nmult)
               : 1.0;
}

double VmacCell::adc_lsb() const {
    return quantizer_.lsb();
}

double VmacCell::effective_enob() const {
    const double lsb = adc_lsb();
    const double quant_var = lsb * lsb / 12.0;
    // Thermal contributions, referred to the ADC input. Multiplier noise
    // adds per product before the analog accumulation.
    const double avg_div = config_.accumulation == Accumulation::kAverage
                               ? static_cast<double>(config_.nmult)
                               : 1.0;
    const double mult_var = static_cast<double>(config_.nmult) *
                            analog_.multiplier_noise_sigma * analog_.multiplier_noise_sigma /
                            (avg_div * avg_div);
    const double adc_var = analog_.adc_noise_sigma * analog_.adc_noise_sigma;
    const double total_var = quant_var + mult_var + adc_var;
    // ENOB from LSB: range 2*FS divided into 2^ENOB steps.
    return effective_enob_from_rms(std::sqrt(total_var), full_scale());
}

namespace {
void check_operands(std::span<const double> w, std::span<const double> x, std::size_t nmult) {
    if (w.size() != x.size()) {
        throw std::invalid_argument("VmacCell: weight/activation count mismatch");
    }
    if (w.size() > nmult) {
        throw std::invalid_argument("VmacCell: more operand pairs than nmult");
    }
}
}  // namespace

double VmacCell::dot_ideal(std::span<const double> weights,
                           std::span<const double> activations) const {
    check_operands(weights, activations, config_.nmult);
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weight_codec_.quantize(weights[i]) * act_codec_.quantize(activations[i]);
    }
    return acc;
}

double VmacCell::dot(std::span<const double> weights, std::span<const double> activations,
                     Rng& rng) const {
    check_operands(weights, activations, config_.nmult);
    double analog_sum = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        double product = weight_codec_.quantize(weights[i]) * act_codec_.quantize(activations[i]);
        if (analog_.multiplier_noise_sigma > 0.0) {
            product += rng.normal(0.0, analog_.multiplier_noise_sigma);
        }
        analog_sum += product;
    }
    const bool averaging = config_.accumulation == Accumulation::kAverage;
    if (averaging) analog_sum /= static_cast<double>(config_.nmult);
    if (analog_.adc_noise_sigma > 0.0) {
        analog_sum += rng.normal(0.0, analog_.adc_noise_sigma);
    }
    const double digital = convert(analog_sum);
    // Averaging hardware: the digital output is the average; the digital
    // interpretation scales it back up by Nmult (Sec. 2).
    return averaging ? digital * static_cast<double>(config_.nmult) : digital;
}

double VmacCell::dot_tiled(std::span<const double> weights,
                           std::span<const double> activations, Rng& rng) const {
    if (weights.size() != activations.size()) {
        throw std::invalid_argument("VmacCell::dot_tiled: size mismatch");
    }
    double acc = 0.0;
    for (std::size_t start = 0; start < weights.size(); start += config_.nmult) {
        const std::size_t len = std::min(config_.nmult, weights.size() - start);
        acc += dot(weights.subspan(start, len), activations.subspan(start, len), rng);
    }
    return acc;
}

}  // namespace ams::vmac
