// Reference-voltage scaling analysis (paper Sec. 4, method 3).
//
// "Scale the ADC reference voltage with respect to the multiplier supply
// in order to play with the dynamic range-resolution tradeoff. By making
// the ADC reference voltage smaller than the multiplier supply, at least
// one of the most significant magnitude bits of the partial dot product
// is cut off; the resolution of the ADC can then be increased. The
// effectiveness of this scheme is network- and data-dependent" — so this
// module evaluates it against *empirical* partial-sum samples captured
// from real layers.
#pragma once

#include <span>
#include <vector>

#include "ams/vmac_cell.hpp"

namespace ams::vmac {

/// Outcome of evaluating one reference scale against a sample set.
struct ReferenceScaleResult {
    double reference_scale = 1.0;  ///< ADC reference / natural full scale
    double rms_error = 0.0;        ///< RMS conversion error over the samples
    double clip_fraction = 0.0;    ///< fraction of samples that clipped
    double effective_enob = 0.0;   ///< ENOB implied by the measured RMS error
};

/// Simulates an ENOB-bit ADC with the given reference scale over empirical
/// analog dot-product samples (in dot-product units, natural full scale =
/// Nmult). Returns the measured error statistics.
/// Throws std::invalid_argument if samples is empty or scale <= 0.
[[nodiscard]] ReferenceScaleResult evaluate_reference_scale(
    const VmacConfig& config, std::span<const double> samples, double reference_scale);

/// Evaluates each candidate scale and returns all results, best (lowest
/// RMS error) first.
[[nodiscard]] std::vector<ReferenceScaleResult> sweep_reference_scales(
    const VmacConfig& config, std::span<const double> samples,
    std::span<const double> candidate_scales);

}  // namespace ams::vmac
