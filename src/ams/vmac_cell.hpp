// VmacCell: bit-exact behavioural simulation of the AMS VMAC of Fig. 1.
//
// Where ErrorInjector applies the paper's *statistical* model (Eq. 2) at
// the network level, VmacCell simulates one physical cell sample by
// sample: sign-magnitude operand encoding, error-free D-to-A multipliers
// (optionally with thermal noise), analog summation or averaging, ADC
// thermal noise, clipping, and mid-tread quantization. The tests and the
// vmac microbench use it to validate that the lumped statistical model
// matches what the hardware-level cell actually produces.
#pragma once

#include <span>
#include <vector>

#include "ams/adc_quantizer.hpp"
#include "ams/vmac_config.hpp"
#include "quant/fixed_point.hpp"
#include "tensor/rng.hpp"

namespace ams::vmac {

/// Analog non-idealities of the cell, expressed at the ADC input in
/// dot-product units (one ideal product spans [-1, 1]).
struct AnalogOptions {
    /// Std-dev of additive thermal noise per D-to-A multiplier output.
    double multiplier_noise_sigma = 0.0;
    /// Std-dev of additive thermal noise at the ADC input.
    double adc_noise_sigma = 0.0;
    /// ADC reference scale relative to the natural full scale (Sec. 4,
    /// method 3): the converter spans [-ref, +ref] with
    /// ref = reference_scale * full_scale; inputs beyond it clip.
    double reference_scale = 1.0;
};

/// One AMS vector multiply-accumulate cell.
class VmacCell {
public:
    /// The cell's ADC uses `config.enob` as its *quantizer* resolution;
    /// thermal noise from `analog` adds on top, so the composite effective
    /// ENOB (effective_enob()) is <= config.enob.
    /// Throws std::invalid_argument on invalid config or reference_scale <= 0.
    VmacCell(const VmacConfig& config, const AnalogOptions& analog = {});

    /// Digital full scale of the analog dot product: Nmult for summation,
    /// 1 for averaging.
    [[nodiscard]] double full_scale() const;

    /// ADC step: 2 * reference_scale * full_scale / 2^enob.
    [[nodiscard]] double adc_lsb() const;

    /// Composite effective ENOB accounting for quantization plus thermal
    /// noise (variance sum), per the standard ENOB definition.
    [[nodiscard]] double effective_enob() const;

    /// Computes the cell's digital output for `nmult` (or fewer) operand
    /// pairs. Values are encoded to BW / BX-bit sign-magnitude first, so
    /// the caller may pass unquantized reals. For averaging hardware the
    /// returned value is already rescaled by Nmult (Sec. 2: averaging just
    /// moves the binary point; the digital interpretation restores it).
    /// Throws std::invalid_argument if sizes mismatch or exceed nmult.
    [[nodiscard]] double dot(std::span<const double> weights,
                             std::span<const double> activations, Rng& rng) const;

    /// The ideal (infinite-precision analog) dot product of the *encoded*
    /// operands — i.e. after operand quantization but before any analog
    /// error. dot() - dot_ideal() is exactly the AMS error E_VMAC.
    [[nodiscard]] double dot_ideal(std::span<const double> weights,
                                   std::span<const double> activations) const;

    /// Computes a long dot product by tiling across ceil(n/Nmult) cells
    /// and accumulating the digital outputs (paper Sec. 2: partial sums
    /// add digitally with no further precision loss).
    [[nodiscard]] double dot_tiled(std::span<const double> weights,
                                   std::span<const double> activations, Rng& rng) const;

    [[nodiscard]] const VmacConfig& config() const { return config_; }
    [[nodiscard]] const AnalogOptions& analog() const { return analog_; }

    /// Mid-tread quantization of `v` to the cell's ADC grid, with clipping
    /// at +/- reference_scale * full_scale. Exposed for the extension
    /// methods (delta-sigma, partitioning) that reuse the converter.
    [[nodiscard]] double convert(double v) const { return quantizer_.convert(v); }

    /// The cell's converter (the shared quantizer model).
    [[nodiscard]] const AdcQuantizer& quantizer() const { return quantizer_; }

private:
    VmacConfig config_;
    AnalogOptions analog_;
    quant::SignMagCodec weight_codec_;
    quant::SignMagCodec act_codec_;
    AdcQuantizer quantizer_;
};

}  // namespace ams::vmac
