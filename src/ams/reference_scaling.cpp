#include "ams/reference_scaling.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ams/adc_quantizer.hpp"

namespace ams::vmac {

ReferenceScaleResult evaluate_reference_scale(const VmacConfig& config,
                                              std::span<const double> samples,
                                              double reference_scale) {
    config.validate();
    if (samples.empty()) {
        throw std::invalid_argument("evaluate_reference_scale: need samples");
    }
    if (reference_scale <= 0.0) {
        throw std::invalid_argument("evaluate_reference_scale: scale must be positive");
    }
    const double fs = static_cast<double>(config.nmult);
    const AdcQuantizer adc(config.enob, fs, reference_scale);

    double sq_err = 0.0;
    std::size_t clipped = 0;
    for (double v : samples) {
        if (adc.clips(v)) ++clipped;
        const double err = adc.convert(v) - v;
        sq_err += err * err;
    }
    ReferenceScaleResult r;
    r.reference_scale = reference_scale;
    r.rms_error = std::sqrt(sq_err / static_cast<double>(samples.size()));
    r.clip_fraction = static_cast<double>(clipped) / static_cast<double>(samples.size());
    // ENOB implied by the error, per the same LSB <-> variance convention
    // as the error model (LSB_eff = sqrt(12) * rms).
    r.effective_enob = effective_enob_from_rms(r.rms_error, fs);
    return r;
}

std::vector<ReferenceScaleResult> sweep_reference_scales(
    const VmacConfig& config, std::span<const double> samples,
    std::span<const double> candidate_scales) {
    if (candidate_scales.empty()) {
        throw std::invalid_argument("sweep_reference_scales: need candidates");
    }
    std::vector<ReferenceScaleResult> results;
    results.reserve(candidate_scales.size());
    for (double s : candidate_scales) {
        results.push_back(evaluate_reference_scale(config, samples, s));
    }
    std::sort(results.begin(), results.end(),
              [](const auto& a, const auto& b) { return a.rms_error < b.rms_error; });
    return results;
}

}  // namespace ams::vmac
