#include "ams/block_fp.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace ams::vmac {

namespace {

/// Block quantum for one operand vector: 2^(e_max - mantissa_bits),
/// where e_max is the shared (maximum) frexp exponent over the chunk.
/// Every |v| then encodes as lround(v / quantum) with magnitude
/// <= 2^mantissa_bits. All-zero chunks get quantum 1 (mantissas are 0).
double block_quantum(std::span<const double> values, std::size_t mantissa_bits) {
    double max_abs = 0.0;
    for (const double v : values) max_abs = std::max(max_abs, std::fabs(v));
    if (max_abs == 0.0) return 1.0;
    int e = 0;
    (void)std::frexp(max_abs, &e);  // max_abs = m * 2^e, m in [0.5, 1)
    return std::ldexp(1.0, e - static_cast<int>(mantissa_bits));
}

/// Thread-local mantissa scratch: the simulator runs one chunk at a time
/// per thread, and clones never share state, so reuse is safe.
std::vector<std::int64_t>& mantissa_scratch(std::size_t which, std::size_t n) {
    thread_local std::vector<std::int64_t> bufs[2];
    bufs[which].resize(n);
    return bufs[which];
}

}  // namespace

BlockFpVmac::BlockFpVmac(const VmacConfig& config, std::size_t mantissa_bits_w,
                         std::size_t mantissa_bits_x, const AnalogOptions& analog)
    : config_(config), analog_(analog), mw_(mantissa_bits_w), mx_(mantissa_bits_x) {
    config_.validate();
    if (mw_ < 2 || mw_ > 30 || mx_ < 2 || mx_ > 30) {
        throw std::invalid_argument("BlockFpVmac: mantissa bits must be in [2, 30]");
    }
    if (analog_.reference_scale <= 0.0) {
        throw std::invalid_argument("BlockFpVmac: reference_scale must be positive");
    }
    if (analog_.multiplier_noise_sigma < 0.0 || analog_.adc_noise_sigma < 0.0) {
        throw std::invalid_argument("BlockFpVmac: noise sigmas must be non-negative");
    }
    quantizer_ = AdcQuantizer(config_.enob, full_scale(), analog_.reference_scale);
}

double BlockFpVmac::full_scale() const {
    return config_.accumulation == Accumulation::kSum ? static_cast<double>(config_.nmult)
                                                      : 1.0;
}

double BlockFpVmac::dot(std::span<const double> weights, std::span<const double> activations,
                        Rng& rng) const {
    if (weights.size() != activations.size()) {
        throw std::invalid_argument("BlockFpVmac: weight/activation count mismatch");
    }
    if (weights.size() > config_.nmult) {
        throw std::invalid_argument("BlockFpVmac: more operand pairs than nmult");
    }
    const std::size_t n = weights.size();
    const double qw = block_quantum(weights, mw_);
    const double qx = block_quantum(activations, mx_);
    std::vector<std::int64_t>& mw_codes = mantissa_scratch(0, n);
    std::vector<std::int64_t>& mx_codes = mantissa_scratch(1, n);
    for (std::size_t i = 0; i < n; ++i) {
        mw_codes[i] = std::llround(weights[i] / qw);
        mx_codes[i] = std::llround(activations[i] / qx);
    }
    // q = qw * qx is a product of powers of two: the mantissa dot scales
    // back to the value domain exactly (no rounding in the multiply).
    const double q = qw * qx;
    double analog_sum;
    if (analog_.multiplier_noise_sigma > 0.0) {
        // Thermal noise per D-to-A multiplier output, as in VmacCell.
        analog_sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            analog_sum += static_cast<double>(mw_codes[i] * mx_codes[i]) * q +
                          rng.normal(0.0, analog_.multiplier_noise_sigma);
        }
    } else {
        // Exact integer accumulation: |mantissa product| <= 2^(mw+mx)
        // <= 2^60, and nmult products stay far below the int64 range for
        // any realistic vector length.
        std::int64_t acc = 0;
        for (std::size_t i = 0; i < n; ++i) acc += mw_codes[i] * mx_codes[i];
        analog_sum = static_cast<double>(acc) * q;
    }
    const bool averaging = config_.accumulation == Accumulation::kAverage;
    if (averaging) analog_sum /= static_cast<double>(config_.nmult);
    if (analog_.adc_noise_sigma > 0.0) {
        analog_sum += rng.normal(0.0, analog_.adc_noise_sigma);
    }
    const double digital = quantizer_.convert(analog_sum);
    return averaging ? digital * static_cast<double>(config_.nmult) : digital;
}

double BlockFpVmac::effective_enob() const {
    const double lsb = quantizer_.lsb();
    const double quant_var = lsb * lsb / 12.0;
    const double avg_div = config_.accumulation == Accumulation::kAverage
                               ? static_cast<double>(config_.nmult)
                               : 1.0;
    // Worst-case mantissa quanta: operands at full scale (|v| <= 1) give
    // block exponent 1, quantum 2^(1 - m). Per product the mantissa
    // rounding contributes ~ (qw^2 E[x^2] + qx^2 E[w^2]) / 12, bounded
    // with E[.^2] <= 1; nmult products accumulate before the (optional)
    // averaging division.
    const double qw = std::exp2(1.0 - static_cast<double>(mw_));
    const double qx = std::exp2(1.0 - static_cast<double>(mx_));
    const double mant_var = static_cast<double>(config_.nmult) * (qw * qw + qx * qx) / 12.0 /
                            (avg_div * avg_div);
    const double mult_var = static_cast<double>(config_.nmult) *
                            analog_.multiplier_noise_sigma * analog_.multiplier_noise_sigma /
                            (avg_div * avg_div);
    const double adc_var = analog_.adc_noise_sigma * analog_.adc_noise_sigma;
    const double total = quant_var + mant_var + mult_var + adc_var;
    return effective_enob_from_rms(std::sqrt(total), full_scale());
}

}  // namespace ams::vmac
