// VmacConv2d: convolution computed through explicit AMS VMAC cells.
//
// Section 4, "improving our error models": "One method that would be
// closer to a hardware implementation would be to split up the
// convolution into VMAC-sized units and inject error at the output of
// each VMAC separately. This avoids assuming that these additive errors
// from separate VMACs are uncorrelated, but at the cost of slowing down
// the computation of each convolution. ... this modeling can be performed
// for evaluation only."
//
// This module does exactly that: it lowers the convolution with im2col,
// slices each output activation's N_tot products into ceil(N_tot/Nmult)
// VMAC-sized chunks, pushes every chunk through a pluggable VmacBackend
// datapath (bit-exact cell, per-VMAC noise, partitioned, delta-sigma, or
// reference-scaled — see ams/vmac_backend.hpp), and sums the digital
// outputs. Chunks of one output activation are streamed contiguously, so
// stateful backends (delta-sigma) see the output stationarity they
// require. It is evaluation-only, as the paper suggests.
#pragma once

#include <memory>

#include "ams/vmac_backend.hpp"
#include "nn/module.hpp"
#include "runtime/rng_stream.hpp"
#include "tensor/im2col.hpp"

namespace ams::vmac {

/// Fidelity of the per-VMAC computation (legacy selector; the two modes
/// are now thin aliases for the corresponding VmacBackend kinds).
enum class VmacConvMode {
    /// Full behavioural simulation: operand codecs + ADC per chunk.
    kBitExact,
    /// Exact digital partial sums + one uniform(-LSB/2, LSB/2) error per
    /// chunk — per-VMAC granularity without the operand re-quantization.
    kPerVmacNoise,
};

/// Evaluation-only convolution through explicit VMAC hardware.
class VmacConv2d : public nn::Module {
public:
    /// `weight` layout {out_channels, in_channels, k, k}; values are used
    /// as-is (pass DoReFa-quantized weights for a faithful pipeline).
    /// `rng` seeds the per-tile noise streams: every (image, out-channel)
    /// tile of every forward pass draws from its own derived generator,
    /// so outputs are bit-identical at any AMSNET_THREADS.
    /// Throws std::invalid_argument on shape/config mismatch.
    VmacConv2d(Tensor weight, std::size_t stride, std::size_t padding,
               const VmacConfig& config, const AnalogOptions& analog, VmacConvMode mode,
               Rng rng);

    /// Backend-generic constructor: routes every VMAC-sized chunk through
    /// the datapath selected by `backend` (see ams/vmac_backend.hpp).
    VmacConv2d(Tensor weight, std::size_t stride, std::size_t padding,
               const VmacConfig& config, const AnalogOptions& analog,
               const BackendOptions& backend, Rng rng);

    Tensor forward(const Tensor& input) override;
    Shape plan(const Shape& in, runtime::EvalContext& ctx) override;
    Tensor forward(const Tensor& input, runtime::EvalContext& ctx) override;

    /// Evaluation-only: backward is not implemented (the paper's proposal
    /// applies this model at evaluation time). Throws std::logic_error
    /// naming the module and the selected backend.
    Tensor backward(const Tensor& grad_output) override;

    [[nodiscard]] std::string name() const override { return "VmacConv2d"; }

    [[nodiscard]] std::size_t n_tot() const;
    [[nodiscard]] const VmacConfig& config() const { return backend_->config(); }
    /// The datapath every chunk is routed through.
    [[nodiscard]] const VmacBackend& backend() const { return *backend_; }

    /// Output shape for a given input shape (validates like forward).
    [[nodiscard]] Shape output_shape(const Shape& in) const;

    /// Planned-execution hook: runs one forward pass over `input` (laid
    /// out as `in_shape`) into the caller-provided `out` buffer, reserving
    /// its scratch from `ctx` exactly like forward(input, ctx). Consumes
    /// one noise epoch; arithmetic, tile/stream mapping, and scratch keys
    /// are identical to the module path, so a compiled plan sharing this
    /// module's EvalContext stays bit-identical to the module walk.
    void forward_planned(const float* input, const Shape& in_shape, float* out,
                         runtime::EvalContext& ctx);

private:
    /// Validates the input shape and builds the shared lowering for it.
    [[nodiscard]] ConvLowering make_lowering(const Shape& in) const;

    /// Runs tiles [t_begin, t_end) of one forward pass: reads the lowered
    /// `columns`, writes `out`. `w_chunk`/`x_chunk` are caller-provided
    /// nmult-double staging buffers (per-chunk scratch), so the identical
    /// arithmetic serves both the allocating and the arena path. Clones
    /// the backend once per call: per-output state stays worker-local.
    void compute_tiles(std::size_t t_begin, std::size_t t_end,
                       const runtime::RngStream& pass_streams, const float* columns,
                       std::size_t out_spatial, std::size_t patch, double* w_chunk,
                       double* x_chunk, float* out);

    Tensor weight_;
    std::size_t stride_;
    std::size_t padding_;
    std::unique_ptr<VmacBackend> backend_;
    runtime::RngStream streams_;       ///< root of the per-tile noise streams
    std::uint64_t forward_count_ = 0;  ///< distinct streams per forward pass
};

}  // namespace ams::vmac
