#include "ams/delta_sigma.hpp"

#include <algorithm>
#include <stdexcept>

namespace ams::vmac {

namespace {
VmacConfig with_enob(VmacConfig c, double enob) {
    c.enob = enob;
    return c;
}
}  // namespace

DeltaSigmaVmac::DeltaSigmaVmac(const VmacConfig& config, double final_enob,
                               const AnalogOptions& analog)
    : cell_(config, analog),
      final_cell_(with_enob(config, final_enob), analog),
      final_enob_(final_enob) {
    if (final_enob < config.enob) {
        throw std::invalid_argument(
            "DeltaSigmaVmac: final conversion must be at least as fine as the per-cycle one");
    }
}

double DeltaSigmaVmac::accumulate(std::span<const double> weights,
                                  std::span<const double> activations, Rng& rng) {
    // Ideal analog partial sum of this cycle plus the carried residual.
    // Thermal noise enters each cycle and is NOT recycled (the paper:
    // "reduces the total incurred quantization error, but does not change
    // the impact of thermal noise").
    double analog = cell_.dot_ideal(weights, activations) + residual_;
    if (cell_.analog().multiplier_noise_sigma > 0.0) {
        for (std::size_t i = 0; i < weights.size(); ++i) {
            analog += rng.normal(0.0, cell_.analog().multiplier_noise_sigma);
        }
    }
    if (cell_.analog().adc_noise_sigma > 0.0) {
        analog += rng.normal(0.0, cell_.analog().adc_noise_sigma);
    }
    const double digital = cell_.convert(analog);
    residual_ = analog - digital;
    return digital;
}

double DeltaSigmaVmac::finalize(Rng& rng) {
    double analog = residual_;
    if (final_cell_.analog().adc_noise_sigma > 0.0) {
        analog += rng.normal(0.0, final_cell_.analog().adc_noise_sigma);
    }
    const double digital = final_cell_.convert(analog);
    residual_ = 0.0;
    return digital;
}

double DeltaSigmaVmac::dot(std::span<const double> weights,
                           std::span<const double> activations, Rng& rng) {
    if (weights.size() != activations.size()) {
        throw std::invalid_argument("DeltaSigmaVmac::dot: size mismatch");
    }
    const std::size_t nmult = cell_.config().nmult;
    double acc = 0.0;
    for (std::size_t start = 0; start < weights.size(); start += nmult) {
        const std::size_t len = std::min(nmult, weights.size() - start);
        acc += accumulate(weights.subspan(start, len), activations.subspan(start, len), rng);
    }
    acc += finalize(rng);
    return acc;
}

}  // namespace ams::vmac
