// DeviceVariation: per-chip static non-idealities as a VmacBackend
// decorator, composable with any of the six datapaths.
//
// Real AMS silicon is not i.i.d. across inferences: every fabricated
// chip carries a frozen realization of programming offsets, its
// conductances drift with time since programming, and array positions
// far from the drivers see correlated IR-drop gain loss ("On the
// Accuracy of Analog Neural Network Inference Accelerators"). This
// decorator layers those *static* error families on top of the wrapped
// backend's *stochastic* conversion error:
//
//   family            applied as                        drawn from
//   ----------------  --------------------------------  -----------------
//   static offset     + offset(c) after conversion      N(0, sigma) per (chip, cell)
//   conductance drift * (t/t0)^-nu_c on the weights     nu_c = nu + nu_sigma*z(chip, cell)
//   IR drop           * 1 - alpha*min(1, c/ref) on w    position-keyed (no RNG)
//
// The cell index c is the chunk's position within the current output
// accumulator (reset by finish_output), matching a weight-stationary
// mapping where one output column's chunks are time-multiplexed onto the
// same physical VMAC column. It is a pure function of the chunk stream —
// never of scheduling — so a chip's realization is bit-identical at any
// thread count and across clone()d per-worker backends.
//
// Cost contract: the decorator adds no ADC conversions — offsets and
// gains are analog perturbations of conversions the wrapped backend
// already performs — so conversions_per_vmac()/conversion_profile()
// delegate unchanged. effective_enob() folds the static offset variance
// into the wrapped backend's error variance (Eq. 2 equivalence); the
// multiplicative drift/IR families are signal-proportional and excluded,
// like reference-scaling's data-dependent clipping.
#pragma once

#include <memory>
#include <vector>

#include "ams/vmac_backend.hpp"

namespace ams::vmac {

/// Decorates `inner` with a DeviceProfile's static error families.
class DeviceVariation final : public VmacBackend {
public:
    /// Throws std::invalid_argument on an invalid profile or null inner.
    DeviceVariation(std::unique_ptr<VmacBackend> inner, const DeviceProfile& profile);

    double accumulate(std::span<const double> weights, std::span<const double> activations,
                      Rng& rng) override;
    double finish_output(Rng& rng) override;

    /// Transparent decoration: reports the wrapped datapath's kind, so
    /// series labels and conversion ledgers stay per-datapath.
    [[nodiscard]] BackendKind kind() const override { return inner_->kind(); }
    [[nodiscard]] std::size_t conversions_per_vmac() const override {
        return inner_->conversions_per_vmac();
    }
    [[nodiscard]] ConversionProfile conversion_profile() const override {
        return inner_->conversion_profile();
    }
    [[nodiscard]] double effective_enob(std::size_t chunks_per_output) const override;
    [[nodiscard]] bool trainable() const override { return inner_->trainable(); }
    [[nodiscard]] std::unique_ptr<VmacBackend> clone() const override;
    [[nodiscard]] const VmacConfig& config() const override { return inner_->config(); }

    [[nodiscard]] const DeviceProfile& profile() const { return profile_; }
    [[nodiscard]] const VmacBackend& inner() const { return *inner_; }

    /// Frozen per-cell realization (tests validate these distributions).
    [[nodiscard]] double cell_offset(std::size_t cell) const;
    [[nodiscard]] double cell_gain(std::size_t cell) const;

private:
    struct CellState {
        double offset = 0.0;  ///< additive, output-referred
        double gain = 1.0;    ///< multiplicative on the weights
    };
    [[nodiscard]] const CellState& cell_state(std::size_t cell) const;

    std::unique_ptr<VmacBackend> inner_;
    DeviceProfile profile_;
    std::size_t cell_ = 0;  ///< chunk position within the current output
    mutable std::vector<CellState> cells_;  ///< lazily materialized realization
    std::vector<double> scaled_;            ///< weight-scaling scratch
};

/// Wraps `inner` when the profile is active; returns it unchanged when
/// not — an inactive profile is bit-identical to the bare backend by
/// construction, not by arithmetic.
[[nodiscard]] std::unique_ptr<VmacBackend> with_variation(std::unique_ptr<VmacBackend> inner,
                                                          const DeviceProfile& profile);

}  // namespace ams::vmac
