// AdcQuantizer: the one mid-tread ADC converter model shared by every
// datapath simulator.
//
// VmacCell, PartitionedVmac, and the reference-scaling analysis all
// digitize an analog value the same way — clip to +/- reference, round to
// the nearest of 2^ENOB uniform steps spanning the clipped range — and
// each used to carry its own copy of that arithmetic. This header is the
// single definition, so the converters cannot drift apart.
#pragma once

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ams::vmac {

/// Mid-tread quantizer with clipping at +/- (reference_scale * full_scale).
class AdcQuantizer {
public:
    /// Placeholder state (1-bit, unit range); assign a configured instance
    /// before converting.
    AdcQuantizer() : AdcQuantizer(1.0, 1.0, 1.0) {}

    /// `full_scale` is the natural range of the analog value (Nmult in
    /// dot-product units for summation hardware, 1 for averaging);
    /// `reference_scale` shrinks or stretches the converter span relative
    /// to it (Sec. 4, method 3). Throws std::invalid_argument if either is
    /// non-positive or enob is outside (0, 32].
    AdcQuantizer(double enob, double full_scale, double reference_scale = 1.0)
        : reference_(reference_scale * full_scale),
          // Keep the historical evaluation order (2 * scale * range * step)
          // so refactored call sites stay bit-identical.
          lsb_(2.0 * reference_scale * full_scale * std::exp2(-enob)) {
        if (enob <= 0.0 || enob > 32.0) {
            throw std::invalid_argument("AdcQuantizer: enob must be in (0, 32]");
        }
        if (full_scale <= 0.0 || reference_scale <= 0.0) {
            throw std::invalid_argument("AdcQuantizer: scales must be positive");
        }
    }

    /// Clip range: the converter spans [-reference(), +reference()].
    [[nodiscard]] double reference() const { return reference_; }

    /// Step size: 2 * reference / 2^enob.
    [[nodiscard]] double lsb() const { return lsb_; }

    /// Whether `v` lies outside the converter span (would clip).
    [[nodiscard]] bool clips(double v) const { return v < -reference_ || v > reference_; }

    /// Digital output for analog input `v`: clip, then round to the grid.
    [[nodiscard]] double convert(double v) const {
        const double clipped = std::clamp(v, -reference_, reference_);
        return std::round(clipped / lsb_) * lsb_;
    }

private:
    double reference_;
    double lsb_;
};

/// ENOB implied by a measured RMS conversion error over a range of
/// +/- full_scale, per the LSB <-> variance convention used throughout
/// (LSB_eff = sqrt(12) * rms). The inverse of lsb() above.
[[nodiscard]] inline double effective_enob_from_rms(double rms_error, double full_scale) {
    const double lsb_eff = std::sqrt(12.0) * std::max(rms_error, 1e-300);
    return std::log2(2.0 * full_scale / lsb_eff);
}

}  // namespace ams::vmac
