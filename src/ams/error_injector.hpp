// ErrorInjector: network-level AMS error injection (paper Sec. 2, Fig. 3).
//
// The injector sits between a (quantized) convolution / FC layer and its
// batch norm, lumping the error of all the VMAC cells that compute one
// output activation into a single additive sample at the digitally
// accumulated output. The error is applied in the forward pass only; the
// backward pass is the identity ("we inject this error during only the
// forward pass, leaving the backward pass untouched").
#pragma once

#include <cstdint>
#include <memory>

#include "ams/error_model.hpp"
#include "nn/module.hpp"
#include "runtime/rng_stream.hpp"

namespace ams::vmac {

/// How the lumped error sample is drawn.
enum class InjectionMode {
    /// Eq. 2: one N(0, sqrt(Ntot/Nmult) * LSB / sqrt(12)) sample per output.
    /// This is the model the paper trains and evaluates with.
    kLumpedGaussian,
    /// Section 4 "improving our error models": draw ceil(Ntot/Nmult)
    /// independent uniform(-LSB/2, LSB/2) samples per output and sum them —
    /// per-VMAC granularity without the normality assumption. Used by the
    /// ablation bench to validate the lumped model.
    kPerVmacUniform,
};

/// Additive AMS noise module.
class ErrorInjector : public nn::Module {
public:
    /// `n_tot` is the multiplications per output activation of the layer
    /// this injector follows. `rng` seeds the per-tile noise streams
    /// (fixed tiles of the output tensor, one derived stream per tile per
    /// forward pass), so injection is bit-identical at any AMSNET_THREADS.
    /// Throws std::invalid_argument on bad config.
    ErrorInjector(VmacConfig config, std::size_t n_tot, Rng rng,
                  InjectionMode mode = InjectionMode::kLumpedGaussian);

    Tensor forward(const Tensor& input) override;
    Tensor forward(const Tensor& input, runtime::EvalContext& ctx) override;
    Tensor backward(const Tensor& grad_output) override { return grad_output; }
    [[nodiscard]] std::string name() const override { return "ErrorInjector"; }

    /// Master switch; a disabled injector is an exact pass-through. The
    /// training harness uses this to realize the paper's per-phase policy
    /// (e.g. no injection in the last layer during training).
    void set_enabled(bool enabled) { enabled_ = enabled; }
    [[nodiscard]] bool enabled() const { return enabled_; }

    /// Retunes the cell (used by the ENOB sweeps).
    void set_config(const VmacConfig& config);
    [[nodiscard]] const VmacConfig& config() const { return config_; }
    [[nodiscard]] std::size_t n_tot() const { return n_tot_; }

    /// Std-dev of the injected error (Eq. 2); the "dashes" of Fig. 6.
    [[nodiscard]] double error_stddev() const;

    /// Adds one forward pass worth of noise to `data[0..count)` in place,
    /// consuming one noise epoch. This is the raw hook both forward
    /// overloads and the compiled-plan executor share: the per-tile stream
    /// mapping depends only on element position, so the realization is
    /// identical to the module walk for the same buffer contents. Callers
    /// must honor the enabled() switch themselves (a disabled injector on
    /// the module path copies without consuming an epoch).
    void inject_inplace(float* data, std::size_t count);

private:
    /// Adds one forward pass worth of noise to `out` in place, consuming
    /// one noise epoch. Shared by both forward overloads.
    void inject(Tensor& out);

    VmacConfig config_;
    std::size_t n_tot_;
    runtime::RngStream streams_;       ///< root of the per-tile noise streams
    std::uint64_t forward_count_ = 0;  ///< distinct streams per forward pass
    InjectionMode mode_;
    bool enabled_ = true;
};

}  // namespace ams::vmac
