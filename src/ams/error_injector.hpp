// ErrorInjector: network-level AMS error injection (paper Sec. 2, Fig. 3).
//
// The injector sits between a (quantized) convolution / FC layer and its
// batch norm, lumping the error of all the VMAC cells that compute one
// output activation into a single additive sample at the digitally
// accumulated output. The error is applied in the forward pass only; the
// backward pass is the identity ("we inject this error during only the
// forward pass, leaving the backward pass untouched").
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ams/device_profile.hpp"
#include "ams/error_model.hpp"
#include "nn/module.hpp"
#include "runtime/rng_stream.hpp"

namespace ams::vmac {

/// How the lumped error sample is drawn.
enum class InjectionMode {
    /// Eq. 2: one N(0, sqrt(Ntot/Nmult) * LSB / sqrt(12)) sample per output.
    /// This is the model the paper trains and evaluates with.
    kLumpedGaussian,
    /// Section 4 "improving our error models": draw ceil(Ntot/Nmult)
    /// independent uniform(-LSB/2, LSB/2) samples per output and sum them —
    /// per-VMAC granularity without the normality assumption. Used by the
    /// ablation bench to validate the lumped model.
    kPerVmacUniform,
};

/// Additive AMS noise module.
class ErrorInjector : public nn::Module {
public:
    /// `n_tot` is the multiplications per output activation of the layer
    /// this injector follows. `rng` seeds the per-tile noise streams
    /// (fixed tiles of the output tensor, one derived stream per tile per
    /// forward pass), so injection is bit-identical at any AMSNET_THREADS.
    /// `device` adds the lumped chip-level statics of a DeviceProfile on
    /// top of the stochastic Eq. 2 noise (see inject_inplace); inactive
    /// by default. Throws std::invalid_argument on bad config/profile.
    ErrorInjector(VmacConfig config, std::size_t n_tot, Rng rng,
                  InjectionMode mode = InjectionMode::kLumpedGaussian,
                  const DeviceProfile& device = {});

    Tensor forward(const Tensor& input) override;
    Tensor forward(const Tensor& input, runtime::EvalContext& ctx) override;
    Tensor backward(const Tensor& grad_output) override { return grad_output; }
    [[nodiscard]] std::string name() const override { return "ErrorInjector"; }

    /// Master switch; a disabled injector is an exact pass-through. The
    /// training harness uses this to realize the paper's per-phase policy
    /// (e.g. no injection in the last layer during training).
    void set_enabled(bool enabled) { enabled_ = enabled; }
    [[nodiscard]] bool enabled() const { return enabled_; }

    /// Retunes the cell (used by the ENOB sweeps).
    void set_config(const VmacConfig& config);
    [[nodiscard]] const VmacConfig& config() const { return config_; }
    [[nodiscard]] std::size_t n_tot() const { return n_tot_; }

    /// Std-dev of the injected error (Eq. 2); the "dashes" of Fig. 6.
    [[nodiscard]] double error_stddev() const;

    /// The chip-level statics applied before the stochastic noise.
    [[nodiscard]] const DeviceProfile& device() const { return device_; }

    /// Adds one forward pass worth of noise to `data[0..count)` in place,
    /// consuming one noise epoch. This is the raw hook both forward
    /// overloads and the compiled-plan executor share: the per-tile stream
    /// mapping depends only on element position, so the realization is
    /// identical to the module walk for the same buffer contents. Callers
    /// must honor the enabled() switch themselves (a disabled injector on
    /// the module path copies without consuming an epoch).
    ///
    /// With an active DeviceProfile a deterministic chip pre-pass runs
    /// first: data = drift_gain * data + sigma_out * field[channel],
    /// where `field` holds frozen unit normals keyed by (chip, layer,
    /// output channel) and sigma_out = sqrt(ceil(Ntot/Nmult)) *
    /// cell_offset_sigma lumps the column's per-cell offsets, mirroring a
    /// weight-stationary crossbar where every spatial position of one
    /// output channel reuses the same physical column. `batch`/`channels`
    /// describe the buffer's leading dims (the forward overloads derive
    /// them from the tensor shape; rank-1 buffers use 1/1). The pre-pass
    /// is position-keyed and RNG-state-free, so it preserves the
    /// thread-count invariance and module-vs-plan identity. Backward
    /// stays the identity (straight-through estimation): retraining sees
    /// the statics in the forward loss only, which is exactly the robust
    /// retraining recipe of the STE-extension paper.
    void inject_inplace(float* data, std::size_t count, std::size_t batch = 1,
                        std::size_t channels = 1);

private:
    /// Adds one forward pass worth of noise to `out` in place, consuming
    /// one noise epoch. Shared by both forward overloads.
    void inject(Tensor& out);

    /// The deterministic chip pre-pass described at inject_inplace().
    void apply_device_field(float* data, std::size_t count, std::size_t batch,
                            std::size_t channels);

    VmacConfig config_;
    std::size_t n_tot_;
    runtime::RngStream streams_;       ///< root of the per-tile noise streams
    std::uint64_t forward_count_ = 0;  ///< distinct streams per forward pass
    InjectionMode mode_;
    bool enabled_ = true;
    DeviceProfile device_;              ///< inactive by default
    std::vector<double> offset_field_;  ///< frozen per-channel unit normals
};

}  // namespace ams::vmac
