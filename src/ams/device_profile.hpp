// DeviceProfile: the per-chip variability knobs shared by the two
// injection seams (the DeviceVariation backend decorator and the
// network-level ErrorInjector).
//
// A "chip" is one fabricated instance of the accelerator: all of its
// static non-idealities are pure functions of (chip_seed, error family,
// cell position), derived through the counter-based RngStream splitter —
// never from mutable generator state — so a chip's realization is
// bit-identical at any thread count, across clone()d per-worker
// backends, and across processes of a sharded Monte-Carlo fleet.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ams::vmac {

/// Per-chip device variability: static programming offsets, conductance
/// drift, and column-correlated IR drop. Default-constructed profiles are
/// inactive (exact pass-through everywhere they are consumed).
struct DeviceProfile {
    /// Chip identity: the root of every per-cell derivation. Two chips
    /// with different seeds have statistically independent realizations.
    std::uint64_t chip_seed = 0;

    /// Std-dev of the per-cell static output-referred offset, in the
    /// dot-product's units (the scale where |w·x| <= 1 per chunk). Drawn
    /// once per (chip, cell), frozen thereafter.
    double cell_offset_sigma = 0.0;

    /// Conductance drift: G(t) = G0 * (t / t0)^-nu (PCM-style power-law
    /// decay). drift_time <= 0 or nu == 0 disables the family.
    double drift_nu = 0.0;    ///< population drift exponent
    double drift_time = 0.0;  ///< time since programming, units of t0
    double drift_t0 = 1.0;    ///< normalization time (gain is 1 at t = t0)
    /// Per-cell spread of the drift exponent: nu_c = nu + nu_sigma * z(c).
    double drift_nu_sigma = 0.0;

    /// Column-correlated IR drop: cells far from the driver see a supply
    /// sag, modeled as gain 1 - alpha * min(1, cell / ref_cells). This is
    /// a structured (position-keyed, not random) error family.
    double ir_drop_alpha = 0.0;
    std::size_t ir_drop_ref_cells = 64;

    /// True when any error family is switched on.
    [[nodiscard]] bool active() const;
    /// True when the drift family contributes (time and an exponent set).
    [[nodiscard]] bool has_drift() const;

    /// Population-mean drift gain (t/t0)^-nu; 1 when drift is inactive.
    [[nodiscard]] double drift_gain() const;
    /// Drift gain for a specific exponent (per-cell spread applied).
    [[nodiscard]] double drift_gain_for(double nu) const;

    /// Unit-normal deviate for (chip_seed, family, stream, cell) — a pure
    /// function, safe to evaluate concurrently from any tile or worker.
    [[nodiscard]] double cell_normal(std::uint64_t family, std::uint64_t stream,
                                     std::uint64_t cell) const;

    /// Compact tag ("chip7_off0.02_t64nu0.2") for cache keys, point ids,
    /// and CSV labels. Only active families contribute fields.
    [[nodiscard]] std::string str() const;

    /// Throws std::invalid_argument on non-physical settings (negative
    /// sigma, negative time, zero t0, IR-drop alpha outside [0, 1)).
    void validate() const;
};

/// Derivation families for cell_normal (distinct RNG subtrees).
inline constexpr std::uint64_t kFamilyCellOffset = 1;  ///< backend decorator offsets
inline constexpr std::uint64_t kFamilyDriftNu = 2;     ///< per-cell drift exponents
inline constexpr std::uint64_t kFamilyLayerOffset = 3; ///< network-level channel offsets

/// Reads AMSNET_CHIP / AMSNET_OFFSET_SIGMA / AMSNET_DRIFT_NU /
/// AMSNET_DRIFT_T / AMSNET_DRIFT_T0 / AMSNET_DRIFT_NU_SIGMA /
/// AMSNET_IR_ALPHA into a profile (unset variables keep defaults).
/// Throws std::invalid_argument if the result fails validate().
[[nodiscard]] DeviceProfile device_profile_from_env();

}  // namespace ams::vmac
