// VmacConfig: the parameters of the AMS vector multiply-accumulate cell.
//
// Fig. 1 of the paper: the VMAC takes Nmult (weight, activation) pairs,
// multiplies each digitally-to-analog, sums (or averages) the analog
// products, and digitizes the result with an ADC whose effective number
// of bits, ENOB_VMAC, lumps every AMS error source (multiplier thermal
// noise and nonlinearity; ADC thermal noise, nonlinearity, and
// quantization) referred to the ADC input.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace ams::vmac {

/// Whether the analog network sums or averages the multiplier outputs.
/// Section 2 shows the two are equivalent up to a digital rescale; the
/// library supports both so the equivalence can be tested.
enum class Accumulation { kSum, kAverage };

/// Static description of one AMS VMAC cell.
struct VmacConfig {
    double enob = 12.0;        ///< ENOB_VMAC; may be fractional (paper sweeps 12.5)
    std::size_t nmult = 8;     ///< vector length per cell
    std::size_t bits_w = 8;    ///< BW: weight bits (sign-magnitude)
    std::size_t bits_x = 8;    ///< BX: activation bits (sign-magnitude)
    Accumulation accumulation = Accumulation::kSum;

    /// Throws std::invalid_argument if any field is out of range.
    void validate() const {
        if (enob <= 0.0 || enob > 32.0) {
            throw std::invalid_argument("VmacConfig: enob must be in (0, 32]");
        }
        if (nmult == 0) throw std::invalid_argument("VmacConfig: nmult must be > 0");
        if (bits_w < 2 || bits_x < 2) {
            throw std::invalid_argument("VmacConfig: operand bitwidths must be >= 2");
        }
    }

    [[nodiscard]] std::string str() const {
        return "VmacConfig{enob=" + std::to_string(enob) + ", nmult=" + std::to_string(nmult) +
               ", bw=" + std::to_string(bits_w) + ", bx=" + std::to_string(bits_x) +
               (accumulation == Accumulation::kSum ? ", sum}" : ", avg}");
    }
};

}  // namespace ams::vmac
