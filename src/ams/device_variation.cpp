#include "ams/device_variation.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "ams/error_model.hpp"
#include "runtime/metrics.hpp"
#include "runtime/rng_stream.hpp"

namespace ams::vmac {

// ----- DeviceProfile --------------------------------------------------

bool DeviceProfile::active() const {
    return cell_offset_sigma > 0.0 || has_drift() || ir_drop_alpha > 0.0;
}

bool DeviceProfile::has_drift() const {
    return drift_time > 0.0 && (drift_nu != 0.0 || drift_nu_sigma > 0.0);
}

double DeviceProfile::drift_gain() const { return drift_gain_for(drift_nu); }

double DeviceProfile::drift_gain_for(double nu) const {
    if (!has_drift()) return 1.0;
    return std::pow(drift_time / drift_t0, -nu);
}

double DeviceProfile::cell_normal(std::uint64_t family, std::uint64_t stream,
                                  std::uint64_t cell) const {
    // Pure counter-based derivation: (chip, family, stream, cell) names
    // the deviate, no mutable state is read or advanced. The same scheme
    // (and code) as the injector's per-tile noise streams.
    Rng rng = runtime::RngStream(chip_seed).substream(family).substream(stream).stream(cell);
    return rng.normal(0.0, 1.0);
}

std::string DeviceProfile::str() const {
    std::ostringstream os;
    os << "chip" << chip_seed;
    if (cell_offset_sigma > 0.0) os << "_off" << cell_offset_sigma;
    if (has_drift()) {
        os << "_t" << drift_time << "nu" << drift_nu;
        if (drift_t0 != 1.0) os << "t0" << drift_t0;
        if (drift_nu_sigma > 0.0) os << "ns" << drift_nu_sigma;
    }
    if (ir_drop_alpha > 0.0) os << "_ir" << ir_drop_alpha << "r" << ir_drop_ref_cells;
    return os.str();
}

void DeviceProfile::validate() const {
    if (cell_offset_sigma < 0.0) {
        throw std::invalid_argument("DeviceProfile: cell_offset_sigma must be >= 0");
    }
    if (drift_time < 0.0) {
        throw std::invalid_argument("DeviceProfile: drift_time must be >= 0");
    }
    if (drift_t0 <= 0.0) {
        throw std::invalid_argument("DeviceProfile: drift_t0 must be > 0");
    }
    if (drift_nu_sigma < 0.0) {
        throw std::invalid_argument("DeviceProfile: drift_nu_sigma must be >= 0");
    }
    if (ir_drop_alpha < 0.0 || ir_drop_alpha >= 1.0) {
        throw std::invalid_argument("DeviceProfile: ir_drop_alpha must be in [0, 1)");
    }
    if (ir_drop_alpha > 0.0 && ir_drop_ref_cells == 0) {
        throw std::invalid_argument("DeviceProfile: ir_drop_ref_cells must be > 0");
    }
}

DeviceProfile device_profile_from_env() {
    DeviceProfile p;
    const auto read_u64 = [](const char* name, std::uint64_t fallback) {
        const char* v = std::getenv(name);
        return v != nullptr && *v != '\0' ? std::strtoull(v, nullptr, 10) : fallback;
    };
    const auto read_double = [](const char* name, double fallback) {
        const char* v = std::getenv(name);
        return v != nullptr && *v != '\0' ? std::strtod(v, nullptr) : fallback;
    };
    p.chip_seed = read_u64("AMSNET_CHIP", p.chip_seed);
    p.cell_offset_sigma = read_double("AMSNET_OFFSET_SIGMA", p.cell_offset_sigma);
    p.drift_nu = read_double("AMSNET_DRIFT_NU", p.drift_nu);
    p.drift_time = read_double("AMSNET_DRIFT_T", p.drift_time);
    p.drift_t0 = read_double("AMSNET_DRIFT_T0", p.drift_t0);
    p.drift_nu_sigma = read_double("AMSNET_DRIFT_NU_SIGMA", p.drift_nu_sigma);
    p.ir_drop_alpha = read_double("AMSNET_IR_ALPHA", p.ir_drop_alpha);
    p.validate();
    return p;
}

// ----- DeviceVariation ------------------------------------------------

DeviceVariation::DeviceVariation(std::unique_ptr<VmacBackend> inner,
                                 const DeviceProfile& profile)
    : inner_(std::move(inner)), profile_(profile) {
    if (inner_ == nullptr) {
        throw std::invalid_argument("DeviceVariation: null inner backend");
    }
    profile_.validate();
}

const DeviceVariation::CellState& DeviceVariation::cell_state(std::size_t cell) const {
    while (cells_.size() <= cell) {
        const std::uint64_t c = cells_.size();
        CellState s;
        if (profile_.cell_offset_sigma > 0.0) {
            s.offset = profile_.cell_offset_sigma *
                       profile_.cell_normal(kFamilyCellOffset, 0, c);
        }
        if (profile_.has_drift()) {
            double nu = profile_.drift_nu;
            if (profile_.drift_nu_sigma > 0.0) {
                nu += profile_.drift_nu_sigma * profile_.cell_normal(kFamilyDriftNu, 0, c);
            }
            s.gain *= profile_.drift_gain_for(nu);
        }
        if (profile_.ir_drop_alpha > 0.0) {
            const double depth = std::min(
                1.0, static_cast<double>(c) / static_cast<double>(profile_.ir_drop_ref_cells));
            s.gain *= 1.0 - profile_.ir_drop_alpha * depth;
        }
        cells_.push_back(s);
    }
    return cells_[cell];
}

double DeviceVariation::cell_offset(std::size_t cell) const { return cell_state(cell).offset; }

double DeviceVariation::cell_gain(std::size_t cell) const { return cell_state(cell).gain; }

double DeviceVariation::accumulate(std::span<const double> weights,
                                   std::span<const double> activations, Rng& rng) {
    const CellState& cs = cell_state(cell_++);
    runtime::metrics::add(runtime::metrics::Counter::kVariationChunks);
    if (cs.gain == 1.0) {
        return inner_->accumulate(weights, activations, rng) + cs.offset;
    }
    // Drift/IR act on the stored conductances: scale the weights before
    // the wrapped datapath re-quantizes and converts them.
    scaled_.assign(weights.begin(), weights.end());
    for (double& w : scaled_) w *= cs.gain;
    return inner_->accumulate({scaled_.data(), scaled_.size()}, activations, rng) + cs.offset;
}

double DeviceVariation::finish_output(Rng& rng) {
    cell_ = 0;  // next output re-uses the same physical column of cells
    return inner_->finish_output(rng);
}

double DeviceVariation::effective_enob(std::size_t chunks_per_output) const {
    const double e = inner_->effective_enob(chunks_per_output);
    if (profile_.cell_offset_sigma <= 0.0) return e;
    // Eq. 2 equivalence: fold the static per-conversion offset variance
    // into the wrapped backend's conversion-error variance and solve for
    // the monolithic ENOB with the combined variance. Multiplicative
    // drift/IR families are signal-proportional and excluded (like
    // reference-scaling's clipping penalty — measured, not folded).
    VmacConfig at_e = inner_->config();
    at_e.enob = e;
    const double var_inner = vmac_error_variance(at_e);
    const double var_offset = profile_.cell_offset_sigma * profile_.cell_offset_sigma;
    return e - 0.5 * std::log2((var_inner + var_offset) / var_inner);
}

std::unique_ptr<VmacBackend> DeviceVariation::clone() const {
    return std::make_unique<DeviceVariation>(inner_->clone(), profile_);
}

std::unique_ptr<VmacBackend> with_variation(std::unique_ptr<VmacBackend> inner,
                                            const DeviceProfile& profile) {
    if (!profile.active()) return inner;
    return std::make_unique<DeviceVariation>(std::move(inner), profile);
}

}  // namespace ams::vmac
