#include "ams/vmac_conv.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "runtime/metrics.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/trace.hpp"

namespace ams::vmac {

namespace {

BackendOptions options_for_mode(VmacConvMode mode) {
    BackendOptions options;
    options.kind = (mode == VmacConvMode::kBitExact) ? BackendKind::kBitExact
                                                     : BackendKind::kPerVmacNoise;
    return options;
}

/// Span tag "backend=<kind> in=BxCxHxW" — only formatted when spans are
/// actually recording, so the snprintf stays off the off/counters paths.
void format_forward_tag(char* tag, std::size_t capacity, BackendKind kind, const Shape& in) {
    tag[0] = '\0';
    if (!runtime::metrics::spans_enabled()) return;
    std::snprintf(tag, capacity, "backend=%s in=%zux%zux%zux%zu", backend_kind_name(kind),
                  in.dim(0), in.dim(1), in.dim(2), in.dim(3));
}

}  // namespace

VmacConv2d::VmacConv2d(Tensor weight, std::size_t stride, std::size_t padding,
                       const VmacConfig& config, const AnalogOptions& analog,
                       VmacConvMode mode, Rng rng)
    : VmacConv2d(std::move(weight), stride, padding, config, analog, options_for_mode(mode),
                 rng) {}

VmacConv2d::VmacConv2d(Tensor weight, std::size_t stride, std::size_t padding,
                       const VmacConfig& config, const AnalogOptions& analog,
                       const BackendOptions& backend, Rng rng)
    : weight_(std::move(weight)),
      stride_(stride),
      padding_(padding),
      backend_(make_backend(config, analog, backend)),
      streams_(runtime::RngStream::from(rng)) {
    if (weight_.rank() != 4) {
        throw std::invalid_argument("VmacConv2d: weight must be {Cout, Cin, K, K}, got " +
                                    weight_.shape().str());
    }
    if (weight_.dim(2) != weight_.dim(3)) {
        throw std::invalid_argument("VmacConv2d: only square kernels supported");
    }
    if (stride == 0) throw std::invalid_argument("VmacConv2d: stride must be nonzero");
}

std::size_t VmacConv2d::n_tot() const {
    return weight_.dim(1) * weight_.dim(2) * weight_.dim(3);
}

ConvLowering VmacConv2d::make_lowering(const Shape& in) const {
    if (in.rank() != 4 || in.dim(1) != weight_.dim(1)) {
        throw std::invalid_argument("VmacConv2d::forward: bad input " + in.str());
    }
    const std::size_t kernel = weight_.dim(2);
    return ConvLowering(ConvGeometry{weight_.dim(1), in.dim(2), in.dim(3), kernel, kernel,
                                     stride_,        stride_,   padding_, padding_});
}

void VmacConv2d::compute_tiles(std::size_t t_begin, std::size_t t_end,
                               const runtime::RngStream& pass_streams, const float* columns,
                               std::size_t out_spatial, std::size_t patch, double* w_chunk,
                               double* x_chunk, float* out) {
    const std::size_t cout = weight_.dim(0);
    const std::size_t nmult = backend_->config().nmult;
    // One worker-local backend: stateful datapaths (delta-sigma) carry
    // per-output state that must never be shared across workers.
    const std::unique_ptr<VmacBackend> backend = backend_->clone();
    for (std::size_t t = t_begin; t < t_end; ++t) {
        // One output accumulator per pixel of this tile; the per-chunk ADC
        // ledger lives inside the backend's accumulate().
        runtime::metrics::add(runtime::metrics::Counter::kVmacOutputs, out_spatial);
        const std::size_t b = t / cout;
        const std::size_t oc = t % cout;
        Rng tile_rng = pass_streams.stream(t);
        const float* cols = columns + b * patch * out_spatial;
        const float* wrow = weight_.data() + oc * patch;
        for (std::size_t pix = 0; pix < out_spatial; ++pix) {
            double acc = 0.0;
            // Chunks of one output accumulator stream contiguously: the
            // output stationarity stateful backends rely on.
            for (std::size_t start = 0; start < patch; start += nmult) {
                const std::size_t len = std::min(nmult, patch - start);
                for (std::size_t i = 0; i < len; ++i) {
                    w_chunk[i] = wrow[start + i];
                    x_chunk[i] = cols[(start + i) * out_spatial + pix];
                }
                acc += backend->accumulate(std::span(w_chunk, len), std::span(x_chunk, len),
                                           tile_rng);
            }
            acc += backend->finish_output(tile_rng);
            out[(b * cout + oc) * out_spatial + pix] = static_cast<float>(acc);
        }
    }
}

Tensor VmacConv2d::forward(const Tensor& input) {
    char tag[runtime::trace::Event::kTagCapacity + 1];
    format_forward_tag(tag, sizeof(tag), backend_->kind(), input.shape());
    runtime::trace::Span span("VmacConv2d.forward", tag);
    const ConvLowering low = make_lowering(input.shape());
    const std::size_t batch = input.dim(0);
    const std::size_t cout = weight_.dim(0);
    const std::size_t nmult = backend_->config().nmult;

    Tensor output(Shape{batch, cout, low.out_h(), low.out_w()});

    // Lower the whole batch first (write-disjoint per image), then walk
    // the (image, out-channel) tiles in parallel. Each tile owns a noise
    // stream keyed by (forward pass, tile index), so the injected AMS
    // error is independent of how the pool schedules the tiles.
    std::vector<float> columns(batch * low.columns_floats());
    low.lower_batch(input.data(), batch, columns.data());

    const runtime::RngStream pass_streams = streams_.substream(forward_count_++);
    const std::size_t tiles = batch * cout;
    runtime::parallel_for(
        0, tiles, runtime::suggest_grain(tiles, 1),
        [&](std::size_t t_begin, std::size_t t_end) {
            std::vector<double> w_chunk(nmult), x_chunk(nmult);
            compute_tiles(t_begin, t_end, pass_streams, columns.data(), low.out_spatial(),
                          low.patch_size(), w_chunk.data(), x_chunk.data(), output.data());
        });
    return output;
}

Shape VmacConv2d::plan(const Shape& in, runtime::EvalContext& ctx) {
    const ConvLowering low = make_lowering(in);
    const std::size_t batch = in.dim(0);
    const std::size_t cout = weight_.dim(0);
    const std::size_t nmult = backend_->config().nmult;
    (void)ctx.reserve_scratch(this, 0, batch * low.columns_floats());
    // One double staging pair per chunk of the tile loop, stored as floats
    // (2 * nmult doubles = 4 * nmult floats; arena blocks are 64-byte
    // aligned, so the reinterpret to double* is safe).
    const std::size_t tiles = batch * cout;
    const std::size_t grain = runtime::suggest_grain(tiles, 1);
    const std::size_t chunks = (tiles + grain - 1) / grain;
    for (std::size_t c = 0; c < chunks; ++c) {
        (void)ctx.reserve_scratch(this, static_cast<int>(1 + c), 4 * nmult);
    }
    return Shape{batch, cout, low.out_h(), low.out_w()};
}

Shape VmacConv2d::output_shape(const Shape& in) const {
    const ConvLowering low = make_lowering(in);
    return Shape{in.dim(0), weight_.dim(0), low.out_h(), low.out_w()};
}

Tensor VmacConv2d::forward(const Tensor& input, runtime::EvalContext& ctx) {
    // Evaluation-only module: no training fallback (backward throws).
    Tensor output = nn::arena_output(ctx, output_shape(input.shape()));
    forward_planned(input.data(), input.shape(), output.data(), ctx);
    return output;
}

void VmacConv2d::forward_planned(const float* input, const Shape& in_shape, float* out,
                                 runtime::EvalContext& ctx) {
    char tag[runtime::trace::Event::kTagCapacity + 1];
    format_forward_tag(tag, sizeof(tag), backend_->kind(), in_shape);
    runtime::trace::Span span("VmacConv2d.forward", tag);
    const ConvLowering low = make_lowering(in_shape);
    const std::size_t batch = in_shape.dim(0);
    const std::size_t cout = weight_.dim(0);
    const std::size_t nmult = backend_->config().nmult;

    float* columns = ctx.reserve_scratch(this, 0, batch * low.columns_floats());
    low.lower_batch(input, batch, columns);

    const runtime::RngStream pass_streams = streams_.substream(forward_count_++);
    const std::size_t tiles = batch * cout;
    const std::size_t grain = runtime::suggest_grain(tiles, 1);
    // Re-reserve every chunk's staging pair serially before entering the
    // parallel region; the lookups inside the region are then read-only.
    const std::size_t chunks = (tiles + grain - 1) / grain;
    for (std::size_t c = 0; c < chunks; ++c) {
        (void)ctx.reserve_scratch(this, static_cast<int>(1 + c), 4 * nmult);
    }
    runtime::parallel_for(0, tiles, grain, [&](std::size_t t_begin, std::size_t t_end) {
        double* staging = reinterpret_cast<double*>(
            ctx.reserve_scratch(this, static_cast<int>(1 + t_begin / grain), 4 * nmult));
        compute_tiles(t_begin, t_end, pass_streams, columns, low.out_spatial(),
                      low.patch_size(), staging, staging + nmult, out);
    });
}

Tensor VmacConv2d::backward(const Tensor& /*grad_output*/) {
    throw std::logic_error(
        "VmacConv2d[" + backend_->name() +
        "] is evaluation-only (paper Sec. 4: per-VMAC modeling is applied at evaluation "
        "time); use QuantConv2d + ErrorInjector for training");
}

}  // namespace ams::vmac
