#include "ams/vmac_conv.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "runtime/parallel_for.hpp"

namespace ams::vmac {

VmacConv2d::VmacConv2d(Tensor weight, std::size_t stride, std::size_t padding,
                       const VmacConfig& config, const AnalogOptions& analog,
                       VmacConvMode mode, Rng rng)
    : weight_(std::move(weight)),
      stride_(stride),
      padding_(padding),
      cell_(config, analog),
      mode_(mode),
      streams_(runtime::RngStream::from(rng)) {
    if (weight_.rank() != 4) {
        throw std::invalid_argument("VmacConv2d: weight must be {Cout, Cin, K, K}, got " +
                                    weight_.shape().str());
    }
    if (weight_.dim(2) != weight_.dim(3)) {
        throw std::invalid_argument("VmacConv2d: only square kernels supported");
    }
    if (stride == 0) throw std::invalid_argument("VmacConv2d: stride must be nonzero");
}

std::size_t VmacConv2d::n_tot() const {
    return weight_.dim(1) * weight_.dim(2) * weight_.dim(3);
}

Tensor VmacConv2d::forward(const Tensor& input) {
    if (input.rank() != 4 || input.dim(1) != weight_.dim(1)) {
        throw std::invalid_argument("VmacConv2d::forward: bad input " + input.shape().str());
    }
    const std::size_t batch = input.dim(0);
    const std::size_t cout = weight_.dim(0);
    const std::size_t kernel = weight_.dim(2);
    ConvGeometry g{weight_.dim(1), input.dim(2), input.dim(3), kernel, kernel,
                   stride_,        stride_,      padding_,     padding_};
    g.validate();
    const std::size_t oh = g.out_h();
    const std::size_t ow = g.out_w();
    const std::size_t out_spatial = oh * ow;
    const std::size_t patch = g.patch_size();
    const std::size_t nmult = cell_.config().nmult;
    const std::size_t in_image = g.in_channels * g.in_h * g.in_w;

    Tensor output(Shape{batch, cout, oh, ow});

    // Lower the whole batch first (write-disjoint per image), then walk
    // the (image, out-channel) tiles in parallel. Each tile owns a noise
    // stream keyed by (forward pass, tile index), so the injected AMS
    // error is independent of how the pool schedules the tiles.
    std::vector<float> columns(batch * patch * out_spatial);
    runtime::parallel_for(0, batch, 1, [&](std::size_t b_begin, std::size_t b_end) {
        for (std::size_t b = b_begin; b < b_end; ++b) {
            im2col(input.data() + b * in_image, g, columns.data() + b * patch * out_spatial);
        }
    });

    const runtime::RngStream pass_streams = streams_.substream(forward_count_++);
    const double lsb = cell_.adc_lsb();
    const std::size_t tiles = batch * cout;
    runtime::parallel_for(
        0, tiles, runtime::suggest_grain(tiles, 1),
        [&](std::size_t t_begin, std::size_t t_end) {
            std::vector<double> w_chunk(nmult), x_chunk(nmult);
            for (std::size_t t = t_begin; t < t_end; ++t) {
                const std::size_t b = t / cout;
                const std::size_t oc = t % cout;
                Rng tile_rng = pass_streams.stream(t);
                const float* cols = columns.data() + b * patch * out_spatial;
                const float* wrow = weight_.data() + oc * patch;
                for (std::size_t pix = 0; pix < out_spatial; ++pix) {
                    double acc = 0.0;
                    for (std::size_t start = 0; start < patch; start += nmult) {
                        const std::size_t len = std::min(nmult, patch - start);
                        if (mode_ == VmacConvMode::kBitExact) {
                            for (std::size_t i = 0; i < len; ++i) {
                                w_chunk[i] = wrow[start + i];
                                x_chunk[i] = cols[(start + i) * out_spatial + pix];
                            }
                            acc += cell_.dot(std::span(w_chunk).first(len),
                                             std::span(x_chunk).first(len), tile_rng);
                        } else {
                            double partial = 0.0;
                            for (std::size_t i = 0; i < len; ++i) {
                                partial += static_cast<double>(wrow[start + i]) *
                                           cols[(start + i) * out_spatial + pix];
                            }
                            acc += partial + tile_rng.uniform(-0.5 * lsb, 0.5 * lsb);
                        }
                    }
                    output.data()[(b * cout + oc) * out_spatial + pix] =
                        static_cast<float>(acc);
                }
            }
        });
    return output;
}

Tensor VmacConv2d::backward(const Tensor& /*grad_output*/) {
    throw std::logic_error(
        "VmacConv2d is evaluation-only (paper Sec. 4: per-VMAC modeling is applied at "
        "evaluation time); use QuantConv2d + ErrorInjector for training");
}

}  // namespace ams::vmac
