// The paper's statistical AMS error model (Section 2, Eqs. 1-2).
//
// With DoReFa capping |weights| <= 1 and activations in [0, 1], the ideal
// analog dot product of Nmult pairwise products spans [-Nmult, +Nmult].
// An ADC with ENOB_VMAC effective bits therefore has
//     LSB = 2 * Nmult * 2^-ENOB = Nmult * 2^-(ENOB-1)
// and, regardless of the error's distribution, an error variance of
// LSB^2 / 12 referred to its input (the definition of ENOB). A convolution
// output activation needs Ntot multiplications = Ntot/Nmult VMAC cells;
// their i.i.d. errors add, so the total error is approximately normal with
// variance (Ntot/Nmult) * LSB^2 / 12.
#pragma once

#include <cstddef>

#include "ams/vmac_config.hpp"

namespace ams::vmac {

/// LSB of the VMAC's ADC in dot-product units: Nmult * 2^-(ENOB-1). (Eq. 1)
[[nodiscard]] double vmac_lsb(const VmacConfig& config);

/// Var(E_VMAC) = LSB^2 / 12 — the error variance of one VMAC conversion. (Eq. 1)
[[nodiscard]] double vmac_error_variance(const VmacConfig& config);

/// Number of VMAC cells needed per output activation: ceil(Ntot / Nmult).
[[nodiscard]] std::size_t vmacs_per_output(const VmacConfig& config, std::size_t n_tot);

/// Var(E_tot) = (Ntot / Nmult) * Var(E_VMAC). (Eq. 2)
/// `n_tot` is the total multiplications per output activation (for a conv
/// layer: C_in * K_h * K_w). Throws std::invalid_argument if n_tot == 0.
[[nodiscard]] double total_error_variance(const VmacConfig& config, std::size_t n_tot);

/// Standard deviation of the total injected error: sqrt(Eq. 2).
[[nodiscard]] double total_error_stddev(const VmacConfig& config, std::size_t n_tot);

/// ENOB that keeps the injected error standard deviation unchanged when
/// moving a result measured at `nmult_from` to hardware with `nmult_to`:
/// sigma ∝ sqrt(Nmult) * 2^-ENOB at fixed Ntot, hence
///     ENOB' = ENOB + 0.5 * log2(nmult_to / nmult_from).
/// This is how Fig. 8 maps the Nmult = 8 accuracy sweep onto the whole
/// (ENOB, Nmult) design grid.
[[nodiscard]] double equivalent_enob(double enob, std::size_t nmult_from, std::size_t nmult_to);

/// Inverse view of the same equivalence: the error std-dev scale factor
/// sqrt(nmult) * 2^-(enob-1) that determines accuracy at fixed Ntot.
[[nodiscard]] double noise_scale(double enob, std::size_t nmult);

}  // namespace ams::vmac
