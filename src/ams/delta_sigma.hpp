// DeltaSigmaVmac: quantization-error recycling (paper Sec. 4, method 2).
//
// "Subtract the quantization error incurred by the ADC in one cycle from
// the partial dot product computed in the next cycle. This can be shown
// to be equivalent to using a first-order delta-sigma modulator in place
// of an ADC." Successive outputs of one VMAC must be destined for the
// same accumulator (output stationarity), and the final conversion is
// performed at a higher resolution than the rest.
#pragma once

#include <span>

#include "ams/vmac_cell.hpp"

namespace ams::vmac {

/// A VMAC whose ADC is replaced by a first-order delta-sigma modulator.
///
/// Usage: feed successive operand chunks of one long dot product through
/// accumulate(); then call finalize() to flush the residual with the
/// high-resolution final conversion. The digital partial outputs sum to
/// the dot product with only the *final* quantization error plus thermal
/// noise — the per-cycle quantization errors cancel telescopically.
class DeltaSigmaVmac {
public:
    /// `final_enob` is the resolution of the last conversion; it must be
    /// >= config.enob (the per-cycle resolution). Throws otherwise.
    DeltaSigmaVmac(const VmacConfig& config, double final_enob,
                   const AnalogOptions& analog = {});

    /// Converts one chunk (<= Nmult pairs); returns the digital output of
    /// this cycle and carries the quantization residual into the next.
    double accumulate(std::span<const double> weights, std::span<const double> activations,
                      Rng& rng);

    /// Flushes the carried residual through the high-resolution final
    /// conversion and resets the modulator. Returns the final digital term
    /// to add to the accumulated sum.
    double finalize(Rng& rng);

    /// Convenience: full pipeline over an arbitrary-length dot product.
    [[nodiscard]] double dot(std::span<const double> weights,
                             std::span<const double> activations, Rng& rng);

    /// Carried residual (the integrator state); exposed for tests.
    [[nodiscard]] double residual() const { return residual_; }

    [[nodiscard]] const VmacCell& cell() const { return cell_; }
    [[nodiscard]] double final_enob() const { return final_enob_; }

private:
    VmacCell cell_;
    VmacCell final_cell_;
    double final_enob_;
    double residual_ = 0.0;
};

}  // namespace ams::vmac
