#include "ams/partitioned.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ams/adc_quantizer.hpp"

namespace ams::vmac {

PartitionedVmac::PartitionedVmac(const VmacConfig& base, const PartitionOptions& options)
    : base_(base),
      options_(options),
      mag_bits_w_(base.bits_w - 1),
      mag_bits_x_(base.bits_x - 1),
      weight_codec_(base.bits_w),
      act_codec_(base.bits_x) {
    base_.validate();
    if (options.nw == 0 || options.nx == 0) {
        throw std::invalid_argument("PartitionedVmac: chunk counts must be > 0");
    }
    if (mag_bits_w_ % options.nw != 0 || mag_bits_x_ % options.nx != 0) {
        throw std::invalid_argument(
            "PartitionedVmac: magnitude bits must divide evenly into chunks");
    }
    if (options.enob_partial <= 0.0) {
        throw std::invalid_argument("PartitionedVmac: enob_partial must be positive");
    }
    chunk_bits_w_ = mag_bits_w_ / options.nw;
    chunk_bits_x_ = mag_bits_x_ / options.nx;
    if (chunk_bits_w_ == 0 || chunk_bits_x_ == 0) {
        throw std::invalid_argument("PartitionedVmac: empty chunks");
    }
}

double PartitionedVmac::partial_enob(std::size_t p, std::size_t q) const {
    const double depth = static_cast<double>(p + q);
    return std::max(options_.min_enob,
                    options_.enob_partial - options_.significance_drop * depth);
}

double PartitionedVmac::partial_weight(std::size_t p, std::size_t q) const {
    const double fs_w = static_cast<double>(weight_codec_.full_scale());
    const double fs_x = static_cast<double>(act_codec_.full_scale());
    const std::uint32_t chunk_max_w = (1u << chunk_bits_w_) - 1u;
    const std::uint32_t chunk_max_x = (1u << chunk_bits_x_) - 1u;
    const std::size_t shift_w = chunk_bits_w_ * (options_.nw - 1 - p);
    const std::size_t shift_x = chunk_bits_x_ * (options_.nx - 1 - q);
    return static_cast<double>(chunk_max_w) * std::exp2(static_cast<double>(shift_w)) / fs_w *
           static_cast<double>(chunk_max_x) * std::exp2(static_cast<double>(shift_x)) / fs_x;
}

double PartitionedVmac::quantization_error_stddev() const {
    double var = 0.0;
    for (std::size_t p = 0; p < options_.nw; ++p) {
        for (std::size_t q = 0; q < options_.nx; ++q) {
            const double lsb = 2.0 * options_.analog.reference_scale *
                               static_cast<double>(base_.nmult) *
                               std::exp2(-partial_enob(p, q));
            const double w = partial_weight(p, q);
            var += w * w * lsb * lsb / 12.0;
        }
    }
    return std::sqrt(var);
}

double PartitionedVmac::effective_enob() const {
    return effective_enob_from_rms(quantization_error_stddev(),
                                   static_cast<double>(base_.nmult));
}

double PartitionedVmac::dot_ideal(std::span<const double> weights,
                                  std::span<const double> activations) const {
    if (weights.size() != activations.size() || weights.size() > base_.nmult) {
        throw std::invalid_argument("PartitionedVmac::dot_ideal: bad operand count");
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weight_codec_.quantize(weights[i]) * act_codec_.quantize(activations[i]);
    }
    return acc;
}

double PartitionedVmac::dot(std::span<const double> weights,
                            std::span<const double> activations, Rng& rng) const {
    if (weights.size() != activations.size() || weights.size() > base_.nmult) {
        throw std::invalid_argument("PartitionedVmac::dot: bad operand count");
    }
    const std::size_t n = weights.size();

    // Encode operands once; chunk the integer magnitudes.
    std::vector<quant::SignMagCode> wc(n), xc(n);
    for (std::size_t i = 0; i < n; ++i) {
        wc[i] = weight_codec_.encode(weights[i]);
        xc[i] = act_codec_.encode(activations[i]);
    }
    const double fs_w = static_cast<double>(weight_codec_.full_scale());
    const double fs_x = static_cast<double>(act_codec_.full_scale());
    const std::uint32_t chunk_max_w = (1u << chunk_bits_w_) - 1u;
    const std::uint32_t chunk_max_x = (1u << chunk_bits_x_) - 1u;

    double result = 0.0;
    for (std::size_t p = 0; p < options_.nw; ++p) {
        // Shift of weight chunk p (p = 0 most significant).
        const std::size_t shift_w = chunk_bits_w_ * (options_.nw - 1 - p);
        for (std::size_t q = 0; q < options_.nx; ++q) {
            const std::size_t shift_x = chunk_bits_x_ * (options_.nx - 1 - q);

            // Analog VMAC over normalized chunk products in [-1, 1].
            double analog = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                const std::uint32_t cw = (wc[i].magnitude >> shift_w) & chunk_max_w;
                const std::uint32_t cx = (xc[i].magnitude >> shift_x) & chunk_max_x;
                const double sign =
                    (wc[i].negative != xc[i].negative) ? -1.0 : 1.0;
                double product = sign * (static_cast<double>(cw) / chunk_max_w) *
                                 (static_cast<double>(cx) / chunk_max_x);
                if (options_.analog.multiplier_noise_sigma > 0.0) {
                    product += rng.normal(0.0, options_.analog.multiplier_noise_sigma);
                }
                analog += product;
            }
            if (options_.analog.adc_noise_sigma > 0.0) {
                analog += rng.normal(0.0, options_.analog.adc_noise_sigma);
            }

            // Partial ADC: full scale Nmult, resolution discounted with depth.
            const AdcQuantizer adc(partial_enob(p, q), static_cast<double>(base_.nmult),
                                   options_.analog.reference_scale);
            const double digital = adc.convert(analog);

            // Digital shift-and-add: undo the chunk normalizations, apply
            // the binary-weighted significance, renormalize by full scales.
            const double weight_of_partial =
                static_cast<double>(chunk_max_w) * std::exp2(static_cast<double>(shift_w)) /
                fs_w * static_cast<double>(chunk_max_x) *
                std::exp2(static_cast<double>(shift_x)) / fs_x;
            result += digital * weight_of_partial;
        }
    }
    return result;
}

}  // namespace ams::vmac
